package repro

import (
	"bytes"
	"testing"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
)

// The live ProgressEvent stream is part of the determinism contract
// (DESIGN.md decision 13): sequence numbers and fake-clock timestamps
// are assigned only at single-goroutine orchestration points, so the
// JSONL bytes a subscriber sees are identical at W=1, W=4 and W=8 —
// for a clean analysis and for a budget-exhausted degraded one, whose
// stage cuts surface as deterministic "note" events.

// progressAnalyze runs an lb-chain analysis with a JSONL sink
// subscribed and returns the raw event-stream bytes. With degrade set,
// an 8-pop symbex stage limit cuts the search mid-flight (the
// budget_determinism_test.go recipe).
func progressAnalyze(t *testing.T, workers int, degrade bool) []byte {
	t.Helper()
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1000))
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	rec.Subscribe(sink)
	cfg := castan.Config{
		NPackets:  10,
		MaxStates: 4000,
		Seed:      2018,
		Workers:   workers,
		Obs:       rec,
	}
	if degrade {
		m := budget.New(0)
		m.SetStageLimit(budget.StageSymbex, 8)
		cfg.Budget = m
	}
	out, err := castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), cfg)
	if err != nil {
		t.Fatalf("Analyze(W=%d): %v", workers, err)
	}
	if degrade != out.Degraded() {
		t.Fatalf("W=%d: Degraded() = %v, want %v", workers, out.Degraded(), degrade)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("W=%d: sink close: %v", workers, err)
	}
	return buf.Bytes()
}

func checkProgressStream(t *testing.T, raw []byte, wantDegradeNote bool) {
	t.Helper()
	events, err := obs.ReadProgressEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty progress stream")
	}
	begins := map[string]bool{}
	ends := map[string]bool{}
	sawNote := false
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: stream not gap-free", i, ev.Seq)
		}
		switch ev.Kind {
		case obs.KindStageBegin:
			begins[ev.Stage] = true
		case obs.KindStageEnd:
			ends[ev.Stage] = true
		case obs.KindNote:
			sawNote = true
		}
	}
	for _, stage := range []string{"castan.static", "castan.discover", "castan.symbex", "castan.reconcile"} {
		if !begins[stage] || !ends[stage] {
			t.Errorf("stage %s missing begin/end events (begin=%v end=%v)", stage, begins[stage], ends[stage])
		}
	}
	if wantDegradeNote && !sawNote {
		t.Error("degraded run emitted no note events for the stage cuts")
	}
}

func TestProgressStreamWorkerCountDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name    string
		degrade bool
	}{
		{"clean", false},
		{"budget-exhausted", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := progressAnalyze(t, 1, tc.degrade)
			checkProgressStream(t, ref, tc.degrade)
			for _, w := range []int{4, 8} {
				got := progressAnalyze(t, w, tc.degrade)
				if !bytes.Equal(got, ref) {
					t.Errorf("W=%d: progress JSONL differs from W=1:\n%s\n---\n%s", w, got, ref)
				}
			}
		})
	}
}

// A recorder with no subscribers must publish nothing and touch no
// shared counters: the existing byte goldens (determinism_test.go,
// bench gate) were recorded before the event bus existed and must not
// move because of it. TestUnsubscribedPublishIsFree in internal/obs
// pins the no-clock-read property; this pins the end-to-end counter
// surface at the pipeline level.
func TestUnsubscribedAnalysisAddsNoCounters(t *testing.T) {
	run := func(subscribe bool) map[string]uint64 {
		inst, err := nf.New("lb-chain")
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New(obs.NewFakeClock(1000))
		if subscribe {
			rec.Subscribe(obs.NewJSONLSink(&bytes.Buffer{}))
		}
		if _, err := castan.Analyze(inst, memsim.New(memsim.DefaultGeometry(), 2018), castan.Config{
			NPackets:  10,
			MaxStates: 4000,
			Seed:      2018,
			Obs:       rec,
		}); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot().Counters
	}
	bare, subscribed := run(false), run(true)
	if len(bare) != len(subscribed) {
		t.Errorf("subscriber changed the counter surface: %d counters bare, %d subscribed", len(bare), len(subscribed))
	}
	for k, v := range bare {
		if subscribed[k] != v {
			t.Errorf("counter %s: %d bare vs %d subscribed", k, v, subscribed[k])
		}
	}
}

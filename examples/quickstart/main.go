// Quickstart: analyze one network function with CASTAN and inspect the
// synthesized adversarial workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/packet"
)

func main() {
	// Build the NF: LPM over a Patricia trie, FIB pre-populated with the
	// paper's nested /8-/32 routes.
	inst, err := nf.New("lpm-trie")
	if err != nil {
		log.Fatal(err)
	}

	// The simulated DUT. CASTAN only ever probes it as a black box.
	hier := memsim.New(memsim.DefaultGeometry(), 42)

	// Synthesize a 10-packet adversarial workload.
	out, err := castan.Analyze(inst, hier, castan.Config{
		NPackets:  10,
		MaxStates: 60000,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analysis: %.1fs, %d states explored\n",
		out.AnalysisTime.Seconds(), out.StatesExplored)
	fmt.Printf("predicted path: %d instructions, %d loads\n\n", out.Instrs, out.Loads)
	fmt.Println("synthesized adversarial packets (note the destinations walking")
	fmt.Println("the trie's deepest, most specific routes):")
	for i, fr := range out.Frames {
		p, err := packet.Parse(fr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d: %s\n", i, p.Tuple())
	}

	// Replay the workload through a fresh instance as a sanity check.
	instrs, err := castan.Validate("lpm-trie", out.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay executed %d instructions (CASTAN predicted %d)\n", instrs, out.Instrs)
}

// lpm-cache-attack reproduces the headline result (§5.2, Fig. 4): a
// 40-packet CASTAN workload against LPM with one-stage direct lookup that
// drives persistent L3 cache contention, measured head-to-head against a
// typical Zipfian workload and a uniform-random stress workload.
//
//	go run ./examples/lpm-cache-attack
package main

import (
	"fmt"
	"log"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/testbed"
	"castan/internal/workload"
)

func main() {
	const nfName = "lpm-dl1"
	seed := uint64(2018)

	fmt.Println("== stage 1: CASTAN analysis (contention-set discovery + symbex) ==")
	inst, err := nf.New(nfName)
	if err != nil {
		log.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), seed)
	out, err := castan.Analyze(inst, hier, castan.Config{NPackets: 40, MaxStates: 6000, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered %d contention sets; %d of 40 lookups predicted to hit DRAM\n\n",
		out.ContentionSetsFound, out.ExpectDRAM)

	fmt.Println("== stage 2: measurement campaign ==")
	opts := testbed.Options{Seed: seed, MeasureCap: 4096}
	zipf, err := workload.Zipfian(workload.ProfileLPM, 16384, 2048, seed)
	if err != nil {
		log.Fatal(err)
	}
	workloads := []*workload.Workload{
		workload.OnePacket(workload.ProfileLPM),
		zipf,
		workload.UniRand(workload.ProfileLPM, 16384, seed+1),
		workload.UniRandN(workload.ProfileLPM, len(out.Frames), seed+2),
		workload.FromFrames("CASTAN", out.Frames),
	}
	nop, err := testbed.MeasureNOP(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %10s %12s %10s %10s\n", "workload", "packets", "median ns", "L3 miss", "Mpps")
	fmt.Printf("%-16s %10d %12.0f %10s %10.2f\n", "NOP", 1, nop.Latency.Median(), "-", nop.ThroughputMpps)
	for _, wl := range workloads {
		m, err := testbed.Measure(nfName, wl, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %12.0f %10.0f %10.2f\n",
			wl.Name, len(wl.Frames), m.Latency.Median(), m.L3Misses.Median(), m.ThroughputMpps)
	}
	fmt.Println("\nThe 40-packet CASTAN workload should match the latency of the")
	fmt.Println("16K-packet UniRand flood — the paper's \"four orders of magnitude")
	fmt.Println("fewer packets\" result — while Zipfian stays near the 1-packet floor.")
}

// hashring-attack reproduces the hash-reversal result (§5.4, Fig. 13): a
// CASTAN workload against the LB's giant open-addressing hash ring. The
// hash is havoced during analysis and reversed offline with rainbow
// tables; the dominant damage comes from cache contention across the
// ring's 64 MiB of cache-aligned entries.
//
//	go run ./examples/hashring-attack
package main

import (
	"fmt"
	"log"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/testbed"
	"castan/internal/workload"
)

func main() {
	seed := uint64(2018)
	const packets = 20

	fmt.Println("== CASTAN analysis of lb-ring (havoc + rainbow reversal) ==")
	inst, err := nf.New("lb-ring")
	if err != nil {
		log.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), seed)
	out, err := castan.Analyze(inst, hier, castan.Config{NPackets: packets, MaxStates: 8000, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contention sets discovered: %d\n", out.ContentionSetsFound)
	fmt.Printf("havocs reconciled via rainbow tables: %d/%d\n", out.HavocsReconciled, out.HavocsTotal)
	fmt.Printf("lookups predicted to hit DRAM: %d\n\n", out.ExpectDRAM)

	opts := testbed.Options{Seed: seed, MeasureCap: 4096}
	zipf, err := workload.Zipfian(workload.ProfileLB, 16384, 2048, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %12s %12s\n", "workload", "median ns", "L3 misses")
	for _, wl := range []*workload.Workload{
		zipf,
		workload.UniRand(workload.ProfileLB, 16384, seed+1),
		workload.UniRandN(workload.ProfileLB, packets, seed+2),
		workload.FromFrames("CASTAN", out.Frames),
	} {
		m, err := testbed.Measure("lb-ring", wl, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.0f %12.0f\n", wl.Name, m.Latency.Median(), m.L3Misses.Median())
	}
	fmt.Println("\nCASTAN's few packets contend for the same L3 set on every lookup,")
	fmt.Println("beating even the uniform-random flood per the paper's Fig. 13.")
}

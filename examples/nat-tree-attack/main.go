// nat-tree-attack reproduces the algorithmic-complexity result (§5.3,
// Fig. 9): a CASTAN workload that skews a NAT's unbalanced binary tree
// into a linked list, compared against the hand-crafted Manual skew and a
// red-black tree that shrugs both off (Fig. 11).
//
//	go run ./examples/nat-tree-attack
package main

import (
	"fmt"
	"log"

	"castan/internal/castan"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/testbed"
	"castan/internal/workload"
)

func main() {
	seed := uint64(2018)
	const packets = 30

	fmt.Println("== CASTAN analysis of nat-ubtree ==")
	inst, err := nf.New("nat-ubtree")
	if err != nil {
		log.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), seed)
	out, err := castan.Analyze(inst, hier, castan.Config{NPackets: packets, MaxStates: 60000, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis took %.1fs over %d states\n\n", out.AnalysisTime.Seconds(), out.StatesExplored)

	opts := testbed.Options{Seed: seed, MeasureCap: 4096}
	manual := workload.FromFrames("Manual", inst.Manual(packets))
	castanWL := workload.FromFrames("CASTAN", out.Frames)
	urn := workload.UniRandN(workload.ProfileNAT, packets, seed+1)

	for _, nfName := range []string{"nat-ubtree", "nat-rbtree"} {
		fmt.Printf("== %s ==\n", nfName)
		fmt.Printf("%-16s %12s %12s\n", "workload", "median ns", "instrs")
		for _, wl := range []*workload.Workload{urn, manual, castanWL} {
			m, err := testbed.Measure(nfName, wl, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %12.0f %12.0f\n", wl.Name, m.Latency.Median(), m.Instrs.Median())
		}
		fmt.Println()
	}
	fmt.Println("On the unbalanced tree, CASTAN and Manual walk ~N nodes per lookup")
	fmt.Println("while the same-size random workload stays logarithmic; the red-black")
	fmt.Println("tree rebalances the skew away, so all three collapse together.")
}

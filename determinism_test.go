package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"castan/internal/castan"
	"castan/internal/experiments"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/pcap"
)

// The repo-wide determinism rule (DESIGN.md decision 6): the worker count
// changes only scheduling, never output. These tests pin it end to end —
// the same seed must produce byte-identical PCAPs from castan.Analyze and
// identical table renders from the campaign at W=1, W=4 and W=8.

func analyzeWorkload(t *testing.T, workers int) (*castan.Output, []byte) {
	t.Helper()
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2018)
	out, err := castan.Analyze(inst, hier, castan.Config{
		NPackets:  10,
		MaxStates: 4000,
		Seed:      2018,
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("Analyze(W=%d): %v", workers, err)
	}
	path := filepath.Join(t.TempDir(), "out.pcap")
	if err := pcap.WriteFile(path, out.Frames); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return out, raw
}

func TestWorkerCountDeterminismAnalyze(t *testing.T) {
	refOut, refPCAP := analyzeWorkload(t, 1)
	for _, w := range []int{4, 8} {
		out, raw := analyzeWorkload(t, w)
		if !bytes.Equal(raw, refPCAP) {
			t.Errorf("W=%d: PCAP bytes differ from W=1 (%d vs %d bytes)", w, len(raw), len(refPCAP))
		}
		if out.StatesExplored != refOut.StatesExplored {
			t.Errorf("W=%d: explored %d states, W=1 explored %d", w, out.StatesExplored, refOut.StatesExplored)
		}
		if out.HavocsReconciled != refOut.HavocsReconciled || out.HavocsTotal != refOut.HavocsTotal {
			t.Errorf("W=%d: havocs %d/%d, W=1 %d/%d", w,
				out.HavocsReconciled, out.HavocsTotal, refOut.HavocsReconciled, refOut.HavocsTotal)
		}
	}
}

// tableCells renders a table without Table 4's wall-clock "Time (s)"
// column, the one cell that is real elapsed time by design (DESIGN.md
// decision 6) and therefore legitimately varies between runs.
func tableCells(t *testing.T, tbl *experiments.Table) string {
	t.Helper()
	skip := -1
	for i, col := range tbl.Columns {
		if col == "Time (s)" {
			skip = i
		}
	}
	var b strings.Builder
	for _, row := range tbl.Rows {
		b.WriteString(row.Label)
		for i, cell := range row.Cells {
			if i == skip {
				continue
			}
			b.WriteString("|")
			b.WriteString(cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestWorkerCountDeterminismTables(t *testing.T) {
	nfs := []string{"lb-chain", "lpm-dl1"}
	render := func(workers int) string {
		c := experiments.NewCampaign(experiments.Config{
			Seed:         2018,
			Packets:      4096,
			ZipfUniverse: 512,
			MeasureCap:   512,
			CastanStates: 30000,
			CastanPackets: map[string]int{
				"lb-chain": 8,
				"lpm-dl1":  8,
			},
			Workers: workers,
		})
		var b strings.Builder
		builds := []struct {
			id    int
			build func([]string) (*experiments.Table, error)
		}{{2, c.Table2}, {4, c.Table4}, {5, c.Table5}}
		for _, tb := range builds {
			tbl, err := tb.build(nfs)
			if err != nil {
				t.Fatalf("table %d (W=%d): %v", tb.id, workers, err)
			}
			b.WriteString(tableCells(t, tbl))
		}
		return b.String()
	}
	ref := render(1)
	for _, w := range []int{4, 8} {
		if got := render(w); got != ref {
			t.Errorf("W=%d table cells differ from W=1:\n--- W=1\n%s--- W=%d\n%s", w, ref, w, got)
		}
	}
}

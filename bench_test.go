// Package repro's benchmark harness: one benchmark per table and figure
// of the paper's evaluation (§5). Each benchmark drives the same
// experiments the paper reports and emits the headline quantities as
// custom benchmark metrics, so `go test -bench=. -benchmem` regenerates
// the entire campaign. Rendered tables and figures are also written to
// the results/ directory for inspection.
//
// The campaign object is shared across benchmarks (CASTAN analyses and
// measurements are cached), so the first benchmark to need an NF pays its
// analysis cost.
package repro

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"castan/internal/experiments"
)

var (
	campaignOnce sync.Once
	campaign     *experiments.Campaign
)

// benchCampaign returns the shared, full-scale campaign. Workload sizes
// follow §5.1 (scaled per DESIGN.md); CASTAN packet counts follow the
// paper's Table 4 where tractable. Under -short (the CI bench-smoke job)
// every knob is scaled down so the whole suite completes in minutes while
// still exercising each table and figure end to end.
func benchCampaign() *experiments.Campaign {
	campaignOnce.Do(func() {
		if testing.Short() {
			campaign = experiments.NewCampaign(experiments.Config{
				Seed:         2018,
				Packets:      4096,
				ZipfUniverse: 512,
				MeasureCap:   512,
				CastanStates: 30000,
				CastanPackets: map[string]int{
					"nat-ubtree": 6, "lb-ubtree": 6,
					"nat-rbtree": 6, "lb-rbtree": 6,
					"lpm-trie": 8, "lpm-dl1": 8, "lpm-dl2": 8,
					"lb-chain": 8, "nat-chain": 8,
					"lb-ring": 6, "nat-ring": 6,
				},
			})
			_ = os.MkdirAll("results", 0o755)
			return
		}
		campaign = experiments.NewCampaign(experiments.Config{
			Seed:         2018,
			Packets:      65536,
			ZipfUniverse: 4096,
			MeasureCap:   4096,
			CastanStates: 120000,
			CastanPackets: map[string]int{
				// Tree analyses are the slowest (as in the paper, where
				// NAT/unbalanced-tree took 2444 s); the counts below keep
				// the full campaign within a benchmark run while staying
				// past every threshold that matters (L3 associativity 16,
				// visible skew depth).
				"nat-ubtree": 24,
				"lb-ubtree":  24,
				"nat-rbtree": 16,
				"lb-rbtree":  16,
				"lpm-trie":   30,
				"lpm-dl1":    40,
				"lpm-dl2":    40,
				"lb-chain":   30,
				"nat-chain":  30,
				"lb-ring":    24,
				"nat-ring":   24,
			},
		})
		_ = os.MkdirAll("results", 0o755)
	})
	return campaign
}

func writeResult(name, content string) {
	_ = os.WriteFile("results/"+name, []byte(content), 0o644)
}

// benchFigure reproduces one figure and reports each series' median as a
// custom metric.
func benchFigure(b *testing.B, id int, metricUnit string) {
	c := benchCampaign()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = c.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(fmt.Sprintf("figure%02d.txt", id), fig.Render())
	for name, cdf := range fig.Series {
		metric := strings.ReplaceAll(name, " ", "-") + "_" + metricUnit
		b.ReportMetric(cdf.Median(), metric)
	}
}

func BenchmarkFig04LatencyLPMDL1(b *testing.B)       { benchFigure(b, 4, "ns") }
func BenchmarkFig05CyclesLPMDL1(b *testing.B)        { benchFigure(b, 5, "cyc") }
func BenchmarkFig06LatencyLPMDL2(b *testing.B)       { benchFigure(b, 6, "ns") }
func BenchmarkFig07LatencyLPMTrie(b *testing.B)      { benchFigure(b, 7, "ns") }
func BenchmarkFig08CyclesLPMTrie(b *testing.B)       { benchFigure(b, 8, "cyc") }
func BenchmarkFig09LatencyNATUBTree(b *testing.B)    { benchFigure(b, 9, "ns") }
func BenchmarkFig10CyclesNATUBTree(b *testing.B)     { benchFigure(b, 10, "cyc") }
func BenchmarkFig11LatencyNATRBTree(b *testing.B)    { benchFigure(b, 11, "ns") }
func BenchmarkFig12LatencyLBHashTable(b *testing.B)  { benchFigure(b, 12, "ns") }
func BenchmarkFig13LatencyLBHashRing(b *testing.B)   { benchFigure(b, 13, "ns") }
func BenchmarkFig14LatencyNATHashTable(b *testing.B) { benchFigure(b, 14, "ns") }
func BenchmarkFig15LatencyNATHashRing(b *testing.B)  { benchFigure(b, 15, "ns") }

// benchTable reproduces one table.
func benchTable(b *testing.B, id int, build func([]string) (*experiments.Table, error)) {
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = build(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	writeResult(fmt.Sprintf("table%d.txt", id), tbl.Render())
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

func BenchmarkTable1Throughput(b *testing.B) {
	c := benchCampaign()
	benchTable(b, 1, c.Table1)
}

func BenchmarkTable2Instructions(b *testing.B) {
	c := benchCampaign()
	benchTable(b, 2, c.Table2)
}

func BenchmarkTable3L3Misses(b *testing.B) {
	c := benchCampaign()
	benchTable(b, 3, c.Table3)
}

func BenchmarkTable4AnalysisTime(b *testing.B) {
	c := benchCampaign()
	benchTable(b, 4, c.Table4)
}

func BenchmarkTable5MedianDeviation(b *testing.B) {
	c := benchCampaign()
	benchTable(b, 5, c.Table5)
}

// Ablation benches for the design choices DESIGN.md calls out: the cache
// model and the rainbow stage. Each compares CASTAN's predicted DRAM
// pressure with the feature on and off for the NF where it matters most.
func BenchmarkAblationCacheModel(b *testing.B) {
	runAblation(b, "lpm-dl1", true, false)
}

func BenchmarkAblationRainbow(b *testing.B) {
	runAblation(b, "lb-chain", false, true)
}

package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"castan/internal/nf"
	"castan/internal/obs"
)

// The HTTP surface of castand. The response contract, by status:
//
//	200  a schema-valid Report (the bare report JSON, so reportcheck
//	     -url and castan.ReadReport consume it directly). Degraded runs
//	     set X-Castan-Degraded: true; cache hits set X-Castan-Cache: hit.
//	400  malformed request (JSON error body).
//	422  the analysis refused the request shape (JSON error body).
//	429  admission pushback — queue full, tenant cap, tenant budget, or
//	     shed under load. Carries Retry-After (seconds) and
//	     retry_after_ms in the body; clients back off and retry.
//	503  not servable now — draining, quarantined shape, or the worker
//	     crashed running the job.
//
// The analysis pipeline never produces a 500: budget/deadline cuts and
// injected faults ride the degradation path to a valid 200.

// Handler returns the service mux:
//
//	POST /v1/analyze         JSON Request body -> Report
//	GET  /v1/analyze         query params       -> Report
//	     ?stream=sse         live ProgressEvents, then the final report
//	GET  /v1/nfs             the NF catalog
//	GET  /healthz            200 while the process lives
//	GET  /readyz             200 admitting, 503 draining
//	GET  /metricsz           service recorder snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/v1/nfs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(nf.Names)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m := s.Metrics()
		if m == nil {
			m = &obs.Metrics{}
		}
		_ = m.WriteJSON(w)
	})
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	return mux
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req Request
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, 400, "bad request body: "+err.Error(), 0)
			return
		}
	case http.MethodGet:
		if err := reqFromQuery(r, &req); err != nil {
			writeError(w, 400, err.Error(), 0)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST", 0)
		return
	}
	if r.URL.Query().Get("stream") == "sse" {
		s.streamAnalyze(w, r, req)
		return
	}
	writeResponse(w, s.Do(r.Context(), req, nil))
}

// streamAnalyze serves one request over server-sent events. The stream
// carries `progress` events (ProgressEvent JSON) while the analysis
// runs, then one terminal `report` (the Response JSON) or `error` event.
//
// Drop-on-slow-consumer semantics: events flow through a bounded
// obs.ChanSub; when the client (or the HTTP write path) cannot keep up,
// excess events are dropped, never buffered unboundedly and never
// blocking the analysis. Drops are visible three ways — as gaps in the
// events' seq numbers, in the terminal event's dropped count, and on the
// service-wide obs.sub.dropped counter. The terminal event is always
// delivered after the subscriber's remaining buffer is flushed.
//
// The HTTP status is always 200 (it is sent before the outcome is
// known); the real status rides inside the terminal event's JSON.
func (s *Server) streamAnalyze(w http.ResponseWriter, r *http.Request, req Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, 500, "streaming unsupported by connection", 0)
		return
	}
	sub := obs.NewChanSub(256)
	sub.CountDrops(s.rec.Counter(obs.SubDroppedCounter))

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	done := make(chan Response, 1)
	go func() { done <- s.Do(r.Context(), req, sub) }()

	writeEvent := func(kind string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
		flusher.Flush()
	}
	for {
		select {
		case ev := <-sub.Events():
			writeEvent("progress", ev)
		case resp := <-done:
			// Flush what the subscriber buffered before the terminal
			// event, so a fast consumer sees every event that survived.
			for {
				select {
				case ev := <-sub.Events():
					writeEvent("progress", ev)
					continue
				default:
				}
				break
			}
			kind := "report"
			if resp.Status != 200 {
				kind = "error"
			}
			writeEvent(kind, struct {
				Response
				Dropped uint64 `json:"dropped_events"`
			}{resp, sub.Dropped()})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func reqFromQuery(r *http.Request, req *Request) error {
	q := r.URL.Query()
	req.NF = q.Get("nf")
	req.Tenant = q.Get("tenant")
	req.Key = q.Get("key")
	req.Fault = q.Get("fault")
	req.Chaos = q.Get("chaos")
	for name, dst := range map[string]*int{
		"packets": &req.Packets, "states": &req.MaxStates, "priority": &req.Priority,
	} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s %q", name, v)
			}
			*dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", v)
		}
		req.Seed = n
	}
	if v := q.Get("budget"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad budget %q", v)
		}
		req.Budget = n
	}
	if v := q.Get("deadline_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad deadline_ms %q", v)
		}
		req.DeadlineMS = n
	}
	return nil
}

func writeResponse(w http.ResponseWriter, resp Response) {
	if resp.Status == 200 && resp.Report != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Castan-Degraded", strconv.FormatBool(resp.Degraded))
		if resp.CacheHit {
			w.Header().Set("X-Castan-Cache", "hit")
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(resp.Report)
		return
	}
	writeError(w, resp.Status, resp.Err, resp.RetryAfterMS)
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfterMS int64) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfterMS > 0 {
		// Retry-After is whole seconds; round up so clients never retry
		// before the hint.
		w.Header().Set("Retry-After", strconv.FormatInt((retryAfterMS+999)/1000, 10))
	}
	if status <= 0 {
		status = 500
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	}{msg, retryAfterMS})
}

// Package service is castan-as-a-service (ROADMAP item 2): a long-running
// analysis server that accepts concurrent requests, shards them across a
// supervised worker fleet, and is engineered to stay up and useful under
// overload, faults, and worker crashes.
//
// The robustness contract, end to end:
//
//   - Admission control. Requests enter a bounded priority queue. When it
//     is full the server sheds the lowest-priority queued request (or
//     rejects the newcomer if nothing queued ranks lower) with 429 +
//     Retry-After. Per-tenant caps bound how much of the queue one tenant
//     can own, and per-tenant budget.Meters bound the cumulative ticks a
//     tenant may burn — both reject with 429, which clients retry with
//     internal/retry backoff.
//   - Degradation, never 500. Every admitted analysis carries a
//     budget.Meter (ticks and/or a deadline on the injectable obs.Clock).
//     Exhaustion rides the pipeline's existing degraded-exit semantics
//     (PR 5): the response is HTTP 200 with a schema-valid partial Report
//     whose Degradations say what was cut. A request that cannot be
//     served (quarantined shape, crashed worker, draining) gets an
//     explicit 4xx/5xx JSON error — the analysis pipeline itself never
//     surfaces a 500.
//   - Worker supervision. A panicking job (chaos injection or a real bug)
//     is contained by the worker's recover, the job fails with 503, and
//     the worker goroutine is restarted by its supervisor under a
//     deterministic internal/retry backoff schedule. Repeated crashes of
//     the same request shape (NF + fault + chaos) trip a circuit breaker
//     that quarantines the shape with 503s instead of burning workers.
//   - Graceful drain. Shutdown stops admissions (readyz goes 503), pulls
//     budget.Meter.Cancel on every queued and in-flight analysis so each
//     degrades at its next deterministic checkpoint into a valid partial
//     Report, waits for the fleet, and leaves every response answered.
//   - Idempotency. Requests carrying a Key are single-flighted in
//     process (concurrent duplicates wait for the leader) and, when a
//     store is configured, persisted as KindReport artifacts so client
//     retries never recompute a clean result.
//
// Determinism (DESIGN.md decision 6/8/13) is preserved per request: a
// job's Report is a function of its request fields alone — the fleet
// size, queue order, and AnalysisWorkers change scheduling and effort
// accounting, never analysis output — so single-request reports are
// byte-identical at every worker count under a FakeClock.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/faultinject"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/parallel"
	"castan/internal/retry"
	"castan/internal/store"
)

// Service counter and gauge names (see docs/TELEMETRY.md).
const (
	CounterRequests         = "service.requests"
	CounterAccepted         = "service.accepted"
	CounterRejectedInvalid  = "service.rejected.invalid"
	CounterRejectedQueue    = "service.rejected.queue_full"
	CounterRejectedTenant   = "service.rejected.tenant_cap"
	CounterRejectedBudget   = "service.rejected.tenant_budget"
	CounterRejectedDraining = "service.rejected.draining"
	CounterRejectedQuarant  = "service.rejected.quarantined"
	CounterShed             = "service.shed"
	CounterCompleted        = "service.completed"
	CounterDegraded         = "service.completed_degraded"
	CounterCrashes          = "service.worker_crashes"
	CounterRestarts         = "service.worker_restarts"
	CounterQuarantineOpens  = "service.quarantine_opens"
	CounterCacheHits        = "service.report_cache_hits"
	CounterSingleflight     = "service.singleflight_hits"
	GaugeQueueDepth         = "service.queue_depth"
	GaugeInflight           = "service.inflight"
)

// ChaosPanicWorker is the Request.Chaos value that panics the worker
// goroutine running the job (before any analysis), exercising crash
// containment, supervisor restart, and the quarantine breaker. Honored
// only when Config.AllowChaos is set.
const ChaosPanicWorker = "panic-worker"

// StatusClientGone is the internal status for a waiter whose context
// ended before the job finished (nginx's 499). It is never written to a
// client — the client is gone — but tests observe it.
const StatusClientGone = 499

// Config tunes a Server. The zero value is usable.
type Config struct {
	// Workers is the analysis worker fleet size (default 4).
	Workers int
	// AnalysisWorkers is castan.Config.Workers for each job — the
	// pipeline's internal fan-out (default 1). Output is identical at
	// every value; only effort scheduling changes.
	AnalysisWorkers int
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// TenantCap bounds one tenant's queued+running requests (default 8).
	TenantCap int
	// TenantBudget, when >0, is the cumulative tick allotment per tenant,
	// tracked on a per-tenant budget.Meter; an exhausted tenant is
	// rejected with 429 until the server restarts.
	TenantBudget uint64
	// DefaultBudget is the per-request tick budget when the request
	// carries none (0 = unlimited ticks; the meter still counts).
	DefaultBudget uint64
	// DefaultDeadline bounds each request (queue wait included) on Clock
	// when the request carries none (0 = none).
	DefaultDeadline time.Duration
	// DefaultPackets / DefaultMaxStates fill requests that omit them
	// (defaults 4 / 1500 — service-scale, not the paper-scale 30/12000,
	// so an unconfigured request stays interactive).
	DefaultPackets   int
	DefaultMaxStates int
	// MaxPackets / MaxMaxStates reject oversized requests (defaults
	// 64 / 50000).
	MaxPackets   int
	MaxMaxStates int
	// CrashQuarantine is how many worker crashes one request shape
	// (NF+fault+chaos) may cause before the circuit breaker quarantines
	// it (default 3).
	CrashQuarantine int
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 1s).
	RetryAfter time.Duration
	// Restart is the supervisor's worker-restart backoff policy. Its
	// seed is decorrelated per worker via parallel.ShardSeed; its Sleep
	// is injectable so tests pin restart schedules without waiting.
	Restart retry.Policy
	// Clock drives request deadlines and the service recorder (nil =
	// wall clock; tests inject obs.NewFakeClock).
	Clock obs.Clock
	// Obs receives service-level telemetry (nil = a private recorder;
	// read it via Metrics).
	Obs *obs.Recorder
	// Store, when non-nil, backs both the analysis pipeline's artifact
	// cache and the idempotent report cache.
	Store *store.Store
	// AllowChaos honors the Fault/Chaos request fields (tests and chaos
	// runs only; off in production).
	AllowChaos bool
}

func (c Config) fill() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.AnalysisWorkers <= 0 {
		c.AnalysisWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantCap <= 0 {
		c.TenantCap = 8
	}
	if c.DefaultPackets <= 0 {
		c.DefaultPackets = 4
	}
	if c.DefaultMaxStates <= 0 {
		c.DefaultMaxStates = 1500
	}
	if c.MaxPackets <= 0 {
		c.MaxPackets = 64
	}
	if c.MaxMaxStates <= 0 {
		c.MaxMaxStates = 50000
	}
	if c.CrashQuarantine <= 0 {
		c.CrashQuarantine = 3
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.NewWallClock()
	}
	if c.Obs == nil {
		c.Obs = obs.New(c.Clock)
	}
	return c
}

// Request is one analysis order. The analysis outcome is a function of
// the starred fields only; the rest shape scheduling and robustness.
type Request struct {
	NF        string `json:"nf"`                   // *catalog name (required)
	Packets   int    `json:"packets,omitempty"`    // *workload length
	MaxStates int    `json:"max_states,omitempty"` // *exploration budget
	Seed      uint64 `json:"seed,omitempty"`       // *discovery seed
	// Budget bounds the run in deterministic ticks (0 = server default).
	Budget uint64 `json:"budget_ticks,omitempty"` // *
	// DeadlineMS bounds the request (queue wait included) in
	// milliseconds on the server clock (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority orders admission: higher runs first, and under a full
	// queue strictly lower-priority queued work is shed first. FIFO
	// within a priority.
	Priority int `json:"priority,omitempty"`
	// Tenant names the accounting bucket for caps and tenant budgets.
	Tenant string `json:"tenant,omitempty"`
	// Key, when set, makes the request idempotent: concurrent
	// duplicates single-flight behind one computation, and clean
	// results are persisted so retries never recompute.
	Key string `json:"key,omitempty"`
	// Fault names a faultinject.MatrixPlans entry to arm inside the
	// analysis (AllowChaos only). The run degrades; it does not crash.
	Fault string `json:"fault,omitempty"`
	// Chaos injects service-level failures (AllowChaos only); see
	// ChaosPanicWorker.
	Chaos string `json:"chaos,omitempty"`
}

// shape is the circuit-breaker bucket: requests that crash workers the
// same way land in the same bucket.
func (r *Request) shape() string { return r.NF + "|" + r.Fault + "|" + r.Chaos }

// Response is the service's answer to one Request. Status follows HTTP
// semantics (200 carries a Report; 4xx/5xx carry Err).
type Response struct {
	Status       int            `json:"status"`
	Report       *castan.Report `json:"report,omitempty"`
	Degraded     bool           `json:"degraded,omitempty"`
	CacheHit     bool           `json:"cache_hit,omitempty"`
	Err          string         `json:"error,omitempty"`
	RetryAfterMS int64          `json:"retry_after_ms,omitempty"`
}

type flight struct {
	done chan struct{}
	resp Response
}

type job struct {
	id    uint64
	req   Request
	prio  int
	ctx   context.Context
	meter *budget.Meter
	sub   *obs.ChanSub
	fl    *flight
	key   string // report-cache content key ("" = not cacheable)

	done     chan struct{}
	resp     Response
	finished bool // guarded by Server.mu
}

// Server is the analysis service. Create with New, serve via Handler
// (http.go) or Do, stop with Shutdown.
type Server struct {
	cfg   Config
	rec   *obs.Recorder
	clock obs.Clock

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*job
	inflight    map[*job]struct{}
	tenants     map[string]int
	tenantMeter map[string]*budget.Meter
	crashes     map[string]int
	quarantined map[string]bool
	flights     map[string]*flight
	nextID      uint64
	draining    bool

	workerWG sync.WaitGroup
	baseCtx  context.Context
	stop     context.CancelFunc

	cRequests, cAccepted, cInvalid, cQueueFull, cTenantCap, cTenantBudget *obs.Counter
	cDraining, cQuarantined, cShed, cCompleted, cDegraded                 *obs.Counter
	cCrashes, cRestarts, cQuarantineOpens, cCacheHits, cSingleflight      *obs.Counter
	gQueue, gInflight                                                     *obs.Gauge
}

// New builds a Server and starts its supervised worker fleet.
func New(cfg Config) *Server {
	s := newServer(cfg)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.supervise(i)
	}
	return s
}

// newServer builds the server without starting workers — admission tests
// use it to observe queue states that a running fleet would drain.
func newServer(cfg Config) *Server {
	cfg = cfg.fill()
	s := &Server{
		cfg:         cfg,
		rec:         cfg.Obs,
		clock:       cfg.Clock,
		inflight:    map[*job]struct{}{},
		tenants:     map[string]int{},
		tenantMeter: map[string]*budget.Meter{},
		crashes:     map[string]int{},
		quarantined: map[string]bool{},
		flights:     map[string]*flight{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())

	s.cRequests = s.rec.Counter(CounterRequests)
	s.cAccepted = s.rec.Counter(CounterAccepted)
	s.cInvalid = s.rec.Counter(CounterRejectedInvalid)
	s.cQueueFull = s.rec.Counter(CounterRejectedQueue)
	s.cTenantCap = s.rec.Counter(CounterRejectedTenant)
	s.cTenantBudget = s.rec.Counter(CounterRejectedBudget)
	s.cDraining = s.rec.Counter(CounterRejectedDraining)
	s.cQuarantined = s.rec.Counter(CounterRejectedQuarant)
	s.cShed = s.rec.Counter(CounterShed)
	s.cCompleted = s.rec.Counter(CounterCompleted)
	s.cDegraded = s.rec.Counter(CounterDegraded)
	s.cCrashes = s.rec.Counter(CounterCrashes)
	s.cRestarts = s.rec.Counter(CounterRestarts)
	s.cQuarantineOpens = s.rec.Counter(CounterQuarantineOpens)
	s.cCacheHits = s.rec.Counter(CounterCacheHits)
	s.cSingleflight = s.rec.Counter(CounterSingleflight)
	s.gQueue = s.rec.Gauge(GaugeQueueDepth)
	s.gInflight = s.rec.Gauge(GaugeInflight)
	return s
}

// Metrics snapshots the service recorder.
func (s *Server) Metrics() *obs.Metrics { return s.rec.Snapshot() }

// Recorder exposes the service recorder (the SSE layer wires subscriber
// drop counters to it).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Draining reports whether Shutdown has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// validate normalizes req in place and rejects malformed orders.
func (s *Server) validate(req *Request) error {
	if _, ok := nf.Catalog[req.NF]; !ok {
		return fmt.Errorf("unknown nf %q", req.NF)
	}
	if req.Packets == 0 {
		req.Packets = s.cfg.DefaultPackets
	}
	if req.Packets < 0 || req.Packets > s.cfg.MaxPackets {
		return fmt.Errorf("packets %d out of range [1,%d]", req.Packets, s.cfg.MaxPackets)
	}
	if req.MaxStates == 0 {
		req.MaxStates = s.cfg.DefaultMaxStates
	}
	if req.MaxStates < 0 || req.MaxStates > s.cfg.MaxMaxStates {
		return fmt.Errorf("max_states %d out of range [1,%d]", req.MaxStates, s.cfg.MaxMaxStates)
	}
	if req.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be >= 0")
	}
	if req.Fault != "" || req.Chaos != "" {
		if !s.cfg.AllowChaos {
			return fmt.Errorf("fault/chaos injection is disabled on this server")
		}
		if req.Fault != "" && s.plan(req.Fault) == nil {
			return fmt.Errorf("unknown fault plan %q", req.Fault)
		}
		if req.Chaos != "" && req.Chaos != ChaosPanicWorker {
			return fmt.Errorf("unknown chaos mode %q", req.Chaos)
		}
	}
	return nil
}

// plan resolves a MatrixPlans entry by name.
func (s *Server) plan(name string) *faultinject.Plan {
	if name == "" {
		return nil
	}
	for _, p := range faultinject.MatrixPlans() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// cacheKey is the report cache's content address: the idempotency key
// plus every request field the analysis outcome depends on, so a reused
// Key with different parameters can never alias.
func cacheKey(req Request) string {
	return store.Key("svc-report/v1", req.Key, req.NF,
		fmt.Sprint(req.Packets), fmt.Sprint(req.MaxStates),
		fmt.Sprint(req.Seed), fmt.Sprint(req.Budget))
}

// Do submits one request and blocks until it is answered (or ctx ends
// while it is queued/running; the job still completes server-side). sub,
// when non-nil, is subscribed to the job's per-request recorder before
// the analysis starts — the SSE seam.
func (s *Server) Do(ctx context.Context, req Request, sub *obs.ChanSub) Response {
	s.cRequests.Inc()
	if err := s.validate(&req); err != nil {
		s.cInvalid.Inc()
		return Response{Status: 400, Err: err.Error()}
	}
	chaotic := req.Fault != "" || req.Chaos != ""

	var key string
	if req.Key != "" && !chaotic {
		key = cacheKey(req)
		// Idempotent fast path: a persisted clean report answers the
		// retry without touching admission at all.
		if s.cfg.Store != nil {
			if data, ok := s.cfg.Store.Get(store.KindReport, key); ok {
				var rep castan.Report
				if json.Unmarshal(data, &rep) == nil && rep.Check(req.NF) == nil {
					s.cCacheHits.Inc()
					return Response{Status: 200, Report: &rep, CacheHit: true}
				}
			}
		}
	}

	s.mu.Lock()
	// In-process single-flight: concurrent duplicates wait for the
	// leader instead of recomputing.
	var fl *flight
	if req.Key != "" && !chaotic {
		if existing := s.flights[req.Key]; existing != nil {
			s.mu.Unlock()
			s.cSingleflight.Inc()
			select {
			case <-existing.done:
				r := existing.resp
				r.CacheHit = true
				return r
			case <-ctx.Done():
				return Response{Status: StatusClientGone, Err: ctx.Err().Error()}
			}
		}
		fl = &flight{done: make(chan struct{})}
		s.flights[req.Key] = fl
	}

	resp, j := s.admitLocked(ctx, req, sub, fl, key)
	if j == nil {
		if fl != nil {
			s.completeFlightLocked(req.Key, fl, resp)
		}
		s.mu.Unlock()
		return resp
	}
	s.mu.Unlock()

	select {
	case <-j.done:
		return j.resp
	case <-ctx.Done():
		// The waiter is gone; cancel the analysis so the worker degrades
		// out at its next checkpoint rather than finishing for nobody.
		j.meter.Cancel("client gone")
		return Response{Status: StatusClientGone, Err: ctx.Err().Error()}
	}
}

// admitLocked runs admission control. It returns either a final rejection
// response (job == nil) or the enqueued job to wait on. Caller holds mu.
func (s *Server) admitLocked(ctx context.Context, req Request, sub *obs.ChanSub, fl *flight, key string) (Response, *job) {
	if s.draining {
		s.cDraining.Inc()
		return Response{Status: 503, Err: "server draining"}, nil
	}
	if s.quarantined[req.shape()] {
		s.cQuarantined.Inc()
		return Response{Status: 503, Err: fmt.Sprintf("request shape %q quarantined after repeated crashes", req.shape())}, nil
	}
	if s.tenants[req.Tenant] >= s.cfg.TenantCap {
		s.cTenantCap.Inc()
		return s.reject429(fmt.Sprintf("tenant %q at concurrency cap %d", req.Tenant, s.cfg.TenantCap)), nil
	}
	if s.cfg.TenantBudget > 0 {
		tm := s.tenantMeter[req.Tenant]
		if tm == nil {
			tm = budget.New(s.cfg.TenantBudget)
			s.tenantMeter[req.Tenant] = tm
		}
		if reason, dead := tm.Exhausted(); dead {
			s.cTenantBudget.Inc()
			return s.reject429(fmt.Sprintf("tenant %q budget exhausted: %s", req.Tenant, reason)), nil
		}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		// Load-shed: evict the lowest-priority queued job iff it ranks
		// strictly below the newcomer (LIFO within that priority, so the
		// freshest low-priority work goes first).
		victim := -1
		for i, q := range s.queue {
			if q.prio >= req.Priority {
				continue
			}
			if victim == -1 || q.prio < s.queue[victim].prio || (q.prio == s.queue[victim].prio && q.id > s.queue[victim].id) {
				victim = i
			}
		}
		if victim == -1 {
			s.cQueueFull.Inc()
			return s.reject429(fmt.Sprintf("queue full (%d)", s.cfg.QueueDepth)), nil
		}
		v := s.queue[victim]
		s.queue = append(s.queue[:victim], s.queue[victim+1:]...)
		s.cShed.Inc()
		shed := s.reject429(fmt.Sprintf("shed by priority-%d arrival under full queue", req.Priority))
		s.finishLocked(v, shed)
	}

	ticks := req.Budget
	if ticks == 0 {
		ticks = s.cfg.DefaultBudget
	}
	meter := budget.New(ticks)
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > 0 {
		meter.SetDeadline(s.clock, d)
	}

	s.nextID++
	j := &job{
		id: s.nextID, req: req, prio: req.Priority, ctx: ctx,
		meter: meter, sub: sub, fl: fl, key: key,
		done: make(chan struct{}),
	}
	s.queue = append(s.queue, j)
	s.tenants[req.Tenant]++
	s.gQueue.Set(uint64(len(s.queue)))
	s.cAccepted.Inc()
	s.cond.Signal()
	return Response{}, j
}

func (s *Server) reject429(msg string) Response {
	return Response{Status: 429, Err: msg, RetryAfterMS: s.cfg.RetryAfter.Milliseconds()}
}

// finishLocked answers a job exactly once and releases its admission
// accounting. Caller holds mu.
func (s *Server) finishLocked(j *job, resp Response) {
	if j.finished {
		return
	}
	j.finished = true
	j.resp = resp
	s.tenants[j.req.Tenant]--
	if s.tenants[j.req.Tenant] <= 0 {
		delete(s.tenants, j.req.Tenant)
	}
	if j.fl != nil {
		s.completeFlightLocked(j.req.Key, j.fl, resp)
	}
	close(j.done)
}

func (s *Server) completeFlightLocked(key string, fl *flight, resp Response) {
	fl.resp = resp
	close(fl.done)
	// Delete rather than memoize: a rejected flight must not pin its 429
	// forever, and accepted results are served by the store cache.
	delete(s.flights, key)
}

func (s *Server) finish(j *job, resp Response) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finishLocked(j, resp)
}

// pop blocks for the next runnable job: highest priority first, FIFO
// within a priority. Returns nil when the server is stopping and the
// queue is drained.
func (s *Server) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.queue) > 0 {
			best := 0
			for i, q := range s.queue {
				if q.prio > s.queue[best].prio {
					best = i
				}
			}
			j := s.queue[best]
			s.queue = append(s.queue[:best], s.queue[best+1:]...)
			s.gQueue.Set(uint64(len(s.queue)))
			if j.ctx != nil && j.ctx.Err() != nil && !s.draining {
				// The waiter gave up while queued; don't burn a worker.
				s.finishLocked(j, Response{Status: StatusClientGone, Err: "client gone before start"})
				continue
			}
			if s.draining {
				j.meter.Cancel("server draining")
			}
			s.inflight[j] = struct{}{}
			s.gInflight.Set(uint64(len(s.inflight)))
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// supervise runs one worker slot forever: the loop exits cleanly on
// drain, and every crash is restarted under the (deterministically
// seeded, per-worker decorrelated) backoff policy.
func (s *Server) supervise(id int) {
	defer s.workerWG.Done()
	p := s.cfg.Restart
	p.Seed = parallel.ShardSeed(p.Seed, id)
	_ = retry.DoForever(s.baseCtx, p, func(attempt int) error {
		if attempt > 0 {
			s.cRestarts.Inc()
		}
		if s.workerLoop(id) {
			return fmt.Errorf("worker %d crashed", id)
		}
		return nil
	})
}

// workerLoop drains jobs until shutdown (returns false) or a crash
// (returns true; the supervisor restarts us after backoff).
func (s *Server) workerLoop(id int) (crashed bool) {
	for {
		j := s.pop()
		if j == nil {
			return false
		}
		if s.runJob(j) {
			return true
		}
	}
}

// runJob executes one analysis with panic containment. A panic marks the
// job failed (503), charges the shape's crash budget, and possibly trips
// the quarantine breaker; it never takes the server down.
func (s *Server) runJob(j *job) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
			s.recordCrash(j, r)
		}
		s.mu.Lock()
		delete(s.inflight, j)
		s.gInflight.Set(uint64(len(s.inflight)))
		s.mu.Unlock()
	}()

	if s.cfg.AllowChaos && j.req.Chaos == ChaosPanicWorker {
		panic(fmt.Sprintf("chaos: injected worker panic (job %d, nf %s)", j.id, j.req.NF))
	}

	rec := obs.New(s.clock)
	if j.sub != nil {
		rec.Subscribe(j.sub)
	}
	inst, err := nf.New(j.req.NF)
	if err != nil {
		s.finish(j, Response{Status: 422, Err: err.Error()})
		return false
	}
	hier := memsim.New(memsim.DefaultGeometry(), j.req.Seed)
	cfg := castan.Config{
		NPackets:  j.req.Packets,
		MaxStates: j.req.MaxStates,
		Seed:      j.req.Seed,
		Workers:   s.cfg.AnalysisWorkers,
		Obs:       rec,
		Budget:    j.meter,
		Store:     s.cfg.Store,
		Faults:    s.plan(j.req.Fault),
	}
	out, err := castan.Analyze(inst, hier, cfg)
	if err != nil {
		// An analysis refusal is a property of the request, not a server
		// failure: 422, never 500.
		s.finish(j, Response{Status: 422, Err: err.Error()})
		return false
	}
	rep := out.Report()
	degraded := len(rep.Degradations) > 0
	s.cCompleted.Inc()
	if degraded {
		s.cDegraded.Inc()
	}
	if s.cfg.TenantBudget > 0 {
		s.mu.Lock()
		tm := s.tenantMeter[j.req.Tenant]
		s.mu.Unlock()
		tm.Stage("analysis").Charge(rep.BudgetTicksUsed)
	}
	if j.key != "" && s.cfg.Store != nil && !degraded {
		// Persist only clean outcomes, matching the store's
		// "degraded artifacts are never persisted" rule.
		if data, err := json.Marshal(rep); err == nil {
			_ = s.cfg.Store.Put(store.KindReport, j.key, data)
		}
	}
	s.finish(j, Response{Status: 200, Report: rep, Degraded: degraded})
	return false
}

// recordCrash books one worker crash against the job's shape and opens
// the circuit breaker at the threshold.
func (s *Server) recordCrash(j *job, r any) {
	s.cCrashes.Inc()
	s.mu.Lock()
	shape := j.req.shape()
	s.crashes[shape]++
	if s.crashes[shape] >= s.cfg.CrashQuarantine && !s.quarantined[shape] {
		s.quarantined[shape] = true
		s.cQuarantineOpens.Inc()
	}
	s.finishLocked(j, Response{Status: 503, Err: fmt.Sprintf("worker crashed running job: %v", r)})
	s.mu.Unlock()
}

// CrashCount reports how many crashes a request shape has caused and
// whether it is quarantined (tests and debugging).
func (s *Server) CrashCount(req Request) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes[req.shape()], s.quarantined[req.shape()]
}

// Shutdown drains the server: stop admitting (new requests get 503,
// readyz flips), cancel every queued and in-flight analysis budget so
// each degrades into a valid partial Report at its next deterministic
// checkpoint, and wait for the fleet to finish the queue — bounded by
// ctx. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, j := range s.queue {
			j.meter.Cancel("server draining")
		}
		for j := range s.inflight {
			j.meter.Cancel("server draining")
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("service: drain incomplete: %w", ctx.Err())
	}
	// Stop crashed-worker supervisors still sleeping in backoff.
	s.stop()
	return err
}

// queueSnapshot returns queue depth and inflight count (tests).
func (s *Server) queueSnapshot() (queued, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), len(s.inflight)
}

// sortedQueuePriorities is a test helper: the priorities currently
// queued, descending.
func (s *Server) sortedQueuePriorities() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.queue))
	for i, j := range s.queue {
		out[i] = j.prio
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"castan/internal/castan"
	"castan/internal/obs"
	"castan/internal/retry"
	"castan/internal/store"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func counterValue(m *obs.Metrics, name string) uint64 {
	return m.Counters[name]
}

// fastReq is a small request that completes quickly.
func fastReq(seed uint64) Request {
	return Request{NF: "nop", Packets: 2, MaxStates: 300, Seed: seed}
}

// TestAdmissionBackpressure pins the admission-control contract on a
// server whose fleet is deliberately not running, so queue states are
// fully observable: queue-full 429s carry a retry hint, a higher-priority
// arrival sheds the lowest-priority queued request, and per-tenant caps
// reject the over-subscribed tenant only.
func TestAdmissionBackpressure(t *testing.T) {
	s := newServer(Config{QueueDepth: 2, TenantCap: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	answered := make(chan Response, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			req := fastReq(uint64(i))
			req.Tenant = fmt.Sprintf("t%d", i)
			answered <- s.Do(ctx, req, nil)
		}(i)
	}
	waitFor(t, "two queued jobs", func() bool { q, _ := s.queueSnapshot(); return q == 2 })

	// Queue full, equal priority: the newcomer is rejected with a hint.
	resp := s.Do(ctx, fastReq(9), nil)
	if resp.Status != 429 || resp.RetryAfterMS <= 0 {
		t.Fatalf("queue-full response = %+v, want 429 with retry_after_ms", resp)
	}

	// A higher-priority arrival sheds one queued priority-0 job instead;
	// its waiter is answered with a 429 while the other stays queued.
	go func() {
		req := fastReq(10)
		req.Priority = 2
		req.Tenant = "hi"
		answered <- s.Do(ctx, req, nil)
	}()
	select {
	case r := <-answered:
		if r.Status != 429 || !strings.Contains(r.Err, "shed") {
			t.Fatalf("shed waiter got %+v, want shed 429", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no priority-0 waiter was shed")
	}
	if prios := s.sortedQueuePriorities(); len(prios) != 2 || prios[0] != 2 {
		t.Fatalf("queue priorities after shed = %v, want [2 0]", prios)
	}

	// Tenant cap: tenant "hi" has 1 queued; a cap-2 tenant filling both
	// slots is rejected on its third, other tenants are not.
	s.mu.Lock()
	s.cfg.QueueDepth = 10
	s.mu.Unlock()
	var capWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		capWG.Add(1)
		go func(i int) {
			defer capWG.Done()
			req := fastReq(uint64(20 + i))
			req.Tenant = "capped"
			s.Do(ctx, req, nil)
		}(i)
	}
	waitFor(t, "capped tenant at cap", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.tenants["capped"] == 2
	})
	req := fastReq(30)
	req.Tenant = "capped"
	if resp := s.Do(ctx, req, nil); resp.Status != 429 || !strings.Contains(resp.Err, "tenant") {
		t.Fatalf("over-cap response = %+v, want tenant 429", resp)
	}
	req.Tenant = "other"
	go func() { s.Do(ctx, req, nil) }()
	waitFor(t, "other tenant admitted", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.tenants["other"] == 1
	})

	m := s.Metrics()
	if got := counterValue(m, CounterRejectedQueue); got != 1 {
		t.Errorf("%s = %d, want 1", CounterRejectedQueue, got)
	}
	if got := counterValue(m, CounterShed); got != 1 {
		t.Errorf("%s = %d, want 1", CounterShed, got)
	}
	if got := counterValue(m, CounterRejectedTenant); got != 1 {
		t.Errorf("%s = %d, want 1", CounterRejectedTenant, got)
	}
	// Releasing the context unblocks the waiters still queued (no fleet
	// is running in this test).
	cancel()
	capWG.Wait()
	<-answered
	<-answered
}

// TestWorkerCrashQuarantine drives the chaos panic through containment:
// each crash fails only its own job (503), the supervisor restarts the
// worker under the injected (instant, recorded) backoff schedule, and the
// breaker quarantines the shape at the threshold.
func TestWorkerCrashQuarantine(t *testing.T) {
	var mu sync.Mutex
	var restartDelays []time.Duration
	s := New(Config{
		Workers: 2, AllowChaos: true, CrashQuarantine: 3,
		Restart: retry.Policy{
			Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2, Seed: 7,
			Sleep: func(_ context.Context, d time.Duration) error {
				mu.Lock()
				restartDelays = append(restartDelays, d)
				mu.Unlock()
				return nil
			},
		},
	})
	defer shutdown(t, s)

	boom := Request{NF: "nop", Packets: 2, MaxStates: 300, Chaos: ChaosPanicWorker}
	for i := 0; i < 3; i++ {
		resp := s.Do(context.Background(), boom, nil)
		if resp.Status != 503 || !strings.Contains(resp.Err, "crashed") {
			t.Fatalf("crash %d response = %+v, want 503 crashed", i, resp)
		}
	}
	if n, q := s.CrashCount(boom); n != 3 || !q {
		t.Fatalf("CrashCount = (%d, %v), want (3, true)", n, q)
	}
	// The breaker now answers without burning a worker.
	resp := s.Do(context.Background(), boom, nil)
	if resp.Status != 503 || !strings.Contains(resp.Err, "quarantined") {
		t.Fatalf("post-quarantine response = %+v, want 503 quarantined", resp)
	}
	// Healthy shapes keep working on restarted workers.
	ok := s.Do(context.Background(), fastReq(1), nil)
	if ok.Status != 200 {
		t.Fatalf("healthy request after crashes = %+v, want 200", ok)
	}
	if err := ok.Report.Check("nop"); err != nil {
		t.Fatalf("healthy report invalid: %v", err)
	}
	waitFor(t, "worker restarts recorded", func() bool {
		return counterValue(s.Metrics(), CounterRestarts) >= 3
	})
	m := s.Metrics()
	if got := counterValue(m, CounterCrashes); got != 3 {
		t.Errorf("%s = %d, want 3", CounterCrashes, got)
	}
	if got := counterValue(m, CounterQuarantineOpens); got != 1 {
		t.Errorf("%s = %d, want 1", CounterQuarantineOpens, got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(restartDelays) < 3 {
		t.Fatalf("recorded %d restart sleeps, want >= 3", len(restartDelays))
	}
}

// TestShutdownDrainsToValidDegradedReports is the drain contract: an
// in-flight analysis and a queued one both come back as HTTP 200 with
// schema-valid partial Reports degraded by "server draining", new
// admissions get 503, and Shutdown returns once the fleet is idle.
func TestShutdownDrainsToValidDegradedReports(t *testing.T) {
	s := New(Config{Workers: 1})
	big := Request{NF: "nat-chain", Packets: 8, MaxStates: 50000, Seed: 3}
	queued := Request{NF: "lpm-trie", Packets: 4, MaxStates: 50000, Seed: 4}

	var wg sync.WaitGroup
	var bigResp, queuedResp Response
	wg.Add(2)
	go func() { defer wg.Done(); bigResp = s.Do(context.Background(), big, nil) }()
	waitFor(t, "big job in flight", func() bool { _, inflight := s.queueSnapshot(); return inflight == 1 })
	go func() { defer wg.Done(); queuedResp = s.Do(context.Background(), queued, nil) }()
	waitFor(t, "second job queued", func() bool { q, _ := s.queueSnapshot(); return q == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	for name, resp := range map[string]Response{"in-flight": bigResp, "queued": queuedResp} {
		if resp.Status != 200 {
			t.Fatalf("%s response = %+v, want degraded 200", name, resp)
		}
		if err := resp.Report.Check(""); err != nil {
			t.Errorf("%s report invalid: %v", name, err)
		}
		found := false
		for _, d := range resp.Report.Degradations {
			if strings.Contains(d.Reason, "draining") {
				found = true
			}
		}
		if !found || !resp.Degraded {
			t.Errorf("%s response not degraded by drain: %+v", name, resp.Report.Degradations)
		}
	}
	if resp := s.Do(context.Background(), fastReq(1), nil); resp.Status != 503 {
		t.Errorf("post-drain admission = %+v, want 503", resp)
	}
	// Idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestIdempotentKeySingleCompute: 8 concurrent requests sharing one
// idempotency key produce exactly one computation — concurrent
// duplicates ride the in-process single-flight, later ones the
// store-backed report cache — and all answers describe the identical
// outcome.
func TestIdempotentKeySingleCompute(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Store: st})
	defer shutdown(t, s)

	req := Request{NF: "lpm-trie", Packets: 3, MaxStates: 800, Seed: 5, Key: "job-1"}
	const clients = 8
	resps := make([]Response, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.Do(context.Background(), req, nil)
		}(i)
	}
	wg.Wait()
	for i, r := range resps {
		if r.Status != 200 {
			t.Fatalf("client %d = %+v, want 200", i, r)
		}
		if err := r.Report.Check("lpm-trie"); err != nil {
			t.Fatalf("client %d report invalid: %v", i, err)
		}
		if !r.Report.SameOutcome(resps[0].Report) {
			t.Fatalf("client %d outcome differs from client 0", i)
		}
	}
	m := s.Metrics()
	if got := counterValue(m, CounterCompleted); got != 1 {
		t.Errorf("%s = %d, want exactly 1 compute for %d clients", CounterCompleted, got, clients)
	}
	if hits := counterValue(m, CounterSingleflight) + counterValue(m, CounterCacheHits); hits != clients-1 {
		t.Errorf("singleflight+cache hits = %d, want %d", hits, clients-1)
	}
	// A later retry is a pure store hit.
	r := s.Do(context.Background(), req, nil)
	if r.Status != 200 || !r.CacheHit {
		t.Fatalf("retry = %+v, want cached 200", r)
	}
	if got := counterValue(s.Metrics(), CounterCompleted); got != 1 {
		t.Errorf("retry recomputed: %s = %d", CounterCompleted, got)
	}
}

// TestTenantBudgetExhaustion: with a cumulative per-tenant allotment, a
// tenant that burned it is rejected 429 while others proceed.
func TestTenantBudgetExhaustion(t *testing.T) {
	s := New(Config{Workers: 1, TenantBudget: 1})
	defer shutdown(t, s)
	req := fastReq(1)
	req.Tenant = "greedy"
	if resp := s.Do(context.Background(), req, nil); resp.Status != 200 {
		t.Fatalf("first request = %+v, want 200", resp)
	}
	if resp := s.Do(context.Background(), req, nil); resp.Status != 429 || !strings.Contains(resp.Err, "budget") {
		t.Fatalf("over-budget request = %+v, want 429 budget", resp)
	}
	other := fastReq(2)
	other.Tenant = "frugal"
	if resp := s.Do(context.Background(), other, nil); resp.Status != 200 {
		t.Fatalf("other tenant = %+v, want 200", resp)
	}
}

// TestWorkerCountInvariantReports pins the determinism criterion: the
// same request analyzed by fleets with AnalysisWorkers 1, 4, and 8 under
// a FakeClock yields byte-identical reports (wall-clock seconds zeroed;
// everything else, telemetry included, must match).
func TestWorkerCountInvariantReports(t *testing.T) {
	requests := map[string]Request{
		"clean":    {NF: "lpm-trie", Packets: 3, MaxStates: 900, Seed: 11},
		"degraded": {NF: "nat-chain", Packets: 3, MaxStates: 900, Seed: 11, Budget: 400},
	}
	for name, req := range requests {
		var golden []byte
		for _, w := range []int{1, 4, 8} {
			s := New(Config{Workers: 1, AnalysisWorkers: w, Clock: obs.NewFakeClock(1000)})
			resp := s.Do(context.Background(), req, nil)
			shutdown(t, s)
			if resp.Status != 200 {
				t.Fatalf("%s W=%d: %+v", name, w, resp)
			}
			rep := *resp.Report
			rep.AnalysisSeconds = 0
			data, err := json.Marshal(&rep)
			if err != nil {
				t.Fatal(err)
			}
			if golden == nil {
				golden = data
				if name == "degraded" && len(resp.Report.Degradations) == 0 {
					t.Fatalf("%s: budget %d did not degrade", name, req.Budget)
				}
				continue
			}
			if string(data) != string(golden) {
				t.Errorf("%s W=%d report differs from W=1:\n%s\nvs\n%s", name, w, data, golden)
			}
		}
	}
}

// TestDeadlineDegradesUnderFakeClock: a request deadline measured on the
// injected clock cuts the analysis into a valid degraded 200 — the
// service-level version of budget_test's deadline pin.
func TestDeadlineDegradesUnderFakeClock(t *testing.T) {
	s := New(Config{Workers: 1, Clock: obs.NewFakeClock(uint64(time.Millisecond))})
	defer shutdown(t, s)
	req := Request{NF: "lpm-trie", Packets: 3, MaxStates: 20000, Seed: 2, DeadlineMS: 1}
	resp := s.Do(context.Background(), req, nil)
	if resp.Status != 200 || !resp.Degraded {
		t.Fatalf("deadline response = %+v, want degraded 200", resp)
	}
	if err := resp.Report.Check("lpm-trie"); err != nil {
		t.Fatalf("deadline report invalid: %v", err)
	}
}

// TestHTTPEndpoints exercises the HTTP surface end to end against a live
// handler: lifecycle probes, the catalog, a GET analysis (the
// reportcheck -url shape), error mapping, and the SSE stream's
// progress-then-report contract.
func TestHTTPEndpoints(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d, want 200", probe, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/analyze?nf=nop&packets=2&states=300&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := readReportHTTP(resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check("nop"); err != nil {
		t.Fatalf("GET report invalid: %v", err)
	}
	if got := resp.Header.Get("X-Castan-Degraded"); got != "false" {
		t.Errorf("X-Castan-Degraded = %q, want false", got)
	}

	// Error mapping: unknown NF is a JSON 400, not a panic or a 500.
	resp, err = http.Get(ts.URL + "/v1/analyze?nf=no-such-nf")
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("400 body not a JSON error: %v %+v", err, e)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown nf = %d, want 400", resp.StatusCode)
	}

	// Chaos fields are rejected while chaos is disabled.
	resp, err = http.Get(ts.URL + "/v1/analyze?nf=nop&chaos=panic-worker")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("chaos without -chaos = %d, want 400", resp.StatusCode)
	}

	// SSE: progress events then one terminal report event.
	resp, err = http.Get(ts.URL + "/v1/analyze?nf=nop&packets=2&states=300&seed=2&stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	var sawProgress, sawReport bool
	var last string
	buf := make([]byte, 1<<20)
	n, _ := io.ReadFull(resp.Body, buf)
	for _, line := range strings.Split(string(buf[:n]), "\n") {
		if strings.HasPrefix(line, "event: progress") {
			sawProgress = true
		}
		if strings.HasPrefix(line, "event: report") {
			sawReport = true
		}
		if strings.HasPrefix(line, "data: ") {
			last = strings.TrimPrefix(line, "data: ")
		}
	}
	if !sawProgress || !sawReport {
		t.Fatalf("SSE stream missing events: progress=%v report=%v", sawProgress, sawReport)
	}
	var final struct {
		Status int            `json:"status"`
		Report *castan.Report `json:"report"`
	}
	if err := json.Unmarshal([]byte(last), &final); err != nil {
		t.Fatalf("terminal SSE event: %v", err)
	}
	if final.Status != 200 || final.Report.Check("nop") != nil {
		t.Fatalf("terminal SSE event invalid: status %d", final.Status)
	}
}

func readReportHTTP(resp *http.Response) (*castan.Report, error) {
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return castan.ReadReport(resp.Body)
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"castan/internal/faultinject"
	"castan/internal/retry"
)

// TestChaosSoak is the acceptance soak for the service's robustness
// contract: a live server fed the full faultinject.MatrixPlans catalog
// across several NFs, concurrent overload (a queue small enough that
// 429 pushback must fire), tiny budgets, and worker-panic chaos —
// simultaneously. The server must survive it all:
//
//   - zero 500s: every response is 200 (valid Report, degraded or not),
//     429 (admission pushback), or 503 (crash/quarantine/drain);
//   - every 200 passes the Report schema gate;
//   - backpressure was actually observed (at least one 429);
//   - every injected fault plan produced a degraded-but-valid report;
//   - worker crashes were contained and restarted (counters moved, and
//     healthy requests still succeed afterwards);
//   - a drain during the tail returns valid degraded reports.
func TestChaosSoak(t *testing.T) {
	s := New(Config{
		Workers:         4,
		AnalysisWorkers: 2,
		QueueDepth:      3, // small on purpose: overload must surface as 429s
		TenantCap:       64,
		AllowChaos:      true,
		CrashQuarantine: 2,
		Restart:         retry.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Seed: 9},
	})

	nfs := []string{"nop", "lpm-trie", "nat-chain"}
	var reqs []Request
	// Every fault plan against every NF, plus a tiny-budget variant.
	for _, p := range faultinject.MatrixPlans() {
		for i, name := range nfs {
			reqs = append(reqs, Request{
				NF: name, Packets: 3, MaxStates: 700,
				Seed: uint64(i + 1), Fault: p.Name, Tenant: "fault",
			})
		}
		reqs = append(reqs, Request{
			NF: "lpm-trie", Packets: 3, MaxStates: 700,
			Seed: 1, Fault: p.Name, Budget: 150, Tenant: "fault",
		})
	}
	// Overload burst: more concurrent healthy work than queue+fleet holds.
	for i := 0; i < 30; i++ {
		reqs = append(reqs, Request{
			NF: nfs[i%len(nfs)], Packets: 2, MaxStates: 500,
			Seed: uint64(100 + i), Tenant: fmt.Sprintf("load-%d", i%4), Priority: i % 3,
		})
	}
	type outcome struct {
		req  Request
		resp Response
	}
	results := make(chan outcome, len(reqs))
	var wg sync.WaitGroup
	for _, req := range reqs {
		wg.Add(1)
		go func(req Request) {
			defer wg.Done()
			results <- outcome{req, s.Do(context.Background(), req, nil)}
		}(req)
	}
	wg.Wait()
	close(results)

	var n429, n503, nDegraded, faultOK int
	for out := range results {
		switch out.resp.Status {
		case 200:
			if err := out.resp.Report.Check(out.req.NF); err != nil {
				t.Errorf("invalid 200 report for %+v: %v", out.req, err)
			}
			if out.resp.Degraded {
				nDegraded++
			}
			if out.req.Fault != "" {
				faultOK++
				if !out.resp.Degraded {
					// Fault plans must leave a degradation trace — that is
					// the point of the matrix.
					t.Errorf("fault %s on %s produced a clean report", out.req.Fault, out.req.NF)
				}
			}
		case 429:
			n429++
		case 503:
			n503++
		default:
			t.Errorf("request %+v got status %d — the never-500 contract is broken", out.req, out.resp.Status)
		}
	}
	if n429 == 0 {
		t.Error("no 429 observed: overload never hit admission control")
	}
	if faultOK == 0 {
		t.Error("no fault-plan request completed")
	}
	if nDegraded == 0 {
		t.Error("no degraded report observed")
	}

	// Worker-panic chaos, sequentially so the crash count per shape is
	// exact: two crashes trip the breaker, the third hits quarantine.
	boom := Request{NF: "nop", Packets: 2, MaxStates: 300, Chaos: ChaosPanicWorker, Tenant: "chaos"}
	for i := 0; i < 2; i++ {
		if resp := s.Do(context.Background(), boom, nil); resp.Status != 503 || !strings.Contains(resp.Err, "crashed") {
			t.Fatalf("panic chaos %d = %+v, want 503 crashed", i, resp)
		}
	}
	if resp := s.Do(context.Background(), boom, nil); resp.Status != 503 || !strings.Contains(resp.Err, "quarantined") {
		t.Fatalf("post-breaker chaos = %+v, want 503 quarantined", resp)
	}

	m := s.Metrics()
	if got := m.Counters[CounterCrashes]; got != 2 {
		t.Errorf("%s = %d, want 2", CounterCrashes, got)
	}
	if got := m.Counters[CounterQuarantineOpens]; got != 1 {
		t.Errorf("%s = %d, want 1", CounterQuarantineOpens, got)
	}

	// The fleet is still healthy: a plain request completes cleanly.
	resp := s.Do(context.Background(), Request{NF: "lpm-trie", Packets: 3, MaxStates: 700, Seed: 42}, nil)
	if resp.Status != 200 || resp.Report.Check("lpm-trie") != nil {
		t.Fatalf("post-soak request = %+v, want clean 200", resp)
	}

	// Drain during a final in-flight request: valid degraded 200.
	var drainResp Response
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		drainResp = s.Do(context.Background(), Request{NF: "nat-chain", Packets: 8, MaxStates: 50000, Seed: 7}, nil)
	}()
	waitFor(t, "drain victim in flight", func() bool { _, inflight := s.queueSnapshot(); return inflight >= 1 })
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dwg.Wait()
	if drainResp.Status != 200 || !drainResp.Degraded {
		t.Fatalf("drain response = %+v, want degraded 200", drainResp)
	}
	if err := drainResp.Report.Check("nat-chain"); err != nil {
		t.Fatalf("drain report invalid: %v", err)
	}
	// The cut reason may be "server draining" or a stage's own budget if
	// the job crossed that checkpoint first — either way the report is a
	// valid partial. TestShutdownDrainsToValidDegradedReports pins the
	// drain-specific reason on a quiet server.
}

// Package experiments reproduces the paper's evaluation (§5): every table
// (1-5) and every figure (4-15) has a generator here that assembles the
// workloads (including the CASTAN-synthesized and Manual adversarial
// ones), runs the measurement campaign on the simulated testbed, and
// renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"castan/internal/budget"
	"castan/internal/castan"
	"castan/internal/faultinject"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/parallel"
	"castan/internal/stats"
	"castan/internal/store"
	"castan/internal/testbed"
	"castan/internal/workload"
)

// Config scales a campaign. The zero value reproduces the full evaluation;
// tests use smaller workloads and budgets.
type Config struct {
	Seed uint64
	// Packets is the Zipfian/UniRand workload size (default 65536).
	Packets int
	// ZipfUniverse is the Zipfian flow universe (default 4096).
	ZipfUniverse int
	// MeasureCap bounds measured packets per experiment (default 8192).
	MeasureCap int
	// CastanStates is CASTAN's exploration budget per NF (default 6000).
	CastanStates int
	// CastanPackets overrides the synthesized workload length per NF;
	// missing entries use the paper's Table 4 sizes.
	CastanPackets map[string]int
	// Workers bounds the campaign fan-out (0 = GOMAXPROCS): per-NF CASTAN
	// analyses, per-workload measurements, and the parallel stages inside
	// each analysis. Every rendered table and figure is identical at
	// every worker count (Table 4's wall-clock column excepted — it
	// reports real elapsed time by design).
	Workers int
	// Obs, when non-nil, instruments every per-NF CASTAN analysis in the
	// campaign (shared recorder; counters aggregate across NFs).
	Obs *obs.Recorder
	// CastanBudget, when non-zero, caps each per-NF analysis at that many
	// deterministic ticks. Each analysis gets its own meter — a meter
	// shared across the campaign's concurrent analyses would make *which*
	// NF hits the cut depend on scheduling — so every NF degrades (or
	// not) reproducibly on its own.
	CastanBudget uint64
	// Faults arms the same fault plan on every per-NF analysis (tests
	// and chaos campaigns only).
	Faults *faultinject.Plan
	// Store, when non-nil, is the cross-run artifact store every per-NF
	// analysis consults for its cache model and rainbow tables (see
	// castan.Config.Store).
	Store *store.Store
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 2018
	}
	if c.Packets <= 0 {
		c.Packets = workload.DefaultPackets
	}
	if c.ZipfUniverse <= 0 {
		c.ZipfUniverse = workload.DefaultZipfUniverse
	}
	if c.MeasureCap <= 0 {
		c.MeasureCap = 8192
	}
	if c.CastanStates <= 0 {
		c.CastanStates = 6000
	}
}

// PaperPackets is the paper's Table 4 workload sizes per NF.
var PaperPackets = map[string]int{
	"lb-chain":   30,
	"lb-ring":    40,
	"lb-rbtree":  30,
	"lb-ubtree":  30,
	"lpm-trie":   30,
	"lpm-dl1":    40,
	"lpm-dl2":    40,
	"nat-chain":  30,
	"nat-ring":   40,
	"nat-rbtree": 35,
	"nat-ubtree": 50,
}

// Campaign caches per-NF CASTAN outputs and measurements across the
// tables and figures, which share them. All caches are memoizing
// single-flight groups, so concurrent figure/table renders — and the
// campaign's own fan-out across NFs and workloads — never recompute or
// duplicate an analysis or a measurement.
type Campaign struct {
	cfg  Config
	opts testbed.Options

	outs parallel.Group[string, *castan.Output]
	meas parallel.Group[string, *testbed.Measurement]
	nop  parallel.Group[struct{}, *testbed.Measurement]
}

// NewCampaign prepares a campaign.
func NewCampaign(cfg Config) *Campaign {
	cfg.fill()
	return &Campaign{
		cfg:  cfg,
		opts: testbed.Options{Seed: cfg.Seed, MeasureCap: cfg.MeasureCap},
	}
}

// Castan returns (cached) the CASTAN analysis of the named NF.
func (c *Campaign) Castan(nfName string) (*castan.Output, error) {
	return c.outs.Do(nfName, func() (*castan.Output, error) {
		// Campaign analyses fan out concurrently over one shared recorder,
		// so these events are live telemetry — per-subscriber ordered and
		// set-deterministic, but the interleaving across NFs reflects real
		// scheduling (unlike the single-Analyze stream, which is
		// byte-identical under a fake clock).
		c.cfg.Obs.Progress("campaign", nfName, 0, 1)
		inst, err := nf.New(nfName)
		if err != nil {
			return nil, err
		}
		np := c.cfg.CastanPackets[nfName]
		if np == 0 {
			np = PaperPackets[nfName]
		}
		if np == 0 {
			np = 30
		}
		hier := memsim.New(c.opts.Geometry, c.cfg.Seed)
		if c.opts.Geometry.LineBytes == 0 {
			hier = memsim.New(memsim.DefaultGeometry(), c.cfg.Seed)
		}
		ccfg := castan.Config{
			NPackets:  np,
			MaxStates: c.cfg.CastanStates,
			Seed:      c.cfg.Seed,
			Workers:   c.cfg.Workers,
			Obs:       c.cfg.Obs,
			Faults:    c.cfg.Faults,
			Store:     c.cfg.Store,
		}
		if c.cfg.CastanBudget > 0 {
			ccfg.Budget = budget.New(c.cfg.CastanBudget)
		}
		out, err := castan.Analyze(inst, hier, ccfg)
		if err == nil {
			c.cfg.Obs.Progress("campaign", nfName, 1, 1)
		}
		return out, err
	})
}

// Workloads assembles the full workload set for an NF: 1 Packet, Zipfian,
// UniRand, UniRand CASTAN, CASTAN, and Manual where the paper crafted one.
func (c *Campaign) Workloads(nfName string) ([]*workload.Workload, error) {
	prof := workload.ProfileFor(nfName)
	zipf, err := workload.Zipfian(prof, c.cfg.Packets, c.cfg.ZipfUniverse, c.cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	out, err := c.Castan(nfName)
	if err != nil {
		return nil, fmt.Errorf("castan(%s): %w", nfName, err)
	}
	cw := workload.FromFrames("CASTAN", out.Frames)
	list := []*workload.Workload{
		workload.OnePacket(prof),
		zipf,
		workload.UniRand(prof, c.cfg.Packets, c.cfg.Seed+2),
		workload.UniRandN(prof, len(out.Frames), c.cfg.Seed+3),
		cw,
	}
	inst, err := nf.New(nfName)
	if err != nil {
		return nil, err
	}
	if inst.Manual != nil {
		list = append(list, workload.FromFrames("Manual", inst.Manual(len(out.Frames))))
	}
	return list, nil
}

// Measure returns (cached) the measurement of one NF under one workload.
func (c *Campaign) Measure(nfName string, wl *workload.Workload) (*testbed.Measurement, error) {
	return c.meas.Do(nfName+"\x00"+wl.Name, func() (*testbed.Measurement, error) {
		return testbed.Measure(nfName, wl, c.opts)
	})
}

// MeasureAll measures every workload for an NF — fanning out across the
// campaign's workers — returning them keyed by workload name (plus the
// NOP baseline under "NOP").
func (c *Campaign) MeasureAll(nfName string) (map[string]*testbed.Measurement, error) {
	wls, err := c.Workloads(nfName)
	if err != nil {
		return nil, err
	}
	ms, err := parallel.MapErr(c.cfg.Workers, len(wls)+1, func(i int) (*testbed.Measurement, error) {
		if i == len(wls) {
			return c.NOP()
		}
		m, err := c.Measure(nfName, wls[i])
		if err != nil {
			return nil, fmt.Errorf("measure %s/%s: %w", nfName, wls[i].Name, err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]*testbed.Measurement{}
	for i, wl := range wls {
		out[wl.Name] = ms[i]
	}
	out["NOP"] = ms[len(wls)]
	return out, nil
}

// NOP returns the cached NOP baseline measurement.
func (c *Campaign) NOP() (*testbed.Measurement, error) {
	return c.nop.Do(struct{}{}, func() (*testbed.Measurement, error) {
		return testbed.MeasureNOP(c.opts)
	})
}

// Figure is one reproduced figure: named CDF series over a shared axis.
type Figure struct {
	ID     int
	Title  string
	XLabel string
	Series map[string]*stats.CDF
}

// Render draws the figure as ASCII art.
func (f *Figure) Render() string {
	return stats.Render(fmt.Sprintf("Figure %d: %s", f.ID, f.Title), f.XLabel, f.Series, 72, 18)
}

// figureSpec maps paper figure numbers to NF and metric.
var figureSpecs = map[int]struct {
	nf     string
	metric string // "latency" or "cycles"
	title  string
}{
	4:  {"lpm-dl1", "latency", "End-to-end latency CDF for LPM with 1-stage Direct Lookup"},
	5:  {"lpm-dl1", "cycles", "CPU reference cycles CDF for LPM with 1-stage Direct Lookup"},
	6:  {"lpm-dl2", "latency", "End-to-end latency CDF for LPM with 2-stage Direct Lookup"},
	7:  {"lpm-trie", "latency", "End-to-end latency CDF for LPM with a Patricia trie"},
	8:  {"lpm-trie", "cycles", "CPU reference cycles CDF for LPM with a Patricia trie"},
	9:  {"nat-ubtree", "latency", "End-to-end latency CDF for NAT with an unbalanced tree"},
	10: {"nat-ubtree", "cycles", "CPU reference cycles CDF for NAT with an unbalanced tree"},
	11: {"nat-rbtree", "latency", "End-to-end latency CDF for NAT with a red-black tree"},
	12: {"lb-chain", "latency", "End-to-end latency CDF for LB with a hash table"},
	13: {"lb-ring", "latency", "End-to-end latency CDF for LB with a hash ring"},
	14: {"nat-chain", "latency", "End-to-end latency CDF for NAT with a hash table"},
	15: {"nat-ring", "latency", "End-to-end latency CDF for NAT with a hash ring"},
}

// FigureIDs lists the reproducible figures in order.
func FigureIDs() []int {
	ids := make([]int, 0, len(figureSpecs))
	for id := range figureSpecs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// FigureNF returns which NF a figure measures.
func FigureNF(id int) string { return figureSpecs[id].nf }

// Figure reproduces one paper figure.
func (c *Campaign) Figure(id int) (*Figure, error) {
	spec, ok := figureSpecs[id]
	if !ok {
		return nil, fmt.Errorf("experiments: no figure %d", id)
	}
	ms, err := c.MeasureAll(spec.nf)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: spec.title, Series: map[string]*stats.CDF{}}
	for name, m := range ms {
		if spec.metric == "cycles" {
			fig.Series[name] = m.Cycles
		} else {
			fig.Series[name] = m.Latency
		}
	}
	if spec.metric == "cycles" {
		fig.XLabel = "reference clock cycles"
	} else {
		fig.XLabel = "latency (ns)"
	}
	return fig, nil
}

// Table is one reproduced table.
type Table struct {
	ID      int
	Title   string
	Columns []string
	Rows    []TableRow
}

// TableRow is one row: a label plus one cell per column ("" = the paper
// has no value there either).
type TableRow struct {
	Label string
	Cells []string
}

// Render formats the table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s\n", t.ID, t.Title)
	w := 11
	fmt.Fprintf(&b, "%-16s", "")
	for _, col := range t.Columns {
		fmt.Fprintf(&b, "%*s", w, col)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-16s", r.Label)
		for _, cell := range r.Cells {
			fmt.Fprintf(&b, "%*s", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TableNFs is the paper's column order for Tables 1-3 and 5.
var TableNFs = []string{
	"lpm-dl1", "lpm-dl2", "lpm-trie",
	"lb-ubtree", "nat-ubtree", "lb-rbtree", "nat-rbtree",
	"nat-chain", "lb-chain", "nat-ring", "lb-ring",
}

// workloadRows is the paper's row order.
var workloadRows = []string{"NOP", "1 Packet", "Zipfian", "UniRand", "UniRand CASTAN", "CASTAN", "Manual"}

// metricTable builds Tables 1-3: one row per workload, one column per NF.
// Columns are independent (NF campaigns share only cached artifacts), so
// they fan out across the campaign's workers and merge in column order.
func (c *Campaign) metricTable(id int, title string, nfs []string, cell func(m *testbed.Measurement) string) (*Table, error) {
	t := &Table{ID: id, Title: title, Columns: nfs}
	cols, err := parallel.MapErr(c.cfg.Workers, len(nfs), func(col int) (map[string]*testbed.Measurement, error) {
		return c.MeasureAll(nfs[col])
	})
	if err != nil {
		return nil, err
	}
	rows := map[string]*TableRow{}
	for _, w := range workloadRows {
		rows[w] = &TableRow{Label: w, Cells: make([]string, len(nfs))}
	}
	for col := range nfs {
		for _, w := range workloadRows {
			if m, ok := cols[col][w]; ok {
				rows[w].Cells[col] = cell(m)
			} else {
				rows[w].Cells[col] = "-"
			}
		}
	}
	for _, w := range workloadRows {
		t.Rows = append(t.Rows, *rows[w])
	}
	return t, nil
}

// Table1 reproduces "Maximum throughput measured for each NF under each
// workload (Mpps)".
func (c *Campaign) Table1(nfs []string) (*Table, error) {
	if nfs == nil {
		nfs = TableNFs
	}
	return c.metricTable(1, "Maximum throughput (Mpps)", nfs, func(m *testbed.Measurement) string {
		return fmt.Sprintf("%.2f", m.ThroughputMpps)
	})
}

// Table2 reproduces "Median instructions retired per packet".
func (c *Campaign) Table2(nfs []string) (*Table, error) {
	if nfs == nil {
		nfs = TableNFs
	}
	return c.metricTable(2, "Median instructions retired per packet", nfs, func(m *testbed.Measurement) string {
		return fmt.Sprintf("%.0f", m.Instrs.Median())
	})
}

// Table3 reproduces "Median L3 misses per packet".
func (c *Campaign) Table3(nfs []string) (*Table, error) {
	if nfs == nil {
		nfs = TableNFs
	}
	return c.metricTable(3, "Median L3 misses per packet", nfs, func(m *testbed.Measurement) string {
		return fmt.Sprintf("%.0f", m.L3Misses.Median())
	})
}

// Table4 reproduces "List of NFs, indicating how many packets we generated
// and the analysis run time".
func (c *Campaign) Table4(nfs []string) (*Table, error) {
	if nfs == nil {
		nfs = TableNFs
	}
	t := &Table{ID: 4, Title: "CASTAN workload sizes and analysis time", Columns: []string{"# Packets", "Time (s)", "States", "Havocs"}}
	outs, err := parallel.MapErr(c.cfg.Workers, len(nfs), func(i int) (*castan.Output, error) {
		return c.Castan(nfs[i])
	})
	if err != nil {
		return nil, err
	}
	for i, nfName := range nfs {
		out := outs[i]
		t.Rows = append(t.Rows, TableRow{
			Label: nfName,
			Cells: []string{
				fmt.Sprintf("%d", len(out.Frames)),
				fmt.Sprintf("%.1f", out.AnalysisTime.Seconds()),
				fmt.Sprintf("%d", out.StatesExplored),
				fmt.Sprintf("%d/%d", out.HavocsReconciled, out.HavocsTotal),
			},
		})
	}
	return t, nil
}

// Table5 reproduces "Median latency deviation from NOP (ns)" for Zipfian,
// Manual and CASTAN.
func (c *Campaign) Table5(nfs []string) (*Table, error) {
	if nfs == nil {
		nfs = TableNFs
	}
	t := &Table{ID: 5, Title: "Median latency deviation from NOP (ns)", Columns: []string{"Zipfian", "Manual", "CASTAN"}}
	nop, err := c.NOP()
	if err != nil {
		return nil, err
	}
	rows, err := parallel.MapErr(c.cfg.Workers, len(nfs), func(i int) (TableRow, error) {
		ms, err := c.MeasureAll(nfs[i])
		if err != nil {
			return TableRow{}, err
		}
		cells := make([]string, 3)
		for j, w := range []string{"Zipfian", "Manual", "CASTAN"} {
			if m, ok := ms[w]; ok {
				cells[j] = fmt.Sprintf("%.0f", m.MedianDeviation(nop))
			} else {
				cells[j] = "-"
			}
		}
		return TableRow{Label: nfs[i], Cells: cells}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Elapsed is a small helper for progress reporting in the binaries.
func Elapsed(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }

package experiments

import (
	"strings"
	"testing"

	"castan/internal/workload"
)

func TestMixWorkloadsFractions(t *testing.T) {
	bg := workload.UniRand(workload.ProfileLPM, 1000, 1)
	adv := workload.UniRandN(workload.ProfileLPM, 10, 2)

	if got := MixWorkloads(bg, adv, 0); got != bg {
		t.Error("fraction 0 should return background unchanged")
	}
	if got := MixWorkloads(bg, adv, 1); got != adv {
		t.Error("fraction 1 should return adversarial unchanged")
	}

	mixed := MixWorkloads(bg, adv, 0.25)
	total := len(mixed.Frames)
	advSet := map[string]bool{}
	for _, fr := range adv.Frames {
		advSet[string(fr)] = true
	}
	nAdv := 0
	for _, fr := range mixed.Frames {
		if advSet[string(fr)] {
			nAdv++
		}
	}
	frac := float64(nAdv) / float64(total)
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("adversarial fraction = %.3f, want ~0.25", frac)
	}
	// Background packets must all survive.
	if total-nAdv != 1000 {
		t.Errorf("background packets = %d, want 1000", total-nAdv)
	}
	// Adversarial packets must be spread, not bunched at the end: the
	// first quarter of the stream should already contain some.
	early := 0
	for _, fr := range mixed.Frames[:total/4] {
		if advSet[string(fr)] {
			early++
		}
	}
	if early == 0 {
		t.Error("adversarial packets bunched at the end")
	}
}

func TestMixedSweepHeadOfLineBlocking(t *testing.T) {
	// §5.5's hypothesis: adversarial fractions raise tail latency for
	// everyone. Verified on the cheapest attackable NF.
	c := quick(t)
	res, err := c.MixedSweep("lpm-dl1", []float64{0, 0.25, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	clean, mixed, full := res.Points[0], res.Points[1], res.Points[2]
	if mixed.P95NS <= clean.P95NS {
		t.Errorf("25%% adversarial p95 %.0f not above clean %.0f", mixed.P95NS, clean.P95NS)
	}
	if full.MedianNS <= clean.MedianNS {
		t.Errorf("100%% adversarial median %.0f not above clean %.0f", full.MedianNS, clean.MedianNS)
	}
	if full.ThroughputMpps >= clean.ThroughputMpps {
		t.Errorf("100%% adversarial throughput %.2f not below clean %.2f",
			full.ThroughputMpps, clean.ThroughputMpps)
	}
	s := res.Render()
	for _, want := range []string{"lpm-dl1", "fraction", "25%"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	if dp := res.DamagePerPacket(); len(dp) != 2 {
		t.Errorf("DamagePerPacket = %v", dp)
	}
}

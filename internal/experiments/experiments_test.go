package experiments

import (
	"strings"
	"testing"
)

// quick returns a scaled-down campaign whose workloads and budgets keep
// the full pipeline (discovery → symbex → reconcile → measure) exercised
// while fitting in test time. Shape assertions, not absolute numbers.
func quick(t *testing.T) *Campaign {
	t.Helper()
	return NewCampaign(Config{
		Seed:         2018,
		Packets:      8192,
		ZipfUniverse: 1024,
		MeasureCap:   1024,
		CastanStates: 60000,
		CastanPackets: map[string]int{
			"lpm-dl1":    20,
			"lpm-dl2":    10,
			"lpm-trie":   10,
			"nat-ubtree": 12,
			"lb-ubtree":  10,
			"nat-rbtree": 8,
			"lb-rbtree":  8,
			"lb-chain":   10,
			"nat-chain":  8,
			"lb-ring":    20,
			"nat-ring":   20,
		},
	})
}

func median(t *testing.T, c *Campaign, nfName, wl string) float64 {
	t.Helper()
	ms, err := c.MeasureAll(nfName)
	if err != nil {
		t.Fatalf("MeasureAll(%s): %v", nfName, err)
	}
	m, ok := ms[wl]
	if !ok {
		t.Fatalf("no workload %q for %s", wl, nfName)
	}
	return m.Latency.Median()
}

func TestFig4ShapeDL1(t *testing.T) {
	// CASTAN (few packets) ≈ UniRand (thousands) ≫ Zipfian ≈ 1 Packet.
	c := quick(t)
	one := median(t, c, "lpm-dl1", "1 Packet")
	zipf := median(t, c, "lpm-dl1", "Zipfian")
	uni := median(t, c, "lpm-dl1", "UniRand")
	urc := median(t, c, "lpm-dl1", "UniRand CASTAN")
	cas := median(t, c, "lpm-dl1", "CASTAN")
	if zipf > one*1.05 {
		t.Errorf("Zipfian %.0f should ride the 1-Packet floor %.0f", zipf, one)
	}
	if urc > one*1.05 {
		t.Errorf("UniRand-CASTAN %.0f should ride the floor %.0f", urc, one)
	}
	if cas < zipf+25 {
		t.Errorf("CASTAN %.0f not clearly above Zipfian %.0f", cas, zipf)
	}
	if cas < uni*0.9 {
		t.Errorf("CASTAN %.0f should match UniRand %.0f with 400x fewer packets", cas, uni)
	}
	// Fig 5's µarch confirmation: same instructions, more L3 misses.
	ms, _ := c.MeasureAll("lpm-dl1")
	if ms["CASTAN"].Instrs.Median() != ms["Zipfian"].Instrs.Median() {
		t.Errorf("instr medians differ: CASTAN %.0f vs Zipfian %.0f",
			ms["CASTAN"].Instrs.Median(), ms["Zipfian"].Instrs.Median())
	}
	if ms["CASTAN"].L3Misses.Median() <= ms["Zipfian"].L3Misses.Median() {
		t.Errorf("CASTAN misses %.0f not above Zipfian %.0f",
			ms["CASTAN"].L3Misses.Median(), ms["Zipfian"].L3Misses.Median())
	}
	// Table 1's headline: CASTAN cuts throughput vs Zipfian.
	if ms["CASTAN"].ThroughputMpps >= ms["Zipfian"].ThroughputMpps {
		t.Errorf("CASTAN throughput %.2f not below Zipfian %.2f",
			ms["CASTAN"].ThroughputMpps, ms["Zipfian"].ThroughputMpps)
	}
}

func TestFig6ShapeDL2(t *testing.T) {
	// The small first stage defeats the contention attack: CASTAN rides
	// the floor with everything except UniRand.
	c := quick(t)
	out, err := c.Castan("lpm-dl2")
	if err != nil {
		t.Fatal(err)
	}
	if out.ContentionSetsFound != 0 {
		t.Errorf("dl2 discovery found %d sets, want 0", out.ContentionSetsFound)
	}
	cas := median(t, c, "lpm-dl2", "CASTAN")
	urc := median(t, c, "lpm-dl2", "UniRand CASTAN")
	uni := median(t, c, "lpm-dl2", "UniRand")
	if cas > urc*1.05 {
		t.Errorf("CASTAN %.0f should match UniRand-CASTAN %.0f on dl2", cas, urc)
	}
	if uni < cas {
		t.Errorf("UniRand %.0f should still exceed CASTAN %.0f (large flow count)", uni, cas)
	}
}

func TestFig7ShapeTrie(t *testing.T) {
	// CASTAN ≈ Manual (deep routes) on instructions per packet.
	c := quick(t)
	ms, err := c.MeasureAll("lpm-trie")
	if err != nil {
		t.Fatal(err)
	}
	cas := ms["CASTAN"].Instrs.Median()
	man := ms["Manual"].Instrs.Median()
	urc := ms["UniRand CASTAN"].Instrs.Median()
	if cas < man*0.9 {
		t.Errorf("CASTAN instrs %.0f well below Manual %.0f", cas, man)
	}
	if cas < urc {
		t.Errorf("CASTAN instrs %.0f below random same-size %.0f", cas, urc)
	}
}

func TestFig9ShapeNATUBTree(t *testing.T) {
	// The skew attack: CASTAN ≈ Manual, both above the same-size random
	// workload (which builds a balanced-ish tree).
	c := quick(t)
	ms, err := c.MeasureAll("nat-ubtree")
	if err != nil {
		t.Fatal(err)
	}
	cas := ms["CASTAN"].Instrs.Median()
	man := ms["Manual"].Instrs.Median()
	urc := ms["UniRand CASTAN"].Instrs.Median()
	if cas < urc+20 {
		t.Errorf("CASTAN instrs %.0f not above random same-size %.0f", cas, urc)
	}
	if cas < man*0.75 {
		t.Errorf("CASTAN instrs %.0f far below Manual %.0f", cas, man)
	}
}

func TestFig11ShapeNATRBTree(t *testing.T) {
	// The red-black tree thwarts skew: latency ordered by flow count, so
	// the small CASTAN workload sits at the bottom.
	c := quick(t)
	cas := median(t, c, "nat-rbtree", "CASTAN")
	zipf := median(t, c, "nat-rbtree", "Zipfian")
	uni := median(t, c, "nat-rbtree", "UniRand")
	if cas > zipf {
		t.Errorf("CASTAN %.0f above Zipfian %.0f on the red-black tree", cas, zipf)
	}
	if zipf > uni {
		t.Errorf("Zipfian %.0f above UniRand %.0f: flow-count ordering broken", zipf, uni)
	}
}

func TestFig12ShapeLBChain(t *testing.T) {
	// Persistent collisions: CASTAN above the same-size random workload.
	c := quick(t)
	out, err := c.Castan("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	if out.HavocsReconciled < out.HavocsTotal {
		t.Errorf("lb-chain reconciliation incomplete: %d/%d", out.HavocsReconciled, out.HavocsTotal)
	}
	ms, err := c.MeasureAll("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	if ms["CASTAN"].Instrs.Median() <= ms["UniRand CASTAN"].Instrs.Median() {
		t.Errorf("CASTAN instrs %.0f not above same-size random %.0f",
			ms["CASTAN"].Instrs.Median(), ms["UniRand CASTAN"].Instrs.Median())
	}
}

func TestFig14ShapeNATChain(t *testing.T) {
	// The NAT's two related keys defeat full reconciliation: CASTAN stays
	// well below UniRand.
	c := quick(t)
	out, err := c.Castan("nat-chain")
	if err != nil {
		t.Fatal(err)
	}
	if out.HavocsReconciled >= out.HavocsTotal {
		t.Errorf("nat-chain fully reconciled (%d/%d); the paper's failure mode vanished",
			out.HavocsReconciled, out.HavocsTotal)
	}
	cas := median(t, c, "nat-chain", "CASTAN")
	uni := median(t, c, "nat-chain", "UniRand")
	if cas > uni {
		t.Errorf("CASTAN %.0f above UniRand %.0f despite failed reconciliation", cas, uni)
	}
}

func TestFig13ShapeLBRing(t *testing.T) {
	if testing.Short() {
		t.Skip("ring analysis is slow")
	}
	// Cache contention dominates: CASTAN's misses far above the same-size
	// random workload's.
	c := quick(t)
	ms, err := c.MeasureAll("lb-ring")
	if err != nil {
		t.Fatal(err)
	}
	if ms["CASTAN"].L3Misses.Median() <= ms["UniRand CASTAN"].L3Misses.Median() {
		t.Errorf("CASTAN misses %.0f not above same-size random %.0f",
			ms["CASTAN"].L3Misses.Median(), ms["UniRand CASTAN"].L3Misses.Median())
	}
	if ms["CASTAN"].Latency.Median() <= ms["UniRand CASTAN"].Latency.Median() {
		t.Errorf("CASTAN latency %.0f not above same-size random %.0f",
			ms["CASTAN"].Latency.Median(), ms["UniRand CASTAN"].Latency.Median())
	}
}

func TestTablesRender(t *testing.T) {
	c := quick(t)
	nfs := []string{"lpm-dl1", "lpm-dl2"}
	t4, err := c.Table4(nfs)
	if err != nil {
		t.Fatal(err)
	}
	s := t4.Render()
	for _, want := range []string{"Table 4", "lpm-dl1", "# Packets"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 4 render missing %q:\n%s", want, s)
		}
	}
	for _, build := range []func([]string) (*Table, error){c.Table1, c.Table2, c.Table3, c.Table5} {
		tbl, err := build(nfs)
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Errorf("table %d empty", tbl.ID)
		}
	}
}

func TestFigureRenderAndIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 12 || ids[0] != 4 || ids[len(ids)-1] != 15 {
		t.Fatalf("FigureIDs = %v", ids)
	}
	if FigureNF(4) != "lpm-dl1" || FigureNF(15) != "nat-ring" {
		t.Error("figure NF mapping broken")
	}
	c := quick(t)
	fig, err := c.Figure(6)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Render()
	for _, want := range []string{"Figure 6", "CASTAN", "UniRand", "latency"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure render missing %q", want)
		}
	}
	if _, err := c.Figure(99); err == nil {
		t.Error("bogus figure accepted")
	}
}

package experiments

import (
	"fmt"
	"strings"

	"castan/internal/parallel"
	"castan/internal/stats"
	"castan/internal/testbed"
	"castan/internal/workload"
)

// This file implements the experiment §5.5 leaves to future work: "a more
// realistic adversary can only inject a fraction of the overall traffic
// as part of a DDoS campaign". MixedSweep interleaves a CASTAN workload
// into background Zipfian traffic at increasing fractions and measures
// the damage per adversarial packet — the cost-benefit view from the
// attacker's side the paper asks for.

// MixPoint is one measurement of the sweep.
type MixPoint struct {
	// Fraction of packets that are adversarial, in [0,1].
	Fraction float64
	// MedianNS and P95NS summarize the latency of ALL traffic (victims
	// included — head-of-line blocking is the point).
	MedianNS float64
	P95NS    float64
	// ThroughputMpps is the max sustainable offered load.
	ThroughputMpps float64
}

// MixedResult is a full sweep for one NF.
type MixedResult struct {
	NF     string
	Points []MixPoint
}

// Render formats the sweep as a table.
func (r *MixedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adversarial-fraction sweep for %s (background: Zipfian)\n", r.NF)
	fmt.Fprintf(&b, "%10s %12s %12s %12s\n", "fraction", "median ns", "p95 ns", "Mpps")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%9.0f%% %12.0f %12.0f %12.2f\n", p.Fraction*100, p.MedianNS, p.P95NS, p.ThroughputMpps)
	}
	return b.String()
}

// MixWorkloads interleaves adversarial frames into background traffic at
// the given fraction, deterministically spreading them out (an attacker
// paces their packets; bursts would only strengthen the effect).
func MixWorkloads(background, adversarial *workload.Workload, fraction float64) *workload.Workload {
	if fraction <= 0 {
		return background
	}
	if fraction >= 1 {
		return adversarial
	}
	n := len(background.Frames)
	total := int(float64(n) / (1 - fraction))
	adv := total - n
	frames := make([][]byte, 0, total)
	bi, ai := 0, 0
	acc := 0.0
	for len(frames) < total && (bi < n || ai < adv) {
		acc += fraction
		if acc >= 1 && ai < adv {
			acc--
			frames = append(frames, adversarial.Frames[ai%len(adversarial.Frames)])
			ai++
		} else if bi < n {
			frames = append(frames, background.Frames[bi])
			bi++
		} else {
			frames = append(frames, adversarial.Frames[ai%len(adversarial.Frames)])
			ai++
		}
	}
	return workload.FromFrames(fmt.Sprintf("Mixed %.0f%%", fraction*100), frames)
}

// MixedSweep measures an NF under increasing adversarial fractions.
// Fractions default to 0, 1%, 5%, 10%, 25%, 50%, 100%.
func (c *Campaign) MixedSweep(nfName string, fractions []float64) (*MixedResult, error) {
	if fractions == nil {
		fractions = []float64{0, 0.01, 0.05, 0.10, 0.25, 0.50, 1}
	}
	prof := workload.ProfileFor(nfName)
	zipf, err := workload.Zipfian(prof, c.cfg.Packets, c.cfg.ZipfUniverse, c.cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	out, err := c.Castan(nfName)
	if err != nil {
		return nil, err
	}
	adv := workload.FromFrames("CASTAN", out.Frames)
	res := &MixedResult{NF: nfName}
	points, err := parallel.MapErr(c.cfg.Workers, len(fractions), func(i int) (MixPoint, error) {
		f := fractions[i]
		wl := MixWorkloads(zipf, adv, f)
		m, err := testbed.Measure(nfName, wl, c.opts)
		if err != nil {
			return MixPoint{}, fmt.Errorf("mixed %s @%.2f: %w", nfName, f, err)
		}
		return MixPoint{
			Fraction:       f,
			MedianNS:       m.Latency.Median(),
			P95NS:          m.Latency.Quantile(0.95),
			ThroughputMpps: m.ThroughputMpps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	return res, nil
}

// DamagePerPacket summarizes the attacker's cost-benefit: extra p95
// latency (over the clean baseline) divided by the adversarial fraction.
// A value that *grows* as the fraction shrinks means small adversarial
// trickles are disproportionately effective.
func (r *MixedResult) DamagePerPacket() []float64 {
	if len(r.Points) == 0 {
		return nil
	}
	base := r.Points[0].P95NS
	var out []float64
	for _, p := range r.Points[1:] {
		if p.Fraction <= 0 {
			continue
		}
		out = append(out, (p.P95NS-base)/p.Fraction)
	}
	return out
}

// CDFOf is a tiny helper re-exported for binaries that want to render a
// mixed run's full distribution.
func CDFOf(m *testbed.Measurement) *stats.CDF { return m.Latency }

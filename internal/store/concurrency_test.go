package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// selfChecking is a payload whose integrity is verifiable from its own
// bytes: Pad is N repeated many times, so any torn or interleaved read
// fails the internal consistency check, not just a byte compare.
type selfChecking struct {
	N   int    `json:"n"`
	Pad string `json:"pad"`
}

func makePayload(t *testing.T, n int) []byte {
	t.Helper()
	data, err := json.Marshal(selfChecking{N: n, Pad: strings.Repeat(fmt.Sprintf("%08d", n), 512)})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func checkPayload(raw []byte) error {
	var p selfChecking
	if err := json.Unmarshal(raw, &p); err != nil {
		return fmt.Errorf("payload not JSON: %w", err)
	}
	if want := strings.Repeat(fmt.Sprintf("%08d", p.N), 512); p.Pad != want {
		return fmt.Errorf("payload %d internally inconsistent (torn read)", p.N)
	}
	return nil
}

// TestConcurrentPutGetNoTornReads hammers one (kind, key) slot with
// racing writers and readers: because commits go through rename, every
// successful Get must observe exactly one complete written value — a
// mix of two writes, or a prefix of one, is a contract violation.
func TestConcurrentPutGetNoTornReads(t *testing.T) {
	s := open(t)
	const writers, writes, readers = 4, 25, 8
	stop := make(chan struct{})
	var torn atomic.Int64
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if raw, ok := s.Get(KindModel, "slot"); ok {
					reads.Add(1)
					if err := checkPayload(raw); err != nil {
						torn.Add(1)
						t.Error(err)
					}
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < writes; i++ {
				if err := s.Put(KindModel, "slot", makePayload(t, w*writes+i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads out of %d", torn.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers never observed a hit — the race never exercised Get")
	}
	// The final state is one complete write, and no temp litter survives.
	raw, ok := s.Get(KindModel, "slot")
	if !ok {
		t.Fatal("slot empty after all writes")
	}
	if err := checkPayload(raw); err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(s.Dir(), "*.tmp")); len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

// TestMidWriteCrashIsCleanMiss simulates a writer killed (SIGKILL,
// power loss) at each point of the Put sequence and checks the store's
// crash contract: the next process sees either the previous complete
// entry or a clean miss — never an error, never partial bytes — and a
// fresh Put fully recovers the slot.
func TestMidWriteCrashIsCleanMiss(t *testing.T) {
	payload := makePayload(t, 7)
	full, err := json.Marshal(envelope{Schema: Schema, Kind: KindRainbow, Key: "k", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}

	crashes := map[string]func(t *testing.T, s *Store){
		// Killed after CreateTemp, before any bytes: empty orphan temp.
		"before-write": func(t *testing.T, s *Store) {
			if err := os.WriteFile(filepath.Join(s.Dir(), KindRainbow+"-123.tmp"), nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// Killed mid-Write: a partial envelope in the temp file.
		"mid-write": func(t *testing.T, s *Store) {
			if err := os.WriteFile(filepath.Join(s.Dir(), KindRainbow+"-456.tmp"), full[:len(full)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// Killed after Close, before Rename: a complete envelope that
		// never got committed. Still invisible — only the rename publishes.
		"before-rename": func(t *testing.T, s *Store) {
			if err := os.WriteFile(filepath.Join(s.Dir(), KindRainbow+"-789.tmp"), full, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// The no-rename case on a filesystem without atomic rename: the
		// final file itself holds a prefix. Get must treat it as a miss.
		"torn-final-file": func(t *testing.T, s *Store) {
			if err := os.WriteFile(s.path(KindRainbow, "k"), full[:len(full)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, crash := range crashes {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			crash(t, s)
			// A fresh Store over the same dir is "the next process".
			s2, err := Open(s.Dir())
			if err != nil {
				t.Fatal(err)
			}
			if raw, ok := s2.Get(KindRainbow, "k"); ok {
				t.Fatalf("crashed write surfaced as a hit: %q", raw)
			}
			// Do re-derives through the miss and heals the slot.
			got, hit, err := s2.Do(KindRainbow, "k", func() ([]byte, error) { return payload, nil })
			if err != nil || hit {
				t.Fatalf("recovery Do: hit=%v err=%v", hit, err)
			}
			if err := checkPayload(got); err != nil {
				t.Fatal(err)
			}
			if raw, ok := s2.Get(KindRainbow, "k"); !ok || checkPayload(raw) != nil {
				t.Fatalf("slot not healed: ok=%v", ok)
			}
		})
	}
}

// TestConcurrentDoDistinctKeys runs the memoizing single-flight across
// many distinct keys at once: each key computes exactly once, flights
// never bleed into each other, and every result lands on disk complete.
func TestConcurrentDoDistinctKeys(t *testing.T) {
	s := open(t)
	const keys, callersPerKey = 8, 6
	computes := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for c := 0; c < callersPerKey; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				key := fmt.Sprintf("key-%d", k)
				got, _, err := s.Do(KindModel, key, func() ([]byte, error) {
					computes[k].Add(1)
					return makePayload(t, k), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				var p selfChecking
				if err := json.Unmarshal(got, &p); err != nil || p.N != k {
					t.Errorf("key %d got payload for %d (err %v) — flights bled", k, p.N, err)
				}
			}(k)
		}
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times", k, n)
		}
		raw, ok := s.Get(KindModel, fmt.Sprintf("key-%d", k))
		if !ok {
			t.Errorf("key %d missing from disk", k)
			continue
		}
		if err := checkPayload(raw); err != nil {
			t.Errorf("key %d: %v", k, err)
		}
	}
}

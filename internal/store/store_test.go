package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	payload := []byte(`{"hello":"world"}`)
	if err := s.Put(KindModel, "k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindModel, "k1")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(KindModel, "other"); ok {
		t.Error("absent key hit")
	}
	if _, ok := s.Get(KindRainbow, "k1"); ok {
		t.Error("same key under different kind hit")
	}
	// Overwrite wins.
	if err := s.Put(KindModel, "k1", []byte(`2`)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(KindModel, "k1"); string(got) != "2" {
		t.Errorf("overwrite lost: %q", got)
	}
	// No temp litter after writes.
	names, _ := filepath.Glob(filepath.Join(s.Dir(), "*.tmp"))
	if len(names) != 0 {
		t.Errorf("temp files left behind: %v", names)
	}
}

// TestCorruptEntriesReadAsMisses is the core robustness contract: no
// on-disk state, however mangled, may surface as anything but a miss.
func TestCorruptEntriesReadAsMisses(t *testing.T) {
	payload := []byte(`{"assoc":16}`)
	corrupt := map[string]func(path string) error{
		"truncated": func(path string) error {
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, raw[:len(raw)/2], 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"version-bumped": func(path string) error {
			var env envelope
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if err := json.Unmarshal(raw, &env); err != nil {
				return err
			}
			env.Schema = "castan-store/v0"
			out, err := json.Marshal(env)
			if err != nil {
				return err
			}
			return os.WriteFile(path, out, 0o644)
		},
		"key-mismatch": func(path string) error {
			var env envelope
			raw, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if err := json.Unmarshal(raw, &env); err != nil {
				return err
			}
			env.Key = "someone-else"
			out, err := json.Marshal(env)
			if err != nil {
				return err
			}
			return os.WriteFile(path, out, 0o644)
		},
	}
	for name, mangle := range corrupt {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			if err := s.Put(KindModel, "k", payload); err != nil {
				t.Fatal(err)
			}
			if err := mangle(s.path(KindModel, "k")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(KindModel, "k"); ok {
				t.Fatalf("corrupt entry read as hit: %q", got)
			}
			// And the slot is recoverable: a fresh Put heals it.
			if err := s.Put(KindModel, "k", payload); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(KindModel, "k"); !ok {
				t.Error("slot not recoverable after re-Put")
			}
		})
	}
}

func TestDoSingleFlight(t *testing.T) {
	s := open(t)
	var computes atomic.Int64
	compute := func() ([]byte, error) {
		computes.Add(1)
		return []byte(`42`), nil
	}
	p, hit, err := s.Do(KindModel, "k", compute)
	if err != nil || hit || string(p) != "42" {
		t.Fatalf("first Do: %q hit=%v err=%v", p, hit, err)
	}
	// Second caller in-process rides the memoized flight.
	p, hit, err = s.Do(KindModel, "k", compute)
	if err != nil || !hit || string(p) != "42" {
		t.Fatalf("second Do: %q hit=%v err=%v", p, hit, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times", n)
	}
	// A fresh Store over the same dir hits the disk entry.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	p, hit, err = s2.Do(KindModel, "k", compute)
	if err != nil || !hit || string(p) != "42" {
		t.Fatalf("fresh-store Do: %q hit=%v err=%v", p, hit, err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("disk hit recomputed: %d computes", n)
	}
}

func TestDoConcurrentCallersComputeOnce(t *testing.T) {
	s := open(t)
	var computes atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := s.Do(KindRainbow, "shared", func() ([]byte, error) {
				computes.Add(1)
				return []byte(`"t"`), nil
			})
			if err != nil {
				t.Error(err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times", n)
	}
	if n := hits.Load(); n != 15 {
		t.Errorf("%d callers reported hits, want 15 (all but the computer)", n)
	}
}

func TestNilStoreIsAlwaysMiss(t *testing.T) {
	var s *Store
	if _, ok := s.Get(KindModel, "k"); ok {
		t.Error("nil store hit")
	}
	if err := s.Put(KindModel, "k", []byte(`x`)); err != nil {
		t.Error(err)
	}
	ran := 0
	p, hit, err := s.Do(KindModel, "k", func() ([]byte, error) { ran++; return []byte(`y`), nil })
	if err != nil || hit || string(p) != "y" || ran != 1 {
		t.Errorf("nil-store Do: %q hit=%v err=%v ran=%d", p, hit, err, ran)
	}
	if s.Dir() != "" {
		t.Error("nil store has a dir")
	}
}

func TestKeyCanonical(t *testing.T) {
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("concatenation ambiguity")
	}
	if Key("x") != Key("x") {
		t.Error("unstable key")
	}
	k := Key("geometry", "region", "seed")
	if len(k) != 32 || strings.ToLower(k) != k {
		t.Errorf("key %q not filename-friendly", k)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
	nested := filepath.Join(t.TempDir(), "a", "b")
	if _, err := Open(nested); err != nil {
		t.Errorf("nested create: %v", err)
	}
}

// Package store is the persistent cross-run artifact store for
// discovered cache models and rainbow tables (ROADMAP item 1a). The
// paper's workflow assumes exactly this shape of reuse: the cache model
// is reverse-engineered once per machine and shipped alongside the tool,
// and rainbow tables are precomputed; re-deriving either on every
// analysis run is pure waste.
//
// The store is content-addressed: callers derive a key with Key(...)
// from every input that influenced the artifact (geometry, memory
// regions, seed, discovery configuration, algorithm revision), so a
// config change can never alias a stale artifact — it simply misses.
// Entries are JSON envelopes carrying a schema tag, the kind, the key,
// and the payload; reads that fail for any reason (missing file,
// truncated or garbage bytes, schema/kind/key mismatch) are misses,
// never errors: the caller re-derives and overwrites. Writes go through
// a temp file and rename, so a crashed writer leaves either the old
// entry or none — a torn write surfaces as a miss on the next run.
//
// Do wraps Get/Put in a keyed single-flight (parallel.Group), so
// concurrent analyses in one process derive a missing artifact once.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"castan/internal/parallel"
)

// Schema tags the envelope layout. Bump it to invalidate every existing
// store entry at once: old envelopes then read as misses.
const Schema = "castan-store/v1"

// Artifact kinds. The kind is part of both the file name and the
// envelope, so two artifact types can never alias even under key
// collision.
const (
	KindModel   = "cachemodel"
	KindRainbow = "rainbow"
	// KindReport holds clean (non-degraded) analysis reports keyed by an
	// idempotent request — the castand service's retry cache.
	KindReport = "report"
)

// Key derives the canonical content address for an artifact from the
// parts that produced it. Callers must include every input that can
// change the artifact's bytes (and an algorithm-revision salt when the
// derivation itself changes); sha256 keeps the key stable, short, and
// filename-safe.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so concatenation ambiguity cannot
		// alias two different part lists.
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// envelope is the on-disk form of one entry.
type envelope struct {
	Schema  string          `json:"schema"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Store is one on-disk artifact directory. The zero value is not
// usable; Open it. A nil *Store is valid and behaves as an always-miss,
// never-write store, so callers can thread an optional store without
// guarding every use.
type Store struct {
	dir     string
	flights parallel.Group[string, []byte]
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path names the entry file for (kind, key).
func (s *Store) path(kind, key string) string {
	return filepath.Join(s.dir, kind+"-"+key+".json")
}

// Get returns the payload stored under (kind, key). Every failure mode
// — absent file, unreadable bytes, malformed JSON, schema version bump,
// kind or key mismatch, empty payload — is reported as a plain miss:
// the artifact is re-derivable by construction, so corruption is never
// worth an error path, let alone a crash.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.Schema != Schema || env.Kind != kind || env.Key != key || len(env.Payload) == 0 {
		return nil, false
	}
	return env.Payload, true
}

// Put stores payload under (kind, key), atomically: the envelope is
// written to a temp file in the store directory and renamed into place,
// so concurrent readers (and crashed writers) see either the previous
// entry or the complete new one.
func (s *Store) Put(kind, key string, payload []byte) error {
	if s == nil {
		return nil
	}
	env := envelope{Schema: Schema, Kind: kind, Key: key, Payload: payload}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	tmp, err := os.CreateTemp(s.dir, kind+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s/%s: %w", kind, key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(kind, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: commit %s/%s: %w", kind, key, err)
	}
	return nil
}

// Do returns the payload for (kind, key), computing and persisting it on
// a miss. Concurrent callers for the same entry share one computation
// (single-flight); hit reports whether THIS caller avoided the compute —
// a disk hit, or a ride on another caller's in-flight derivation. A
// compute error is returned as-is and, like every Group outcome, is
// remembered for the key's lifetime in this process; compute functions
// that can fail transiently belong outside Do.
func (s *Store) Do(kind, key string, compute func() ([]byte, error)) (payload []byte, hit bool, err error) {
	if s == nil {
		p, err := compute()
		return p, false, err
	}
	computed := false
	p, err := s.flights.Do(kind+"/"+key, func() ([]byte, error) {
		if data, ok := s.Get(kind, key); ok {
			return data, nil
		}
		computed = true
		data, err := compute()
		if err != nil {
			return nil, err
		}
		if err := s.Put(kind, key, data); err != nil {
			return nil, err
		}
		return data, nil
	})
	return p, err == nil && !computed, err
}

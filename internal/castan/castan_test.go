package castan

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/packet"
)

func analyze(t *testing.T, name string, cfg Config) *Output {
	t.Helper()
	inst, err := nf.New(name)
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	if len(out.Frames) != cfg.NPackets && cfg.NPackets > 0 {
		t.Fatalf("frames = %d, want %d", len(out.Frames), cfg.NPackets)
	}
	for i, fr := range out.Frames {
		if _, err := packet.Parse(fr); err != nil {
			t.Fatalf("frame %d does not parse: %v", i, err)
		}
	}
	return out
}

func TestAnalyzeLPMDL1FindsContention(t *testing.T) {
	out := analyze(t, "lpm-dl1", Config{NPackets: 20, MaxStates: 3000, Seed: 1})
	if out.ContentionSetsFound == 0 {
		t.Fatal("no contention sets discovered over the 16MiB table")
	}
	geo := memsim.DefaultGeometry()
	if out.ExpectDRAM < uint64(geo.L3Ways) {
		t.Errorf("ExpectDRAM = %d, want >= α=%d", out.ExpectDRAM, geo.L3Ways)
	}
	// Ground truth: the packets' table lines must pile into few hidden
	// sets, exceeding associativity in at least one.
	hier := memsim.New(geo, 2024) // same machine seed as analyze()
	tableBase := findRegion(t, "lpm-dl1", "dl1-table")
	counts := map[int]int{}
	for _, fr := range out.Frames {
		p, err := packet.Parse(fr)
		if err != nil {
			t.Fatal(err)
		}
		line := (tableBase + uint64(p.IP.Dst>>8)) &^ 63
		counts[hier.DebugContentionSet(line)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max <= geo.L3Ways {
		t.Errorf("largest same-set pile = %d, want > α=%d (counts %v)", max, geo.L3Ways, counts)
	}
}

func findRegion(t *testing.T, nfName, region string) uint64 {
	t.Helper()
	inst, err := nf.New(nfName)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range inst.AttackRegions {
		if r.Name == region {
			return r.Addr
		}
	}
	t.Fatalf("no region %s", region)
	return 0
}

func TestAnalyzeLPMDL2FindsNothing(t *testing.T) {
	// The two-stage first table is too small for the sampled discovery
	// pool to exceed associativity anywhere: the paper's robustness result.
	out := analyze(t, "lpm-dl2", Config{NPackets: 10, MaxStates: 1500, Seed: 1})
	if out.ContentionSetsFound != 0 {
		t.Errorf("ContentionSetsFound = %d, want 0 for the small table", out.ContentionSetsFound)
	}
}

func TestAnalyzeTrieWalksDeep(t *testing.T) {
	out := analyze(t, "lpm-trie", Config{NPackets: 10, MaxStates: 2500, Seed: 1})
	// The synthesized workload must be comparable to the Manual workload
	// (deep trie walks): validate by replaying both.
	gotInstrs, err := Validate("lpm-trie", out.Frames)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := nf.New("lpm-trie")
	manInstrs, err := Validate("lpm-trie", inst.Manual(10))
	if err != nil {
		t.Fatal(err)
	}
	if float64(gotInstrs) < 0.9*float64(manInstrs) {
		t.Errorf("CASTAN trie workload %d instrs vs manual %d", gotInstrs, manInstrs)
	}
}

func TestAnalyzeLBChainCollides(t *testing.T) {
	out := analyze(t, "lb-chain", Config{NPackets: 12, MaxStates: 4000, Seed: 1})
	if out.HavocsTotal == 0 {
		t.Fatal("no havocs recorded for a hash-table NF")
	}
	if out.HavocsReconciled == 0 {
		t.Fatal("no havocs reconciled: rainbow stage failed entirely")
	}
	// Count bucket collisions among the reconciled frames.
	buckets := map[uint64]int{}
	distinct := map[packet.FiveTuple]bool{}
	for _, fr := range out.Frames {
		p, err := packet.Parse(fr)
		if err != nil {
			t.Fatal(err)
		}
		distinct[p.Tuple()] = true
		buckets[nf.ChainBucketOf(p.Tuple())]++
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	if max < out.HavocsReconciled/2 || max < 2 {
		t.Errorf("largest real bucket pile = %d of %d packets (reconciled %d/%d)",
			max, len(out.Frames), out.HavocsReconciled, out.HavocsTotal)
	}
	if len(distinct) < 2 {
		t.Error("all frames identical: no flow diversity")
	}
}

func TestAnalyzeNATChainReconciliationPartial(t *testing.T) {
	out := analyze(t, "nat-chain", Config{NPackets: 8, MaxStates: 4000, Seed: 1})
	if out.HavocsTotal == 0 {
		t.Fatal("no havocs for NAT chain")
	}
	// The NAT's two related keys per flow defeat full reconciliation
	// (§5.4): some havocs must remain unreconciled.
	if out.HavocsReconciled >= out.HavocsTotal {
		t.Errorf("all %d havocs reconciled; expected partial failure", out.HavocsTotal)
	}
}

func TestValidateRunsFrames(t *testing.T) {
	inst, err := nf.New("nop")
	if err != nil {
		t.Fatal(err)
	}
	_ = inst
	n, err := Validate("nop", [][]byte{packet.Build(packet.Spec{SrcIP: 1, DstIP: 2})})
	if err != nil || n == 0 {
		t.Errorf("Validate = %d, %v", n, err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	out := analyze(t, "lpm-dl2", Config{NPackets: 6, MaxStates: 1500, Seed: 5})
	var buf bytes.Buffer
	if err := out.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NF != "lpm-dl2" || len(rep.Packets) != 6 {
		t.Fatalf("report shape: %+v", rep)
	}
	for i, p := range rep.Packets {
		if p.Index != i {
			t.Errorf("packet %d index %d", i, p.Index)
		}
		if p.Flow == "" {
			t.Errorf("packet %d missing flow", i)
		}
	}
	if rep.StatesExplored == 0 || rep.AnalysisSeconds <= 0 {
		t.Error("effort fields not populated")
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := out.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(strings.NewReader("{")); err == nil {
		t.Error("truncated report accepted")
	}
}

func TestAblationCacheModelMatters(t *testing.T) {
	// Without the cache model, lpm-dl1's workload loses its contention:
	// the predicted DRAM pressure collapses.
	on := analyze(t, "lpm-dl1", Config{NPackets: 20, MaxStates: 3000, Seed: 1})
	off := analyze(t, "lpm-dl1", Config{NPackets: 20, MaxStates: 3000, Seed: 1, NoCacheModel: true})
	if off.ContentionSetsFound != 0 {
		t.Errorf("ablated run discovered %d sets", off.ContentionSetsFound)
	}
	if on.ExpectDRAM <= off.ExpectDRAM {
		t.Errorf("cache model did not raise predicted DRAM: on=%d off=%d", on.ExpectDRAM, off.ExpectDRAM)
	}
}

func TestAblationRainbowMatters(t *testing.T) {
	// Without rainbow reconciliation, the lb-chain workload's symbolic
	// collisions never become real bucket collisions.
	off := analyze(t, "lb-chain", Config{NPackets: 10, MaxStates: 4000, Seed: 1, NoRainbow: true})
	if off.HavocsReconciled != 0 {
		t.Fatalf("NoRainbow but %d reconciled", off.HavocsReconciled)
	}
	buckets := map[uint64]int{}
	for _, fr := range off.Frames {
		p, err := packet.Parse(fr)
		if err != nil {
			t.Fatal(err)
		}
		buckets[nf.ChainBucketOf(p.Tuple())]++
	}
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	if max > 4 {
		t.Errorf("unreconciled workload still piles %d into one bucket (lucky?)", max)
	}
}

// TestAnalyzeWorkerCountInvariant asserts the end-to-end determinism
// contract: the same seed produces byte-identical frames, the same
// explored-state count, and the same reconciliation outcome at every
// worker count. lb-chain exercises all parallel stages (discovery sweep,
// rainbow build, batched reconciliation checks, frame extraction).
func TestAnalyzeWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Output {
		return analyze(t, "lb-chain", Config{NPackets: 12, MaxStates: 4000, Seed: 1, Workers: workers})
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		out := run(w)
		if out.StatesExplored != ref.StatesExplored {
			t.Errorf("w=%d: %d states explored, want %d", w, out.StatesExplored, ref.StatesExplored)
		}
		if out.HavocsReconciled != ref.HavocsReconciled || out.HavocsTotal != ref.HavocsTotal {
			t.Errorf("w=%d: havocs %d/%d, want %d/%d", w,
				out.HavocsReconciled, out.HavocsTotal, ref.HavocsReconciled, ref.HavocsTotal)
		}
		if out.ContentionSetsFound != ref.ContentionSetsFound {
			t.Errorf("w=%d: %d contention sets, want %d", w, out.ContentionSetsFound, ref.ContentionSetsFound)
		}
		if len(out.Frames) != len(ref.Frames) {
			t.Fatalf("w=%d: %d frames, want %d", w, len(out.Frames), len(ref.Frames))
		}
		for i := range ref.Frames {
			if !bytes.Equal(out.Frames[i], ref.Frames[i]) {
				t.Fatalf("w=%d: frame %d differs:\n got %x\nwant %x", w, i, out.Frames[i], ref.Frames[i])
			}
		}
	}
}

package castan

import (
	"strings"
	"testing"

	"castan/internal/analysis"
	"castan/internal/ir"
	"castan/internal/nf"
)

// TestStaticGateRejectsBrokenModule checks stage 0: a module with a
// definite out-of-extent store must be rejected before any symbolic
// exploration happens.
func TestStaticGateRejectsBrokenModule(t *testing.T) {
	mod := ir.NewModule("broken")
	g := mod.AddGlobal("tbl", 64, 0)
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	fb.Store(fb.GlobalAddr(g), 64, fb.Const(1), 8)
	fb.RetImm(nf.RetDrop)
	fb.Seal()

	inst := &nf.Instance{Name: "broken", Mod: mod}
	_, err := Analyze(inst, nil, Config{NPackets: 1, MaxStates: 1})
	if err == nil {
		t.Fatal("Analyze accepted a module with an out-of-extent store")
	}
	if !strings.Contains(err.Error(), "static analysis rejects") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestStaticAttackRegions checks the fallback candidate derivation: a
// global with a large statically accessed footprint becomes a contention
// candidate; small scalars do not.
func TestStaticAttackRegions(t *testing.T) {
	mod := ir.NewModule("fallback")
	big := mod.AddGlobal("table", 1<<16, 0)
	mod.AddGlobal("counter", 8, 0)
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	idx := fb.AndImm(fb.Load(fb.Param(0), 26, 4), 0xfff)
	fb.Ret(fb.Load(fb.Add(fb.GlobalAddr(big), fb.MulImm(idx, 8)), 0, 8))
	fb.Seal()

	mf := analysis.ForModule(mod)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	regions := staticAttackRegions(mr)
	if len(regions) != 1 {
		t.Fatalf("regions = %v, want exactly the big table", regions)
	}
	if regions[0].Name != "table" || regions[0].Addr != big.Addr {
		t.Fatalf("region = %+v, want table @%#x", regions[0], big.Addr)
	}
	if regions[0].Size != 4096*8 {
		t.Fatalf("region size = %d, want %d (0xfff index × 8-byte stride)", regions[0].Size, 4096*8)
	}
}

// TestSeedNFsDeclareOnlyStaticHashes asserts the premise of the rainbow
// filter: every declared HashUse of every seed NF corresponds to at least
// one static OpHavoc site, so filtering by static sites never drops a
// table that reconciliation could need.
func TestSeedNFsDeclareOnlyStaticHashes(t *testing.T) {
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatal(err)
		}
		mf := analysis.ForModule(inst.Mod)
		static := map[int]bool{}
		for _, s := range mf.HavocSites() {
			static[s.HashID] = true
		}
		for _, hu := range inst.Hashes {
			if !static[hu.HashID] {
				t.Errorf("%s: declared hash %d has no OpHavoc site in the IR", name, hu.HashID)
			}
		}
	}
}

// Package castan is the top of the stack: CASTAN, the Cycle Approximating
// Symbolic Timing Analysis for Network Functions. Given a built NF
// instance and a (black-box) memory hierarchy, it
//
//  1. reverse-engineers contention sets over the NF's tables by timed
//     probing (§3.2, via internal/cachemodel),
//  2. explores the NF with directed symbolic execution, steering symbolic
//     pointers into contended cache sets and havocing hash functions
//     (§3.1/§3.3/§3.4, via internal/symbex),
//  3. picks the highest-cost completed state, reconciles havoced hashes
//     with rainbow tables (§3.5, via internal/rainbow), and
//  4. solves the path constraint into N concrete packets plus per-packet
//     predicted performance metrics.
package castan

import (
	"fmt"
	"time"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/cachemodel"
	"castan/internal/expr"
	"castan/internal/icfg"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/nfhash"
	"castan/internal/obs"
	"castan/internal/packet"
	"castan/internal/parallel"
	"castan/internal/rainbow"
	"castan/internal/solver"
	"castan/internal/stats"
	"castan/internal/symbex"
)

// Config tunes an analysis run.
type Config struct {
	// NPackets is the adversarial workload length (paper: 30-50).
	NPackets int
	// MaxStates is the exploration budget (the paper's time budget).
	MaxStates int
	// Seed drives discovery sampling.
	Seed uint64
	// DiscoverStride is the line-granularity sampling stride (in cache
	// lines) used to build discovery pools: it models the partial coverage
	// that survives the paper's cross-reboot consistency filtering.
	// Default 8.
	DiscoverStride int
	// DiscoverPoolCap bounds the pool size per NF. Default 2600.
	DiscoverPoolCap int
	// DiscoverMaxSets bounds how many contention sets to discover.
	// Default 6.
	DiscoverMaxSets int
	// NoCacheModel disables the cache model (ablation).
	NoCacheModel bool
	// CacheModel, when non-nil, is used instead of running discovery
	// (e.g. a model persisted by cmd/contention -save).
	CacheModel *cachemodel.Model
	// NoRainbow disables havoc reconciliation (ablation).
	NoRainbow bool
	// NoStaticCost disables the abstract cache analysis: no static
	// worst-case bound, no static priority component in the searcher, and
	// no memsim cross-check of the synthesized workload (ablation).
	NoStaticCost bool
	// RainbowCoverage multiplies the default table size. Default 8.
	RainbowCoverage int
	// MaxLoopIters caps symbolic loop unrolling per state.
	MaxLoopIters int
	// ICFGLoopBound is the M of §3.4: potential-cost estimation assumes
	// every loop runs M-1 times. The paper uses M=2; our searcher keeps
	// loop-heavy paths hot by over-estimating more aggressively (M=8 by
	// default), which plays the role of the paper's always-deepen loop
	// policy.
	ICFGLoopBound int
	// Workers bounds the analysis fan-out (0 = GOMAXPROCS): rainbow-chain
	// generation, contention-set sweeps, batched candidate solver checks
	// during havoc reconciliation, and frame extraction. Output is
	// identical at every worker count.
	Workers int
	// Obs, when non-nil, receives pipeline telemetry: phase spans, solver
	// and symbex effort, memory-simulator traffic, and rainbow/havoc
	// reconciliation counts. With a fake clock the recorded output is
	// byte-identical at every worker count (DESIGN.md decision 8), and
	// the snapshot lands in Output.Telemetry.
	Obs *obs.Recorder
}

func (c *Config) fill() {
	if c.NPackets <= 0 {
		c.NPackets = 30
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 12000
	}
	if c.DiscoverStride <= 0 {
		c.DiscoverStride = 8
	}
	if c.DiscoverPoolCap <= 0 {
		c.DiscoverPoolCap = 2600
	}
	if c.DiscoverMaxSets <= 0 {
		c.DiscoverMaxSets = 6
	}
	if c.RainbowCoverage <= 0 {
		c.RainbowCoverage = 8
	}
	if c.MaxLoopIters <= 0 {
		c.MaxLoopIters = 96
	}
	if c.ICFGLoopBound <= 0 {
		c.ICFGLoopBound = 8
	}
}

// PacketMetrics is the per-packet prediction CASTAN emits alongside the
// workload (the paper's "second file": per-packet CPU model metrics).
type PacketMetrics struct {
	Cycles uint64
}

// Output is a completed analysis.
type Output struct {
	NF     string
	Frames [][]byte
	// Predicted per-packet cycle costs along the chosen path.
	Packets []PacketMetrics
	// Instrs/Loads/Stores/ExpectDRAM/ExpectHit summarize the chosen path.
	Instrs, Loads, Stores uint64
	ExpectDRAM, ExpectHit uint64
	// HavocsTotal and HavocsReconciled report §3.5's outcome.
	HavocsTotal      int
	HavocsReconciled int
	// LintWarnings counts static-analysis warnings on the NF module (the
	// gate rejects modules with errors before exploration starts).
	LintWarnings int
	// StaticHavocSites counts the OpHavoc sites found statically; the
	// rainbow builder only spends effort on hash IDs that appear here.
	StaticHavocSites int
	// ContentionSetsFound is the discovery result size (0 = no model).
	ContentionSetsFound int
	// StaticCostBound is the abstract cache analysis's worst-case cycle
	// bound for the whole synthesized workload (0 when the analysis is
	// disabled or the NF has no static bound).
	StaticCostBound uint64
	// StepsToWorstPath is how many state pops the searcher needed before
	// the state that ended up best completed.
	StepsToWorstPath int
	// StatesExplored, Forks and AnalysisTime describe the effort (Table 4).
	StatesExplored int
	Forks          int
	AnalysisTime   time.Duration
	// Telemetry is the observability snapshot for this run (nil unless
	// Config.Obs was set).
	Telemetry *obs.Metrics
}

// Analyze runs the full CASTAN pipeline on a *freshly built* NF instance.
// The hierarchy is only ever probed as a black box.
func Analyze(inst *nf.Instance, hier *memsim.Hierarchy, cfg Config) (*Output, error) {
	cfg.fill()
	start := time.Now()
	rec := cfg.Obs
	if rec != nil {
		hier.SetObs(rec)
	}
	root := rec.Span("castan.analyze")

	// Stage 0: static gate. A module that fails the pass pipeline (broken
	// structure, use-before-def, definite out-of-extent access) would make
	// symbolic exploration explore garbage; reject it up front. The same
	// run yields the facts the later stages reuse: the memory-region
	// footprints seed contention-set candidates when the NF declares no
	// attack regions, and the static havoc sites bound rainbow-table work.
	spStatic := root.Child("castan.static")
	rep := analysis.Lint(inst.Mod, analysis.Options{
		EntryHints: analysis.NFEntryHints(),
		NoDeadDefs: true,
	})
	if rep.HasErrors() {
		return nil, fmt.Errorf("castan: static analysis rejects %s: %s",
			inst.Mod.Name, rep.Findings[0].String())
	}
	mf := analysis.ForModule(inst.Mod)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	staticSites := mf.HavocSites()
	staticHashIDs := map[int]bool{}
	for _, s := range staticSites {
		staticHashIDs[s.HashID] = true
	}
	spStatic.End()

	// Stage 1: empirical cache model over the NF's attack regions; when
	// the NF declares none, fall back to the statically derived table
	// footprints (globals large enough to exceed a cache way).
	regions := inst.AttackRegions
	if len(regions) == 0 {
		regions = staticAttackRegions(mr)
	}
	spDiscover := root.Child("castan.discover")
	var model *cachemodel.Model
	switch {
	case cfg.NoCacheModel:
	case cfg.CacheModel != nil:
		model = cfg.CacheModel
	case len(regions) > 0:
		model = discoverModel(regions, hier, cfg)
	}
	spDiscover.End()
	rec.Counter("castan.contention_sets").Add(uint64(modelSets(model)))

	// Stage 1.5: abstract cache analysis. The must/may fixpoint classifies
	// every load/store (always-hit accesses cost MemL1, everything else is
	// priced at a miss) and the loop forest's trip bounds turn that into
	// static worst-case cost bounds the searcher can use as an admissible
	// priority component. The discovered model refines the conflict
	// relation: lines in different contention sets provably don't evict
	// each other.
	var cc *cachecost.Analysis
	if !cfg.NoStaticCost {
		spCache := root.Child("castan.cachecost")
		geo := hier.Geometry()
		cc = cachecost.Run(mf, mr, cachecost.Config{
			Geometry: cachecost.Geometry{Ways: geo.L3Assoc(), LineBytes: geo.LineBytes},
			Model:    model,
			Obs:      rec,
		})
		spCache.End()
	}

	// Stage 2: directed symbolic execution. Realized costs use the
	// realistic model; the search heuristic uses an optimistic one
	// (memory at DRAM latency, loops assumed to run as often as there are
	// packets), so the best-first queue surfaces worst-case paths first.
	spICFG := root.Child("castan.icfg")
	an, err := icfg.Analyze(inst.Mod, 2, icfg.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("castan: icfg: %w", err)
	}
	loopBound := cfg.ICFGLoopBound
	if loopBound < cfg.NPackets+2 {
		loopBound = cfg.NPackets + 2
	}
	potAn, err := icfg.Analyze(inst.Mod, loopBound, icfg.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("castan: icfg potential: %w", err)
	}
	spICFG.End()
	eng := &symbex.Engine{
		Mod:               inst.Mod,
		Analysis:          an,
		PotentialAnalysis: potAn,
		StaticCost:        cc,
		Model:             model,
		Base:              inst.Machine.Mem,
		HeapTop:           ir.HeapBase + inst.Machine.HeapUsed(),
		Cfg: symbex.Config{
			Entry:        "nf_process",
			NPackets:     cfg.NPackets,
			PacketLen:    nf.SymbolicPacketLen,
			MaxStates:    cfg.MaxStates,
			MaxLoopIters: cfg.MaxLoopIters,
		},
		Obs: rec,
	}
	spSymbex := root.Child("castan.symbex")
	res, err := eng.Run()
	spSymbex.End()
	if err != nil {
		return nil, fmt.Errorf("castan: symbex: %w", err)
	}
	if res.Best == nil {
		return nil, fmt.Errorf("castan: no state consumed all %d packets within budget", cfg.NPackets)
	}

	// Stage 3+4: reconcile havocs and solve, falling back to the next-best
	// completed state if the best one resists solving.
	spReconcile := root.Child("castan.reconcile")
	var lastErr error
	for _, st := range res.Completed {
		out, err := concretize(inst, eng, st, cfg, staticHashIDs)
		if err != nil {
			lastErr = err
			continue
		}
		out.ContentionSetsFound = modelSets(model)
		out.StatesExplored = res.StatesExplored
		out.Forks = res.Forks
		out.StepsToWorstPath = res.PopsToBest
		out.LintWarnings = rep.Count(analysis.SevWarn)
		out.StaticHavocSites = len(staticSites)
		if cc != nil {
			if b, ok := cc.WorkloadBound("nf_process", cfg.NPackets); ok {
				out.StaticCostBound = b
			}
			// Sanitizer gate: replay the synthesized workload on a fresh
			// simulated hierarchy and fail loudly if any instruction the
			// analysis classified always-hit ever reaches DRAM. A fresh
			// hierarchy (same geometry, same seed) keeps the probing
			// hierarchy's cache state and telemetry untouched.
			spCheck := root.Child("castan.crosscheck")
			ccErr := cachecost.CrossCheck(cc, inst.Machine,
				memsim.New(hier.Geometry(), cfg.Seed), "nf_process", out.Frames)
			spCheck.End()
			if ccErr != nil {
				return nil, fmt.Errorf("castan: static cache analysis unsound on %s: %w",
					inst.Name, ccErr)
			}
		}
		out.AnalysisTime = time.Since(start)
		// End the spans before snapshotting so every phase is in the
		// snapshot; Telemetry is the last field assigned.
		spReconcile.End()
		root.End()
		out.Telemetry = rec.Snapshot()
		return out, nil
	}
	return nil, fmt.Errorf("castan: no completed state solvable: %v", lastErr)
}

func modelSets(m *cachemodel.Model) int {
	if m == nil {
		return 0
	}
	return len(m.Sets)
}

// staticAttackRegions derives contention-set candidates from the
// memory-region pass when an NF declares none: every global whose
// statically accessed footprint spans at least a cache way's worth of
// lines is a table an adversary could contend on. Footprints are sorted
// by global name, so the derived pool is deterministic.
func staticAttackRegions(mr *analysis.MemRegions) []nf.Region {
	const minSpan = 4096
	var regions []nf.Region
	for _, fp := range mr.GlobalFootprints() {
		if fp.Span() < minSpan {
			continue
		}
		regions = append(regions, nf.Region{
			Name: fp.Global.Name,
			Addr: fp.Global.Addr + fp.Lo,
			Size: fp.Span(),
		})
	}
	return regions
}

// discoverModel builds the contention-set model over the given attack
// regions. Discovery failure (e.g. a region too small to exceed
// associativity anywhere in the sampled pool) simply yields no model —
// the paper's LPM two-stage outcome.
func discoverModel(regions []nf.Region, hier *memsim.Hierarchy, cfg Config) *cachemodel.Model {
	geo := hier.Geometry()
	stride := uint64(cfg.DiscoverStride * geo.LineBytes)
	var pool []uint64
	for _, r := range regions {
		for a := r.Addr; a < r.Addr+r.Size; a += stride {
			pool = append(pool, a)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	// The pool budget is per region: an NF with several tables (the NAT's
	// two rings) needs each discovered set to hold enough members *within
	// each table* to exceed associativity there.
	poolCap := cfg.DiscoverPoolCap * len(regions)
	if len(pool) > poolCap {
		// Deterministic subsample.
		rng := stats.NewRNG(cfg.Seed + 17)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		pool = pool[:poolCap]
	}
	m, err := cachemodel.Discover(hier, cachemodel.DiscoverConfig{
		Pool:      pool,
		Assoc:     geo.L3Assoc(),
		LineBytes: geo.LineBytes,
		LatL3:     geo.LatL3,
		LatDRAM:   geo.LatDRAM,
		MaxSets:   cfg.DiscoverMaxSets,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Fork:      func() cachemodel.Prober { return hier.Fork() },
	})
	if err != nil {
		return nil
	}
	return m
}

// concretize reconciles the state's havocs and solves its constraints
// into frames.
func concretize(inst *nf.Instance, eng *symbex.Engine, st *symbex.State, cfg Config, staticHashIDs map[int]bool) (*Output, error) {
	// The engine maintains the invariant that each state's cached model
	// satisfies its constraints, so it is both the starting model and the
	// hint for all reconciliation checks. The solver runs on the pipeline
	// goroutine, so instrumenting it keeps the recorded totals
	// deterministic.
	sol := solver.Solver{Hint: st.Model(), MaxSteps: 30000, Obs: cfg.Obs}
	cons := append([]*expr.Expr(nil), st.Constraints()...)
	mdl, err := sol.Solve(cons)
	if err != nil {
		return nil, fmt.Errorf("state %d: %w", st.ID, err)
	}
	sol.Hint = mdl

	reconciled := 0
	if !cfg.NoRainbow {
		tables := buildRainbowTables(inst, cfg, staticHashIDs)
		uses := map[int]nf.HashUse{}
		for _, hu := range inst.Hashes {
			uses[hu.HashID] = hu
		}
		pinnedVars := map[expr.VarID]bool{}
		usedKeys := map[string]bool{}
		for _, h := range st.Havocs {
			hu, known := uses[h.HashID]
			if !known {
				continue
			}
			ok, extra := reconcileHavoc(&sol, cons, mdl, pinnedVars, usedKeys, h, hu, tables[h.HashID], cfg.Workers)
			if ok {
				cons = append(cons, extra...)
				m2, err := sol.Solve(cons)
				if err != nil {
					// The pins conflicted after all; drop them.
					cons = cons[:len(cons)-len(extra)]
					continue
				}
				mdl = m2
				sol.Hint = mdl
				reconciled++
				for _, ke := range h.Key {
					ke.Vars(pinnedVars, nil)
				}
				for _, v := range h.OutVars {
					pinnedVars[v] = true
				}
			}
		}
	}
	cfg.Obs.Counter("castan.havocs").Add(uint64(len(st.Havocs)))
	cfg.Obs.Counter("castan.havocs_reconciled").Add(uint64(reconciled))

	frames := parallel.Map(cfg.Workers, eng.Cfg.NPackets, func(p int) []byte {
		return frameFromModel(eng, mdl, p)
	})
	out := &Output{
		NF:               inst.Name,
		Frames:           frames,
		Instrs:           st.Instrs,
		Loads:            st.Loads,
		Stores:           st.Stores,
		ExpectDRAM:       st.ExpectDRAM,
		ExpectHit:        st.ExpectHit,
		HavocsTotal:      len(st.Havocs),
		HavocsReconciled: reconciled,
	}
	for _, c := range st.PacketCosts {
		out.Packets = append(out.Packets, PacketMetrics{Cycles: c})
	}
	return out, nil
}

// buildRainbowTables builds (and memoizes per process) one rainbow table
// per havocable hash site. The cache is a single-flight group: concurrent
// analyses of NFs sharing a hash site (the campaign fans out across NFs)
// build each table exactly once instead of racing on a bare map.
var rainbowCache parallel.Group[string, *rainbow.Table]

func buildRainbowTables(inst *nf.Instance, cfg Config, staticHashIDs map[int]bool) map[int]*rainbow.Table {
	out := map[int]*rainbow.Table{}
	for _, h := range inst.Hashes {
		if h.Space == nil {
			continue
		}
		// Only spend table-building effort on hash IDs that actually appear
		// as OpHavoc sites in the IR: every dynamic havoc record is an
		// execution of one of those sites, so the filter can never starve
		// reconciliation.
		if !staticHashIDs[h.HashID] {
			continue
		}
		key := fmt.Sprintf("%s/%d/%d/%T%v", inst.Name, h.HashID, h.Bits, h.Space, h.Space)
		h := h
		tbl, err := rainbowCache.Do(key, func() (*rainbow.Table, error) {
			// rcfg.Obs stays nil on purpose: cached tables outlive one
			// Analyze, so a build-time recorder would credit all chain
			// work to whichever run built the table first. Counting below
			// from the finished table charges every run identically,
			// cache hit or fresh build.
			rcfg := rainbow.DefaultConfig(h.Bits)
			rcfg.Chains *= cfg.RainbowCoverage
			rcfg.Workers = cfg.Workers
			return rainbow.Build(h.Fn, h.Space, rcfg)
		})
		if err != nil {
			continue
		}
		cfg.Obs.Counter("rainbow.tables").Inc()
		cfg.Obs.Counter("rainbow.chains").Add(uint64(tbl.Chains()))
		out[h.HashID] = tbl
	}
	return out
}

// reconcileHavoc implements §3.5's three-step reconciliation for one
// havoc record: solve for the hash value the path wants, invert it with
// the rainbow table, and re-check the preimage against the packet
// constraints. Returns pin constraints on success.
func reconcileHavoc(sol *solver.Solver, cons []*expr.Expr, mdl solver.Model, pinnedVars map[expr.VarID]bool, usedKeys map[string]bool, h symbex.HavocRecord, hu nf.HashUse, tbl *rainbow.Table, workers int) (bool, []*expr.Expr) {
	if tbl == nil {
		return false, nil
	}
	masked := nfhash.Masked(hu.Fn, hu.Bits)
	// If every variable of the key was already pinned by earlier
	// reconciliation, the real hash value is forced: reconciliation
	// succeeds only if it matches what the path wants. This is exactly
	// what fails for the NAT's second, related key (§5.4).
	keyForced := true
	for _, ke := range h.Key {
		if ke.HasVars() {
			for _, v := range ke.Vars(map[expr.VarID]bool{}, nil) {
				if !pinnedVars[v] {
					keyForced = false
					break
				}
			}
		}
		if !keyForced {
			break
		}
	}
	want := h.Out.Eval(map[expr.VarID]uint64(mdl))

	if keyForced {
		keyBytes := make([]byte, len(h.Key))
		for i, ke := range h.Key {
			keyBytes[i] = byte(ke.Eval(map[expr.VarID]uint64(mdl)))
		}
		// The true hash value is forced; pinning Out to it stays
		// satisfiable only if the path did not demand a different value.
		real := masked(keyBytes)
		pins := pinOut(h, real)
		if solver.QuickFeasible(append(append([]*expr.Expr(nil), cons...), pins...)) == solver.Unsat {
			return false, nil
		}
		if res, _ := sol.Check(append(append([]*expr.Expr(nil), cons...), pins...)); res == solver.Sat {
			return true, pins
		}
		return false, nil
	}

	// Key still has free bytes: invert candidate hash values and test
	// preimages against the constraints. Rainbow candidates come first;
	// brute force (per §3.5: "brute-force methods augmented by the use of
	// rainbow tables") fills in when the attack needs many distinct
	// preimages of one value, as collision workloads do.
	rec := sol.Obs
	candidates := tbl.Invert(want, 16)
	rec.Counter("rainbow.invert_attempts").Inc()
	rec.Counter("rainbow.invert_keys").Add(uint64(len(candidates)))
	if len(candidates) < 16 {
		// Finding one preimage costs ~2^bits random tries; budget for a
		// handful, capped so wide hashes stay tractable.
		budget := 8 << uint(hu.Bits)
		if budget > 4<<20 {
			budget = 4 << 20
		}
		rec.Counter("rainbow.bruteforce_calls").Inc()
		candidates = append(candidates, tbl.BruteForce(want, 48, budget, want^uint64(h.Packet)*0x9e3779b9)...)
	}
	viable := candidates[:0]
	for _, key := range candidates {
		if len(key) != len(h.Key) {
			continue
		}
		if usedKeys[string(key)] {
			continue // identical to an already-pinned key: flow uniqueness
		}
		viable = append(viable, key)
	}

	// Candidate checks are independent — each builds its own pin set over
	// the shared constraint prefix — so they fan out in batches, keeping
	// sequential semantics by accepting the lowest-index Sat candidate.
	// Shared expression nodes cache var lists and const-ness lazily;
	// warm those caches up front so concurrent checks only read them.
	warmExprs(cons)
	warmExprs(h.Key)
	pins := make([][]*expr.Expr, len(viable))
	hit := parallel.First(workers, len(viable), func(i int) bool {
		key := viable[i]
		p := make([]*expr.Expr, 0, len(key)+len(h.OutVars))
		for j, ke := range h.Key {
			p = append(p, expr.Eq(ke, expr.Const(uint64(key[j]))))
		}
		p = append(p, pinOut(h, want)...)
		all := append(append([]*expr.Expr(nil), cons...), p...)
		if solver.QuickFeasible(all) == solver.Unsat {
			return false
		}
		// Worker solvers stay uninstrumented: parallel.First batches may
		// speculatively check a few candidates past the accepting index,
		// so per-worker query counts vary with the worker count. The
		// sequential-equivalent effort is recorded below instead
		// (DESIGN.md decision 8).
		worker := solver.Solver{MaxSteps: sol.MaxSteps, Hint: sol.Hint}
		if res, _ := worker.Check(all); res != solver.Sat {
			return false
		}
		pins[i] = p
		return true
	})
	// hit is worker-count invariant (lowest accepted index), so so is this
	// count: candidates a sequential scan would have checked.
	if hit >= 0 {
		rec.Counter("castan.reconcile_checks").Add(uint64(hit + 1))
	} else {
		rec.Counter("castan.reconcile_checks").Add(uint64(len(viable)))
	}
	if hit < 0 {
		return false, nil
	}
	usedKeys[string(viable[hit])] = true
	return true, pins[hit]
}

// warmExprs populates the lazily cached per-node fields (variable lists,
// const-ness) of every node reachable from es, so that subsequent
// concurrent traversals of the shared DAG are read-only.
func warmExprs(es []*expr.Expr) {
	for _, e := range es {
		e.VarList()
	}
}

// pinOut pins the havoc's output variables to a concrete hash value.
func pinOut(h symbex.HavocRecord, val uint64) []*expr.Expr {
	pins := make([]*expr.Expr, 0, len(h.OutVars))
	n := len(h.OutVars)
	for i, v := range h.OutVars {
		shift := uint((n - 1 - i) * 8)
		pins = append(pins, expr.Eq(expr.Var(v), expr.Const((val>>shift)&0xff)))
	}
	return pins
}

// frameFromModel reconstructs a well-formed frame for packet p from the
// solver model: the fields the NF observes are taken verbatim; cosmetic
// fields (version, checksum, lengths) are normalized so the frame parses.
func frameFromModel(eng *symbex.Engine, mdl solver.Model, p int) []byte {
	byteAt := func(off int) uint64 { return mdl[eng.PacketVar(p, off)] & 0xff }
	u16 := func(off int) uint16 { return uint16(byteAt(off))<<8 | uint16(byteAt(off+1)) }
	u32 := func(off int) uint32 {
		return uint32(byteAt(off))<<24 | uint32(byteAt(off+1))<<16 |
			uint32(byteAt(off+2))<<8 | uint32(byteAt(off+3))
	}
	proto := packet.IPProto(byteAt(packet.OffIPProto))
	if proto != packet.ProtoTCP {
		proto = packet.ProtoUDP
	}
	return packet.Build(packet.Spec{
		Proto:   proto,
		SrcIP:   u32(packet.OffIPSrc),
		DstIP:   u32(packet.OffIPDst),
		SrcPort: u16(packet.OffL4SrcPort),
		DstPort: u16(packet.OffL4DstPort),
	})
}

// Validate replays the synthesized frames through a fresh instance of the
// NF on the interpreter, returning the measured instruction count — a
// cheap cross-check that the adversarial path is real.
func Validate(name string, frames [][]byte) (uint64, error) {
	inst, err := nf.New(name)
	if err != nil {
		return 0, err
	}
	var instrs uint64
	inst.Machine.Hooks = interp.Hooks{OnInstr: func(*ir.Func, *ir.Instr) { instrs++ }}
	for _, fr := range frames {
		if _, err := inst.Process(fr); err != nil {
			return instrs, err
		}
	}
	return instrs, nil
}

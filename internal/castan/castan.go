// Package castan is the top of the stack: CASTAN, the Cycle Approximating
// Symbolic Timing Analysis for Network Functions. Given a built NF
// instance and a (black-box) memory hierarchy, it
//
//  1. reverse-engineers contention sets over the NF's tables by timed
//     probing (§3.2, via internal/cachemodel),
//  2. explores the NF with directed symbolic execution, steering symbolic
//     pointers into contended cache sets and havocing hash functions
//     (§3.1/§3.3/§3.4, via internal/symbex),
//  3. picks the highest-cost completed state, reconciles havoced hashes
//     with rainbow tables (§3.5, via internal/rainbow), and
//  4. solves the path constraint into N concrete packets plus per-packet
//     predicted performance metrics.
package castan

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"time"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/analysis/taint"
	"castan/internal/analysis/vrange"
	"castan/internal/budget"
	"castan/internal/cachemodel"
	"castan/internal/expr"
	"castan/internal/faultinject"
	"castan/internal/icfg"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/nfhash"
	"castan/internal/obs"
	"castan/internal/packet"
	"castan/internal/parallel"
	"castan/internal/rainbow"
	"castan/internal/solver"
	"castan/internal/stats"
	"castan/internal/store"
	"castan/internal/symbex"
)

// Config tunes an analysis run.
type Config struct {
	// NPackets is the adversarial workload length (paper: 30-50).
	NPackets int
	// MaxStates is the exploration budget (the paper's time budget).
	MaxStates int
	// Seed drives discovery sampling.
	Seed uint64
	// DiscoverStride is the line-granularity sampling stride (in cache
	// lines) used to build discovery pools: it models the partial coverage
	// that survives the paper's cross-reboot consistency filtering.
	// Default 8.
	DiscoverStride int
	// DiscoverPoolCap bounds the pool size per NF. Default 2600.
	DiscoverPoolCap int
	// DiscoverMaxSets bounds how many contention sets to discover.
	// Default 6.
	DiscoverMaxSets int
	// NoCacheModel disables the cache model (ablation).
	NoCacheModel bool
	// CacheModel, when non-nil, is used instead of running discovery
	// (e.g. a model persisted by cmd/contention -save).
	CacheModel *cachemodel.Model
	// NoRainbow disables havoc reconciliation (ablation).
	NoRainbow bool
	// NoStaticCost disables the abstract cache analysis: no static
	// worst-case bound, no static priority component in the searcher, and
	// no memsim cross-check of the synthesized workload (ablation).
	NoStaticCost bool
	// NoVRange disables the value-range abstract interpretation and
	// everything it feeds: no statically-decided branch pruning in the
	// searcher, no normalized-constraint solver memo, and no merge-point
	// state deduplication (ablation).
	NoVRange bool
	// RainbowCoverage multiplies the default table size. Default 8.
	RainbowCoverage int
	// MaxLoopIters caps symbolic loop unrolling per state.
	MaxLoopIters int
	// ICFGLoopBound is the M of §3.4: potential-cost estimation assumes
	// every loop runs M-1 times. The paper uses M=2; our searcher keeps
	// loop-heavy paths hot by over-estimating more aggressively (M=8 by
	// default), which plays the role of the paper's always-deepen loop
	// policy.
	ICFGLoopBound int
	// Workers bounds the analysis fan-out (0 = GOMAXPROCS): rainbow-chain
	// generation, contention-set sweeps, batched candidate solver checks
	// during havoc reconciliation, and frame extraction. Output is
	// identical at every worker count.
	Workers int
	// Obs, when non-nil, receives pipeline telemetry: phase spans, solver
	// and symbex effort, memory-simulator traffic, and rainbow/havoc
	// reconciliation counts. With a fake clock the recorded output is
	// byte-identical at every worker count (DESIGN.md decision 8), and
	// the snapshot lands in Output.Telemetry.
	Obs *obs.Recorder
	// Store, when non-nil, is the cross-run artifact store: the discovered
	// cache model and the rainbow tables are looked up by a canonical
	// content key before being derived, and persisted after a clean
	// derivation. A warm store lets Analyze skip discovery probing
	// entirely, with byte-identical output (discovery always leaves the
	// hierarchy in the same rebooted state it would start from). Stale or
	// corrupt entries read as misses and are re-derived and overwritten;
	// degraded or partial artifacts are never persisted; fault-injection
	// runs bypass the store entirely so a corrupted artifact can never
	// reach it. Lookup outcomes land on the castan.store.{hits,misses,
	// writes} counters, bumped on the pipeline goroutine only, so they
	// are invariant under Workers.
	Store *store.Store
	// PriorModel, when non-nil, serves as a conservative disjointness
	// oracle during discovery: pool lines it places in different
	// contention sets provably cannot evict each other, so discovery
	// skips probes that cannot change the answer. It only prunes effort —
	// the discovered model is identical with or without it — and is
	// therefore excluded from the store key.
	PriorModel *cachemodel.Model
	// Budget, when non-nil, bounds the run in deterministic ticks
	// (symbex state pops, solver steps, probe line reads, rainbow chain
	// links) with an optional wall-clock deadline. On exhaustion the
	// pipeline degrades per stage instead of failing: the cut lands on
	// the same tick at every worker count, so the degraded Output is as
	// reproducible as a full one. Output.Degradations records what was
	// cut and what the fallback was.
	Budget *budget.Meter
	// Faults arms seeded fault injection (tests and chaos runs only; nil
	// in production). Each armed fault exercises one degradation path.
	Faults *faultinject.Plan
}

func (c *Config) fill() {
	if c.NPackets <= 0 {
		c.NPackets = 30
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 12000
	}
	if c.DiscoverStride <= 0 {
		c.DiscoverStride = 8
	}
	if c.DiscoverPoolCap <= 0 {
		c.DiscoverPoolCap = 2600
	}
	if c.DiscoverMaxSets <= 0 {
		c.DiscoverMaxSets = 6
	}
	if c.RainbowCoverage <= 0 {
		c.RainbowCoverage = 8
	}
	if c.MaxLoopIters <= 0 {
		c.MaxLoopIters = 96
	}
	if c.ICFGLoopBound <= 0 {
		c.ICFGLoopBound = 8
	}
}

// PacketMetrics is the per-packet prediction CASTAN emits alongside the
// workload (the paper's "second file": per-packet CPU model metrics).
type PacketMetrics struct {
	Cycles uint64
}

// StageDegradation records one stage the pipeline had to cut short —
// budget exhaustion, an injected or real fault — and the fallback that
// kept the run producing output. Degradations appear in pipeline order,
// so the list is deterministic.
type StageDegradation struct {
	// Stage is the pipeline stage that degraded: "discover", "symbex",
	// "solve", "rainbow", "reconcile", "frames", or "crosscheck".
	Stage string `json:"stage"`
	// Reason says why (budget exhaustion reason, fault description).
	Reason string `json:"reason"`
	// Fallback says what the pipeline did instead.
	Fallback string `json:"fallback"`
}

// TaintSummary is the input-taint dataflow analysis's classification of
// the NF module: how many reached instructions are provably
// input-independent, affine in input bytes, or opaque (through a hash or
// other scrambling), and how many hash sites have a provably fixed key
// (those fold to constants in the engine and need no rainbow table).
type TaintSummary struct {
	Instructions      int `json:"instructions"`
	Untainted         int `json:"untainted"`
	TaintedLinear     int `json:"tainted_linear"`
	TaintedOpaque     int `json:"tainted_opaque"`
	HashSites         int `json:"hash_sites"`
	FoldableHashSites int `json:"foldable_hash_sites"`
}

// VRangeSummary is the value-range abstract interpretation's outcome on
// the NF module: how many facts it proved (and how many pin a value to a
// constant), how many branches it statically decided, and the dead
// edges / unreachable blocks those decisions imply. Zero-valued when the
// analysis is disabled (Config.NoVRange).
type VRangeSummary struct {
	Funcs             int  `json:"funcs"`
	Rounds            int  `json:"rounds"`
	Capped            bool `json:"capped"`
	Facts             int  `json:"facts"`
	Singletons        int  `json:"singletons"`
	DecidedBranches   int  `json:"decided_branches"`
	DeadEdges         int  `json:"dead_edges"`
	UnreachableBlocks int  `json:"unreachable_blocks"`
}

// Output is a completed analysis.
type Output struct {
	NF     string
	Frames [][]byte
	// Predicted per-packet cycle costs along the chosen path.
	Packets []PacketMetrics
	// Instrs/Loads/Stores/ExpectDRAM/ExpectHit summarize the chosen path.
	Instrs, Loads, Stores uint64
	ExpectDRAM, ExpectHit uint64
	// HavocsTotal and HavocsReconciled report §3.5's outcome.
	HavocsTotal      int
	HavocsReconciled int
	// LintWarnings counts static-analysis warnings on the NF module (the
	// gate rejects modules with errors before exploration starts).
	LintWarnings int
	// StaticHavocSites counts the OpHavoc sites found statically; the
	// rainbow builder only spends effort on hash IDs the taint analysis
	// could not prove input-independent.
	StaticHavocSites int
	// Taint summarizes the input-taint dataflow analysis of the module.
	Taint TaintSummary
	// VRange summarizes the value-range abstract interpretation.
	VRange VRangeSummary
	// ContentionSetsFound is the discovery result size (0 = no model).
	ContentionSetsFound int
	// StaticCostBound is the abstract cache analysis's worst-case cycle
	// bound for the whole synthesized workload (0 when the analysis is
	// disabled or the NF has no static bound).
	StaticCostBound uint64
	// StepsToWorstPath is how many state pops the searcher needed before
	// the state that ended up best completed.
	StepsToWorstPath int
	// StatesExplored, Forks and AnalysisTime describe the effort (Table 4).
	StatesExplored int
	Forks          int
	AnalysisTime   time.Duration
	// Degradations lists the stages that were cut short and their
	// fallbacks, in pipeline order (empty for a clean run). A non-empty
	// list means the workload is best-effort, not the full analysis.
	Degradations []StageDegradation
	// UnreconciledSites lists the hash IDs of havoc sites left
	// unreconciled (sorted, deduplicated). Unreconciled sites occur in
	// healthy runs too (§5.4's related-key failure); under degradation
	// the list flags which parts of the workload rest on unconstrained
	// hash outputs.
	UnreconciledSites []int
	// BudgetTicksUsed is the meter total at the end of the run: all
	// ticks charged across stages, whether or not a limit was hit (0
	// when no meter was configured).
	BudgetTicksUsed uint64
	// Telemetry is the observability snapshot for this run (nil unless
	// Config.Obs was set).
	Telemetry *obs.Metrics
}

// Degraded reports whether any stage was cut short.
func (o *Output) Degraded() bool { return len(o.Degradations) > 0 }

// Analyze runs the full CASTAN pipeline on a *freshly built* NF instance.
// The hierarchy is only ever probed as a black box.
func Analyze(inst *nf.Instance, hier *memsim.Hierarchy, cfg Config) (*Output, error) {
	cfg.fill()
	start := time.Now()
	rec := cfg.Obs
	if rec != nil {
		hier.SetObs(rec)
	}
	root := rec.Span("castan.analyze")

	// Degradations accumulate in pipeline order; the matching counters
	// are bumped once, at the end, from the accepted output only, so
	// retried concretize attempts never pollute telemetry.
	var degr []StageDegradation
	degrade := func(stage, reason, fallback string) {
		degr = append(degr, StageDegradation{Stage: stage, Reason: reason, Fallback: fallback})
		rec.Note(stage, "degraded: "+reason+"; fallback: "+fallback)
	}
	// One counting solver-fault closure per run, shared by every solver
	// on the pipeline goroutine (the engine's and concretize's); worker
	// solvers stay unhooked, like Obs and Budget.
	solverFault := cfg.Faults.SolverHook()

	// Stage 0: static gate. A module that fails the pass pipeline (broken
	// structure, use-before-def, definite out-of-extent access) would make
	// symbolic exploration explore garbage; reject it up front. The same
	// run yields the facts the later stages reuse: the memory-region
	// footprints seed contention-set candidates when the NF declares no
	// attack regions, and the static havoc sites bound rainbow-table work.
	rec.StageBegin("castan.static")
	spStatic := root.Child("castan.static")
	rep := analysis.Lint(inst.Mod, analysis.Options{
		EntryHints: analysis.NFEntryHints(),
		NoDeadDefs: true,
	})
	if rep.HasErrors() {
		return nil, fmt.Errorf("castan: static analysis rejects %s: %s",
			inst.Mod.Name, rep.Findings[0].String())
	}
	mf := analysis.ForModule(inst.Mod)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	staticSites := mf.HavocSites()
	// Input-taint dataflow over the same facts: classifies every value as
	// input-independent, affine in input bytes, or opaque. It powers the
	// engine's concrete folding, and replaces the footprint-based havoc
	// filter — rainbow tables are only built for hash sites whose key the
	// adversary can actually influence (unreached sites conservatively
	// count as influenced).
	ta := taint.Run(mf, mr, taint.Config{EntryHints: taint.NFEntryTaints()})
	// Value-range abstract interpretation over the same facts: proves
	// per-value intervals and congruences the engine uses to take
	// statically-decided branches concretely, to deduplicate states at
	// merge points, and (through the solver memo below) to canonicalize
	// away repeated infeasibility queries.
	var vr *vrange.Analysis
	var memo *solver.Memo
	if !cfg.NoVRange {
		vr = vrange.Run(mf, vrange.Config{EntryHints: vrange.NFEntryRanges()})
		// The memo participates only in queries that mention havoc-range
		// variables (IDs past all packet bytes): hash-probe infeasibility
		// is where sibling states repeat each other, while packet-byte
		// query streams stay byte-for-byte untouched.
		memo = solver.NewMemo(expr.VarID(cfg.NPackets*nf.SymbolicPacketLen), rec)
	}
	staticHashIDs := map[int]bool{}
	for _, s := range ta.HashSites() {
		if !s.Foldable {
			staticHashIDs[s.HashID] = true
		}
	}
	spStatic.End()
	rec.StageEnd("castan.static")

	// Stage 1: empirical cache model over the NF's attack regions; when
	// the NF declares none, fall back to the statically derived table
	// footprints (globals large enough to exceed a cache way).
	regions := inst.AttackRegions
	if len(regions) == 0 {
		regions = staticAttackRegions(mr)
	}
	rec.StageBegin("castan.discover")
	spDiscover := root.Child("castan.discover")
	// Probe ticks charge the "discover" stage through the hierarchy
	// itself (forks inherit the stage); the fault hook perturbs probe
	// timings. Both are cleared after discovery — later stages never
	// probe this hierarchy.
	hier.SetBudget(cfg.Budget.Stage(budget.StageDiscover))
	hier.SetProbeFault(cfg.Faults.ProbeHook())
	var model *cachemodel.Model
	switch {
	case cfg.NoCacheModel:
	case cfg.CacheModel != nil:
		model = cfg.CacheModel
	case len(regions) > 0:
		var derr error
		model, derr = discoverModel(regions, hier, cfg, rec)
		switch {
		case derr == nil:
		case errors.Is(derr, cachemodel.ErrBudget) && model != nil:
			degrade("discover", derr.Error(), "partial unfiltered cache model")
		case errors.Is(derr, cachemodel.ErrBudget):
			degrade("discover", derr.Error(), "no cache model; cold-miss-once cost assumptions")
		case errors.Is(derr, cachemodel.ErrInconsistent):
			// Every set failing the cross-reboot filter points at
			// perturbed probe timings in the noise-free simulator.
			degrade("discover", derr.Error(), "no cache model; cold-miss-once cost assumptions")
		default:
			// ErrNoSets (and region pools too small to probe) is the
			// paper's benign LPM two-stage outcome, not a degradation.
		}
	}
	hier.SetBudget(nil)
	hier.SetProbeFault(nil)
	spDiscover.End()
	rec.Counter("castan.contention_sets").Add(uint64(modelSets(model)))
	rec.StageEnd("castan.discover")

	// Stage 1.5: abstract cache analysis. The must/may fixpoint classifies
	// every load/store (always-hit accesses cost MemL1, everything else is
	// priced at a miss) and the loop forest's trip bounds turn that into
	// static worst-case cost bounds the searcher can use as an admissible
	// priority component. The discovered model refines the conflict
	// relation: lines in different contention sets provably don't evict
	// each other.
	var cc *cachecost.Analysis
	if !cfg.NoStaticCost {
		rec.StageBegin("castan.cachecost")
		spCache := root.Child("castan.cachecost")
		geo := hier.Geometry()
		cc = cachecost.Run(mf, mr, cachecost.Config{
			Geometry: cachecost.Geometry{Ways: geo.L3Assoc(), LineBytes: geo.LineBytes},
			Model:    model,
			Obs:      rec,
		})
		spCache.End()
		rec.StageEnd("castan.cachecost")
	}

	// Stage 2: directed symbolic execution. Realized costs use the
	// realistic model; the search heuristic uses an optimistic one
	// (memory at DRAM latency, loops assumed to run as often as there are
	// packets), so the best-first queue surfaces worst-case paths first.
	rec.StageBegin("castan.icfg")
	spICFG := root.Child("castan.icfg")
	an, err := icfg.Analyze(inst.Mod, 2, icfg.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("castan: icfg: %w", err)
	}
	loopBound := cfg.ICFGLoopBound
	if loopBound < cfg.NPackets+2 {
		loopBound = cfg.NPackets + 2
	}
	potAn, err := icfg.Analyze(inst.Mod, loopBound, icfg.DefaultCostModel())
	if err != nil {
		return nil, fmt.Errorf("castan: icfg potential: %w", err)
	}
	spICFG.End()
	rec.StageEnd("castan.icfg")
	eng := &symbex.Engine{
		Mod:               inst.Mod,
		Analysis:          an,
		PotentialAnalysis: potAn,
		StaticCost:        cc,
		Model:             model,
		Base:              inst.Machine.Mem,
		HeapTop:           ir.HeapBase + inst.Machine.HeapUsed(),
		Cfg: symbex.Config{
			Entry:        "nf_process",
			NPackets:     cfg.NPackets,
			PacketLen:    nf.SymbolicPacketLen,
			MaxStates:    cfg.MaxStates,
			MaxLoopIters: cfg.MaxLoopIters,
		},
		Obs:         rec,
		Budget:      cfg.Budget,
		SolverFault: solverFault,
		Taint:       ta,
		VRange:      vr,
		Memo:        memo,
	}
	rec.StageBegin("castan.symbex")
	spSymbex := root.Child("castan.symbex")
	res, err := eng.Run()
	spSymbex.End()
	rec.StageEnd("castan.symbex")
	if err != nil {
		return nil, fmt.Errorf("castan: symbex: %w", err)
	}

	// Stages 3+4: reconcile havocs and solve. finish carries everything
	// common to the clean path and the degraded ones: summary fields,
	// the crosscheck sanitizer, degradation counters, spans, telemetry.
	rec.StageBegin("castan.reconcile")
	spReconcile := root.Child("castan.reconcile")
	finish := func(out *Output) (*Output, error) {
		out.ContentionSetsFound = modelSets(model)
		out.StatesExplored = res.StatesExplored
		out.Forks = res.Forks
		out.StepsToWorstPath = res.PopsToBest
		out.LintWarnings = rep.Count(analysis.SevWarn)
		out.StaticHavocSites = len(staticSites)
		st := ta.Stats()
		out.Taint = TaintSummary{
			Instructions:      st.Instructions,
			Untainted:         st.Untainted,
			TaintedLinear:     st.Linear,
			TaintedOpaque:     st.Opaque,
			HashSites:         st.HashSites,
			FoldableHashSites: st.FoldableHashSites,
		}
		if vr != nil {
			vs := vr.Stats()
			out.VRange = VRangeSummary{
				Funcs:             vs.Funcs,
				Rounds:            vs.Rounds,
				Capped:            vs.Capped,
				Facts:             vs.Facts,
				Singletons:        vs.Singletons,
				DecidedBranches:   vs.DecidedBranches,
				DeadEdges:         vs.DeadEdges,
				UnreachableBlocks: vs.UnreachableBlocks,
			}
		}
		if cc != nil {
			if b, ok := cc.WorkloadBound("nf_process", cfg.NPackets); ok {
				out.StaticCostBound = b
			}
			// Sanitizer gate: replay the synthesized workload on a fresh
			// simulated hierarchy and fail loudly if any instruction the
			// analysis classified always-hit ever reaches DRAM. A fresh
			// hierarchy (same geometry, same seed) keeps the probing
			// hierarchy's cache state and telemetry untouched. Under
			// injected faults a failure is the expected consequence of a
			// corrupted cache model, so a faulty or already-degraded run
			// downgrades the alarm to a degradation instead of dying.
			rec.StageBegin("castan.crosscheck")
			spCheck := root.Child("castan.crosscheck")
			ccErr := cachecost.CrossCheck(cc, inst.Machine,
				memsim.New(hier.Geometry(), cfg.Seed), "nf_process", out.Frames)
			spCheck.End()
			rec.StageEnd("castan.crosscheck")
			if ccErr != nil {
				if len(degr) == 0 && !cfg.Faults.Enabled() {
					return nil, fmt.Errorf("castan: static cache analysis unsound on %s: %w",
						inst.Name, ccErr)
				}
				degrade("crosscheck", ccErr.Error(), "workload emitted without the sanitizer guarantee")
			}
		}
		out.Degradations = degr
		out.BudgetTicksUsed = cfg.Budget.TotalUsed()
		for _, d := range degr {
			rec.Counter("castan.degraded." + d.Stage).Inc()
		}
		out.AnalysisTime = time.Since(start)
		// End the spans before snapshotting so every phase is in the
		// snapshot; Telemetry is the last field assigned.
		spReconcile.End()
		rec.StageEnd("castan.reconcile")
		root.End()
		out.Telemetry = rec.Snapshot()
		return out, nil
	}

	if res.Best == nil {
		if res.BudgetExhausted == "" && !cfg.Faults.Enabled() {
			return nil, fmt.Errorf("castan: no state consumed all %d packets within budget", cfg.NPackets)
		}
		// Degraded emit: the search was cut (budget) or starved
		// (injected solver fault) before any state finished. The paper's
		// contract is best-so-far output, so emit the workload of the
		// most-progressed partial state — its cached model satisfies its
		// path constraints by the engine invariant — or, with no
		// surviving state at all, zero-model frames.
		reason := res.BudgetExhausted
		if reason == "" {
			reason = "no state consumed all packets under injected faults"
		}
		out := &Output{NF: inst.Name}
		mdl := solver.Model{}
		if st := res.BestPartial; st != nil {
			degrade("symbex", reason,
				fmt.Sprintf("most-progressed partial state (%d/%d packets)", st.PacketsDone, cfg.NPackets))
			mdl = st.Model()
			out.Instrs, out.Loads, out.Stores = st.Instrs, st.Loads, st.Stores
			out.ExpectDRAM, out.ExpectHit = st.ExpectDRAM, st.ExpectHit
			out.HavocsTotal = len(st.Havocs)
			unrec := map[int]bool{}
			for _, h := range st.Havocs {
				unrec[h.HashID] = true
			}
			out.UnreconciledSites = sortedSites(unrec)
			for _, c := range st.PacketCosts {
				out.Packets = append(out.Packets, PacketMetrics{Cycles: c})
			}
		} else {
			degrade("symbex", reason, "no surviving states; zero-model frames")
		}
		out.Frames = buildFrames(eng, mdl, cfg, degrade)
		return finish(out)
	}
	if res.BudgetExhausted != "" {
		degrade("symbex", res.BudgetExhausted, "best completed state from truncated search")
	}

	// Clean(ish) path: fall back to the next-best completed state if the
	// best one resists solving. Degradations a failed attempt recorded
	// are rolled back — only the accepted attempt's survive.
	var lastErr error
	for _, st := range res.Completed {
		attempt := append([]StageDegradation(nil), degr...)
		out, err := concretize(inst, eng, st, cfg, staticHashIDs, &attempt, solverFault)
		if err != nil {
			lastErr = err
			continue
		}
		degr = attempt
		return finish(out)
	}
	return nil, fmt.Errorf("castan: no completed state solvable: %v", lastErr)
}

// sortedSites flattens a hash-ID set into a sorted slice (nil if empty).
func sortedSites(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// buildFrames extracts the workload's frames from a model. Worker panics
// are contained by internal/parallel; on one the frames are rebuilt
// sequentially, index by index, with a zero-model frame standing in for
// any index that still panics.
func buildFrames(eng *symbex.Engine, mdl solver.Model, cfg Config, degrade func(stage, reason, fallback string)) [][]byte {
	hook := cfg.Faults.PanicHook(faultinject.PanicFrames)
	frames, pan := tryFrames(eng, mdl, cfg, hook)
	if pan == nil {
		return frames
	}
	degrade("frames", pan.Error(), "sequential per-packet rebuild with zero-model fallback")
	out := make([][]byte, eng.Cfg.NPackets)
	for p := range out {
		out[p] = frameSafe(eng, mdl, p)
	}
	return out
}

func tryFrames(eng *symbex.Engine, mdl solver.Model, cfg Config, hook func(int)) (frames [][]byte, pan *parallel.Panic) {
	defer func() {
		if v := recover(); v != nil {
			p, ok := v.(*parallel.Panic)
			if !ok {
				panic(v)
			}
			frames, pan = nil, p
		}
	}()
	return parallel.Map(cfg.Workers, eng.Cfg.NPackets, func(p int) []byte {
		if hook != nil {
			hook(p)
		}
		return frameFromModel(eng, mdl, p)
	}), nil
}

func frameSafe(eng *symbex.Engine, mdl solver.Model, p int) (fr []byte) {
	defer func() {
		if recover() != nil {
			fr = frameFromModel(eng, solver.Model{}, p)
		}
	}()
	return frameFromModel(eng, mdl, p)
}

func modelSets(m *cachemodel.Model) int {
	if m == nil {
		return 0
	}
	return len(m.Sets)
}

// staticAttackRegions derives contention-set candidates from the
// memory-region pass when an NF declares none: every global whose
// statically accessed footprint spans at least a cache way's worth of
// lines is a table an adversary could contend on. Footprints are sorted
// by global name, so the derived pool is deterministic.
func staticAttackRegions(mr *analysis.MemRegions) []nf.Region {
	const minSpan = 4096
	var regions []nf.Region
	for _, fp := range mr.GlobalFootprints() {
		if fp.Span() < minSpan {
			continue
		}
		regions = append(regions, nf.Region{
			Name: fp.Global.Name,
			Addr: fp.Global.Addr + fp.Lo,
			Size: fp.Span(),
		})
	}
	return regions
}

// errStoreSkip marks a store.Do computation whose result must not be
// persisted: discovery degraded (budget cut, filter wipeout) or found
// nothing. The caller unpacks the real (model, error) pair from the
// closure; the store only ever sees this sentinel.
var errStoreSkip = errors.New("castan: artifact not persistable")

// modelStoreKey derives the content address of a discovered model: every
// input that can change the model's bytes is included (plus an algorithm
// revision salt, bumped whenever the discovery pipeline itself changes);
// Workers and PriorModel are deliberately excluded because neither may
// influence the output, only the effort.
func modelStoreKey(geo memsim.Geometry, regions []nf.Region, cfg Config) string {
	parts := []string{
		"discover/v2",
		fmt.Sprintf("geo=%+v", geo),
		fmt.Sprintf("seed=%d stride=%d cap=%d maxsets=%d",
			cfg.Seed, cfg.DiscoverStride, cfg.DiscoverPoolCap, cfg.DiscoverMaxSets),
	}
	for _, r := range regions {
		parts = append(parts, fmt.Sprintf("region=%s@%#x+%d", r.Name, r.Addr, r.Size))
	}
	return store.Key(parts...)
}

// discoverModel builds the contention-set model over the given attack
// regions, consulting the cross-run store first when one is configured.
// (nil, nil) means there was nothing to probe; sentinel errors from
// cachemodel distinguish the benign no-sets outcome (the paper's LPM
// two-stage result) from a budget cut or a suspicious filter wipeout.
func discoverModel(regions []nf.Region, hier *memsim.Hierarchy, cfg Config, rec *obs.Recorder) (*cachemodel.Model, error) {
	geo := hier.Geometry()
	stride := uint64(cfg.DiscoverStride * geo.LineBytes)
	var pool []uint64
	for _, r := range regions {
		for a := r.Addr; a < r.Addr+r.Size; a += stride {
			pool = append(pool, a)
		}
	}
	if len(pool) == 0 {
		return nil, nil
	}
	// The pool budget is per region: an NF with several tables (the NAT's
	// two rings) needs each discovered set to hold enough members *within
	// each table* to exceed associativity there.
	poolCap := cfg.DiscoverPoolCap * len(regions)
	if len(pool) > poolCap {
		// Deterministic subsample.
		rng := stats.NewRNG(cfg.Seed + 17)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		pool = pool[:poolCap]
	}
	discover := func() (*cachemodel.Model, error) {
		dcfg := cachemodel.DiscoverConfig{
			Pool:      pool,
			Assoc:     geo.L3Assoc(),
			LineBytes: geo.LineBytes,
			LatL3:     geo.LatL3,
			LatDRAM:   geo.LatDRAM,
			MaxSets:   cfg.DiscoverMaxSets,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
			Fork:      func() cachemodel.Prober { return hier.Fork() },
			Budget:    cfg.Budget.Stage(budget.StageDiscover),
		}
		if pm := cfg.PriorModel; pm != nil {
			dcfg.Disjoint = func(a, b uint64) bool { return cachecost.ProvablyDisjoint(pm, a, b) }
		}
		if rec.Publishing() {
			total := uint64(cfg.DiscoverMaxSets)
			dcfg.Progress = func(setsFound, poolLeft int) {
				rec.Progress("castan.discover", "contention_sets", uint64(setsFound), total)
			}
		}
		return cachemodel.Discover(hier, dcfg)
	}
	st := cfg.Store
	if cfg.Faults.Enabled() {
		// A faulted run may derive a corrupted model; it must neither
		// trust nor feed the shared store.
		st = nil
	}
	if st == nil {
		return discover()
	}

	key := modelStoreKey(geo, regions, cfg)
	var gotModel *cachemodel.Model
	var gotErr error
	ran := false
	payload, hit, err := st.Do(store.KindModel, key, func() ([]byte, error) {
		ran = true
		gotModel, gotErr = discover()
		if gotErr != nil || gotModel == nil {
			return nil, errStoreSkip
		}
		var buf bytes.Buffer
		if err := gotModel.Save(&buf); err != nil {
			return nil, errStoreSkip
		}
		return buf.Bytes(), nil
	})
	if err == nil && hit {
		// Served from disk or from another caller's flight. Load validates
		// internal consistency, so a decodable-but-inconsistent payload
		// degrades to a miss below instead of poisoning the pipeline.
		if m, lerr := cachemodel.Load(bytes.NewReader(payload)); lerr == nil {
			rec.Counter("castan.store.hits").Inc()
			return m, nil
		}
	}
	rec.Counter("castan.store.misses").Inc()
	if ran {
		// This caller ran discovery inside the flight. err == nil means
		// the payload was persisted too; a failed Put (or a skipped
		// persist) still leaves a perfectly usable model.
		if err == nil {
			rec.Counter("castan.store.writes").Inc()
		}
		return gotModel, gotErr
	}
	// Miss without having computed: the flight's outcome was unusable (a
	// memoized skip/error from an earlier run, or a stored payload that
	// failed validation). Re-derive directly and heal the store entry.
	m, derr := discover()
	if derr == nil && m != nil {
		var buf bytes.Buffer
		if serr := m.Save(&buf); serr == nil {
			if st.Put(store.KindModel, key, buf.Bytes()) == nil {
				rec.Counter("castan.store.writes").Inc()
			}
		}
	}
	return m, derr
}

// concretize reconciles the state's havocs and solves its constraints
// into frames. Degradations it records land in *degr: the caller snapshots
// and restores that slice around failed attempts.
func concretize(inst *nf.Instance, eng *symbex.Engine, st *symbex.State, cfg Config, staticHashIDs map[int]bool, degr *[]StageDegradation, solverFault func() bool) (*Output, error) {
	degrade := func(stage, reason, fallback string) {
		*degr = append(*degr, StageDegradation{Stage: stage, Reason: reason, Fallback: fallback})
		// Attempts the caller rolls back still published their notes: the
		// live stream reports what actually happened, in attempt order,
		// which is deterministic (completed states are tried in order).
		cfg.Obs.Note(stage, "degraded: "+reason+"; fallback: "+fallback)
	}
	// The engine maintains the invariant that each state's cached model
	// satisfies its constraints, so it is both the starting model and the
	// hint for all reconciliation checks. The solver runs on the pipeline
	// goroutine, so instrumenting it keeps the recorded totals
	// deterministic.
	// The engine's memo carries over: Unsat verdicts learned during the
	// search answer reconciliation's re-derived infeasibilities too. The
	// speculative worker solvers below stay memo-free for the same reason
	// they stay uninstrumented — shared mutable state across workers
	// would make effort (and map growth) worker-count-dependent.
	sol := solver.Solver{
		Hint: st.Model(), MaxSteps: 30000, Obs: cfg.Obs,
		Budget: cfg.Budget.Stage(budget.StageSolver), ForceUnknown: solverFault,
		Memo: eng.Memo,
	}
	cons := append([]*expr.Expr(nil), st.Constraints()...)
	mdl, err := sol.Solve(cons)
	solveDegraded := false
	if err != nil {
		if !errors.Is(err, solver.ErrBudget) {
			return nil, fmt.Errorf("state %d: %w", st.ID, err)
		}
		// Budget exhaustion (or an injected Unknown) cut the final solve.
		// The state's cached localRepair model satisfies its constraints
		// by the engine invariant, so it stands in; reconciliation is
		// skipped — with no solver left there is nothing to re-check
		// candidate preimages against.
		mdl = st.Model()
		solveDegraded = true
		degrade("solve", err.Error(), "state's cached localRepair model")
	}
	sol.Hint = mdl

	uses := map[int]nf.HashUse{}
	for _, hu := range inst.Hashes {
		uses[hu.HashID] = hu
	}
	unrec := map[int]bool{}
	reconciled := 0
	if cfg.NoRainbow || solveDegraded {
		for _, h := range st.Havocs {
			if _, known := uses[h.HashID]; known {
				unrec[h.HashID] = true
			}
		}
	} else {
		tables := buildRainbowTables(inst, cfg, staticHashIDs, degrade)
		hook := cfg.Faults.PanicHook(faultinject.PanicReconcile)
		bRainbow := cfg.Budget.Stage(budget.StageRainbow)
		pinnedVars := map[expr.VarID]bool{}
		usedKeys := map[string]bool{}
		cut, panicked := false, false
		for _, h := range st.Havocs {
			hu, known := uses[h.HashID]
			if !known {
				continue
			}
			if !cut {
				// Havoc records are the rainbow stage's deterministic cut
				// points: single goroutine, fixed record order.
				if reason, ok := bRainbow.Exhausted(); ok {
					degrade("reconcile", reason, "remaining havoc sites left unreconciled")
					cut = true
				}
			}
			if cut {
				unrec[h.HashID] = true
				continue
			}
			ok, extra, pan := safeReconcile(&sol, cons, mdl, pinnedVars, usedKeys, h, hu, tables[h.HashID], cfg.Workers, hook)
			if pan != nil {
				if !panicked {
					degrade("reconcile", pan.Error(), "havoc site left unreconciled")
					panicked = true
				}
				unrec[h.HashID] = true
				continue
			}
			if !ok {
				unrec[h.HashID] = true
				continue
			}
			cons = append(cons, extra...)
			m2, err := sol.Solve(cons)
			if err != nil {
				// The pins conflicted after all; drop them.
				cons = cons[:len(cons)-len(extra)]
				unrec[h.HashID] = true
				continue
			}
			mdl = m2
			sol.Hint = mdl
			reconciled++
			for _, ke := range h.Key {
				ke.Vars(pinnedVars, nil)
			}
			for _, v := range h.OutVars {
				pinnedVars[v] = true
			}
		}
	}
	cfg.Obs.Counter("castan.havocs").Add(uint64(len(st.Havocs)))
	cfg.Obs.Counter("castan.havocs_reconciled").Add(uint64(reconciled))

	out := &Output{
		NF:                inst.Name,
		Frames:            buildFrames(eng, mdl, cfg, degrade),
		Instrs:            st.Instrs,
		Loads:             st.Loads,
		Stores:            st.Stores,
		ExpectDRAM:        st.ExpectDRAM,
		ExpectHit:         st.ExpectHit,
		HavocsTotal:       len(st.Havocs),
		HavocsReconciled:  reconciled,
		UnreconciledSites: sortedSites(unrec),
	}
	for _, c := range st.PacketCosts {
		out.Packets = append(out.Packets, PacketMetrics{Cycles: c})
	}
	return out, nil
}

// safeReconcile contains a worker panic escaping one havoc's candidate
// fan-out, so a single poisoned site degrades instead of killing the run.
// Non-parallel panics (real bugs) still propagate.
func safeReconcile(sol *solver.Solver, cons []*expr.Expr, mdl solver.Model, pinnedVars map[expr.VarID]bool, usedKeys map[string]bool, h symbex.HavocRecord, hu nf.HashUse, tbl *rainbow.Table, workers int, hook func(int)) (ok bool, extra []*expr.Expr, pan *parallel.Panic) {
	defer func() {
		if v := recover(); v != nil {
			p, isPanic := v.(*parallel.Panic)
			if !isPanic {
				panic(v)
			}
			ok, extra, pan = false, nil, p
		}
	}()
	ok, extra = reconcileHavoc(sol, cons, mdl, pinnedVars, usedKeys, h, hu, tbl, workers, hook)
	return ok, extra, nil
}

// buildRainbowTables builds (and memoizes per process) one rainbow table
// per havocable hash site. The cache is a single-flight group: concurrent
// analyses of NFs sharing a hash site (the campaign fans out across NFs)
// build each table exactly once instead of racing on a bare map.
var rainbowCache parallel.Group[string, *rainbow.Table]

func buildRainbowTables(inst *nf.Instance, cfg Config, staticHashIDs map[int]bool, degrade func(stage, reason, fallback string)) map[int]*rainbow.Table {
	corrupt := cfg.Faults.ChainHook()
	out := map[int]*rainbow.Table{}
	for _, h := range inst.Hashes {
		if h.Space == nil {
			continue
		}
		// Only spend table-building effort on hash IDs that actually appear
		// as OpHavoc sites in the IR: every dynamic havoc record is an
		// execution of one of those sites, so the filter can never starve
		// reconciliation.
		if !staticHashIDs[h.HashID] {
			continue
		}
		key := fmt.Sprintf("%s/%d/%d/%T%v", inst.Name, h.HashID, h.Bits, h.Space, h.Space)
		h := h
		// rcfg.Obs stays nil on purpose: cached tables outlive one
		// Analyze, so a build-time recorder would credit all chain
		// work to whichever run built the table first. Counting below
		// from the finished table charges every run identically,
		// cache hit or fresh build.
		rcfg := rainbow.DefaultConfig(h.Bits)
		rcfg.Chains *= cfg.RainbowCoverage
		rcfg.Workers = cfg.Workers
		rcfg.Corrupt = corrupt
		diskStore := cfg.Store
		if cfg.Faults.Enabled() {
			// Faulted runs must neither trust the shared store nor feed
			// it a possibly corrupted table.
			diskStore = nil
		}
		diskKey := store.Key("rainbow/v1", key,
			fmt.Sprintf("chains=%d len=%d seed=%d", rcfg.Chains, rcfg.ChainLen, rcfg.Seed))
		build := func() (*rainbow.Table, error) {
			// Disk first: a stored table is only trusted after a
			// SelfCheck rewalks sample chains from the build seed —
			// decodable bytes with wrong chain data (tampering, torn
			// concurrent writers) are indistinguishable from a healthy
			// table any other way. Any failure is a plain miss.
			if payload, ok := diskStore.Get(store.KindRainbow, diskKey); ok {
				if tbl, lerr := rainbow.LoadTable(payload, h.Fn, h.Space); lerr == nil && tbl.SelfCheck(4) == nil {
					cfg.Obs.Counter("castan.store.hits").Inc()
					return tbl, nil
				}
			}
			if diskStore != nil {
				cfg.Obs.Counter("castan.store.misses").Inc()
			}
			tbl, err := rainbow.Build(h.Fn, h.Space, rcfg)
			if err != nil {
				return nil, err
			}
			if data, serr := tbl.Serialize(); serr == nil {
				if diskStore.Put(store.KindRainbow, diskKey, data) == nil && diskStore != nil {
					cfg.Obs.Counter("castan.store.writes").Inc()
				}
			}
			return tbl, nil
		}
		var tbl *rainbow.Table
		var err error
		if corrupt != nil {
			// A corrupted table must never enter the shared cross-run
			// cache, so fault runs build privately and eat the cost
			// (diskStore is already nil under faults, so the corrupted
			// table cannot be persisted either).
			tbl, err = build()
		} else {
			tbl, err = rainbowCache.Do(key, build)
		}
		if err != nil {
			continue
		}
		// Integrity gate: rewalk a handful of chains before trusting the
		// table (it may come from the shared cache or a faulty build). A
		// failed check drops the table — its havoc sites will simply stay
		// unreconciled, which is a degradation, not an error.
		if scErr := tbl.SelfCheck(4); scErr != nil {
			degrade("rainbow", scErr.Error(),
				fmt.Sprintf("table for hash %d dropped; its havoc sites stay unreconciled", h.HashID))
			continue
		}
		cfg.Obs.Counter("rainbow.tables").Inc()
		cfg.Obs.Counter("rainbow.chains").Add(uint64(tbl.Chains()))
		cfg.Budget.Stage(budget.StageRainbow).Charge(uint64(tbl.Chains()) * uint64(tbl.ChainLen()))
		out[h.HashID] = tbl
	}
	return out
}

// reconcileHavoc implements §3.5's three-step reconciliation for one
// havoc record: solve for the hash value the path wants, invert it with
// the rainbow table, and re-check the preimage against the packet
// constraints. Returns pin constraints on success. hook, when non-nil, is
// the fault-injection worker-panic hook (tests only).
func reconcileHavoc(sol *solver.Solver, cons []*expr.Expr, mdl solver.Model, pinnedVars map[expr.VarID]bool, usedKeys map[string]bool, h symbex.HavocRecord, hu nf.HashUse, tbl *rainbow.Table, workers int, hook func(int)) (bool, []*expr.Expr) {
	if tbl == nil {
		return false, nil
	}
	masked := nfhash.Masked(hu.Fn, hu.Bits)
	// If every variable of the key was already pinned by earlier
	// reconciliation, the real hash value is forced: reconciliation
	// succeeds only if it matches what the path wants. This is exactly
	// what fails for the NAT's second, related key (§5.4).
	keyForced := true
	for _, ke := range h.Key {
		if ke.HasVars() {
			for _, v := range ke.Vars(map[expr.VarID]bool{}, nil) {
				if !pinnedVars[v] {
					keyForced = false
					break
				}
			}
		}
		if !keyForced {
			break
		}
	}
	want := h.Out.Eval(map[expr.VarID]uint64(mdl))

	if keyForced {
		keyBytes := make([]byte, len(h.Key))
		for i, ke := range h.Key {
			keyBytes[i] = byte(ke.Eval(map[expr.VarID]uint64(mdl)))
		}
		// The true hash value is forced; pinning Out to it stays
		// satisfiable only if the path did not demand a different value.
		real := masked(keyBytes)
		pins := pinOut(h, real)
		if solver.QuickFeasible(append(append([]*expr.Expr(nil), cons...), pins...)) == solver.Unsat {
			return false, nil
		}
		if res, _ := sol.Check(append(append([]*expr.Expr(nil), cons...), pins...)); res == solver.Sat {
			return true, pins
		}
		return false, nil
	}

	// Key still has free bytes: invert candidate hash values and test
	// preimages against the constraints. Rainbow candidates come first;
	// brute force (per §3.5: "brute-force methods augmented by the use of
	// rainbow tables") fills in when the attack needs many distinct
	// preimages of one value, as collision workloads do.
	rec := sol.Obs
	candidates := tbl.Invert(want, 16)
	rec.Counter("rainbow.invert_attempts").Inc()
	rec.Counter("rainbow.invert_keys").Add(uint64(len(candidates)))
	if len(candidates) < 16 {
		// Finding one preimage costs ~2^bits random tries; budget for a
		// handful, capped so wide hashes stay tractable.
		budget := 8 << uint(hu.Bits)
		if budget > 4<<20 {
			budget = 4 << 20
		}
		rec.Counter("rainbow.bruteforce_calls").Inc()
		candidates = append(candidates, tbl.BruteForce(want, 48, budget, want^uint64(h.Packet)*0x9e3779b9)...)
	}
	viable := candidates[:0]
	for _, key := range candidates {
		if len(key) != len(h.Key) {
			continue
		}
		if usedKeys[string(key)] {
			continue // identical to an already-pinned key: flow uniqueness
		}
		viable = append(viable, key)
	}

	// Candidate checks are independent — each builds its own pin set over
	// the shared constraint prefix — so they fan out in batches, keeping
	// sequential semantics by accepting the lowest-index Sat candidate.
	// Shared expression nodes cache var lists and const-ness lazily;
	// warm those caches up front so concurrent checks only read them.
	warmExprs(cons)
	warmExprs(h.Key)
	pins := make([][]*expr.Expr, len(viable))
	hit := parallel.First(workers, len(viable), func(i int) bool {
		if hook != nil {
			hook(i)
		}
		key := viable[i]
		p := make([]*expr.Expr, 0, len(key)+len(h.OutVars))
		for j, ke := range h.Key {
			p = append(p, expr.Eq(ke, expr.Const(uint64(key[j]))))
		}
		p = append(p, pinOut(h, want)...)
		all := append(append([]*expr.Expr(nil), cons...), p...)
		if solver.QuickFeasible(all) == solver.Unsat {
			return false
		}
		// Worker solvers stay uninstrumented: parallel.First batches may
		// speculatively check a few candidates past the accepting index,
		// so per-worker query counts vary with the worker count. The
		// sequential-equivalent effort is recorded below instead
		// (DESIGN.md decision 8).
		worker := solver.Solver{MaxSteps: sol.MaxSteps, Hint: sol.Hint}
		if res, _ := worker.Check(all); res != solver.Sat {
			return false
		}
		pins[i] = p
		return true
	})
	// hit is worker-count invariant (lowest accepted index), so so is this
	// count: candidates a sequential scan would have checked.
	if hit >= 0 {
		rec.Counter("castan.reconcile_checks").Add(uint64(hit + 1))
	} else {
		rec.Counter("castan.reconcile_checks").Add(uint64(len(viable)))
	}
	if hit < 0 {
		return false, nil
	}
	usedKeys[string(viable[hit])] = true
	return true, pins[hit]
}

// warmExprs populates the lazily cached per-node fields (variable lists,
// const-ness) of every node reachable from es, so that subsequent
// concurrent traversals of the shared DAG are read-only.
func warmExprs(es []*expr.Expr) {
	for _, e := range es {
		e.VarList()
	}
}

// pinOut pins the havoc's output variables to a concrete hash value.
func pinOut(h symbex.HavocRecord, val uint64) []*expr.Expr {
	pins := make([]*expr.Expr, 0, len(h.OutVars))
	n := len(h.OutVars)
	for i, v := range h.OutVars {
		shift := uint((n - 1 - i) * 8)
		pins = append(pins, expr.Eq(expr.Var(v), expr.Const((val>>shift)&0xff)))
	}
	return pins
}

// frameFromModel reconstructs a well-formed frame for packet p from the
// solver model: the fields the NF observes are taken verbatim; cosmetic
// fields (version, checksum, lengths) are normalized so the frame parses.
func frameFromModel(eng *symbex.Engine, mdl solver.Model, p int) []byte {
	byteAt := func(off int) uint64 { return mdl[eng.PacketVar(p, off)] & 0xff }
	u16 := func(off int) uint16 { return uint16(byteAt(off))<<8 | uint16(byteAt(off+1)) }
	u32 := func(off int) uint32 {
		return uint32(byteAt(off))<<24 | uint32(byteAt(off+1))<<16 |
			uint32(byteAt(off+2))<<8 | uint32(byteAt(off+3))
	}
	proto := packet.IPProto(byteAt(packet.OffIPProto))
	if proto != packet.ProtoTCP {
		proto = packet.ProtoUDP
	}
	return packet.Build(packet.Spec{
		Proto:   proto,
		SrcIP:   u32(packet.OffIPSrc),
		DstIP:   u32(packet.OffIPDst),
		SrcPort: u16(packet.OffL4SrcPort),
		DstPort: u16(packet.OffL4DstPort),
	})
}

// Validate replays the synthesized frames through a fresh instance of the
// NF on the interpreter, returning the measured instruction count — a
// cheap cross-check that the adversarial path is real.
func Validate(name string, frames [][]byte) (uint64, error) {
	inst, err := nf.New(name)
	if err != nil {
		return 0, err
	}
	var instrs uint64
	inst.Machine.Hooks = interp.Hooks{OnInstr: func(*ir.Func, *ir.Instr) { instrs++ }}
	for _, fr := range frames {
		if _, err := inst.Process(fr); err != nil {
			return instrs, err
		}
	}
	return instrs, nil
}

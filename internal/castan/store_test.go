package castan

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"castan/internal/faultinject"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/obs"
	"castan/internal/parallel"
	"castan/internal/rainbow"
	"castan/internal/store"
)

// resetRainbowCache empties the process-wide rainbow single-flight so the
// next Analyze must go through the on-disk store, as a fresh process
// would. (The only cost to later tests is a rebuild.)
func resetRainbowCache() { rainbowCache = parallel.Group[string, *rainbow.Table]{} }

// analyzeStored runs one Analyze against the store directory with its own
// store handle and recorder — the shape of separate processes sharing a
// store.
func analyzeStored(t *testing.T, name, dir string, cfg Config) (*Output, *obs.Recorder) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New(obs.NewFakeClock(1))
	cfg.Store = st
	cfg.Obs = rec
	inst, err := nf.New(name)
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, cfg)
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	return out, rec
}

// storedComparable zeroes the only fields that legitimately differ
// between a cold and a warm run of the same analysis: wall-clock time and
// the telemetry snapshot (which records discovery effort).
func storedComparable(o *Output) Output {
	c := *o
	c.AnalysisTime = 0
	c.Telemetry = nil
	return c
}

func TestStoreWarmRunSkipsDiscovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NPackets: 20, MaxStates: 3000, Seed: 1}
	cold, recCold := analyzeStored(t, "lpm-dl1", dir, cfg)
	if cold.ContentionSetsFound == 0 {
		t.Fatal("cold run found no contention sets")
	}
	if v := recCold.Counter("castan.store.misses").Value(); v == 0 {
		t.Error("cold run recorded no store miss")
	}
	if v := recCold.Counter("castan.store.writes").Value(); v == 0 {
		t.Error("cold run persisted nothing")
	}
	if v := recCold.Counter("memsim.probe_line_reads").Value(); v == 0 {
		t.Error("cold run did not probe")
	}

	warm, recWarm := analyzeStored(t, "lpm-dl1", dir, cfg)
	if v := recWarm.Counter("castan.store.hits").Value(); v != 1 {
		t.Errorf("warm run store hits = %d, want 1", v)
	}
	if v := recWarm.Counter("castan.store.misses").Value(); v != 0 {
		t.Errorf("warm run store misses = %d, want 0", v)
	}
	if v := recWarm.Counter("memsim.probe_line_reads").Value(); v != 0 {
		t.Errorf("warm run still probed: %d line reads", v)
	}
	if !reflect.DeepEqual(storedComparable(cold), storedComparable(warm)) {
		t.Error("warm output differs from cold output")
	}
}

func TestStoreCorruptModelEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NPackets: 20, MaxStates: 3000, Seed: 1}
	cold, _ := analyzeStored(t, "lpm-dl1", dir, cfg)

	files, err := filepath.Glob(filepath.Join(dir, store.KindModel+"-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("model entries on disk: %v (%v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("\x00\xffnot an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, rec := analyzeStored(t, "lpm-dl1", dir, cfg)
	if v := rec.Counter("castan.store.hits").Value(); v != 0 {
		t.Errorf("corrupt entry served as hit (%d)", v)
	}
	if v := rec.Counter("castan.store.misses").Value(); v == 0 {
		t.Error("corrupt entry not recorded as miss")
	}
	if v := rec.Counter("memsim.probe_line_reads").Value(); v == 0 {
		t.Error("corrupt entry did not trigger re-discovery")
	}
	if v := rec.Counter("castan.store.writes").Value(); v == 0 {
		t.Error("re-discovered model not written back")
	}
	if !reflect.DeepEqual(storedComparable(cold), storedComparable(warm)) {
		t.Error("re-discovered output differs from cold output")
	}

	// The overwrite healed the entry: a third run hits.
	_, rec3 := analyzeStored(t, "lpm-dl1", dir, cfg)
	if v := rec3.Counter("castan.store.hits").Value(); v != 1 {
		t.Errorf("healed entry not hit: hits = %d", v)
	}
}

// TestStoreRainbowSelfCheckGate covers the rainbow trust boundary end to
// end through the store: a persisted table is only used after SelfCheck
// rewalks sample chains, so an entry whose bytes decode fine but whose
// chain data was tampered with is rebuilt from scratch and overwritten —
// it can never reach reconciliation.
func TestStoreRainbowSelfCheckGate(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{NPackets: 10, MaxStates: 4000, Seed: 1}
	resetRainbowCache()
	cold, _ := analyzeStored(t, "lb-chain", dir, cfg)

	rfiles, err := filepath.Glob(filepath.Join(dir, store.KindRainbow+"-*.json"))
	if err != nil || len(rfiles) == 0 {
		t.Fatalf("no rainbow entries persisted: %v (%v)", rfiles, err)
	}

	// Fresh "process": tables come from disk, after the self-check.
	resetRainbowCache()
	warm, recWarm := analyzeStored(t, "lb-chain", dir, cfg)
	if v := recWarm.Counter("castan.store.hits").Value(); v == 0 {
		t.Error("warm run loaded no artifacts from the store")
	}
	if !reflect.DeepEqual(storedComparable(cold), storedComparable(warm)) {
		t.Error("warm output differs from cold output")
	}

	// Tamper with the chain data inside the (valid) envelopes: every end
	// hash is flipped, so LoadTable succeeds but every chain rewalk fails.
	type endJSON struct {
		End    uint64   `json:"end"`
		Starts []uint64 `json:"starts"`
	}
	var tamperedBytes [][]byte
	for _, f := range rfiles {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Schema  string          `json:"schema"`
			Kind    string          `json:"kind"`
			Key     string          `json:"key"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatal(err)
		}
		var tj struct {
			Bits     int       `json:"bits"`
			ChainLen int       `json:"chain_len"`
			Seed     uint64    `json:"seed"`
			NChains  int       `json:"nchains"`
			Ends     []endJSON `json:"ends"`
		}
		if err := json.Unmarshal(env.Payload, &tj); err != nil {
			t.Fatal(err)
		}
		for i := range tj.Ends {
			tj.Ends[i].End ^= 0xdeadbeef
		}
		payload, err := json.Marshal(tj)
		if err != nil {
			t.Fatal(err)
		}
		env.Payload = payload
		mangled, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, mangled, 0o644); err != nil {
			t.Fatal(err)
		}
		tamperedBytes = append(tamperedBytes, mangled)
	}

	resetRainbowCache()
	out3, rec3 := analyzeStored(t, "lb-chain", dir, cfg)
	if v := rec3.Counter("castan.store.misses").Value(); v == 0 {
		t.Error("tampered rainbow entry was trusted")
	}
	if v := rec3.Counter("castan.store.writes").Value(); v == 0 {
		t.Error("rebuilt table not written back")
	}
	if !reflect.DeepEqual(storedComparable(cold), storedComparable(out3)) {
		t.Error("output through tampered store differs from cold output")
	}
	for i, f := range rfiles {
		healed, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(healed, tamperedBytes[i]) {
			t.Errorf("entry %s not healed after rebuild", filepath.Base(f))
		}
	}
}

// TestStoreFaultedRunBypassesStore pins the never-cache-corrupted rule: a
// run with fault injection armed must neither read nor write the store,
// so a corrupted artifact cannot poison later clean runs.
func TestStoreFaultedRunBypassesStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		NPackets:  6,
		MaxStates: 2500,
		Seed:      1,
		Faults:    &faultinject.Plan{Name: "chain-corrupt", Seed: 3, CorruptChainEvery: 1},
	}
	resetRainbowCache()
	_, rec := analyzeStored(t, "lb-chain", dir, cfg)
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("faulted run persisted artifacts: %v", files)
	}
	for _, name := range []string{"castan.store.hits", "castan.store.misses", "castan.store.writes"} {
		if v := rec.Counter(name).Value(); v != 0 {
			t.Errorf("faulted run touched the store: %s = %d", name, v)
		}
	}
	resetRainbowCache()
}

package castan

import (
	"bytes"
	"testing"

	"castan/internal/obs"
)

// TestReportRoundTripTelemetry pins the effort plumbing: symbex's fork
// count reaches the report (it used to be dropped on the floor), and an
// instrumented run's telemetry snapshot survives the JSON round trip.
func TestReportRoundTripTelemetry(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1000))
	out := analyze(t, "lpm-dl2", Config{NPackets: 6, MaxStates: 1500, Seed: 5, Obs: rec})
	if out.Forks == 0 {
		t.Error("Output.Forks not wired from the symbex result")
	}
	if out.Telemetry == nil {
		t.Fatal("Output.Telemetry missing on an instrumented run")
	}
	if got := out.Telemetry.Counters["symbex.forks"]; got != uint64(out.Forks) {
		t.Errorf("symbex.forks counter = %d, Output.Forks = %d", got, out.Forks)
	}
	if got := out.Telemetry.Counters["symbex.states_explored"]; got != uint64(out.StatesExplored) {
		t.Errorf("symbex.states_explored counter = %d, Output.StatesExplored = %d", got, out.StatesExplored)
	}
	if out.Telemetry.Counters["solver.queries"] == 0 {
		t.Error("no solver queries recorded")
	}
	if len(out.Telemetry.Phases) == 0 {
		t.Error("no pipeline phases recorded")
	}

	var buf bytes.Buffer
	if err := out.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Forks != out.Forks {
		t.Errorf("report forks = %d, want %d", rep.Forks, out.Forks)
	}
	if rep.Telemetry == nil {
		t.Fatal("report telemetry lost in round trip")
	}
	for _, name := range []string{"solver.queries", "symbex.forks", "symbex.states_explored"} {
		if rep.Telemetry.Counters[name] != out.Telemetry.Counters[name] {
			t.Errorf("counter %s = %d after round trip, want %d",
				name, rep.Telemetry.Counters[name], out.Telemetry.Counters[name])
		}
	}

	// Uninstrumented runs must not grow a telemetry section.
	plain := analyze(t, "lpm-dl2", Config{NPackets: 6, MaxStates: 1500, Seed: 5})
	if plain.Telemetry != nil {
		t.Error("uninstrumented run produced telemetry")
	}
	buf.Reset()
	if err := plain.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"telemetry"`)) {
		t.Error("uninstrumented report serializes a telemetry section")
	}
}

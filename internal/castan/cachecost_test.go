package castan

import (
	"math/rand"
	"testing"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/packet"
)

// TestCrossCheckCatalog extends the must-soundness gate from random
// modules to every catalog NF: the analysis classifies the real NFs'
// memory instructions, and a warm memsim replay of varied traffic must
// never see an always-hit instruction reach DRAM.
func TestCrossCheckCatalog(t *testing.T) {
	names := nf.Names
	if testing.Short() {
		names = []string{"lb-chain", "lpm-dl1", "nat-ring"}
	}
	geo := memsim.DefaultGeometry()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			inst, err := nf.New(name)
			if err != nil {
				t.Fatal(err)
			}
			mf := analysis.ForModule(inst.Mod)
			mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
			cc := cachecost.Run(mf, mr, cachecost.Config{
				Geometry: cachecost.Geometry{Ways: geo.L3Assoc(), LineBytes: geo.LineBytes},
			})
			hit := false
			for _, fn := range cc.FuncNames() {
				if cc.FuncStats(inst.Mod.Funcs[fn]).AlwaysHit > 0 {
					hit = true
				}
			}
			_ = hit // some NFs legitimately have none; the catalog check below is the gate

			r := rand.New(rand.NewSource(7))
			frames := make([][]byte, 16)
			for i := range frames {
				frames[i] = packet.Build(packet.Spec{
					Proto:   packet.ProtoUDP,
					SrcIP:   r.Uint32(),
					DstIP:   r.Uint32(),
					SrcPort: uint16(r.Uint32()),
					DstPort: uint16(r.Uint32()),
				})
			}
			hier := memsim.New(geo, 99)
			if err := cachecost.CrossCheck(cc, inst.Machine, hier, "nf_process", frames); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStaticPriorityStepsRegression pins the searcher-efficiency
// acceptance criterion: with the static-cost priority component, the
// searcher must reach the path that ends up best in no more state pops
// than the baseline searcher (icfg potential only), for every example NF.
func TestStaticPriorityStepsRegression(t *testing.T) {
	names := nf.Names
	if testing.Short() {
		names = []string{"lb-chain", "lpm-dl1", "lpm-trie"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			cfg := Config{NPackets: 6, MaxStates: 2000, Seed: 1}
			base := cfg
			base.NoStaticCost = true
			with := analyze(t, name, cfg)
			without := analyze(t, name, base)
			if with.StepsToWorstPath == 0 || without.StepsToWorstPath == 0 {
				t.Fatalf("steps-to-worst-path not recorded: with=%d without=%d",
					with.StepsToWorstPath, without.StepsToWorstPath)
			}
			if with.StepsToWorstPath > without.StepsToWorstPath {
				t.Errorf("static priority needed %d pops to the worst path, baseline %d",
					with.StepsToWorstPath, without.StepsToWorstPath)
			}
		})
	}
}

package castan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"

	"castan/internal/obs"
	"castan/internal/packet"
)

// The paper's tool emits two files per path: the concrete test (which we
// export as PCAP via internal/pcap) and a per-packet CPU-model metrics
// file used to "predict the performance envelope of each path". Report is
// that second file, as JSON.

// Report is the serializable analysis summary.
type Report struct {
	NF                  string         `json:"nf"`
	Packets             []PacketReport `json:"packets"`
	Instrs              uint64         `json:"instructions"`
	Loads               uint64         `json:"loads"`
	Stores              uint64         `json:"stores"`
	ExpectDRAM          uint64         `json:"expected_dram_accesses"`
	ExpectHit           uint64         `json:"expected_cache_hits"`
	HavocsTotal         int            `json:"havocs_total"`
	HavocsReconciled    int            `json:"havocs_reconciled"`
	ContentionSetsFound int            `json:"contention_sets_found"`
	// Taint summarizes the input-taint dataflow analysis (instruction
	// classification and hash-site key controllability).
	Taint TaintSummary `json:"taint"`
	// VRange summarizes the value-range abstract interpretation (zeros
	// when the pass was disabled with -no-vrange).
	VRange VRangeSummary `json:"vrange"`
	// StaticCostBound is the abstract cache analysis's worst-case cycle
	// bound for the whole workload, printed next to measured cycles
	// (0 = analysis disabled or no static bound).
	StaticCostBound  uint64  `json:"static_cost_bound,omitempty"`
	StepsToWorstPath int     `json:"steps_to_worst_path,omitempty"`
	StatesExplored   int     `json:"states_explored"`
	Forks            int     `json:"forks"`
	AnalysisSeconds  float64 `json:"analysis_seconds"`
	// Degradations lists the stages the run had to cut short (absent for
	// a clean run); a consumer seeing any entry knows the workload is
	// best-effort rather than the full analysis.
	Degradations []StageDegradation `json:"degradations,omitempty"`
	// UnreconciledSites lists hash sites whose havocs were left
	// unreconciled (sorted hash IDs; absent when every site reconciled).
	UnreconciledSites []int `json:"unreconciled_sites,omitempty"`
	// BudgetTicksUsed is the deterministic tick total the run consumed
	// (absent when no budget meter was configured).
	BudgetTicksUsed uint64 `json:"budget_ticks_used,omitempty"`
	// Telemetry is the observability snapshot (absent unless the run was
	// instrumented via Config.Obs).
	Telemetry *obs.Metrics `json:"telemetry,omitempty"`
}

// PacketReport describes one synthesized packet.
type PacketReport struct {
	Index           int    `json:"index"`
	Flow            string `json:"flow"`
	PredictedCycles uint64 `json:"predicted_cycles"`
}

// Report builds the serializable summary of an Output.
func (o *Output) Report() *Report {
	r := &Report{
		NF:                  o.NF,
		Instrs:              o.Instrs,
		Loads:               o.Loads,
		Stores:              o.Stores,
		ExpectDRAM:          o.ExpectDRAM,
		ExpectHit:           o.ExpectHit,
		HavocsTotal:         o.HavocsTotal,
		HavocsReconciled:    o.HavocsReconciled,
		ContentionSetsFound: o.ContentionSetsFound,
		Taint:               o.Taint,
		VRange:              o.VRange,
		StaticCostBound:     o.StaticCostBound,
		StepsToWorstPath:    o.StepsToWorstPath,
		StatesExplored:      o.StatesExplored,
		Forks:               o.Forks,
		AnalysisSeconds:     o.AnalysisTime.Seconds(),
		Degradations:        o.Degradations,
		UnreconciledSites:   o.UnreconciledSites,
		BudgetTicksUsed:     o.BudgetTicksUsed,
		Telemetry:           o.Telemetry,
	}
	for i, fr := range o.Frames {
		pr := PacketReport{Index: i}
		if i < len(o.Packets) {
			pr.PredictedCycles = o.Packets[i].Cycles
		}
		if p, err := packet.Parse(fr); err == nil {
			pr.Flow = p.Tuple().String()
		}
		r.Packets = append(r.Packets, pr)
	}
	return r
}

// WriteReport serializes the report as indented JSON.
func (o *Output) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(o.Report())
}

// WriteReportFile writes the report to a file.
func (o *Output) WriteReportFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := o.WriteReport(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadReport loads a report back (for tooling that post-processes runs).
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("castan: decode report: %w", err)
	}
	return &rep, nil
}

// Check validates the report's structural invariants: a named NF
// (matching expectNF when non-empty), a non-empty packet list with dense
// 0-based indices, and complete degradation records. It is the shared
// schema gate behind cmd/reportcheck and the castand service contract —
// every HTTP 200 response, however degraded, must pass it.
func (r *Report) Check(expectNF string) error {
	if r == nil {
		return fmt.Errorf("report is nil")
	}
	if r.NF == "" {
		return fmt.Errorf("report names no NF")
	}
	if expectNF != "" && r.NF != expectNF {
		return fmt.Errorf("report is for NF %q, want %q", r.NF, expectNF)
	}
	if len(r.Packets) == 0 {
		return fmt.Errorf("report carries no packets")
	}
	for i, p := range r.Packets {
		if p.Index != i {
			return fmt.Errorf("packet %d has index %d", i, p.Index)
		}
	}
	for _, d := range r.Degradations {
		if d.Stage == "" || d.Reason == "" || d.Fallback == "" {
			return fmt.Errorf("incomplete degradation record %+v", d)
		}
	}
	return nil
}

// SameOutcome reports whether two reports describe the identical
// analysis outcome. Only the run-dependent fields — wall-clock time and
// the telemetry snapshot — are exempt; everything else must match
// exactly. This is the determinism comparator behind reportcheck
// -compare and the service's worker-count invariance test.
func (r *Report) SameOutcome(other *Report) bool {
	if r == nil || other == nil {
		return r == other
	}
	a, b := *r, *other
	a.AnalysisSeconds, b.AnalysisSeconds = 0, 0
	a.Telemetry, b.Telemetry = nil, nil
	return reflect.DeepEqual(a, b)
}

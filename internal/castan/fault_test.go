package castan

import (
	"bytes"
	"testing"

	"castan/internal/budget"
	"castan/internal/faultinject"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/packet"
)

// TestFaultMatrix drives every NF in the catalog under every seeded fault
// plan, with tight per-stage budgets so the matrix stays fast. Whatever is
// injected — forced solver Unknowns, perturbed probe timings, corrupted
// rainbow chains, worker panics — Analyze must return a valid (possibly
// degraded) output with well-formed frames and a serializable report, and
// must never crash or error out.
func TestFaultMatrix(t *testing.T) {
	for _, name := range nf.Names {
		for _, plan := range faultinject.MatrixPlans() {
			name, plan := name, plan
			t.Run(name+"/"+plan.Name, func(t *testing.T) {
				t.Parallel()
				inst, err := nf.New(name)
				if err != nil {
					t.Fatal(err)
				}
				m := budget.New(0)
				m.SetStageLimit(budget.StageDiscover, 60_000)
				m.SetStageLimit(budget.StageSymbex, 2_500)
				hier := memsim.New(memsim.DefaultGeometry(), 7)
				out, err := Analyze(inst, hier, Config{
					NPackets:  3,
					MaxStates: 800,
					Seed:      7,
					Budget:    m,
					Faults:    plan,
				})
				if err != nil {
					t.Fatalf("Analyze must degrade, not fail: %v", err)
				}
				if len(out.Frames) != 3 {
					t.Fatalf("frames = %d, want 3", len(out.Frames))
				}
				for i, fr := range out.Frames {
					if _, err := packet.Parse(fr); err != nil {
						t.Fatalf("frame %d does not parse: %v", i, err)
					}
				}
				for _, d := range out.Degradations {
					if d.Stage == "" || d.Reason == "" || d.Fallback == "" {
						t.Errorf("incomplete degradation record %+v", d)
					}
				}
				var buf bytes.Buffer
				if err := out.WriteReport(&buf); err != nil {
					t.Fatal(err)
				}
				rep, err := ReadReport(&buf)
				if err != nil {
					t.Fatalf("degraded report does not round-trip: %v", err)
				}
				if rep.NF != name || len(rep.Packets) != len(out.Frames) {
					t.Fatalf("report shape: nf=%q packets=%d", rep.NF, len(rep.Packets))
				}
				if len(rep.Degradations) != len(out.Degradations) {
					t.Errorf("report carries %d degradations, output %d",
						len(rep.Degradations), len(out.Degradations))
				}
			})
		}
	}
}

// TestChainCorruptionDegradesRainbow pins the chain-corruption path: a
// corrupted table must fail its self-check, be dropped (never entering the
// shared cache), and leave the NF's havoc sites unreconciled — a flagged
// degradation, not an error.
func TestChainCorruptionDegradesRainbow(t *testing.T) {
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, Config{
		NPackets:  6,
		MaxStates: 2500,
		Seed:      1,
		Faults:    &faultinject.Plan{Name: "chain-corrupt", Seed: 3, CorruptChainEvery: 1},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if out.HavocsReconciled != 0 {
		t.Errorf("%d havocs reconciled through corrupted tables", out.HavocsReconciled)
	}
	hasRainbow := false
	for _, d := range out.Degradations {
		if d.Stage == "rainbow" {
			hasRainbow = true
		}
	}
	if !hasRainbow {
		t.Errorf("no rainbow degradation recorded: %+v", out.Degradations)
	}
	if out.HavocsTotal > 0 && len(out.UnreconciledSites) == 0 {
		t.Error("havocs exist but no unreconciled sites flagged")
	}
}

// TestFramePanicDegradesToSequentialRebuild pins the worker-panic path in
// frame extraction: the contained panic surfaces as a "frames" degradation
// and the sequential rebuild still emits every frame.
func TestFramePanicDegradesToSequentialRebuild(t *testing.T) {
	inst, err := nf.New("lpm-dl2")
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, Config{
		NPackets:  4,
		MaxStates: 1500,
		Seed:      1,
		Workers:   4,
		Faults:    &faultinject.Plan{Name: "frames-panic", Seed: 9, PanicStage: faultinject.PanicFrames},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	hasFrames := false
	for _, d := range out.Degradations {
		if d.Stage == "frames" {
			hasFrames = true
		}
	}
	if !hasFrames {
		t.Fatalf("no frames degradation recorded: %+v", out.Degradations)
	}
	if len(out.Frames) != 4 {
		t.Fatalf("sequential rebuild produced %d frames, want 4", len(out.Frames))
	}
	for i, fr := range out.Frames {
		if _, err := packet.Parse(fr); err != nil {
			t.Errorf("rebuilt frame %d does not parse: %v", i, err)
		}
	}
}

// TestForcedUnknownDegradesInsteadOfErring pins the injected-solver-fault
// path: when every solver query returns Unknown from the start, the
// pipeline still emits a degraded best-effort output.
func TestForcedUnknownDegradesInsteadOfErring(t *testing.T) {
	inst, err := nf.New("lpm-dl2")
	if err != nil {
		t.Fatal(err)
	}
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, Config{
		NPackets:  3,
		MaxStates: 800,
		Seed:      1,
		Faults:    &faultinject.Plan{Name: "solver-unknown", Seed: 1, SolverUnknownAfter: 1},
	})
	if err != nil {
		t.Fatalf("Analyze must degrade, not fail: %v", err)
	}
	if !out.Degraded() {
		t.Fatalf("starved solver produced a clean run: %+v", out.Degradations)
	}
	if len(out.Frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(out.Frames))
	}
}

// TestBudgetExhaustionEmitsBestPartial pins the tentpole degradation: a
// symbex budget too small for any state to finish still yields an output
// built from the most-progressed partial state, with the exhaustion reason
// recorded and ticks accounted.
func TestBudgetExhaustionEmitsBestPartial(t *testing.T) {
	inst, err := nf.New("lb-chain")
	if err != nil {
		t.Fatal(err)
	}
	m := budget.New(0)
	// lb-chain completes 8 packets in ~20 pops; 5 guarantees a mid-search
	// cut with no completed state.
	m.SetStageLimit(budget.StageSymbex, 5)
	hier := memsim.New(memsim.DefaultGeometry(), 2024)
	out, err := Analyze(inst, hier, Config{
		NPackets:  8,
		MaxStates: 4000,
		Seed:      1,
		Budget:    m,
	})
	if err != nil {
		t.Fatalf("Analyze must degrade, not fail: %v", err)
	}
	if !out.Degraded() {
		t.Fatal("5-pop budget did not degrade an 8-packet analysis")
	}
	hasSymbex := false
	for _, d := range out.Degradations {
		if d.Stage == "symbex" && d.Reason != "" {
			hasSymbex = true
		}
	}
	if !hasSymbex {
		t.Fatalf("no symbex degradation recorded: %+v", out.Degradations)
	}
	if out.BudgetTicksUsed == 0 {
		t.Error("BudgetTicksUsed = 0 on a budget-cut run")
	}
	if len(out.Frames) != 8 {
		t.Fatalf("frames = %d, want 8", len(out.Frames))
	}
	for i, fr := range out.Frames {
		if _, err := packet.Parse(fr); err != nil {
			t.Errorf("frame %d does not parse: %v", i, err)
		}
	}
}

package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTripUDP(t *testing.T) {
	spec := Spec{
		EthSrc:  MAC{0x02, 0, 0, 0, 0, 1},
		EthDst:  MAC{0x02, 0, 0, 0, 0, 2},
		Proto:   ProtoUDP,
		SrcIP:   0x0a000001,
		DstIP:   0xc0a80102,
		SrcPort: 1234,
		DstPort: 53,
	}
	raw := Build(spec)
	if len(raw) != MinUDPFrameLen {
		t.Fatalf("frame len = %d, want %d", len(raw), MinUDPFrameLen)
	}
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Eth.Src != spec.EthSrc || p.Eth.Dst != spec.EthDst {
		t.Errorf("eth mismatch: %v -> %v", p.Eth.Src, p.Eth.Dst)
	}
	if p.IP.Src != spec.SrcIP || p.IP.Dst != spec.DstIP {
		t.Errorf("ip mismatch: %08x -> %08x", p.IP.Src, p.IP.Dst)
	}
	if p.UDP == nil {
		t.Fatal("UDP layer missing")
	}
	if p.UDP.SrcPort != 1234 || p.UDP.DstPort != 53 {
		t.Errorf("ports = %d->%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if p.TCP != nil {
		t.Error("unexpected TCP layer")
	}
	if !VerifyIPv4Checksum(raw[OffIPVerIHL : OffIPVerIHL+IPv4HeaderLen]) {
		t.Error("bad IPv4 checksum")
	}
}

func TestBuildParseRoundTripTCP(t *testing.T) {
	raw := Build(Spec{Proto: ProtoTCP, SrcIP: 1, DstIP: 2, SrcPort: 80, DstPort: 8080})
	p, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.TCP == nil {
		t.Fatal("TCP layer missing")
	}
	if p.TCP.SrcPort != 80 || p.TCP.DstPort != 8080 {
		t.Errorf("ports = %d->%d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.SrcPort() != 80 || p.DstPort() != 8080 {
		t.Errorf("accessors = %d->%d", p.SrcPort(), p.DstPort())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"short", make([]byte, 10)},
		{"not ipv4 ethertype", func() []byte {
			b := Build(Spec{SrcIP: 1, DstIP: 2})
			b[OffEtherType] = 0x08
			b[OffEtherType+1] = 0x06
			return b
		}()},
		{"ip version 6", func() []byte {
			b := Build(Spec{SrcIP: 1, DstIP: 2})
			b[OffIPVerIHL] = 0x65
			return b
		}()},
		{"ihl with options", func() []byte {
			b := Build(Spec{SrcIP: 1, DstIP: 2})
			b[OffIPVerIHL] = 0x46
			return b
		}()},
		{"icmp proto", func() []byte {
			b := Build(Spec{SrcIP: 1, DstIP: 2})
			b[OffIPProto] = byte(ProtoICMP)
			return b
		}()},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.raw); err == nil {
			t.Errorf("%s: Parse succeeded, want error", tc.name)
		}
	}
}

func TestFiveTupleRoundTrip(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, udp bool) bool {
		proto := ProtoTCP
		if udp {
			proto = ProtoUDP
		}
		want := FiveTuple{SrcIP: srcIP, DstIP: dstIP, SrcPort: srcPort, DstPort: dstPort, Proto: proto}
		p, err := Parse(FromTuple(want))
		if err != nil {
			return false
		}
		return p.Tuple() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	tup := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}
	rev := tup.Reverse()
	if rev.SrcIP != 2 || rev.DstIP != 1 || rev.SrcPort != 4 || rev.DstPort != 3 {
		t.Errorf("Reverse = %+v", rev)
	}
	if rev.Reverse() != tup {
		t.Error("double reverse not identity")
	}
}

func TestFiveTupleBytesLayout(t *testing.T) {
	tup := FiveTuple{SrcIP: 0x01020304, DstIP: 0x05060708, SrcPort: 0x090a, DstPort: 0x0b0c, Proto: 17}
	k := tup.Bytes()
	want := [13]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 17}
	if k != want {
		t.Errorf("Bytes = %v, want %v", k, want)
	}
}

func TestAddrConversions(t *testing.T) {
	a := netip.MustParseAddr("10.1.2.3")
	u := AddrU32(a)
	if u != 0x0a010203 {
		t.Fatalf("AddrU32 = %08x", u)
	}
	ip := IPv4{Src: u, Dst: u}
	if ip.SrcAddr() != a || ip.DstAddr() != a {
		t.Errorf("round trip: %v / %v", ip.SrcAddr(), ip.DstAddr())
	}
}

func TestChecksumProperties(t *testing.T) {
	// Any built header verifies; flipping any byte invalidates it.
	raw := Build(Spec{SrcIP: 0xdeadbeef, DstIP: 0xcafebabe, SrcPort: 1, DstPort: 2})
	hdr := raw[OffIPVerIHL : OffIPVerIHL+IPv4HeaderLen]
	if !VerifyIPv4Checksum(hdr) {
		t.Fatal("fresh header does not verify")
	}
	for i := range hdr {
		if i == 10 || i == 11 {
			continue
		}
		hdr[i] ^= 0xff
		if VerifyIPv4Checksum(hdr) && hdr[i]^0xff != hdr[i] {
			t.Errorf("corrupted byte %d still verifies", i)
		}
		hdr[i] ^= 0xff
	}
	if VerifyIPv4Checksum(hdr[:10]) {
		t.Error("short header verified")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("String = %q", got)
	}
}

func TestTupleString(t *testing.T) {
	tup := FiveTuple{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	if got := tup.String(); got != "udp 10.0.0.1:10->10.0.0.2:20" {
		t.Errorf("String = %q", got)
	}
}

// Package packet implements parsing and serialization of the packet formats
// used throughout the CASTAN reproduction: Ethernet II, IPv4, UDP and TCP.
//
// The design follows the layer-oriented style of gopacket: a Packet is
// decoded into a stack of typed layers, each of which knows how to parse
// and serialize itself. Only the protocols exercised by the evaluated
// network functions are implemented; everything is dependency-free.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Ethernet payload types used by the NF library.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// IPProto identifies the payload protocol of an IPv4 packet.
type IPProto uint8

// IPv4 protocol numbers used by the NF library.
const (
	ProtoICMP IPProto = 1
	ProtoTCP  IPProto = 6
	ProtoUDP  IPProto = 17
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
	// MinLen is the smallest packet the NF framework accepts:
	// Ethernet + IPv4 + L4 ports.
	MinLen = EthernetHeaderLen + IPv4HeaderLen + 4
)

// Offsets of selected fields from the start of the frame. These are shared
// with the IR network functions, which address packet bytes directly.
const (
	OffEtherDst   = 0
	OffEtherSrc   = 6
	OffEtherType  = 12
	OffIPVerIHL   = 14
	OffIPTotLen   = 16
	OffIPTTL      = 22
	OffIPProto    = 23
	OffIPChecksum = 24
	OffIPSrc      = 26
	OffIPDst      = 30
	OffL4SrcPort  = 34
	OffL4DstPort  = 36
	OffUDPLen     = 38
	OffUDPCksum   = 40
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst  MAC
	Src  MAC
	Type EtherType
}

// IPv4 is a decoded IPv4 header (options are not supported).
type IPv4 struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    IPProto
	Checksum uint16
	Src      uint32 // big-endian numeric form, e.g. 10.0.0.1 = 0x0a000001
	Dst      uint32
}

// SrcAddr returns the source address as a netip.Addr.
func (ip *IPv4) SrcAddr() netip.Addr { return addrFromU32(ip.Src) }

// DstAddr returns the destination address as a netip.Addr.
func (ip *IPv4) DstAddr() netip.Addr { return addrFromU32(ip.Dst) }

func addrFromU32(v uint32) netip.Addr {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// AddrU32 converts a netip IPv4 address into its numeric big-endian form.
func AddrU32(a netip.Addr) uint32 {
	b := a.As4()
	return binary.BigEndian.Uint32(b[:])
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// TCP is a decoded TCP header (only the fields the NFs inspect).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
}

// Packet is a decoded network packet together with its raw bytes. The raw
// buffer is authoritative; the decoded layers are views that were valid at
// Parse time. After mutating layers, call Serialize to refresh the bytes.
type Packet struct {
	Eth Ethernet
	IP  IPv4
	UDP *UDP // non-nil iff IP.Proto == ProtoUDP
	TCP *TCP // non-nil iff IP.Proto == ProtoTCP
	Raw []byte
}

// Parse decodes an Ethernet/IPv4/{UDP,TCP} frame. It returns an error if
// the frame is truncated, is not IPv4, or carries IPv4 options (the NF
// library, like the paper's DPDK NFs, assumes fixed 20-byte IP headers).
func Parse(raw []byte) (*Packet, error) {
	if len(raw) < MinLen {
		return nil, fmt.Errorf("packet: frame too short: %d bytes", len(raw))
	}
	p := &Packet{Raw: raw}
	copy(p.Eth.Dst[:], raw[OffEtherDst:])
	copy(p.Eth.Src[:], raw[OffEtherSrc:])
	p.Eth.Type = EtherType(binary.BigEndian.Uint16(raw[OffEtherType:]))
	if p.Eth.Type != EtherTypeIPv4 {
		return nil, fmt.Errorf("packet: unsupported ethertype %#04x", uint16(p.Eth.Type))
	}
	verIHL := raw[OffIPVerIHL]
	if verIHL>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", verIHL>>4)
	}
	if verIHL&0x0f != 5 {
		return nil, fmt.Errorf("packet: IPv4 options unsupported (IHL %d)", verIHL&0x0f)
	}
	p.IP.TotalLen = binary.BigEndian.Uint16(raw[OffIPTotLen:])
	p.IP.ID = binary.BigEndian.Uint16(raw[OffIPTotLen+2:])
	p.IP.TTL = raw[OffIPTTL]
	p.IP.Proto = IPProto(raw[OffIPProto])
	p.IP.Checksum = binary.BigEndian.Uint16(raw[OffIPChecksum:])
	p.IP.Src = binary.BigEndian.Uint32(raw[OffIPSrc:])
	p.IP.Dst = binary.BigEndian.Uint32(raw[OffIPDst:])
	switch p.IP.Proto {
	case ProtoUDP:
		if len(raw) < EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen {
			return nil, fmt.Errorf("packet: truncated UDP header")
		}
		p.UDP = &UDP{
			SrcPort:  binary.BigEndian.Uint16(raw[OffL4SrcPort:]),
			DstPort:  binary.BigEndian.Uint16(raw[OffL4DstPort:]),
			Length:   binary.BigEndian.Uint16(raw[OffUDPLen:]),
			Checksum: binary.BigEndian.Uint16(raw[OffUDPCksum:]),
		}
	case ProtoTCP:
		if len(raw) < EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen {
			return nil, fmt.Errorf("packet: truncated TCP header")
		}
		p.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(raw[OffL4SrcPort:]),
			DstPort: binary.BigEndian.Uint16(raw[OffL4DstPort:]),
			Seq:     binary.BigEndian.Uint32(raw[OffL4SrcPort+4:]),
			Ack:     binary.BigEndian.Uint32(raw[OffL4SrcPort+8:]),
			Flags:   raw[OffL4SrcPort+13],
		}
	default:
		return nil, fmt.Errorf("packet: unsupported IP protocol %d", p.IP.Proto)
	}
	return p, nil
}

// SrcPort returns the L4 source port regardless of transport.
func (p *Packet) SrcPort() uint16 {
	if p.UDP != nil {
		return p.UDP.SrcPort
	}
	if p.TCP != nil {
		return p.TCP.SrcPort
	}
	return 0
}

// DstPort returns the L4 destination port regardless of transport.
func (p *Packet) DstPort() uint16 {
	if p.UDP != nil {
		return p.UDP.DstPort
	}
	if p.TCP != nil {
		return p.TCP.DstPort
	}
	return 0
}

// FiveTuple is the canonical flow identifier.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   IPProto
}

// Tuple extracts the packet's 5-tuple.
func (p *Packet) Tuple() FiveTuple {
	return FiveTuple{
		SrcIP:   p.IP.Src,
		DstIP:   p.IP.Dst,
		SrcPort: p.SrcPort(),
		DstPort: p.DstPort(),
		Proto:   p.IP.Proto,
	}
}

// String renders the tuple as "proto src:port->dst:port".
func (t FiveTuple) String() string {
	proto := "ip"
	switch t.Proto {
	case ProtoUDP:
		proto = "udp"
	case ProtoTCP:
		proto = "tcp"
	}
	return fmt.Sprintf("%s %s:%d->%s:%d",
		proto, addrFromU32(t.SrcIP), t.SrcPort, addrFromU32(t.DstIP), t.DstPort)
}

// Bytes serializes the tuple into the 13-byte key layout shared with the IR
// network functions: srcIP(4) dstIP(4) srcPort(2) dstPort(2) proto(1), all
// big-endian.
func (t FiveTuple) Bytes() [13]byte {
	var k [13]byte
	binary.BigEndian.PutUint32(k[0:], t.SrcIP)
	binary.BigEndian.PutUint32(k[4:], t.DstIP)
	binary.BigEndian.PutUint16(k[8:], t.SrcPort)
	binary.BigEndian.PutUint16(k[10:], t.DstPort)
	k[12] = byte(t.Proto)
	return k
}

// Reverse returns the tuple of the reply direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP:   t.DstIP,
		DstIP:   t.SrcIP,
		SrcPort: t.DstPort,
		DstPort: t.SrcPort,
		Proto:   t.Proto,
	}
}

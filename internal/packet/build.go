package packet

import (
	"encoding/binary"
)

// Spec describes a packet to synthesize. Zero values get sensible defaults
// from Build: a UDP packet of MinUDPFrameLen bytes with TTL 64.
type Spec struct {
	EthSrc, EthDst MAC
	Proto          IPProto // defaults to ProtoUDP
	SrcIP, DstIP   uint32
	SrcPort        uint16
	DstPort        uint16
	TTL            uint8 // defaults to 64
	PayloadLen     int   // L4 payload bytes, defaults to 18 (64B frame w/o FCS)
}

// MinUDPFrameLen is the length of a minimum-size UDP frame as built by
// Build with a zero PayloadLen: 14 (eth) + 20 (ip) + 8 (udp) + 18 payload
// + 4 FCS would be 64 on the wire; we do not materialize the FCS.
const MinUDPFrameLen = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + 18

// Build synthesizes a well-formed frame from the spec, computing the IPv4
// header checksum. The result always parses back via Parse.
func Build(s Spec) []byte {
	if s.Proto == 0 {
		s.Proto = ProtoUDP
	}
	if s.TTL == 0 {
		s.TTL = 64
	}
	if s.PayloadLen == 0 {
		s.PayloadLen = 18
	}
	l4hdr := UDPHeaderLen
	if s.Proto == ProtoTCP {
		l4hdr = TCPHeaderLen
	}
	ipLen := IPv4HeaderLen + l4hdr + s.PayloadLen
	raw := make([]byte, EthernetHeaderLen+ipLen)
	copy(raw[OffEtherDst:], s.EthDst[:])
	copy(raw[OffEtherSrc:], s.EthSrc[:])
	binary.BigEndian.PutUint16(raw[OffEtherType:], uint16(EtherTypeIPv4))
	raw[OffIPVerIHL] = 0x45
	binary.BigEndian.PutUint16(raw[OffIPTotLen:], uint16(ipLen))
	raw[OffIPTTL] = s.TTL
	raw[OffIPProto] = byte(s.Proto)
	binary.BigEndian.PutUint32(raw[OffIPSrc:], s.SrcIP)
	binary.BigEndian.PutUint32(raw[OffIPDst:], s.DstIP)
	binary.BigEndian.PutUint16(raw[OffL4SrcPort:], s.SrcPort)
	binary.BigEndian.PutUint16(raw[OffL4DstPort:], s.DstPort)
	switch s.Proto {
	case ProtoUDP:
		binary.BigEndian.PutUint16(raw[OffUDPLen:], uint16(UDPHeaderLen+s.PayloadLen))
	case ProtoTCP:
		raw[OffL4SrcPort+12] = 5 << 4 // data offset
		raw[OffL4SrcPort+13] = 0x10   // ACK
	}
	cks := IPv4Checksum(raw[OffIPVerIHL : OffIPVerIHL+IPv4HeaderLen])
	binary.BigEndian.PutUint16(raw[OffIPChecksum:], cks)
	return raw
}

// FromTuple builds a minimum-size frame carrying the given 5-tuple.
func FromTuple(t FiveTuple) []byte {
	return Build(Spec{
		Proto:   t.Proto,
		SrcIP:   t.SrcIP,
		DstIP:   t.DstIP,
		SrcPort: t.SrcPort,
		DstPort: t.DstPort,
	})
}

// IPv4Checksum computes the standard Internet checksum over an IPv4 header
// whose checksum field is zero (or whose current value should be ignored:
// the field at bytes 10-11 is treated as zero).
func IPv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the header's checksum field matches
// the checksum of its contents.
func VerifyIPv4Checksum(hdr []byte) bool {
	if len(hdr) < IPv4HeaderLen {
		return false
	}
	return binary.BigEndian.Uint16(hdr[10:]) == IPv4Checksum(hdr)
}

// Package stats provides the deterministic random number generation,
// Zipf sampling, and CDF/quantile machinery shared by the workload
// generators, the memory-hierarchy simulator, and the experiment harness.
// Everything is seeded explicitly so that all experiments reproduce
// bit-for-bit across runs.
package stats

// RNG is a splitmix64 pseudo-random generator. It is small, fast, has a
// full 2^64 period over its state, and — unlike math/rand's global state —
// is explicitly seeded everywhere so experiment outputs are reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split derives an independent generator; derivations from distinct calls
// on the same parent are themselves distinct streams.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Clone returns a copy that will produce the same stream as r from this
// point on. Used to fork deterministic simulations (e.g. memory-hierarchy
// probers) for parallel workers.
func (r *RNG) Clone() *RNG { c := *r; return &c }

// Skip advances the generator past the next n draws in O(1). splitmix64's
// state moves by a fixed increment per draw, so the shard of a sequential
// stream starting at draw n is NewRNG(seed).Skip(n) — the property the
// parallel fan-out layer uses to give each shard the exact values a
// sequential loop would have drawn.
func (r *RNG) Skip(n uint64) { r.state += n * 0x9e3779b97f4a7c15 }

package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
// It is the primary presentation format of the paper's evaluation
// (Figures 4-15 are all CDFs).
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples. It panics on an empty sample set,
// which always indicates a harness bug.
func NewCDF(samples []float64) *CDF {
	if len(samples) == 0 {
		panic("stats: empty CDF")
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the extreme samples.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Mean returns the arithmetic mean.
func (c *CDF) Mean() float64 {
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced in probability,
// suitable for plotting or textual rendering of the figure series.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, [2]float64{c.Quantile(q), q})
	}
	return pts
}

// Render draws an ASCII CDF plot of several named series on a shared x
// axis, emulating the paper's figures well enough for terminal inspection.
func Render(title, xlabel string, series map[string]*CDF, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range names {
		lo = math.Min(lo, series[n].Min())
		hi = math.Max(hi, series[n].Max())
	}
	if lo == hi {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "abcdefghijklmnopqrstuvwxyz"
	for si, n := range names {
		m := marks[si%len(marks)]
		cdf := series[n]
		for col := 0; col < width; col++ {
			x := lo + (hi-lo)*float64(col)/float64(width-1)
			p := cdf.At(x)
			row := height - 1 - int(p*float64(height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   %-12.4g%*.4g  (%s)\n", lo, width-12, hi, xlabel)
	for si, n := range names {
		fmt.Fprintf(&b, "   %c = %-24s median %.4g\n", marks[si%len(marks)], n, series[n].Median())
	}
	return b.String()
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 1..N with P(rank k) ∝ 1/k^s, via inverse-CDF lookup
// on a precomputed table. The paper's "Zipfian" workload uses s = 1.26,
// estimated from a university traffic capture.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i+1)
	rng *RNG
}

// NewZipf builds a sampler over n ranks with exponent s, drawing from rng.
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf needs n > 0, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("stats: zipf needs s > 0, got %g", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against FP round-off
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples a rank in [0, N) (rank 0 is the most popular).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank k (0-based).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

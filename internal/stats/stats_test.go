package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 42/43 collide too often: %d", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const buckets, n = 16, 100000
	var hist [buckets]int
	for i := 0; i < n; i++ {
		hist[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, h := range hist {
		if math.Abs(float64(h)-want) > want*0.1 {
			t.Errorf("bucket %d: %d, want ~%.0f", i, h, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(99)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("lost elements: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s1, s2 := r.Split(), r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestZipfValidation(t *testing.T) {
	r := NewRNG(1)
	if _, err := NewZipf(r, 0, 1.26); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(r, 10, 0); err == nil {
		t.Error("s=0 accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z, err := NewZipf(r, 1000, 1.26)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var hist [1000]int
	for i := 0; i < n; i++ {
		hist[z.Next()]++
	}
	// Rank 0 should dominate and the tail should be thin but present.
	if hist[0] < hist[1] {
		t.Errorf("rank0=%d < rank1=%d", hist[0], hist[1])
	}
	p0 := float64(hist[0]) / n
	if math.Abs(p0-z.Prob(0)) > 0.02 {
		t.Errorf("empirical P(0)=%.3f, analytic %.3f", p0, z.Prob(0))
	}
	// Probabilities sum to 1.
	sum := 0.0
	for k := 0; k < z.N(); k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestZipfMonotoneDecreasing(t *testing.T) {
	z, _ := NewZipf(NewRNG(1), 50, 1.26)
	for k := 1; k < 50; k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-12 {
			t.Errorf("P(%d)=%g > P(%d)=%g", k, z.Prob(k), k-1, z.Prob(k-1))
		}
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 5, 4})
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("range [%g,%g]", c.Min(), c.Max())
	}
	if c.Median() != 3 {
		t.Errorf("median = %g", c.Median())
	}
	if c.Mean() != 3 {
		t.Errorf("mean = %g", c.Mean())
	}
	if got := c.At(2.5); got != 0.4 {
		t.Errorf("At(2.5) = %g", got)
	}
	if got := c.At(5); got != 1 {
		t.Errorf("At(5) = %g", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %g", got)
	}
}

func TestCDFQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.Quantile(0) == c.Min() && c.Quantile(1) == c.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty CDF did not panic")
		}
	}()
	NewCDF(nil)
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[len(pts)-1][0] != 4 {
		t.Errorf("endpoints: %v", pts)
	}
}

func TestRenderContainsSeries(t *testing.T) {
	s := map[string]*CDF{
		"NOP":    NewCDF([]float64{1, 1, 1}),
		"CASTAN": NewCDF([]float64{5, 6, 7}),
	}
	out := Render("Latency", "ns", s, 40, 8)
	for _, want := range []string{"Latency", "NOP", "CASTAN", "ns"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

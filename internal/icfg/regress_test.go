package icfg_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"castan/internal/icfg"
	"castan/internal/nf"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPotentialGoldenSeedNFs pins the ICFG annotations — per-function
// summaries, per-block potentials and costs, and the loop-head sets — for
// every seed NF at M=2 and M=8 against a golden file generated before
// findLoopHeads was replaced by the dominator-based natural-loop forest.
// Any drift here would silently redirect CASTAN's directed search.
func TestPotentialGoldenSeedNFs(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, m := range []int{2, 8} {
			a, err := icfg.Analyze(inst.Mod, m, icfg.DefaultCostModel())
			if err != nil {
				t.Fatalf("%s M=%d: %v", name, m, err)
			}
			fnames := make([]string, 0, len(inst.Mod.Funcs))
			for fn := range inst.Mod.Funcs {
				fnames = append(fnames, fn)
			}
			sort.Strings(fnames)
			for _, fn := range fnames {
				f := inst.Mod.Funcs[fn]
				fmt.Fprintf(&buf, "%s/M=%d/%s: summary=%d\n", name, m, fn, a.Summary(f))
				for _, b := range f.Blocks {
					fmt.Fprintf(&buf, "  %s: pot=%d cost=%d head=%v\n",
						b.Name, a.Potential(b, 0), a.BlockCost(b), a.IsLoopHead(b))
				}
			}
		}
	}

	golden := filepath.Join("testdata", "potentials.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("ICFG annotations drifted from the pre-swap golden.\n"+
			"Diff the output of `go test ./internal/icfg -run Golden -update` to inspect.\n"+
			"got %d bytes, want %d bytes", buf.Len(), len(want))
	}
}

package icfg

import (
	"testing"

	"castan/internal/ir"
)

func mustAnalyze(t *testing.T, m *ir.Module, M int) *Analysis {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(m, M, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestInstrCosts(t *testing.T) {
	cm := DefaultCostModel()
	if cm.InstrCost(&ir.Instr{Op: ir.OpBin, Bin: ir.Mul}) <= cm.InstrCost(&ir.Instr{Op: ir.OpBin, Bin: ir.Add}) {
		t.Error("mul should cost more than add")
	}
	if cm.InstrCost(&ir.Instr{Op: ir.OpBin, Bin: ir.UDiv}) <= cm.InstrCost(&ir.Instr{Op: ir.OpBin, Bin: ir.Mul}) {
		t.Error("div should cost more than mul")
	}
	if cm.InstrCost(&ir.Instr{Op: ir.OpLoad}) != cm.MemL1 {
		t.Error("load cost should be MemL1")
	}
}

func TestStraightLineSummary(t *testing.T) {
	m := ir.NewModule("s")
	m.Layout()
	fb := m.NewFunc("f", 1)
	x := fb.Param(0)
	y := fb.AddImm(x, 1) // const + add
	fb.Ret(y)
	fb.Seal()
	a := mustAnalyze(t, m, 2)
	cm := DefaultCostModel()
	want := cm.Mov + cm.Arith + cm.Call // const, add, ret
	if got := a.Summary(m.Funcs["f"]); got != want {
		t.Errorf("summary = %d, want %d", got, want)
	}
}

func TestBranchTakesMax(t *testing.T) {
	m := ir.NewModule("b")
	m.Layout()
	fb := m.NewFunc("f", 1)
	x := fb.Param(0)
	out := fb.VarImm(0)
	fb.If(fb.CmpEqImm(x, 0),
		func() { out.Set(fb.AddImm(x, 1)) }, // cheap arm
		func() {
			// expensive arm: several multiplications
			v := fb.MulImm(x, 3)
			v = fb.MulImm(v, 5)
			v = fb.MulImm(v, 7)
			out.Set(v)
		})
	fb.Ret(out.R())
	fb.Seal()
	a := mustAnalyze(t, m, 2)
	f := m.Funcs["f"]
	// The summary must reflect the expensive arm: at least 3 muls.
	if a.Summary(f) < 3*DefaultCostModel().Mul {
		t.Errorf("summary %d ignores expensive arm", a.Summary(f))
	}
	// Potential at function entry equals the summary.
	if a.Potential(f.Entry(), 0) < a.Summary(f) {
		t.Errorf("entry potential %d < summary %d", a.Potential(f.Entry(), 0), a.Summary(f))
	}
}

func TestLoopBoundedByM(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("l")
		m.Layout()
		fb := m.NewFunc("f", 1)
		n := fb.Param(0)
		i := fb.VarImm(0)
		acc := fb.VarImm(0)
		fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), n) }, func() {
			acc.Set(fb.Add(acc.R(), fb.MulImm(i.R(), 3)))
			i.Set(fb.AddImm(i.R(), 1))
		})
		fb.Ret(acc.R())
		fb.Seal()
		return m
	}
	m2 := build()
	a2 := mustAnalyze(t, m2, 2)
	m3 := build()
	a3 := mustAnalyze(t, m3, 3)
	s2 := a2.Summary(m2.Funcs["f"])
	s3 := a3.Summary(m3.Funcs["f"])
	if s2 == 0 || s3 == 0 {
		t.Fatal("zero summaries")
	}
	if s3 <= s2 {
		t.Errorf("M=3 summary %d should exceed M=2 summary %d (one more loop round)", s3, s2)
	}
	// Loop head detected.
	f := m2.Funcs["f"]
	heads := 0
	for _, b := range f.Blocks {
		if a2.IsLoopHead(b) {
			heads++
		}
	}
	if heads != 1 {
		t.Errorf("loop heads = %d, want 1", heads)
	}
}

func TestCalleeSummaryEmbedded(t *testing.T) {
	m := ir.NewModule("c")
	m.Layout()
	hb := m.NewFunc("helper", 1)
	x := hb.Param(0)
	v := hb.MulImm(x, 3)
	v = hb.MulImm(v, 5)
	hb.Ret(v)
	hb.Seal()
	cb := m.NewFunc("caller", 1)
	cb.Ret(cb.Call(hb.Func(), cb.Param(0)))
	cb.Seal()
	a := mustAnalyze(t, m, 2)
	if a.Summary(m.Funcs["caller"]) <= a.Summary(m.Funcs["helper"]) {
		t.Errorf("caller summary %d should exceed helper summary %d",
			a.Summary(m.Funcs["caller"]), a.Summary(m.Funcs["helper"]))
	}
}

func TestPotentialDecreasesAlongBlock(t *testing.T) {
	m := ir.NewModule("p")
	m.Layout()
	fb := m.NewFunc("f", 1)
	x := fb.Param(0)
	v := fb.MulImm(x, 3)
	v = fb.MulImm(v, 5)
	v = fb.MulImm(v, 7)
	fb.Ret(v)
	fb.Seal()
	a := mustAnalyze(t, m, 2)
	f := m.Funcs["f"]
	entry := f.Entry()
	prev := a.Potential(entry, 0)
	for pc := 1; pc < len(entry.Instrs); pc++ {
		cur := a.Potential(entry, pc)
		if cur > prev {
			t.Errorf("potential increased along straight line at pc %d: %d > %d", pc, cur, prev)
		}
		prev = cur
	}
	if a.Potential(entry, len(entry.Instrs)+5) != a.Potential(entry, len(entry.Instrs)) {
		t.Error("out-of-range pc not clamped")
	}
}

func TestAnalyzeRejectsBadM(t *testing.T) {
	m := ir.NewModule("x")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	fb.Seal()
	if _, err := Analyze(m, 0, DefaultCostModel()); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestUnknownFuncQueries(t *testing.T) {
	m := ir.NewModule("k")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	fb.Seal()
	a := mustAnalyze(t, m, 2)
	other := ir.NewModule("o")
	other.Layout()
	ob := other.NewFunc("g", 0)
	ob.RetImm(0)
	g := ob.Seal()
	if a.Summary(g) != 0 || a.BlockCost(g.Entry()) != 0 || a.Potential(g.Entry(), 0) != 0 {
		t.Error("foreign function queries should return 0")
	}
	if a.IsLoopHead(g.Entry()) {
		t.Error("foreign block is not a loop head")
	}
}

func TestHavocAndAllocCosts(t *testing.T) {
	cm := DefaultCostModel()
	if cm.InstrCost(&ir.Instr{Op: ir.OpHavoc}) != cm.Havoc {
		t.Error("havoc cost")
	}
	if cm.InstrCost(&ir.Instr{Op: ir.OpAlloc}) != cm.Alloc {
		t.Error("alloc cost")
	}
	if cm.InstrCost(&ir.Instr{Op: ir.OpCall}) != cm.Call {
		t.Error("call cost")
	}
}

func TestPotentialReflectsLoopBody(t *testing.T) {
	// Potential at a loop head must grow with M (more assumed rounds).
	build := func() (*ir.Module, *ir.Func) {
		m := ir.NewModule("p2")
		m.Layout()
		fb := m.NewFunc("f", 1)
		n := fb.Param(0)
		i := fb.VarImm(0)
		fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), n) }, func() {
			i.Set(fb.AddImm(i.R(), 1))
		})
		fb.Ret(i.R())
		f := fb.Seal()
		return m, f
	}
	m2, f2 := build()
	a2 := mustAnalyze(t, m2, 2)
	m8, f8 := build()
	a8 := mustAnalyze(t, m8, 8)
	var head2, head8 *ir.Block
	for _, b := range f2.Blocks {
		if a2.IsLoopHead(b) {
			head2 = b
		}
	}
	for _, b := range f8.Blocks {
		if a8.IsLoopHead(b) {
			head8 = b
		}
	}
	if head2 == nil || head8 == nil {
		t.Fatal("no loop heads found")
	}
	if a8.Potential(head8, 0) <= a2.Potential(head2, 0) {
		t.Errorf("M=8 head potential %d not above M=2 %d",
			a8.Potential(head8, 0), a2.Potential(head2, 0))
	}
	_ = m2
	_ = m8
}

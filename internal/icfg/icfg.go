// Package icfg implements the pre-processing stage of CASTAN's directed
// search (§3.4): it extracts the interprocedural control-flow graph of an
// IR module, assigns each instruction a local cycle cost (assuming all
// memory accesses hit L1), and annotates every program point with a
// "potential cost" — an estimate of the maximum cycles from that point to
// the return of its function.
//
// Loops make the longest-path problem ill-defined, so, following the
// paper, a path-vector propagation bounds each block to at most M
// occurrences per path (M=2 by default: every loop is assumed to run
// exactly M-1 = 1 time during estimation). Call sites embed callee
// summaries; the call graph is acyclic by IR validation, so summaries are
// computed bottom-up.
package icfg

import (
	"fmt"

	"castan/internal/analysis"
	"castan/internal/ir"
)

// CostModel assigns cycle estimates to instructions. The same model is
// used by the testbed's cycle accounting so that CASTAN's cost heuristic
// and the measured cycles are commensurable.
type CostModel struct {
	Arith  uint64 // add/sub/logic/shift
	Mul    uint64
	Div    uint64 // udiv/urem
	Cmp    uint64
	Mov    uint64
	Branch uint64
	Call   uint64 // call+ret bookkeeping, added at the call site
	Alloc  uint64
	Havoc  uint64 // cost of computing the (havoced) hash itself
	MemL1  uint64 // load/store when it hits L1 — the optimistic assumption
	// MemDRAM is the full load/store latency when the access goes to
	// DRAM; MemDRAM-MemL1 is the miss penalty consumers (symbex, the
	// cachecost bounds) add on top of InstrCost's MemL1 pricing.
	MemDRAM uint64
}

// DefaultCostModel mirrors rough Ivy Bridge latencies.
func DefaultCostModel() CostModel {
	return CostModel{
		Arith:   1,
		Mul:     3,
		Div:     21,
		Cmp:     1,
		Mov:     1,
		Branch:  2,
		Call:    4,
		Alloc:   8,
		Havoc:   28,
		MemL1:   4,
		MemDRAM: 210,
	}
}

// InstrCost returns the local cost of an instruction, excluding callee
// bodies (see Analysis.BlockCost for the call-inclusive version).
func (c CostModel) InstrCost(in *ir.Instr) uint64 {
	switch in.Op {
	case ir.OpConst, ir.OpMov:
		return c.Mov
	case ir.OpBin:
		switch in.Bin {
		case ir.Mul:
			return c.Mul
		case ir.UDiv, ir.URem:
			return c.Div
		default:
			return c.Arith
		}
	case ir.OpCmp, ir.OpSelect:
		return c.Cmp
	case ir.OpLoad, ir.OpStore:
		return c.MemL1
	case ir.OpBr, ir.OpCondBr:
		return c.Branch
	case ir.OpCall, ir.OpRet:
		return c.Call
	case ir.OpAlloc:
		return c.Alloc
	case ir.OpHavoc:
		return c.Havoc
	}
	return 1
}

// Analysis is the annotated ICFG of a module.
type Analysis struct {
	M    int
	Cost CostModel

	fns map[*ir.Func]*funcInfo
}

type funcInfo struct {
	summary   uint64               // max cost entry→return
	blockCost map[*ir.Block]uint64 // includes callee summaries at call sites
	potential map[*ir.Block]uint64 // max cost from block start → return
	loopHead  map[*ir.Block]bool
	suffix    map[*ir.Block][]uint64 // suffix[i] = cost of instrs i..end
	facts     *analysis.Facts
}

// Analyze builds the annotated ICFG. M must be at least 1; the module must
// validate (in particular: acyclic call graph).
func Analyze(mod *ir.Module, m int, cost CostModel) (*Analysis, error) {
	if m < 1 {
		return nil, fmt.Errorf("icfg: M must be >= 1, got %d", m)
	}
	a := &Analysis{M: m, Cost: cost, fns: map[*ir.Func]*funcInfo{}}
	// Bottom-up over the call graph: process a function after its callees.
	done := map[*ir.Func]bool{}
	var process func(f *ir.Func) error
	process = func(f *ir.Func) error {
		if done[f] {
			return nil
		}
		done[f] = true // call graph is acyclic, so no cycle hazard
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					if err := process(in.Callee); err != nil {
						return err
					}
				}
			}
		}
		a.fns[f] = a.analyzeFunc(f)
		return nil
	}
	for _, f := range mod.Funcs {
		if err := process(f); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func (a *Analysis) analyzeFunc(f *ir.Func) *funcInfo {
	fi := &funcInfo{
		blockCost: map[*ir.Block]uint64{},
		potential: map[*ir.Block]uint64{},
		loopHead:  map[*ir.Block]bool{},
		suffix:    map[*ir.Block][]uint64{},
	}
	for _, b := range f.Blocks {
		var total uint64
		suf := make([]uint64, len(b.Instrs)+1)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			c := a.Cost.InstrCost(in)
			if in.Op == ir.OpCall {
				c += a.fns[in.Callee].summary
			}
			suf[i] = suf[i+1] + c
		}
		total = suf[0]
		fi.blockCost[b] = total
		fi.suffix[b] = suf
	}
	// Loop heads come from the shared dominator-based natural-loop forest.
	// On the reducible CFGs the builder emits, natural-loop headers are
	// exactly the back-edge targets a DFS would gray-mark, so this is a
	// drop-in replacement (pinned by the regression test against the
	// pre-swap goldens).
	fi.facts = analysis.ForFunc(f)
	for _, h := range fi.facts.Loops.Headers() {
		fi.loopHead[h] = true
	}
	a.propagate(f, fi)
	fi.summary = fi.potential[f.Entry()]
	return fi
}

// propagate runs the path-vector longest-path estimation: each block keeps
// its single best (cost, path) to a return, and a block may appear at most
// M times in a path.
func (a *Analysis) propagate(f *ir.Func, fi *funcInfo) {
	type pvEntry struct {
		cost uint64
		path []int32 // block indices, most recent first
	}
	pv := make([]*pvEntry, len(f.Blocks))
	preds := make([][]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	var work []*ir.Block
	inWork := make([]bool, len(f.Blocks))
	push := func(b *ir.Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			pv[b.Index] = &pvEntry{cost: fi.blockCost[b], path: []int32{int32(b.Index)}}
			for _, p := range preds[b.Index] {
				push(p)
			}
		}
	}
	countIn := func(path []int32, idx int32) int {
		n := 0
		for _, p := range path {
			if p == idx {
				n++
			}
		}
		return n
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b.Index] = false
		var best *pvEntry
		for _, s := range b.Succs() {
			sp := pv[s.Index]
			if sp == nil {
				continue
			}
			if countIn(sp.path, int32(b.Index)) >= a.M {
				continue
			}
			cand := fi.blockCost[b] + sp.cost
			if best == nil || cand > best.cost {
				path := make([]int32, 0, len(sp.path)+1)
				path = append(path, int32(b.Index))
				path = append(path, sp.path...)
				best = &pvEntry{cost: cand, path: path}
			}
		}
		if best != nil && (pv[b.Index] == nil || best.cost > pv[b.Index].cost) {
			pv[b.Index] = best
			for _, p := range preds[b.Index] {
				push(p)
			}
		}
	}
	for _, b := range f.Blocks {
		if pv[b.Index] != nil {
			fi.potential[b] = pv[b.Index].cost
		} else {
			// Unreachable-to-return block (e.g. infinite loop): fall back
			// to its own cost.
			fi.potential[b] = fi.blockCost[b]
		}
	}
}

// Summary returns the function's max estimated cost entry→return.
func (a *Analysis) Summary(f *ir.Func) uint64 {
	fi := a.fns[f]
	if fi == nil {
		return 0
	}
	return fi.summary
}

// BlockCost returns the block's local cost (callee summaries included).
func (a *Analysis) BlockCost(b *ir.Block) uint64 {
	fi := a.fns[b.Fn]
	if fi == nil {
		return 0
	}
	return fi.blockCost[b]
}

// Potential returns the estimated maximum cost from instruction pc of
// block b through the function's return: the remaining cost of b plus the
// best successor potential (bounded by the path-vector estimate).
func (a *Analysis) Potential(b *ir.Block, pc int) uint64 {
	fi := a.fns[b.Fn]
	if fi == nil {
		return 0
	}
	if pc < 0 {
		pc = 0
	}
	suf := fi.suffix[b]
	if pc >= len(suf) {
		pc = len(suf) - 1
	}
	rest := suf[pc]
	var succBest uint64
	for _, s := range b.Succs() {
		if p := fi.potential[s]; p > succBest {
			succBest = p
		}
	}
	return rest + succBest
}

// IsLoopHead reports whether b heads a natural loop (equivalently, on the
// reducible CFGs the builder emits: whether b is the target of a back
// edge).
func (a *Analysis) IsLoopHead(b *ir.Block) bool {
	fi := a.fns[b.Fn]
	return fi != nil && fi.loopHead[b]
}

// LoopDepth returns b's loop nesting depth (0 = not in any loop), from
// the underlying natural-loop forest.
func (a *Analysis) LoopDepth(b *ir.Block) int {
	fi := a.fns[b.Fn]
	if fi == nil {
		return 0
	}
	return fi.facts.Loops.Depth(b)
}

// Facts exposes the function's CFG/dataflow facts computed during the
// ICFG build, so downstream consumers share one analysis.
func (a *Analysis) Facts(f *ir.Func) *analysis.Facts {
	fi := a.fns[f]
	if fi == nil {
		return nil
	}
	return fi.facts
}

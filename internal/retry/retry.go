// Package retry is the deterministic exponential-backoff layer shared by
// the castand worker supervisor and the castanload client. Like every
// timing-adjacent piece of this repo it obeys the determinism rule
// (DESIGN.md decision 6): the backoff schedule is a pure function of the
// policy and its seed — jitter comes from a seeded splitmix64 stream
// keyed by the attempt index, never from the global RNG or the clock —
// so a supervisor restart storm replays identically in tests, and the
// exact schedule can be pinned under an obs.FakeClock.
//
// Sleeping and time are both injectable: Policy.Sleep replaces the
// timer-based wait (tests record the schedule instead of waiting), and
// Policy.Clock drives the optional overall retry deadline (an
// obs.FakeClock makes deadline cuts byte-reproducible, the same trick
// budget.Meter.SetDeadline uses).
package retry

import (
	"context"
	"errors"
	"time"

	"castan/internal/obs"
	"castan/internal/parallel"
)

// Policy describes one backoff schedule. The zero value is usable:
// 10ms base, 1s cap, factor 2, no jitter, 3 attempts.
type Policy struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps every delay (default 1s).
	Max time.Duration
	// Factor is the per-attempt multiplier (default 2).
	Factor float64
	// Jitter in [0,1] spreads each delay down into
	// [(1-Jitter)·d, d], drawn from the seeded stream (default 0:
	// fully deterministic schedule even across seeds).
	Jitter float64
	// Seed keys the jitter stream. Two policies with equal fields
	// produce identical schedules; distinct seeds decorrelate them.
	Seed uint64
	// Attempts bounds how many times Do invokes fn (default 3;
	// negative or 0 selects the default, use DoForever for unbounded).
	Attempts int
	// Deadline, when positive, bounds the whole Do call measured on
	// Clock: once the clock has advanced Deadline past the first
	// attempt, no further retries are scheduled. Unlike Attempts it
	// depends on time, so tests drive it with an obs.FakeClock.
	Deadline time.Duration
	// Clock measures Deadline (nil = wall clock).
	Clock obs.Clock
	// Sleep replaces the wait between attempts (nil = a real
	// context-aware timer). Tests inject a recorder to pin schedules.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) fill() Policy {
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	return p
}

// Delay returns the wait after attempt (0-based), deterministically:
// min(Base·Factor^attempt, Max), jittered down by at most Jitter·delay
// with a splitmix64 draw keyed on (Seed, attempt). Pure in its inputs.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.fill()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// ShardSeed is the repo's standard per-index stream splitter;
		// the top 53 bits make an unbiased [0,1) fraction.
		u := float64(parallel.ShardSeed(p.Seed, attempt)>>11) / float64(1<<53)
		d *= 1 - j*u
	}
	return time.Duration(d)
}

// stop wraps an error fn wants to surface without further retries.
type stop struct{ err error }

func (s stop) Error() string { return s.err.Error() }
func (s stop) Unwrap() error { return s.err }

// Stop marks err as permanent: Do returns it immediately (unwrapped)
// instead of scheduling another attempt. Use it for client errors a
// retry cannot fix (4xx responses, validation failures).
func Stop(err error) error {
	if err == nil {
		return nil
	}
	return stop{err}
}

// Do runs fn until it returns nil, a Stop-wrapped error, the attempt
// budget or deadline runs out, or ctx is done. Between attempts it
// waits Delay(attempt) via the policy's sleeper. The returned error is
// fn's last error (unwrapped for Stop), or ctx's error when the wait
// was interrupted.
func Do(ctx context.Context, p Policy, fn func(attempt int) error) error {
	p = p.fill()
	return run(ctx, p, p.Attempts, fn)
}

// DoForever is Do without an attempt bound: it retries until fn
// succeeds, Stop, Deadline, or ctx cancellation. A Policy with neither
// Deadline nor a cancellable ctx will retry forever — that is the
// supervisor's contract (a worker fleet must never give up), so the
// name carries the warning.
func DoForever(ctx context.Context, p Policy, fn func(attempt int) error) error {
	p = p.fill()
	return run(ctx, p, 0, fn)
}

func run(ctx context.Context, p Policy, attempts int, fn func(attempt int) error) error {
	clock := p.Clock
	if clock == nil {
		clock = obs.NewWallClock()
	}
	var deadlineAt uint64
	if p.Deadline > 0 {
		deadlineAt = clock.Now() + uint64(p.Deadline)
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 0; ; attempt++ {
		if e := ctx.Err(); e != nil {
			if err != nil {
				return err
			}
			return e
		}
		err = fn(attempt)
		if err == nil {
			return nil
		}
		var st stop
		if errors.As(err, &st) {
			return st.err
		}
		if attempts > 0 && attempt+1 >= attempts {
			return err
		}
		if deadlineAt > 0 && clock.Now() >= deadlineAt {
			return err
		}
		if e := sleep(ctx, p.Delay(attempt)); e != nil {
			// Interrupted wait: the caller's context wins, but the
			// last real failure is more useful than "canceled".
			return err
		}
	}
}

// sleepCtx is the real timer-based wait, interruptible by ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"castan/internal/obs"
)

// recordingSleep collects every scheduled delay without waiting.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestDelaySchedule(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		160 * time.Millisecond,
		160 * time.Millisecond, // capped
		160 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayJitterDeterministic(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 42}
	// The jittered schedule is a pure function of (policy, seed): two
	// evaluations agree exactly, and every delay stays within
	// [(1-Jitter)·d, d] of the unjittered curve.
	plain := Policy{Base: p.Base, Max: p.Max, Factor: p.Factor}
	for i := 0; i < 8; i++ {
		a, b := p.Delay(i), p.Delay(i)
		if a != b {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", i, a, b)
		}
		full := plain.Delay(i)
		if a > full || a < time.Duration(float64(full)*0.5) {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", i, a, full/2, full)
		}
	}
	// A different seed must move at least one delay (decorrelation).
	q := p
	q.Seed = 43
	same := true
	for i := 0; i < 8; i++ {
		if p.Delay(i) != q.Delay(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jittered schedules")
	}
}

// TestDoPinnedSchedule pins the exact schedule Do executes: which
// attempts run, and which delays are slept, all without real waiting.
func TestDoPinnedSchedule(t *testing.T) {
	var delays []time.Duration
	var attempts []int
	p := Policy{
		Base: 5 * time.Millisecond, Max: 40 * time.Millisecond, Factor: 2,
		Attempts: 5, Sleep: recordingSleep(&delays),
	}
	err := Do(context.Background(), p, func(a int) error {
		attempts = append(attempts, a)
		return fmt.Errorf("attempt %d failed", a)
	})
	if err == nil || err.Error() != "attempt 4 failed" {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
	if want := []int{0, 1, 2, 3, 4}; fmt.Sprint(attempts) != fmt.Sprint(want) {
		t.Errorf("attempts = %v, want %v", attempts, want)
	}
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 40 * time.Millisecond,
	}
	if fmt.Sprint(delays) != fmt.Sprint(want) {
		t.Errorf("slept %v, want %v", delays, want)
	}
}

func TestDoSucceedsMidway(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := Policy{Attempts: 10, Sleep: recordingSleep(&delays)}
	err := Do(context.Background(), p, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 || len(delays) != 2 {
		t.Errorf("calls=%d delays=%d, want 3 calls and 2 sleeps", calls, len(delays))
	}
}

func TestStopShortCircuits(t *testing.T) {
	var delays []time.Duration
	perm := errors.New("permanent")
	calls := 0
	p := Policy{Attempts: 10, Sleep: recordingSleep(&delays)}
	err := Do(context.Background(), p, func(int) error {
		calls++
		return Stop(perm)
	})
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the permanent error unwrapped", err)
	}
	if calls != 1 || len(delays) != 0 {
		t.Errorf("calls=%d delays=%d, want exactly one attempt and no sleep", calls, len(delays))
	}
	if Stop(nil) != nil {
		t.Error("Stop(nil) should stay nil")
	}
}

// TestDeadlineUnderFakeClock pins the deadline cut byte-reproducibly: a
// FakeClock advancing 1ms per reading means the deadline check itself
// consumes the budget, so the attempt count is an exact function of the
// policy — no wall clock anywhere.
func TestDeadlineUnderFakeClock(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := Policy{
		Deadline: 5 * time.Millisecond,
		Clock:    obs.NewFakeClock(uint64(time.Millisecond)),
		Sleep:    recordingSleep(&delays),
	}
	err := DoForever(context.Background(), p, func(int) error {
		calls++
		return errors.New("always failing")
	})
	if err == nil {
		t.Fatal("expected the final attempt's error")
	}
	// Reading 1 arms the deadline at 1ms+5ms = 6ms; each retry check
	// reads the clock once, so attempts stop when the reading count
	// crosses 6: exactly 5 attempts, 4 sleeps.
	if calls != 5 {
		t.Errorf("calls = %d, want exactly 5 under the fake clock", calls)
	}
	if len(delays) != calls-1 {
		t.Errorf("sleeps = %d, want %d", len(delays), calls-1)
	}
	// Replaying the identical policy reproduces the identical schedule.
	var delays2 []time.Duration
	calls2 := 0
	p2 := p
	p2.Clock = obs.NewFakeClock(uint64(time.Millisecond))
	p2.Sleep = recordingSleep(&delays2)
	_ = DoForever(context.Background(), p2, func(int) error {
		calls2++
		return errors.New("always failing")
	})
	if calls2 != calls || fmt.Sprint(delays2) != fmt.Sprint(delays) {
		t.Errorf("replay diverged: calls %d vs %d, delays %v vs %v", calls2, calls, delays2, delays)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	boom := errors.New("boom")
	p := Policy{Attempts: 100, Sleep: func(c context.Context, _ time.Duration) error {
		cancel()
		return c.Err()
	}}
	err := Do(ctx, p, func(int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the last real failure", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (canceled during the first sleep)", calls)
	}
	// A context canceled before the first attempt surfaces ctx.Err().
	err = Do(ctx, Policy{}, func(int) error { calls++; return boom })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled Do = %v, want context.Canceled", err)
	}
}

func TestRealSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := Do(ctx, Policy{Base: 10 * time.Second, Attempts: 2}, func(int) error {
		return errors.New("fail")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("canceled sleep still waited %v", elapsed)
	}
}

// Package nfhash provides the hash functions the evaluated network
// functions use to index their flow tables, plus the key-space definitions
// shared with the rainbow-table inverter (internal/rainbow).
//
// Like the hashes in real NF code, these are fast mixing functions, not
// cryptographic: CASTAN's premise (§3.5) is exactly that such hashes can
// be reversed offline with precomputed tables even though symbolically
// executing them would drown the solver.
package nfhash

import "encoding/binary"

// TableHash indexes separate-chaining hash tables. It is a 64-bit
// multiply-xor mix over the key (murmur-style finalization), truncated by
// callers to the table's bit width.
func TableHash(key []byte) uint64 {
	h := uint64(0x9368e53c2f6af274)
	for len(key) >= 8 {
		k := binary.BigEndian.Uint64(key)
		h ^= mix64(k)
		h = h*0x100000001b3 + 0x27d4eb2f165667c5
		key = key[8:]
	}
	var tail uint64
	for _, b := range key {
		tail = tail<<8 | uint64(b)
	}
	h ^= mix64(tail + uint64(len(key)))
	return mix64(h)
}

// RingHash indexes the open-addressing hash ring. A different constant
// family keeps it independent from TableHash.
func RingHash(key []byte) uint64 {
	h := uint64(0xc2b2ae3d27d4eb4f)
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x00000100000001b3
	}
	return mix64(h ^ h>>17)
}

func mix64(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Masked wraps a hash function, truncating its output to bits.
func Masked(fn func([]byte) uint64, bits int) func([]byte) uint64 {
	mask := uint64(1)<<uint(bits) - 1
	if bits >= 64 {
		mask = ^uint64(0)
	}
	return func(key []byte) uint64 { return fn(key) & mask }
}

// KeySpace enumerates a structured subset of an NF's key space. Rainbow
// reduction functions map hash values back into the key space through
// FromSeed, which is why a *tailored* space (matching the packet
// constraints, e.g. "UDP only, this destination") makes inversion succeed
// where a generic space would reject almost every candidate (§3.5).
type KeySpace interface {
	// KeyLen is the byte length of produced keys.
	KeyLen() int
	// FromSeed derives a key deterministically from a 64-bit seed.
	// Distinct seeds should produce well-spread keys.
	FromSeed(seed uint64) []byte
}

// FlowKeyLen is the canonical 13-byte 5-tuple key layout:
// srcIP(4) dstIP(4) srcPort(2) dstPort(2) proto(1).
const FlowKeyLen = 13

// UDPFlowSpace is the tailored key space of §3.5's evaluation: UDP flows
// toward one fixed destination (the NAT's external interface or the LB's
// VIP), with the source address confined to a /16 and free source port —
// 32 free bits total.
type UDPFlowSpace struct {
	// SrcNet is the upper 16 bits of permissible source IPs, e.g. 0x0a00
	// for 10.0.0.0/16.
	SrcNet uint16
	// DstIP and DstPort pin the destination.
	DstIP   uint32
	DstPort uint16
}

// KeyLen implements KeySpace.
func (s UDPFlowSpace) KeyLen() int { return FlowKeyLen }

// FromSeed implements KeySpace: bits 0-15 become the low source IP bytes,
// bits 16-31 the source port.
func (s UDPFlowSpace) FromSeed(seed uint64) []byte {
	k := make([]byte, FlowKeyLen)
	srcIP := uint32(s.SrcNet)<<16 | uint32(seed&0xffff)
	srcPort := uint16(seed >> 16)
	binary.BigEndian.PutUint32(k[0:], srcIP)
	binary.BigEndian.PutUint32(k[4:], s.DstIP)
	binary.BigEndian.PutUint16(k[8:], srcPort)
	binary.BigEndian.PutUint16(k[10:], s.DstPort)
	k[12] = 17 // UDP
	return k
}

// RawSpace is a generic fixed-length byte key space for tests: keys are
// the seed's big-endian bytes, zero-padded or truncated to Len.
type RawSpace struct{ Len int }

// KeyLen implements KeySpace.
func (s RawSpace) KeyLen() int { return s.Len }

// FromSeed implements KeySpace: the seed's big-endian bytes, right-aligned
// in the key.
func (s RawSpace) FromSeed(seed uint64) []byte {
	k := make([]byte, s.Len)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	if s.Len >= 8 {
		copy(k[s.Len-8:], buf[:])
	} else {
		copy(k, buf[8-s.Len:])
	}
	return k
}

package nfhash

import (
	"testing"
	"testing/quick"
)

func TestHashesDeterministicAndDistinct(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	if TableHash(key) != TableHash(key) {
		t.Error("TableHash not deterministic")
	}
	if RingHash(key) != RingHash(key) {
		t.Error("RingHash not deterministic")
	}
	if TableHash(key) == RingHash(key) {
		t.Error("hash families should differ")
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one key bit should change many output bits on average.
	base := make([]byte, FlowKeyLen)
	h0 := TableHash(base)
	totalFlips := 0
	n := 0
	for byteIdx := 0; byteIdx < FlowKeyLen; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			k := make([]byte, FlowKeyLen)
			k[byteIdx] ^= 1 << uint(bit)
			d := h0 ^ TableHash(k)
			for ; d != 0; d &= d - 1 {
				totalFlips++
			}
			n++
		}
	}
	avg := float64(totalFlips) / float64(n)
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %.1f bits, want ~32", avg)
	}
}

func TestHashBucketUniformity(t *testing.T) {
	const buckets = 64
	var hist [buckets]int
	s := UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0xc0a80101, DstPort: 80}
	for i := uint64(0); i < 32768; i++ {
		h := TableHash(s.FromSeed(i))
		hist[h%buckets]++
	}
	want := 32768.0 / buckets
	for b, c := range hist {
		if float64(c) < want*0.7 || float64(c) > want*1.3 {
			t.Errorf("bucket %d count %d, want ~%.0f", b, c, want)
		}
	}
}

func TestMasked(t *testing.T) {
	m := Masked(TableHash, 16)
	f := func(seed uint64) bool {
		k := (RawSpace{Len: 8}).FromSeed(seed)
		v := m(k)
		return v < 1<<16 && v == TableHash(k)&0xffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	id := Masked(TableHash, 64)
	k := []byte{9, 9, 9}
	if id(k) != TableHash(k) {
		t.Error("64-bit mask should be identity")
	}
}

func TestUDPFlowSpaceLayout(t *testing.T) {
	s := UDPFlowSpace{SrcNet: 0x0a01, DstIP: 0xc0a80117, DstPort: 443}
	k := s.FromSeed(0x12345678)
	if len(k) != FlowKeyLen {
		t.Fatalf("key len %d", len(k))
	}
	// Source IP: 0x0a01 net + low seed bits 0x5678.
	if k[0] != 0x0a || k[1] != 0x01 || k[2] != 0x56 || k[3] != 0x78 {
		t.Errorf("src ip bytes = %v", k[:4])
	}
	// Destination pinned.
	if k[4] != 0xc0 || k[5] != 0xa8 || k[6] != 0x01 || k[7] != 0x17 {
		t.Errorf("dst ip bytes = %v", k[4:8])
	}
	// Source port from seed bits 16-31: 0x1234.
	if k[8] != 0x12 || k[9] != 0x34 {
		t.Errorf("src port bytes = %v", k[8:10])
	}
	if k[10] != 0x01 || k[11] != 0xbb {
		t.Errorf("dst port bytes = %v", k[10:12])
	}
	if k[12] != 17 {
		t.Errorf("proto = %d", k[12])
	}
}

func TestUDPFlowSpaceSeedInjective(t *testing.T) {
	s := UDPFlowSpace{SrcNet: 1, DstIP: 2, DstPort: 3}
	seen := map[string]bool{}
	for i := uint64(0); i < 10000; i++ {
		k := string(s.FromSeed(i))
		if seen[k] {
			t.Fatalf("seed %d collides", i)
		}
		seen[k] = true
	}
}

func TestRawSpace(t *testing.T) {
	s := RawSpace{Len: 4}
	k := s.FromSeed(0xdeadbeef)
	if len(k) != 4 || k[0] != 0xde || k[3] != 0xef {
		t.Errorf("key = %v", k)
	}
	long := RawSpace{Len: 12}
	k = long.FromSeed(0x01)
	if len(k) != 12 || k[11] != 1 || k[0] != 0 {
		t.Errorf("long key = %v", k)
	}
}

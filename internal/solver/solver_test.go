package solver

import (
	"testing"
	"testing/quick"

	"castan/internal/budget"
	"castan/internal/expr"
)

func word(ids ...expr.VarID) *expr.Expr {
	bs := make([]*expr.Expr, len(ids))
	for i, id := range ids {
		bs[i] = expr.Var(id)
	}
	return expr.ConcatBytes(bs...)
}

func checkModel(t *testing.T, cons []*expr.Expr, m Model) {
	t.Helper()
	for i, c := range cons {
		if expr.Truth(c).Eval(m) == 0 {
			t.Errorf("constraint %d (%v) violated by model %v", i, c, m)
		}
	}
}

func TestTrivial(t *testing.T) {
	var s Solver
	if r, _ := s.Check(nil); r != Sat {
		t.Error("empty system should be sat")
	}
	if r, _ := s.Check([]*expr.Expr{expr.Const(1)}); r != Sat {
		t.Error("true constant should be sat")
	}
	if r, _ := s.Check([]*expr.Expr{expr.Const(0)}); r != Unsat {
		t.Error("false constant should be unsat")
	}
}

func TestSimpleEquality(t *testing.T) {
	var s Solver
	cons := []*expr.Expr{expr.Eq(expr.Var(1), expr.Const(0x42))}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	if m[1] != 0x42 {
		t.Errorf("model = %v", m)
	}
}

func TestWordEquality(t *testing.T) {
	var s Solver
	// 32-bit word from 4 bytes must equal 0xc0a80117 (192.168.1.23).
	w := word(1, 2, 3, 4)
	cons := []*expr.Expr{expr.Eq(w, expr.Const(0xc0a80117))}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
	if m[1] != 0xc0 || m[2] != 0xa8 || m[3] != 0x01 || m[4] != 0x17 {
		t.Errorf("model = %v", m)
	}
}

func TestMaskedEquality(t *testing.T) {
	// (word & 0xffffff00) == 0x0a000100 — a /24 prefix constraint, as
	// produced by pointer concretization over an LPM table.
	var s Solver
	w := word(1, 2, 3, 4)
	cons := []*expr.Expr{
		expr.Eq(expr.And(w, expr.Const(0xffffff00)), expr.Const(0x0a000100)),
	}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
}

func TestUnsatRange(t *testing.T) {
	var s Solver
	// A 16-bit word can never exceed 65535.
	cons := []*expr.Expr{expr.Ult(expr.Const(1<<20), word(1, 2))}
	if r, _ := s.Check(cons); r != Unsat {
		t.Errorf("result = %v, want unsat", r)
	}
}

func TestUnsatConflict(t *testing.T) {
	var s Solver
	v := expr.Var(1)
	cons := []*expr.Expr{
		expr.Eq(v, expr.Const(3)),
		expr.Eq(v, expr.Const(4)),
	}
	if r, _ := s.Check(cons); r != Unsat {
		t.Errorf("result = %v, want unsat", r)
	}
}

func TestDisequalities(t *testing.T) {
	// 10 words over the same byte pair, all pinned to distinct values:
	// like flow-uniqueness constraints in CASTAN workloads.
	var s Solver
	var cons []*expr.Expr
	words := make([]*expr.Expr, 10)
	for i := range words {
		words[i] = word(expr.VarID(2*i+1), expr.VarID(2*i+2))
		cons = append(cons, expr.Ult(words[i], expr.Const(1000)))
	}
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			cons = append(cons, expr.Ne(words[i], words[j]))
		}
	}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
	seen := map[uint64]bool{}
	for _, w := range words {
		v := w.Eval(m)
		if seen[v] {
			t.Fatalf("duplicate word value %d", v)
		}
		seen[v] = true
	}
}

func TestOrderingChain(t *testing.T) {
	// b1 < b2 < b3 < b4 — skew-inducing tree insertion order.
	var s Solver
	cons := []*expr.Expr{
		expr.Ult(expr.Var(1), expr.Var(2)),
		expr.Ult(expr.Var(2), expr.Var(3)),
		expr.Ult(expr.Var(3), expr.Var(4)),
	}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
}

func TestArithmetic(t *testing.T) {
	var s Solver
	// v1 + v2 == 100 and v1 * 2 == v2.
	v1, v2 := expr.Var(1), expr.Var(2)
	cons := []*expr.Expr{
		expr.Eq(expr.Add(v1, v2), expr.Const(99)),
		expr.Eq(expr.Mul(v1, expr.Const(2)), v2),
	}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
	if m[1] != 33 || m[2] != 66 {
		t.Errorf("model = %v", m)
	}
}

func TestModuloConstraint(t *testing.T) {
	// Hash-bucket style: (word % 4096) == 77.
	var s Solver
	w := word(1, 2, 3, 4)
	cons := []*expr.Expr{
		expr.Eq(expr.New(expr.OpURem, w, expr.Const(4096)), expr.Const(77)),
	}
	r, m := s.Check(cons)
	if r != Sat {
		t.Fatalf("result = %v", r)
	}
	checkModel(t, cons, m)
}

func TestSolveErrors(t *testing.T) {
	var s Solver
	if _, err := s.Solve([]*expr.Expr{expr.Const(0)}); err == nil {
		t.Error("unsat Solve returned nil error")
	}
	if m, err := s.Solve([]*expr.Expr{expr.Eq(expr.Var(1), expr.Const(9))}); err != nil || m[1] != 9 {
		t.Errorf("Solve = %v, %v", m, err)
	}
}

func TestBudgetUnknown(t *testing.T) {
	// A satisfiable, non-trivially-true system over three variables. Any
	// satisfying search must assign all three, and each assignment costs
	// at least one step (search increments steps before every value try,
	// and the budget check is steps > budget), so with MaxSteps: 1 a Sat
	// outcome is impossible: the search runs out of budget during or
	// before its second decision. Unsat is equally impossible — the
	// system has models (e.g. v1=100, v2=0, v3=150) and the interval
	// pre-pass cannot refute a satisfiable system. Unknown is therefore
	// the only reachable outcome, deterministically.
	cons := []*expr.Expr{
		expr.Eq(expr.Add(expr.Var(1), expr.Var(2)), expr.Const(100)),
		expr.Eq(expr.Add(expr.Var(2), expr.Var(3)), expr.Const(150)),
	}
	s := Solver{MaxSteps: 1}
	r, m := s.Check(cons)
	if r != Unknown {
		t.Fatalf("Check = %v, want unknown", r)
	}
	if m != nil {
		t.Fatalf("Unknown returned a model: %v", m)
	}
	// Solve surfaces the same outcome as ErrBudget.
	if _, err := s.Solve(cons); err != ErrBudget {
		t.Fatalf("Solve err = %v, want ErrBudget", err)
	}
	// A real budget solves the same system — the Unknown above was the
	// budget's doing, not the system's.
	full := Solver{}
	r, m = full.Check(cons)
	if r != Sat {
		t.Fatalf("unbudgeted Check = %v, want sat", r)
	}
	checkModel(t, cons, m)
}

func TestBudgetStageCharging(t *testing.T) {
	m := budget.New(0)
	stage := m.Stage(budget.StageSolver)
	s := Solver{Budget: stage}
	cons := []*expr.Expr{expr.Eq(expr.Var(1), expr.Const(9))}
	if r, _ := s.Check(cons); r != Sat {
		t.Fatal("sat system did not solve")
	}
	if stage.Used() == 0 {
		t.Fatal("no ticks charged for a solved query")
	}
	// Exhausted stage → immediate Unknown, no further charges.
	lim := budget.New(1)
	limStage := lim.Stage(budget.StageSolver)
	limStage.Charge(1)
	s2 := Solver{Budget: limStage}
	if r, _ := s2.Check(cons); r != Unknown {
		t.Fatal("exhausted budget did not force Unknown")
	}
	if limStage.Used() != 1 {
		t.Fatalf("exhausted query still charged: %d", limStage.Used())
	}
}

func TestForceUnknownHook(t *testing.T) {
	calls := 0
	s := Solver{ForceUnknown: func() bool { calls++; return calls > 1 }}
	cons := []*expr.Expr{expr.Eq(expr.Var(1), expr.Const(9))}
	if r, _ := s.Check(cons); r != Sat {
		t.Fatal("first query should pass through")
	}
	if r, _ := s.Check(cons); r != Unknown {
		t.Fatal("hook did not force Unknown")
	}
	if _, err := s.Solve(cons); err != ErrBudget {
		t.Fatalf("Solve err = %v, want ErrBudget", err)
	}
}

func TestQuickFeasible(t *testing.T) {
	if QuickFeasible([]*expr.Expr{expr.Const(0)}) != Unsat {
		t.Error("constant false not refuted")
	}
	if QuickFeasible([]*expr.Expr{expr.Ult(expr.Const(1<<20), word(1, 2))}) != Unsat {
		t.Error("range-impossible not refuted")
	}
	if QuickFeasible([]*expr.Expr{expr.Eq(expr.Var(1), expr.Const(3))}) != Unknown {
		t.Error("feasible constraint refuted")
	}
}

func TestRandomSatSystems(t *testing.T) {
	// Property: for random target values, solving "word == target" and
	// derived inequalities always yields a valid model.
	f := func(target uint32, low uint8) bool {
		var s Solver
		w := word(1, 2, 3, 4)
		cons := []*expr.Expr{
			expr.Eq(w, expr.Const(uint64(target))),
			expr.Ule(expr.Const(uint64(low)), expr.Var(1)),
		}
		r, m := s.Check(cons)
		if uint64(target)>>24 < uint64(low) {
			return r == Unsat
		}
		if r != Sat {
			return false
		}
		for _, c := range cons {
			if expr.Truth(c).Eval(m) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResultString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Result.String broken")
	}
}

func TestHintSteersModel(t *testing.T) {
	// With a hint that satisfies the system, the model should keep the
	// hinted values instead of defaulting to minimal ones.
	v1, v2 := expr.Var(1), expr.Var(2)
	cons := []*expr.Expr{expr.Ne(v1, v2)}
	hint := Model{1: 0xaa, 2: 0x10}
	_ = hint
	s := Solver{Hint: Model{1: 0xaa, 2: 0x10}}
	res, m := s.Check(cons)
	if res != Sat {
		t.Fatal(res)
	}
	if m[1] != 0xaa || m[2] != 0x10 {
		t.Errorf("model ignored hint: %v", m)
	}
}

func TestIntervalPrePassRefutesWindows(t *testing.T) {
	// Structurally identical words under conflicting windows must be
	// refuted instantly even with a tiny budget. The two word expressions
	// are built independently (distinct pointers, same fingerprint).
	mkWord := func() *expr.Expr { return word(1, 2, 3, 4) }
	cons := []*expr.Expr{
		expr.Ule(mkWord(), expr.Const(100)),
		expr.Ult(expr.Const(200), mkWord()),
	}
	s := Solver{MaxSteps: 10}
	res, _ := s.Check(cons)
	if res != Unsat {
		t.Fatalf("window conflict not refuted by pre-pass: %v", res)
	}
	// Eq against the window also refutes.
	cons = []*expr.Expr{
		expr.Eq(mkWord(), expr.Const(300)),
		expr.Ult(mkWord(), expr.Const(50)),
	}
	if res, _ := s.Check(cons); res != Unsat {
		t.Fatalf("eq/window conflict not refuted: %v", res)
	}
	// Compatible windows stay solvable.
	cons = []*expr.Expr{
		expr.Ule(expr.Const(100), mkWord()),
		expr.Ult(mkWord(), expr.Const(120)),
	}
	big := Solver{}
	res, m := big.Check(cons)
	if res != Sat {
		t.Fatalf("compatible windows unsolved: %v", res)
	}
	v := mkWord().Eval(m)
	if v < 100 || v >= 120 {
		t.Errorf("model outside window: %d", v)
	}
}

// Normalized-constraint query memo. Symbolic execution re-derives the
// same facts over and over: sibling states probing a ring or a hash
// table assert structurally identical constraint sets that differ only
// in which fresh havoc variables they mention. The memo discharges a
// qualifying query without search through two mechanisms, in order:
//
//  1. A canonical-key Unsat cache. Each query is canonicalized — fold
//     to truth form, drop tautologies by interval analysis, sort
//     constraints by a rename-invariant shape, densely rename variables
//     in canonical traversal order — and Unsat verdicts are cached
//     under the key. Every solver behaves identically on Unsat (no
//     model to act on), so replaying a cached Unsat is observationally
//     equivalent to re-searching. Renaming is sound because every
//     solver variable ranges over the same domain (one byte, 0..255):
//     any variable bijection preserves satisfiability, so equal
//     canonical keys are equisatisfiable.
//
//  2. A value-range model probe (vrange.SolveByRange). The query's
//     atomic constraints tighten per-variable ranges; each remaining
//     constraint's demanded value is pushed backward through its
//     expression tree (the ring NFs' address-equality probes invert
//     exactly: mask, constant offset, slot stride, byte
//     concatenation). The constructed model is verified by concrete
//     evaluation before being returned, so a probe answer is a proof of
//     satisfiability, and the construction is deterministic — every
//     choice point picks the canonical minimum — so replacing the
//     search result keeps exploration reproducible across runs and
//     worker counts.
//
// Sat results from a *search* are never cached: their models steer path
// selection and pointer concretization, and replaying a stale searched
// model under a renamed key would change exploration order. The probe
// is different — it recomputes its model from the query itself on every
// hit, so there is no staleness to replay.
package solver

import (
	"sort"
	"strconv"

	"castan/internal/analysis/vrange"
	"castan/internal/expr"
	"castan/internal/obs"
)

// memoMaxKey bounds the canonical key size; larger queries skip the
// memo (hashing pathological constraint sets would cost more than the
// search they save).
const memoMaxKey = 64 << 10

// Memo discharges qualifying queries without search: cached Unsat
// verdicts under canonical keys, plus a deterministic value-range model
// probe for the directly invertible ones. It is not safe for concurrent
// use; parallel speculative workers must run with a nil memo, same as
// they run with a nil recorder (DESIGN.md decision 8).
type Memo struct {
	// MinVar filters which queries participate: a constraint set is
	// memoized only if it mentions at least one variable >= MinVar.
	// The symbex engine sets this to its first havoc variable ID, so
	// only hash-probing queries (the ring NFs' hot path) are memoized
	// and pure packet-byte query streams stay byte-for-byte untouched.
	MinVar expr.VarID
	// Obs receives solver.memo_hits / solver.memo_misses.
	Obs *obs.Recorder

	unsat map[string]bool
}

// NewMemo returns an empty memo with the given participation threshold.
func NewMemo(minVar expr.VarID, rec *obs.Recorder) *Memo {
	if rec != nil {
		// Register both counters up front so runs where no query ever
		// qualifies still report them at zero (the perf gate diffs over
		// the column intersection, so absent columns are blind spots).
		rec.Counter("solver.memo_hits")
		rec.Counter("solver.memo_misses")
	}
	return &Memo{MinVar: minVar, Obs: rec, unsat: map[string]bool{}}
}

// Len reports how many Unsat verdicts are cached.
func (m *Memo) Len() int { return len(m.unsat) }

// lookup consults the Unsat cache and then the value-range model
// probe. ok=false means the query is not memoizable (no qualifying
// variable, oversized key, or trivially decided forms the solver
// handles for free). When ok, res is Unsat (cached refutation), Sat
// (probe-constructed model, already verified by concrete evaluation),
// or Unknown — a miss; the caller may store the key on a searched
// Unsat.
func (m *Memo) lookup(constraints []*expr.Expr) (key string, res Result, model Model, ok bool) {
	key, ok = m.canonicalKey(constraints)
	if !ok {
		return "", Unknown, nil, false
	}
	if m.unsat[key] {
		m.count("solver.memo_hits")
		return key, Unsat, nil, true
	}
	if mdl, solved := vrange.SolveByRange(constraints); solved {
		m.count("solver.memo_hits")
		return key, Sat, Model(mdl), true
	}
	m.count("solver.memo_misses")
	return key, Unknown, nil, true
}

// store records an Unsat verdict under a key lookup returned.
func (m *Memo) store(key string) { m.unsat[key] = true }

func (m *Memo) count(name string) {
	if m.Obs != nil {
		m.Obs.Counter(name).Inc()
	}
}

// canonicalKey renders the constraint set in a normal form invariant
// under constraint order and variable naming:
//
//  1. each constraint is folded to its truth form and dropped when
//     interval analysis proves it a tautology (it cannot affect the
//     verdict);
//  2. surviving constraints are sorted by a shape string that renames
//     variables per-constraint by first occurrence (order-insensitive);
//  3. the whole set is re-serialized with one dense global renaming in
//     sorted traversal order.
func (m *Memo) canonicalKey(constraints []*expr.Expr) (string, bool) {
	type entry struct {
		t     *expr.Expr
		shape string
	}
	var entries []entry
	qualifies := false
	size := 0
	for _, c := range constraints {
		t := expr.Truth(c)
		if b, ok := t.IsBool(); ok {
			if b {
				continue // tautology: drop
			}
			// Constant-false: the solver refutes it without search;
			// memoizing would only skip the (already free) newProblem
			// pass while perturbing query accounting.
			return "", false
		}
		if iv := expr.Range(t, nil); iv.Lo > 0 {
			continue // interval-proven tautology (never evaluates to 0)
		}
		if !qualifies {
			for _, v := range t.VarList() {
				if v >= m.MinVar {
					qualifies = true
					break
				}
			}
		}
		sh := serializeExpr(t, localRenaming(t))
		size += len(sh)
		if size > memoMaxKey {
			return "", false
		}
		entries = append(entries, entry{t: t, shape: sh})
	}
	if !qualifies || len(entries) == 0 {
		return "", false
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].shape < entries[j].shape })
	global := map[expr.VarID]int{}
	var b []byte
	for i, e := range entries {
		if i > 0 {
			b = append(b, '|')
		}
		b = serialize(b, e.t, func(v expr.VarID) int {
			id, ok := global[v]
			if !ok {
				id = len(global)
				global[v] = id
			}
			return id
		})
		if len(b) > memoMaxKey {
			return "", false
		}
	}
	return string(b), true
}

// localRenaming maps each variable of t to its first-occurrence index.
func localRenaming(t *expr.Expr) func(expr.VarID) int {
	local := map[expr.VarID]int{}
	var walk func(e *expr.Expr)
	walk = func(e *expr.Expr) {
		if e == nil {
			return
		}
		if e.Op == expr.OpVar {
			if _, ok := local[e.Var]; !ok {
				local[e.Var] = len(local)
			}
			return
		}
		walk(e.A)
		walk(e.B)
		walk(e.C)
	}
	walk(t)
	return func(v expr.VarID) int { return local[v] }
}

func serializeExpr(t *expr.Expr, rename func(expr.VarID) int) string {
	return string(serialize(nil, t, rename))
}

// serialize renders an expression tree prefix-style with renamed
// variables: "op(a,b)", "c<hex>", "v<idx>".
func serialize(b []byte, e *expr.Expr, rename func(expr.VarID) int) []byte {
	switch e.Op {
	case expr.OpConst:
		b = append(b, 'c')
		return strconv.AppendUint(b, e.Val, 16)
	case expr.OpVar:
		b = append(b, 'v')
		return strconv.AppendInt(b, int64(rename(e.Var)), 10)
	default:
		b = append(b, byte('0'+e.Op))
		b = append(b, '(')
		b = serialize(b, e.A, rename)
		if e.B != nil {
			b = append(b, ',')
			b = serialize(b, e.B, rename)
		}
		if e.C != nil {
			b = append(b, ',')
			b = serialize(b, e.C, rename)
		}
		return append(b, ')')
	}
}

package solver

import (
	"testing"

	"castan/internal/expr"
	"castan/internal/obs"
)

// unsatPair builds {v == 3, v == 5} over the given variable: unsat.
func unsatPair(v expr.VarID) []*expr.Expr {
	return []*expr.Expr{
		expr.Eq(expr.Var(v), expr.Const(3)),
		expr.Eq(expr.Var(v), expr.Const(5)),
	}
}

// probeProof builds a query the range probe cannot invert (a sum of two
// free variables) so lookups fall through to the search.
func probeProof(v expr.VarID, sum uint64) []*expr.Expr {
	return []*expr.Expr{
		expr.Eq(expr.Add(expr.Var(v), expr.Var(v+1)), expr.Const(sum)),
	}
}

func TestMemoUnsatHit(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1))
	m := NewMemo(0, rec)
	s := &Solver{Obs: rec, Memo: m}

	if res, _ := s.Check(unsatPair(7)); res != Unsat {
		t.Fatalf("first check: %v", res)
	}
	if m.Len() != 1 {
		t.Fatalf("memo size after unsat: %d", m.Len())
	}
	// Identical query: must hit without touching solver.queries.
	before := rec.Snapshot().Counters["solver.queries"]
	if res, _ := s.Check(unsatPair(7)); res != Unsat {
		t.Fatalf("repeat check: %v", res)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["solver.queries"]; got != before {
		t.Errorf("memo hit must not count a query: %d -> %d", before, got)
	}
	if snap.Counters["solver.memo_hits"] != 1 {
		t.Errorf("memo_hits = %d", snap.Counters["solver.memo_hits"])
	}
	// Renamed variable: same canonical key, still a hit.
	if res, _ := s.Check(unsatPair(99)); res != Unsat {
		t.Fatalf("renamed check: %v", res)
	}
	// Reordered constraints: same canonical key.
	cs := unsatPair(13)
	cs[0], cs[1] = cs[1], cs[0]
	if res, _ := s.Check(cs); res != Unsat {
		t.Fatalf("reordered check: %v", res)
	}
	if got := rec.Snapshot().Counters["solver.memo_hits"]; got != 3 {
		t.Errorf("memo_hits after rename+reorder = %d, want 3", got)
	}
	if m.Len() != 1 {
		t.Errorf("all variants must share one key; memo has %d", m.Len())
	}
}

func TestMemoProbeAnswersInvertibleSat(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1))
	m := NewMemo(0, rec)
	s := &Solver{Obs: rec, Memo: m}
	cs := []*expr.Expr{expr.Eq(expr.Var(1), expr.Const(42))}
	res, model := s.Check(cs)
	if res != Sat || model[1] != 42 {
		t.Fatalf("probe check: %v %v", res, model)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["solver.queries"]; got != 0 {
		t.Errorf("probe hit must not count a query: %d", got)
	}
	if got := snap.Counters["solver.memo_hits"]; got != 1 {
		t.Errorf("memo_hits = %d, want 1", got)
	}
	if m.Len() != 0 {
		t.Errorf("probe hits must not populate the Unsat cache; memo has %d", m.Len())
	}
}

// The ring NFs' hot query shape: slot address computed as
// (base + concat(hi, lo)*stride) & alignMask compared against a
// candidate address. The probe must invert the whole chain and produce
// the exact hash bytes, deterministically.
func TestMemoProbeInvertsAddressChain(t *testing.T) {
	const (
		base   = 0x10001000
		stride = 0x40
		mask   = ^uint64(0x3f)
	)
	concat := expr.Or(expr.Shl(expr.Var(2), expr.Const(8)), expr.Var(3))
	addr := expr.And(
		expr.Add(expr.Const(base), expr.Mul(concat, expr.Const(stride))),
		expr.Const(mask),
	)
	want := uint64(base + 0x1234*stride)
	cs := []*expr.Expr{expr.Eq(addr, expr.Const(want))}

	rec := obs.New(obs.NewFakeClock(1))
	s := &Solver{Obs: rec, Memo: NewMemo(0, rec)}
	res, model := s.Check(cs)
	if res != Sat {
		t.Fatalf("probe check: %v", res)
	}
	if model[2] != 0x12 || model[3] != 0x34 {
		t.Errorf("inverted hash bytes = %#x, %#x; want 0x12, 0x34", model[2], model[3])
	}
	if cs[0].Eval(map[expr.VarID]uint64(model)) == 0 {
		t.Error("probe model does not satisfy the query")
	}
	if got := rec.Snapshot().Counters["solver.queries"]; got != 0 {
		t.Errorf("probe hit must not count a query: %d", got)
	}
	// Repeat query: same deterministic model, no search.
	res2, model2 := s.Check(cs)
	if res2 != Sat || model2[2] != model[2] || model2[3] != model[3] {
		t.Errorf("probe must be deterministic: %v %v vs %v", res2, model2, model)
	}
}

func TestMemoSearchedSatNotCached(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1))
	m := NewMemo(0, rec)
	s := &Solver{Obs: rec, Memo: m}
	cs := probeProof(1, 10)
	res, model := s.Check(cs)
	if res != Sat || model[1]+model[2] != 10 {
		t.Fatalf("sat check: %v %v", res, model)
	}
	if m.Len() != 0 {
		t.Errorf("sat verdicts must not be cached; memo has %d", m.Len())
	}
	// The repeat query runs the full search again.
	if res, _ := s.Check(cs); res != Sat {
		t.Fatalf("repeat sat check: %v", res)
	}
	snap := rec.Snapshot()
	if got := snap.Counters["solver.queries"]; got != 2 {
		t.Errorf("searched sat queries must all be counted: %d", got)
	}
	if got := snap.Counters["solver.memo_misses"]; got != 2 {
		t.Errorf("memo_misses = %d, want 2", got)
	}
}

func TestMemoMinVarFilter(t *testing.T) {
	m := NewMemo(100, nil)
	// Only low (packet-byte) variables: not memoizable.
	if _, _, _, ok := m.lookup(unsatPair(7)); ok {
		t.Error("query below MinVar must not participate")
	}
	// Mentions a havoc-range variable: memoizable.
	if _, _, _, ok := m.lookup(unsatPair(100)); !ok {
		t.Error("query at MinVar must participate")
	}
}

func TestMemoTautologyDropped(t *testing.T) {
	m := NewMemo(0, nil)
	base := unsatPair(5)
	withTaut := append([]*expr.Expr{
		expr.Ule(expr.Var(5), expr.Const(255)), // always true for a byte
	}, base...)
	k1, _, _, ok1 := m.lookup(base)
	k2, _, _, ok2 := m.lookup(withTaut)
	if !ok1 || !ok2 || k1 != k2 {
		t.Errorf("tautologies must not split keys: %q vs %q", k1, k2)
	}
}

func TestMemoConstFalseNotMemoized(t *testing.T) {
	m := NewMemo(0, nil)
	cs := []*expr.Expr{expr.Const(0)}
	if _, _, _, ok := m.lookup(cs); ok {
		t.Error("trivially false sets must fall through to the solver")
	}
}

func TestMemoDistinctStructuresMiss(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1))
	m := NewMemo(0, rec)
	s := &Solver{Obs: rec, Memo: m}
	if res, _ := s.Check(unsatPair(1)); res != Unsat {
		t.Fatal("unsat pair")
	}
	// Different constants: different key, full search, second entry.
	cs := []*expr.Expr{
		expr.Eq(expr.Var(1), expr.Const(4)),
		expr.Eq(expr.Var(1), expr.Const(6)),
	}
	if res, _ := s.Check(cs); res != Unsat {
		t.Fatal("second unsat pair")
	}
	if m.Len() != 2 {
		t.Errorf("distinct structures must not collide: memo has %d", m.Len())
	}
	if got := rec.Snapshot().Counters["solver.memo_misses"]; got != 2 {
		t.Errorf("memo_misses = %d, want 2", got)
	}
}

// Package solver decides satisfiability of conjunctions of bitvector
// constraints over packet-byte variables and produces satisfying models
// (concrete packets). It plays the role the SMT solver plays for CASTAN:
// the symbolic-execution engine asserts path constraints, asks "is this
// branch / this concretized pointer feasible?", and finally asks for a
// model of the highest-cost state.
//
// The fragment it handles — comparisons over words assembled from packet
// bytes, masked table-index equalities from pointer concretization, and
// disequalities for flow uniqueness — is deliberately narrower than a
// general SMT solver, which keeps the implementation small: backtracking
// search over byte variables with unit filtering and sound interval
// pruning.
package solver

import (
	"errors"
	"sort"

	"castan/internal/budget"
	"castan/internal/expr"
	"castan/internal/obs"
)

// Result is the outcome of a satisfiability check.
type Result int

// Check outcomes.
const (
	Unsat Result = iota
	Sat
	Unknown // budget exhausted before a decision
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Model is a satisfying assignment of byte values to variables.
type Model map[expr.VarID]uint64

// narrow folds constraint t into the per-expression interval map,
// reporting false when an interval becomes empty (definite Unsat).
func narrow(ivs map[uint64]*expr.Interval, t *expr.Expr) bool {
	var sym *expr.Expr
	var lo, hi uint64
	max := ^uint64(0)
	switch t.Op {
	case expr.OpEq, expr.OpUle, expr.OpUlt:
	default:
		return true
	}
	av, aok := t.A.IsConst()
	bv, bok := t.B.IsConst()
	switch {
	case aok == bok:
		return true // const-const folded earlier; sym-sym not handled here
	case bok: // sym <op> const
		sym = t.A
		switch t.Op {
		case expr.OpEq:
			lo, hi = bv, bv
		case expr.OpUle:
			lo, hi = 0, bv
		case expr.OpUlt:
			if bv == 0 {
				return false
			}
			lo, hi = 0, bv-1
		}
	default: // const <op> sym
		sym = t.B
		switch t.Op {
		case expr.OpEq:
			lo, hi = av, av
		case expr.OpUle:
			lo, hi = av, max
		case expr.OpUlt:
			if av == max {
				return false
			}
			lo, hi = av+1, max
		}
	}
	iv, ok := ivs[sym.Fingerprint()]
	if !ok {
		ivs[sym.Fingerprint()] = &expr.Interval{Lo: lo, Hi: hi}
		return true
	}
	*iv = iv.Intersect(expr.Interval{Lo: lo, Hi: hi})
	return !iv.Empty()
}

// ErrBudget is returned by Solve when the step budget runs out.
var ErrBudget = errors.New("solver: step budget exhausted")

// Solver holds tunables. The zero value uses defaults.
type Solver struct {
	// MaxSteps bounds the number of decisions+propagations; 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Hint, when set, biases the search to try each variable's hinted
	// value first. When the constraint system is an extension of one the
	// hint already satisfies, the search only repairs the affected
	// variables, making incremental checks nearly free.
	Hint Model
	// Obs, when set, receives per-query telemetry: query counts by
	// outcome, steps and clock time per query, propagation rounds,
	// backtracks, and hint hits. Callers whose query count depends on the
	// worker count (speculative parallel batches) must leave it nil so
	// the recorded totals stay deterministic (DESIGN.md decision 8).
	Obs *obs.Recorder
	// Budget, when set, is charged one tick per search step after each
	// query, and a query entered with the budget already exhausted
	// returns Unknown immediately (cooperative cancellation — an
	// in-flight query always runs to its own MaxSteps, so the cut point
	// is a query boundary, which is deterministic). The same caveat as
	// Obs applies: speculative parallel callers must leave it nil and
	// let the orchestrator charge the sequential-equivalent effort.
	Budget *budget.Stage
	// ForceUnknown is a fault-injection hook: when it returns true the
	// query is abandoned as Unknown before any search. Production code
	// leaves it nil; internal/faultinject supplies seeded hooks.
	ForceUnknown func() bool
	// Memo, when set, answers qualifying queries without search: cached
	// Unsat verdicts under normalized constraint keys, and verified
	// models constructed by the value-range probe (see memo.go). A memo
	// hit bypasses the per-query telemetry — only the memo's own hit
	// counter moves — so discharged queries vanish from solver.queries
	// exactly as if the caller had never asked. Shared, like Hint,
	// across the solvers one engine constructs; never across workers.
	Memo *Memo
}

// DefaultMaxSteps is the default search budget.
const DefaultMaxSteps = 400000

// Check decides the conjunction of the given constraints. Each constraint
// is interpreted as "expression != 0". On Sat the returned model assigns
// every variable that occurs in the constraints.
func (s *Solver) Check(constraints []*expr.Expr) (Result, Model) {
	var start uint64
	if s.Obs != nil {
		start = s.Obs.NowNanos()
	}
	res, m, p, memoHit := s.check(constraints)
	if s.Obs != nil && !memoHit {
		s.record(res, p, s.Obs.NowNanos()-start)
	}
	return res, m
}

func (s *Solver) check(constraints []*expr.Expr) (Result, Model, *problem, bool) {
	if s.ForceUnknown != nil && s.ForceUnknown() {
		return Unknown, nil, nil, false
	}
	if _, exhausted := s.Budget.Exhausted(); exhausted {
		return Unknown, nil, nil, false
	}
	// Memo lookup sits after the fault and budget guards so injected
	// faults and exhausted budgets keep their exact semantics, and
	// before problem construction so a hit costs no search steps.
	var memoKey string
	if s.Memo != nil {
		if key, res, model, ok := s.Memo.lookup(constraints); ok {
			switch res {
			case Unsat:
				return Unsat, nil, nil, true
			case Sat:
				return Sat, model, nil, true
			}
			memoKey = key
		}
	}
	p, res := newProblem(constraints)
	defer func() {
		if p != nil {
			s.Budget.Charge(uint64(p.steps))
		}
	}()
	if res != Unknown {
		if res == Unsat && memoKey != "" {
			s.Memo.store(memoKey)
		}
		return res, modelIfSat(res, p), p, false
	}
	budget := s.MaxSteps
	if budget <= 0 {
		budget = DefaultMaxSteps
	}
	p.budget = budget
	p.hint = s.Hint
	switch p.search() {
	case searchSat:
		return Sat, p.model(), p, false
	case searchUnsat:
		if memoKey != "" {
			s.Memo.store(memoKey)
		}
		return Unsat, nil, p, false
	default:
		return Unknown, nil, p, false
	}
}

// record flushes one query's effort to the recorder. Per-problem tallies
// are plain ints bumped on the (single-goroutine) search path and merged
// here with one atomic add each, keeping the hot loop cheap.
func (s *Solver) record(res Result, p *problem, durNanos uint64) {
	rec := s.Obs
	rec.Counter("solver.queries").Inc()
	rec.Counter("solver.queries_" + res.String()).Inc()
	rec.Histogram("solver.query_ns", obs.ExpBuckets(256, 20)...).Observe(durNanos)
	if p == nil {
		return
	}
	rec.Histogram("solver.steps_per_query", obs.ExpBuckets(16, 16)...).Observe(uint64(p.steps))
	rec.Counter("solver.propagation_rounds").Add(uint64(p.props))
	rec.Counter("solver.backtracks").Add(uint64(p.backtracks))
	rec.Counter("solver.hint_hits").Add(uint64(p.hintHits))
}

func modelIfSat(r Result, p *problem) Model {
	if r == Sat && p != nil {
		return p.model()
	}
	return nil
}

// Solve returns a model or an error (unsat or budget).
func (s *Solver) Solve(constraints []*expr.Expr) (Model, error) {
	res, m := s.Check(constraints)
	switch res {
	case Sat:
		return m, nil
	case Unsat:
		return nil, errors.New("solver: unsatisfiable")
	default:
		return nil, ErrBudget
	}
}

type searchResult int

const (
	searchSat searchResult = iota
	searchUnsat
	searchBudget
)

type problem struct {
	cons     []*expr.Expr
	consVars [][]expr.VarID // cached variable lists per constraint
	vars     []expr.VarID
	varCons  map[expr.VarID][]int // var -> constraint indices
	unVars   []int                // per-constraint count of unassigned vars
	assign   map[expr.VarID]uint64
	hint     Model
	order    []expr.VarID
	steps    int
	budget   int

	// Telemetry tallies (flushed by Solver.record).
	props      int // propagateCheck invocations
	backtracks int // assignments undone
	hintHits   int // hinted values that survived propagation
}

// newProblem normalizes constraints. Returns (nil, Unsat) for a trivially
// false system and (nil, Sat) for a trivially true one.
func newProblem(constraints []*expr.Expr) (*problem, Result) {
	p := &problem{
		varCons: map[expr.VarID][]int{},
		assign:  map[expr.VarID]uint64{},
	}
	seen := map[expr.VarID]bool{}
	// Interval pre-pass: constraints comparing structurally identical
	// expressions against constants narrow a shared interval; an empty
	// intersection refutes the system without any search. This catches
	// the "w <= c together with w > c" window conflicts that backtracking
	// is hopeless at.
	ivs := map[uint64]*expr.Interval{}
	for _, c := range constraints {
		t := expr.Truth(c)
		if b, ok := t.IsBool(); ok {
			if !b {
				return nil, Unsat
			}
			continue
		}
		if !narrow(ivs, t) {
			return nil, Unsat
		}
		idx := len(p.cons)
		p.cons = append(p.cons, t)
		vs := t.VarList()
		p.consVars = append(p.consVars, vs)
		p.unVars = append(p.unVars, len(vs))
		for _, v := range vs {
			p.varCons[v] = append(p.varCons[v], idx)
			if !seen[v] {
				seen[v] = true
				p.vars = append(p.vars, v)
			}
		}
	}
	if len(p.cons) == 0 {
		return p, Sat
	}
	// Deterministic variable order: most-constrained first, then by ID.
	p.order = append([]expr.VarID(nil), p.vars...)
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.order[i], p.order[j]
		if len(p.varCons[a]) != len(p.varCons[b]) {
			return len(p.varCons[a]) > len(p.varCons[b])
		}
		return a < b
	})
	return p, Unknown
}

func (p *problem) model() Model {
	m := make(Model, len(p.assign))
	for k, v := range p.assign {
		m[k] = v
	}
	return m
}

// pickVar returns the next variable to assign: an unassigned variable of
// the constraint with the fewest unassigned variables (fail-first).
func (p *problem) pickVar() (expr.VarID, bool) {
	best, bestCount := -1, 1<<30
	for ci, n := range p.unVars {
		if n > 0 && n < bestCount {
			best, bestCount = ci, n
			if n == 1 {
				break
			}
		}
	}
	if best >= 0 {
		vs := p.consVars[best]
		// Deterministic: smallest unassigned ID in that constraint.
		found := false
		var min expr.VarID
		for _, v := range vs {
			if _, ok := p.assign[v]; !ok {
				if !found || v < min {
					min, found = v, true
				}
			}
		}
		if found {
			return min, true
		}
	}
	for _, v := range p.order {
		if _, ok := p.assign[v]; !ok {
			return v, true
		}
	}
	return 0, false
}

// valueAt maps iteration index k to the k-th candidate value for v:
// the hinted value first, then ascending order.
func (p *problem) valueAt(v expr.VarID, k uint64) uint64 {
	if p.hint == nil {
		return k
	}
	hintVal, ok := p.hint[v]
	if !ok {
		return k
	}
	hintVal &= 0xff
	switch {
	case k == 0:
		return hintVal
	case k <= hintVal:
		return k - 1
	default:
		return k
	}
}

// propagateCheck verifies all constraints touching v after assigning it:
// fully-assigned constraints must evaluate nonzero; nearly-assigned ones
// must still admit a nonzero value by interval analysis. Constraints with
// many free variables are left unchecked — interval pruning almost never
// fires for them, and the cost would dominate the search.
const rangeCheckMaxFree = 6

func (p *problem) propagateCheck(v expr.VarID) bool {
	p.props++
	for _, ci := range p.varCons[v] {
		c := p.cons[ci]
		if p.unVars[ci] == 0 {
			if c.Eval(p.assign) == 0 {
				return false
			}
		} else if p.unVars[ci] <= rangeCheckMaxFree {
			if iv := expr.Range(c, p.assign); iv.Hi == 0 {
				return false
			}
		}
	}
	return true
}

func (p *problem) assignVar(v expr.VarID, val uint64) {
	p.assign[v] = val
	for _, ci := range p.varCons[v] {
		p.unVars[ci]--
	}
}

func (p *problem) unassignVar(v expr.VarID) {
	p.backtracks++
	delete(p.assign, v)
	for _, ci := range p.varCons[v] {
		p.unVars[ci]++
	}
}

func (p *problem) search() searchResult {
	v, more := p.pickVar()
	if !more {
		return searchSat
	}
	for k := uint64(0); k < 256; k++ {
		p.steps++
		if p.steps > p.budget {
			return searchBudget
		}
		val := p.valueAt(v, k)
		p.assignVar(v, val)
		if p.propagateCheck(v) {
			if k == 0 && p.hint != nil {
				if _, hinted := p.hint[v]; hinted {
					p.hintHits++
				}
			}
			switch r := p.search(); r {
			case searchSat, searchBudget:
				return r
			}
		}
		p.unassignVar(v)
	}
	return searchUnsat
}

// QuickFeasible is a cheap, sound-for-Unsat check: it returns Unsat only
// when interval analysis refutes some constraint outright, otherwise
// Unknown. The symbex engine uses it as a pre-filter before full checks.
func QuickFeasible(constraints []*expr.Expr) Result {
	for _, c := range constraints {
		t := expr.Truth(c)
		if b, ok := t.IsBool(); ok {
			if !b {
				return Unsat
			}
			continue
		}
		if iv := expr.Range(t, nil); iv.Hi == 0 {
			return Unsat
		}
	}
	return Unknown
}

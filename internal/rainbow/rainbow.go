// Package rainbow implements classic Oechslin rainbow tables over the NF
// hash functions, as used by CASTAN's havoc-reconciliation stage (§3.5):
// given a hash value a solver asked for, find preimage keys drawn from a
// (possibly tailored) key space.
//
// A table stores chains of alternating hash and position-dependent
// reduction steps; only (startSeed, endHash) pairs are kept. Lookup walks
// the suffix of each possible chain position, matches end hashes, and
// regenerates candidate chains from their start seeds.
package rainbow

import (
	"fmt"

	"castan/internal/nfhash"
	"castan/internal/obs"
	"castan/internal/parallel"
	"castan/internal/stats"
)

// Table is a built rainbow table for one (hash, key space) pair.
type Table struct {
	hash  func([]byte) uint64
	bits  int
	space nfhash.KeySpace

	chainLen int
	seed     uint64
	ends     map[uint64][]uint64 // endHash -> start seeds (collisions kept)
	nchains  int
}

// Config sizes a table.
type Config struct {
	// Bits is the hash output width; hash values are masked to it.
	Bits int
	// Chains and ChainLen size the table. Coverage ≈ Chains×ChainLen
	// relative to the 2^Bits hash space; the paper suggests a few entries
	// per value (~2^bits keys total).
	Chains   int
	ChainLen int
	// Seed drives start-seed generation.
	Seed uint64
	// Workers bounds the chain-generation fan-out (0 = GOMAXPROCS). The
	// built table is bit-for-bit identical at every worker count: chain c
	// always walks from the c-th draw of the seed's splitmix64 stream.
	Workers int
	// Obs, when set, counts build effort (chains and hash steps walked).
	// Callers whose tables come from a cross-run cache must leave it nil
	// and count at the orchestration site instead, so cache hits and
	// fresh builds record identically (DESIGN.md decision 8).
	Obs *obs.Recorder
	// Corrupt is a fault-injection hook perturbing stored chain ends
	// (nil in production). A corrupted table still answers lookups — the
	// walks just dead-end — which is exactly what SelfCheck exists to
	// detect. Tables built with a Corrupt hook must never enter a shared
	// cache.
	Corrupt func(chain int, end uint64) uint64
}

// DefaultConfig covers a bits-wide space about 4×.
func DefaultConfig(bits int) Config {
	space := 1 << uint(bits)
	chainLen := 64
	chains := space * 4 / chainLen
	if chains < 16 {
		chains = 16
	}
	return Config{Bits: bits, Chains: chains, ChainLen: chainLen, Seed: 0x9a3b}
}

// Build generates the table. The hash function is truncated to cfg.Bits.
func Build(hash func([]byte) uint64, space nfhash.KeySpace, cfg Config) (*Table, error) {
	if cfg.Bits <= 0 || cfg.Bits > 32 {
		return nil, fmt.Errorf("rainbow: unsupported hash width %d", cfg.Bits)
	}
	if cfg.Chains <= 0 || cfg.ChainLen <= 0 {
		return nil, fmt.Errorf("rainbow: bad table size %d×%d", cfg.Chains, cfg.ChainLen)
	}
	t := &Table{
		hash:     nfhash.Masked(hash, cfg.Bits),
		bits:     cfg.Bits,
		space:    space,
		chainLen: cfg.ChainLen,
		seed:     cfg.Seed,
		ends:     make(map[uint64][]uint64, cfg.Chains),
	}
	// Chains are independent given their start seed, and chain c's start
	// is the c-th draw of the seed's splitmix64 stream — reachable in O(1)
	// with Skip — so chain walks fan out across workers while the merged
	// table stays identical to a sequential build (ends map contents match
	// because slot order, not completion order, drives the merge).
	type chain struct{ start, end uint64 }
	walked := parallel.Map(cfg.Workers, cfg.Chains, func(c int) chain {
		rng := stats.NewRNG(cfg.Seed)
		rng.Skip(uint64(c))
		start := rng.Uint64()
		h := t.step(start, 0)
		for pos := 1; pos < t.chainLen; pos++ {
			h = t.step(t.reduce(h, pos-1), pos)
		}
		return chain{start: start, end: h}
	})
	for c, ch := range walked {
		end := ch.end
		if cfg.Corrupt != nil {
			end = cfg.Corrupt(c, end)
		}
		t.ends[end] = append(t.ends[end], ch.start)
		t.nchains++
	}
	cfg.Obs.Counter("rainbow.chains_built").Add(uint64(t.nchains))
	cfg.Obs.Counter("rainbow.build_hash_steps").Add(uint64(t.nchains) * uint64(t.chainLen))
	return t, nil
}

// step hashes the key derived from seed at chain position pos.
func (t *Table) step(seed uint64, pos int) uint64 {
	return t.hash(t.space.FromSeed(seed))
}

// reduce maps a hash value to the next chain seed; the position salt makes
// each column a distinct reduction function (the defining rainbow trick).
func (t *Table) reduce(h uint64, pos int) uint64 {
	v := h + uint64(pos)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	v ^= v >> 27
	v *= 0x2545f4914f6cdd1d
	return v
}

// Chains reports how many chains the table holds.
func (t *Table) Chains() int { return t.nchains }

// ChainLen reports the chain length.
func (t *Table) ChainLen() int { return t.chainLen }

// Bits reports the hash width.
func (t *Table) Bits() int { return t.bits }

// SelfCheck validates table integrity by rewalking up to n chains (0 or
// negative = all): chain c's start is recomputed from the build seed, the
// chain is walked to its end, and the stored ends index must map that end
// back to the start. A corrupted or torn table fails with a description
// of the first bad chain. The walk costs n×ChainLen hash steps, so
// callers usually spot-check a sample before trusting a cached table.
func (t *Table) SelfCheck(n int) error {
	if n <= 0 || n > t.nchains {
		n = t.nchains
	}
	for c := 0; c < n; c++ {
		rng := stats.NewRNG(t.seed)
		rng.Skip(uint64(c))
		start := rng.Uint64()
		h := t.step(start, 0)
		for pos := 1; pos < t.chainLen; pos++ {
			h = t.step(t.reduce(h, pos-1), pos)
		}
		found := false
		for _, s := range t.ends[h] {
			if s == start {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("rainbow: self-check failed at chain %d: recomputed end %#x not indexed to start %#x", c, h, start)
		}
	}
	return nil
}

// Invert searches for preimage keys of hash h (masked to the table's
// width), returning up to max candidates. Returned keys all satisfy
// hash(key) == h; they may still be rejected downstream by packet
// constraints, which is why several candidates are offered.
func (t *Table) Invert(h uint64, max int) [][]byte {
	h &= uint64(1)<<uint(t.bits) - 1
	var out [][]byte
	seen := map[string]bool{}
	// Try each possible position of h within a chain, from the end
	// backwards (shortest walk first).
	for pos := t.chainLen - 1; pos >= 0 && len(out) < max; pos-- {
		// Walk h from position pos to the chain end.
		cur := h
		for p := pos + 1; p < t.chainLen; p++ {
			cur = t.step(t.reduce(cur, p-1), p)
		}
		starts, ok := t.ends[cur]
		if !ok {
			continue
		}
		for _, start := range starts {
			// Regenerate the chain to position pos and check for a true
			// preimage (end-hash matches can be chain-merge artifacts).
			seed := start
			for p := 0; p < pos; p++ {
				seed = t.reduce(t.step(seed, p), p)
			}
			key := t.space.FromSeed(seed)
			if t.hash(key) == h {
				ks := string(key)
				if !seen[ks] {
					seen[ks] = true
					out = append(out, key)
					if len(out) >= max {
						break
					}
				}
			}
		}
	}
	return out
}

// BruteForce searches the key space directly for up to max preimages of h
// (masked to the table's width), trying at most tries seeds. The paper
// reverses hashes with "brute-force methods augmented by the use of
// rainbow tables" (§3.5): the table answers point queries cheaply, and
// brute force supplies additional distinct preimages when an attack needs
// many keys hashing to one value (collision workloads).
func (t *Table) BruteForce(h uint64, max, tries int, seed uint64) [][]byte {
	h &= uint64(1)<<uint(t.bits) - 1
	rng := stats.NewRNG(seed ^ 0xb207ef0c)
	var out [][]byte
	seen := map[string]bool{}
	for i := 0; i < tries && len(out) < max; i++ {
		key := t.space.FromSeed(rng.Uint64())
		if t.hash(key) == h && !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, key)
		}
	}
	return out
}

// InvertOne returns a single preimage, if any.
func (t *Table) InvertOne(h uint64) ([]byte, bool) {
	ks := t.Invert(h, 1)
	if len(ks) == 0 {
		return nil, false
	}
	return ks[0], true
}

// Coverage estimates the fraction of the 2^bits hash space invertible with
// this table by sampling n random values.
func (t *Table) Coverage(n int, seed uint64) float64 {
	if n <= 0 {
		n = 256
	}
	rng := stats.NewRNG(seed)
	hit := 0
	mask := uint64(1)<<uint(t.bits) - 1
	for i := 0; i < n; i++ {
		if _, ok := t.InvertOne(rng.Uint64() & mask); ok {
			hit++
		}
	}
	return float64(hit) / float64(n)
}

package rainbow

// Table serialization for the cross-run store. A table's identity is
// (hash function, key space, build config); only the derived chain data
// travels — the hash and key space are code, reattached on load. The
// caller owns integrity: a loaded table must pass SelfCheck before it is
// trusted, because these bytes may come from a torn or tampered file
// (the store treats undecodable entries as misses, but decodable-yet-
// wrong chain data is only detectable by rewalking chains).

import (
	"encoding/json"
	"fmt"
	"sort"

	"castan/internal/nfhash"
)

// tableJSON is the serialized form. Ends are flattened into pairs
// sorted by end hash, so serializing the same table always produces the
// same bytes (the in-memory map iterates randomly).
type tableJSON struct {
	Bits     int       `json:"bits"`
	ChainLen int       `json:"chain_len"`
	Seed     uint64    `json:"seed"`
	NChains  int       `json:"nchains"`
	Ends     []endJSON `json:"ends"`
}

type endJSON struct {
	End    uint64   `json:"end"`
	Starts []uint64 `json:"starts"`
}

// Serialize encodes the table's chain data deterministically.
func (t *Table) Serialize() ([]byte, error) {
	tj := tableJSON{
		Bits:     t.bits,
		ChainLen: t.chainLen,
		Seed:     t.seed,
		NChains:  t.nchains,
		Ends:     make([]endJSON, 0, len(t.ends)),
	}
	for end, starts := range t.ends {
		tj.Ends = append(tj.Ends, endJSON{End: end, Starts: starts})
	}
	sort.Slice(tj.Ends, func(i, j int) bool { return tj.Ends[i].End < tj.Ends[j].End })
	return json.Marshal(tj)
}

// LoadTable rebuilds a table from Serialize's output, reattaching the
// hash function and key space the table was built over (they are part
// of the caller's store key, so a mismatch cannot alias silently — but
// it would also be caught by SelfCheck, which callers must run before
// trusting the result).
func LoadTable(data []byte, hash func([]byte) uint64, space nfhash.KeySpace) (*Table, error) {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("rainbow: decode table: %w", err)
	}
	if tj.Bits <= 0 || tj.Bits > 32 {
		return nil, fmt.Errorf("rainbow: unsupported hash width %d", tj.Bits)
	}
	if tj.ChainLen <= 0 || tj.NChains <= 0 {
		return nil, fmt.Errorf("rainbow: bad table size %d×%d", tj.NChains, tj.ChainLen)
	}
	t := &Table{
		hash:     nfhash.Masked(hash, tj.Bits),
		bits:     tj.Bits,
		space:    space,
		chainLen: tj.ChainLen,
		seed:     tj.Seed,
		ends:     make(map[uint64][]uint64, len(tj.Ends)),
	}
	total := 0
	for _, e := range tj.Ends {
		if len(e.Starts) == 0 {
			return nil, fmt.Errorf("rainbow: end %#x with no starts", e.End)
		}
		if _, dup := t.ends[e.End]; dup {
			return nil, fmt.Errorf("rainbow: duplicate end %#x", e.End)
		}
		t.ends[e.End] = e.Starts
		total += len(e.Starts)
	}
	if total != tj.NChains {
		return nil, fmt.Errorf("rainbow: %d chains serialized, header says %d", total, tj.NChains)
	}
	t.nchains = total
	return t, nil
}

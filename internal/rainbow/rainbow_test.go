package rainbow

import (
	"encoding/json"
	"testing"

	"castan/internal/nfhash"
	"castan/internal/stats"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nfhash.TableHash, nfhash.RawSpace{Len: 4}, Config{Bits: 0}); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := Build(nfhash.TableHash, nfhash.RawSpace{Len: 4}, Config{Bits: 40}); err == nil {
		t.Error("bits=40 accepted")
	}
	if _, err := Build(nfhash.TableHash, nfhash.RawSpace{Len: 4}, Config{Bits: 12, Chains: 0, ChainLen: 10}); err == nil {
		t.Error("chains=0 accepted")
	}
}

func TestInvertFindsTruePreimages(t *testing.T) {
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0xc0a80101, DstPort: 80}
	cfg := DefaultConfig(14)
	tbl, err := Build(nfhash.TableHash, space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Bits() != 14 || tbl.Chains() == 0 {
		t.Fatalf("table shape: bits=%d chains=%d", tbl.Bits(), tbl.Chains())
	}
	hash := nfhash.Masked(nfhash.TableHash, 14)
	// Invert hashes of known keys: every returned candidate must be a true
	// preimage, and most lookups should succeed.
	rng := stats.NewRNG(5)
	found := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		target := hash(space.FromSeed(rng.Uint64()))
		keys := tbl.Invert(target, 3)
		if len(keys) > 0 {
			found++
		}
		for _, k := range keys {
			if hash(k) != target {
				t.Fatalf("false preimage: hash(%v) = %#x, want %#x", k, hash(k), target)
			}
			if len(k) != nfhash.FlowKeyLen || k[12] != 17 {
				t.Errorf("candidate outside tailored space: %v", k)
			}
		}
	}
	if found < trials*6/10 {
		t.Errorf("inversion succeeded only %d/%d times", found, trials)
	}
}

func TestInvertOne(t *testing.T) {
	space := nfhash.RawSpace{Len: 4}
	tbl, err := Build(nfhash.RingHash, space, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	hash := nfhash.Masked(nfhash.RingHash, 12)
	target := hash(space.FromSeed(1234))
	k, ok := tbl.InvertOne(target)
	if !ok {
		t.Skip("table missed this value; acceptable for a single probe")
	}
	if hash(k) != target {
		t.Fatalf("bad preimage")
	}
}

func TestInvertDistinctCandidates(t *testing.T) {
	space := nfhash.RawSpace{Len: 4}
	tbl, err := Build(nfhash.TableHash, space, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	hash := nfhash.Masked(nfhash.TableHash, 10)
	target := hash(space.FromSeed(7))
	keys := tbl.Invert(target, 5)
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[string(k)] {
			t.Error("duplicate candidate returned")
		}
		seen[string(k)] = true
	}
}

func TestCoverageReasonable(t *testing.T) {
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 1, DstPort: 2}
	tbl, err := Build(nfhash.TableHash, space, DefaultConfig(14))
	if err != nil {
		t.Fatal(err)
	}
	cov := tbl.Coverage(200, 99)
	if cov < 0.5 {
		t.Errorf("coverage %.2f too low for a 4x table", cov)
	}
	if cov > 1 {
		t.Errorf("coverage %.2f > 1", cov)
	}
}

func TestTailoringMatters(t *testing.T) {
	// A table tailored to one destination cannot produce keys for another
	// destination: all candidates it returns carry its own pinned fields.
	spaceA := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0x01010101, DstPort: 1}
	tbl, err := Build(nfhash.TableHash, spaceA, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	keys := tbl.Invert(0x123, 5)
	for _, k := range keys {
		if k[4] != 1 || k[5] != 1 || k[6] != 1 || k[7] != 1 {
			t.Errorf("candidate escaped the tailored space: %v", k)
		}
	}
}

// TestBuildWorkerCountInvariant asserts the determinism contract of the
// parallel build: any worker count produces the same table (same chain
// count, same end-hash buckets with the same start seeds in the same
// order) as the sequential one.
func TestBuildWorkerCountInvariant(t *testing.T) {
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0xc0a80101, DstPort: 80}
	cfg := DefaultConfig(12)
	cfg.Workers = 1
	ref, err := Build(nfhash.TableHash, space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		cfg.Workers = w
		tbl, err := Build(nfhash.TableHash, space, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.nchains != ref.nchains || len(tbl.ends) != len(ref.ends) {
			t.Fatalf("w=%d: %d chains / %d ends, want %d / %d",
				w, tbl.nchains, len(tbl.ends), ref.nchains, len(ref.ends))
		}
		for end, starts := range ref.ends {
			got := tbl.ends[end]
			if len(got) != len(starts) {
				t.Fatalf("w=%d: end %x has %d starts, want %d", w, end, len(got), len(starts))
			}
			for i := range starts {
				if got[i] != starts[i] {
					t.Fatalf("w=%d: end %x start[%d] = %x, want %x", w, end, i, got[i], starts[i])
				}
			}
		}
	}
}

func TestSelfCheckPassesOnHealthyTable(t *testing.T) {
	tbl, err := Build(nfhash.TableHash, nfhash.RawSpace{Len: 4}, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ChainLen() != DefaultConfig(12).ChainLen {
		t.Fatalf("ChainLen = %d", tbl.ChainLen())
	}
	if err := tbl.SelfCheck(0); err != nil {
		t.Fatalf("full self-check failed on healthy table: %v", err)
	}
	if err := tbl.SelfCheck(8); err != nil {
		t.Fatalf("sampled self-check failed: %v", err)
	}
}

func TestSerializeLoadRoundTrip(t *testing.T) {
	space := nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0xc0a80101, DstPort: 80}
	tbl, err := Build(nfhash.TableHash, space, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tbl.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	// Serialization is deterministic despite the map-backed index.
	again, err := tbl.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatal("repeated Serialize produced different bytes")
	}
	got, err := LoadTable(data, nfhash.TableHash, space)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bits() != tbl.Bits() || got.Chains() != tbl.Chains() || got.ChainLen() != tbl.ChainLen() {
		t.Fatalf("shape changed across round trip: %d/%d/%d", got.Bits(), got.Chains(), got.ChainLen())
	}
	if err := got.SelfCheck(0); err != nil {
		t.Fatalf("loaded table fails self-check: %v", err)
	}
	// The loaded table answers lookups identically.
	hash := nfhash.Masked(nfhash.TableHash, 12)
	rng := stats.NewRNG(9)
	for i := 0; i < 50; i++ {
		target := hash(space.FromSeed(rng.Uint64()))
		want := tbl.Invert(target, 3)
		have := got.Invert(target, 3)
		if len(want) != len(have) {
			t.Fatalf("Invert(%#x): %d candidates, want %d", target, len(have), len(want))
		}
		for j := range want {
			if string(want[j]) != string(have[j]) {
				t.Fatalf("Invert(%#x) candidate %d differs", target, j)
			}
		}
	}
	// Round-tripping the loaded table reproduces the same bytes.
	data2, err := got.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("serialize(load(serialize(t))) != serialize(t)")
	}
}

func TestLoadTableRejectsMalformed(t *testing.T) {
	space := nfhash.RawSpace{Len: 4}
	cases := map[string]string{
		"garbage":        `not json`,
		"zero-bits":      `{"bits":0,"chain_len":8,"seed":1,"nchains":1,"ends":[{"end":1,"starts":[2]}]}`,
		"wide-bits":      `{"bits":40,"chain_len":8,"seed":1,"nchains":1,"ends":[{"end":1,"starts":[2]}]}`,
		"zero-chain-len": `{"bits":12,"chain_len":0,"seed":1,"nchains":1,"ends":[{"end":1,"starts":[2]}]}`,
		"count-mismatch": `{"bits":12,"chain_len":8,"seed":1,"nchains":3,"ends":[{"end":1,"starts":[2]}]}`,
		"empty-starts":   `{"bits":12,"chain_len":8,"seed":1,"nchains":1,"ends":[{"end":1,"starts":[]}]}`,
		"duplicate-end":  `{"bits":12,"chain_len":8,"seed":1,"nchains":2,"ends":[{"end":1,"starts":[2]},{"end":1,"starts":[3]}]}`,
	}
	for name, data := range cases {
		if _, err := LoadTable([]byte(data), nfhash.TableHash, space); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestLoadedTamperedTableFailsSelfCheck exercises the trust boundary the
// store relies on: bytes that decode fine but carry wrong chain data load
// without error, and only SelfCheck exposes them — which is why callers
// must self-check every table loaded from disk before using it.
func TestLoadedTamperedTableFailsSelfCheck(t *testing.T) {
	space := nfhash.RawSpace{Len: 4}
	tbl, err := Build(nfhash.TableHash, space, DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tbl.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		t.Fatal(err)
	}
	for i := range tj.Ends {
		tj.Ends[i].End ^= 0xdeadbeef
	}
	tampered, err := json.Marshal(tj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(tampered, nfhash.TableHash, space)
	if err != nil {
		t.Fatalf("structurally valid tampered table must load: %v", err)
	}
	if err := got.SelfCheck(1); err == nil {
		t.Fatal("self-check passed on tampered table")
	}
}

func TestSelfCheckCatchesCorruption(t *testing.T) {
	cfg := DefaultConfig(12)
	// Corrupt every other chain end; the table must still build and
	// answer lookups (possibly wrongly), but SelfCheck must notice.
	cfg.Corrupt = func(chain int, end uint64) uint64 {
		if chain%2 == 0 {
			return end ^ 0xdeadbeef
		}
		return end
	}
	tbl, err := Build(nfhash.TableHash, nfhash.RawSpace{Len: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SelfCheck(0); err == nil {
		t.Fatal("self-check passed on corrupted table")
	}
	// Chain 0 is corrupted, so even a 1-chain spot check catches it.
	if err := tbl.SelfCheck(1); err == nil {
		t.Fatal("spot check missed corrupted chain 0")
	}
}

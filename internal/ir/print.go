package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders the instruction in a compact assembly-like syntax.
func (i *Instr) Disassemble() string {
	var s string
	switch i.Op {
	case OpConst:
		s = fmt.Sprintf("r%d = %#x", i.Dst, i.Imm)
	case OpMov:
		s = fmt.Sprintf("r%d = r%d", i.Dst, i.A)
	case OpBin:
		s = fmt.Sprintf("r%d = %s r%d, r%d", i.Dst, i.Bin, i.A, i.B)
	case OpCmp:
		s = fmt.Sprintf("r%d = %s r%d, r%d", i.Dst, i.Pred, i.A, i.B)
	case OpSelect:
		s = fmt.Sprintf("r%d = select r%d, r%d, r%d", i.Dst, i.A, i.B, i.C)
	case OpLoad:
		s = fmt.Sprintf("r%d = load%d [r%d+%#x]", i.Dst, i.Size*8, i.A, i.Imm)
	case OpStore:
		s = fmt.Sprintf("store%d [r%d+%#x], r%d", i.Size*8, i.A, i.Imm, i.B)
	case OpBr:
		s = fmt.Sprintf("br %s", i.Blk0.Name)
	case OpCondBr:
		s = fmt.Sprintf("condbr r%d, %s, %s", i.A, i.Blk0.Name, i.Blk1.Name)
	case OpCall:
		args := make([]string, len(i.Args))
		for k, a := range i.Args {
			args[k] = fmt.Sprintf("r%d", a)
		}
		s = fmt.Sprintf("r%d = call %s(%s)", i.Dst, i.Callee.Name, strings.Join(args, ", "))
	case OpRet:
		if i.A == NoReg {
			s = "ret"
		} else {
			s = fmt.Sprintf("ret r%d", i.A)
		}
	case OpAlloc:
		s = fmt.Sprintf("r%d = alloc r%d", i.Dst, i.A)
	case OpHavoc:
		s = fmt.Sprintf("r%d = havoc#%d key=[r%d..+%d]", i.Dst, i.HashID, i.A, i.Imm)
	default:
		s = fmt.Sprintf("?op%d", i.Op)
	}
	if i.Comment != "" {
		s += " ; " + i.Comment
	}
	return s
}

// Disassemble renders the whole function.
func (f *Func) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d regs):\n", f.Name, f.NumParams, f.NumRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in.Disassemble())
		}
	}
	return b.String()
}

// Disassemble renders the whole module, functions sorted by name.
func (m *Module) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	var gnames []string
	for n := range m.Globals {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		g := m.Globals[n]
		fmt.Fprintf(&b, "global %s: %d bytes @ %#x\n", g.Name, g.Size, g.Addr)
	}
	var fnames []string
	for n := range m.Funcs {
		fnames = append(fnames, n)
	}
	sort.Strings(fnames)
	for _, n := range fnames {
		b.WriteString(m.Funcs[n].Disassemble())
	}
	return b.String()
}

// NumInstrs counts instructions across the module.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

package ir

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzReader drains the fuzz input as a stream of structured draws,
// yielding zeros once exhausted so every prefix decodes to something.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.byte())
	}
	return v
}

// decodeModule assembles a module directly from fuzz bytes, bypassing the
// builder so Validate sees raw structures. The decoder biases toward
// well-formed output (in-range registers, terminated blocks, calls only
// "downward" so the graph stays acyclic) but low bits of the stream can
// corrupt any of those choices — the interesting inputs straddle the
// valid/invalid boundary.
func decodeModule(data []byte) *Module {
	r := &fuzzReader{data: data}
	m := NewModule("fuzz")

	for i := 0; i < int(r.byte()%3); i++ {
		// Bounded sizes keep Layout far from the globals/heap boundary,
		// which is a documented panic, not a Validate concern.
		m.AddGlobal(fmt.Sprintf("g%d", i), uint64(r.byte())%1024+1, 1<<(r.byte()%7))
	}
	if r.byte()%2 == 1 {
		m.AddHash("h", int(r.byte()%64)+1, func(key []byte) uint64 {
			var h uint64 = 14695981039346656037
			for _, b := range key {
				h = (h ^ uint64(b)) * 1099511628211
			}
			return h
		})
	}

	nFuncs := int(r.byte()%3) + 1
	funcs := make([]*Func, nFuncs)
	for i := range funcs {
		numRegs := int(r.byte()%8) + 1
		f := &Func{
			Name:      fmt.Sprintf("f%d", i),
			NumRegs:   numRegs,
			NumParams: int(r.byte()) % (numRegs + 1),
			Mod:       m,
		}
		m.Funcs[f.Name] = f
		funcs[i] = f
	}

	for fi, f := range funcs {
		nBlocks := int(r.byte()%4) + 1
		for bi := 0; bi < nBlocks; bi++ {
			f.Blocks = append(f.Blocks, &Block{
				Name:  fmt.Sprintf("b%d", bi),
				Index: bi,
				Fn:    f,
			})
		}
		reg := func() Reg {
			b := r.byte()
			if b == 0xff {
				return NoReg
			}
			if b >= 0xf0 {
				return Reg(int32(b)) // deliberately out of range
			}
			return Reg(int(b) % f.NumRegs)
		}
		target := func() *Block {
			b := r.byte()
			if b >= 0xf8 {
				return nil // deliberately missing
			}
			return f.Blocks[int(b)%len(f.Blocks)]
		}
		for _, blk := range f.Blocks {
			for n := int(r.byte() % 5); n > 0; n-- {
				in := &Instr{Op: Opcode(r.byte() % 16)} // a few values past OpHavoc
				switch in.Op {
				case OpConst:
					in.Dst, in.Imm = reg(), r.u64()
				case OpMov:
					in.Dst, in.A = reg(), reg()
				case OpBin:
					in.Dst, in.A, in.B, in.Bin = reg(), reg(), reg(), BinOp(r.byte()%12)
				case OpCmp:
					in.Dst, in.A, in.B, in.Pred = reg(), reg(), reg(), Pred(r.byte()%8)
				case OpSelect:
					in.Dst, in.A, in.B, in.C = reg(), reg(), reg(), reg()
				case OpLoad:
					in.Dst, in.A, in.Imm, in.Size = reg(), reg(), uint64(r.byte()), 1<<(r.byte()%4)
					if r.byte()%8 == 0 {
						in.Size = r.byte() // invalid width
					}
				case OpStore:
					in.A, in.B, in.Imm, in.Size = reg(), reg(), uint64(r.byte()), 1<<(r.byte()%4)
				case OpBr:
					in.Blk0 = target()
				case OpCondBr:
					in.A, in.Blk0, in.Blk1 = reg(), target(), target()
				case OpCall:
					// Call "downward" by default so the graph stays acyclic;
					// a corrupting draw points anywhere, including backward.
					ci := fi + 1 + int(r.byte())%nFuncs
					if r.byte()%8 == 0 {
						ci = int(r.byte()) % nFuncs
					}
					if ci < nFuncs {
						in.Callee = funcs[ci]
						in.Dst = reg()
						nArgs := in.Callee.NumParams
						if r.byte()%8 == 0 {
							nArgs = int(r.byte() % 4) // possibly wrong arity
						}
						for a := 0; a < nArgs; a++ {
							in.Args = append(in.Args, reg())
						}
					} else {
						in.Op = OpConst
						in.Dst, in.Imm = reg(), r.u64()
					}
				case OpRet:
					in.A = reg()
				case OpAlloc:
					in.Dst, in.A = reg(), reg()
				case OpHavoc:
					in.Dst, in.A, in.Imm, in.HashID = reg(), reg(), uint64(r.byte()%64), int(r.byte()%3)-1
				}
				blk.Instrs = append(blk.Instrs, in)
			}
			// Usually terminate; a corrupting draw leaves the block open or
			// buries the terminator mid-block (instrs appended above follow).
			if r.byte()%16 != 0 {
				switch r.byte() % 3 {
				case 0:
					blk.Instrs = append(blk.Instrs, &Instr{Op: OpRet, A: reg()})
				case 1:
					blk.Instrs = append(blk.Instrs, &Instr{Op: OpBr, Blk0: target()})
				case 2:
					blk.Instrs = append(blk.Instrs, &Instr{Op: OpCondBr, A: reg(), Blk0: target(), Blk1: target()})
				}
			}
		}
	}
	m.Layout()
	return m
}

// FuzzModuleValidate drives Validate over arbitrary decoded modules:
// whatever the input, Validate must return an error or nil, never panic.
// Modules it accepts must survive the Disassemble round-trip — stable,
// non-empty text naming every function — and stay valid on re-check
// (Validate must not mutate what it inspects).
func FuzzModuleValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 0, 2, 1, 3, 0, 1})
	f.Add([]byte{2, 8, 3, 1, 40, 3, 2, 4, 2, 1, 4, 5, 6, 7, 8, 9, 0xff, 0xf0, 0xf8})
	f.Add(bytes.Repeat([]byte{7, 13, 254}, 40))
	f.Add([]byte{1, 200, 2, 1, 5, 3, 3, 2, 4, 9, 9, 9, 12, 0, 1, 30, 0, 2, 2, 2, 1, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := decodeModule(data)
		if err := m.Validate(); err != nil {
			return // structurally broken input, correctly rejected
		}
		dis := m.Disassemble()
		if dis == "" {
			t.Fatal("valid module disassembled to nothing")
		}
		for name := range m.Funcs {
			if !bytes.Contains([]byte(dis), []byte(name)) {
				t.Fatalf("disassembly omits function %s:\n%s", name, dis)
			}
		}
		if again := m.Disassemble(); again != dis {
			t.Fatalf("disassembly unstable:\n--- first\n%s\n--- second\n%s", dis, again)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("module turned invalid on re-validation: %v", err)
		}
	})
}

// Package ir defines the intermediate representation in which every
// network function in this repository is written. It plays the role LLVM
// bitcode plays in the paper: a low-level, explicitly-addressed
// instruction stream that is *both* executed concretely by the testbed
// interpreter (internal/interp) and explored symbolically by CASTAN
// (internal/symbex).
//
// The machine model is deliberately simple:
//
//   - 64-bit virtual registers, unlimited per function, non-SSA (registers
//     may be reassigned, so no phi nodes are needed);
//   - a byte-addressable memory with big-endian multi-byte accesses
//     (network byte order, so header fields load directly);
//   - functions with by-value register arguments and a single return value;
//   - structured control flow lowered to basic blocks with br/condbr/ret;
//   - a bump-allocating heap (OpAlloc) for dynamic state such as tree
//     nodes;
//   - OpHavoc, the IR form of the paper's castan_havoc annotation: in
//     concrete execution it computes a registered hash over a memory
//     region; under symbex it produces a fresh unconstrained symbol and
//     records the (key, output) pair for later rainbow-table
//     reconciliation (§3.5).
package ir

import (
	"fmt"
	"sort"
)

// Address-space layout. The loader assigns global addresses from
// GlobalBase; the interpreter's bump allocator starts at HeapBase; the
// harness writes each incoming packet at PacketBase.
const (
	PacketBase = uint64(0x0000_2000)
	PacketSlot = uint64(0x800) // maximum frame size the harness supports
	GlobalBase = uint64(0x1000_0000)
	HeapBase   = uint64(0x4000_0000)
)

// Reg is a virtual register index within a function frame.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Opcode enumerates instruction kinds.
type Opcode uint8

// Instruction opcodes.
const (
	OpConst  Opcode = iota // Dst = Imm
	OpMov                  // Dst = A
	OpBin                  // Dst = A <Bin> B
	OpCmp                  // Dst = A <Pred> B (0 or 1)
	OpSelect               // Dst = A != 0 ? B : C
	OpLoad                 // Dst = mem[A + Imm], Size bytes, big-endian
	OpStore                // mem[A + Imm] = B, Size bytes, big-endian
	OpBr                   // goto Blk0
	OpCondBr               // A != 0 ? goto Blk0 : goto Blk1
	OpCall                 // Dst = Callee(Args...)
	OpRet                  // return A (or 0 if A == NoReg)
	OpAlloc                // Dst = heap allocation of A bytes, zeroed
	OpHavoc                // Dst = hash[HashID](mem[A .. A+Imm))
)

var opcodeNames = [...]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpCmp: "cmp",
	OpSelect: "select", OpLoad: "load", OpStore: "store", OpBr: "br",
	OpCondBr: "condbr", OpCall: "call", OpRet: "ret", OpAlloc: "alloc",
	OpHavoc: "havoc",
}

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// BinOp enumerates arithmetic/logical operations for OpBin.
type BinOp uint8

// Binary operations. Division by zero yields 0; remainder by zero yields
// the dividend; shifts of 64 or more yield 0 — total functions, so the
// interpreter and symbex never trap.
const (
	Add BinOp = iota
	Sub
	Mul
	UDiv
	URem
	And
	Or
	Xor
	Shl
	Lshr
)

var binNames = [...]string{"add", "sub", "mul", "udiv", "urem", "and", "or", "xor", "shl", "lshr"}

// String returns the operation mnemonic.
func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Eval applies the operation to concrete values.
func (b BinOp) Eval(x, y uint64) uint64 {
	switch b {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case UDiv:
		if y == 0 {
			return 0
		}
		return x / y
	case URem:
		if y == 0 {
			return x
		}
		return x % y
	case And:
		return x & y
	case Or:
		return x | y
	case Xor:
		return x ^ y
	case Shl:
		if y >= 64 {
			return 0
		}
		return x << y
	case Lshr:
		if y >= 64 {
			return 0
		}
		return x >> y
	}
	panic("ir: bad binop")
}

// Pred enumerates comparison predicates for OpCmp. All unsigned.
type Pred uint8

// Comparison predicates.
const (
	Eq Pred = iota
	Ne
	Ult
	Ule
	Ugt
	Uge
)

var predNames = [...]string{"eq", "ne", "ult", "ule", "ugt", "uge"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Eval applies the predicate to concrete values.
func (p Pred) Eval(x, y uint64) uint64 {
	var b bool
	switch p {
	case Eq:
		b = x == y
	case Ne:
		b = x != y
	case Ult:
		b = x < y
	case Ule:
		b = x <= y
	case Ugt:
		b = x > y
	case Uge:
		b = x >= y
	default:
		panic("ir: bad pred")
	}
	if b {
		return 1
	}
	return 0
}

// Instr is a single instruction. Which fields are meaningful depends on Op;
// see the Opcode constants.
type Instr struct {
	Op   Opcode
	Bin  BinOp
	Pred Pred
	Dst  Reg
	A    Reg
	B    Reg
	C    Reg
	Imm  uint64
	Size uint8 // load/store width in bytes: 1, 2, 4 or 8

	Callee *Func
	Args   []Reg

	Blk0 *Block
	Blk1 *Block

	HashID int // OpHavoc: index into Module.Hashes

	Comment string // optional, for disassembly
}

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool {
	switch i.Op {
	case OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// Def returns the register the instruction assigns, or NoReg if it
// assigns none (stores, branches, returns, and calls whose result is
// discarded).
func (i *Instr) Def() Reg {
	switch i.Op {
	case OpConst, OpMov, OpBin, OpCmp, OpSelect, OpLoad, OpAlloc, OpHavoc:
		return i.Dst
	case OpCall:
		return i.Dst // may be NoReg when the result is discarded
	}
	return NoReg
}

// Uses calls fn for every register the instruction reads. The order is
// fixed (A, B, C, then call arguments), so traversals are deterministic.
func (i *Instr) Uses(fn func(Reg)) {
	use := func(r Reg) {
		if r != NoReg {
			fn(r)
		}
	}
	switch i.Op {
	case OpConst:
	case OpMov:
		use(i.A)
	case OpBin, OpCmp:
		use(i.A)
		use(i.B)
	case OpSelect:
		use(i.A)
		use(i.B)
		use(i.C)
	case OpLoad:
		use(i.A)
	case OpStore:
		use(i.A)
		use(i.B)
	case OpBr:
	case OpCondBr:
		use(i.A)
	case OpCall:
		for _, a := range i.Args {
			use(a)
		}
	case OpRet:
		use(i.A)
	case OpAlloc:
		use(i.A)
	case OpHavoc:
		use(i.A)
	}
}

// Block is a basic block: straight-line instructions ending in exactly one
// terminator.
type Block struct {
	Name   string
	Index  int // position within Func.Blocks
	Instrs []*Instr
	Fn     *Func
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Blk0}
	case OpCondBr:
		return []*Block{t.Blk0, t.Blk1}
	}
	return nil
}

// Func is an IR function.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block
	Mod       *Module
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Global is a statically allocated memory region.
type Global struct {
	Name string
	Size uint64
	// Align requests address alignment (power of two). Zero means 64
	// (one cache line).
	Align uint64
	// Addr is assigned by Module.Layout.
	Addr uint64
}

// HashFn is a concrete hash function registered with the module and
// referenced by OpHavoc instructions. Bits says how wide the output is.
type HashFn struct {
	Name string
	Bits int
	Fn   func(key []byte) uint64
}

// Module is a compilation unit: functions, globals, and registered hash
// functions.
type Module struct {
	Name    string
	Funcs   map[string]*Func
	Globals map[string]*Global
	Hashes  []HashFn

	laidOut bool
	heapTop uint64
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:    name,
		Funcs:   map[string]*Func{},
		Globals: map[string]*Global{},
	}
}

// AddGlobal declares a global region. Layout assigns its address.
func (m *Module) AddGlobal(name string, size, align uint64) *Global {
	if _, dup := m.Globals[name]; dup {
		panic("ir: duplicate global " + name)
	}
	g := &Global{Name: name, Size: size, Align: align}
	m.Globals[name] = g
	return g
}

// AddHash registers a hash function, returning its HashID.
func (m *Module) AddHash(name string, bits int, fn func([]byte) uint64) int {
	m.Hashes = append(m.Hashes, HashFn{Name: name, Bits: bits, Fn: fn})
	return len(m.Hashes) - 1
}

// Layout assigns addresses to globals (deterministically, sorted by name)
// and freezes the module. It is idempotent.
func (m *Module) Layout() {
	if m.laidOut {
		return
	}
	names := make([]string, 0, len(m.Globals))
	for n := range m.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	addr := GlobalBase
	for _, n := range names {
		g := m.Globals[n]
		align := g.Align
		if align == 0 {
			align = 64
		}
		addr = (addr + align - 1) &^ (align - 1)
		g.Addr = addr
		addr += g.Size
	}
	if addr > HeapBase {
		panic(fmt.Sprintf("ir: globals overflow into heap: top %#x", addr))
	}
	m.laidOut = true
}

// Validate checks structural invariants: every block terminated by a
// final terminator, block indices consistent with their position, branch
// targets inside the enclosing function, every register operand (defs,
// uses, call arguments) within [0, NumRegs), call graph acyclic (the
// interpreter and symbex assume bounded stacks), call arities consistent.
func (m *Module) Validate() error {
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %s has no blocks", f.Name)
		}
		if f.NumParams < 0 || f.NumRegs < f.NumParams {
			return fmt.Errorf("ir: function %s: %d regs cannot hold %d params",
				f.Name, f.NumRegs, f.NumParams)
		}
		for idx, b := range f.Blocks {
			if b.Fn != f {
				return fmt.Errorf("ir: %s/%s: block belongs to another function", f.Name, b.Name)
			}
			if b.Index != idx {
				return fmt.Errorf("ir: %s/%s: block index %d at position %d", f.Name, b.Name, b.Index, idx)
			}
			if b.Terminator() == nil {
				return fmt.Errorf("ir: %s/%s not terminated", f.Name, b.Name)
			}
			for i, in := range b.Instrs {
				if in.IsTerminator() && i != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s/%s: terminator mid-block", f.Name, b.Name)
				}
				if err := m.checkInstr(f, b, in); err != nil {
					return err
				}
			}
		}
	}
	return m.checkAcyclicCalls()
}

// checkTarget verifies a branch target is a live block of f: non-nil and
// present in f.Blocks at its recorded index (a pruned or foreign block
// fails even if its Fn pointer still names f).
func checkTarget(f *Func, t *Block) bool {
	return t != nil && t.Fn == f && t.Index >= 0 && t.Index < len(f.Blocks) && f.Blocks[t.Index] == t
}

func (m *Module) checkInstr(f *Func, b *Block, in *Instr) error {
	chk := func(r Reg, what string) error {
		if int(r) < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s/%s: %s %s register %d out of range [0,%d)",
				f.Name, b.Name, in.Op, what, r, f.NumRegs)
		}
		return nil
	}
	// Every register the instruction reads or writes must be in range,
	// whatever the opcode. Optional operands are NoReg, which Def/Uses
	// already skip — any other out-of-range value is rejected here.
	if d := in.Def(); d != NoReg {
		if err := chk(d, "dst"); err != nil {
			return err
		}
	}
	var useErr error
	in.Uses(func(r Reg) {
		if useErr == nil {
			useErr = chk(r, "src")
		}
	})
	if useErr != nil {
		return useErr
	}
	// Opcode-specific structure.
	switch in.Op {
	case OpConst, OpBin, OpCmp, OpSelect, OpAlloc:
		if in.Dst == NoReg {
			return fmt.Errorf("ir: %s/%s: %s missing dst", f.Name, b.Name, in.Op)
		}
	case OpMov:
		if in.Dst == NoReg || in.A == NoReg {
			return fmt.Errorf("ir: %s/%s: mov missing operand", f.Name, b.Name)
		}
	case OpLoad:
		if !validSize(in.Size) {
			return fmt.Errorf("ir: %s/%s: load size %d", f.Name, b.Name, in.Size)
		}
		if in.Dst == NoReg || in.A == NoReg {
			return fmt.Errorf("ir: %s/%s: load missing operand", f.Name, b.Name)
		}
	case OpStore:
		if !validSize(in.Size) {
			return fmt.Errorf("ir: %s/%s: store size %d", f.Name, b.Name, in.Size)
		}
		if in.A == NoReg || in.B == NoReg {
			return fmt.Errorf("ir: %s/%s: store missing operand", f.Name, b.Name)
		}
	case OpBr:
		if !checkTarget(f, in.Blk0) {
			return fmt.Errorf("ir: %s/%s: br target invalid", f.Name, b.Name)
		}
	case OpCondBr:
		if in.A == NoReg {
			return fmt.Errorf("ir: %s/%s: condbr missing condition", f.Name, b.Name)
		}
		if !checkTarget(f, in.Blk0) || !checkTarget(f, in.Blk1) {
			return fmt.Errorf("ir: %s/%s: condbr targets invalid", f.Name, b.Name)
		}
	case OpCall:
		if in.Callee == nil {
			return fmt.Errorf("ir: %s/%s: call without callee", f.Name, b.Name)
		}
		if m.Funcs[in.Callee.Name] != in.Callee {
			return fmt.Errorf("ir: %s/%s: call to %s, which is not in the module",
				f.Name, b.Name, in.Callee.Name)
		}
		if len(in.Args) != in.Callee.NumParams {
			return fmt.Errorf("ir: %s/%s: call %s with %d args, want %d",
				f.Name, b.Name, in.Callee.Name, len(in.Args), in.Callee.NumParams)
		}
	case OpRet:
	case OpHavoc:
		if in.HashID < 0 || in.HashID >= len(m.Hashes) {
			return fmt.Errorf("ir: %s/%s: havoc hash id %d out of range", f.Name, b.Name, in.HashID)
		}
		if in.Dst == NoReg || in.A == NoReg {
			return fmt.Errorf("ir: %s/%s: havoc missing operand", f.Name, b.Name)
		}
	default:
		return fmt.Errorf("ir: %s/%s: unknown opcode %d", f.Name, b.Name, in.Op)
	}
	return nil
}

func validSize(s uint8) bool { return s == 1 || s == 2 || s == 4 || s == 8 }

func (m *Module) checkAcyclicCalls() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Func]int{}
	var visit func(f *Func) error
	visit = func(f *Func) error {
		color[f] = gray
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpCall {
					continue
				}
				switch color[in.Callee] {
				case gray:
					return fmt.Errorf("ir: recursive call cycle through %s", in.Callee.Name)
				case white:
					if err := visit(in.Callee); err != nil {
						return err
					}
				}
			}
		}
		color[f] = black
		return nil
	}
	for _, f := range m.Funcs {
		if color[f] == white {
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

package ir

import "fmt"

// FuncBuilder constructs one IR function with structured control-flow
// helpers, so that non-trivial data-structure code (tries, red-black
// trees) can be written readably in Go and lowered to basic blocks.
//
// Typical use:
//
//	fb := mod.NewFunc("lookup", 1)
//	key := fb.Param(0)
//	node := fb.Var(fb.LoadG(root, 0, 8))
//	fb.While(func() Reg { return fb.CmpNe(node.R(), fb.Const(0)) }, func() {
//	    ...
//	})
//	fb.Ret(result)
//	fb.Seal()
type FuncBuilder struct {
	f      *Func
	cur    *Block
	nblk   int
	sealed bool
	loops  []*loopCtx
}

type loopCtx struct {
	head *Block // continue target
	exit *Block // break target
}

// NewFunc starts building a function with the given number of parameters.
// Parameters occupy registers 0..numParams-1.
func (m *Module) NewFunc(name string, numParams int) *FuncBuilder {
	if _, dup := m.Funcs[name]; dup {
		panic("ir: duplicate function " + name)
	}
	f := &Func{Name: name, NumParams: numParams, NumRegs: numParams, Mod: m}
	m.Funcs[name] = f
	fb := &FuncBuilder{f: f}
	fb.cur = fb.newBlock("entry")
	return fb
}

// Func returns the function under construction.
func (fb *FuncBuilder) Func() *Func { return fb.f }

func (fb *FuncBuilder) newBlock(name string) *Block {
	b := &Block{Name: fmt.Sprintf("%s%d", name, fb.nblk), Index: len(fb.f.Blocks), Fn: fb.f}
	fb.nblk++
	fb.f.Blocks = append(fb.f.Blocks, b)
	return b
}

// NewReg allocates a fresh virtual register.
func (fb *FuncBuilder) NewReg() Reg {
	r := Reg(fb.f.NumRegs)
	fb.f.NumRegs++
	return r
}

// Param returns the register holding parameter i.
func (fb *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= fb.f.NumParams {
		panic("ir: bad param index")
	}
	return Reg(i)
}

func (fb *FuncBuilder) emit(in *Instr) {
	if fb.sealed {
		panic("ir: emit on sealed function " + fb.f.Name)
	}
	if fb.cur.Terminator() != nil {
		// Dead code after a terminator: open an unreachable block so the
		// builder API stays composable (e.g. Ret inside both If arms).
		fb.cur = fb.newBlock("dead")
	}
	fb.cur.Instrs = append(fb.cur.Instrs, in)
}

// Const materializes a constant into a fresh register.
func (fb *FuncBuilder) Const(v uint64) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpConst, Dst: dst, Imm: v})
	return dst
}

// Mov copies src into dst (register reassignment).
func (fb *FuncBuilder) Mov(dst, src Reg) {
	fb.emit(&Instr{Op: OpMov, Dst: dst, A: src})
}

// MovImm assigns a constant to an existing register.
func (fb *FuncBuilder) MovImm(dst Reg, v uint64) {
	fb.emit(&Instr{Op: OpConst, Dst: dst, Imm: v})
}

// Bin emits dst = a <op> b into a fresh register.
func (fb *FuncBuilder) Bin(op BinOp, a, b Reg) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpBin, Bin: op, Dst: dst, A: a, B: b})
	return dst
}

// Arithmetic conveniences.

// Add emits a+b.
func (fb *FuncBuilder) Add(a, b Reg) Reg { return fb.Bin(Add, a, b) }

// Sub emits a-b.
func (fb *FuncBuilder) Sub(a, b Reg) Reg { return fb.Bin(Sub, a, b) }

// Mul emits a*b.
func (fb *FuncBuilder) Mul(a, b Reg) Reg { return fb.Bin(Mul, a, b) }

// And emits a&b.
func (fb *FuncBuilder) And(a, b Reg) Reg { return fb.Bin(And, a, b) }

// Or emits a|b.
func (fb *FuncBuilder) Or(a, b Reg) Reg { return fb.Bin(Or, a, b) }

// Xor emits a^b.
func (fb *FuncBuilder) Xor(a, b Reg) Reg { return fb.Bin(Xor, a, b) }

// Shl emits a<<b.
func (fb *FuncBuilder) Shl(a, b Reg) Reg { return fb.Bin(Shl, a, b) }

// Lshr emits a>>b.
func (fb *FuncBuilder) Lshr(a, b Reg) Reg { return fb.Bin(Lshr, a, b) }

// URem emits a%b.
func (fb *FuncBuilder) URem(a, b Reg) Reg { return fb.Bin(URem, a, b) }

// UDiv emits a/b.
func (fb *FuncBuilder) UDiv(a, b Reg) Reg { return fb.Bin(UDiv, a, b) }

// AddImm emits a + constant.
func (fb *FuncBuilder) AddImm(a Reg, v uint64) Reg { return fb.Add(a, fb.Const(v)) }

// AndImm emits a & constant.
func (fb *FuncBuilder) AndImm(a Reg, v uint64) Reg { return fb.And(a, fb.Const(v)) }

// ShlImm emits a << constant.
func (fb *FuncBuilder) ShlImm(a Reg, v uint64) Reg { return fb.Shl(a, fb.Const(v)) }

// LshrImm emits a >> constant.
func (fb *FuncBuilder) LshrImm(a Reg, v uint64) Reg { return fb.Lshr(a, fb.Const(v)) }

// MulImm emits a * constant.
func (fb *FuncBuilder) MulImm(a Reg, v uint64) Reg { return fb.Mul(a, fb.Const(v)) }

// Cmp emits dst = a <pred> b.
func (fb *FuncBuilder) Cmp(p Pred, a, b Reg) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpCmp, Pred: p, Dst: dst, A: a, B: b})
	return dst
}

// Comparison conveniences.

// CmpEq emits a==b.
func (fb *FuncBuilder) CmpEq(a, b Reg) Reg { return fb.Cmp(Eq, a, b) }

// CmpNe emits a!=b.
func (fb *FuncBuilder) CmpNe(a, b Reg) Reg { return fb.Cmp(Ne, a, b) }

// CmpUlt emits a<b.
func (fb *FuncBuilder) CmpUlt(a, b Reg) Reg { return fb.Cmp(Ult, a, b) }

// CmpUle emits a<=b.
func (fb *FuncBuilder) CmpUle(a, b Reg) Reg { return fb.Cmp(Ule, a, b) }

// CmpEqImm emits a == constant.
func (fb *FuncBuilder) CmpEqImm(a Reg, v uint64) Reg { return fb.CmpEq(a, fb.Const(v)) }

// CmpNeImm emits a != constant.
func (fb *FuncBuilder) CmpNeImm(a Reg, v uint64) Reg { return fb.CmpNe(a, fb.Const(v)) }

// Select emits dst = cond ? b : c.
func (fb *FuncBuilder) Select(cond, b, c Reg) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpSelect, Dst: dst, A: cond, B: b, C: c})
	return dst
}

// Load emits dst = mem[addr+off] of size bytes (big-endian).
func (fb *FuncBuilder) Load(addr Reg, off uint64, size uint8) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpLoad, Dst: dst, A: addr, Imm: off, Size: size})
	return dst
}

// Store emits mem[addr+off] = val of size bytes (big-endian).
func (fb *FuncBuilder) Store(addr Reg, off uint64, val Reg, size uint8) {
	fb.emit(&Instr{Op: OpStore, A: addr, B: val, Imm: off, Size: size})
}

// GlobalAddr materializes the address of a global. The module must contain
// the global; the address is resolved at Layout time, so the builder emits
// a const that the loader patches. To keep things simple we require Layout
// before building functions that reference globals.
func (fb *FuncBuilder) GlobalAddr(g *Global) Reg {
	if g.Addr == 0 {
		panic("ir: GlobalAddr before Module.Layout for " + g.Name)
	}
	r := fb.Const(g.Addr)
	return r
}

// Call emits dst = callee(args...).
func (fb *FuncBuilder) Call(callee *Func, args ...Reg) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpCall, Dst: dst, Callee: callee, Args: args})
	return dst
}

// Ret emits a return of r (use NoReg for "return 0").
func (fb *FuncBuilder) Ret(r Reg) {
	fb.emit(&Instr{Op: OpRet, A: r})
}

// RetImm returns a constant.
func (fb *FuncBuilder) RetImm(v uint64) {
	fb.Ret(fb.Const(v))
}

// Alloc emits a heap allocation of size bytes (zeroed), returning its
// address.
func (fb *FuncBuilder) Alloc(size Reg) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpAlloc, Dst: dst, A: size})
	return dst
}

// AllocImm allocates a constant number of bytes.
func (fb *FuncBuilder) AllocImm(size uint64) Reg {
	return fb.Alloc(fb.Const(size))
}

// Havoc emits dst = hash[hashID](mem[key .. key+keyLen)). Under symbolic
// execution this is the havoc point of §3.5.
func (fb *FuncBuilder) Havoc(hashID int, key Reg, keyLen uint64) Reg {
	dst := fb.NewReg()
	fb.emit(&Instr{Op: OpHavoc, Dst: dst, HashID: hashID, A: key, Imm: keyLen})
	return dst
}

// br emits an unconditional branch and leaves the current block finished.
func (fb *FuncBuilder) br(target *Block) {
	fb.emit(&Instr{Op: OpBr, Blk0: target})
}

// If lowers if/else. Either arm may be nil.
func (fb *FuncBuilder) If(cond Reg, then func(), els func()) {
	thenB := fb.newBlock("then")
	joinB := fb.newBlock("join")
	elseB := joinB
	if els != nil {
		elseB = fb.newBlock("else")
	}
	fb.emit(&Instr{Op: OpCondBr, A: cond, Blk0: thenB, Blk1: elseB})
	fb.cur = thenB
	if then != nil {
		then()
	}
	fb.br(joinB)
	if els != nil {
		fb.cur = elseB
		els()
		fb.br(joinB)
	}
	fb.cur = joinB
}

// While lowers a while loop: cond is re-evaluated each iteration (it may
// emit instructions); body runs while cond is nonzero. Break/Continue
// inside body target this loop.
func (fb *FuncBuilder) While(cond func() Reg, body func()) {
	head := fb.newBlock("loophead")
	bodyB := fb.newBlock("loopbody")
	exit := fb.newBlock("loopexit")
	fb.br(head)
	fb.cur = head
	c := cond()
	fb.emit(&Instr{Op: OpCondBr, A: c, Blk0: bodyB, Blk1: exit})
	fb.loops = append(fb.loops, &loopCtx{head: head, exit: exit})
	fb.cur = bodyB
	body()
	fb.br(head)
	fb.loops = fb.loops[:len(fb.loops)-1]
	fb.cur = exit
}

// Loop lowers an infinite loop; exit only via Break (or Ret).
func (fb *FuncBuilder) Loop(body func()) {
	head := fb.newBlock("loophead")
	exit := fb.newBlock("loopexit")
	fb.br(head)
	fb.cur = head
	fb.loops = append(fb.loops, &loopCtx{head: head, exit: exit})
	body()
	fb.br(head)
	fb.loops = fb.loops[:len(fb.loops)-1]
	fb.cur = exit
}

// Break jumps to the innermost loop's exit.
func (fb *FuncBuilder) Break() {
	if len(fb.loops) == 0 {
		panic("ir: Break outside loop")
	}
	fb.br(fb.loops[len(fb.loops)-1].exit)
}

// Continue jumps to the innermost loop's head.
func (fb *FuncBuilder) Continue() {
	if len(fb.loops) == 0 {
		panic("ir: Continue outside loop")
	}
	fb.br(fb.loops[len(fb.loops)-1].head)
}

// Comment annotates the most recently emitted instruction, keeping
// disassembly readable. No-op if nothing has been emitted yet.
func (fb *FuncBuilder) Comment(text string) {
	if n := len(fb.cur.Instrs); n > 0 {
		fb.cur.Instrs[n-1].Comment = text
	}
}

// Seal finishes the function: ensures the final block is terminated
// (with ret 0 if control can fall off the end) and prunes unreachable
// blocks.
func (fb *FuncBuilder) Seal() *Func {
	if fb.sealed {
		return fb.f
	}
	if fb.cur.Terminator() == nil {
		fb.Ret(NoReg)
	}
	// Also terminate any stray unterminated blocks (possible if user code
	// returned inside every branch of an If and the join is unreachable).
	for _, b := range fb.f.Blocks {
		if b.Terminator() == nil {
			ret := &Instr{Op: OpRet, A: NoReg}
			b.Instrs = append(b.Instrs, ret)
		}
	}
	fb.pruneUnreachable()
	fb.sealed = true
	return fb.f
}

func (fb *FuncBuilder) pruneUnreachable() {
	reach := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(fb.f.Blocks[0])
	kept := fb.f.Blocks[:0]
	for _, b := range fb.f.Blocks {
		if reach[b] {
			b.Index = len(kept)
			kept = append(kept, b)
		}
	}
	fb.f.Blocks = kept
}

// Var is a mutable "local variable" wrapper over a dedicated register,
// making loop-carried values pleasant to write.
type Var struct {
	fb *FuncBuilder
	r  Reg
}

// Var creates a variable initialized from an existing register value.
func (fb *FuncBuilder) Var(init Reg) *Var {
	v := &Var{fb: fb, r: fb.NewReg()}
	fb.Mov(v.r, init)
	return v
}

// VarImm creates a variable initialized to a constant.
func (fb *FuncBuilder) VarImm(init uint64) *Var {
	v := &Var{fb: fb, r: fb.NewReg()}
	fb.MovImm(v.r, init)
	return v
}

// R returns the variable's register for use as an operand.
func (v *Var) R() Reg { return v.r }

// Set assigns a new value.
func (v *Var) Set(r Reg) { v.fb.Mov(v.r, r) }

// SetImm assigns a constant.
func (v *Var) SetImm(c uint64) { v.fb.MovImm(v.r, c) }

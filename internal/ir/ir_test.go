package ir

import (
	"strings"
	"testing"
)

func TestBinOpEval(t *testing.T) {
	cases := []struct {
		op   BinOp
		x, y uint64
		want uint64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, ^uint64(0)},
		{Mul, 7, 6, 42},
		{UDiv, 10, 3, 3},
		{UDiv, 10, 0, 0},
		{URem, 10, 3, 1},
		{URem, 10, 0, 10},
		{And, 0xf0, 0xff, 0xf0},
		{Or, 0xf0, 0x0f, 0xff},
		{Xor, 0xff, 0x0f, 0xf0},
		{Shl, 1, 10, 1024},
		{Shl, 1, 64, 0},
		{Lshr, 1024, 10, 1},
		{Lshr, 1, 100, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		x, y uint64
		want uint64
	}{
		{Eq, 1, 1, 1}, {Eq, 1, 2, 0},
		{Ne, 1, 2, 1}, {Ne, 2, 2, 0},
		{Ult, 1, 2, 1}, {Ult, 2, 2, 0},
		{Ule, 2, 2, 1}, {Ule, 3, 2, 0},
		{Ugt, 3, 2, 1}, {Ugt, 2, 2, 0},
		{Uge, 2, 2, 1}, {Uge, 1, 2, 0},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.x, c.y); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.p, c.x, c.y, got, c.want)
		}
	}
}

func TestModuleLayout(t *testing.T) {
	m := NewModule("t")
	g1 := m.AddGlobal("table", 1000, 0)
	g2 := m.AddGlobal("aux", 64, 4096)
	m.Layout()
	if g1.Addr < GlobalBase {
		t.Errorf("g1 addr %#x below base", g1.Addr)
	}
	if g1.Addr%64 != 0 {
		t.Errorf("g1 not line-aligned: %#x", g1.Addr)
	}
	if g2.Addr%4096 != 0 {
		t.Errorf("g2 not 4k-aligned: %#x", g2.Addr)
	}
	if g2.Addr >= g1.Addr && g2.Addr < g1.Addr+1000 {
		t.Error("globals overlap")
	}
	// Layout is idempotent.
	a1 := g1.Addr
	m.Layout()
	if g1.Addr != a1 {
		t.Error("layout not idempotent")
	}
}

func TestDuplicateGlobalPanics(t *testing.T) {
	m := NewModule("t")
	m.AddGlobal("x", 8, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate global did not panic")
		}
	}()
	m.AddGlobal("x", 8, 0)
}

func TestBuilderSimpleFunction(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("add3", 1)
	x := fb.Param(0)
	fb.Ret(fb.AddImm(x, 3))
	f := fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f.NumParams != 1 || len(f.Blocks) != 1 {
		t.Errorf("func shape: %d params, %d blocks", f.NumParams, len(f.Blocks))
	}
}

func TestBuilderIfElse(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("max", 2)
	a, b := fb.Param(0), fb.Param(1)
	out := fb.VarImm(0)
	fb.If(fb.CmpUlt(a, b),
		func() { out.Set(b) },
		func() { out.Set(a) })
	fb.Ret(out.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderWhileAndBreak(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("count", 1)
	n := fb.Param(0)
	i := fb.VarImm(0)
	fb.While(func() Reg { return fb.CmpUlt(i.R(), n) }, func() {
		fb.If(fb.CmpEqImm(i.R(), 100), func() { fb.Break() }, nil)
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(i.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBreakOutsideLoopPanics(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("bad", 0)
	defer func() {
		if recover() == nil {
			t.Error("Break outside loop did not panic")
		}
	}()
	fb.Break()
}

func TestValidateCatchesRecursion(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fa := m.NewFunc("a", 0)
	fbld := m.NewFunc("b", 0)
	// a calls b; b calls a — mutual recursion.
	fa.Ret(fa.Call(fbld.Func()))
	fa.Seal()
	fbld.Ret(fbld.Call(fa.Func()))
	fbld.Seal()
	if err := m.Validate(); err == nil {
		t.Error("recursion not caught")
	}
}

func TestValidateCatchesBadArity(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	callee := m.NewFunc("callee", 2)
	callee.RetImm(0)
	callee.Seal()
	caller := m.NewFunc("caller", 0)
	caller.Ret(caller.Call(callee.Func(), caller.Const(1))) // 1 arg, wants 2
	caller.Seal()
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity not caught: %v", err)
	}
}

func TestValidateCatchesBadLoadSize(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 0)
	addr := fb.Const(0x1000)
	dst := fb.NewReg()
	fb.Func().Blocks[0].Instrs = append(fb.Func().Blocks[0].Instrs,
		&Instr{Op: OpLoad, Dst: dst, A: addr, Size: 3})
	fb.RetImm(0)
	fb.Seal()
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("bad size not caught: %v", err)
	}
}

func TestSealPrunesUnreachable(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(1)
	// Emitting after a terminator opens a dead block that must be pruned
	// unless reachable.
	fb.RetImm(2)
	f := fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "dead") {
			t.Error("dead block survived pruning")
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	m := NewModule("demo")
	m.AddGlobal("tbl", 128, 0)
	m.Layout()
	hid := m.AddHash("h", 16, func(b []byte) uint64 { return 0 })
	fb := m.NewFunc("f", 1)
	p := fb.Param(0)
	v := fb.Load(p, 4, 4)
	h := fb.Havoc(hid, p, 13)
	fb.Store(p, 8, fb.Add(v, h), 4)
	fb.Comment("stash")
	fb.If(fb.CmpEqImm(h, 0), func() { fb.RetImm(0) }, nil)
	fb.Ret(fb.Select(fb.CmpNeImm(v, 0), v, h))
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	dis := m.Disassemble()
	for _, want := range []string{"module demo", "global tbl", "func f", "havoc#0", "load32", "store32", "; stash", "select", "condbr"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	if m.NumInstrs() < 8 {
		t.Errorf("NumInstrs = %d", m.NumInstrs())
	}
}

func TestValidateCatchesOutOfRangeRegisters(t *testing.T) {
	// Every operand position must be range-checked, including ones the old
	// checker skipped (e.g. a store's value operand, call arguments).
	build := func(mut func(f *Func)) error {
		m := NewModule("t")
		m.Layout()
		fb := m.NewFunc("f", 1)
		v := fb.Const(7)
		fb.Store(fb.Param(0), 0, v, 8)
		fb.Ret(v)
		f := fb.Seal()
		mut(f)
		return m.Validate()
	}
	cases := map[string]func(f *Func){
		"store value": func(f *Func) { f.Blocks[0].Instrs[1].B = Reg(f.NumRegs) },
		"store addr":  func(f *Func) { f.Blocks[0].Instrs[1].A = Reg(f.NumRegs + 3) },
		"const dst":   func(f *Func) { f.Blocks[0].Instrs[0].Dst = Reg(f.NumRegs) },
		"ret operand": func(f *Func) { f.Blocks[0].Instrs[2].A = Reg(f.NumRegs) },
		"negative":    func(f *Func) { f.Blocks[0].Instrs[1].B = -7 },
	}
	for name, mut := range cases {
		if err := build(mut); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: out-of-range register not caught: %v", name, err)
		}
	}
}

func TestValidateCatchesForeignBranchTarget(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	other := m.NewFunc("other", 0)
	other.RetImm(0)
	og := other.Seal()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	f := fb.Seal()
	// Replace f's terminator with a branch into the other function.
	f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = &Instr{Op: OpBr, Blk0: og.Blocks[0]}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("foreign branch target not caught: %v", err)
	}
}

func TestValidateCatchesPrunedBranchTarget(t *testing.T) {
	// A branch to a block that was removed from Fn.Blocks (e.g. pruned but
	// still referenced) must be rejected even though its Fn pointer matches.
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	f := fb.Seal()
	ghost := &Block{Name: "ghost", Index: 5, Fn: f,
		Instrs: []*Instr{{Op: OpRet, A: NoReg}}}
	f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1] = &Instr{Op: OpBr, Blk0: ghost}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("pruned branch target not caught: %v", err)
	}
}

func TestValidateCatchesBadBlockIndex(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	f := fb.Seal()
	f.Blocks[0].Index = 3
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "index") {
		t.Errorf("bad block index not caught: %v", err)
	}
}

func TestValidateCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 0)
	fb.RetImm(0)
	f := fb.Seal()
	f.Blocks[0].Instrs = append([]*Instr{{Op: OpRet, A: NoReg}}, f.Blocks[0].Instrs...)
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Errorf("mid-block terminator not caught: %v", err)
	}
}

func TestValidateCatchesTooFewRegs(t *testing.T) {
	m := NewModule("t")
	m.Layout()
	fb := m.NewFunc("f", 2)
	fb.RetImm(0)
	f := fb.Seal()
	f.NumRegs = 1 // cannot hold 2 params
	if err := m.Validate(); err == nil {
		t.Error("NumRegs < NumParams not caught")
	}
}

func TestDefAndUses(t *testing.T) {
	uses := func(in *Instr) []Reg {
		var out []Reg
		in.Uses(func(r Reg) { out = append(out, r) })
		return out
	}
	eq := func(a, b []Reg) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	cases := []struct {
		in      Instr
		def     Reg
		useRegs []Reg
	}{
		{Instr{Op: OpConst, Dst: 3}, 3, nil},
		{Instr{Op: OpMov, Dst: 1, A: 2}, 1, []Reg{2}},
		{Instr{Op: OpBin, Dst: 1, A: 2, B: 3}, 1, []Reg{2, 3}},
		{Instr{Op: OpSelect, Dst: 1, A: 2, B: 3, C: 4}, 1, []Reg{2, 3, 4}},
		{Instr{Op: OpLoad, Dst: 1, A: 2}, 1, []Reg{2}},
		{Instr{Op: OpStore, A: 1, B: 2}, NoReg, []Reg{1, 2}},
		{Instr{Op: OpBr}, NoReg, nil},
		{Instr{Op: OpCondBr, A: 5}, NoReg, []Reg{5}},
		{Instr{Op: OpCall, Dst: 1, Args: []Reg{2, 3}}, 1, []Reg{2, 3}},
		{Instr{Op: OpRet, A: NoReg}, NoReg, nil},
		{Instr{Op: OpRet, A: 4}, NoReg, []Reg{4}},
		{Instr{Op: OpAlloc, Dst: 1, A: 2}, 1, []Reg{2}},
		{Instr{Op: OpHavoc, Dst: 1, A: 2}, 1, []Reg{2}},
	}
	for _, c := range cases {
		if got := c.in.Def(); got != c.def {
			t.Errorf("%s: Def = %d, want %d", c.in.Op, got, c.def)
		}
		if got := uses(&c.in); !eq(got, c.useRegs) {
			t.Errorf("%s: Uses = %v, want %v", c.in.Op, got, c.useRegs)
		}
	}
}

func TestGlobalsOverflowPanics(t *testing.T) {
	m := NewModule("t")
	m.AddGlobal("huge", HeapBase, 0) // deliberately overflows into heap
	defer func() {
		if recover() == nil {
			t.Error("overflow not caught")
		}
	}()
	m.Layout()
}

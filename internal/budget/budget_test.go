package budget

import (
	"strings"
	"sync"
	"testing"
	"time"

	"castan/internal/obs"
)

func TestNilMeterIsNoop(t *testing.T) {
	var m *Meter
	if m.TotalUsed() != 0 {
		t.Fatal("nil meter reports usage")
	}
	s := m.Stage(StageSymbex)
	if s != nil {
		t.Fatal("nil meter handed out a non-nil stage")
	}
	s.Charge(100) // must not panic
	if got := s.Used(); got != 0 {
		t.Fatalf("nil stage Used = %d", got)
	}
	if reason, ok := s.Exhausted(); ok || reason != "" {
		t.Fatalf("nil stage exhausted: %q", reason)
	}
	if reason, ok := m.Exhausted(); ok || reason != "" {
		t.Fatalf("nil meter exhausted: %q", reason)
	}
	m.SetStageLimit(StageSymbex, 1)
	m.SetDeadline(nil, time.Second)
	if m.Snapshot() != nil {
		t.Fatal("nil meter snapshot not nil")
	}
}

func TestChargeAndTotals(t *testing.T) {
	m := New(100)
	sym := m.Stage(StageSymbex)
	sol := m.Stage(StageSolver)
	sym.Charge(10)
	sol.Charge(5)
	sym.Charge(0) // no-op
	if got := sym.Used(); got != 10 {
		t.Fatalf("symbex used = %d, want 10", got)
	}
	if got := m.Used(StageSolver); got != 5 {
		t.Fatalf("solver used = %d, want 5", got)
	}
	if got := m.TotalUsed(); got != 15 {
		t.Fatalf("total used = %d, want 15", got)
	}
	snap := m.Snapshot()
	if snap[StageSymbex] != 10 || snap[StageSolver] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestWholeRunExhaustion(t *testing.T) {
	m := New(10)
	s := m.Stage(StageSymbex)
	s.Charge(9)
	if _, ok := s.Exhausted(); ok {
		t.Fatal("exhausted below limit")
	}
	s.Charge(1)
	reason, ok := s.Exhausted()
	if !ok {
		t.Fatal("not exhausted at limit")
	}
	if !strings.Contains(reason, "10/10") {
		t.Fatalf("reason = %q", reason)
	}
	// The meter itself reports the same thing.
	if _, ok := m.Exhausted(); !ok {
		t.Fatal("meter not exhausted")
	}
}

func TestStageLimitExhaustion(t *testing.T) {
	m := New(0) // unlimited whole-run
	m.SetStageLimit(StageDiscover, 3)
	disc := m.Stage(StageDiscover)
	other := m.Stage(StageSymbex)
	other.Charge(1000) // unrelated stage usage must not trip discover
	disc.Charge(2)
	if _, ok := disc.Exhausted(); ok {
		t.Fatal("stage exhausted below its limit")
	}
	disc.Charge(1)
	reason, ok := disc.Exhausted()
	if !ok {
		t.Fatal("stage not exhausted at limit")
	}
	if !strings.Contains(reason, StageDiscover) {
		t.Fatalf("reason should name the stage: %q", reason)
	}
	if _, ok := other.Exhausted(); ok {
		t.Fatal("unlimited stage exhausted")
	}
	if _, ok := m.Exhausted(); ok {
		t.Fatal("unlimited meter exhausted")
	}
}

func TestDeadline(t *testing.T) {
	clock := obs.NewFakeClock(1000)
	m := New(0)
	m.SetDeadline(clock, 5000*time.Nanosecond)
	// FakeClock advances 1000 per reading; SetDeadline took one reading.
	// Two more readings stay under the deadline...
	if _, ok := m.Exhausted(); ok {
		t.Fatal("deadline fired early")
	}
	if _, ok := m.Exhausted(); ok {
		t.Fatal("deadline fired early")
	}
	// ...then it fires, deterministically, on a later check.
	var fired bool
	for i := 0; i < 10; i++ {
		if reason, ok := m.Exhausted(); ok {
			if reason != "deadline exceeded" {
				t.Fatalf("reason = %q", reason)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("deadline never fired")
	}
}

func TestZeroDeadlineIgnored(t *testing.T) {
	m := New(0)
	m.SetDeadline(obs.NewFakeClock(1000), 0)
	for i := 0; i < 100; i++ {
		if _, ok := m.Exhausted(); ok {
			t.Fatal("zero deadline fired")
		}
	}
}

func TestConcurrentChargesAreCommutative(t *testing.T) {
	const (
		workers = 8
		perW    = 1000
	)
	m := New(0)
	s := m.Stage(StageSolver)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.Charge(3)
			}
		}()
	}
	wg.Wait()
	if got := s.Used(); got != workers*perW*3 {
		t.Fatalf("used = %d, want %d", got, workers*perW*3)
	}
	if got := m.TotalUsed(); got != workers*perW*3 {
		t.Fatalf("total = %d, want %d", got, workers*perW*3)
	}
}

func TestStageHandleIdentity(t *testing.T) {
	m := New(0)
	if m.Stage(StageRainbow) != m.Stage(StageRainbow) {
		t.Fatal("Stage returned distinct handles for one name")
	}
}

func TestCancelForcesExhaustion(t *testing.T) {
	m := New(0) // unlimited ticks, no deadline: only Cancel can exhaust it
	if reason, ok := m.Exhausted(); ok {
		t.Fatalf("fresh meter exhausted: %q", reason)
	}
	if reason, ok := m.Canceled(); ok {
		t.Fatalf("fresh meter canceled: %q", reason)
	}
	m.Cancel("server draining")
	reason, ok := m.Exhausted()
	if !ok || reason != "server draining" {
		t.Fatalf("Exhausted = (%q, %v), want the cancel reason", reason, ok)
	}
	if reason, ok := m.Canceled(); !ok || reason != "server draining" {
		t.Fatalf("Canceled = (%q, %v), want (server draining, true)", reason, ok)
	}
	// Stage handles observe the cancel too (they delegate to the meter).
	if reason, ok := m.Stage(StageSymbex).Exhausted(); !ok || reason != "server draining" {
		t.Fatalf("stage Exhausted = (%q, %v), want the cancel reason", reason, ok)
	}
	// Idempotent: the first reason wins.
	m.Cancel("second reason")
	if reason, _ := m.Exhausted(); reason != "server draining" {
		t.Fatalf("second Cancel overwrote the reason: %q", reason)
	}
	// Empty reason still cancels, with a fallback string.
	m2 := New(0)
	m2.Cancel("")
	if reason, ok := m2.Exhausted(); !ok || reason == "" {
		t.Fatalf("empty-reason Cancel: Exhausted = (%q, %v)", reason, ok)
	}
	// Nil meters stay no-ops.
	var nilM *Meter
	nilM.Cancel("x")
	if _, ok := nilM.Canceled(); ok {
		t.Fatal("nil meter reports canceled")
	}
}

// Package budget is the deterministic cooperative-cancellation layer of
// the CASTAN pipeline. The paper runs CASTAN under a fixed time budget
// (§3.1) and still emits its best-so-far workload when exploration is cut
// short; this package supplies the machinery that makes "cut short" a
// well-defined, reproducible event instead of a wall-clock race.
//
// A Meter charges *ticks* — abstract work units — at the pipeline's
// existing cost points: symbolic-execution state pops, solver search
// steps, memory-simulator probe accesses, and rainbow-table chain links.
// Ticks obey the repo-wide determinism rule (DESIGN.md decisions 6/8/10):
//
//   - charges are atomic adds, so totals are commutative and worker-count
//     invariant as long as every fan-out runs all of its items (which
//     internal/parallel guarantees);
//   - exhaustion *checks* happen only at deterministic control points on
//     the orchestrating goroutine (between state pops, between discovery
//     sweeps, between reconciliation rounds), so a budget-cut run stops at
//     the same tick at every worker count;
//   - speculative parallel work (e.g. candidate checks a parallel.First
//     batch evaluates past the accepting index) must not charge the meter
//     from worker closures — the orchestrator charges the
//     sequential-equivalent effort, exactly as it records telemetry;
//   - batched hot paths may charge once per batch with the batch's total
//     (memsim.ProbeBatch charges one sum for a whole probe set rather
//     than one Charge per access): the tick total is identical to the
//     scalar path's, only the charge granularity — and therefore the
//     earliest point an exhaustion check can observe the spend — is
//     coarser, which is fine because checks only happen between batches
//     anyway.
//
// Ticks are the primary budget currency because they are deterministic; a
// wall-clock deadline is available as a secondary escape hatch via the
// injectable obs.Clock (a FakeClock keeps even deadline cuts
// byte-reproducible in tests).
//
// All methods are nil-receiver safe: a nil *Meter hands out nil *Stage
// handles whose methods no-op, so budgeted code never branches on "is a
// budget configured".
package budget

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"castan/internal/obs"
)

// Canonical stage names used by the CASTAN pipeline. Stages are plain
// strings so tools can introduce their own, but the pipeline charges
// exactly these.
const (
	StageDiscover = "discover" // memsim probe accesses during §3.2 discovery
	StageSymbex   = "symbex"   // searcher state pops
	StageSolver   = "solver"   // solver search steps (decisions+propagations)
	StageRainbow  = "rainbow"  // rainbow-table chain links walked
)

// Meter tracks tick usage against a whole-run limit, optional per-stage
// limits, and an optional wall-clock deadline.
type Meter struct {
	total      uint64 // whole-run tick limit; 0 = unlimited
	totalUsed  atomic.Uint64
	clock      obs.Clock
	deadlineAt uint64 // clock reading at which the deadline fires; 0 = none
	canceled   atomic.Pointer[string]

	mu     sync.Mutex
	stages map[string]*Stage
}

// New creates a meter with a whole-run tick limit (0 = unlimited; the
// meter then only counts, which is how benchmarks record ticks used).
func New(totalTicks uint64) *Meter {
	return &Meter{total: totalTicks, stages: map[string]*Stage{}}
}

// SetStageLimit sets a per-stage tick limit (0 = unlimited). Call during
// setup, before the pipeline starts charging.
func (m *Meter) SetStageLimit(stage string, ticks uint64) {
	if m == nil {
		return
	}
	m.Stage(stage).limit = ticks
}

// SetDeadline arms the wall-clock escape hatch: the meter reports
// exhaustion once clock.Now() reaches its current reading plus d. A nil
// clock selects the wall clock; tests inject obs.NewFakeClock so deadline
// cuts stay byte-reproducible.
func (m *Meter) SetDeadline(clock obs.Clock, d time.Duration) {
	if m == nil || d <= 0 {
		return
	}
	if clock == nil {
		clock = obs.NewWallClock()
	}
	m.clock = clock
	m.deadlineAt = clock.Now() + uint64(d)
}

// Stage returns the named stage handle, creating it on first use. Hot
// paths should look the handle up once and hold it.
func (m *Meter) Stage(name string) *Stage {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stages[name]
	if s == nil {
		s = &Stage{meter: m, name: name}
		m.stages[name] = s
	}
	return s
}

// Cancel forces the meter into the exhausted state with the given
// reason, regardless of ticks or deadline. It is the cooperative kill
// switch a draining server pulls on every in-flight analysis: the
// pipeline observes exhaustion at its next deterministic checkpoint and
// degrades into a valid partial report instead of being torn down
// mid-stage. Safe to call from any goroutine, idempotent (the first
// reason wins), and a no-op on a nil meter.
func (m *Meter) Cancel(reason string) {
	if m == nil {
		return
	}
	if reason == "" {
		reason = "canceled"
	}
	m.canceled.CompareAndSwap(nil, &reason)
}

// Canceled reports whether Cancel was called, with its reason.
func (m *Meter) Canceled() (string, bool) {
	if m == nil {
		return "", false
	}
	if r := m.canceled.Load(); r != nil {
		return *r, true
	}
	return "", false
}

// TotalUsed reads the ticks charged across all stages.
func (m *Meter) TotalUsed() uint64 {
	if m == nil {
		return 0
	}
	return m.totalUsed.Load()
}

// Used reads the ticks charged to one stage.
func (m *Meter) Used(stage string) uint64 {
	return m.Stage(stage).Used()
}

// Exhausted reports whether a Cancel, the whole-run limit, or the
// deadline has been reached, with a human-readable reason. The cancel
// check reads no clock, so a never-canceled meter's behavior under a
// FakeClock is unchanged. Call it only from deterministic
// control points on the orchestrating goroutine: with a FakeClock every
// call advances the clock, and from workers the reading order (and hence
// the recorded trace) would depend on scheduling.
func (m *Meter) Exhausted() (string, bool) {
	if m == nil {
		return "", false
	}
	if r := m.canceled.Load(); r != nil {
		return *r, true
	}
	if m.total > 0 {
		if used := m.totalUsed.Load(); used >= m.total {
			return fmt.Sprintf("budget: %d/%d ticks used", used, m.total), true
		}
	}
	if m.deadlineAt > 0 && m.clock.Now() >= m.deadlineAt {
		return "deadline exceeded", true
	}
	return "", false
}

// Snapshot returns per-stage tick usage in sorted stage order (for
// reports and tests).
func (m *Meter) Snapshot() map[string]uint64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.stages))
	for name := range m.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		out[name] = m.stages[name].used.Load()
	}
	return out
}

// Stage is one named account of a Meter. Charges go to both the stage and
// the meter's whole-run total.
type Stage struct {
	meter *Meter
	name  string
	limit uint64 // 0 = no per-stage limit
	used  atomic.Uint64
}

// Charge adds n ticks. Safe for concurrent use; charges are commutative,
// so totals are worker-count invariant when every item of a fan-out runs.
func (s *Stage) Charge(n uint64) {
	if s == nil || n == 0 {
		return
	}
	s.used.Add(n)
	s.meter.totalUsed.Add(n)
}

// Used reads the stage's charged ticks.
func (s *Stage) Used() uint64 {
	if s == nil {
		return 0
	}
	return s.used.Load()
}

// Exhausted reports whether this stage's limit, the whole-run limit, or
// the deadline has been reached. The same deterministic-control-point
// caveat as Meter.Exhausted applies.
func (s *Stage) Exhausted() (string, bool) {
	if s == nil {
		return "", false
	}
	if s.limit > 0 {
		if used := s.used.Load(); used >= s.limit {
			return fmt.Sprintf("budget: stage %s %d/%d ticks used", s.name, used, s.limit), true
		}
	}
	return s.meter.Exhausted()
}

// Package workload generates the packet workloads of §5.1: 1 Packet,
// Zipfian (s = 1.26, the paper's exponent fit from a university trace),
// UniRand, UniRand-CASTAN (UniRand restricted to the CASTAN workload's
// flow count), and wrappers for the Manual and CASTAN workloads. Frames
// are plain Ethernet/IPv4/UDP and can be exported as PCAP.
package workload

import (
	"fmt"

	"castan/internal/nf"
	"castan/internal/packet"
	"castan/internal/pcap"
	"castan/internal/stats"
)

// Default workload sizes (scaled from the paper's 100K-packet Zipfian /
// 1M-packet UniRand by the same factor as the flow tables; the ratios —
// UniRand flows ≈ 16× the chain buckets, ring load ≈ 6% — are preserved).
const (
	DefaultPackets      = 65536
	DefaultZipfUniverse = 4096
	ZipfExponent        = 1.26
)

// Profile selects the traffic shape an NF class finds "interesting": the
// paper tailors workloads so LB traffic targets the VIP and NAT traffic
// originates inside (§5.1).
type Profile string

// Profiles.
const (
	ProfileLPM Profile = "lpm"
	ProfileNAT Profile = "nat"
	ProfileLB  Profile = "lb"
)

// ProfileFor maps an NF name to its workload profile.
func ProfileFor(nfName string) Profile {
	switch {
	case len(nfName) >= 3 && nfName[:3] == "nat":
		return ProfileNAT
	case len(nfName) >= 2 && nfName[:2] == "lb":
		return ProfileLB
	default:
		return ProfileLPM
	}
}

// Workload is a named packet sequence.
type Workload struct {
	Name   string
	Frames [][]byte
	Flows  int
}

// Save writes the workload as a PCAP file.
func (w *Workload) Save(path string) error {
	if len(w.Frames) == 0 {
		return fmt.Errorf("workload %s: empty", w.Name)
	}
	return pcap.WriteFile(path, w.Frames)
}

// FromPCAP loads a workload from a PCAP file.
func FromPCAP(name, path string) (*Workload, error) {
	frames, err := pcap.ReadFile(path)
	if err != nil {
		return nil, err
	}
	flows := map[packet.FiveTuple]bool{}
	for _, fr := range frames {
		if p, err := packet.Parse(fr); err == nil {
			flows[p.Tuple()] = true
		}
	}
	return &Workload{Name: name, Frames: frames, Flows: len(flows)}, nil
}

// flowFrame builds the i-th flow's frame for a profile. Distinct indices
// produce distinct flows; the index is scattered through a bijective
// 24-bit mix so flow keys are unordered, as random traffic would be.
func flowFrame(p Profile, idx uint64, rng *stats.RNG) []byte {
	scatter := scatter24(uint32(idx) & 0x00ffffff)
	port := uint16(1 + (idx*0x85ebca77>>7)&0x7fff)
	spec := packet.Spec{Proto: packet.ProtoUDP}
	switch p {
	case ProfileNAT:
		// Internal clients toward external servers.
		spec.SrcIP = nf.NATInternalNet | scatter
		spec.DstIP = 0x08080000 | uint32(rng.Uint32()&0xffff)
		spec.SrcPort = port
		spec.DstPort = 53
	case ProfileLB:
		// The only interesting case: destination is the VIP (§5.1).
		spec.SrcIP = 0x40000000 | scatter // 64.x.y.z clients
		spec.DstIP = nf.LBVIP
		spec.SrcPort = port
		spec.DstPort = 80
	default:
		// LPM: spread destinations across the address space, half of them
		// inside the FIB's covered 10-17/8 range so routes are exercised.
		if idx%2 == 0 {
			spec.DstIP = (10+uint32(idx/2)%8)<<24 | uint32(rng.Uint32()&0x00ffffff)
		} else {
			spec.DstIP = rng.Uint32()
		}
		spec.SrcIP = 0xc0000000 | uint32(idx&0xffffff)
		spec.SrcPort, spec.DstPort = 1000, 2000
	}
	return packet.Build(spec)
}

// scatter24 is a bijective 24-bit permutation (3-round Feistel) used to
// derive unordered flow keys from sequential indices: "random" traffic
// must not insert sorted keys into the tree NFs.
func scatter24(x uint32) uint32 {
	l, r := x>>12&0xfff, x&0xfff
	for i := uint32(0); i < 3; i++ {
		f := (r*2654435761 + i*0x9e37) >> 20 & 0xfff
		l, r = r, l^f
	}
	return l<<12 | r
}

// OnePacket is the best-case workload: one representative packet replayed
// in a loop by the testbed.
func OnePacket(p Profile) *Workload {
	rng := stats.NewRNG(1)
	return &Workload{Name: "1 Packet", Frames: [][]byte{flowFrame(p, 7, rng)}, Flows: 1}
}

// Zipfian generates `packets` frames whose flows follow a Zipf
// distribution with the paper's exponent over a `universe` of flows.
func Zipfian(p Profile, packets, universe int, seed uint64) (*Workload, error) {
	if packets <= 0 {
		packets = DefaultPackets
	}
	if universe <= 0 {
		universe = DefaultZipfUniverse
	}
	rng := stats.NewRNG(seed)
	z, err := stats.NewZipf(rng, universe, ZipfExponent)
	if err != nil {
		return nil, err
	}
	// Pre-build the flow universe.
	frameRng := stats.NewRNG(seed + 1)
	flows := make([][]byte, universe)
	for i := range flows {
		flows[i] = flowFrame(p, uint64(i), frameRng)
	}
	frames := make([][]byte, packets)
	seen := map[int]bool{}
	for i := range frames {
		r := z.Next()
		seen[r] = true
		frames[i] = flows[r]
	}
	return &Workload{Name: "Zipfian", Frames: frames, Flows: len(seen)}, nil
}

// UniRand generates `packets` frames, each its own flow — the
// stress-test/DoS-style workload.
func UniRand(p Profile, packets int, seed uint64) *Workload {
	if packets <= 0 {
		packets = DefaultPackets
	}
	rng := stats.NewRNG(seed)
	frames := make([][]byte, packets)
	for i := range frames {
		frames[i] = flowFrame(p, uint64(i), rng)
	}
	return &Workload{Name: "UniRand", Frames: frames, Flows: packets}
}

// UniRandN is UniRand restricted to n flows (the CASTAN workload's flow
// count), for the paper's "UniRand CASTAN" fairness baseline.
func UniRandN(p Profile, n int, seed uint64) *Workload {
	w := UniRand(p, n, seed+0x5eed)
	w.Name = "UniRand CASTAN"
	return w
}

// FromFrames wraps raw frames (Manual and CASTAN workloads).
func FromFrames(name string, frames [][]byte) *Workload {
	flows := map[packet.FiveTuple]bool{}
	for _, fr := range frames {
		if p, err := packet.Parse(fr); err == nil {
			flows[p.Tuple()] = true
		}
	}
	return &Workload{Name: name, Frames: frames, Flows: len(flows)}
}

package workload

import (
	"path/filepath"
	"testing"

	"castan/internal/nf"
	"castan/internal/packet"
)

func TestProfileFor(t *testing.T) {
	cases := map[string]Profile{
		"nat-chain": ProfileNAT,
		"nat-ring":  ProfileNAT,
		"lb-rbtree": ProfileLB,
		"lpm-trie":  ProfileLPM,
		"nop":       ProfileLPM,
	}
	for name, want := range cases {
		if got := ProfileFor(name); got != want {
			t.Errorf("ProfileFor(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestOnePacket(t *testing.T) {
	for _, p := range []Profile{ProfileLPM, ProfileNAT, ProfileLB} {
		w := OnePacket(p)
		if len(w.Frames) != 1 || w.Flows != 1 {
			t.Errorf("%s: frames=%d flows=%d", p, len(w.Frames), w.Flows)
		}
		if _, err := packet.Parse(w.Frames[0]); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

func TestUniRandDistinctFlows(t *testing.T) {
	for _, p := range []Profile{ProfileNAT, ProfileLB} {
		w := UniRand(p, 5000, 7)
		seen := map[packet.FiveTuple]bool{}
		for _, fr := range w.Frames {
			pk, err := packet.Parse(fr)
			if err != nil {
				t.Fatal(err)
			}
			tup := pk.Tuple()
			if seen[tup] {
				t.Fatalf("%s: duplicate flow %v", p, tup)
			}
			seen[tup] = true
			switch p {
			case ProfileNAT:
				if tup.SrcIP&nf.NATInternalMask != nf.NATInternalNet {
					t.Fatalf("NAT flow outside internal net: %v", tup)
				}
			case ProfileLB:
				if tup.DstIP != nf.LBVIP {
					t.Fatalf("LB flow not VIP-destined: %v", tup)
				}
			}
		}
	}
}

func TestUniRandKeysUnordered(t *testing.T) {
	// The scatter must break monotonicity: consecutive flows must not have
	// monotonically increasing source IPs (that would skew the BSTs).
	w := UniRand(ProfileNAT, 200, 1)
	increasing := 0
	var prev uint32
	for i, fr := range w.Frames {
		p, _ := packet.Parse(fr)
		if i > 0 && p.IP.Src > prev {
			increasing++
		}
		prev = p.IP.Src
	}
	if increasing > 150 {
		t.Errorf("srcIPs nearly sorted: %d/199 increasing", increasing)
	}
}

func TestZipfianSkew(t *testing.T) {
	w, err := Zipfian(ProfileLB, 20000, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Frames) != 20000 {
		t.Fatalf("frames = %d", len(w.Frames))
	}
	counts := map[packet.FiveTuple]int{}
	for _, fr := range w.Frames {
		p, _ := packet.Parse(fr)
		counts[p.Tuple()]++
	}
	if len(counts) > 512 {
		t.Errorf("universe exceeded: %d flows", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The top flow should dominate: with s=1.26 over 512 flows it carries
	// roughly a quarter of the traffic.
	if max < 2000 {
		t.Errorf("top flow only %d/20000 packets; not Zipf-skewed", max)
	}
	if w.Flows != len(counts) {
		t.Errorf("Flows = %d, want %d", w.Flows, len(counts))
	}
}

func TestZipfianValidation(t *testing.T) {
	if _, err := Zipfian(ProfileLB, 10, -3, 1); err == nil {
		// negative universe falls back to default, so no error; but a zero
		// exponent path is covered inside stats. Just assert default works.
		t.Log("negative universe handled via default")
	}
}

func TestUniRandN(t *testing.T) {
	w := UniRandN(ProfileLB, 40, 9)
	if len(w.Frames) != 40 || w.Flows != 40 {
		t.Errorf("frames=%d flows=%d", len(w.Frames), w.Flows)
	}
	if w.Name != "UniRand CASTAN" {
		t.Errorf("name = %q", w.Name)
	}
}

func TestFromFramesAndPCAPRoundTrip(t *testing.T) {
	orig := UniRand(ProfileLB, 17, 5)
	w := FromFrames("X", orig.Frames)
	if w.Flows != 17 {
		t.Errorf("flows = %d", w.Flows)
	}
	path := filepath.Join(t.TempDir(), "w.pcap")
	if err := w.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := FromPCAP("Y", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Frames) != 17 || back.Flows != 17 {
		t.Errorf("reloaded: frames=%d flows=%d", len(back.Frames), back.Flows)
	}
	empty := &Workload{Name: "empty"}
	if err := empty.Save(filepath.Join(t.TempDir(), "e.pcap")); err == nil {
		t.Error("empty save accepted")
	}
}

func TestLPMWorkloadCoversFIB(t *testing.T) {
	w := UniRand(ProfileLPM, 1000, 3)
	routes := nf.DefaultFIB(false)
	hits := 0
	for _, fr := range w.Frames {
		p, _ := packet.Parse(fr)
		if nf.LookupFIB(routes, p.IP.Dst) != 0 {
			hits++
		}
	}
	if hits < 300 {
		t.Errorf("only %d/1000 packets hit the FIB", hits)
	}
}

package symbex

import (
	"castan/internal/cachemodel"
	"castan/internal/expr"
	"castan/internal/ir"
	"castan/internal/solver"
)

// HavocRecord captures one executed OpHavoc for later reconciliation
// (§3.5): the symbolic key bytes that flowed into the hash, and the fresh
// output variables that replaced the hash value.
type HavocRecord struct {
	HashID  int
	Packet  int // which packet was being processed
	KeyAddr uint64
	KeyLen  int
	Key     []*expr.Expr // per-byte expressions of the hash input
	OutVars []expr.VarID // fresh symbols forming the havoced output
	Out     *expr.Expr   // the havoced output expression (masked concat)
}

// frame is one entry of a state's call stack.
type frame struct {
	fn     *ir.Func
	regs   []*expr.Expr
	blk    *ir.Block
	pc     int
	retDst ir.Reg // register in the CALLER receiving our return value
}

func (f *frame) clone() *frame {
	n := *f
	n.regs = append([]*expr.Expr(nil), f.regs...)
	return &n
}

// State is one symbolic execution state: a point in the exploration of the
// NF over a sequence of symbolic packets.
type State struct {
	ID     int
	frames []*frame
	mem    *symMemory

	constraints []*expr.Expr
	tracker     *cachemodel.Tracker // nil when running without cache model

	// CurCost is the accumulated cycle estimate along this path (§3.3's
	// "current cost"); Potential is filled by the engine on suspension.
	CurCost   uint64
	Potential uint64

	// PacketsDone counts fully processed packets; PacketCosts records the
	// per-packet cycle estimate.
	PacketsDone  int
	PacketCosts  []uint64
	PacketRet    []uint64 // concretized return values (best effort)
	Havocs       []HavocRecord
	Instrs       uint64 // instructions executed (metric output)
	Loads        uint64
	Stores       uint64
	ExpectDRAM   uint64 // accesses the cache model predicts go to DRAM
	ExpectHit    uint64
	LoopDepth    int // consecutive iterations at the current loop head
	Done         bool
	nextHavocVar expr.VarID

	heapTop         uint64
	packetStartCost uint64
	trapped         error

	// havocVars marks the fresh symbols minted for havoc outputs;
	// pinnedVars marks havoc symbols that a resolveAddr pin has already
	// forced through an Eq(addr, const) path constraint. Together they
	// let the engine prove a later address over the same symbols is
	// already determined, skipping the contended-candidate sweep whose
	// every probe would come back Unsat (taint-directed folding; both
	// nil until the first havoc / first pin).
	havocVars  map[expr.VarID]bool
	pinnedVars map[expr.VarID]bool

	// model is a cached satisfying assignment of the state's constraints
	// (variables absent from the map are 0). It lets branch feasibility be
	// decided by evaluation — the side the model satisfies is free — and
	// serves as the hint for incremental solver checks on the other side.
	model solver.Model
}

// Model returns the state's cached satisfying assignment.
func (s *State) Model() solver.Model { return s.model }

// Err returns the error that trapped this state, if any.
func (s *State) Err() error { return s.trapped }

func (s *State) clone(newID int) *State {
	n := &State{
		ID:           newID,
		frames:       make([]*frame, len(s.frames)),
		mem:          s.mem.clone(),
		constraints:  append([]*expr.Expr(nil), s.constraints...),
		CurCost:      s.CurCost,
		PacketsDone:  s.PacketsDone,
		PacketCosts:  append([]uint64(nil), s.PacketCosts...),
		PacketRet:    append([]uint64(nil), s.PacketRet...),
		Havocs:       append([]HavocRecord(nil), s.Havocs...),
		Instrs:       s.Instrs,
		Loads:        s.Loads,
		Stores:       s.Stores,
		ExpectDRAM:   s.ExpectDRAM,
		ExpectHit:    s.ExpectHit,
		LoopDepth:    s.LoopDepth,
		nextHavocVar: s.nextHavocVar,

		heapTop:         s.heapTop,
		packetStartCost: s.packetStartCost,
		model:           make(solver.Model, len(s.model)),
	}
	for k, v := range s.model {
		n.model[k] = v
	}
	for i, f := range s.frames {
		n.frames[i] = f.clone()
	}
	if s.tracker != nil {
		n.tracker = s.tracker.Clone()
	}
	if s.havocVars != nil {
		n.havocVars = make(map[expr.VarID]bool, len(s.havocVars))
		for k := range s.havocVars {
			n.havocVars[k] = true
		}
	}
	if s.pinnedVars != nil {
		n.pinnedVars = make(map[expr.VarID]bool, len(s.pinnedVars))
		for k := range s.pinnedVars {
			n.pinnedVars[k] = true
		}
	}
	return n
}

// markHavocVars records freshly minted havoc output symbols.
func (s *State) markHavocVars(vars []expr.VarID) {
	if s.havocVars == nil {
		s.havocVars = make(map[expr.VarID]bool, len(vars))
	}
	for _, v := range vars {
		s.havocVars[v] = true
	}
}

// markPinned records that an address pin just forced every havoc symbol
// occurring in a.
func (s *State) markPinned(a *expr.Expr) {
	for _, v := range a.VarList() {
		if s.havocVars[v] {
			if s.pinnedVars == nil {
				s.pinnedVars = make(map[expr.VarID]bool)
			}
			s.pinnedVars[v] = true
		}
	}
}

// allPinnedHavoc reports whether a depends only on havoc symbols that a
// previous address pin already forced — in which case the path
// constraints determine a's value and the cached model yields it.
func (s *State) allPinnedHavoc(a *expr.Expr) bool {
	vars := a.VarList()
	if len(vars) == 0 {
		return false
	}
	for _, v := range vars {
		if !s.havocVars[v] || !s.pinnedVars[v] {
			return false
		}
	}
	return true
}

// Constraints returns the state's path constraint conjuncts.
func (s *State) Constraints() []*expr.Expr { return s.constraints }

// Priority is the searcher key: expected total cycles if this state is
// pursued (current plus potential, §3.1).
func (s *State) Priority() uint64 { return s.CurCost + s.Potential }

// top returns the active frame.
func (s *State) top() *frame { return s.frames[len(s.frames)-1] }

// reg reads a register of the active frame.
func (s *State) reg(r ir.Reg) *expr.Expr { return s.top().regs[r] }

// setReg writes a register of the active frame.
func (s *State) setReg(r ir.Reg, v *expr.Expr) {
	if r != ir.NoReg {
		s.top().regs[r] = v
	}
}

// addConstraint appends a path condition.
func (s *State) addConstraint(c *expr.Expr) {
	if b, ok := c.IsBool(); ok && b {
		return // trivially true
	}
	s.constraints = append(s.constraints, c)
}

package symbex

import (
	"testing"

	"castan/internal/cachemodel"
	"castan/internal/expr"
	"castan/internal/icfg"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
	"castan/internal/solver"
)

// buildBranchNF: nf_process(pkt, len) reads byte 0; if it is 0xAB it runs
// an expensive multiply chain, otherwise returns immediately.
func buildBranchNF(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("branch")
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	b0 := fb.Load(pkt, 0, 1)
	out := fb.VarImm(0)
	fb.If(fb.CmpEqImm(b0, 0xAB), func() {
		v := fb.MulImm(b0, 3)
		for i := 0; i < 20; i++ {
			v = fb.MulImm(v, 7)
		}
		out.Set(v)
	}, nil)
	fb.Ret(out.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func newEngine(t *testing.T, m *ir.Module, cfg Config) *Engine {
	t.Helper()
	an, err := icfg.Analyze(m, 2, icfg.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// Like production use, the search heuristic assumes deep loops.
	potAn, err := icfg.Analyze(m, 300, icfg.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return &Engine{
		Mod:               m,
		Analysis:          an,
		PotentialAnalysis: potAn,
		Base:              interp.NewMemory(),
		HeapTop:           ir.HeapBase,
		Cfg:               cfg,
	}
}

func TestDirectedSearchPrefersExpensiveBranch(t *testing.T) {
	m := buildBranchNF(t)
	e := newEngine(t, m, Config{NPackets: 1, PacketLen: 4, MaxStates: 100})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no completed state")
	}
	if res.Forks == 0 {
		t.Error("expected at least one fork")
	}
	// The best state must be the expensive branch: byte 0 constrained to
	// 0xAB.
	var s solver.Solver
	model, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatalf("best state unsat: %v", err)
	}
	if model[e.PacketVar(0, 0)] != 0xAB {
		t.Errorf("byte0 = %#x, want 0xAB", model[e.PacketVar(0, 0)])
	}
	// And it must be costlier than the cheap path (some completed state
	// has lower cost or only one completed: cost must include ~21 muls).
	if res.Best.CurCost < 20*icfg.DefaultCostModel().Mul {
		t.Errorf("best cost %d too low for mul chain", res.Best.CurCost)
	}
}

func TestCrossValidationWithInterpreter(t *testing.T) {
	m := buildBranchNF(t)
	e := newEngine(t, m, Config{NPackets: 1, PacketLen: 4, MaxStates: 100})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var s solver.Solver
	model, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	// Build the concrete packet and run the interpreter down the path.
	mach := interp.NewMachine(m)
	var instrs uint64
	mach.Hooks = interp.Hooks{OnInstr: func(fn *ir.Func, in *ir.Instr) { instrs++ }}
	for i := 0; i < e.Cfg.PacketLen; i++ {
		mach.Mem.StoreByte(ir.PacketBase+uint64(i), byte(model[e.PacketVar(0, i)]))
	}
	ret, err := mach.Call("nf_process", ir.PacketBase, uint64(e.Cfg.PacketLen))
	if err != nil {
		t.Fatal(err)
	}
	if instrs != res.Best.Instrs {
		t.Errorf("interpreter executed %d instrs, symbex predicted %d", instrs, res.Best.Instrs)
	}
	if ret == 0 {
		t.Error("expensive branch should return nonzero")
	}
}

// buildLoopNF: iterates byte0 times (bounded by 200), so the adversarial
// input maximizes the loop count.
func buildLoopNF(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("loop")
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	n := fb.Load(pkt, 0, 1)
	i := fb.VarImm(0)
	acc := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), n) }, func() {
		acc.Set(fb.Add(acc.R(), fb.MulImm(i.R(), 3)))
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(acc.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoopMaximization(t *testing.T) {
	m := buildLoopNF(t)
	e := newEngine(t, m, Config{NPackets: 1, PacketLen: 2, MaxStates: 3000, MaxLoopIters: 400})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no completed state")
	}
	var s solver.Solver
	model, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	// The directed search should have driven byte0 to its maximum, 255.
	if got := model[e.PacketVar(0, 0)]; got < 250 {
		t.Errorf("loop bound byte = %d, want near 255", got)
	}
}

func TestMultiPacketFreshSymbols(t *testing.T) {
	m := buildBranchNF(t)
	e := newEngine(t, m, Config{NPackets: 3, PacketLen: 4, MaxStates: 500})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no completed state")
	}
	if res.Best.PacketsDone != 3 || len(res.Best.PacketCosts) != 3 {
		t.Fatalf("packets done %d, costs %d", res.Best.PacketsDone, len(res.Best.PacketCosts))
	}
	var s solver.Solver
	model, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	// All three packets should take the expensive path independently.
	for p := 0; p < 3; p++ {
		if model[e.PacketVar(p, 0)] != 0xAB {
			t.Errorf("packet %d byte0 = %#x", p, model[e.PacketVar(p, 0)])
		}
	}
}

// buildTableNF: reads a 2-byte index from the packet and loads one entry
// of a 64 KiB table — the minimal NF exhibiting adversarial memory access.
func buildTableNF(t *testing.T) (*ir.Module, *ir.Global) {
	t.Helper()
	m := ir.NewModule("table")
	g := m.AddGlobal("table", 1<<16, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	idx := fb.Load(pkt, 0, 2) // 16-bit index
	addr := fb.Add(fb.GlobalAddr(g), idx)
	fb.Ret(fb.Load(addr, 0, 1))
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestAdversarialPointerConcretization(t *testing.T) {
	mod, g := buildTableNF(t)
	geo := memsim.TinyGeometry()
	h := memsim.New(geo, 77)
	// Discover contention sets over the table region.
	var pool []uint64
	for a := g.Addr; a < g.Addr+g.Size; a += 64 {
		pool = append(pool, a)
	}
	model, err := cachemodel.Discover(h, cachemodel.DiscoverConfig{
		Pool:      pool[:256],
		Assoc:     geo.L3Ways,
		LineBytes: geo.LineBytes,
		LatL3:     geo.LatL3,
		LatDRAM:   geo.LatDRAM,
		MaxSets:   2,
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}

	an, err := icfg.Analyze(mod, 2, icfg.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{
		Mod:      mod,
		Analysis: an,
		Model:    model,
		Base:     interp.NewMemory(),
		HeapTop:  ir.HeapBase,
		Cfg:      Config{NPackets: geo.L3Ways + 2, PacketLen: 2, MaxStates: 2000},
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no completed state")
	}
	// The engine should have steered enough table accesses into one
	// contention set to exceed associativity.
	if res.Best.ExpectDRAM < uint64(geo.L3Ways) {
		t.Errorf("ExpectDRAM = %d, want >= %d", res.Best.ExpectDRAM, geo.L3Ways)
	}
	// The model must be solvable and the chosen indices distinct enough to
	// land in one hidden set past associativity.
	var s solver.Solver
	mdl, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatalf("unsat: %v", err)
	}
	setCount := map[int]int{}
	for p := 0; p < e.Cfg.NPackets; p++ {
		idx := mdl[e.PacketVar(p, 0)]<<8 | mdl[e.PacketVar(p, 1)]
		line := (g.Addr + idx) &^ 63
		if si := model.SetOf(line); si >= 0 {
			setCount[si]++
		}
	}
	max := 0
	for _, c := range setCount {
		if c > max {
			max = c
		}
	}
	if max <= geo.L3Ways {
		t.Errorf("largest same-set placement %d, want > α=%d (counts %v)", max, geo.L3Ways, setCount)
	}
}

func TestHavocRecording(t *testing.T) {
	m := ir.NewModule("havoc")
	key := m.AddGlobal("key", 16, 64)
	m.Layout()
	hid := m.AddHash("h", 12, func(b []byte) uint64 { return 0x123 })
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	// Copy 4 packet bytes into the key buffer, havoc-hash them, and
	// branch on the hash value.
	kaddr := fb.GlobalAddr(key)
	fb.Store(kaddr, 0, fb.Load(pkt, 0, 4), 4)
	hv := fb.Havoc(hid, kaddr, 4)
	fb.If(fb.CmpEqImm(hv, 0x7ff), func() {
		v := fb.MulImm(hv, 3)
		for i := 0; i < 10; i++ {
			v = fb.MulImm(v, 5)
		}
		fb.Ret(v)
	}, nil)
	fb.RetImm(0)
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, m, Config{NPackets: 1, PacketLen: 4, MaxStates: 200})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no completed state")
	}
	if len(res.Best.Havocs) != 1 {
		t.Fatalf("havocs = %d", len(res.Best.Havocs))
	}
	h := res.Best.Havocs[0]
	if h.HashID != hid || h.KeyLen != 4 || len(h.OutVars) != 2 {
		t.Errorf("havoc record = %+v", h)
	}
	// Best path should be the expensive one: hash value pinned to 0x7ff.
	var s solver.Solver
	mdl, err := s.Solve(res.Best.Constraints())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Out.Eval(mdl); got != 0x7ff {
		t.Errorf("havoced hash = %#x, want 0x7ff", got)
	}
	// Key expressions reference the packet bytes.
	if len(h.Key) != 4 {
		t.Fatalf("key exprs = %d", len(h.Key))
	}
	for i, ke := range h.Key {
		if !ke.HasVars() {
			t.Errorf("key byte %d is concrete: %v", i, ke)
		}
	}
}

func TestInfeasibleSidePruned(t *testing.T) {
	// if byte0 < 10 then (if byte0 > 200 then BOOM) — inner branch
	// infeasible; no state should complete via BOOM.
	m := ir.NewModule("prune")
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	b0 := fb.Load(pkt, 0, 1)
	out := fb.VarImm(0)
	fb.If(fb.CmpUlt(b0, fb.Const(10)), func() {
		fb.If(fb.Cmp(ir.Ugt, b0, fb.Const(200)), func() {
			out.SetImm(999)
		}, nil)
	}, nil)
	fb.Ret(out.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, m, Config{NPackets: 1, PacketLen: 2, MaxStates: 100})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var s solver.Solver
	for _, st := range res.Completed {
		mdl, err := s.Solve(st.Constraints())
		if err != nil {
			t.Errorf("completed state %d unsat", st.ID)
			continue
		}
		b := mdl[e.PacketVar(0, 0)]
		if b < 10 && b > 200 {
			t.Error("impossible model")
		}
	}
}

func TestExprHelperMapping(t *testing.T) {
	if binToExpr(ir.Add) != expr.OpAdd || binToExpr(ir.Lshr) != expr.OpLshr {
		t.Error("binToExpr mapping")
	}
	a, b := expr.Var(1), expr.Var(2)
	vals := map[expr.VarID]uint64{1: 5, 2: 3}
	if cmpExpr(ir.Ugt, a, b).Eval(vals) != 1 {
		t.Error("ugt")
	}
	if cmpExpr(ir.Uge, a, b).Eval(vals) != 1 {
		t.Error("uge")
	}
	if cmpExpr(ir.Ult, a, b).Eval(vals) != 0 {
		t.Error("ult")
	}
}

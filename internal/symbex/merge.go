package symbex

import (
	"sort"
	"strconv"

	"castan/internal/analysis"
	"castan/internal/expr"
	"castan/internal/ir"
)

// State merging (§3.3 adjacent): the ring NFs fork sibling states that
// probe alternative table slots and then reconverge — same program
// point, same store, same path-constraint set after canonicalization —
// differing only in accumulated cost. Re-exploring each sibling repeats
// identical work. At the two KLEE-style merge point families — packet
// boundaries (the virtual-exit postdominator) and the immediate
// postdominators of two-successor blocks (analysis.MergeBlocks) — the
// engine keys popped states by their full machine configuration and
// drops a state when an equal-keyed one with at least its cost was
// already pursued.
//
// The key deliberately covers everything that determines the state's
// future semantics — frame stack (function, block, pc, registers),
// memory overlay, heap cursor, havoc history, loop depth, and the
// constraint set (order-insensitive) — so a dropped state is a true
// duplicate of the kept one up to solver-model choice and cache-tracker
// history. Those two are not keyed: the kept representative is a real,
// self-consistent execution whose report is valid on its own; dropping
// its twin trades redundant exploration for time, which is exactly the
// contract of a best-first search already truncated by MaxStates and
// budgets (see DESIGN.md decision 14 for the honest scope of this
// argument).
const mergeMaxOverlay = 4096

// mergeCandidate reports whether s sits at a merge point: suspended at
// a packet boundary (top of the entry function, pc 0 — where
// finishPacket re-ranks states) or at the start of a postdominator
// join block.
func (e *Engine) mergeCandidate(s *State) bool {
	if s.Done || s.trapped != nil || len(s.frames) == 0 {
		return false
	}
	f := s.top()
	if f.pc != 0 {
		return false
	}
	if len(s.frames) == 1 && f.blk == f.fn.Entry() {
		return true
	}
	mb := e.mergeBlocks[f.fn]
	if mb == nil {
		if e.mergeBlocks == nil {
			e.mergeBlocks = map[*ir.Func]map[*ir.Block]bool{}
		}
		mb = analysis.MergeBlocks(f.fn)
		e.mergeBlocks[f.fn] = mb
	}
	return mb[f.blk]
}

// mergeKey canonicalizes the state's machine configuration. ok=false
// means the state is too large to key cheaply and is never merged.
func (e *Engine) mergeKey(s *State) (string, bool) {
	if len(s.mem.overlay) > mergeMaxOverlay {
		return "", false
	}
	b := make([]byte, 0, 512)
	app := func(v uint64) {
		b = strconv.AppendUint(b, v, 16)
		b = append(b, ',')
	}
	app(uint64(s.PacketsDone))
	app(uint64(s.LoopDepth))
	app(s.heapTop)
	app(uint64(s.nextHavocVar))
	for _, f := range s.frames {
		b = append(b, f.fn.Name...)
		b = append(b, ':')
		app(uint64(f.blk.Index))
		app(uint64(f.pc))
		app(uint64(int64(f.retDst)))
		for _, r := range f.regs {
			app(exprKey(r))
		}
	}
	b = append(b, 'M')
	addrs := make([]uint64, 0, len(s.mem.overlay))
	for a := range s.mem.overlay {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		app(a)
		app(exprKey(s.mem.overlay[a]))
	}
	b = append(b, 'H')
	for i := range s.Havocs {
		h := &s.Havocs[i]
		app(uint64(h.HashID))
		app(uint64(h.Packet))
		app(h.KeyAddr)
		app(uint64(h.KeyLen))
		for _, k := range h.Key {
			app(exprKey(k))
		}
		for _, v := range h.OutVars {
			app(uint64(v))
		}
		app(exprKey(h.Out))
	}
	b = append(b, 'C')
	cons := make([]uint64, 0, len(s.constraints))
	for _, c := range s.constraints {
		cons = append(cons, c.Fingerprint())
	}
	// The constraint set is a conjunction: order-insensitive.
	sort.Slice(cons, func(i, j int) bool { return cons[i] < cons[j] })
	for _, fp := range cons {
		app(fp)
	}
	return string(b), true
}

// exprKey fingerprints one expression for the merge key, folding
// range-concretizable expressions to their constant first so siblings
// whose stores differ only in how a provably-constant value was built
// still collide.
func exprKey(e *expr.Expr) uint64 {
	if e == nil {
		return 0
	}
	if v, ok := e.IsConst(); ok {
		return v ^ 0xc0ffee_0000_0000 // tag constants apart from fingerprints
	}
	if iv := expr.Range(e, nil); iv.Lo == iv.Hi {
		return iv.Lo ^ 0xc0ffee_0000_0000
	}
	return e.Fingerprint()
}

// tryMerge checks a freshly popped state against the merge table:
// true means s duplicates an already-pursued state of at least equal
// cost and must be dropped. Otherwise s (now the best-known
// representative of its key) is recorded and pursued.
func (e *Engine) tryMerge(s *State) bool {
	if !e.mergeCandidate(s) {
		return false
	}
	key, ok := e.mergeKey(s)
	if !ok {
		return false
	}
	if prev, seen := e.merged[key]; seen && prev >= s.CurCost {
		return true
	}
	if e.merged == nil {
		e.merged = map[string]uint64{}
	}
	e.merged[key] = s.CurCost
	return false
}

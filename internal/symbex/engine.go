package symbex

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"castan/internal/analysis/cachecost"
	"castan/internal/analysis/taint"
	"castan/internal/analysis/vrange"
	"castan/internal/budget"
	"castan/internal/cachemodel"
	"castan/internal/expr"
	"castan/internal/icfg"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/obs"
	"castan/internal/solver"
)

// Config tunes the exploration.
type Config struct {
	// Entry is the per-packet entry point, typically "nf_process"
	// (pktAddr, pktLen) -> action.
	Entry string
	// NPackets is the length of the synthesized adversarial sequence.
	NPackets int
	// PacketLen is the number of symbolic bytes per packet (the headers
	// the NF can observe). Defaults to 64.
	PacketLen int
	// MaxStates bounds how many state suspensions the searcher processes
	// (the "time budget" of §3.1). Defaults to 20000.
	MaxStates int
	// StepChunk is how many instructions a state may run before the
	// searcher reconsiders priorities. Defaults to 2048.
	StepChunk int
	// MaxLoopIters bounds consecutive symbolic iterations of one loop
	// head within a state. Defaults to 64.
	MaxLoopIters int
	// SolverSteps is the per-query budget for full feasibility checks
	// (local repair handles the common cases first). Defaults to 40000.
	SolverSteps int
	// LocalSolverSteps is the per-query budget for localRepair's small
	// substituted problems. Defaults to 20000.
	LocalSolverSteps int
	// KeepBest is how many completed states to retain. Defaults to 8.
	KeepBest int
	// StopAfterDone halts exploration once this many states have consumed
	// all N packets — in best-first order the earliest completions follow
	// the highest-cost paths. Defaults to 16.
	StopAfterDone int
}

func (c *Config) fill() {
	if c.Entry == "" {
		c.Entry = "nf_process"
	}
	if c.NPackets <= 0 {
		c.NPackets = 1
	}
	if c.PacketLen <= 0 {
		c.PacketLen = 64
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 20000
	}
	if c.StepChunk <= 0 {
		c.StepChunk = 2048
	}
	if c.MaxLoopIters <= 0 {
		c.MaxLoopIters = 64
	}
	if c.SolverSteps <= 0 {
		c.SolverSteps = 8000
	}
	if c.LocalSolverSteps <= 0 {
		c.LocalSolverSteps = 20000
	}
	if c.KeepBest <= 0 {
		c.KeepBest = 8
	}
	if c.StopAfterDone <= 0 {
		c.StopAfterDone = 16
	}
}

// Engine explores one NF module.
type Engine struct {
	Mod      *ir.Module
	Analysis *icfg.Analysis
	// PotentialAnalysis, when set, supplies the potential-cost heuristic
	// (§3.4) while Analysis keeps accounting realized costs. Passing an
	// *optimistic* analysis here (memory priced at DRAM, generous loop
	// bound) makes the searcher's first completions the highest-cost
	// paths, which is what lets exploration stop early.
	PotentialAnalysis *icfg.Analysis
	// StaticCost, when set, contributes an admissible static component to
	// the search priority: the abstract cache analysis's worst-case bound
	// on the residual CFG. The searcher takes the max of the ICFG
	// potential and the static bound, so states whose remaining program
	// has a higher static worst case are explored first.
	StaticCost *cachecost.Analysis
	// Model is the discovered cache model; nil disables adversarial
	// pointer concretization (costs then assume cold-miss-once).
	Model *cachemodel.Model
	// Base is the concrete memory snapshot after NF setup (tables
	// populated); symbolic writes overlay it.
	Base *interp.Memory
	// HeapTop is the bump-allocator start (the setup machine's heap top).
	HeapTop uint64
	Cfg     Config

	// Trace, when non-nil, receives search events ("pop", "done", "trap",
	// "fork") for debugging and tests.
	Trace func(event string, s *State)

	// Obs, when non-nil, receives search telemetry: instruction steps,
	// forks, state-queue depth, path-constraint sizes, and (through the
	// engine's solvers) per-query solver effort. The engine runs on one
	// goroutine, so all readings are deterministic.
	Obs *obs.Recorder

	// Budget, when non-nil, is charged one "symbex" tick per state pop
	// (plus "solver" ticks through the engine's solvers); when it runs
	// out the search stops at that pop boundary and Result records the
	// reason. The engine runs on one goroutine, so the cut lands on the
	// same pop at every worker count.
	Budget *budget.Meter

	// SolverFault, when non-nil, is a fault-injection hook forcing engine
	// solver queries to return Unknown once it fires (tests only). It is
	// called from the engine goroutine only, so a counting hook stays
	// deterministic.
	SolverFault func() bool

	// Taint, when non-nil, enables taint-directed concrete folding: hash
	// sites whose key the analysis proves input-independent execute
	// concretely (no havoc record, no rainbow table), resolved symbolic
	// addresses write their forced constant back into the register, and
	// address expressions over already-pinned havoc symbols skip the
	// contended-candidate sweep. All of it is model-preserving — the
	// engine explores exactly the paths it would without Taint, with
	// strictly fewer solver queries — so leaving this nil only costs
	// effort, never coverage.
	Taint *taint.Analysis

	// VRange, when non-nil, enables value-range-directed shortcuts: a
	// conditional branch the analysis statically decides is taken
	// concretely — no fork, no feasibility query, no constraint — and
	// states popped at merge points are deduplicated against
	// already-pursued equal-configuration states (merge.go). Decided
	// conditions are tautologies over the packet/havoc variable domains
	// (vrange's entry facts cover every assignment the solver can
	// produce), so skipping the constraint never excludes a model.
	VRange *vrange.Analysis

	// Memo, when non-nil, is shared by every solver the engine
	// constructs (newSolver) so Unsat verdicts learned by one state's
	// query answer its siblings' renamed duplicates, and directly
	// invertible queries are discharged by the value-range model probe.
	// The caller also shares it with any post-search concretization
	// solvers.
	Memo *solver.Memo

	sol      solver.Solver
	nextID   int
	forks    int
	explored int
	hStatic  *obs.Histogram
	cFolded  *obs.Counter
	cAvoided *obs.Counter
	cPruned  *obs.Counter

	merged      map[string]uint64 // merge-point key -> best pursued cost
	mergeBlocks map[*ir.Func]map[*ir.Block]bool
}

// Result is the outcome of an exploration.
type Result struct {
	// Best is the completed state with the highest current cost, or nil
	// if no state consumed all N packets within budget.
	Best *State
	// Completed holds the KeepBest best completed states (Best first).
	Completed []*State
	// StatesExplored and Forks describe the search effort.
	StatesExplored int
	Forks          int
	// PopsToFirstDone is the number of state pops when the first state
	// completed (0 if none did).
	PopsToFirstDone int
	// PopsToBest is the number of state pops when the state that ended up
	// as Best completed — the searcher's steps-to-worst-path (0 if no
	// state completed).
	PopsToBest int
	// BudgetExhausted is the budget's exhaustion reason when the search
	// was cut short by its budget.Meter ("" when the search ran to its
	// own MaxStates/StopAfterDone limits).
	BudgetExhausted string
	// BestPartial is the most-progressed pending state when no state
	// completed: most packets consumed, then highest realized cost, then
	// lowest ID — a deterministic choice a degraded pipeline can still
	// emit a workload from. nil when Completed is non-empty or the queue
	// drained.
	BestPartial *State
}

// stateHeap is a max-heap on Priority.
type stateHeap []*State

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].Priority() > h[j].Priority() }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(*State)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// PacketVar returns the variable ID for byte b of packet p, fixing the
// model→packet mapping used by downstream consumers.
func (e *Engine) PacketVar(p, b int) expr.VarID {
	return expr.VarID(p*e.Cfg.PacketLen + b)
}

// havocVarBase is the first variable ID beyond all packet bytes.
func (e *Engine) havocVarBase() expr.VarID {
	return expr.VarID(e.Cfg.NPackets * e.Cfg.PacketLen)
}

// newSolver is the single place engine solvers are configured: every
// solver the engine creates (the full-check solver and localRepair's
// per-problem solvers) carries the engine's recorder and an explicit
// step budget. Call only after Cfg.fill has run.
func (e *Engine) newSolver(maxSteps int) solver.Solver {
	return solver.Solver{
		MaxSteps:     maxSteps,
		Obs:          e.Obs,
		Budget:       e.Budget.Stage(budget.StageSolver),
		ForceUnknown: e.SolverFault,
		Memo:         e.Memo,
	}
}

// Run explores the NF and returns the best adversarial states found.
func (e *Engine) Run() (*Result, error) {
	e.Cfg.fill()
	entry := e.Mod.Funcs[e.Cfg.Entry]
	if entry == nil {
		return nil, fmt.Errorf("symbex: no entry function %q", e.Cfg.Entry)
	}
	if entry.NumParams != 2 {
		return nil, fmt.Errorf("symbex: entry %q must take (pktAddr, pktLen)", e.Cfg.Entry)
	}
	e.sol = e.newSolver(e.Cfg.SolverSteps)

	init := &State{
		ID:           e.nextID,
		mem:          newSymMemory(e.Base),
		nextHavocVar: e.havocVarBase(),
		model:        solver.Model{},
	}
	e.nextID++
	init.heapTop = e.HeapTop
	if e.Model != nil {
		init.tracker = e.Model.NewTracker()
	}
	e.injectPacket(init, entry)

	var pq stateHeap
	heap.Init(&pq)
	heap.Push(&pq, init)

	// Instruments are looked up once; all of them no-op when e.Obs is nil.
	var (
		cPops     = e.Obs.Counter("symbex.state_pops")
		cInstrs   = e.Obs.Counter("symbex.instructions")
		cDone     = e.Obs.Counter("symbex.done_states")
		cTrapped  = e.Obs.Counter("symbex.trapped_states")
		gQueue    = e.Obs.Gauge("symbex.queue_depth")
		hPathCons = e.Obs.Histogram("symbex.path_constraints", obs.ExpBuckets(4, 14)...)
	)
	e.hStatic = e.Obs.Histogram("symbex.static_potential", obs.ExpBuckets(8, 16)...)
	e.cFolded = e.Obs.Counter("symbex.folded_instructions")
	e.cAvoided = e.Obs.Counter("solver.queries_avoided")
	e.cPruned = e.Obs.Counter("symbex.pruned_edges")
	cMerged := e.Obs.Counter("symbex.merged_states")

	var completed []*State
	done := 0
	pops := 0
	popsToFirstDone, popsToBest := 0, 0
	bSymbex := e.Budget.Stage(budget.StageSymbex)
	var budgetReason string
	for pq.Len() > 0 && e.explored < e.Cfg.MaxStates && done < e.Cfg.StopAfterDone {
		// The budget cut point is the pop boundary: single goroutine,
		// checked before any work on the next state, so exhaustion lands
		// on the same pop at every worker count.
		if reason, ok := bSymbex.Exhausted(); ok {
			budgetReason = reason
			break
		}
		s := heap.Pop(&pq).(*State)
		pops++
		bSymbex.Charge(1)
		cPops.Inc()
		gQueue.Set(uint64(pq.Len()))
		// Batch progress for live subscribers, published from the pop
		// boundary — the run's single-goroutine orchestration point — every
		// 256 pops so the stream stays cheap and deterministic.
		if pops%256 == 0 {
			e.Obs.Progress("castan.symbex", "state_pops", uint64(pops), uint64(e.Cfg.MaxStates))
		}
		if e.Trace != nil {
			e.Trace("pop", s)
		}
		// Merge-point dedup: a popped state whose full configuration
		// was already pursued at equal or higher cost is a duplicate —
		// drop it instead of re-exploring its future.
		if e.VRange != nil && e.tryMerge(s) {
			cMerged.Inc()
			if e.Trace != nil {
				e.Trace("merge", s)
			}
			continue
		}
		// Local pursuit: keep stepping this state while it still outranks
		// everything pending. A loose (optimistic) heuristic would
		// otherwise devolve into breadth-first search — the failure mode
		// §3.1 warns about.
		for {
			e.explored++
			if e.explored >= e.Cfg.MaxStates {
				break
			}
			instrsBefore := s.Instrs
			forks := e.step(s, entry)
			cInstrs.Add(s.Instrs - instrsBefore)
			for _, f := range forks {
				heap.Push(&pq, f)
			}
			if s.Done || s.trapped != nil {
				break
			}
			s.Potential = e.potential(s)
			if pq.Len() > 0 && s.Priority() < pq[0].Priority() {
				break
			}
		}
		if s.Done {
			done++
			cDone.Inc()
			hPathCons.Observe(uint64(len(s.constraints)))
			if e.Trace != nil {
				e.Trace("done", s)
			}
			if done == 1 {
				popsToFirstDone = pops
			}
			completed = insertCompleted(completed, s, e.Cfg.KeepBest)
			if completed[0] == s {
				popsToBest = pops
			}
			continue
		}
		if s.trapped != nil {
			cTrapped.Inc()
			if e.Trace != nil {
				e.Trace("trap", s)
			}
			continue
		}
		heap.Push(&pq, s)
	}
	e.Obs.Counter("symbex.states_explored").Add(uint64(e.explored))
	e.Obs.Counter("symbex.forks").Add(uint64(e.forks))
	res := &Result{
		Completed:       completed,
		StatesExplored:  e.explored,
		Forks:           e.forks,
		PopsToFirstDone: popsToFirstDone,
		PopsToBest:      popsToBest,
		BudgetExhausted: budgetReason,
	}
	if len(completed) > 0 {
		res.Best = completed[0]
	} else {
		res.BestPartial = bestPartial(pq)
	}
	return res, nil
}

// bestPartial picks the most-progressed pending state: most packets
// consumed, then highest realized cost, then lowest ID. Trapped and
// completed states never sit in the queue, so every candidate is a live
// partial path.
func bestPartial(pq stateHeap) *State {
	var best *State
	for _, s := range pq {
		if best == nil ||
			s.PacketsDone > best.PacketsDone ||
			(s.PacketsDone == best.PacketsDone && s.CurCost > best.CurCost) ||
			(s.PacketsDone == best.PacketsDone && s.CurCost == best.CurCost && s.ID < best.ID) {
			best = s
		}
	}
	return best
}

func insertCompleted(list []*State, s *State, keep int) []*State {
	list = append(list, s)
	for i := len(list) - 1; i > 0 && list[i].CurCost > list[i-1].CurCost; i-- {
		list[i], list[i-1] = list[i-1], list[i]
	}
	if len(list) > keep {
		list = list[:keep]
	}
	return list
}

// potential estimates the cycles still reachable from s: the annotated
// ICFG potential of every frame's continuation, plus a full per-packet
// summary for each packet not yet received (§3.4).
func (e *Engine) potential(s *State) uint64 {
	an := e.PotentialAnalysis
	if an == nil {
		an = e.Analysis
	}
	// Exactly as in §3.1/§3.4, the potential covers only the path from
	// here to the next packet reception (the in-flight call stack), so a
	// state's priority estimates its realized cost at the END of the
	// current packet. No term for future packets (it would bias the queue
	// toward less-progressed states), and zero for a state resting at a
	// packet boundary (every state gets the same fresh-packet maximum, so
	// including it would bias the queue toward whoever reached a boundary
	// most cheaply). Boundary states therefore compare by pure realized
	// cost, and the search greedily rides the most expensive path.
	entry := e.Mod.Funcs[e.Cfg.Entry]
	if len(s.frames) == 1 {
		f := s.frames[0]
		if f.fn == entry && f.blk == entry.Entry() && f.pc == 0 {
			return 0
		}
	}
	var p uint64
	for _, f := range s.frames {
		p += an.Potential(f.blk, f.pc)
	}
	// The static worst-case bound of the residual CFG is an upper bound on
	// the cycles still reachable, and so is the ICFG potential — so their
	// MIN is a tighter upper bound and the priority stays admissible
	// (first completions still ride the worst paths). Tighter estimates
	// mean fewer pops before the worst path completes: among states the
	// ICFG prices identically, those whose residual program has the higher
	// static bound keep the higher priority. A frame without a static
	// bound (unbounded loop) leaves the ICFG estimate alone.
	if e.StaticCost != nil {
		var st uint64
		bounded := true
		for _, f := range s.frames {
			r, ok := e.StaticCost.Residual(f.blk, f.pc)
			if !ok {
				bounded = false
				break
			}
			st += r
		}
		if bounded {
			e.hStatic.Observe(st)
			if st < p {
				p = st
			}
		}
	}
	return p
}

// injectPacket starts processing of the next packet: fresh symbolic bytes
// at PacketBase and a fresh call frame for the entry function. DDIO is
// modelled by pre-placing the packet's header lines in the cache tracker.
func (e *Engine) injectPacket(s *State, entry *ir.Func) {
	p := s.PacketsDone
	vars := make([]expr.VarID, e.Cfg.PacketLen)
	for i := range vars {
		vars[i] = e.PacketVar(p, i)
	}
	s.mem.setSymbolicBytes(ir.PacketBase, vars)
	if s.tracker != nil {
		for off := 0; off < e.Cfg.PacketLen; off += e.Model.LineBytes {
			s.tracker.RecordAccess(ir.PacketBase + uint64(off))
		}
	}
	f := &frame{
		fn:   entry,
		regs: make([]*expr.Expr, entry.NumRegs),
		blk:  entry.Entry(),
	}
	zero := expr.Const(0)
	for i := range f.regs {
		f.regs[i] = zero
	}
	f.regs[0] = expr.Const(ir.PacketBase)
	f.regs[1] = expr.Const(uint64(e.Cfg.PacketLen))
	f.retDst = ir.NoReg
	s.frames = []*frame{f}
	s.packetStartCost = s.CurCost
}

// step runs s until it forks, completes a packet sequence, traps, or
// exhausts its chunk. Returns any forked states.
func (e *Engine) step(s *State, entry *ir.Func) []*State {
	var forks []*State
	cm := e.Analysis.Cost
	for n := 0; n < e.Cfg.StepChunk; n++ {
		f := s.top()
		if f.pc >= len(f.blk.Instrs) {
			s.trapped = fmt.Errorf("fell off block %s", f.blk.Name)
			return forks
		}
		in := f.blk.Instrs[f.pc]
		s.Instrs++
		switch in.Op {
		case ir.OpConst:
			s.CurCost += cm.Mov
			s.setReg(in.Dst, expr.Const(in.Imm))
		case ir.OpMov:
			s.CurCost += cm.Mov
			s.setReg(in.Dst, s.reg(in.A))
		case ir.OpBin:
			s.CurCost += cm.InstrCost(in)
			s.setReg(in.Dst, expr.New(binToExpr(in.Bin), s.reg(in.A), s.reg(in.B)))
		case ir.OpCmp:
			s.CurCost += cm.Cmp
			s.setReg(in.Dst, cmpExpr(in.Pred, s.reg(in.A), s.reg(in.B)))
		case ir.OpSelect:
			s.CurCost += cm.Cmp
			s.setReg(in.Dst, expr.Ite(s.reg(in.A), s.reg(in.B), s.reg(in.C)))
		case ir.OpLoad:
			s.Loads++
			addr, ok := e.resolveAddr(s, expr.Add(s.reg(in.A), expr.Const(in.Imm)))
			if !ok {
				return forks
			}
			e.writebackAddr(s, in, addr)
			s.CurCost += e.memCost(s, addr)
			s.setReg(in.Dst, s.mem.read(addr, in.Size))
		case ir.OpStore:
			s.Stores++
			addr, ok := e.resolveAddr(s, expr.Add(s.reg(in.A), expr.Const(in.Imm)))
			if !ok {
				return forks
			}
			e.writebackAddr(s, in, addr)
			s.CurCost += e.memCost(s, addr)
			s.mem.write(addr, s.reg(in.B), in.Size)
		case ir.OpBr:
			s.CurCost += cm.Branch
			e.jump(s, f, in.Blk0)
			continue
		case ir.OpCondBr:
			s.CurCost += cm.Branch
			cond := s.reg(in.A)
			if v, ok := cond.IsConst(); ok {
				if v != 0 {
					e.jump(s, f, in.Blk0)
				} else {
					e.jump(s, f, in.Blk1)
				}
				continue
			}
			// Value-range pruning: a branch the static analysis decides
			// is taken concretely — the infeasible side is never forked
			// or queried, and no constraint is recorded, because the
			// decided condition holds for every assignment of the
			// symbolic variables (their domains are exactly the packet
			// and hash-width ranges vrange started from).
			if e.VRange != nil {
				if take, ok := e.VRange.BranchDecided(in); ok {
					e.cPruned.Inc()
					if take {
						e.jump(s, f, in.Blk0)
					} else {
						e.jump(s, f, in.Blk1)
					}
					continue
				}
			}
			forked := e.fork(s, f, in, cond)
			if forked != nil {
				forks = append(forks, forked)
			}
			continue
		case ir.OpCall:
			s.CurCost += cm.Call
			callee := in.Callee
			nf := &frame{
				fn:     callee,
				regs:   make([]*expr.Expr, callee.NumRegs),
				blk:    callee.Entry(),
				retDst: in.Dst,
			}
			zero := expr.Const(0)
			for i := range nf.regs {
				nf.regs[i] = zero
			}
			for i, a := range in.Args {
				nf.regs[i] = s.reg(a)
			}
			f.pc++ // resume after the call on return
			s.frames = append(s.frames, nf)
			continue
		case ir.OpRet:
			s.CurCost += cm.Call
			var ret *expr.Expr
			if in.A != ir.NoReg {
				ret = s.reg(in.A)
			} else {
				ret = expr.Const(0)
			}
			if len(s.frames) == 1 {
				// Packet boundary: suspend so the searcher re-ranks this
				// state against pending forks before the next packet —
				// otherwise a cheap path would race through the whole
				// sequence inside one chunk.
				e.finishPacket(s, ret, entry)
				return forks
			}
			retDst := f.retDst
			s.frames = s.frames[:len(s.frames)-1]
			s.setReg(retDst, ret)
			continue
		case ir.OpAlloc:
			s.CurCost += cm.Alloc
			size, ok := s.reg(in.A).IsConst()
			if !ok {
				s.trapped = fmt.Errorf("symbolic allocation size")
				return forks
			}
			addr := (s.heapTop + 63) &^ 63
			s.heapTop = addr + size
			// Fresh allocations read as zero already (base memory is
			// zero-filled), matching the interpreter.
			s.setReg(in.Dst, expr.Const(addr))
		case ir.OpHavoc:
			s.CurCost += cm.Havoc
			e.havoc(s, in)
		default:
			s.trapped = fmt.Errorf("bad opcode %d", in.Op)
			return forks
		}
		// Taint-directed fold accounting: an instruction the analysis
		// proved input-independent whose result came out constant needed
		// no symbolic machinery at all.
		if e.Taint != nil && s.trapped == nil {
			switch in.Op {
			case ir.OpBin, ir.OpCmp, ir.OpSelect, ir.OpLoad, ir.OpHavoc:
				if in.Dst != ir.NoReg && e.Taint.ClassOf(in) == taint.Untainted {
					if _, isC := s.top().regs[in.Dst].IsConst(); isC {
						e.cFolded.Inc()
					}
				}
			}
		}
		f.pc++
	}
	return forks
}

// writebackAddr folds a just-resolved address back into the base
// register: resolveAddr pinned Eq(base+Imm, addr), which determines the
// base register uniquely (mod 2^64), so subsequent accesses through it
// take the constant fast path instead of re-running the candidate
// sweep. Model-preserving — any later sweep over the same pinned
// symbols could only re-derive this very address.
func (e *Engine) writebackAddr(s *State, in *ir.Instr, addr uint64) {
	if e.Taint == nil {
		return
	}
	if _, isC := s.reg(in.A).IsConst(); isC {
		return
	}
	s.setReg(in.A, expr.Const(addr-in.Imm))
	e.cFolded.Inc()
}

func binToExpr(b ir.BinOp) expr.Op {
	switch b {
	case ir.Add:
		return expr.OpAdd
	case ir.Sub:
		return expr.OpSub
	case ir.Mul:
		return expr.OpMul
	case ir.UDiv:
		return expr.OpUDiv
	case ir.URem:
		return expr.OpURem
	case ir.And:
		return expr.OpAnd
	case ir.Or:
		return expr.OpOr
	case ir.Xor:
		return expr.OpXor
	case ir.Shl:
		return expr.OpShl
	case ir.Lshr:
		return expr.OpLshr
	}
	panic("symbex: bad binop")
}

func cmpExpr(p ir.Pred, a, b *expr.Expr) *expr.Expr {
	switch p {
	case ir.Eq:
		return expr.Eq(a, b)
	case ir.Ne:
		return expr.Ne(a, b)
	case ir.Ult:
		return expr.Ult(a, b)
	case ir.Ule:
		return expr.Ule(a, b)
	case ir.Ugt:
		return expr.Ult(b, a)
	case ir.Uge:
		return expr.Ule(b, a)
	}
	panic("symbex: bad pred")
}

// jump moves the frame to target, applying the loop-deepening guard: the
// engine allows revisiting a loop head, but a state that spins too long on
// one head is trapped (the directed searcher will have forked an exit
// state long before).
func (e *Engine) jump(s *State, f *frame, target *ir.Block) {
	if e.Analysis.IsLoopHead(target) {
		if f.blk == target || blockDominatedBy(f.blk, target) {
			s.LoopDepth++
			if s.LoopDepth > e.Cfg.MaxLoopIters {
				s.trapped = fmt.Errorf("loop budget exhausted at %s", target.Name)
				return
			}
		} else {
			s.LoopDepth = 0
		}
	}
	f.blk = target
	f.pc = 0
}

// blockDominatedBy is a cheap approximation used only for loop-depth
// bookkeeping: a back edge usually jumps from a block with a higher index
// to the head.
func blockDominatedBy(b, head *ir.Block) bool {
	return b.Index >= head.Index
}

// fork splits s at a symbolic conditional branch. The state's cached
// model satisfies exactly one side for free; the other side needs one
// hinted solver check. The side with the higher potential continues in s
// (the paper's loop policy: at a loop head, always pursue one more
// iteration); the other side is returned as a new state, or nil.
func (e *Engine) fork(s *State, f *frame, in *ir.Instr, cond *expr.Expr) *State {
	trueC := expr.Truth(cond)
	falseC := expr.Not(cond)
	freeC, otherC := trueC, falseC
	freeBlk, otherBlk := in.Blk0, in.Blk1
	if trueC.Eval(s.model) == 0 {
		freeC, otherC = falseC, trueC
		freeBlk, otherBlk = in.Blk1, in.Blk0
	}
	an := e.PotentialAnalysis
	if an == nil {
		an = e.Analysis
	}
	preferOther := an.Potential(otherBlk, 0) > an.Potential(freeBlk, 0)
	otherModel, otherOK := e.extendModel(s, otherC)
	if !otherOK {
		s.addConstraint(freeC)
		e.jump(s, f, freeBlk)
		return nil
	}
	e.forks++
	branch := s.clone(e.nextID)
	e.nextID++
	if preferOther {
		// s pursues the higher-potential side with the repaired model;
		// the clone keeps the model-satisfied side.
		branch.addConstraint(freeC)
		branch.top().blk = freeBlk
		branch.top().pc = 0
		branch.Potential = e.potential(branch)
		s.addConstraint(otherC)
		s.model = otherModel
		e.jump(s, f, otherBlk)
		return branch
	}
	branch.addConstraint(otherC)
	branch.model = otherModel
	branch.top().blk = otherBlk
	branch.top().pc = 0
	branch.Potential = e.potential(branch)
	s.addConstraint(freeC)
	e.jump(s, f, freeBlk)
	return branch
}

// extendModel tries to extend the state's constraints with c, returning a
// satisfying model. Three stages, cheapest first: (1) the cached model
// may already satisfy c; (2) local repair — re-solve only c's variables
// with everything else substituted from the model, which handles the
// common "pick a different source port" adjustments in microseconds;
// (3) a full hinted solve. Unknown results are treated as infeasible,
// preserving the model invariant.
func (e *Engine) extendModel(s *State, c *expr.Expr) (solver.Model, bool) {
	if b, ok := c.IsBool(); ok {
		if b {
			return s.model, true
		}
		return nil, false
	}
	if c.Eval(s.model) != 0 {
		return s.model, true
	}
	if solver.QuickFeasible([]*expr.Expr{c}) == solver.Unsat {
		return nil, false
	}
	// Prefer repairing only the in-flight packet's bytes (and havoc
	// outputs): earlier packets' constraints stay untouched, keeping the
	// local problem tiny.
	switch m, res := e.localRepair(s, c, e.currentPacketFilter(s)); res {
	case solver.Sat:
		DbgLocal1.Add(1)
		return m, true
	case solver.Unsat:
		// Unsatisfiable with the whole current packet free and all earlier
		// packets pinned. Re-choosing earlier packets' bytes could in
		// principle reopen the branch, but the engine commits to its
		// earlier choices (the locally-optimal policy of §3.3).
		DbgLocalUnsat.Add(1)
		return nil, false
	}
	DbgFull.Add(1)
	all := append(append([]*expr.Expr(nil), s.constraints...), c)
	e.sol.Hint = s.model
	res, m := e.sol.Check(all)
	e.sol.Hint = nil
	if res != solver.Sat {
		DbgFullFail.Add(1)
		return nil, false
	}
	return m, true
}

// Debug counters (instrumentation; reset freely in tests). Atomic so
// concurrent Analyze runs (the castand service) tally without racing.
var DbgLocal1, DbgLocal2, DbgLocalUnsat, DbgFull, DbgFullFail atomic.Int64

// DbgDump, when set, receives local problems the budgeted solver could not
// decide (instrumentation).
var DbgDump func(c *expr.Expr, local []*expr.Expr, free map[expr.VarID]bool)

// currentPacketFilter restricts repairs to the in-flight packet's bytes
// and havoc output symbols.
func (e *Engine) currentPacketFilter(s *State) func(expr.VarID) bool {
	lo := expr.VarID(s.PacketsDone * e.Cfg.PacketLen)
	hi := lo + expr.VarID(e.Cfg.PacketLen)
	havocBase := e.havocVarBase()
	return func(v expr.VarID) bool {
		return (v >= lo && v < hi) || v >= havocBase
	}
}

// localRepair attempts to satisfy c by reassigning only the variables
// occurring in c (optionally narrowed by filter): every other variable is
// pinned to its model value, and the constraints sharing the free
// variables are re-solved as a small local problem. Failure is not
// conclusive (the pinning may be too rigid), so callers fall through.
func (e *Engine) localRepair(s *State, c *expr.Expr, filter func(expr.VarID) bool) (solver.Model, solver.Result) {
	vars := c.VarList()
	if len(vars) == 0 || len(vars) > 40 {
		return nil, solver.Unknown
	}
	free := make(map[expr.VarID]bool, len(vars))
	for _, v := range vars {
		if filter == nil || filter(v) {
			free[v] = true
		}
	}
	if len(free) == 0 {
		return nil, solver.Unknown
	}
	fixed := make(map[expr.VarID]uint64)
	collectFixed := func(ex *expr.Expr) {
		for _, v := range ex.VarList() {
			if !free[v] {
				fixed[v] = s.model[v] & 0xff
			}
		}
	}
	var local []*expr.Expr
	for _, pc := range s.constraints {
		shares := false
		for _, v := range pc.VarList() {
			if free[v] {
				shares = true
				break
			}
		}
		if !shares {
			continue
		}
		collectFixed(pc)
		local = append(local, pc.Substitute(fixed))
	}
	collectFixed(c)
	local = append(local, c.Substitute(fixed))
	sol := e.newSolver(e.Cfg.LocalSolverSteps)
	sol.Hint = s.model
	res, m := sol.Check(local)
	if res != solver.Sat {
		if DbgDump != nil && res == solver.Unknown {
			DbgDump(c, local, free)
		}
		return nil, res
	}
	merged := make(solver.Model, len(s.model)+len(m))
	for k, v := range s.model {
		merged[k] = v
	}
	for k, v := range m {
		merged[k] = v
	}
	return merged, solver.Sat
}

// resolveAddr turns a (possibly symbolic) address expression into a
// concrete address, implementing §3.3: prefer candidates in the currently
// most-contended contention set, then lines already hot on this path
// (locally optimal for collision attacks), and finally any satisfying
// address — which the cached model provides for free.
func (e *Engine) resolveAddr(s *State, a *expr.Expr) (uint64, bool) {
	if v, ok := a.IsConst(); ok {
		return v, true
	}
	if s.tracker != nil {
		iv := expr.Range(a, nil)
		lb := uint64(e.Model.LineBytes)
		candidates := s.tracker.Candidates()
		hot := s.tracker.HotLines()
		lists := [2][]uint64{candidates, hot}
		caps := [2]int{24, 8}
		// Taint-directed sweep skip: when every symbol in a is a havoc
		// output a previous pin already forced, the path constraints
		// determine a's value — every candidate line but the model's own
		// would come back Unsat from localRepair, and the model's line
		// would succeed for free and pin the value the model already
		// holds. Jump straight to that outcome, crediting the probes the
		// sweep would have burned.
		if e.Taint != nil && s.allPinnedHavoc(a) {
			addr := a.Eval(s.model)
			modelLine := addr &^ (lb - 1)
			avoided := uint64(0)
		sweep:
			for li, list := range lists {
				tried := 0
				for _, line := range list {
					if line+lb <= iv.Lo || line > iv.Hi || tried >= caps[li] {
						continue
					}
					tried++
					if line == modelLine {
						break sweep
					}
					avoided++
				}
			}
			e.cAvoided.Add(avoided)
			s.addConstraint(expr.Eq(a, expr.Const(addr)))
			return addr, true
		}
		for li, list := range lists {
			tried := 0
			for _, line := range list {
				if line+lb <= iv.Lo || line > iv.Hi || tried >= caps[li] {
					continue
				}
				tried++
				inLine := expr.Eq(expr.And(a, expr.Const(^(lb-1))), expr.Const(line))
				m, ok := e.extendModel(s, inLine)
				if !ok {
					continue
				}
				s.model = m
				addr := a.Eval(m)
				s.addConstraint(expr.Eq(a, expr.Const(addr)))
				s.markPinned(a)
				return addr, true
			}
		}
	}
	// Fallback: the cached model already satisfies the path constraint, so
	// it directly yields a consistent concrete address.
	addr := a.Eval(s.model)
	s.addConstraint(expr.Eq(a, expr.Const(addr)))
	s.markPinned(a)
	return addr, true
}

// memCost charges the cycle cost of an access at a concrete address, using
// the cache tracker's prediction (DRAM for cold or thrashing lines, L1
// otherwise).
func (e *Engine) memCost(s *State, addr uint64) uint64 {
	if s.tracker != nil {
		if s.tracker.RecordAccess(addr) {
			s.ExpectDRAM++
			return e.Analysis.Cost.MemDRAM
		}
		s.ExpectHit++
		return e.Analysis.Cost.MemL1
	}
	s.ExpectHit++
	return e.Analysis.Cost.MemL1
}

// havoc implements OpHavoc symbolically: fresh output variables replace
// the hash value, and the (key, output) pair is recorded for rainbow
// reconciliation. A concrete key region is required (NF keys live in
// fixed scratch buffers).
func (e *Engine) havoc(s *State, in *ir.Instr) {
	keyAddr, ok := s.reg(in.A).IsConst()
	if !ok {
		s.trapped = fmt.Errorf("symbolic havoc key address")
		return
	}
	h := e.Mod.Hashes[in.HashID]
	keyLen := int(in.Imm)
	key := make([]*expr.Expr, keyLen)
	for i := range key {
		key[i] = s.mem.readByte(keyAddr + uint64(i))
	}
	// Taint-directed fold: when the analysis proved this site's key
	// input-independent and the key bytes are indeed all concrete, the
	// hash output is a run-to-run constant — compute it outright. No
	// havoc record means no fresh symbols, no candidate sweeps on
	// addresses derived from it, and no rainbow table downstream.
	if e.Taint != nil && e.Taint.ClassOf(in) == taint.Untainted {
		concrete := make([]byte, keyLen)
		allConst := true
		for i, kb := range key {
			v, ok := kb.IsConst()
			if !ok {
				allConst = false
				break
			}
			concrete[i] = byte(v)
		}
		if allConst {
			mask := uint64(1)<<uint(h.Bits) - 1
			if h.Bits >= 64 {
				mask = ^uint64(0)
			}
			s.setReg(in.Dst, expr.Const(h.Fn(concrete)&mask))
			return
		}
	}
	nOut := (h.Bits + 7) / 8
	outVars := make([]expr.VarID, nOut)
	outBytes := make([]*expr.Expr, nOut)
	for i := range outVars {
		outVars[i] = s.nextHavocVar
		s.nextHavocVar++
		outBytes[i] = expr.Var(outVars[i])
	}
	out := expr.ConcatBytes(outBytes...)
	if h.Bits%8 != 0 {
		mask := uint64(1)<<uint(h.Bits) - 1
		out = expr.And(out, expr.Const(mask))
	}
	s.markHavocVars(outVars)
	s.Havocs = append(s.Havocs, HavocRecord{
		HashID:  in.HashID,
		Packet:  s.PacketsDone,
		KeyAddr: keyAddr,
		KeyLen:  keyLen,
		Key:     key,
		OutVars: outVars,
		Out:     out,
	})
	s.setReg(in.Dst, out)
}

// finishPacket records the completed packet and either injects the next
// one or marks the state done. Returns true when the state finished all
// packets (so the caller stops stepping it).
func (e *Engine) finishPacket(s *State, ret *expr.Expr, entry *ir.Func) bool {
	cost := s.CurCost - s.packetStartCost
	s.PacketCosts = append(s.PacketCosts, cost)
	rv, _ := ret.IsConst()
	s.PacketRet = append(s.PacketRet, rv)
	s.PacketsDone++
	if s.PacketsDone >= e.Cfg.NPackets {
		s.Done = true
		return true
	}
	s.LoopDepth = 0
	e.injectPacket(s, entry)
	return false
}

// Package symbex is the symbolic-execution engine at CASTAN's core: it
// explores execution paths of an IR network function over a sequence of
// symbolic packets, tracking per-path cycle costs (current + potential,
// §3.1/§3.4), concretizing symbolic pointers adversarially through the
// cache model (§3.3), and havocing hash functions (§3.5). A directed
// searcher orders pending states by expected cycles-per-packet and
// explores the most expensive first.
package symbex

import (
	"castan/internal/expr"
	"castan/internal/interp"
)

// symMemory is a copy-on-write symbolic overlay over a concrete base
// memory snapshot. Unwritten bytes read through to the base; written or
// symbolic bytes live in the overlay as expressions.
type symMemory struct {
	base    *interp.Memory
	overlay map[uint64]*expr.Expr // per-byte expressions
}

func newSymMemory(base *interp.Memory) *symMemory {
	return &symMemory{base: base, overlay: map[uint64]*expr.Expr{}}
}

func (m *symMemory) clone() *symMemory {
	n := &symMemory{base: m.base, overlay: make(map[uint64]*expr.Expr, len(m.overlay))}
	for k, v := range m.overlay {
		n.overlay[k] = v
	}
	return n
}

// readByte returns the expression for one byte.
func (m *symMemory) readByte(addr uint64) *expr.Expr {
	if e, ok := m.overlay[addr]; ok {
		return e
	}
	return expr.Const(uint64(m.base.LoadByte(addr)))
}

// read assembles size bytes big-endian.
func (m *symMemory) read(addr uint64, size uint8) *expr.Expr {
	// Fast path: fully concrete range.
	concrete := true
	for i := uint64(0); i < uint64(size); i++ {
		if e, ok := m.overlay[addr+i]; ok && e.HasVars() {
			concrete = false
			break
		}
	}
	if concrete {
		var v uint64
		for i := uint64(0); i < uint64(size); i++ {
			b := uint64(m.base.LoadByte(addr + i))
			if e, ok := m.overlay[addr+i]; ok {
				b, _ = e.IsConst()
			}
			v = v<<8 | b
		}
		return expr.Const(v)
	}
	bs := make([]*expr.Expr, size)
	for i := range bs {
		bs[i] = m.readByte(addr + uint64(i))
	}
	return expr.ConcatBytes(bs...)
}

// write stores an expression as size big-endian bytes.
func (m *symMemory) write(addr uint64, val *expr.Expr, size uint8) {
	if v, ok := val.IsConst(); ok {
		for i := uint64(0); i < uint64(size); i++ {
			shift := (uint64(size) - 1 - i) * 8
			m.overlay[addr+i] = expr.Const((v >> shift) & 0xff)
		}
		return
	}
	for i := uint64(0); i < uint64(size); i++ {
		shift := (uint64(size) - 1 - i) * 8
		m.overlay[addr+i] = expr.Byte(val, int(shift/8))
	}
}

// setSymbolicBytes installs fresh variables at [addr, addr+n).
func (m *symMemory) setSymbolicBytes(addr uint64, vars []expr.VarID) {
	for i, v := range vars {
		m.overlay[addr+uint64(i)] = expr.Var(v)
	}
}

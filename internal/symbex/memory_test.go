package symbex

import (
	"testing"

	"castan/internal/expr"
	"castan/internal/interp"
)

func TestSymMemoryConcreteReadThrough(t *testing.T) {
	base := interp.NewMemory()
	base.Write(0x100, 0xdeadbeef, 4)
	m := newSymMemory(base)
	v, ok := m.read(0x100, 4).IsConst()
	if !ok || v != 0xdeadbeef {
		t.Fatalf("read-through = %#x, %v", v, ok)
	}
	// Overlay write shadows the base.
	m.write(0x100, expr.Const(0x11223344), 4)
	v, _ = m.read(0x100, 4).IsConst()
	if v != 0x11223344 {
		t.Errorf("overlay read = %#x", v)
	}
	// The base memory itself is untouched.
	if base.Read(0x100, 4) != 0xdeadbeef {
		t.Error("base mutated")
	}
}

func TestSymMemorySymbolicRoundTrip(t *testing.T) {
	m := newSymMemory(interp.NewMemory())
	m.setSymbolicBytes(0x200, []expr.VarID{1, 2, 3, 4})
	w := m.read(0x200, 4)
	if !w.HasVars() {
		t.Fatal("symbolic read lost vars")
	}
	got := w.Eval(map[expr.VarID]uint64{1: 0xaa, 2: 0xbb, 3: 0xcc, 4: 0xdd})
	if got != 0xaabbccdd {
		t.Errorf("read = %#x", got)
	}
	// Store the word elsewhere and read single bytes back: the
	// byte-extract collapse must reproduce the variables exactly.
	m.write(0x300, w, 4)
	for i, want := range []expr.VarID{1, 2, 3, 4} {
		b := m.readByte(0x300 + uint64(i))
		if b.Op != expr.OpVar || b.Var != want {
			t.Errorf("byte %d = %v, want v%d", i, b, want)
		}
	}
}

func TestSymMemoryMixedWord(t *testing.T) {
	base := interp.NewMemory()
	base.StoreByte(0x401, 0x7f)
	m := newSymMemory(base)
	m.setSymbolicBytes(0x400, []expr.VarID{9})
	w := m.read(0x400, 2)
	got := w.Eval(map[expr.VarID]uint64{9: 0x12})
	if got != 0x127f {
		t.Errorf("mixed word = %#x", got)
	}
}

func TestSymMemoryCloneIsolation(t *testing.T) {
	m := newSymMemory(interp.NewMemory())
	m.write(0x10, expr.Const(1), 1)
	c := m.clone()
	c.write(0x10, expr.Const(2), 1)
	v, _ := m.readByte(0x10).IsConst()
	if v != 1 {
		t.Errorf("original polluted: %d", v)
	}
	v, _ = c.readByte(0x10).IsConst()
	if v != 2 {
		t.Errorf("clone lost write: %d", v)
	}
}

func TestHotLinesPreferredInResolve(t *testing.T) {
	// Covered end-to-end by the chain-NF experiments; here just assert
	// the tracker API surfaces placement order.
	// (See cachemodel tests for Tracker internals.)
}

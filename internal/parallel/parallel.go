// Package parallel is the deterministic fan-out layer used by every hot
// loop in the repo: rainbow-table chain generation, contention-set
// sweeps, the measurement campaign, and batched solver checks.
//
// The design invariant — the repo-wide determinism rule (DESIGN.md
// decision 6) — is that the worker count only changes *scheduling*, never
// *output*. Three mechanisms enforce it:
//
//   - work is partitioned by item index, not by worker: fn(i) must depend
//     only on i (plus immutable shared inputs), and results land in slot i
//     of a preallocated slice, so the merge order is the index order no
//     matter which worker ran which item;
//   - randomness inside an item derives from the parent seed and the item
//     index (ShardSeed, or stats.RNG.Skip for splitmix streams that must
//     match a sequential draw order bit-for-bit);
//   - error and early-exit selection is by lowest index (MapErr, First),
//     which is exactly what a sequential loop would have produced.
//
// Worker panics are contained rather than process-fatal: every fan-out
// attempts all of its items, records panics with their stacks, and
// re-panics the lowest-index *Panic on the caller's goroutine — the same
// lowest-index rule MapErr and First use, so which panic surfaces does
// not depend on the worker count. Callers that can degrade (the castan
// stage guards) recover the *Panic; everyone else still crashes with the
// original stack attached.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Panic records one contained worker panic: the item (or shard) index
// that panicked, the recovered value, and the worker's stack at the time.
// It implements error so stage guards can wrap it unmodified.
type Panic struct {
	Index int
	Value any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panic on item %d: %v", p.Index, p.Value)
}

// capture runs fn(i), converting a panic into a *Panic record.
func capture(fn func(i int), i int) (p *Panic) {
	defer func() {
		if v := recover(); v != nil {
			p = &Panic{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	fn(i)
	return nil
}

// rethrowLowest re-panics the lowest-index contained panic, if any. It
// runs on the caller's goroutine, after every item has been attempted, so
// a recovering caller observes the same surviving side effects at every
// worker count.
func rethrowLowest(panics []*Panic) {
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Workers resolves a worker-count knob: n if positive, else GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to w workers (resolved
// via Workers). fn must be safe to call concurrently and must depend only
// on its index. ForEach returns after every call has completed.
func ForEach(w, n int, fn func(i int)) {
	w = Workers(w)
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	panics := make([]*Panic, n)
	if w == 1 {
		// The sequential path still attempts every item so that a
		// recovering caller sees the same completed-item set as the
		// parallel path would.
		for i := 0; i < n; i++ {
			panics[i] = capture(fn, i)
		}
		rethrowLowest(panics)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				panics[i] = capture(fn, i)
			}
		}()
	}
	wg.Wait()
	rethrowLowest(panics)
}

// Shards partitions [0, n) into at most w near-equal contiguous ranges
// and runs fn(shard, lo, hi) for each range on its own worker. Use it
// when workers need private mutable state (a forked prober, a scratch
// buffer): the shard index selects the state, and because the partition
// depends only on (w, n), a given (w, n) always maps the same items to
// the same shard. Output determinism across *different* w still requires
// fn's per-item work to be order-independent, as with ForEach.
func Shards(w, n int, fn func(shard, lo, hi int)) {
	w = Workers(w)
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	panics := make([]*Panic, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		lo := s * n / w
		hi := (s + 1) * n / w
		go func(shard, lo, hi int) {
			defer wg.Done()
			panics[shard] = capture(func(int) { fn(shard, lo, hi) }, shard)
		}(s, lo, hi)
	}
	wg.Wait()
	rethrowLowest(panics)
}

// Map computes out[i] = fn(i) for i in [0, n) on up to w workers,
// returning results in index order.
func Map[T any](w, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(w, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work. All items run to completion; if any
// failed, the error of the lowest failing index is returned (what a
// sequential loop would have surfaced first), along with the full result
// slice so callers that tolerate partial failure can inspect it.
func MapErr[T any](w, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(w, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// First returns the lowest i in [0, n) for which fn(i) is true, or -1.
// Items are evaluated in batches of w workers with early exit after the
// first batch containing a hit, so fn may be called for a few indices
// past the answer (but never for a later batch). fn must be pure in i:
// under that contract the result is identical at every worker count, and
// w=1 degenerates to a plain sequential loop with early exit.
func First(w, n int, fn func(i int) bool) int {
	w = Workers(w)
	if w == 1 {
		for i := 0; i < n; i++ {
			var hit bool
			if p := capture(func(i int) { hit = fn(i) }, i); p != nil {
				panic(p)
			}
			if hit {
				return i
			}
		}
		return -1
	}
	hits := make([]bool, n)
	for lo := 0; lo < n; lo += w {
		hi := lo + w
		if hi > n {
			hi = n
		}
		ForEach(w, hi-lo, func(k int) { hits[lo+k] = fn(lo + k) })
		for i := lo; i < hi; i++ {
			if hits[i] {
				return i
			}
		}
	}
	return -1
}

// ShardSeed derives an independent per-shard seed from a parent seed.
// Distinct shards yield well-separated splitmix64 streams; the derivation
// is a pure function of (parent, shard), so it is identical at any worker
// count. Use stats.RNG.Skip instead when a shard must continue the
// parent's own sequential draw order bit-for-bit.
func ShardSeed(parent uint64, shard int) uint64 {
	z := parent + 0x9e3779b97f4a7c15*(uint64(shard)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Group is a keyed, memoizing single-flight: the first Do for a key runs
// fn while concurrent callers for the same key wait; the (value, error)
// outcome is cached forever after. It replaces "lock a mutex around a
// result map" caching in the campaign, where holding a lock across an
// expensive compute would serialize everything, and plain double-checked
// caching would compute the same key twice.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Do returns the cached outcome for key, computing it with fn exactly
// once across all concurrent and future callers.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[K]*flight[V]{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.v, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	f.v, f.err = fn()
	close(f.done)
	return f.v, f.err
}

// Cached reports whether key has a completed outcome, without blocking.
func (g *Group[K, V]) Cached(key K) bool {
	g.mu.Lock()
	f, ok := g.m[key]
	g.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"castan/internal/stats"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(1, 100, fn)
	for _, w := range []int{2, 4, 8, 100} {
		got := Map(w, 100, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("w=%d: slot %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	counts := make([]atomic.Int32, 1000)
	ForEach(7, 1000, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("n=0 must not call fn") })
}

func TestMapErrLowestIndexWins(t *testing.T) {
	errAt := func(bad map[int]error) error {
		_, err := MapErr(8, 50, func(i int) (int, error) { return i, bad[i] })
		return err
	}
	e7, e30 := errors.New("seven"), errors.New("thirty")
	if err := errAt(map[int]error{30: e30, 7: e7}); err != e7 {
		t.Errorf("got %v, want the lowest-index error", err)
	}
	if err := errAt(nil); err != nil {
		t.Errorf("got %v, want nil", err)
	}
	out, err := MapErr(3, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(out) != 4 || out[3] != 4 {
		t.Errorf("MapErr = %v, %v", out, err)
	}
}

func TestFirstMatchesSequential(t *testing.T) {
	for _, hit := range []int{-1, 0, 1, 5, 31, 32, 33, 99} {
		pred := func(i int) bool { return hit >= 0 && i >= hit }
		want := First(1, 100, pred)
		for _, w := range []int{2, 8, 64} {
			if got := First(w, 100, pred); got != want {
				t.Fatalf("hit=%d w=%d: First = %d, want %d", hit, w, got, want)
			}
		}
	}
}

func TestFirstEarlyExitSkipsLaterBatches(t *testing.T) {
	var calls atomic.Int32
	First(4, 1000, func(i int) bool { calls.Add(1); return i == 0 })
	if n := calls.Load(); n > 4 {
		t.Errorf("First evaluated %d items; must stop after the first batch", n)
	}
}

func TestShardSeedDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for shard := 0; shard < 4096; shard++ {
		s := ShardSeed(42, shard)
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide", prev, shard)
		}
		seen[s] = shard
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Error("distinct parents must give distinct shard seeds")
	}
}

func TestRNGSkipMatchesSequentialDraws(t *testing.T) {
	seq := stats.NewRNG(2018)
	var want []uint64
	for i := 0; i < 100; i++ {
		want = append(want, seq.Uint64())
	}
	for _, start := range []uint64{0, 1, 17, 99} {
		r := stats.NewRNG(2018)
		r.Skip(start)
		if got := r.Uint64(); got != want[start] {
			t.Errorf("Skip(%d) draw = %x, want %x", start, got, want[start])
		}
	}
	a := stats.NewRNG(7)
	a.Uint64()
	b := a.Clone()
	if a.Uint64() != b.Uint64() {
		t.Error("Clone must continue the same stream")
	}
}

func TestGroupSingleFlight(t *testing.T) {
	var g Group[string, int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := g.Do("k", func() (int, error) {
				computes.Add(1)
				return 7, nil
			})
			if v != 7 || err != nil {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if !g.Cached("k") || g.Cached("other") {
		t.Error("Cached misreports")
	}
}

func TestGroupCachesErrors(t *testing.T) {
	var g Group[int, string]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := g.Do(1, func() (string, error) { calls++; return "", boom })
		if err != boom {
			t.Fatalf("attempt %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("failing fn ran %d times, want 1 (errors are memoized)", calls)
	}
}

func TestMapNestedParallelism(t *testing.T) {
	// The campaign nests fan-outs (tables over NFs over workloads); make
	// sure nothing deadlocks and ordering still holds.
	out := Map(4, 8, func(i int) string {
		inner := Map(4, 8, func(j int) int { return i*10 + j })
		return fmt.Sprint(inner)
	})
	for i, s := range out {
		want := fmt.Sprint(Map(1, 8, func(j int) int { return i*10 + j }))
		if s != want {
			t.Fatalf("slot %d = %s, want %s", i, s, want)
		}
	}
}

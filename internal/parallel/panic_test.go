package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// recoverPanic runs fn and returns the contained *Panic it re-threw, or
// nil if fn returned normally. A raw (non-*Panic) panic fails the test.
func recoverPanic(t *testing.T, fn func()) (p *Panic) {
	t.Helper()
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		var ok bool
		if p, ok = v.(*Panic); !ok {
			t.Fatalf("re-panic was not a *Panic: %v", v)
		}
	}()
	fn()
	return nil
}

func TestForEachContainsPanicLowestIndex(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		var ran atomic.Int64
		p := recoverPanic(t, func() {
			ForEach(w, 16, func(i int) {
				ran.Add(1)
				if i == 3 || i == 11 {
					panic(i)
				}
			})
		})
		if p == nil {
			t.Fatalf("w=%d: panic not surfaced", w)
		}
		if p.Index != 3 {
			t.Fatalf("w=%d: surfaced index %d, want lowest (3)", w, p.Index)
		}
		if p.Value != 3 {
			t.Fatalf("w=%d: value = %v", w, p.Value)
		}
		if len(p.Stack) == 0 {
			t.Fatalf("w=%d: no stack captured", w)
		}
		if got := ran.Load(); got != 16 {
			t.Fatalf("w=%d: only %d/16 items attempted", w, got)
		}
	}
}

func TestPanicIsAnError(t *testing.T) {
	p := &Panic{Index: 5, Value: "boom"}
	var err error = p
	if !strings.Contains(err.Error(), "item 5") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Error() = %q", err.Error())
	}
	var target *Panic
	if !errors.As(err, &target) {
		t.Fatal("errors.As failed to unwrap *Panic")
	}
}

func TestMapSurvivingSlotsFilled(t *testing.T) {
	for _, w := range []int{1, 4} {
		var out []int
		p := recoverPanic(t, func() {
			out = Map(w, 8, func(i int) int {
				if i == 2 {
					panic("map worker down")
				}
				return i * 10
			})
		})
		if p == nil || p.Index != 2 {
			t.Fatalf("w=%d: panic = %+v", w, p)
		}
		// Map's output escapes via the closure even on panic only if the
		// caller kept a reference; here out is nil because Map never
		// returned. This pins that contract: a panicking Map yields no
		// partial slice.
		if out != nil {
			t.Fatalf("w=%d: Map returned a partial slice through a panic", w)
		}
	}
}

func TestShardsContainsPanicLowestShard(t *testing.T) {
	for _, w := range []int{2, 4} {
		var ran atomic.Int64
		p := recoverPanic(t, func() {
			Shards(w, 8, func(shard, lo, hi int) {
				ran.Add(1)
				panic(shard)
			})
		})
		if p == nil {
			t.Fatalf("w=%d: panic not surfaced", w)
		}
		if p.Index != 0 {
			t.Fatalf("w=%d: surfaced shard %d, want 0", w, p.Index)
		}
		if got := ran.Load(); got != int64(min(w, 8)) {
			t.Fatalf("w=%d: %d shards attempted", w, got)
		}
	}
}

func TestFirstContainsPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := recoverPanic(t, func() {
			First(w, 10, func(i int) bool {
				if i == 1 {
					panic("first worker down")
				}
				return i == 7
			})
		})
		if p == nil || p.Index != 1 {
			t.Fatalf("w=%d: panic = %+v", w, p)
		}
	}
}

func TestNoPanicFastPathUnchanged(t *testing.T) {
	got := Map(4, 5, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	if idx := First(4, 10, func(i int) bool { return i >= 6 }); idx != 6 {
		t.Fatalf("First = %d", idx)
	}
}

// Package memsim simulates the DUT's memory hierarchy: three levels of
// set-associative caches with LRU replacement, an inclusive L3 whose slice
// selection comes from a *hidden* hash (the stand-in for Intel's
// proprietary slice function), virtual→physical hugepage mapping that is
// re-randomized per simulated reboot, and DDIO placement of packet headers.
//
// The simulator stands in for the paper's Intel Xeon E5-2667v2 testbed.
// Geometry is scaled down (see DESIGN.md) but preserves every ratio that
// the evaluation relies on. The secret slice hash is deliberately
// unexported: internal/cachemodel may only learn it the way the paper does
// — by timing pointer-chase probes (§3.2).
package memsim

import (
	"fmt"

	"castan/internal/budget"
	"castan/internal/obs"
	"castan/internal/stats"
)

// Level identifies where an access was served.
type Level uint8

// Cache levels.
const (
	L1 Level = iota
	L2
	L3
	DRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	default:
		return "DRAM"
	}
}

// Geometry describes the simulated processor's memory system.
type Geometry struct {
	LineBytes int // cache line size

	L1Sets, L1Ways int
	L2Sets, L2Ways int
	// The L3 is organized as Slices × SetsPerSlice sets of L3Ways lines;
	// the slice (and set) for a physical line is chosen by a hidden hash.
	L3Slices, L3SetsPerSlice, L3Ways int

	PageBits int // hugepage size (paper: 30 → 1 GB pages)

	LatL1, LatL2, LatL3, LatDRAM uint64 // load-to-use latencies in cycles

	ClockGHz float64
}

// DefaultGeometry mirrors the scaled-down Xeon of DESIGN.md: 8 KiB/8-way
// L1d, 32 KiB/8-way L2, 128 KiB/16-way L3 over 4 slices (128 contention
// sets, like the paper's 20480-set L3 scaled by the same factor as the NF
// tables), 1 GB pages, 3.3 GHz.
func DefaultGeometry() Geometry {
	return Geometry{
		LineBytes: 64,
		L1Sets:    16, L1Ways: 8, // 8 KiB
		L2Sets: 64, L2Ways: 8, // 32 KiB
		L3Slices: 4, L3SetsPerSlice: 32, L3Ways: 16, // 128 KiB
		PageBits: 30,
		LatL1:    4, LatL2: 12, LatL3: 42, LatDRAM: 210,
		ClockGHz: 3.3,
	}
}

// TinyGeometry is a deliberately small hierarchy for fast unit tests:
// 4-set/2-way L1, 8-set/2-way L2, 2-slice × 2-set × 4-way L3.
func TinyGeometry() Geometry {
	return Geometry{
		LineBytes: 64,
		L1Sets:    4, L1Ways: 2,
		L2Sets: 8, L2Ways: 2,
		L3Slices: 2, L3SetsPerSlice: 2, L3Ways: 4,
		PageBits: 20,
		LatL1:    4, LatL2: 12, LatL3: 42, LatDRAM: 210,
		ClockGHz: 3.3,
	}
}

// L3Bytes returns the total L3 capacity.
func (g Geometry) L3Bytes() int {
	return g.L3Slices * g.L3SetsPerSlice * g.L3Ways * g.LineBytes
}

// L3Assoc returns the L3 associativity α: the number of lines from one
// contention set that fit without evictions.
func (g Geometry) L3Assoc() int { return g.L3Ways }

// NumContentionSets returns how many distinct contention sets exist.
func (g Geometry) NumContentionSets() int { return g.L3Slices * g.L3SetsPerSlice }

// Counters accumulate per-level access statistics.
type Counters struct {
	Accesses uint64
	L1Hits   uint64
	L2Hits   uint64
	L3Hits   uint64
	DRAM     uint64
}

// obsCounters caches the hierarchy's obs instruments so the per-access
// hot path never takes the recorder's registry lock. The zero value
// (nil counters) no-ops. Unlike Stats — which ProbeTime and
// InjectPacket save and restore so NF-visible counters exclude probe
// traffic — obs counters deliberately keep counting through probes:
// they measure total simulator effort, including discovery.
type obsCounters struct {
	accesses, l1Hits, l2Hits, l3Hits, dram *obs.Counter
	l3Evictions                            *obs.Counter
	probeCalls, probeLineReads             *obs.Counter
}

// cache is one set-associative level with LRU replacement.
type cache struct {
	sets  int
	ways  int
	tags  []uint64 // sets × ways line addresses; 0 = empty (line 0 unused)
	stamp []uint64 // LRU timestamps
	clock uint64
}

func newCache(sets, ways int) *cache {
	return &cache{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		stamp: make([]uint64, sets*ways),
	}
}

func (c *cache) reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
	}
	c.clock = 0
}

// lookup probes set for line; on hit it refreshes LRU and returns true.
func (c *cache) lookup(set int, line uint64) bool {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.clock++
			c.stamp[base+w] = c.clock
			return true
		}
	}
	return false
}

// insert fills line into set, returning the evicted line (0 if none).
func (c *cache) insert(set int, line uint64) uint64 {
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = base + w
			break
		}
		if c.stamp[base+w] < c.stamp[victim] {
			victim = base + w
		}
	}
	evicted := c.tags[victim]
	c.tags[victim] = line
	c.clock++
	c.stamp[victim] = c.clock
	return evicted
}

// invalidate removes line from set if present.
func (c *cache) invalidate(set int, line uint64) {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.tags[base+w] = 0
			c.stamp[base+w] = 0
			return
		}
	}
}

// Hierarchy is one simulated machine's memory system.
type Hierarchy struct {
	geo Geometry

	// secret parameterizes the hidden L3 slice/set hash. It is derived
	// from the machine seed and never exposed; internal/cachemodel must
	// reverse-engineer contention behaviour through ProbeTime.
	secretF uint64
	secretG uint64

	pageMap map[uint64]uint64
	pageRng *stats.RNG
	nextPPN uint64

	l1, l2, l3 *cache

	Stats Counters
	obs   obsCounters

	// probeBudget, when set, is charged one "discover" tick per probe
	// line read (the same quantity probeLineReads counts); forks inherit
	// it, and because parallel.Shards runs every probe at any worker
	// count the charged totals stay worker-count invariant. Exhaustion
	// is checked by the discovery orchestrator, never here.
	probeBudget *budget.Stage

	// probeFault, when set, perturbs ProbeTime's returned timing — the
	// fault-injection stand-in for a noisy measurement machine. It must
	// be a pure function of its inputs so forks replaying the same
	// probes see the same corruption.
	probeFault func(addrs []uint64, t uint64) uint64

	// scratch holds ProbeBatch's per-address precomputed indices. A
	// hierarchy is goroutine-confined (parallel discovery forks first),
	// so reusing it across probes is safe and keeps the tight loop
	// allocation-free.
	scratch probeScratch
}

// probeScratch caches the per-address translation work ProbeBatch does
// once per probe set: the line tag and the L1/L2/L3 set indices. The
// page mapping cannot change mid-probe, so the warm-up pass and every
// timed round reuse the same entries instead of re-translating per
// access like the general Access path must.
type probeScratch struct {
	tag                 []uint64
	l1set, l2set, l3set []int32
}

func (s *probeScratch) grow(n int) {
	if cap(s.tag) < n {
		s.tag = make([]uint64, n)
		s.l1set = make([]int32, n)
		s.l2set = make([]int32, n)
		s.l3set = make([]int32, n)
	}
	s.tag = s.tag[:n]
	s.l1set = s.l1set[:n]
	s.l2set = s.l2set[:n]
	s.l3set = s.l3set[:n]
}

// SetObs points the hierarchy's telemetry at rec (nil disables it).
// Forked hierarchies inherit the same counters, so parallel discovery
// probes aggregate into one set of totals; because parallel.Shards runs
// every probe regardless of worker count and forks replay identical
// accesses, the totals stay worker-count invariant.
func (h *Hierarchy) SetObs(rec *obs.Recorder) {
	if rec == nil {
		h.obs = obsCounters{}
		return
	}
	h.obs = obsCounters{
		accesses:       rec.Counter("memsim.accesses"),
		l1Hits:         rec.Counter("memsim.l1_hits"),
		l2Hits:         rec.Counter("memsim.l2_hits"),
		l3Hits:         rec.Counter("memsim.l3_hits"),
		dram:           rec.Counter("memsim.dram_misses"),
		l3Evictions:    rec.Counter("memsim.l3_evictions"),
		probeCalls:     rec.Counter("memsim.probe_calls"),
		probeLineReads: rec.Counter("memsim.probe_line_reads"),
	}
}

// SetBudget points probe-tick charging at a budget stage (nil disables
// it). Forks inherit the stage, like obs counters.
func (h *Hierarchy) SetBudget(stage *budget.Stage) { h.probeBudget = stage }

// SetProbeFault installs a probe-timing perturbation hook (nil disables
// it). Forks inherit the hook; internal/faultinject supplies seeded ones.
func (h *Hierarchy) SetProbeFault(f func(addrs []uint64, t uint64) uint64) { h.probeFault = f }

// New creates a hierarchy with the given geometry. The seed fixes the
// hidden hash; Reboot re-randomizes only the page mapping, as a real
// reboot would.
func New(geo Geometry, seed uint64) *Hierarchy {
	if geo.LineBytes == 0 {
		geo = DefaultGeometry()
	}
	r := stats.NewRNG(seed)
	h := &Hierarchy{
		geo:     geo,
		secretF: r.Uint64() | 1,
		secretG: r.Uint64() | 1,
		l1:      newCache(geo.L1Sets, geo.L1Ways),
		l2:      newCache(geo.L2Sets, geo.L2Ways),
		l3:      newCache(geo.L3Slices*geo.L3SetsPerSlice, geo.L3Ways),
	}
	h.Reboot(seed)
	return h
}

// Geometry returns the configured geometry.
func (h *Hierarchy) Geometry() Geometry { return h.geo }

// Fork returns an independent copy of the hierarchy: same hidden slice
// hash, same current virtual→physical mapping (including the allocator
// state for pages not yet touched), private cache and counter state.
// Parallel discovery probes forks so concurrent workers cannot perturb
// each other; as long as probed pages are already mapped (or every fork
// replays the same allocation sequence, as after Reboot), a fork's
// ProbeTime is bit-identical to the parent's.
func (h *Hierarchy) Fork() *Hierarchy {
	f := &Hierarchy{
		geo:         h.geo,
		secretF:     h.secretF,
		secretG:     h.secretG,
		pageMap:     make(map[uint64]uint64, len(h.pageMap)),
		pageRng:     h.pageRng.Clone(),
		nextPPN:     h.nextPPN,
		l1:          newCache(h.geo.L1Sets, h.geo.L1Ways),
		l2:          newCache(h.geo.L2Sets, h.geo.L2Ways),
		l3:          newCache(h.geo.L3Slices*h.geo.L3SetsPerSlice, h.geo.L3Ways),
		obs:         h.obs,
		probeBudget: h.probeBudget,
		probeFault:  h.probeFault,
	}
	for vpn, ppn := range h.pageMap {
		f.pageMap[vpn] = ppn
	}
	return f
}

// Reboot installs a fresh random virtual→physical hugepage mapping and
// clears the caches, emulating a machine reboot.
func (h *Hierarchy) Reboot(bootID uint64) {
	h.pageRng = stats.NewRNG(bootID*0x9e3779b97f4a7c15 + 1)
	h.pageMap = map[uint64]uint64{}
	h.nextPPN = 0
	h.Flush()
}

// Flush clears all cache levels (but keeps the page mapping).
func (h *Hierarchy) Flush() {
	h.l1.reset()
	h.l2.reset()
	h.l3.reset()
}

// ResetCounters zeroes the counters.
func (h *Hierarchy) ResetCounters() { h.Stats = Counters{} }

// translate maps a virtual address to a physical one through the hugepage
// table, allocating a random physical page on first touch.
func (h *Hierarchy) translate(vaddr uint64) uint64 {
	vpn := vaddr >> h.geo.PageBits
	ppn, ok := h.pageMap[vpn]
	if !ok {
		// Random physical page, unique per virtual page.
		ppn = (h.pageRng.Uint64() << 8) | h.nextPPN
		h.nextPPN++
		h.pageMap[vpn] = ppn
	}
	off := vaddr & ((1 << h.geo.PageBits) - 1)
	return ppn<<h.geo.PageBits | off
}

func mix(v, key uint64) uint64 {
	v *= key
	v ^= v >> 29
	v *= 0xff51afd7ed558ccd
	v ^= v >> 32
	return v
}

// l3Set computes the hidden L3 (slice, set) index for a physical line
// address. The hash decomposes as f(in-page bits) XOR g(page bits): the
// in-page component is a stable function, and the page component is a
// constant XOR within each hugepage — the structure that makes the
// paper's cross-reboot consistency filtering meaningful.
func (h *Hierarchy) l3Set(pline uint64) int {
	n := uint64(h.geo.L3Slices * h.geo.L3SetsPerSlice) // power of two
	pageLines := uint64(1) << (h.geo.PageBits - lineShift(h.geo))
	inPage := pline & (pageLines - 1)
	page := pline >> (h.geo.PageBits - lineShift(h.geo))
	f := mix(inPage, h.secretF)
	g := mix(page, h.secretG)
	return int((f ^ g) & (n - 1))
}

func lineShift(g Geometry) int {
	s := 0
	for 1<<s < g.LineBytes {
		s++
	}
	return s
}

// Access simulates one memory access of the given size at a virtual
// address, updating counters, and returns the serving level and its cycle
// cost. Accesses spanning a line boundary touch both lines (costs sum,
// the slower level is reported).
func (h *Hierarchy) Access(vaddr uint64, size uint8, write bool) (Level, uint64) {
	lb := uint64(h.geo.LineBytes)
	first := vaddr &^ (lb - 1)
	last := (vaddr + uint64(size) - 1) &^ (lb - 1)
	lvl, cyc := h.accessLine(first)
	for line := first + lb; line <= last; line += lb {
		l2, c2 := h.accessLine(line)
		cyc += c2
		if l2 > lvl {
			lvl = l2
		}
	}
	return lvl, cyc
}

// accessLine performs the per-line hit/miss/fill logic.
func (h *Hierarchy) accessLine(vline uint64) (Level, uint64) {
	h.Stats.Accesses++
	h.obs.accesses.Inc()
	pline := h.translate(vline) >> lineShift(h.geo)
	// Tag 0 means "empty way"; offset all line tags by +1 to disambiguate.
	tag := pline + 1

	l1set := int(pline % uint64(h.geo.L1Sets))
	if h.l1.lookup(l1set, tag) {
		h.Stats.L1Hits++
		h.obs.l1Hits.Inc()
		return L1, h.geo.LatL1
	}
	l2set := int(pline % uint64(h.geo.L2Sets))
	if h.l2.lookup(l2set, tag) {
		h.Stats.L2Hits++
		h.obs.l2Hits.Inc()
		h.l1.insert(l1set, tag)
		return L2, h.geo.LatL2
	}
	l3set := h.l3Set(pline)
	if h.l3.lookup(l3set, tag) {
		h.Stats.L3Hits++
		h.obs.l3Hits.Inc()
		h.l2.insert(l2set, tag)
		h.l1.insert(l1set, tag)
		return L3, h.geo.LatL3
	}
	// Miss everywhere: fill all levels; the L3 is inclusive, so an L3
	// eviction back-invalidates L1 and L2.
	h.Stats.DRAM++
	h.obs.dram.Inc()
	if evicted := h.l3.insert(l3set, tag); evicted != 0 {
		h.obs.l3Evictions.Inc()
		ep := evicted - 1
		h.l1.invalidate(int(ep%uint64(h.geo.L1Sets)), evicted)
		h.l2.invalidate(int(ep%uint64(h.geo.L2Sets)), evicted)
	}
	h.l2.insert(l2set, tag)
	h.l1.insert(l1set, tag)
	return DRAM, h.geo.LatDRAM
}

// InjectPacket emulates DDIO: the NIC writes the arriving packet's header
// lines straight into the L3 (and, for our single-queue model, warms them
// through to L1 as drivers touch descriptors), so the first header access
// does not pay a compulsory DRAM miss. No cycles are charged to the NF.
func (h *Hierarchy) InjectPacket(vaddr uint64, length int) {
	lb := uint64(h.geo.LineBytes)
	end := vaddr + uint64(length)
	// DDIO placement is not an NF memory access: preserve the counters.
	saved := h.Stats
	for line := vaddr &^ (lb - 1); line < end; line += lb {
		h.accessLine(line)
	}
	h.Stats = saved
}

// ProbeTime measures the cost, in cycles, of sequentially reading every
// address in addrs, rounds times, emulating a pointer-chase probe loop.
// Caches are flushed first so measurements are reproducible; the first
// (cold) round is excluded from the returned time, like a warm-up pass.
func (h *Hierarchy) ProbeTime(addrs []uint64, rounds int) uint64 {
	return h.ProbeBatch([][]uint64{addrs}, rounds)[0]
}

// ProbeBatch measures every probe set in sets as ProbeTime would, one
// after another, and returns the per-set timings. The batch form is the
// discovery hot path: obs counters are accumulated locally and flushed
// once, the probe budget is charged once for the whole batch (the same
// total ProbeTime would charge per call, and charges are commutative
// atomic adds, so the accounting is call-shape invariant), and the
// per-address translation and set-index work is done once per set
// instead of once per access. Timings are bit-identical to looping
// ProbeTime: the flush/warm-up/round access sequence is unchanged.
func (h *Hierarchy) ProbeBatch(sets [][]uint64, rounds int) []uint64 {
	if rounds < 1 {
		rounds = 1
	}
	var lineReads uint64
	for _, addrs := range sets {
		lineReads += uint64(len(addrs) * (rounds + 1))
	}
	h.obs.probeCalls.Add(uint64(len(sets)))
	h.obs.probeLineReads.Add(lineReads)
	h.probeBudget.Charge(lineReads)

	out := make([]uint64, len(sets))
	var acc Counters
	var evictions uint64
	for i, addrs := range sets {
		out[i] = h.probeSet(addrs, rounds, &acc, &evictions)
	}
	h.obs.accesses.Add(acc.Accesses)
	h.obs.l1Hits.Add(acc.L1Hits)
	h.obs.l2Hits.Add(acc.L2Hits)
	h.obs.l3Hits.Add(acc.L3Hits)
	h.obs.dram.Add(acc.DRAM)
	h.obs.l3Evictions.Add(evictions)
	return out
}

// probeSet times one probe set with precomputed line indices; per-level
// tallies land in acc (NF-visible Stats are never touched, matching the
// save/restore the scalar path used).
func (h *Hierarchy) probeSet(addrs []uint64, rounds int, acc *Counters, evictions *uint64) uint64 {
	h.Flush()
	n := len(addrs)
	sc := &h.scratch
	sc.grow(n)
	lineMask := ^(uint64(h.geo.LineBytes) - 1)
	shift := lineShift(h.geo)
	// First-touch page allocation happens here in address order — the
	// same order the scalar warm-up pass would allocate in.
	for i, a := range addrs {
		pline := h.translate(a&lineMask) >> shift
		sc.tag[i] = pline + 1
		sc.l1set[i] = int32(pline % uint64(h.geo.L1Sets))
		sc.l2set[i] = int32(pline % uint64(h.geo.L2Sets))
		sc.l3set[i] = int32(h.l3Set(pline))
	}
	var total uint64
	for r := 0; r <= rounds; r++ {
		for i := 0; i < n; i++ {
			cyc := h.probeLine(sc.tag[i], int(sc.l1set[i]), int(sc.l2set[i]), int(sc.l3set[i]), acc, evictions)
			if r > 0 { // round 0 is the excluded warm-up pass
				total += cyc
			}
		}
	}
	acc.Accesses += uint64(n * (rounds + 1))
	if h.probeFault != nil {
		total = h.probeFault(addrs, total)
	}
	return total
}

// probeLine is accessLine with translation and set selection hoisted out;
// the lookup/insert/invalidate sequence (and thus LRU clock evolution) is
// identical.
func (h *Hierarchy) probeLine(tag uint64, l1set, l2set, l3set int, acc *Counters, evictions *uint64) uint64 {
	if h.l1.lookup(l1set, tag) {
		acc.L1Hits++
		return h.geo.LatL1
	}
	if h.l2.lookup(l2set, tag) {
		acc.L2Hits++
		h.l1.insert(l1set, tag)
		return h.geo.LatL2
	}
	if h.l3.lookup(l3set, tag) {
		acc.L3Hits++
		h.l2.insert(l2set, tag)
		h.l1.insert(l1set, tag)
		return h.geo.LatL3
	}
	acc.DRAM++
	if evicted := h.l3.insert(l3set, tag); evicted != 0 {
		*evictions++
		ep := evicted - 1
		h.l1.invalidate(int(ep%uint64(h.geo.L1Sets)), evicted)
		h.l2.invalidate(int(ep%uint64(h.geo.L2Sets)), evicted)
	}
	h.l2.insert(l2set, tag)
	h.l1.insert(l1set, tag)
	return h.geo.LatDRAM
}

// CyclesToNanos converts cycles to nanoseconds at the configured clock.
func (h *Hierarchy) CyclesToNanos(cycles uint64) float64 {
	return float64(cycles) / h.geo.ClockGHz
}

// DebugContentionSet is a test-only backdoor (used by memsim's own tests,
// not by cachemodel) returning the hidden (slice,set) index of a virtual
// address.
func (h *Hierarchy) DebugContentionSet(vaddr uint64) int {
	return h.l3Set(h.translate(vaddr) >> lineShift(h.geo))
}

// String summarizes the geometry.
func (g Geometry) String() string {
	return fmt.Sprintf("L1 %dKiB/%d-way, L2 %dKiB/%d-way, L3 %dKiB/%d-way×%d slices, %d B lines, %d-bit pages",
		g.L1Sets*g.L1Ways*g.LineBytes/1024, g.L1Ways,
		g.L2Sets*g.L2Ways*g.LineBytes/1024, g.L2Ways,
		g.L3Bytes()/1024, g.L3Ways, g.L3Slices, g.LineBytes, g.PageBits)
}

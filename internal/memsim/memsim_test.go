package memsim

import (
	"castan/internal/budget"
	"castan/internal/obs"

	"testing"
)

func TestGeometryDerived(t *testing.T) {
	g := DefaultGeometry()
	if g.L3Bytes() != 128<<10 {
		t.Errorf("L3Bytes = %d, want 128KiB", g.L3Bytes())
	}
	if g.NumContentionSets() != 128 {
		t.Errorf("NumContentionSets = %d", g.NumContentionSets())
	}
	if g.L3Assoc() != 16 {
		t.Errorf("L3Assoc = %d", g.L3Assoc())
	}
	if s := g.String(); s == "" {
		t.Error("empty geometry string")
	}
}

func TestFirstAccessMissesThenHits(t *testing.T) {
	h := New(DefaultGeometry(), 1)
	lvl, cyc := h.Access(0x1000, 8, false)
	if lvl != DRAM || cyc != h.Geometry().LatDRAM {
		t.Errorf("cold access: %v/%d", lvl, cyc)
	}
	lvl, cyc = h.Access(0x1000, 8, false)
	if lvl != L1 || cyc != h.Geometry().LatL1 {
		t.Errorf("warm access: %v/%d", lvl, cyc)
	}
	if h.Stats.Accesses != 2 || h.Stats.DRAM != 1 || h.Stats.L1Hits != 1 {
		t.Errorf("counters = %+v", h.Stats)
	}
	h.ResetCounters()
	if h.Stats.Accesses != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestSameLineSharesCache(t *testing.T) {
	h := New(DefaultGeometry(), 1)
	h.Access(0x1000, 4, false)
	lvl, _ := h.Access(0x1020, 4, false) // same 64B line
	if lvl != L1 {
		t.Errorf("same-line access = %v", lvl)
	}
	lvl, _ = h.Access(0x1040, 4, false) // next line
	if lvl != DRAM {
		t.Errorf("next-line access = %v", lvl)
	}
}

func TestLineCrossingAccess(t *testing.T) {
	h := New(DefaultGeometry(), 1)
	lvl, cyc := h.Access(0x103e, 4, false) // spans 0x1000 and 0x1040 lines
	if lvl != DRAM {
		t.Errorf("lvl = %v", lvl)
	}
	if cyc != 2*h.Geometry().LatDRAM {
		t.Errorf("cyc = %d, want two misses", cyc)
	}
	if h.Stats.Accesses != 2 {
		t.Errorf("accesses = %d", h.Stats.Accesses)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	g := DefaultGeometry()
	h := New(g, 1)
	// Fill one L1 set beyond its ways: addresses stride L1Sets*LineBytes
	// apart share an L1 set.
	stride := uint64(g.L1Sets * g.LineBytes)
	n := g.L1Ways + 2
	for i := 0; i < n; i++ {
		h.Access(uint64(i)*stride, 8, false)
	}
	// First address was evicted from L1 but should be in L2 (different L2
	// set indexing makes collision unlikely with so few lines).
	lvl, _ := h.Access(0, 8, false)
	if lvl != L2 {
		t.Errorf("evicted line served from %v, want L2", lvl)
	}
}

func TestInclusiveL3BackInvalidation(t *testing.T) {
	// Thrash one L3 contention set: find Assoc+1 addresses with the same
	// hidden set via the debug backdoor, then verify cyclic access misses
	// every time.
	g := DefaultGeometry()
	h := New(g, 42)
	target := h.DebugContentionSet(0)
	addrs := []uint64{0}
	for a := uint64(64); len(addrs) < g.L3Ways+1; a += 64 {
		if h.DebugContentionSet(a) == target {
			addrs = append(addrs, a)
		}
	}
	// Warm all.
	for _, a := range addrs {
		h.Access(a, 8, false)
	}
	// Cyclic passes must all go to DRAM (inclusive L3 back-invalidates L1).
	h.ResetCounters()
	for pass := 0; pass < 3; pass++ {
		for _, a := range addrs {
			h.Access(a, 8, false)
		}
	}
	if h.Stats.DRAM != h.Stats.Accesses {
		t.Errorf("thrash set: %d DRAM of %d accesses", h.Stats.DRAM, h.Stats.Accesses)
	}
	// One fewer address: everything fits, so no DRAM traffic once warm.
	h.Flush()
	fits := addrs[:g.L3Ways]
	for _, a := range fits {
		h.Access(a, 8, false)
	}
	h.ResetCounters()
	for pass := 0; pass < 3; pass++ {
		for _, a := range fits {
			h.Access(a, 8, false)
		}
	}
	if h.Stats.DRAM != 0 {
		t.Errorf("fitting set caused %d DRAM accesses", h.Stats.DRAM)
	}
}

func TestProbeTimeDetectsContention(t *testing.T) {
	g := DefaultGeometry()
	h := New(g, 7)
	target := h.DebugContentionSet(0)
	var inSet, offSet []uint64
	for a := uint64(0); len(inSet) < g.L3Ways+1 || len(offSet) < g.L3Ways+1; a += 64 {
		if h.DebugContentionSet(a) == target {
			if len(inSet) < g.L3Ways+1 {
				inSet = append(inSet, a)
			}
		} else if len(offSet) < g.L3Ways+1 {
			offSet = append(offSet, a)
		}
	}
	rounds := 3
	tIn := h.ProbeTime(inSet, rounds)
	tOff := h.ProbeTime(offSet, rounds)
	if tIn <= tOff*2 {
		t.Errorf("contended probe %d not clearly above uncontended %d", tIn, tOff)
	}
}

func TestRebootChangesMappingButNotClasses(t *testing.T) {
	g := DefaultGeometry()
	h := New(g, 3)
	// Collect a same-set pair within one page.
	target := h.DebugContentionSet(0)
	var buddy uint64
	for a := uint64(64); ; a += 64 {
		if h.DebugContentionSet(a) == target {
			buddy = a
			break
		}
	}
	// Across reboots the absolute set index may change, but 0 and buddy
	// must stay co-resident (the hidden hash is f(offset) xor g(page)).
	for boot := uint64(10); boot < 15; boot++ {
		h.Reboot(boot)
		if h.DebugContentionSet(0) != h.DebugContentionSet(buddy) {
			t.Fatalf("boot %d split the class", boot)
		}
	}
}

func TestDDIOInjectPacket(t *testing.T) {
	h := New(DefaultGeometry(), 5)
	h.InjectPacket(0x2000, 64)
	before := h.Stats
	lvl, _ := h.Access(0x2000, 8, false)
	if lvl == DRAM {
		t.Error("DDIO-injected header missed to DRAM")
	}
	if before.Accesses != 0 {
		t.Errorf("DDIO counted as NF accesses: %+v", before)
	}
}

func TestCyclesToNanos(t *testing.T) {
	h := New(DefaultGeometry(), 1)
	ns := h.CyclesToNanos(33)
	if ns < 9.9 || ns > 10.1 {
		t.Errorf("33 cycles at 3.3GHz = %g ns", ns)
	}
}

func TestLevelString(t *testing.T) {
	if L1.String() != "L1" || L2.String() != "L2" || L3.String() != "L3" || DRAM.String() != "DRAM" {
		t.Error("level names")
	}
}

func TestTinyGeometrySanity(t *testing.T) {
	g := TinyGeometry()
	h := New(g, 9)
	// Distinct lines spread over the tiny L3 still behave: cold miss then hit.
	lvl, _ := h.Access(0, 8, false)
	if lvl != DRAM {
		t.Error("cold")
	}
	lvl, _ = h.Access(0, 8, false)
	if lvl != L1 {
		t.Error("warm")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	g := DefaultGeometry()
	h := New(g, 11)
	h.Access(0x5000, 8, false)
	// Evict 0x5000 from L1 by filling its set; L2 (more sets) keeps it.
	stride := uint64(g.L1Sets * g.LineBytes)
	for i := 1; i <= g.L1Ways; i++ {
		h.Access(0x5000+uint64(i)*stride*2+64, 8, false) // different L2 sets
	}
	h.ResetCounters()
	lvl, cyc := h.Access(0x5000, 8, false)
	if lvl == DRAM {
		t.Errorf("line lost entirely: %v", lvl)
	}
	if cyc == 0 {
		t.Error("zero cost")
	}
	if h.Stats.Accesses != 1 {
		t.Errorf("accesses = %d", h.Stats.Accesses)
	}
}

func TestCountersPartition(t *testing.T) {
	h := New(DefaultGeometry(), 13)
	rng := uint64(0)
	for i := 0; i < 500; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		h.Access(rng%(1<<20), 8, false)
	}
	s := h.Stats
	if s.L1Hits+s.L2Hits+s.L3Hits+s.DRAM != s.Accesses {
		t.Errorf("counters do not partition: %+v", s)
	}
}

func TestProbeBatchMatchesScalarProbes(t *testing.T) {
	sets := [][]uint64{
		{0, 64, 128, 192, 4096, 8192},
		{0x100000, 0x100040, 0x200000},
		nil,
		{0, 64, 128, 192, 4096, 8192}, // repeat: warm scratch reuse
	}
	mk := func() (*Hierarchy, *obs.Recorder, *budget.Meter) {
		rec := obs.New(obs.NewFakeClock(1))
		m := budget.New(1 << 40)
		h := New(DefaultGeometry(), 77)
		h.SetObs(rec)
		h.SetBudget(m.Stage("discover"))
		return h, rec, m
	}

	hs, recS, ms := mk()
	want := make([]uint64, len(sets))
	for i, s := range sets {
		want[i] = hs.ProbeTime(s, 2)
	}
	hb, recB, mb := mk()
	got := hb.ProbeBatch(sets, 2)

	for i := range sets {
		if got[i] != want[i] {
			t.Errorf("set %d: batch time %d != scalar time %d", i, got[i], want[i])
		}
	}
	if hb.Stats != (Counters{}) {
		t.Errorf("probe traffic leaked into Stats: %+v", hb.Stats)
	}
	for _, name := range []string{
		"memsim.accesses", "memsim.l1_hits", "memsim.l2_hits",
		"memsim.l3_hits", "memsim.dram_misses", "memsim.l3_evictions",
		"memsim.probe_calls", "memsim.probe_line_reads",
	} {
		if b, s := recB.Counter(name).Value(), recS.Counter(name).Value(); b != s {
			t.Errorf("%s: batch %d != scalar %d", name, b, s)
		}
	}
	if bu, su := mb.Used("discover"), ms.Used("discover"); bu != su || bu == 0 {
		t.Errorf("budget ticks: batch %d, scalar %d", bu, su)
	}
}

func TestProbeTimeDeterministic(t *testing.T) {
	h := New(DefaultGeometry(), 21)
	addrs := []uint64{0, 64, 128, 192, 4096, 8192}
	a := h.ProbeTime(addrs, 3)
	b := h.ProbeTime(addrs, 3)
	if a != b {
		t.Errorf("probe not deterministic: %d vs %d", a, b)
	}
	if h.ProbeTime(nil, 3) != 0 {
		t.Error("empty probe should cost nothing")
	}
}

package nf

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDisassembleGolden pins the full disassembly of every catalog NF.
// The IR is the single artifact both the interpreter and the symbolic
// engine consume; any unintended change to an NF's instruction stream —
// from builder refactors or NF edits alike — shows up here as a readable
// diff instead of as silently different experiment numbers.
func TestDisassembleGolden(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			inst, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			got := []byte(inst.Mod.Disassemble())
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/nf -run Disassemble -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s disassembly drifted from golden (%d bytes vs %d).\n"+
					"Re-run with -update and review the diff if the change is intended.",
					name, len(got), len(want))
			}
		})
	}
}

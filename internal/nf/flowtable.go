package nf

import (
	"castan/internal/ir"
	"castan/internal/nfhash"
)

// Associative-array sizing (scaled from the paper per DESIGN.md; the
// ratios to the workload flow counts and the L3 are what matter):
//
//   - chain: 4096 buckets (paper: 65536), 12-bit hash — the UniRand flow
//     universe is 16× the bucket count, like the paper's 1M vs 65536;
//   - ring: 2^20 cache-aligned entries = 64 MiB (paper: 16.7M entries in
//     1 GB), 20-bit hash — the ring dwarfs the L3, so cache contention is
//     the dominant attack (§5.4, Fig. 13).
const (
	ChainBuckets  = 4096
	ChainHashBits = 12
	RingEntries   = 1 << 20
	RingHashBits  = 20
	ringEntrySize = 64
)

// flowTable abstracts the four associative-array implementations under a
// common IR calling convention:
//
//	hash:   emitted inline in the NF (havocable); trees return 0
//	lookup: (h, hi, lo) -> value (0 = miss)
//	insert: (h, hi, lo, value) -> 0
//
// (hi, lo) is the 13-byte flow key packed into two overlapping 64-bit
// words (bytes 0-7 and 5-12): equality of both words is equivalent to
// equality of all 13 bytes, and their lexicographic order is a total
// order, which is all the trees need.
type flowTable interface {
	name() string
	// declare registers globals and hash functions; called before Layout.
	declare(mod *ir.Module)
	// define builds the lookup/insert IR functions; called after Layout.
	define(mod *ir.Module)
	// hash emits the (havocable) hash computation over the key buffer,
	// returning the hash register (0 constant for hash-free tables).
	hash(fb *ir.FuncBuilder, keyBuf ir.Reg) ir.Reg
	lookupFn() *ir.Func
	insertFn() *ir.Func
	regions() []Region
	hashes() []HashUse
}

// newFlowTable constructs a table whose globals and functions carry the
// given name prefix, so a NAT can host two independent instances in one
// module.
func newFlowTable(kind, prefix string) flowTable {
	switch kind {
	case "chain":
		return &chainTable{prefix: prefix}
	case "ring":
		return &ringTable{prefix: prefix}
	case "ubtree":
		return &ubTable{prefix: prefix}
	case "rbtree":
		return &rbTable{prefix: prefix}
	}
	panic("nf: unknown flow table " + kind)
}

// --- chaining hash table -------------------------------------------------

// chainTable is the 4096-bucket separate-chaining hash table: collisions
// land in per-bucket linked lists, so an adversary causing systematic
// collisions turns lookup into a list walk (§5.4, Fig. 12/14).
//
// Node layout: next(8) hi(8) lo(8) val(8).
type chainTable struct {
	prefix  string
	buckets *ir.Global
	hid     int
	lookup  *ir.Func
	insert  *ir.Func
}

func (c *chainTable) name() string { return "chain" }

func (c *chainTable) declare(mod *ir.Module) {
	c.buckets = mod.AddGlobal(c.prefix+"chain_buckets", ChainBuckets*8, 4096)
	c.hid = mod.AddHash(c.prefix+"table-hash", ChainHashBits, nfhash.TableHash)
}

func (c *chainTable) hash(fb *ir.FuncBuilder, keyBuf ir.Reg) ir.Reg {
	return fb.Havoc(c.hid, keyBuf, nfhash.FlowKeyLen)
}

func (c *chainTable) define(mod *ir.Module) {
	{
		fb := mod.NewFunc(c.prefix+"chain_lookup", 3)
		h, hi, lo := fb.Param(0), fb.Param(1), fb.Param(2)
		slot := fb.Add(fb.GlobalAddr(c.buckets), fb.MulImm(h, 8))
		node := fb.Var(fb.Load(slot, 0, 8))
		fb.While(func() ir.Reg { return fb.CmpNeImm(node.R(), 0) }, func() {
			eq := fb.And(
				fb.CmpEq(fb.Load(node.R(), 8, 8), hi),
				fb.CmpEq(fb.Load(node.R(), 16, 8), lo))
			fb.If(eq, func() {
				fb.Ret(fb.Load(node.R(), 24, 8))
			}, nil)
			node.Set(fb.Load(node.R(), 0, 8))
		})
		fb.RetImm(0)
		c.lookup = fb.Seal()
	}
	{
		fb := mod.NewFunc(c.prefix+"chain_insert", 4)
		h, hi, lo, val := fb.Param(0), fb.Param(1), fb.Param(2), fb.Param(3)
		slot := fb.Add(fb.GlobalAddr(c.buckets), fb.MulImm(h, 8))
		node := fb.AllocImm(32)
		fb.Store(node, 0, fb.Load(slot, 0, 8), 8) // next = old head
		fb.Store(node, 8, hi, 8)
		fb.Store(node, 16, lo, 8)
		fb.Store(node, 24, val, 8)
		fb.Store(slot, 0, node, 8)
		fb.RetImm(0)
		c.insert = fb.Seal()
	}
}

func (c *chainTable) lookupFn() *ir.Func { return c.lookup }
func (c *chainTable) insertFn() *ir.Func { return c.insert }

func (c *chainTable) regions() []Region {
	return []Region{{Name: c.prefix + "chain-buckets", Addr: c.buckets.Addr, Size: c.buckets.Size}}
}

func (c *chainTable) hashes() []HashUse {
	return []HashUse{{HashID: c.hid, Bits: ChainHashBits, Fn: nfhash.TableHash}}
}

// --- open-addressing hash ring -------------------------------------------

// ringTable is the open-addressing hash ring: one cache-aligned entry per
// slot in a circular array; collisions probe forward. Its sheer size makes
// adversarial *memory access* the dominant attack (§5.4, Fig. 13/15).
//
// Entry layout (64 B): occ(8) hi(8) lo(8) val(8) pad(32).
type ringTable struct {
	prefix string
	ring   *ir.Global
	hid    int
	lookup *ir.Func
	insert *ir.Func
}

func (r *ringTable) name() string { return "ring" }

func (r *ringTable) declare(mod *ir.Module) {
	r.ring = mod.AddGlobal(r.prefix+"hash_ring", RingEntries*ringEntrySize, 4096)
	r.hid = mod.AddHash(r.prefix+"ring-hash", RingHashBits, nfhash.RingHash)
}

func (r *ringTable) hash(fb *ir.FuncBuilder, keyBuf ir.Reg) ir.Reg {
	return fb.Havoc(r.hid, keyBuf, nfhash.FlowKeyLen)
}

func (r *ringTable) define(mod *ir.Module) {
	mask := uint64(RingEntries - 1)
	{
		fb := mod.NewFunc(r.prefix+"ring_lookup", 3)
		h, hi, lo := fb.Param(0), fb.Param(1), fb.Param(2)
		base := fb.GlobalAddr(r.ring)
		i := fb.Var(h)
		probes := fb.VarImm(0)
		fb.While(func() ir.Reg { return fb.CmpUlt(probes.R(), fb.Const(RingEntries)) }, func() {
			e := fb.Add(base, fb.MulImm(fb.AndImm(i.R(), mask), ringEntrySize))
			occ := fb.Load(e, 0, 8)
			fb.If(fb.CmpEqImm(occ, 0), func() { fb.RetImm(0) }, nil)
			eq := fb.And(
				fb.CmpEq(fb.Load(e, 8, 8), hi),
				fb.CmpEq(fb.Load(e, 16, 8), lo))
			fb.If(eq, func() { fb.Ret(fb.Load(e, 24, 8)) }, nil)
			i.Set(fb.AddImm(i.R(), 1))
			probes.Set(fb.AddImm(probes.R(), 1))
		})
		fb.RetImm(0)
		r.lookup = fb.Seal()
	}
	{
		fb := mod.NewFunc(r.prefix+"ring_insert", 4)
		h, hi, lo, val := fb.Param(0), fb.Param(1), fb.Param(2), fb.Param(3)
		base := fb.GlobalAddr(r.ring)
		i := fb.Var(h)
		probes := fb.VarImm(0)
		fb.While(func() ir.Reg { return fb.CmpUlt(probes.R(), fb.Const(RingEntries)) }, func() {
			e := fb.Add(base, fb.MulImm(fb.AndImm(i.R(), mask), ringEntrySize))
			occ := fb.Load(e, 0, 8)
			fb.If(fb.CmpEqImm(occ, 0), func() {
				fb.Store(e, 0, fb.Const(1), 8)
				fb.Store(e, 8, hi, 8)
				fb.Store(e, 16, lo, 8)
				fb.Store(e, 24, val, 8)
				fb.RetImm(0)
			}, nil)
			i.Set(fb.AddImm(i.R(), 1))
			probes.Set(fb.AddImm(probes.R(), 1))
		})
		fb.RetImm(0) // ring full: drop the flow
		r.insert = fb.Seal()
	}
}

func (r *ringTable) lookupFn() *ir.Func { return r.lookup }
func (r *ringTable) insertFn() *ir.Func { return r.insert }

func (r *ringTable) regions() []Region {
	return []Region{{Name: r.prefix + "hash-ring", Addr: r.ring.Addr, Size: r.ring.Size}}
}

func (r *ringTable) hashes() []HashUse {
	return []HashUse{{HashID: r.hid, Bits: RingHashBits, Fn: nfhash.RingHash}}
}

package nf

import (
	"testing"

	"castan/internal/ir"
	"castan/internal/packet"
	"castan/internal/stats"
)

func build(t *testing.T, name string) *Instance {
	t.Helper()
	inst, err := New(name)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return inst
}

func TestCatalogBuildsEverything(t *testing.T) {
	for _, name := range Names {
		inst := build(t, name)
		if inst.Mod.Funcs["nf_process"] == nil {
			t.Errorf("%s: no nf_process", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown NF accepted")
	}
}

func TestNOPForwardsEverything(t *testing.T) {
	inst := build(t, "nop")
	out, err := inst.Process(packet.Build(packet.Spec{SrcIP: 1, DstIP: 2}))
	if err != nil || out != RetOut {
		t.Errorf("nop = %d, %v", out, err)
	}
}

// randomFlows produces n distinct UDP flow frames suited to the NF kind.
func randomFlows(kind string, n int, seed uint64) [][]byte {
	rng := stats.NewRNG(seed)
	frames := make([][]byte, 0, n)
	seen := map[packet.FiveTuple]bool{}
	for len(frames) < n {
		spec := packet.Spec{Proto: packet.ProtoUDP}
		switch kind {
		case "nat":
			spec.SrcIP = NATInternalNet | rng.Uint32()&0x00ffffff
			spec.DstIP = 0x08080000 | rng.Uint32()&0xffff
			spec.SrcPort = uint16(rng.Intn(60000) + 1)
			spec.DstPort = uint16(rng.Intn(60000) + 1)
		case "lb":
			spec.SrcIP = rng.Uint32() | 0x40000000 // keep outside 10/8 and backends
			spec.DstIP = LBVIP
			spec.SrcPort = uint16(rng.Intn(60000) + 1)
			spec.DstPort = 80
		default: // lpm
			spec.SrcIP = rng.Uint32()
			spec.DstIP = rng.Uint32()
			if rng.Intn(2) == 0 {
				// Half the traffic inside the FIB's covered space.
				spec.DstIP = (10+rng.Uint32()%8)<<24 | rng.Uint32()&0x00ffffff
			}
			spec.SrcPort, spec.DstPort = 1000, 2000
		}
		fr := packet.Build(spec)
		tup, _ := packet.Parse(fr)
		if seen[tup.Tuple()] {
			continue
		}
		seen[tup.Tuple()] = true
		frames = append(frames, fr)
	}
	return frames
}

func TestLPMDifferential(t *testing.T) {
	cases := []struct {
		name   string
		with32 bool
	}{
		{"lpm-trie", true},
		{"lpm-dl1", false},
		{"lpm-dl2", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inst := build(t, c.name)
			ref := NewNativeLPM(c.with32)
			for i, fr := range randomFlows("lpm", 400, 42) {
				want := ref.Process(fr)
				got, err := inst.Process(fr)
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if got != want {
					p, _ := packet.Parse(fr)
					t.Fatalf("frame %d dst=%v: got port %d, want %d", i, p.IP.DstAddr(), got, want)
				}
			}
			// The most specific routes must resolve exactly.
			routes := DefaultFIB(c.with32)
			for _, dst := range MostSpecificAddrs(routes) {
				fr := packet.Build(packet.Spec{SrcIP: 1, DstIP: dst, SrcPort: 9, DstPort: 9})
				want := ref.Process(fr)
				got, _ := inst.Process(fr)
				if got != want || got == 0 {
					t.Errorf("specific dst %08x: got %d, want %d", dst, got, want)
				}
			}
		})
	}
}

func TestNATDifferentialAllTables(t *testing.T) {
	for _, table := range []string{"chain", "ring", "ubtree", "rbtree"} {
		t.Run(table, func(t *testing.T) {
			inst := build(t, "nat-"+table)
			ref := NewNativeNAT()
			flows := randomFlows("nat", 120, 7)
			// Outbound: each flow twice (miss then hit), interleaved.
			var sequence [][]byte
			for _, f := range flows {
				sequence = append(sequence, f, f)
			}
			var translated [][]byte
			for i, fr := range sequence {
				mine := append([]byte(nil), fr...)
				theirs := append([]byte(nil), fr...)
				inst.Machine.Mem.WriteBytes(ir.PacketBase, mine)
				got, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(mine)))
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				inst.Machine.Mem.ReadBytes(ir.PacketBase, mine)
				want := ref.Process(theirs)
				if got != want {
					t.Fatalf("frame %d: action %d, want %d", i, got, want)
				}
				for b := 0; b < len(mine); b++ {
					if mine[b] != theirs[b] {
						t.Fatalf("frame %d rewrite mismatch at byte %d: %02x vs %02x", i, b, mine[b], theirs[b])
					}
				}
				translated = append(translated, mine)
			}
			// Return direction: reverse each translated packet.
			for i, fr := range translated {
				p, err := packet.Parse(fr)
				if err != nil {
					t.Fatalf("parse translated: %v", err)
				}
				back := packet.FromTuple(p.Tuple().Reverse())
				mine := append([]byte(nil), back...)
				theirs := append([]byte(nil), back...)
				inst.Machine.Mem.WriteBytes(ir.PacketBase, mine)
				got, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(mine)))
				if err != nil {
					t.Fatalf("return frame %d: %v", i, err)
				}
				inst.Machine.Mem.ReadBytes(ir.PacketBase, mine)
				want := ref.Process(theirs)
				if got != want || got != RetIn {
					t.Fatalf("return frame %d: action %d, want %d (RetIn)", i, got, want)
				}
				for b := 0; b < len(mine); b++ {
					if mine[b] != theirs[b] {
						t.Fatalf("return frame %d rewrite mismatch at byte %d", i, b)
					}
				}
			}
		})
	}
}

func TestLBDifferentialAllTables(t *testing.T) {
	for _, table := range []string{"chain", "ring", "ubtree", "rbtree"} {
		t.Run(table, func(t *testing.T) {
			inst := build(t, "lb-"+table)
			ref := NewNativeLB()
			flows := randomFlows("lb", 120, 11)
			var sequence [][]byte
			for _, f := range flows {
				sequence = append(sequence, f, f) // miss then hit
			}
			for i, fr := range sequence {
				mine := append([]byte(nil), fr...)
				theirs := append([]byte(nil), fr...)
				inst.Machine.Mem.WriteBytes(ir.PacketBase, mine)
				got, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(mine)))
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				inst.Machine.Mem.ReadBytes(ir.PacketBase, mine)
				want := ref.Process(theirs)
				if got != want {
					t.Fatalf("frame %d: action %d, want %d", i, got, want)
				}
				for b := 0; b < len(mine); b++ {
					if mine[b] != theirs[b] {
						t.Fatalf("frame %d rewrite mismatch at byte %d: %02x vs %02x", i, b, mine[b], theirs[b])
					}
				}
			}
			// Same flow must stick to the same backend.
			fr := flows[0]
			inst.Machine.Mem.WriteBytes(ir.PacketBase, fr)
			if _, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(fr))); err != nil {
				t.Fatal(err)
			}
			var first [4]byte
			inst.Machine.Mem.ReadBytes(ir.PacketBase+uint64(packet.OffIPDst), first[:])
			inst.Machine.Mem.WriteBytes(ir.PacketBase, fr)
			if _, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(fr))); err != nil {
				t.Fatal(err)
			}
			var second [4]byte
			inst.Machine.Mem.ReadBytes(ir.PacketBase+uint64(packet.OffIPDst), second[:])
			if first != second {
				t.Error("flow not pinned to one backend")
			}
		})
	}
}

func TestNonIPAndNonL4Dropped(t *testing.T) {
	for _, name := range []string{"lpm-trie", "nat-chain", "lb-ring"} {
		inst := build(t, name)
		fr := packet.Build(packet.Spec{SrcIP: NATInternalNet | 5, DstIP: LBVIP, SrcPort: 1, DstPort: 80})
		fr[packet.OffEtherType] = 0x86 // not IPv4
		out, err := inst.Process(fr)
		if err != nil || out != RetDrop {
			t.Errorf("%s non-IP: %d, %v", name, out, err)
		}
	}
	for _, name := range []string{"nat-ubtree", "lb-rbtree"} {
		inst := build(t, name)
		fr := packet.Build(packet.Spec{SrcIP: NATInternalNet | 5, DstIP: LBVIP, SrcPort: 1, DstPort: 80})
		fr[packet.OffIPProto] = byte(packet.ProtoICMP)
		out, err := inst.Process(fr)
		if err != nil || out != RetDrop {
			t.Errorf("%s ICMP: %d, %v", name, out, err)
		}
	}
}

func TestManualWorkloadsSkewTrees(t *testing.T) {
	// The manual skew workload must degenerate the unbalanced tree: after
	// inserting n ordered flows, looking up the last one costs ~n node
	// visits. We proxy node visits via interpreter instruction counts.
	inst := build(t, "nat-ubtree")
	frames := inst.Manual(40)
	if len(frames) != 40 {
		t.Fatalf("manual frames = %d", len(frames))
	}
	for _, fr := range frames {
		if _, err := inst.Process(fr); err != nil {
			t.Fatal(err)
		}
	}
	countInstrs := func(fr []byte) uint64 {
		var n uint64
		inst.Machine.Hooks.OnInstr = func(_ *ir.Func, _ *ir.Instr) { n++ }
		defer func() { inst.Machine.Hooks.OnInstr = nil }()
		if _, err := inst.Process(fr); err != nil {
			t.Fatal(err)
		}
		return n
	}
	deep := countInstrs(frames[len(frames)-1])
	shallow := countInstrs(frames[0])
	if deep < shallow+200 {
		t.Errorf("skew not visible: deep lookup %d instrs vs shallow %d", deep, shallow)
	}

	// The red-black tree must flatten the same sequence: the deepest
	// lookup should cost only logarithmically more than the shallowest.
	rb := build(t, "nat-rbtree")
	framesRB := skewWorkload("nat", 40)
	for _, fr := range framesRB {
		if _, err := rb.Process(fr); err != nil {
			t.Fatal(err)
		}
	}
	countRB := func(fr []byte) uint64 {
		var n uint64
		rb.Machine.Hooks.OnInstr = func(_ *ir.Func, _ *ir.Instr) { n++ }
		defer func() { rb.Machine.Hooks.OnInstr = nil }()
		if _, err := rb.Process(fr); err != nil {
			t.Fatal(err)
		}
		return n
	}
	worstRB := uint64(0)
	for _, fr := range framesRB {
		if c := countRB(fr); c > worstRB {
			worstRB = c
		}
	}
	if worstRB*2 > deep {
		t.Errorf("red-black lookup (%d instrs) not clearly cheaper than skewed BST (%d)", worstRB, deep)
	}
}

func TestTrieManualHitsDeepRoutes(t *testing.T) {
	inst := build(t, "lpm-trie")
	frames := inst.Manual(8)
	ref := NewNativeLPM(true)
	for i, fr := range frames {
		got, err := inst.Process(fr)
		if err != nil {
			t.Fatal(err)
		}
		if got == 0 {
			t.Errorf("manual frame %d missed the FIB", i)
		}
		if want := ref.Process(fr); got != want {
			t.Errorf("manual frame %d: %d vs reference %d", i, got, want)
		}
	}
}

func TestAttackRegionsDeclared(t *testing.T) {
	expects := map[string]bool{
		"lpm-dl1":   true,
		"lpm-dl2":   true,
		"lpm-trie":  true,
		"nat-chain": true,
		"lb-ring":   true,
		"nat-ring":  true,
	}
	for name, want := range expects {
		inst := build(t, name)
		if (len(inst.AttackRegions) > 0) != want {
			t.Errorf("%s: regions = %v", name, inst.AttackRegions)
		}
		for _, r := range inst.AttackRegions {
			if r.Size == 0 {
				t.Errorf("%s region %s empty", name, r.Name)
			}
		}
	}
	// Hash NFs expose tailored hash uses; NAT has two.
	if n := len(build(t, "nat-chain").Hashes); n != 2 {
		t.Errorf("nat-chain hashes = %d, want 2", n)
	}
	if n := len(build(t, "lb-ring").Hashes); n != 1 {
		t.Errorf("lb-ring hashes = %d, want 1", n)
	}
	for _, h := range build(t, "lb-chain").Hashes {
		if h.Space == nil || h.Fn == nil || h.Bits == 0 {
			t.Errorf("incomplete hash use: %+v", h)
		}
	}
}

func TestChainCollisionSlowsLookup(t *testing.T) {
	// Ground truth for the §5.4 attack: feed flows that share a bucket and
	// check the chain actually grows (instruction counts rise per packet).
	inst := build(t, "lb-chain")
	rng := stats.NewRNG(3)
	target := uint64(77)
	var colliders [][]byte
	for len(colliders) < 12 {
		tup := packet.FiveTuple{
			SrcIP:   rng.Uint32(),
			DstIP:   LBVIP,
			SrcPort: uint16(rng.Intn(65535) + 1),
			DstPort: 80,
			Proto:   packet.ProtoUDP,
		}
		if ChainBucketOf(tup) == target {
			colliders = append(colliders, packet.FromTuple(tup))
		}
	}
	var costs []uint64
	for _, fr := range colliders {
		var n uint64
		inst.Machine.Hooks.OnInstr = func(_ *ir.Func, _ *ir.Instr) { n++ }
		if _, err := inst.Process(fr); err != nil {
			t.Fatal(err)
		}
		inst.Machine.Hooks.OnInstr = nil
		costs = append(costs, n)
	}
	if costs[len(costs)-1] <= costs[0] {
		t.Errorf("colliding inserts did not grow lookup cost: %v", costs)
	}
}

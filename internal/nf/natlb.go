package nf

import (
	"fmt"

	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/nfhash"
	"castan/internal/packet"
)

// Network identities used by the NAT and LB (setup-time configuration).
const (
	NATInternalNet  = uint32(0x0a000000) // 10.0.0.0/8 is "inside"
	NATInternalMask = uint32(0xff000000)
	NATExternalIP   = uint32(0xc0a80101) // 192.168.1.1
	NATFirstPort    = 10000
	LBVIP           = uint32(0xc0a80164) // 192.168.1.100
	LBBackends      = 16
	LBBackendBase   = uint32(0x0ac80001) // 10.200.0.1 ...
)

// newFlowNF builds a NAT or LB over the named flow-table implementation.
// This is where the paper's per-flow-state NFs come together: key
// extraction from the 5-tuple, a havocable hash, lookup, miss-path
// insertion, and header rewriting — all in IR.
func newFlowNF(kind, table string) (*Instance, error) {
	ft := newFlowTable(table, "")
	name := kind + "-" + table
	mod := ir.NewModule(name)

	// Scratch key buffers (one per concurrent key) and config counters.
	key1 := mod.AddGlobal("keybuf1", 64, 64)
	key2 := mod.AddGlobal("keybuf2", 64, 64)
	ctr := mod.AddGlobal("counter", 8, 64)
	backends := mod.AddGlobal("backends", LBBackends*4, 64)
	ft.declare(mod)
	var ft2 flowTable
	if kind == "nat" {
		// The NAT keeps two associative arrays (outbound and return
		// direction), each an independent instance of the same structure.
		ft2 = newFlowTable(table, "rev_")
		ft2.declare(mod)
	}
	mod.Layout()
	ft.define(mod)
	if ft2 != nil {
		ft2.define(mod)
	}

	switch kind {
	case "nat":
		buildNAT(mod, ft, ft2, key1, key2, ctr)
	case "lb":
		buildLB(mod, ft, key1, ctr, backends)
	default:
		return nil, fmt.Errorf("nf: unknown kind %q", kind)
	}

	mach, err := finish(name, mod, func(m *interp.Machine) error {
		m.Mem.Write(ctr.Addr, NATFirstPort, 8)
		for i := uint32(0); i < LBBackends; i++ {
			m.Mem.Write(backends.Addr+uint64(i)*4, uint64(LBBackendBase+i), 4)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	inst := &Instance{
		Name:          name,
		Mod:           mod,
		Machine:       mach,
		AttackRegions: ft.regions(),
	}
	// Attach tailored key spaces for rainbow reconciliation (§3.5).
	for _, h := range ft.hashes() {
		h.Space = tailoredSpace(kind)
		inst.Hashes = append(inst.Hashes, h)
	}
	if ft2 != nil {
		for _, h := range ft2.hashes() {
			h.Space = tailoredSpace(kind)
			inst.Hashes = append(inst.Hashes, h)
		}
		inst.AttackRegions = append(inst.AttackRegions, ft2.regions()...)
	}
	if table == "ubtree" {
		inst.Manual = func(n int) [][]byte { return skewWorkload(kind, n) }
	}
	return inst, nil
}

// tailoredSpace returns the rainbow key space matching each NF's packet
// constraints: UDP, pinned destination (the NAT's typical external server
// or the LB's VIP), sources from the internal /16.
func tailoredSpace(kind string) nfhash.KeySpace {
	if kind == "lb" {
		return nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: LBVIP, DstPort: 80}
	}
	return nfhash.UDPFlowSpace{SrcNet: 0x0a00, DstIP: 0x08080808, DstPort: 53}
}

// buildNAT emits the NAT's nf_process (§5.1 "NAT"): outbound packets from
// the internal network get their source rewritten to the NAT's external
// identity (per-flow port from a counter); return traffic is matched in
// the reverse table and translated back. Two tables, two keys, two
// havocable hashes per new flow — the structure that defeats rainbow
// reconciliation in §5.4.
func buildNAT(mod *ir.Module, fwd, rev flowTable, key1, key2, ctr *ir.Global) {
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	emitIPv4Guard(fb, pkt)
	proto := emitL4Guard(fb, pkt)

	src := fb.Load(pkt, packet.OffIPSrc, 4)
	dst := fb.Load(pkt, packet.OffIPDst, 4)
	sp := fb.Load(pkt, packet.OffL4SrcPort, 2)
	dp := fb.Load(pkt, packet.OffL4DstPort, 2)

	k1 := fb.GlobalAddr(key1)
	k2 := fb.GlobalAddr(key2)
	inside := fb.CmpEq(fb.AndImm(src, uint64(NATInternalMask)), fb.Const(uint64(NATInternalNet&NATInternalMask)))
	fb.If(inside, func() {
		// Outbound: key1 = (src,dst,sp,dp,proto).
		emitKeyStore(fb, k1, src, dst, sp, dp, proto)
		hi, lo := emitKeyPack(fb, k1)
		h := fwd.hash(fb, k1)
		rec := fb.Call(fwd.lookupFn(), h, hi, lo)
		fb.If(fb.CmpEqImm(rec, 0), func() {
			// New flow: allocate a translation record and both entries.
			ctrAddr := fb.GlobalAddr(ctr)
			extPort := fb.Load(ctrAddr, 0, 8)
			fb.Store(ctrAddr, 0, fb.AddImm(extPort, 1), 8)
			extPort16 := fb.AndImm(extPort, 0xffff)
			nrec := fb.AllocImm(16)
			fb.Store(nrec, 0, extPort16, 2)
			fb.Store(nrec, 2, src, 4)
			fb.Store(nrec, 6, sp, 2)
			fb.Call(fwd.insertFn(), h, hi, lo, nrec)
			// Reverse key matches the future return packet:
			// (dst, natIP, dp, extPort, proto).
			emitKeyStore(fb, k2, dst, fb.Const(uint64(NATExternalIP)), dp, extPort16, proto)
			rhi, rlo := emitKeyPack(fb, k2)
			rh := rev.hash(fb, k2)
			fb.Call(rev.insertFn(), rh, rhi, rlo, nrec)
			emitNATRewriteOut(fb, pkt, extPort16)
			fb.RetImm(RetOut)
		}, func() {
			extPort16 := fb.Load(rec, 0, 2)
			emitNATRewriteOut(fb, pkt, extPort16)
			fb.RetImm(RetOut)
		})
	}, func() {
		// Inbound: only packets addressed to the NAT's external identity.
		fb.If(fb.CmpNeImm(dst, uint64(NATExternalIP)), func() {
			fb.RetImm(RetDrop)
		}, nil)
		emitKeyStore(fb, k1, src, dst, sp, dp, proto)
		hi, lo := emitKeyPack(fb, k1)
		h := rev.hash(fb, k1)
		rec := fb.Call(rev.lookupFn(), h, hi, lo)
		fb.If(fb.CmpEqImm(rec, 0), func() {
			fb.RetImm(RetDrop)
		}, nil)
		origIP := fb.Load(rec, 2, 4)
		origPort := fb.Load(rec, 6, 2)
		fb.Store(pkt, packet.OffIPDst, origIP, 4)
		fb.Store(pkt, packet.OffL4DstPort, origPort, 2)
		fb.RetImm(RetIn)
	})
	fb.RetImm(RetDrop)
	fb.Seal()
}

// buildLB emits the load balancer's nf_process (§5.1 "LB"): VIP-destined
// packets are pinned to a backend chosen round-robin on first sight;
// backend-sourced return traffic is rewritten to come from the VIP.
func buildLB(mod *ir.Module, ft flowTable, key1, ctr, backends *ir.Global) {
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	emitIPv4Guard(fb, pkt)
	proto := emitL4Guard(fb, pkt)

	src := fb.Load(pkt, packet.OffIPSrc, 4)
	dst := fb.Load(pkt, packet.OffIPDst, 4)
	sp := fb.Load(pkt, packet.OffL4SrcPort, 2)
	dp := fb.Load(pkt, packet.OffL4DstPort, 2)

	// Return traffic from a backend: source becomes the VIP.
	fromBackend := fb.CmpEq(fb.AndImm(src, 0xffff0000), fb.Const(uint64(LBBackendBase&0xffff0000)))
	fb.If(fromBackend, func() {
		fb.Store(pkt, packet.OffIPSrc, fb.Const(uint64(LBVIP)), 4)
		fb.RetImm(RetIn)
	}, nil)
	// Everything else must target the VIP (the paper's workloads force
	// this case; other traffic is statically routed or dropped).
	fb.If(fb.CmpNeImm(dst, uint64(LBVIP)), func() {
		fb.RetImm(RetDrop)
	}, nil)

	k1 := fb.GlobalAddr(key1)
	emitKeyStore(fb, k1, src, dst, sp, dp, proto)
	hi, lo := emitKeyPack(fb, k1)
	h := ft.hash(fb, k1)
	val := fb.Call(ft.lookupFn(), h, hi, lo)
	backend := fb.Var(val)
	fb.If(fb.CmpEqImm(val, 0), func() {
		ctrAddr := fb.GlobalAddr(ctr)
		rr := fb.Load(ctrAddr, 0, 8)
		fb.Store(ctrAddr, 0, fb.AddImm(rr, 1), 8)
		slot := fb.URem(rr, fb.Const(LBBackends))
		b := fb.Load(fb.Add(fb.GlobalAddr(backends), fb.MulImm(slot, 4)), 0, 4)
		fb.Call(ft.insertFn(), h, hi, lo, b)
		backend.Set(b)
	}, nil)
	fb.Store(pkt, packet.OffIPDst, backend.R(), 4)
	fb.RetImm(RetOut)
	fb.Seal()
}

// emitKeyStore writes the canonical 13-byte flow key into the buffer:
// srcIP(4) dstIP(4) srcPort(2) dstPort(2) proto(1).
func emitKeyStore(fb *ir.FuncBuilder, buf, src, dst, sp, dp, proto ir.Reg) {
	fb.Store(buf, 0, src, 4)
	fb.Store(buf, 4, dst, 4)
	fb.Store(buf, 8, sp, 2)
	fb.Store(buf, 10, dp, 2)
	fb.Store(buf, 12, proto, 1)
}

// emitKeyPack loads the two overlapping 64-bit words covering the 13-byte
// key (bytes 0-7 and 5-12).
func emitKeyPack(fb *ir.FuncBuilder, buf ir.Reg) (hi, lo ir.Reg) {
	hi = fb.Load(buf, 0, 8)
	lo = fb.Load(buf, 5, 8)
	return hi, lo
}

// emitNATRewriteOut rewrites an outbound packet's source to the NAT's
// external identity.
func emitNATRewriteOut(fb *ir.FuncBuilder, pkt, extPort ir.Reg) {
	fb.Store(pkt, packet.OffIPSrc, fb.Const(uint64(NATExternalIP)), 4)
	fb.Store(pkt, packet.OffL4SrcPort, extPort, 2)
}

// skewWorkload is the Manual adversarial workload for the unbalanced
// trees (§5.3): a monotonically increasing key sequence that degenerates
// the BST into a linked list. For the NAT that is a fixed source/dest with
// increasing destination ports; for the LB, increasing source ports
// toward the VIP.
func skewWorkload(kind string, n int) [][]byte {
	if n <= 0 {
		n = 50
	}
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		spec := packet.Spec{Proto: packet.ProtoUDP}
		if kind == "nat" {
			spec.SrcIP = NATInternalNet | 0x0101
			spec.DstIP = 0x08080808
			spec.SrcPort = 7777
			spec.DstPort = uint16(1000 + i)
		} else {
			spec.SrcIP = 0x01010101
			spec.DstIP = LBVIP
			spec.SrcPort = uint16(1000 + i)
			spec.DstPort = 80
		}
		frames = append(frames, packet.Build(spec))
	}
	return frames
}

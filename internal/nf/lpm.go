package nf

import (
	"fmt"

	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/packet"
)

// Trie node layout (heap records; the bump allocator rounds each to its
// own cache line, as a malloc with per-node headers tends to):
//
//	+0  left child address (8)
//	+8  right child address (8)
//	+16 port (4)
//	+20 valid flag (4)
const (
	trieOffLeft  = 0
	trieOffRight = 8
	trieOffPort  = 16
	trieOffValid = 20
	trieNodeSize = 24
)

// NewLPMTrie builds LPM over a binary (Patricia-style) trie: lookup walks
// destination-address bits from the MSB, remembering the last valid port.
// Susceptible to algorithmic attacks: addresses matching the most
// specific routes walk the longest paths (§5.3).
func NewLPMTrie() (*Instance, error) {
	mod := ir.NewModule("lpm-trie")
	rootG := mod.AddGlobal("trie_root", 8, 64)
	mod.Layout()

	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	emitIPv4Guard(fb, pkt)
	dst := fb.Load(pkt, packet.OffIPDst, 4)
	node := fb.Var(fb.Load(fb.GlobalAddr(rootG), 0, 8))
	best := fb.VarImm(0)
	depth := fb.VarImm(0)
	thirtyOne := fb.Const(31)
	one := fb.Const(1)
	fb.While(func() ir.Reg {
		nz := fb.CmpNeImm(node.R(), 0)
		ok := fb.CmpUle(depth.R(), fb.Const(32))
		return fb.And(nz, ok)
	}, func() {
		valid := fb.Load(node.R(), trieOffValid, 4)
		fb.If(valid, func() {
			best.Set(fb.Load(node.R(), trieOffPort, 4))
		}, nil)
		bit := fb.And(fb.Lshr(dst, fb.Sub(thirtyOne, depth.R())), one)
		fb.If(bit, func() {
			node.Set(fb.Load(node.R(), trieOffRight, 8))
		}, func() {
			node.Set(fb.Load(node.R(), trieOffLeft, 8))
		})
		depth.Set(fb.Add(depth.R(), one))
	})
	fb.Ret(best.R())
	fb.Seal()

	routes := DefaultFIB(true)
	mach, err := finish("lpm-trie", mod, func(m *interp.Machine) error {
		return buildTrie(m, rootG.Addr, routes)
	})
	if err != nil {
		return nil, err
	}
	manual := MostSpecificAddrs(routes)
	return &Instance{
		Name:    "lpm-trie",
		Mod:     mod,
		Machine: mach,
		AttackRegions: []Region{{
			Name: "trie-heap", Addr: ir.HeapBase, Size: mach.HeapUsed(),
		}},
		Manual: func(n int) [][]byte {
			return lpmManualFrames(manual, n)
		},
	}, nil
}

// buildTrie constructs the bit trie in machine memory (control plane).
func buildTrie(m *interp.Machine, rootGlobal uint64, routes []Route) error {
	newNode := func() uint64 { return m.Alloc(trieNodeSize) }
	root := newNode()
	m.Mem.Write(rootGlobal, root, 8)
	for _, r := range routes {
		if r.Len < 0 || r.Len > 32 {
			return fmt.Errorf("bad prefix length %d", r.Len)
		}
		node := root
		for d := 0; d < r.Len; d++ {
			bit := (r.Prefix >> (31 - d)) & 1
			off := uint64(trieOffLeft)
			if bit == 1 {
				off = trieOffRight
			}
			child := m.Mem.Read(node+off, 8)
			if child == 0 {
				child = newNode()
				m.Mem.Write(node+off, child, 8)
			}
			node = child
		}
		m.Mem.Write(node+trieOffPort, uint64(r.Port), 4)
		m.Mem.Write(node+trieOffValid, 1, 4)
	}
	return nil
}

// lpmManualFrames builds n frames cycling over the given destination
// addresses — the paper's hand-crafted trie workload (packets matching
// the most specific routes).
func lpmManualFrames(dsts []uint32, n int) [][]byte {
	if n <= 0 {
		n = len(dsts)
	}
	frames := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		d := dsts[i%len(dsts)]
		frames = append(frames, packet.Build(packet.Spec{
			SrcIP: 0xc0a80000 | uint32(i), DstIP: d,
			SrcPort: uint16(40000 + i), DstPort: 80,
		}))
	}
	return frames
}

// Direct-lookup geometry (scaled from the paper per DESIGN.md): the
// one-stage table covers /24 prefixes in a single 16 MiB byte array
// (128 × L3); the two-stage first table covers /16 in 256 KiB (2 × L3)
// with 256-entry second-stage blocks for longer prefixes.
const (
	dl1Bits      = 24
	dl1Entries   = 1 << dl1Bits // 16 Mi one-byte ports
	dl2Stage1Len = 1 << 16 * 4  // 65536 × uint32
	dl2BlockLen  = 256 * 4
	dl2MaxBlocks = 64
	dl2Flag      = 0x80000000
)

// NewLPMDirect1 builds one-stage direct lookup: one giant array indexed by
// the top 24 destination bits. One memory access per packet, but the
// array dwarfs the L3 cache — the paper's prime cache-contention victim
// (§5.2, Figures 4/5).
func NewLPMDirect1() (*Instance, error) {
	mod := ir.NewModule("lpm-dl1")
	tbl := mod.AddGlobal("dl1_table", dl1Entries, 4096)
	mod.Layout()

	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	emitIPv4Guard(fb, pkt)
	dst := fb.Load(pkt, packet.OffIPDst, 4)
	idx := fb.LshrImm(dst, 32-dl1Bits)
	port := fb.Load(fb.Add(fb.GlobalAddr(tbl), idx), 0, 1)
	fb.Ret(port)
	fb.Seal()

	routes := DefaultFIB(false)
	mach, err := finish("lpm-dl1", mod, func(m *interp.Machine) error {
		// Expand every route into equal-length /24 entries, most specific
		// last so it wins.
		for l := 0; l <= 24; l++ {
			for _, r := range routes {
				if r.Len != l {
					continue
				}
				start := uint64(r.Prefix) >> (32 - dl1Bits)
				count := uint64(1) << (dl1Bits - r.Len)
				for e := uint64(0); e < count; e++ {
					m.Mem.StoreByte(tbl.Addr+start+e, byte(r.Port))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:    "lpm-dl1",
		Mod:     mod,
		Machine: mach,
		AttackRegions: []Region{{
			Name: "dl1-table", Addr: tbl.Addr, Size: tbl.Size,
		}},
	}, nil
}

// NewLPMDirect2 builds the DPDK-style two-stage direct lookup: a /16
// first-stage array whose entries either hold a port or point into a
// 256-entry second-stage block. At most two memory accesses per packet;
// the small first stage makes cache-contention workloads hard to find
// (§5.2, Figure 6).
func NewLPMDirect2() (*Instance, error) {
	mod := ir.NewModule("lpm-dl2")
	t1 := mod.AddGlobal("dl2_stage1", dl2Stage1Len, 4096)
	t2 := mod.AddGlobal("dl2_stage2", dl2MaxBlocks*dl2BlockLen, 4096)
	mod.Layout()

	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	emitIPv4Guard(fb, pkt)
	dst := fb.Load(pkt, packet.OffIPDst, 4)
	i1 := fb.LshrImm(dst, 16)
	e1 := fb.Load(fb.Add(fb.GlobalAddr(t1), fb.MulImm(i1, 4)), 0, 4)
	out := fb.Var(e1)
	fb.If(fb.And(e1, fb.Const(dl2Flag)), func() {
		blk := fb.AndImm(e1, 0xffff)
		i2 := fb.AndImm(fb.LshrImm(dst, 8), 0xff)
		off := fb.Add(fb.MulImm(blk, dl2BlockLen), fb.MulImm(i2, 4))
		out.Set(fb.Load(fb.Add(fb.GlobalAddr(t2), off), 0, 4))
	}, nil)
	fb.Ret(out.R())
	fb.Seal()

	routes := DefaultFIB(false)
	mach, err := finish("lpm-dl2", mod, func(m *interp.Machine) error {
		return buildDL2(m, t1.Addr, t2.Addr, routes)
	})
	if err != nil {
		return nil, err
	}
	return &Instance{
		Name:    "lpm-dl2",
		Mod:     mod,
		Machine: mach,
		AttackRegions: []Region{{
			Name: "dl2-stage1", Addr: t1.Addr, Size: t1.Size,
		}},
	}, nil
}

func buildDL2(m *interp.Machine, t1, t2 uint64, routes []Route) error {
	nextBlock := uint64(0)
	// Short prefixes (/16 and up) fill first-stage ranges directly.
	for l := 0; l <= 16; l++ {
		for _, r := range routes {
			if r.Len != l {
				continue
			}
			start := uint64(r.Prefix) >> 16
			count := uint64(1) << (16 - r.Len)
			for e := uint64(0); e < count; e++ {
				m.Mem.Write(t1+(start+e)*4, uint64(r.Port), 4)
			}
		}
	}
	// Longer prefixes allocate (or reuse) a second-stage block, inheriting
	// the covering port.
	for _, r := range routes {
		if r.Len <= 16 {
			continue
		}
		if r.Len > 24 {
			return fmt.Errorf("dl2 supports /24 max, got /%d", r.Len)
		}
		i1 := uint64(r.Prefix) >> 16
		e1 := m.Mem.Read(t1+i1*4, 4)
		var blk uint64
		if e1&dl2Flag != 0 {
			blk = e1 & 0xffff
		} else {
			if nextBlock >= dl2MaxBlocks {
				return fmt.Errorf("dl2 out of second-stage blocks")
			}
			blk = nextBlock
			nextBlock++
			for e := uint64(0); e < 256; e++ {
				m.Mem.Write(t2+blk*dl2BlockLen+e*4, e1, 4)
			}
			m.Mem.Write(t1+i1*4, dl2Flag|blk, 4)
		}
		start := (uint64(r.Prefix) >> 8) & 0xff
		count := uint64(1) << (24 - r.Len)
		for e := uint64(0); e < count; e++ {
			m.Mem.Write(t2+blk*dl2BlockLen+(start+e)*4, uint64(r.Port), 4)
		}
	}
	return nil
}

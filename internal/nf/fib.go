package nf

// Route is one forwarding-table entry.
type Route struct {
	Prefix uint32 // network-order numeric prefix, host bits zero
	Len    int    // prefix length in bits
	Port   uint32 // next-hop identifier, nonzero
}

// DefaultFIB reproduces the paper's forwarding table: 8 routes each of
// /8, /16 and /24 (plus /32 when the data structure supports it), chosen
// to overlap as much as possible — each prefix contains a more specific
// one.
func DefaultFIB(with32 bool) []Route {
	var routes []Route
	port := uint32(1)
	for i := uint32(0); i < 8; i++ {
		base := (10 + i) << 24
		routes = append(routes,
			Route{Prefix: base, Len: 8, Port: port},
			Route{Prefix: base | 1<<16, Len: 16, Port: port + 1},
			Route{Prefix: base | 1<<16 | 2<<8, Len: 24, Port: port + 2},
		)
		port += 3
		if with32 {
			routes = append(routes, Route{Prefix: base | 1<<16 | 2<<8 | 3, Len: 32, Port: port})
			port++
		}
	}
	return routes
}

// LookupFIB returns the longest-prefix-match port for addr over routes
// (reference implementation used by the native NFs and differential
// tests). Returns 0 when no route matches.
func LookupFIB(routes []Route, addr uint32) uint32 {
	best, bestLen := uint32(0), -1
	for _, r := range routes {
		mask := prefixMask(r.Len)
		if addr&mask == r.Prefix&mask && r.Len > bestLen {
			best, bestLen = r.Port, r.Len
		}
	}
	return best
}

func prefixMask(l int) uint32 {
	if l <= 0 {
		return 0
	}
	if l >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - l)
}

// MostSpecificAddrs returns one address per deepest route (the /32s if
// present, else the /24s): the targets of the Manual trie workload.
func MostSpecificAddrs(routes []Route) []uint32 {
	maxLen := 0
	for _, r := range routes {
		if r.Len > maxLen {
			maxLen = r.Len
		}
	}
	var out []uint32
	for _, r := range routes {
		if r.Len == maxLen {
			out = append(out, r.Prefix|0x03) // host bits that keep matching /32s exact
		}
	}
	return out
}

package nf

import (
	"castan/internal/ir"
)

// Unbalanced binary search tree (§5.3): plain BST keyed by the packed
// (hi, lo) flow key; no rebalancing, so ordered insertions degenerate it
// into a linked list — the skew CASTAN's workloads exploit (Fig. 9/10).
//
// Node layout: left(0) right(8) hi(16) lo(24) val(32), 40 bytes.
type ubTable struct {
	prefix string
	root   *ir.Global
	lookup *ir.Func
	insert *ir.Func
}

func (u *ubTable) name() string { return "ubtree" }

func (u *ubTable) declare(mod *ir.Module) {
	u.root = mod.AddGlobal(u.prefix+"ubtree_root", 8, 64)
}

func (u *ubTable) hash(fb *ir.FuncBuilder, keyBuf ir.Reg) ir.Reg {
	return fb.Const(0)
}

// emitKeyCompare emits the three-way lexicographic comparison of (hi,lo)
// against (nhi,nlo) as nested branches — the shape a compiler gives
// operator< — invoking exactly one of the callbacks.
func emitKeyCompare(fb *ir.FuncBuilder, hi, lo, nhi, nlo ir.Reg, onLess, onGreater, onEqual func()) {
	fb.If(fb.CmpUlt(hi, nhi), onLess, func() {
		fb.If(fb.CmpUlt(nhi, hi), onGreater, func() {
			fb.If(fb.CmpUlt(lo, nlo), onLess, func() {
				fb.If(fb.CmpUlt(nlo, lo), onGreater, onEqual)
			})
		})
	})
}

func (u *ubTable) define(mod *ir.Module) {
	{
		fb := mod.NewFunc(u.prefix+"ub_lookup", 3)
		_, hi, lo := fb.Param(0), fb.Param(1), fb.Param(2)
		node := fb.Var(fb.Load(fb.GlobalAddr(u.root), 0, 8))
		fb.While(func() ir.Reg { return fb.CmpNeImm(node.R(), 0) }, func() {
			nhi := fb.Load(node.R(), 16, 8)
			nlo := fb.Load(node.R(), 24, 8)
			emitKeyCompare(fb, hi, lo, nhi, nlo,
				func() { node.Set(fb.Load(node.R(), 0, 8)) },
				func() { node.Set(fb.Load(node.R(), 8, 8)) },
				func() { fb.Ret(fb.Load(node.R(), 32, 8)) })
		})
		fb.RetImm(0)
		u.lookup = fb.Seal()
	}
	{
		fb := mod.NewFunc(u.prefix+"ub_insert", 4)
		_, hi, lo, val := fb.Param(0), fb.Param(1), fb.Param(2), fb.Param(3)
		rootAddr := fb.GlobalAddr(u.root)
		node := fb.Var(fb.Load(rootAddr, 0, 8))
		parent := fb.VarImm(0)
		side := fb.VarImm(0) // 0 = left field, 8 = right field
		fb.While(func() ir.Reg { return fb.CmpNeImm(node.R(), 0) }, func() {
			nhi := fb.Load(node.R(), 16, 8)
			nlo := fb.Load(node.R(), 24, 8)
			parent.Set(node.R())
			emitKeyCompare(fb, hi, lo, nhi, nlo,
				func() {
					side.SetImm(0)
					node.Set(fb.Load(node.R(), 0, 8))
				},
				func() {
					side.SetImm(8)
					node.Set(fb.Load(node.R(), 8, 8))
				},
				func() {
					fb.Store(node.R(), 32, val, 8) // update in place
					fb.RetImm(0)
				})
		})
		n := fb.AllocImm(40)
		fb.Store(n, 16, hi, 8)
		fb.Store(n, 24, lo, 8)
		fb.Store(n, 32, val, 8)
		fb.If(fb.CmpEqImm(parent.R(), 0), func() {
			fb.Store(rootAddr, 0, n, 8)
		}, func() {
			fb.Store(fb.Add(parent.R(), side.R()), 0, n, 8)
		})
		fb.RetImm(0)
		u.insert = fb.Seal()
	}
}

func (u *ubTable) lookupFn() *ir.Func { return u.lookup }
func (u *ubTable) insertFn() *ir.Func { return u.insert }
func (u *ubTable) regions() []Region {
	// Tree nodes live on the heap; the attack surface is algorithmic, not
	// a fixed region, so expose no contention pool.
	return nil
}
func (u *ubTable) hashes() []HashUse { return nil }

// Red-black tree (§5.3): the std::map stand-in. Same key scheme as the
// unbalanced tree but with standard RB insertion fixup, so skew attacks
// are rebalanced away (Fig. 11).
//
// Node layout: left(0) right(8) parent(16) color(24: 1=red) hi(32) lo(40)
// val(48), 56 bytes.
type rbTable struct {
	prefix string
	root   *ir.Global
	lookup *ir.Func
	insert *ir.Func
}

const (
	rbLeft   = 0
	rbRight  = 8
	rbParent = 16
	rbColor  = 24
	rbHi     = 32
	rbLo     = 40
	rbVal    = 48
	rbSize   = 56
)

func (r *rbTable) name() string { return "rbtree" }

func (r *rbTable) declare(mod *ir.Module) {
	r.root = mod.AddGlobal(r.prefix+"rbtree_root", 8, 64)
}

func (r *rbTable) hash(fb *ir.FuncBuilder, keyBuf ir.Reg) ir.Reg {
	return fb.Const(0)
}

func (r *rbTable) define(mod *ir.Module) {
	rot := func(name string, primary, opposite uint64) *ir.Func {
		// rotate x with its `opposite` child y: y takes x's place.
		fb := mod.NewFunc(name, 1)
		x := fb.Param(0)
		rootAddr := fb.GlobalAddr(r.root)
		y := fb.Load(x, opposite, 8)
		// x.opposite = y.primary
		yp := fb.Load(y, primary, 8)
		fb.Store(x, opposite, yp, 8)
		fb.If(fb.CmpNeImm(yp, 0), func() {
			fb.Store(yp, rbParent, x, 8)
		}, nil)
		// y.parent = x.parent
		p := fb.Load(x, rbParent, 8)
		fb.Store(y, rbParent, p, 8)
		fb.If(fb.CmpEqImm(p, 0), func() {
			fb.Store(rootAddr, 0, y, 8)
		}, func() {
			isPrim := fb.CmpEq(fb.Load(p, primary, 8), x)
			fb.If(isPrim, func() {
				fb.Store(p, primary, y, 8)
			}, func() {
				fb.Store(p, opposite, y, 8)
			})
		})
		// y.primary = x; x.parent = y
		fb.Store(y, primary, x, 8)
		fb.Store(x, rbParent, y, 8)
		fb.RetImm(0)
		return fb.Seal()
	}
	rotl := rot(r.prefix+"rb_rotl", rbLeft, rbRight)
	rotr := rot(r.prefix+"rb_rotr", rbRight, rbLeft)

	{
		fb := mod.NewFunc(r.prefix+"rb_lookup", 3)
		_, hi, lo := fb.Param(0), fb.Param(1), fb.Param(2)
		node := fb.Var(fb.Load(fb.GlobalAddr(r.root), 0, 8))
		fb.While(func() ir.Reg { return fb.CmpNeImm(node.R(), 0) }, func() {
			nhi := fb.Load(node.R(), rbHi, 8)
			nlo := fb.Load(node.R(), rbLo, 8)
			emitKeyCompare(fb, hi, lo, nhi, nlo,
				func() { node.Set(fb.Load(node.R(), rbLeft, 8)) },
				func() { node.Set(fb.Load(node.R(), rbRight, 8)) },
				func() { fb.Ret(fb.Load(node.R(), rbVal, 8)) })
		})
		fb.RetImm(0)
		r.lookup = fb.Seal()
	}
	{
		fb := mod.NewFunc(r.prefix+"rb_insert", 4)
		_, hi, lo, val := fb.Param(0), fb.Param(1), fb.Param(2), fb.Param(3)
		rootAddr := fb.GlobalAddr(r.root)
		// Standard BST descent.
		node := fb.Var(fb.Load(rootAddr, 0, 8))
		parent := fb.VarImm(0)
		side := fb.VarImm(rbLeft)
		fb.While(func() ir.Reg { return fb.CmpNeImm(node.R(), 0) }, func() {
			nhi := fb.Load(node.R(), rbHi, 8)
			nlo := fb.Load(node.R(), rbLo, 8)
			parent.Set(node.R())
			emitKeyCompare(fb, hi, lo, nhi, nlo,
				func() {
					side.SetImm(rbLeft)
					node.Set(fb.Load(node.R(), rbLeft, 8))
				},
				func() {
					side.SetImm(rbRight)
					node.Set(fb.Load(node.R(), rbRight, 8))
				},
				func() {
					fb.Store(node.R(), rbVal, val, 8)
					fb.RetImm(0)
				})
		})
		z := fb.AllocImm(rbSize)
		fb.Store(z, rbHi, hi, 8)
		fb.Store(z, rbLo, lo, 8)
		fb.Store(z, rbVal, val, 8)
		fb.Store(z, rbColor, fb.Const(1), 8) // red
		fb.Store(z, rbParent, parent.R(), 8)
		fb.If(fb.CmpEqImm(parent.R(), 0), func() {
			fb.Store(rootAddr, 0, z, 8)
		}, func() {
			fb.Store(fb.Add(parent.R(), side.R()), 0, z, 8)
		})

		// Fixup.
		cur := fb.Var(z)
		fb.While(func() ir.Reg {
			p := fb.Load(cur.R(), rbParent, 8)
			pRed := fb.VarImm(0)
			fb.If(fb.CmpNeImm(p, 0), func() {
				pRed.Set(fb.Load(p, rbColor, 8))
			}, nil)
			return pRed.R()
		}, func() {
			p := fb.Load(cur.R(), rbParent, 8)
			g := fb.Load(p, rbParent, 8)
			fb.If(fb.CmpEqImm(g, 0), func() { fb.Break() }, nil)
			gLeft := fb.Load(g, rbLeft, 8)
			onLeft := fb.CmpEq(p, gLeft)
			fb.If(onLeft, func() {
				uncle := fb.Load(g, rbRight, 8)
				uRed := fb.VarImm(0)
				fb.If(fb.CmpNeImm(uncle, 0), func() {
					uRed.Set(fb.Load(uncle, rbColor, 8))
				}, nil)
				fb.If(uRed.R(), func() {
					fb.Store(p, rbColor, fb.Const(0), 8)
					fb.Store(uncle, rbColor, fb.Const(0), 8)
					fb.Store(g, rbColor, fb.Const(1), 8)
					cur.Set(g)
				}, func() {
					fb.If(fb.CmpEq(cur.R(), fb.Load(p, rbRight, 8)), func() {
						cur.Set(p)
						_ = fb.Call(rotl, cur.R())
					}, nil)
					p2 := fb.Load(cur.R(), rbParent, 8)
					g2 := fb.Load(p2, rbParent, 8)
					fb.Store(p2, rbColor, fb.Const(0), 8)
					fb.Store(g2, rbColor, fb.Const(1), 8)
					_ = fb.Call(rotr, g2)
				})
			}, func() {
				uncle := fb.Load(g, rbLeft, 8)
				uRed := fb.VarImm(0)
				fb.If(fb.CmpNeImm(uncle, 0), func() {
					uRed.Set(fb.Load(uncle, rbColor, 8))
				}, nil)
				fb.If(uRed.R(), func() {
					fb.Store(p, rbColor, fb.Const(0), 8)
					fb.Store(uncle, rbColor, fb.Const(0), 8)
					fb.Store(g, rbColor, fb.Const(1), 8)
					cur.Set(g)
				}, func() {
					fb.If(fb.CmpEq(cur.R(), fb.Load(p, rbLeft, 8)), func() {
						cur.Set(p)
						_ = fb.Call(rotr, cur.R())
					}, nil)
					p2 := fb.Load(cur.R(), rbParent, 8)
					g2 := fb.Load(p2, rbParent, 8)
					fb.Store(p2, rbColor, fb.Const(0), 8)
					fb.Store(g2, rbColor, fb.Const(1), 8)
					_ = fb.Call(rotl, g2)
				})
			})
		})
		rootNode := fb.Load(rootAddr, 0, 8)
		fb.Store(rootNode, rbColor, fb.Const(0), 8) // root is black
		fb.RetImm(0)
		r.insert = fb.Seal()
	}
}

func (r *rbTable) lookupFn() *ir.Func { return r.lookup }
func (r *rbTable) insertFn() *ir.Func { return r.insert }
func (r *rbTable) regions() []Region  { return nil }
func (r *rbTable) hashes() []HashUse  { return nil }

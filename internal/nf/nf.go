// Package nf implements the network-function library the paper evaluates
// (§5.1): a NOP baseline, three IP longest-prefix-match NFs (Patricia
// trie, one-stage direct lookup, DPDK-style two-stage direct lookup), and
// a source NAT plus a stateful L4 load balancer, each over four
// associative-array implementations (chaining hash table, open-addressing
// hash ring, unbalanced binary tree, red-black tree) — 11 NFs plus NOP.
//
// Every NF is authored once, in IR, and consumed by both the testbed
// interpreter and CASTAN's symbolic execution. Control-plane setup (FIB
// population, VIP/backend configuration) happens Go-side by writing into
// the machine's memory, exactly like a control plane programming a data
// plane; the per-packet data path, including flow-state insertion, is IR.
package nf

import (
	"fmt"

	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/nfhash"
	"castan/internal/packet"
)

// Return codes of nf_process.
const (
	RetDrop = 0
	RetOut  = 1 // forwarded toward the external side
	RetIn   = 2 // forwarded toward the internal side
)

// SymbolicPacketLen is how many packet bytes CASTAN treats as symbolic:
// Ethernet + IPv4 + L4 ports and UDP trailer (offsets 0..41).
const SymbolicPacketLen = 42

// Region is an address range of interest (e.g. a lookup table) used to
// build contention-set discovery pools.
type Region struct {
	Name string
	Addr uint64
	Size uint64
}

// HashUse describes one havocable hash site of an NF, with the tailored
// key space CASTAN should build a rainbow table over.
type HashUse struct {
	HashID int
	Bits   int
	Fn     func([]byte) uint64
	Space  nfhash.KeySpace
}

// Instance is a fully built NF: module plus a machine whose memory holds
// the populated tables.
type Instance struct {
	Name string
	Mod  *ir.Module
	// Machine is the set-up interpreter machine (tables populated). The
	// testbed runs packets on it; CASTAN snapshots its memory as the
	// symbolic base.
	Machine *interp.Machine
	// AttackRegions are the memory regions worth contending on.
	AttackRegions []Region
	// Hashes lists havocable hash sites (empty for hash-free NFs).
	Hashes []HashUse
	// Manual generates the hand-crafted adversarial workload (§5's
	// "Manual"), or nil when the paper crafted none for this NF.
	Manual func(n int) [][]byte
}

// Builder constructs a fresh Instance.
type Builder func() (*Instance, error)

// Catalog maps NF names to builders, in the paper's order.
var Catalog = map[string]Builder{
	"nop":        NewNOP,
	"lpm-trie":   NewLPMTrie,
	"lpm-dl1":    NewLPMDirect1,
	"lpm-dl2":    NewLPMDirect2,
	"nat-chain":  func() (*Instance, error) { return newFlowNF("nat", "chain") },
	"nat-ring":   func() (*Instance, error) { return newFlowNF("nat", "ring") },
	"nat-ubtree": func() (*Instance, error) { return newFlowNF("nat", "ubtree") },
	"nat-rbtree": func() (*Instance, error) { return newFlowNF("nat", "rbtree") },
	"lb-chain":   func() (*Instance, error) { return newFlowNF("lb", "chain") },
	"lb-ring":    func() (*Instance, error) { return newFlowNF("lb", "ring") },
	"lb-ubtree":  func() (*Instance, error) { return newFlowNF("lb", "ubtree") },
	"lb-rbtree":  func() (*Instance, error) { return newFlowNF("lb", "rbtree") },
}

// Names lists the catalog in the paper's presentation order.
var Names = []string{
	"nop",
	"lpm-dl1", "lpm-dl2", "lpm-trie",
	"lb-ubtree", "nat-ubtree", "lb-rbtree", "nat-rbtree",
	"nat-chain", "lb-chain", "nat-ring", "lb-ring",
}

// New builds the named NF.
func New(name string) (*Instance, error) {
	b, ok := Catalog[name]
	if !ok {
		return nil, fmt.Errorf("nf: unknown NF %q", name)
	}
	return b()
}

// Process runs one frame through the instance's machine, returning the
// NF's action code.
func (i *Instance) Process(frame []byte) (uint64, error) {
	i.Machine.Mem.WriteBytes(ir.PacketBase, frame)
	return i.Machine.Call("nf_process", ir.PacketBase, uint64(len(frame)))
}

// finish validates and wraps a built module+machine.
func finish(name string, mod *ir.Module, setup func(m *interp.Machine) error) (*interp.Machine, error) {
	if err := mod.Validate(); err != nil {
		return nil, fmt.Errorf("nf %s: %w", name, err)
	}
	mach := interp.NewMachine(mod)
	if setup != nil {
		if err := setup(mach); err != nil {
			return nil, fmt.Errorf("nf %s setup: %w", name, err)
		}
	}
	return mach, nil
}

// NewNOP builds the baseline NF: parse nothing, forward everything. Its
// cost is the floor every latency measurement is compared against.
func NewNOP() (*Instance, error) {
	mod := ir.NewModule("nop")
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	// Touch the Ethernet header (the NIC/driver does at least this much)
	// and forward.
	et := fb.Load(pkt, packet.OffEtherType, 2)
	_ = et
	fb.RetImm(RetOut)
	fb.Seal()
	mach, err := finish("nop", mod, nil)
	if err != nil {
		return nil, err
	}
	return &Instance{Name: "nop", Mod: mod, Machine: mach}, nil
}

// emitIPv4Guard emits the common "is this an IPv4 packet" check; on
// failure the function returns RetDrop. Returns the register holding the
// packet base for convenience.
func emitIPv4Guard(fb *ir.FuncBuilder, pkt ir.Reg) {
	et := fb.Load(pkt, packet.OffEtherType, 2)
	fb.If(fb.CmpNeImm(et, uint64(packet.EtherTypeIPv4)), func() {
		fb.RetImm(RetDrop)
	}, nil)
}

// emitL4Guard drops anything that is not TCP or UDP, returning the proto
// register.
func emitL4Guard(fb *ir.FuncBuilder, pkt ir.Reg) ir.Reg {
	proto := fb.Load(pkt, packet.OffIPProto, 1)
	isTCP := fb.CmpEqImm(proto, uint64(packet.ProtoTCP))
	isUDP := fb.CmpEqImm(proto, uint64(packet.ProtoUDP))
	fb.If(fb.Or(isTCP, isUDP), nil, func() {
		fb.RetImm(RetDrop)
	})
	return proto
}

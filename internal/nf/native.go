package nf

import (
	"castan/internal/nfhash"
	"castan/internal/packet"
)

// This file holds native Go reference implementations of the NF
// semantics. They share nothing with the IR NFs except the configuration
// constants, which makes them useful as differential-test oracles: for any
// packet sequence, the IR NF executed by the interpreter must produce the
// same actions and header rewrites as these.

// NativeLPM is the reference LPM (any data structure; semantics only).
type NativeLPM struct {
	routes []Route
	// maxLen limits the supported prefix length (24 for the direct-lookup
	// variants, 32 for the trie).
	maxLen int
}

// NewNativeLPM builds the reference LPM.
func NewNativeLPM(with32 bool) *NativeLPM {
	maxLen := 24
	if with32 {
		maxLen = 32
	}
	return &NativeLPM{routes: DefaultFIB(with32), maxLen: maxLen}
}

// Process returns the port for the frame (0 = no route / drop).
func (l *NativeLPM) Process(frame []byte) uint64 {
	p, err := packet.Parse(frame)
	if err != nil {
		return RetDrop
	}
	return uint64(LookupFIB(l.routes, p.IP.Dst))
}

// NativeNAT is the reference source NAT.
type NativeNAT struct {
	fwd      map[packet.FiveTuple]*natFlow
	rev      map[packet.FiveTuple]*natFlow
	nextPort uint64
}

type natFlow struct {
	extPort  uint16
	origIP   uint32
	origPort uint16
}

// NewNativeNAT builds the reference NAT.
func NewNativeNAT() *NativeNAT {
	return &NativeNAT{
		fwd:      map[packet.FiveTuple]*natFlow{},
		rev:      map[packet.FiveTuple]*natFlow{},
		nextPort: NATFirstPort,
	}
}

// Process applies NAT semantics in place on the frame and returns the
// action code.
func (n *NativeNAT) Process(frame []byte) uint64 {
	p, err := packet.Parse(frame)
	if err != nil {
		return RetDrop
	}
	t := p.Tuple()
	if t.SrcIP&NATInternalMask == NATInternalNet&NATInternalMask {
		f := n.fwd[t]
		if f == nil {
			f = &natFlow{
				extPort:  uint16(n.nextPort),
				origIP:   t.SrcIP,
				origPort: t.SrcPort,
			}
			n.nextPort++
			n.fwd[t] = f
			rev := packet.FiveTuple{
				SrcIP: t.DstIP, DstIP: NATExternalIP,
				SrcPort: t.DstPort, DstPort: f.extPort, Proto: t.Proto,
			}
			n.rev[rev] = f
		}
		writeU32(frame, packet.OffIPSrc, NATExternalIP)
		writeU16(frame, packet.OffL4SrcPort, f.extPort)
		return RetOut
	}
	if t.DstIP != NATExternalIP {
		return RetDrop
	}
	f := n.rev[t]
	if f == nil {
		return RetDrop
	}
	writeU32(frame, packet.OffIPDst, f.origIP)
	writeU16(frame, packet.OffL4DstPort, f.origPort)
	return RetIn
}

// NativeLB is the reference load balancer.
type NativeLB struct {
	flows map[packet.FiveTuple]uint32
	rr    uint64
}

// NewNativeLB builds the reference LB.
func NewNativeLB() *NativeLB {
	return &NativeLB{flows: map[packet.FiveTuple]uint32{}}
}

// Process applies LB semantics in place and returns the action code.
func (l *NativeLB) Process(frame []byte) uint64 {
	p, err := packet.Parse(frame)
	if err != nil {
		return RetDrop
	}
	t := p.Tuple()
	if t.SrcIP&0xffff0000 == LBBackendBase&0xffff0000 {
		writeU32(frame, packet.OffIPSrc, LBVIP)
		return RetIn
	}
	if t.DstIP != LBVIP {
		return RetDrop
	}
	b, ok := l.flows[t]
	if !ok {
		b = LBBackendBase + uint32(l.rr%LBBackends)
		l.rr++
		l.flows[t] = b
	}
	writeU32(frame, packet.OffIPDst, b)
	return RetOut
}

func writeU32(b []byte, off int, v uint32) {
	b[off] = byte(v >> 24)
	b[off+1] = byte(v >> 16)
	b[off+2] = byte(v >> 8)
	b[off+3] = byte(v)
}

func writeU16(b []byte, off int, v uint16) {
	b[off] = byte(v >> 8)
	b[off+1] = byte(v)
}

// ChainBucketOf returns the bucket index the chaining table uses for a
// tuple — exposed so tests and workload crafting can reason about
// collisions.
func ChainBucketOf(t packet.FiveTuple) uint64 {
	k := t.Bytes()
	return nfhash.TableHash(k[:]) & (ChainBuckets - 1)
}

// RingSlotOf returns the ring's initial probe slot for a tuple.
func RingSlotOf(t packet.FiveTuple) uint64 {
	k := t.Bytes()
	return nfhash.RingHash(k[:]) & (RingEntries - 1)
}

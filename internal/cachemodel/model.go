package cachemodel

import (
	"sort"
)

// Tracker is the symbex-side cache model state (§3.3): it remembers which
// concrete lines have been placed on the current execution path and in
// which contention set each lies, so that the next symbolic pointer can be
// concretized into the most-contended compatible set. One Tracker exists
// per symbolic-execution state; Clone supports state forking.
type Tracker struct {
	model *Model

	// perSet[i] holds the distinct lines placed into contention set i.
	perSet map[int][]uint64
	placed map[uint64]bool // line addresses already accessed on this path
	order  []uint64        // placement order of distinct lines
}

// NewTracker creates an empty tracker over the model.
func (m *Model) NewTracker() *Tracker {
	return &Tracker{
		model:  m,
		perSet: map[int][]uint64{},
		placed: map[uint64]bool{},
	}
}

// Clone deep-copies the tracker for a forked state.
func (t *Tracker) Clone() *Tracker {
	n := &Tracker{
		model:  t.model,
		perSet: make(map[int][]uint64, len(t.perSet)),
		placed: make(map[uint64]bool, len(t.placed)),
		order:  append([]uint64(nil), t.order...),
	}
	for k, v := range t.perSet {
		n.perSet[k] = append([]uint64(nil), v...)
	}
	for k, v := range t.placed {
		n.placed[k] = v
	}
	return n
}

// Model returns the underlying discovered model.
func (t *Tracker) Model() *Model { return t.model }

// line truncates an address to its cache line.
func (t *Tracker) line(addr uint64) uint64 {
	return addr &^ (uint64(t.model.LineBytes) - 1)
}

// Candidates returns, most-contended contention set first, the member
// addresses that have not yet been placed on this path. The symbex engine
// walks this list and picks the first address compatible with the path
// constraint. Sets whose placement already reached α+1 keep priority —
// each additional line deepens the thrash.
func (t *Tracker) Candidates() []uint64 {
	type scored struct {
		set   int
		count int
	}
	sets := make([]scored, 0, len(t.model.Sets))
	for i := range t.model.Sets {
		sets = append(sets, scored{set: i, count: len(t.perSet[i])})
	}
	sort.Slice(sets, func(a, b int) bool {
		if sets[a].count != sets[b].count {
			return sets[a].count > sets[b].count
		}
		return sets[a].set < sets[b].set
	})
	var out []uint64
	for _, s := range sets {
		for _, a := range t.model.Sets[s.set].Addrs {
			if !t.placed[a] {
				out = append(out, a)
			}
		}
	}
	return out
}

// RecordAccess informs the tracker that the path accessed addr, updating
// contention bookkeeping, and returns the expected cycles class of the
// access: true if it is expected to go to DRAM (cold line, or line in a
// set thrashing beyond associativity), false if it is expected to hit.
func (t *Tracker) RecordAccess(addr uint64) bool {
	ln := t.line(addr)
	first := !t.placed[ln]
	t.placed[ln] = true
	if first {
		t.order = append(t.order, ln)
	}
	set := t.model.SetOf(ln)
	if set >= 0 && first {
		t.perSet[set] = append(t.perSet[set], ln)
	}
	if set >= 0 && len(t.perSet[set]) > t.model.Assoc {
		return true // contention: the set thrashes on every access
	}
	return first
}

// HotLines returns the lines already accessed on this path, in placement
// order. The symbex engine retries these when contention candidates are
// incompatible: re-touching hot state (e.g. the same hash bucket) is the
// locally-optimal choice for algorithmic attacks like collision chains.
func (t *Tracker) HotLines() []uint64 {
	return append([]uint64(nil), t.order...)
}

// ContendedSets reports how many contention sets have been pushed past
// associativity on this path — the attack's progress metric.
func (t *Tracker) ContendedSets() int {
	n := 0
	for i := range t.model.Sets {
		if len(t.perSet[i]) > t.model.Assoc {
			n++
		}
	}
	return n
}

// PlacedLines returns the number of distinct lines recorded.
func (t *Tracker) PlacedLines() int { return len(t.placed) }

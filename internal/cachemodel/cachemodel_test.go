package cachemodel

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"castan/internal/memsim"
)

// pool returns n line-aligned addresses starting at base.
func pool(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*64
	}
	return out
}

func tinyConfig(p []uint64) DiscoverConfig {
	g := memsim.TinyGeometry()
	return DiscoverConfig{
		Pool:      p,
		Assoc:     g.L3Ways,
		LineBytes: g.LineBytes,
		LatL3:     g.LatL3,
		LatDRAM:   g.LatDRAM,
		Rounds:    2,
		MaxSets:   2,
		Seed:      1,
	}
}

func TestDiscoverTiny(t *testing.T) {
	g := memsim.TinyGeometry()
	h := memsim.New(g, 11)
	p := pool(0, 64) // 64 lines over 4 contention sets: ~16 per set
	m, err := Discover(h, tinyConfig(p))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(m.Sets) == 0 {
		t.Fatal("no sets")
	}
	for si, s := range m.Sets {
		if len(s.Addrs) < g.L3Ways+1 {
			t.Errorf("set %d has only %d members", si, len(s.Addrs))
		}
		// Ground truth: every member must map to the same hidden set.
		want := h.DebugContentionSet(s.Addrs[0])
		for _, a := range s.Addrs {
			if h.DebugContentionSet(a) != want {
				t.Errorf("set %d member %#x maps to %d, want %d",
					si, a, h.DebugContentionSet(a), want)
			}
		}
		// And the model's index must agree with itself.
		for _, a := range s.Addrs {
			if m.SetOf(a) != si {
				t.Errorf("SetOf(%#x) = %d, want %d", a, m.SetOf(a), si)
			}
		}
	}
	if m.SetOf(0xdead000) != -1 {
		t.Error("unknown address should map to -1")
	}
}

func TestDiscoverFindsDistinctSets(t *testing.T) {
	g := memsim.TinyGeometry()
	h := memsim.New(g, 23)
	p := pool(0, 96)
	cfg := tinyConfig(p)
	cfg.MaxSets = 3
	m, err := Discover(h, cfg)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(m.Sets) < 2 {
		t.Fatalf("found %d sets, want >= 2", len(m.Sets))
	}
	// Distinct discovered sets must be distinct hidden sets.
	seen := map[int]bool{}
	for _, s := range m.Sets {
		hidden := h.DebugContentionSet(s.Addrs[0])
		if seen[hidden] {
			t.Errorf("hidden set %d discovered twice", hidden)
		}
		seen[hidden] = true
	}
}

func TestDiscoverValidation(t *testing.T) {
	h := memsim.New(memsim.TinyGeometry(), 1)
	if _, err := Discover(h, DiscoverConfig{Assoc: 0, Pool: pool(0, 8)}); err == nil {
		t.Error("Assoc=0 accepted")
	}
	cfg := tinyConfig(nil)
	if _, err := Discover(h, cfg); err == nil {
		t.Error("empty pool accepted")
	}
	// A pool too small to exceed associativity anywhere finds nothing.
	cfg = tinyConfig(pool(0, 3))
	if _, err := Discover(h, cfg); err == nil {
		t.Error("tiny pool should find no sets")
	}
}

func TestDiscoverDefaultGeometrySingleSet(t *testing.T) {
	if testing.Short() {
		t.Skip("full-geometry discovery is slow")
	}
	g := memsim.DefaultGeometry()
	h := memsim.New(g, 99)
	// 128 sets, α=16: a ~2600-line pool averages ~20 per set.
	p := pool(0, 2600)
	cfg := DiscoverConfig{
		Pool:      p,
		Assoc:     g.L3Ways,
		LineBytes: g.LineBytes,
		LatL3:     g.LatL3,
		LatDRAM:   g.LatDRAM,
		Rounds:    2,
		MaxSets:   1,
		Seed:      7,
	}
	m, err := Discover(h, cfg)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	s := m.Sets[0]
	if len(s.Addrs) < g.L3Ways+1 {
		t.Fatalf("set has %d members, want > α=%d", len(s.Addrs), g.L3Ways)
	}
	want := h.DebugContentionSet(s.Addrs[0])
	for _, a := range s.Addrs {
		if h.DebugContentionSet(a) != want {
			t.Errorf("member %#x in hidden set %d, want %d", a, h.DebugContentionSet(a), want)
		}
	}
}

func TestTrackerPlacementAndContention(t *testing.T) {
	m := &Model{
		Assoc:     2,
		LineBytes: 64,
		Sets: []ContentionSet{
			{Addrs: []uint64{0x0, 0x40, 0x80, 0xc0}},
			{Addrs: []uint64{0x100, 0x140, 0x180}},
		},
	}
	m.buildIndex()
	tr := m.NewTracker()

	// Candidates initially list all members; ties broken by set index.
	c := tr.Candidates()
	if len(c) != 7 {
		t.Fatalf("candidates = %d", len(c))
	}
	if c[0] != 0x0 {
		t.Errorf("first candidate = %#x", c[0])
	}

	// Record accesses into set 0 until contention.
	if tr.RecordAccess(0x0) != true {
		t.Error("cold access should be DRAM")
	}
	if tr.RecordAccess(0x0) != false {
		t.Error("repeat access should hit")
	}
	tr.RecordAccess(0x40)
	if tr.ContendedSets() != 0 {
		t.Error("not yet contended")
	}
	if !tr.RecordAccess(0x80) { // third line in 2-way set: thrash
		t.Error("third line should be DRAM")
	}
	if tr.ContendedSets() != 1 {
		t.Errorf("ContendedSets = %d", tr.ContendedSets())
	}
	// Once contended, even previously-placed lines miss.
	if !tr.RecordAccess(0x0) {
		t.Error("access within thrashing set should be DRAM")
	}

	// The contended set keeps priority in Candidates (deepen the thrash).
	c = tr.Candidates()
	if c[0] != 0xc0 {
		t.Errorf("next candidate = %#x, want remaining member of hot set", c[0])
	}

	// Lines in unknown space: cold miss once, then hit.
	if !tr.RecordAccess(0x9000) {
		t.Error("unknown cold line should be DRAM")
	}
	if tr.RecordAccess(0x9008) { // same line (0x9000..0x9040)
		t.Error("unknown warm line should hit")
	}
	if tr.PlacedLines() != 4 {
		t.Errorf("PlacedLines = %d", tr.PlacedLines())
	}
}

func TestTrackerClone(t *testing.T) {
	m := &Model{Assoc: 1, LineBytes: 64, Sets: []ContentionSet{{Addrs: []uint64{0, 64}}}}
	m.buildIndex()
	tr := m.NewTracker()
	tr.RecordAccess(0)
	cl := tr.Clone()
	cl.RecordAccess(64)
	if cl.ContendedSets() != 1 {
		t.Error("clone should see contention")
	}
	if tr.ContendedSets() != 0 {
		t.Error("original polluted by clone")
	}
	if cl.Model() != m {
		t.Error("model pointer lost")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := &Model{
		Assoc:     4,
		LineBytes: 64,
		Sets: []ContentionSet{
			{Addrs: []uint64{0x1000, 0x2000, 0x3000}},
			{Addrs: []uint64{0x4040, 0x5040}},
		},
	}
	m.buildIndex()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Assoc != 4 || got.LineBytes != 64 || len(got.Sets) != 2 {
		t.Fatalf("loaded shape: %+v", got)
	}
	if got.SetOf(0x2000) != 0 || got.SetOf(0x5040) != 1 || got.SetOf(0x9999) != -1 {
		t.Error("index not rebuilt after load")
	}
	// File round trip.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestModelLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"assoc":0,"line_bytes":64,"sets":[]}`))); err == nil {
		t.Error("zero assoc accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"assoc":4,"line_bytes":64,"sets":[[]]}`))); err == nil {
		t.Error("empty set accepted")
	}
}

func TestModelLoadRejectsDuplicateMembership(t *testing.T) {
	dupAcross := `{"assoc":4,"line_bytes":64,"sets":[[4096,8192],[8192,12288]]}`
	if _, err := Load(bytes.NewReader([]byte(dupAcross))); !errors.Is(err, ErrInconsistent) {
		t.Errorf("address in two sets: err = %v, want ErrInconsistent", err)
	}
	dupWithin := `{"assoc":4,"line_bytes":64,"sets":[[4096,4096]]}`
	if _, err := Load(bytes.NewReader([]byte(dupWithin))); !errors.Is(err, ErrInconsistent) {
		t.Errorf("address twice in one set: err = %v, want ErrInconsistent", err)
	}
}

// scalarProber hides memsim's ProbeBatch so discovery exercises its
// per-probe fallback path, and counts line reads on the side.
type scalarProber struct {
	h     *memsim.Hierarchy
	reads *uint64
}

func (p *scalarProber) ProbeTime(addrs []uint64, rounds int) uint64 {
	*p.reads += uint64(len(addrs) * (rounds + 1))
	return p.h.ProbeTime(addrs, rounds)
}

func (p *scalarProber) Reboot(id uint64) { p.h.Reboot(id) }

// TestDiscoverScalarProberFallback asserts a prober without ProbeBatch
// discovers exactly what the batch fast path does.
func TestDiscoverScalarProberFallback(t *testing.T) {
	g := memsim.TinyGeometry()
	batch, err := Discover(memsim.New(g, 11), tinyConfig(pool(0, 64)))
	if err != nil {
		t.Fatal(err)
	}
	var reads uint64
	scalar, err := Discover(&scalarProber{h: memsim.New(g, 11), reads: &reads}, tinyConfig(pool(0, 64)))
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar.Sets) != len(batch.Sets) {
		t.Fatalf("scalar found %d sets, batch %d", len(scalar.Sets), len(batch.Sets))
	}
	for si := range batch.Sets {
		if got, want := scalar.Sets[si].Addrs, batch.Sets[si].Addrs; !equalAddrs(got, want) {
			t.Errorf("set %d: scalar %v != batch %v", si, got, want)
		}
	}
	if reads == 0 {
		t.Fatal("scalar prober saw no probes")
	}
}

// TestDiscoverDisjointPrune asserts that a (ground-truth) disjointness
// oracle leaves the discovered model unchanged while skipping probe
// work, the contract castan relies on when it binds
// cachecost.ProvablyDisjoint over a prior model.
func TestDiscoverDisjointPrune(t *testing.T) {
	g := memsim.TinyGeometry()
	run := func(disjoint func(a, b uint64) bool) (*Model, uint64) {
		h := memsim.New(g, 11)
		var reads uint64
		cfg := tinyConfig(pool(0, 64))
		cfg.Disjoint = disjoint
		m, err := Discover(&scalarProber{h: h, reads: &reads}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m, reads
	}
	base, baseReads := run(nil)
	oracle := memsim.New(g, 11) // same seed: same hidden mapping
	pruned, prunedReads := run(func(a, b uint64) bool {
		return oracle.DebugContentionSet(a) != oracle.DebugContentionSet(b)
	})
	if len(pruned.Sets) != len(base.Sets) {
		t.Fatalf("pruned found %d sets, base %d", len(pruned.Sets), len(base.Sets))
	}
	for si := range base.Sets {
		if got, want := pruned.Sets[si].Addrs, base.Sets[si].Addrs; !equalAddrs(got, want) {
			t.Errorf("set %d: pruned %v != base %v", si, got, want)
		}
	}
	if prunedReads >= baseReads {
		t.Errorf("prune saved nothing: %d reads with oracle, %d without", prunedReads, baseReads)
	}
}

func equalAddrs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiscoverWorkerCountInvariant asserts the determinism contract of
// parallel discovery: with forked probers, any worker count yields the
// same contention sets (same count, same sorted members) as a fully
// sequential run without forks.
func TestDiscoverWorkerCountInvariant(t *testing.T) {
	g := memsim.TinyGeometry()
	run := func(workers int) *Model {
		h := memsim.New(g, 11)
		cfg := tinyConfig(pool(0, 64))
		cfg.Workers = workers
		cfg.Fork = func() Prober { return h.Fork() }
		m, err := Discover(h, cfg)
		if err != nil {
			t.Fatalf("Discover(workers=%d): %v", workers, err)
		}
		return m
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		m := run(w)
		if len(m.Sets) != len(ref.Sets) {
			t.Fatalf("w=%d: %d sets, want %d", w, len(m.Sets), len(ref.Sets))
		}
		for si := range ref.Sets {
			got, want := m.Sets[si].Addrs, ref.Sets[si].Addrs
			if len(got) != len(want) {
				t.Fatalf("w=%d set %d: %d members, want %d", w, si, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d set %d member %d: %#x, want %#x", w, si, i, got[i], want[i])
				}
			}
		}
	}
}

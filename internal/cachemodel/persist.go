package cachemodel

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Discovery is expensive (minutes of simulated probing in the paper's
// setting), so models are persisted and reused across analysis runs —
// the paper ships its reverse-engineered Xeon model the same way. The
// format is plain JSON.

// modelJSON is the serialized form.
type modelJSON struct {
	Assoc     int        `json:"assoc"`
	LineBytes int        `json:"line_bytes"`
	Sets      [][]uint64 `json:"sets"`
}

// Save writes the model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	mj := modelJSON{Assoc: m.Assoc, LineBytes: m.LineBytes}
	for _, s := range m.Sets {
		mj.Sets = append(mj.Sets, s.Addrs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(mj)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a model from JSON.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("cachemodel: decode: %w", err)
	}
	if mj.Assoc <= 0 || mj.LineBytes <= 0 {
		return nil, fmt.Errorf("cachemodel: invalid model (assoc %d, line %d)", mj.Assoc, mj.LineBytes)
	}
	m := &Model{Assoc: mj.Assoc, LineBytes: mj.LineBytes}
	total := 0
	for i, addrs := range mj.Sets {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("cachemodel: empty set %d", i)
		}
		total += len(addrs)
		m.Sets = append(m.Sets, ContentionSet{Addrs: addrs})
	}
	m.Reindex()
	// A valid model partitions its addresses: an address indexed by fewer
	// entries than the sets claim appeared in two sets (or twice in one),
	// which no discovery run produces — the decoded shape cannot be
	// trusted just because it parsed (models now travel through the
	// on-disk store, where a corrupt payload must read as a miss).
	if len(m.setOf) != total {
		return nil, fmt.Errorf("%w: %d addresses indexed across %d set entries (duplicate membership)", ErrInconsistent, len(m.setOf), total)
	}
	return m, nil
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Package cachemodel reverse-engineers and exploits the DUT's L3 cache
// behaviour, implementing §3.2 and §3.3 of the paper.
//
// Discovery treats the memory hierarchy as a black box that can only be
// probed by timing pointer-chase loops: it grows an address set until the
// probe time jumps by more than a contention threshold δ (the grown set
// then holds α+1 addresses of some contention set C), shrinks it to
// exactly those α+1 addresses, sweeps the remaining pool for further
// members of C, and filters the result for consistency across simulated
// reboots. The resulting Model is what CASTAN's symbolic pointer
// concretization uses to pick addresses that maximize cache contention.
package cachemodel

import (
	"errors"
	"fmt"
	"sort"

	"castan/internal/budget"
	"castan/internal/parallel"
	"castan/internal/stats"
)

// Sentinel outcomes of Discover, distinguishable with errors.Is so the
// pipeline can tell a benign empty result from a suspicious one from a
// budget cut:
var (
	// ErrNoSets means the pool produced no contention sets at all — the
	// normal outcome for NFs whose tables fit in cache.
	ErrNoSets = errors.New("cachemodel: no contention sets found")
	// ErrInconsistent means sets were found but none survived the
	// cross-reboot consistency filter — a suspicious outcome that in the
	// noise-free simulator points at perturbed probe timings.
	ErrInconsistent = errors.New("cachemodel: all sets rejected by consistency filter")
	// ErrBudget means the discovery budget ran out. A partial
	// (unfiltered) model accompanies it when any set was found first.
	ErrBudget = errors.New("cachemodel: discovery budget exhausted")
)

// Prober is the timing side-channel the discovery tool is allowed to use.
// *memsim.Hierarchy satisfies it.
type Prober interface {
	// ProbeTime returns the cycles needed to sequentially read all addrs,
	// rounds times, after a warm-up pass.
	ProbeTime(addrs []uint64, rounds int) uint64
	// Reboot re-randomizes the virtual→physical mapping.
	Reboot(bootID uint64)
}

// BatchProber is the optional fast path a Prober may offer: time many
// independent probe sets in one call (each flushed separately, exactly
// as consecutive ProbeTime calls would measure them). *memsim.Hierarchy
// implements it; discovery falls back to looping ProbeTime otherwise.
type BatchProber interface {
	ProbeBatch(sets [][]uint64, rounds int) []uint64
}

// ContentionSet is a group of line addresses that compete for the same L3
// ways: bringing in more than Assoc of them evicts.
type ContentionSet struct {
	Addrs []uint64
}

// Model is the discovered cache model handed to CASTAN.
type Model struct {
	Assoc     int
	LineBytes int
	Sets      []ContentionSet

	setOf map[uint64]int // line address -> index into Sets
}

// SetOf returns the contention-set index of a line address, or -1 if the
// address was not covered by discovery.
func (m *Model) SetOf(lineAddr uint64) int {
	if idx, ok := m.setOf[lineAddr]; ok {
		return idx
	}
	return -1
}

// Reindex rebuilds the address index after the Sets have been assembled
// or edited by hand (Discover and the persistence loader call it
// themselves).
func (m *Model) Reindex() { m.buildIndex() }

// buildIndex (re)builds the address index.
func (m *Model) buildIndex() {
	m.setOf = make(map[uint64]int)
	for i, s := range m.Sets {
		for _, a := range s.Addrs {
			m.setOf[a] = i
		}
	}
}

// DiscoverConfig tunes discovery.
type DiscoverConfig struct {
	// Pool is the candidate line-aligned addresses (e.g. lines of the NF's
	// tables). Discovery mutates a copy.
	Pool []uint64
	// Assoc is the (publicly documented) L3 associativity α.
	Assoc int
	// LineBytes is the cache line size.
	LineBytes int
	// LatL3 and LatDRAM are the publicly documented latencies used to set
	// the contention threshold δ.
	LatL3, LatDRAM uint64
	// Rounds is the number of timed probe rounds after the warm-up pass
	// (default 1). Every detection threshold scales with Rounds, so any
	// value classifies identically in the noise-free simulator; one round
	// halves the probe bill, and the margins at Rounds=1 still dwarf the
	// ±127-tick jitter the fault-injection harness can add.
	Rounds int
	// MaxSets stops discovery after this many contention sets (0 = all
	// that can be found).
	MaxSets int
	// Reboots is the number of simulated reboots used by the consistency
	// filter (default 3; 0 disables filtering).
	Reboots int
	// Seed drives the shuffled growth order.
	Seed uint64
	// Workers bounds the fan-out of the candidate sweep and the
	// consistency filter (0 = GOMAXPROCS). Discovery output is identical
	// at every worker count.
	Workers int
	// Fork, when set, returns an independent prober sharing the hidden
	// state and current address mapping of p (e.g. memsim's
	// Hierarchy.Fork). Without it the sweep and filter run sequentially
	// regardless of Workers, since concurrent probes on one prober would
	// perturb each other.
	Fork func() Prober
	// Budget, when set, bounds discovery effort. Probe ticks are charged
	// by the prober itself (memsim.SetBudget); Discover checks for
	// exhaustion between findOne iterations — a deterministic
	// orchestration point — and stops there, returning whatever partial
	// model exists alongside ErrBudget.
	Budget *budget.Stage
	// Disjoint, when set, reports that two line addresses provably map to
	// different contention sets, so they cannot evict each other. It must
	// be conservative: false whenever the answer is unknown. The shrink
	// and sweep phases use it to skip probes for candidates a prior
	// (partial) model already separates from the set being grown —
	// callers typically bind cachecost.ProvablyDisjoint over such a model
	// (the function is injected because cachecost imports this package).
	Disjoint func(a, b uint64) bool
	// Progress, when set, is called after each findOne iteration with the
	// number of contention sets discovered so far and the pool addresses
	// still unclassified. It runs on Discover's goroutine between
	// iterations — the same deterministic orchestration point as the
	// budget check — so callers may publish telemetry from it without
	// breaking worker-count invariance.
	Progress func(setsFound, poolLeft int)
}

// Discover runs the §3.2 pipeline and returns the model.
func Discover(p Prober, cfg DiscoverConfig) (*Model, error) {
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cachemodel: Assoc must be positive")
	}
	if len(cfg.Pool) == 0 {
		return nil, fmt.Errorf("cachemodel: empty pool")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.Reboots == 0 {
		cfg.Reboots = 3
	}
	d := &discoverer{p: p, cfg: cfg, rng: stats.NewRNG(cfg.Seed ^ 0xca57a)}
	pool := append([]uint64(nil), cfg.Pool...)
	d.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// Pre-fault every candidate once, in pool order. Lazy first touches
	// would otherwise happen in probe order anyway — the grow and sweep
	// phases walk the pool front to back — so this does not change any
	// probe result; it guarantees that forked probers never allocate
	// mappings of their own, which is what makes sweep results
	// independent of how candidates are divided among workers.
	d.probe(pool)
	if w := parallel.Workers(cfg.Workers); w > 1 && cfg.Fork != nil {
		d.forks = make([]Prober, w)
		for i := range d.forks {
			d.forks[i] = cfg.Fork()
		}
	}

	model := &Model{Assoc: cfg.Assoc, LineBytes: cfg.LineBytes}
	var budgetReason string
	for cfg.MaxSets == 0 || len(model.Sets) < cfg.MaxSets {
		if reason, ok := cfg.Budget.Exhausted(); ok {
			budgetReason = reason
			break
		}
		set, rest, found := d.findOne(pool)
		if !found {
			break
		}
		model.Sets = append(model.Sets, ContentionSet{Addrs: set})
		pool = rest
		if cfg.Progress != nil {
			cfg.Progress(len(model.Sets), len(pool))
		}
	}
	if budgetReason != "" && len(model.Sets) == 0 {
		return nil, fmt.Errorf("%w (%s)", ErrBudget, budgetReason)
	}
	if len(model.Sets) == 0 {
		return nil, fmt.Errorf("%w (pool of %d)", ErrNoSets, len(cfg.Pool))
	}
	if budgetReason == "" {
		// The consistency filter costs Reboots probes per set, so a
		// budget-cut run skips it and hands back the unfiltered partial
		// model — the caller already knows (via ErrBudget) to treat it as
		// degraded.
		d.filterConsistent(model)
		if len(model.Sets) == 0 {
			return nil, ErrInconsistent
		}
	}
	for i := range model.Sets {
		sort.Slice(model.Sets[i].Addrs, func(a, b int) bool {
			return model.Sets[i].Addrs[a] < model.Sets[i].Addrs[b]
		})
	}
	model.buildIndex()
	if budgetReason != "" {
		return model, fmt.Errorf("%w (%s)", ErrBudget, budgetReason)
	}
	return model, nil
}

type discoverer struct {
	p     Prober
	cfg   DiscoverConfig
	rng   *stats.RNG
	forks []Prober // per-worker probers; nil = sequential probing only
}

func (d *discoverer) probe(s []uint64) uint64 {
	return d.probeOn(d.p, s)
}

func (d *discoverer) probeOn(p Prober, s []uint64) uint64 {
	if len(s) == 0 {
		return 0
	}
	return p.ProbeTime(s, d.cfg.Rounds)
}

// probeBatchOn times many independent probe sets on one prober, using
// the batch fast path when the prober offers it.
func (d *discoverer) probeBatchOn(p Prober, sets [][]uint64) []uint64 {
	if bp, ok := p.(BatchProber); ok {
		return bp.ProbeBatch(sets, d.cfg.Rounds)
	}
	out := make([]uint64, len(sets))
	for i, s := range sets {
		out[i] = d.probeOn(p, s)
	}
	return out
}

// probeMany shards a batch of independent probe sets across the forked
// probers (sequential on the root prober otherwise). Results land in
// input order, so the answer is identical at every worker count.
func (d *discoverer) probeMany(sets [][]uint64) []uint64 {
	if d.forks == nil || len(sets) < 2 {
		return d.probeBatchOn(d.p, sets)
	}
	out := make([]uint64, len(sets))
	parallel.Shards(len(d.forks), len(sets), func(shard, lo, hi int) {
		copy(out[lo:hi], d.probeBatchOn(d.forks[shard], sets[lo:hi]))
	})
	return out
}

// thresholds: growDelta detects "a chunk addition caused contention";
// memberDelta detects "removing this address removed contention";
// groupDelta detects "removing this whole group removed contention";
// batchDelta detects "adding this candidate batch added contention";
// sweepDelta detects "swapping this address kept contention".
func (d *discoverer) growDelta(chunk int) uint64 {
	signal := uint64(d.cfg.Rounds) * uint64(d.cfg.Assoc+1) * (d.cfg.LatDRAM - d.cfg.LatL3) / 2
	noise := uint64(d.cfg.Rounds) * uint64(chunk) * d.cfg.LatL3
	return signal + noise
}

// maxGrowChunk bounds the geometric chunk growth: the noise term of
// growDelta scales with the chunk while the contention signal does not,
// so beyond signal/(Rounds×LatL3) lines per chunk a real jump could
// drown in the chunk's own (over-estimated) hit cost.
func (d *discoverer) maxGrowChunk() int {
	signal := uint64(d.cfg.Assoc+1) * (d.cfg.LatDRAM - d.cfg.LatL3) / 2
	max := int(signal / d.cfg.LatL3)
	if max < 2 {
		max = 2
	}
	return max
}

func (d *discoverer) memberDelta() uint64 {
	return uint64(d.cfg.Rounds) * uint64(d.cfg.Assoc) * (d.cfg.LatDRAM - d.cfg.LatL3) / 2
}

// groupDelta is the collapse threshold for removing a whole group of n
// addresses at once: strays only take their own hit cost (≤ n×LatL3 per
// round) with them, while losing a member collapses the whole set's
// thrashing — the half-gap margin separates the two.
func (d *discoverer) groupDelta(n int) uint64 {
	return uint64(d.cfg.Rounds) * (uint64(n)*d.cfg.LatL3 + (d.cfg.LatDRAM-d.cfg.LatL3)/2)
}

// igniteDelta is the detection threshold for adding a batch of n
// candidates to a core of exactly α members: the core fits the set, so
// every core line is an L3 hit, unless the batch holds one more member —
// then all α+1 lines thrash to DRAM. Strays add at most their own hit
// cost (n×LatL3 per round); the ignition signal is half the full-set
// flip, far above it.
func (d *discoverer) igniteDelta(n int) uint64 {
	return uint64(d.cfg.Rounds) * (uint64(n)*d.cfg.LatL3 + uint64(d.cfg.Assoc+1)*(d.cfg.LatDRAM-d.cfg.LatL3)/2)
}

func (d *discoverer) sweepDelta() uint64 {
	return uint64(d.cfg.Rounds) * (d.cfg.LatDRAM + d.cfg.LatL3) / 2
}

// provablyNotIn reports that addr provably cannot share a contention set
// with any of the given known members, per the injected Disjoint oracle.
func (d *discoverer) provablyNotIn(members []uint64, addr uint64) bool {
	if d.cfg.Disjoint == nil {
		return false
	}
	for _, m := range members {
		if d.cfg.Disjoint(m, addr) {
			return true
		}
	}
	return false
}

// findOne runs steps (1)-(3) of §3.2 once: returns the α+1.. members of
// one contention set and the pool with those members removed.
func (d *discoverer) findOne(pool []uint64) (set []uint64, rest []uint64, found bool) {
	trigger := d.grow(pool)
	if trigger < 0 {
		return nil, pool, false
	}
	members := d.shrink(pool[:trigger+1], pool[trigger])
	if len(members) < d.cfg.Assoc+1 {
		// The jump was noise (should not happen in the simulator, but be
		// robust): drop the trigger address and let the caller continue.
		rest = append(append([]uint64(nil), pool[:trigger]...), pool[trigger+1:]...)
		return nil, rest, false
	}
	members = d.sweep(pool, members)

	inSet := map[uint64]bool{}
	for _, a := range members {
		inSet[a] = true
	}
	rest = make([]uint64, 0, len(pool)-len(members))
	for _, a := range pool {
		if !inSet[a] {
			rest = append(rest, a)
		}
	}
	return members, rest, true
}

// grow is step 1: extend a pool prefix until its probe time jumps by
// more than δ, then binary-search the triggering index. Chunks grow
// geometrically (probing a prefix costs its whole length, so constant
// chunks make the phase quadratic) but are capped at maxGrowChunk so the
// jump cannot hide inside the chunk-size noise term of growDelta.
func (d *discoverer) grow(pool []uint64) int {
	chunk := d.cfg.Assoc / 2
	if chunk < 2 {
		chunk = 2
	}
	maxChunk := d.maxGrowChunk()
	prev := uint64(0)
	for i := 0; i < len(pool); {
		end := i + chunk
		if end > len(pool) {
			end = len(pool)
		}
		cur := d.probe(pool[:end])
		if cur > prev && cur-prev > d.growDelta(end-i) {
			// Binary-search the smallest prefix length m in (i, end] whose
			// probe time jumps; the triggering address is pool[m-1].
			jumps := func(m int) bool {
				t := d.probe(pool[:m])
				return t > prev && t-prev > d.growDelta(m-i)
			}
			lo, hi := i, end // jumps(lo) false (empty delta), jumps(hi) true
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if jumps(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi - 1
		}
		prev = cur
		i = end
		if chunk < maxChunk {
			chunk *= 2
			if chunk > maxChunk {
				chunk = maxChunk
			}
		}
	}
	return -1
}

// shrink is step 2: reduce the triggering prefix to exactly the ≥ α+1
// members of C it contains. Instead of one probe per element (quadratic
// in the prefix), each pass partitions the set into α+2 groups, probes
// all "set minus group" variants as one batch, and removes every group
// whose absence kept the contention alive — those groups provably held
// no member, and with at least α+1 members spread over α+2 groups the
// pigeonhole principle promises progress in the common case. When no
// group is removable the partition is refined; as a last resort one
// pass of the original per-element scan polishes the remainder, so the
// result is never worse than the unbatched algorithm's.
func (d *discoverer) shrink(prefix []uint64, knownMember uint64) []uint64 {
	s := make([]uint64, 0, len(prefix))
	for _, a := range prefix {
		// A prior model may already prove a prefix line disjoint from the
		// triggering address (a certain member of C): drop it probe-free.
		if a != knownMember && d.provablyNotIn([]uint64{knownMember}, a) {
			continue
		}
		s = append(s, a)
	}
	groups := d.cfg.Assoc + 2
	for len(s) > d.cfg.Assoc+1 {
		k := groups
		if k > len(s) {
			k = len(s)
		}
		full := d.probe(s)
		// Group g is s[bound[g]:bound[g+1]]; probe variant g is s minus
		// group g.
		variants := make([][]uint64, k)
		for g := 0; g < k; g++ {
			lo, hi := g*len(s)/k, (g+1)*len(s)/k
			v := make([]uint64, 0, len(s)-(hi-lo))
			v = append(v, s[:lo]...)
			v = append(v, s[hi:]...)
			variants[g] = v
		}
		times := d.probeMany(variants)
		kept := make([]uint64, 0, len(s))
		removed := 0
		for g := 0; g < k; g++ {
			lo, hi := g*len(s)/k, (g+1)*len(s)/k
			collapsed := full > times[g] && full-times[g] > d.groupDelta(hi-lo)
			if collapsed {
				kept = append(kept, s[lo:hi]...) // holds a member: keep
			} else {
				removed += hi - lo
			}
		}
		if removed > 0 {
			s = kept
			continue
		}
		if k < len(s) && groups < 4*(d.cfg.Assoc+2) {
			groups *= 2 // members in every group: refine the partition
			continue
		}
		// Fallback: one pass of the original per-element elimination.
		for i := 0; i < len(s); {
			without := make([]uint64, 0, len(s)-1)
			without = append(without, s[:i]...)
			without = append(without, s[i+1:]...)
			t := d.probe(without)
			if full > t && full-t > d.memberDelta() {
				i++ // member of C: keep it
			} else {
				s, full = without, t // stray: drop permanently
			}
		}
		break
	}
	return s
}

// sweep is step 3: find the remaining members of C in the rest of the
// pool. Candidates are group-tested in batches first: a core of exactly
// α members plus a batch of ≤ α candidates stays all-L3-hit unless the
// batch holds another member of C, which ignites full-set thrashing — a
// signal α+1 DRAM-class misses wide that no stray hit cost can mask (a
// batch of ≤ α candidates can never complete a *different* set, so
// there are no other ignition sources). Only flagged batches pay the
// per-candidate swap probes of the original algorithm. Probes are
// mutually independent (each flushes, every page is pre-faulted), so
// batches shard across forked probers and the hit list is applied in
// pool order, keeping member order identical to a sequential sweep at
// every worker count.
func (d *discoverer) sweep(pool, members []uint64) []uint64 {
	inSet := map[uint64]bool{}
	for _, a := range members {
		inSet[a] = true
	}
	core := members[:d.cfg.Assoc] // exactly α: fits its set, hits after warm-up
	base := d.probe(members)
	baseCore := d.probe(core)
	cands := make([]uint64, 0, len(pool)-len(members))
	for _, a := range pool {
		if inSet[a] {
			continue
		}
		if d.provablyNotIn(members, a) {
			continue // provably in another set: skip without probing
		}
		cands = append(cands, a)
	}

	batchSize := d.cfg.Assoc // one short of completing another set
	if batchSize < 1 {
		batchSize = 1
	}
	nBatches := (len(cands) + batchSize - 1) / batchSize
	batches := make([][]uint64, nBatches)
	for b := range batches {
		lo := b * batchSize
		hi := lo + batchSize
		if hi > len(cands) {
			hi = len(cands)
		}
		probe := make([]uint64, 0, len(core)+hi-lo)
		probe = append(probe, core...)
		probe = append(probe, cands[lo:hi]...)
		batches[b] = probe
	}
	times := d.probeMany(batches)

	// Per-candidate swap retests, only for flagged batches.
	var retest []int
	for b, t := range times {
		lo := b * batchSize
		hi := lo + batchSize
		if hi > len(cands) {
			hi = len(cands)
		}
		if t > baseCore && t-baseCore > d.igniteDelta(hi-lo) {
			for i := lo; i < hi; i++ {
				retest = append(retest, i)
			}
		}
	}
	hits := make([]bool, len(cands))
	sweepOne := func(p Prober, swap []uint64, i int) bool {
		swap[0] = cands[i]
		t := d.probeOn(p, swap)
		return t+d.sweepDelta() > base
	}
	if d.forks == nil {
		swap := append([]uint64(nil), members...)
		for _, i := range retest {
			hits[i] = sweepOne(d.p, swap, i)
		}
	} else {
		parallel.Shards(len(d.forks), len(retest), func(shard, lo, hi int) {
			swap := append([]uint64(nil), members...)
			for j := lo; j < hi; j++ {
				hits[retest[j]] = sweepOne(d.forks[shard], swap, retest[j])
			}
		})
	}
	for i, hit := range hits {
		if hit {
			members = append(members, cands[i])
		}
	}
	return members
}

// filterConsistent re-verifies every discovered set across simulated
// reboots, dropping sets whose members stop contending (§3.2's
// cross-reboot filter). Within a set, members that individually fail are
// removed; a set shrinking below α+1 is dropped entirely.
func (d *discoverer) filterConsistent(m *Model) {
	if d.cfg.Reboots <= 0 {
		return
	}
	// Each set's verdict depends only on (set index, reboot round): Reboot
	// fully resets a prober's mapping and caches, so the per-set loop
	// shards across forked probers without any cross-talk.
	ok := make([]bool, len(m.Sets))
	if d.forks == nil {
		for si, set := range m.Sets {
			ok[si] = d.consistentAcrossReboots(d.p, si, set)
		}
	} else {
		parallel.Shards(len(d.forks), len(m.Sets), func(shard, lo, hi int) {
			for si := lo; si < hi; si++ {
				ok[si] = d.consistentAcrossReboots(d.forks[shard], si, m.Sets[si])
			}
		})
	}
	kept := m.Sets[:0]
	for si, set := range m.Sets {
		if ok[si] {
			kept = append(kept, set)
		}
	}
	d.p.Reboot(d.cfg.Seed) // restore a defined mapping
	m.Sets = kept
}

// consistentAcrossReboots re-verifies one set's contention signature on p
// across the configured simulated reboots.
func (d *discoverer) consistentAcrossReboots(p Prober, si int, set ContentionSet) bool {
	for r := 1; r <= d.cfg.Reboots; r++ {
		p.Reboot(d.cfg.Seed + uint64(si*1000+r))
		core := set.Addrs
		if len(core) > d.cfg.Assoc+1 {
			core = core[:d.cfg.Assoc+1]
		}
		t := d.probeOn(p, core)
		// Contention signature: substantially more than all-hit time.
		allHit := uint64(d.cfg.Rounds) * uint64(len(core)) * d.cfg.LatL3
		if t < allHit+d.memberDelta() {
			return false
		}
	}
	return true
}

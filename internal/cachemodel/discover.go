// Package cachemodel reverse-engineers and exploits the DUT's L3 cache
// behaviour, implementing §3.2 and §3.3 of the paper.
//
// Discovery treats the memory hierarchy as a black box that can only be
// probed by timing pointer-chase loops: it grows an address set until the
// probe time jumps by more than a contention threshold δ (the grown set
// then holds α+1 addresses of some contention set C), shrinks it to
// exactly those α+1 addresses, sweeps the remaining pool for further
// members of C, and filters the result for consistency across simulated
// reboots. The resulting Model is what CASTAN's symbolic pointer
// concretization uses to pick addresses that maximize cache contention.
package cachemodel

import (
	"errors"
	"fmt"
	"sort"

	"castan/internal/budget"
	"castan/internal/parallel"
	"castan/internal/stats"
)

// Sentinel outcomes of Discover, distinguishable with errors.Is so the
// pipeline can tell a benign empty result from a suspicious one from a
// budget cut:
var (
	// ErrNoSets means the pool produced no contention sets at all — the
	// normal outcome for NFs whose tables fit in cache.
	ErrNoSets = errors.New("cachemodel: no contention sets found")
	// ErrInconsistent means sets were found but none survived the
	// cross-reboot consistency filter — a suspicious outcome that in the
	// noise-free simulator points at perturbed probe timings.
	ErrInconsistent = errors.New("cachemodel: all sets rejected by consistency filter")
	// ErrBudget means the discovery budget ran out. A partial
	// (unfiltered) model accompanies it when any set was found first.
	ErrBudget = errors.New("cachemodel: discovery budget exhausted")
)

// Prober is the timing side-channel the discovery tool is allowed to use.
// *memsim.Hierarchy satisfies it.
type Prober interface {
	// ProbeTime returns the cycles needed to sequentially read all addrs,
	// rounds times, after a warm-up pass.
	ProbeTime(addrs []uint64, rounds int) uint64
	// Reboot re-randomizes the virtual→physical mapping.
	Reboot(bootID uint64)
}

// ContentionSet is a group of line addresses that compete for the same L3
// ways: bringing in more than Assoc of them evicts.
type ContentionSet struct {
	Addrs []uint64
}

// Model is the discovered cache model handed to CASTAN.
type Model struct {
	Assoc     int
	LineBytes int
	Sets      []ContentionSet

	setOf map[uint64]int // line address -> index into Sets
}

// SetOf returns the contention-set index of a line address, or -1 if the
// address was not covered by discovery.
func (m *Model) SetOf(lineAddr uint64) int {
	if idx, ok := m.setOf[lineAddr]; ok {
		return idx
	}
	return -1
}

// Reindex rebuilds the address index after the Sets have been assembled
// or edited by hand (Discover and the persistence loader call it
// themselves).
func (m *Model) Reindex() { m.buildIndex() }

// buildIndex (re)builds the address index.
func (m *Model) buildIndex() {
	m.setOf = make(map[uint64]int)
	for i, s := range m.Sets {
		for _, a := range s.Addrs {
			m.setOf[a] = i
		}
	}
}

// DiscoverConfig tunes discovery.
type DiscoverConfig struct {
	// Pool is the candidate line-aligned addresses (e.g. lines of the NF's
	// tables). Discovery mutates a copy.
	Pool []uint64
	// Assoc is the (publicly documented) L3 associativity α.
	Assoc int
	// LineBytes is the cache line size.
	LineBytes int
	// LatL3 and LatDRAM are the publicly documented latencies used to set
	// the contention threshold δ.
	LatL3, LatDRAM uint64
	// Rounds per probe (default 2).
	Rounds int
	// MaxSets stops discovery after this many contention sets (0 = all
	// that can be found).
	MaxSets int
	// Reboots is the number of simulated reboots used by the consistency
	// filter (default 3; 0 disables filtering).
	Reboots int
	// Seed drives the shuffled growth order.
	Seed uint64
	// Workers bounds the fan-out of the candidate sweep and the
	// consistency filter (0 = GOMAXPROCS). Discovery output is identical
	// at every worker count.
	Workers int
	// Fork, when set, returns an independent prober sharing the hidden
	// state and current address mapping of p (e.g. memsim's
	// Hierarchy.Fork). Without it the sweep and filter run sequentially
	// regardless of Workers, since concurrent probes on one prober would
	// perturb each other.
	Fork func() Prober
	// Budget, when set, bounds discovery effort. Probe ticks are charged
	// by the prober itself (memsim.SetBudget); Discover checks for
	// exhaustion between findOne iterations — a deterministic
	// orchestration point — and stops there, returning whatever partial
	// model exists alongside ErrBudget.
	Budget *budget.Stage
}

// Discover runs the §3.2 pipeline and returns the model.
func Discover(p Prober, cfg DiscoverConfig) (*Model, error) {
	if cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cachemodel: Assoc must be positive")
	}
	if len(cfg.Pool) == 0 {
		return nil, fmt.Errorf("cachemodel: empty pool")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	if cfg.Reboots == 0 {
		cfg.Reboots = 3
	}
	d := &discoverer{p: p, cfg: cfg, rng: stats.NewRNG(cfg.Seed ^ 0xca57a)}
	pool := append([]uint64(nil), cfg.Pool...)
	d.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })

	// Pre-fault every candidate once, in pool order. Lazy first touches
	// would otherwise happen in probe order anyway — the grow and sweep
	// phases walk the pool front to back — so this does not change any
	// probe result; it guarantees that forked probers never allocate
	// mappings of their own, which is what makes sweep results
	// independent of how candidates are divided among workers.
	d.probe(pool)
	if w := parallel.Workers(cfg.Workers); w > 1 && cfg.Fork != nil {
		d.forks = make([]Prober, w)
		for i := range d.forks {
			d.forks[i] = cfg.Fork()
		}
	}

	model := &Model{Assoc: cfg.Assoc, LineBytes: cfg.LineBytes}
	var budgetReason string
	for cfg.MaxSets == 0 || len(model.Sets) < cfg.MaxSets {
		if reason, ok := cfg.Budget.Exhausted(); ok {
			budgetReason = reason
			break
		}
		set, rest, found := d.findOne(pool)
		if !found {
			break
		}
		model.Sets = append(model.Sets, ContentionSet{Addrs: set})
		pool = rest
	}
	if budgetReason != "" && len(model.Sets) == 0 {
		return nil, fmt.Errorf("%w (%s)", ErrBudget, budgetReason)
	}
	if len(model.Sets) == 0 {
		return nil, fmt.Errorf("%w (pool of %d)", ErrNoSets, len(cfg.Pool))
	}
	if budgetReason == "" {
		// The consistency filter costs Reboots probes per set, so a
		// budget-cut run skips it and hands back the unfiltered partial
		// model — the caller already knows (via ErrBudget) to treat it as
		// degraded.
		d.filterConsistent(model)
		if len(model.Sets) == 0 {
			return nil, ErrInconsistent
		}
	}
	for i := range model.Sets {
		sort.Slice(model.Sets[i].Addrs, func(a, b int) bool {
			return model.Sets[i].Addrs[a] < model.Sets[i].Addrs[b]
		})
	}
	model.buildIndex()
	if budgetReason != "" {
		return model, fmt.Errorf("%w (%s)", ErrBudget, budgetReason)
	}
	return model, nil
}

type discoverer struct {
	p     Prober
	cfg   DiscoverConfig
	rng   *stats.RNG
	forks []Prober // per-worker probers; nil = sequential probing only
}

func (d *discoverer) probe(s []uint64) uint64 {
	return d.probeOn(d.p, s)
}

func (d *discoverer) probeOn(p Prober, s []uint64) uint64 {
	if len(s) == 0 {
		return 0
	}
	return p.ProbeTime(s, d.cfg.Rounds)
}

// thresholds: growDelta detects "a chunk addition caused contention";
// memberDelta detects "removing this address removed contention";
// sweepDelta detects "swapping this address kept contention".
func (d *discoverer) growDelta(chunk int) uint64 {
	signal := uint64(d.cfg.Rounds) * uint64(d.cfg.Assoc+1) * (d.cfg.LatDRAM - d.cfg.LatL3) / 2
	noise := uint64(d.cfg.Rounds) * uint64(chunk) * d.cfg.LatL3
	return signal + noise
}

func (d *discoverer) memberDelta() uint64 {
	return uint64(d.cfg.Rounds) * uint64(d.cfg.Assoc) * (d.cfg.LatDRAM - d.cfg.LatL3) / 2
}

func (d *discoverer) sweepDelta() uint64 {
	return uint64(d.cfg.Rounds) * (d.cfg.LatDRAM + d.cfg.LatL3) / 2
}

// findOne runs steps (1)-(3) of §3.2 once: returns the α+1.. members of
// one contention set and the pool with those members removed.
func (d *discoverer) findOne(pool []uint64) (set []uint64, rest []uint64, found bool) {
	chunk := d.cfg.Assoc / 2
	if chunk < 2 {
		chunk = 2
	}
	// Step 1: grow until the probe time jumps by more than δ.
	var s []uint64
	prev := uint64(0)
	trigger := -1
	for i := 0; i < len(pool); i += chunk {
		end := i + chunk
		if end > len(pool) {
			end = len(pool)
		}
		s = pool[:end]
		cur := d.probe(s)
		if cur > prev && cur-prev > d.growDelta(end-i) {
			// Binary-search the smallest prefix length m in (i, end] whose
			// probe time jumps; the triggering address is pool[m-1].
			jumps := func(m int) bool {
				t := d.probe(pool[:m])
				return t > prev && t-prev > d.growDelta(m-i)
			}
			lo, hi := i, end // jumps(lo) false (empty delta), jumps(hi) true
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if jumps(mid) {
					hi = mid
				} else {
					lo = mid
				}
			}
			trigger = hi - 1
			break
		}
		prev = cur
	}
	if trigger < 0 {
		return nil, pool, false
	}
	s = append([]uint64(nil), pool[:trigger+1]...)

	// Step 2: shrink s to exactly α+1 members of C: remove each address in
	// turn; a drop of more than δ means it was a member (re-add it),
	// otherwise leave it out permanently. Removing a member collapses the
	// contention; removing a stray only saves its own hit cost.
	full := d.probe(s)
	for i := 0; i < len(s); {
		without := make([]uint64, 0, len(s)-1)
		without = append(without, s[:i]...)
		without = append(without, s[i+1:]...)
		t := d.probe(without)
		if full > t && full-t > d.memberDelta() {
			i++ // member of C: keep it
		} else {
			s, full = without, t // stray: drop permanently
		}
	}
	members := s
	if len(members) < d.cfg.Assoc+1 {
		// The jump was noise (should not happen in the simulator, but be
		// robust): drop the trigger address and let the caller continue.
		rest = append(append([]uint64(nil), pool[:trigger]...), pool[trigger+1:]...)
		return nil, rest, false
	}

	// Step 3: sweep the rest of the pool for further members of C:
	// replace one member with the candidate; if the probe time stays
	// high, the candidate belongs to C. Each candidate's probe flushes the
	// caches first and every page is pre-faulted, so probes are mutually
	// independent — the sweep shards across forked probers, and the hit
	// list is applied in pool order to keep member order identical to a
	// sequential sweep.
	inSet := map[uint64]bool{}
	for _, a := range members {
		inSet[a] = true
	}
	base := d.probe(members)
	cands := make([]uint64, 0, len(pool)-len(members))
	for _, a := range pool {
		if !inSet[a] {
			cands = append(cands, a)
		}
	}
	hits := make([]bool, len(cands))
	sweepOne := func(p Prober, swap []uint64, i int) bool {
		swap[0] = cands[i]
		t := d.probeOn(p, swap)
		return t+d.sweepDelta() > base
	}
	if d.forks == nil {
		swap := append([]uint64(nil), members...)
		for i := range cands {
			hits[i] = sweepOne(d.p, swap, i)
		}
	} else {
		parallel.Shards(len(d.forks), len(cands), func(shard, lo, hi int) {
			swap := append([]uint64(nil), members...)
			for i := lo; i < hi; i++ {
				hits[i] = sweepOne(d.forks[shard], swap, i)
			}
		})
	}
	for i, hit := range hits {
		if hit {
			members = append(members, cands[i])
			inSet[cands[i]] = true
		}
	}

	rest = make([]uint64, 0, len(pool)-len(members))
	for _, a := range pool {
		if !inSet[a] {
			rest = append(rest, a)
		}
	}
	return members, rest, true
}

// filterConsistent re-verifies every discovered set across simulated
// reboots, dropping sets whose members stop contending (§3.2's
// cross-reboot filter). Within a set, members that individually fail are
// removed; a set shrinking below α+1 is dropped entirely.
func (d *discoverer) filterConsistent(m *Model) {
	if d.cfg.Reboots <= 0 {
		return
	}
	// Each set's verdict depends only on (set index, reboot round): Reboot
	// fully resets a prober's mapping and caches, so the per-set loop
	// shards across forked probers without any cross-talk.
	ok := make([]bool, len(m.Sets))
	if d.forks == nil {
		for si, set := range m.Sets {
			ok[si] = d.consistentAcrossReboots(d.p, si, set)
		}
	} else {
		parallel.Shards(len(d.forks), len(m.Sets), func(shard, lo, hi int) {
			for si := lo; si < hi; si++ {
				ok[si] = d.consistentAcrossReboots(d.forks[shard], si, m.Sets[si])
			}
		})
	}
	kept := m.Sets[:0]
	for si, set := range m.Sets {
		if ok[si] {
			kept = append(kept, set)
		}
	}
	d.p.Reboot(d.cfg.Seed) // restore a defined mapping
	m.Sets = kept
}

// consistentAcrossReboots re-verifies one set's contention signature on p
// across the configured simulated reboots.
func (d *discoverer) consistentAcrossReboots(p Prober, si int, set ContentionSet) bool {
	for r := 1; r <= d.cfg.Reboots; r++ {
		p.Reboot(d.cfg.Seed + uint64(si*1000+r))
		core := set.Addrs
		if len(core) > d.cfg.Assoc+1 {
			core = core[:d.cfg.Assoc+1]
		}
		t := d.probeOn(p, core)
		// Contention signature: substantially more than all-hit time.
		allHit := uint64(d.cfg.Rounds) * uint64(len(core)) * d.cfg.LatL3
		if t < allHit+d.memberDelta() {
			return false
		}
	}
	return true
}

package cachecost

import (
	"fmt"

	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
)

// CrossCheck replays a synthesized workload (frames are raw packet
// bytes, fed one nf_process-style call each) on the simulated hierarchy
// and fails, sanitizer-style, if any instruction the analysis classified
// always-hit ever reaches DRAM. The machine must be the one the analyzed
// module belongs to (classifications are keyed by instruction identity);
// its hooks are saved and restored, but its memory mutates as the replay
// runs, exactly as a real measurement would. The caches stay warm across
// frames — must-facts hold for any initial cache state, so a warm replay
// is the stronger check.
func CrossCheck(a *Analysis, mach *interp.Machine, hier *memsim.Hierarchy, entry string, frames [][]byte) error {
	saved := mach.Hooks
	defer func() { mach.Hooks = saved }()

	var cur *ir.Instr
	var violation error
	mach.Hooks = interp.Hooks{
		OnInstr: func(_ *ir.Func, in *ir.Instr) { cur = in },
		OnMem: func(ma interp.MemAccess) {
			lvl, _ := hier.Access(ma.Addr, ma.Size, ma.IsWrite)
			if violation != nil || cur == nil || lvl != memsim.DRAM {
				return
			}
			// OnMem events of an OpHavoc key read are attributed to the
			// havoc instruction, which is never classified.
			if (cur.Op == ir.OpLoad || cur.Op == ir.OpStore) && a.class[cur] == AlwaysHit {
				violation = fmt.Errorf(
					"cachecost: always-hit %s at %s missed to DRAM (addr %#x, size %d)",
					cur.Op, a.refs[cur], ma.Addr, ma.Size)
			}
		},
	}

	for i, frame := range frames {
		cur = nil
		hier.InjectPacket(ir.PacketBase, len(frame))
		mach.Mem.WriteBytes(ir.PacketBase, frame)
		if _, err := mach.Call(entry, ir.PacketBase, uint64(len(frame))); err != nil {
			return fmt.Errorf("cachecost: crosscheck frame %d: %w", i, err)
		}
		if violation != nil {
			return fmt.Errorf("frame %d: %w", i, violation)
		}
	}
	return nil
}

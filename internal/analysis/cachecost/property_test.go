package cachecost

import (
	"math/rand"
	"testing"

	"castan/internal/analysis"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
)

// genModule builds a random small NF-shaped module: a few globals, and an
// nf_process mixing constant-address loads/stores, interval-address loads
// (masked indices), bounded loops, branches on loaded data, and the
// occasional havoc. Every loop is counted, so execution always
// terminates.
func genModule(r *rand.Rand) *ir.Module {
	m := ir.NewModule("prop")
	nglob := 1 + r.Intn(3)
	globals := make([]*ir.Global, nglob)
	for i := range globals {
		size := uint64(64 * (1 + r.Intn(8))) // 64..512 bytes
		globals[i] = m.AddGlobal(string(rune('a'+i)), size, 64)
	}
	hid := m.AddHash("h", 16, func(b []byte) uint64 {
		var s uint64 = 14695981039346656037
		for _, c := range b {
			s = (s ^ uint64(c)) * 1099511628211
		}
		return s
	})
	m.Layout()

	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	acc := fb.VarImm(0)

	var stmt func(depth int)
	stmt = func(depth int) {
		g := globals[r.Intn(nglob)]
		base := fb.GlobalAddr(g)
		switch r.Intn(8) {
		case 0, 1: // constant-address global load (sometimes repeated)
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			acc.Set(fb.Add(acc.R(), fb.Load(base, off, 8)))
			if r.Intn(2) == 0 {
				acc.Set(fb.Add(acc.R(), fb.Load(base, off, 8)))
			}
		case 2: // constant-address global store
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			fb.Store(base, off, acc.R(), 8)
		case 3: // packet byte load
			off := uint64(r.Intn(34))
			acc.Set(fb.Add(acc.R(), fb.Load(pkt, off, 1)))
		case 4: // interval-address load: masked data-dependent index
			mask := (g.Size - 1) &^ 7
			idx := fb.AndImm(acc.R(), mask)
			acc.Set(fb.Add(acc.R(), fb.Load(fb.Add(base, idx), 0, 8)))
		case 5: // counted loop
			if depth >= 2 {
				return
			}
			trip := uint64(2 + r.Intn(3))
			i := fb.VarImm(0)
			fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(trip)) }, func() {
				stmt(depth + 1)
				i.Set(fb.AddImm(i.R(), 1))
			})
		case 6: // branch on accumulated data
			if depth >= 3 {
				return
			}
			cond := fb.CmpUlt(fb.AndImm(acc.R(), 0xff), fb.Const(uint64(r.Intn(256))))
			fb.If(cond, func() { stmt(depth + 1) }, func() { stmt(depth + 1) })
		case 7: // havoc over a global prefix
			acc.Set(fb.Havoc(hid, base, 8))
		}
	}
	n := 3 + r.Intn(8)
	for s := 0; s < n; s++ {
		stmt(0)
	}
	fb.Ret(acc.R())
	fb.Seal()
	return m
}

// TestMustSoundnessRandomModules is the soundness gate for the must
// analysis: across random modules and random warm replays on the
// simulated hierarchy (TinyGeometry, whose L3 has 4 ways — matching the
// analysis geometry), no instruction classified always-hit may ever reach
// DRAM. The hierarchy stays warm across packets, which is exactly the
// regime the entry-age/no-refresh design has to survive.
func TestMustSoundnessRandomModules(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	hits := 0
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		m := genModule(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		mf := analysis.ForModule(m)
		mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
		a := Run(mf, mr, Config{Geometry: Geometry{Ways: 4, LineBytes: 64}})
		for _, cl := range a.class {
			if cl == AlwaysHit {
				hits++
			}
		}

		mach := interp.NewMachine(m)
		hier := memsim.New(memsim.TinyGeometry(), uint64(seed)*7919+1)
		frames := make([][]byte, 4+r.Intn(4))
		for i := range frames {
			f := make([]byte, 42)
			r.Read(f)
			frames[i] = f
		}
		if err := CrossCheck(a, mach, hier, "nf_process", frames); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if hits == 0 {
		t.Error("no always-hit classifications across all random modules; property test is vacuous")
	}
}

package cachecost

import (
	"castan/internal/analysis"
	"castan/internal/ir"
)

// bound is a saturating worst-case cost: ok=false means no static bound
// exists (an unbounded loop or a callee without one).
type bound struct {
	v  uint64
	ok bool
}

func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if p := a * b; p/b == a {
		return p
	}
	return ^uint64(0)
}

func (b bound) add(o bound) bound {
	return bound{satAdd(b.v, o.v), b.ok && o.ok}
}

func maxBound(a, b bound) bound {
	if !a.ok || !b.ok {
		return bound{0, false}
	}
	if b.v > a.v {
		return b
	}
	return a
}

// instrBound prices one instruction: its opcode cost, the miss penalty
// for any memory access not proven always-hit, and — for calls — the
// callee's whole-function bound (or its acyclic bound when acyclic is
// set).
func (a *Analysis) instrBound(in *ir.Instr, acyclic bool) bound {
	c := a.cost.Op.InstrCost(in)
	switch in.Op {
	case ir.OpLoad, ir.OpStore:
		if a.class[in] != AlwaysHit {
			c = satAdd(c, a.cost.MissPenalty)
		}
	case ir.OpCall:
		cs := a.fns[in.Callee]
		if cs == nil {
			return bound{0, false}
		}
		if acyclic {
			c = satAdd(c, cs.acyclic)
		} else {
			if !cs.funcBound.ok {
				return bound{0, false}
			}
			c = satAdd(c, cs.funcBound.v)
		}
	}
	return bound{c, true}
}

// retreating reports whether edge b→s goes backwards (or self) in RPO.
// For the reducible CFGs the builder emits these are exactly the loop
// back edges; treating any retreating edge as one keeps the longest-path
// computation on a DAG regardless.
func retreating(fa *analysis.Facts, b, s *ir.Block) bool {
	return fa.RPONum[s.Index] <= fa.RPONum[b.Index]
}

// tripMult is the execution-count multiplier of a block: the product of
// (TripBound+1) over every enclosing loop — the +1 covers the header's
// final, exiting evaluation. A loop without a static trip bound makes the
// multiplier unbounded.
func tripMult(fa *analysis.Facts, b *ir.Block) bound {
	m := bound{1, true}
	for l := fa.Loops.Innermost(b); l != nil; l = l.Parent {
		if l.TripBound == 0 {
			return bound{0, false}
		}
		m = bound{satMul(m.v, l.TripBound+1), m.ok}
	}
	return m
}

// buildBounds derives the cost bounds for one function. Callees have
// already been processed (Run walks the call graph bottom-up).
func (a *Analysis) buildBounds(f *ir.Func, fc *funcCost) {
	fa := fc.facts

	// Per-block suffix arrays: suffix[b][i] bounds the cost of executing
	// instructions i..end of b once.
	acySuffix := map[*ir.Block][]bound{}
	for _, b := range fa.RPO {
		n := len(b.Instrs)
		suf := make([]bound, n+1)
		acy := make([]bound, n+1)
		suf[n] = bound{0, true}
		acy[n] = bound{0, true}
		for i := n - 1; i >= 0; i-- {
			suf[i] = a.instrBound(b.Instrs[i], false).add(suf[i+1])
			acy[i] = a.instrBound(b.Instrs[i], true).add(acy[i+1])
		}
		fc.suffix[b] = suf
		acySuffix[b] = acy

		// The per-block bound charges the whole block once per possible
		// execution: one pass times the loop trip multiplier.
		fc.blockBound[b] = suf[0]
		if mult := tripMult(fa, b); !mult.ok {
			fc.blockBound[b] = bound{0, false}
		} else if mult.v != 1 {
			bb := suf[0]
			fc.blockBound[b] = bound{satMul(bb.v, mult.v), bb.ok}
		}

		var outer *analysis.Loop
		for l := fa.Loops.Innermost(b); l != nil; l = l.Parent {
			outer = l
		}
		fc.outerLoop[b] = outer
	}

	// Longest weighted path over the back-edge-free DAG, in reverse RPO
	// (every non-retreating edge goes forward in RPO, so successors are
	// final before their predecessors). R(b) bounds the cost of the whole
	// rest of the execution starting at b — including every remaining
	// iteration of loops containing b, because b's weight already carries
	// the trip multiplier.
	acyR := map[*ir.Block]uint64{}
	for i := len(fa.RPO) - 1; i >= 0; i-- {
		b := fa.RPO[i]
		succBest := bound{0, true}
		var acyBest uint64
		for _, s := range b.Succs() {
			if retreating(fa, b, s) {
				continue
			}
			succBest = maxBound(succBest, fc.residual[s])
			if r := acyR[s]; r > acyBest {
				acyBest = r
			}
		}
		fc.residual[b] = fc.blockBound[b].add(succBest)
		acyR[b] = satAdd(acySuffix[b][0].v, acyBest)
	}
	fc.funcBound = fc.residual[f.Entry()]
	fc.acyclic = acyR[f.Entry()]
}

// BlockBound bounds the total cost block b can contribute to one
// execution of its function (cost of one pass times its loop trip
// multiplier). ok=false means no static bound exists.
func (a *Analysis) BlockBound(b *ir.Block) (uint64, bool) {
	fc := a.fns[b.Fn]
	if fc == nil {
		return 0, false
	}
	bb, ok := fc.blockBound[b]
	if !ok {
		return 0, false
	}
	return bb.v, bb.ok
}

// FuncBound bounds the cost of one call to f, callees included.
func (a *Analysis) FuncBound(f *ir.Func) (uint64, bool) {
	fc := a.fns[f]
	if fc == nil || !fc.funcBound.ok {
		return 0, false
	}
	return fc.funcBound.v, true
}

// AcyclicPathBound bounds the cost of any single acyclic path through f
// (loop bodies charged once, callees by their own acyclic bounds). It is
// always finite.
func (a *Analysis) AcyclicPathBound(f *ir.Func) uint64 {
	fc := a.fns[f]
	if fc == nil {
		return 0
	}
	return fc.acyclic
}

// Residual bounds the remaining cost of an execution positioned at
// instruction pc of block b. Inside a loop the bound falls back to the
// outermost enclosing loop header's whole-region bound, which covers
// every remaining iteration.
func (a *Analysis) Residual(b *ir.Block, pc int) (uint64, bool) {
	fc := a.fns[b.Fn]
	if fc == nil {
		return 0, false
	}
	if outer := fc.outerLoop[b]; outer != nil {
		r, ok := fc.residual[outer.Header]
		if !ok || !r.ok {
			return 0, false
		}
		return r.v, true
	}
	suf := fc.suffix[b]
	if suf == nil {
		return 0, false
	}
	if pc < 0 {
		pc = 0
	}
	if pc >= len(suf) {
		pc = len(suf) - 1
	}
	rest := suf[pc]
	succBest := bound{0, true}
	for _, s := range b.Succs() {
		if retreating(fc.facts, b, s) {
			continue
		}
		succBest = maxBound(succBest, fc.residual[s])
	}
	r := rest.add(succBest)
	if !r.ok {
		return 0, false
	}
	return r.v, true
}

// WorkloadBound bounds the cost of processing packets invocations of the
// entry function — the per-workload static worst case reported next to
// measured cycles.
func (a *Analysis) WorkloadBound(entry string, packets int) (uint64, bool) {
	f := a.mod.Funcs[entry]
	if f == nil || packets < 0 {
		return 0, false
	}
	fb, ok := a.FuncBound(f)
	if !ok {
		return 0, false
	}
	return satMul(fb, uint64(packets)), true
}

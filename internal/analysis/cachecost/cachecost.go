// Package cachecost runs a Ferdinand-style must/may abstract cache
// analysis over the IR and turns the result into static worst-case cost
// bounds (per block, per function, per acyclic path) that the directed
// searcher can use as an admissible priority component.
//
// The abstraction works on cache lines with *statically known* virtual
// addresses: the memory-region pass resolves every load/store to a base
// region plus a starting-offset interval, and for globals (laid out at
// fixed addresses) and the packet slot that interval maps to a small set
// of candidate line addresses. Heap regions are excluded — an allocation
// site can execute more than once, so "heap site X, line 3" does not name
// a unique concrete line and treating it as one would be unsound.
//
// The must domain is the age-based one of Ferdinand & Wilhelm: a map from
// line to an upper bound on its replacement age; presence means the line
// is guaranteed resident somewhere in the hierarchy, so an access to it
// can never reach DRAM. Two properties of the simulated hierarchy
// (internal/memsim) force a deliberately conservative instantiation:
//
//   - L1/L2 hits do not refresh a line's L3 replacement stamp, and
//   - the L3 is inclusive: an L3 eviction back-invalidates L1 and L2.
//
// Together these mean a line's L3 stamp can be arbitrarily stale no
// matter how recently the line was touched, so a single conflicting fill
// may evict it from the whole hierarchy. Soundly, a line therefore enters
// the must cache at age Ways-1 (one possible conflicting fill evicts it),
// and a guaranteed hit — which cannot fill any level — is the only access
// that leaves other lines' ages untouched. Conflict is conservative: two
// distinct lines may conflict unless the discovered cachemodel.Model
// places them in different contention sets (the L3 set hash is hidden, so
// nothing else can separate them). The may domain starts cold at function
// entry and over-approximates the possibly-cached lines, so "always-miss"
// means a compulsory miss relative to a cold entry cache; only the must
// side is checked by the memsim cross-checker (warm inter-packet caches
// make cold-start misses unverifiable).
//
// Joins intersect the must cache (max age) and union the may cache (min
// age). Both domains are finite — candidate lines come from the already
// widened memregion intervals, ages are bounded by Ways — so the RPO
// fixpoint terminates without further widening.
package cachecost

import (
	"fmt"
	"sort"

	"castan/internal/analysis"
	"castan/internal/cachemodel"
	"castan/internal/icfg"
	"castan/internal/ir"
	"castan/internal/obs"
)

// Geometry is the cache shape the analysis assumes.
type Geometry struct {
	// Sets is the number of cache sets when the line→set mapping is the
	// usual modulo indexing. The simulated L3 hashes lines to sets with a
	// hidden function, so production callers pass 0 (mapping unknown: any
	// two distinct lines may conflict, and no conflict is ever certain);
	// tests exercising the age machinery pass a real set count.
	Sets int
	// Ways is the associativity (the age bound of the domains).
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
}

// DefaultGeometry mirrors the simulated L3 (memsim.DefaultGeometry):
// 16 ways, 64-byte lines, hidden set mapping.
func DefaultGeometry() Geometry {
	return Geometry{Sets: 0, Ways: 16, LineBytes: 64}
}

// CostParams prices instructions for the worst-case bounds.
type CostParams struct {
	// Op supplies per-opcode costs; Op.MemL1 is the always-hit latency.
	Op icfg.CostModel
	// MissPenalty is added to Op.MemL1 for every access not classified
	// always-hit (the DRAM latency delta the searcher also charges).
	MissPenalty uint64
}

// DefaultCostParams matches the symbex engine's realized-cost accounting:
// hits at MemL1, everything else at MemL1+206 = the simulated DRAM
// latency.
func DefaultCostParams() CostParams {
	cm := icfg.DefaultCostModel()
	return CostParams{Op: cm, MissPenalty: cm.MemDRAM - cm.MemL1}
}

// Config tunes a run.
type Config struct {
	Geometry Geometry
	// Model, when non-nil, refines the conflict relation: two lines in
	// different discovered contention sets provably do not contend in the
	// L3. Lines the model does not cover conservatively conflict with
	// everything.
	Model *cachemodel.Model
	Cost  CostParams
	// Obs, when non-nil, receives the cachecost.fixpoint_iterations
	// counter (one count per block sweep until convergence).
	Obs *obs.Recorder
}

// Class is the static classification of one memory instruction.
type Class uint8

// Classification outcomes.
const (
	Unclassified Class = iota
	AlwaysHit          // guaranteed served above DRAM on every execution
	AlwaysMiss         // guaranteed DRAM under a cold cache at function entry
)

// String returns the class label.
func (c Class) String() string {
	switch c {
	case AlwaysHit:
		return "always-hit"
	case AlwaysMiss:
		return "always-miss"
	}
	return "unclassified"
}

// Stats summarizes the classification of one function's memory
// instructions.
type Stats struct {
	Mem          int // loads + stores
	AlwaysHit    int
	AlwaysMiss   int
	Unclassified int
}

// UnclassifiedRatio is the fraction of memory instructions the analysis
// could not classify (0 for a function without memory instructions).
func (s Stats) UnclassifiedRatio() float64 {
	if s.Mem == 0 {
		return 0
	}
	return float64(s.Unclassified) / float64(s.Mem)
}

// Analysis is the module-level result.
type Analysis struct {
	mod   *ir.Module
	geo   Geometry
	model *cachemodel.Model
	cost  CostParams

	class map[*ir.Instr]Class
	refs  map[*ir.Instr]string // "fn/block/idx" for diagnostics
	fns   map[*ir.Func]*funcCost

	// Iterations counts fixpoint block sweeps across all functions (also
	// reported to Config.Obs as cachecost.fixpoint_iterations).
	Iterations uint64
}

// memOp is the line-level lowering of one memory access.
type memOp struct {
	// lines holds the candidate line addresses, ascending; nil means the
	// address is statically unknown (or heap / possibly out of region).
	lines []uint64
	// definite reports that every candidate line is accessed (the
	// starting offset is a single value, so the footprint is exact).
	definite bool
}

// maxCandLines bounds the per-access candidate enumeration; wider
// intervals degrade to an unknown access.
const maxCandLines = 16

// Run analyzes the module underlying mf. The module must be laid out
// (globals at their final addresses) and mr must come from the same
// module facts.
func Run(mf *analysis.ModuleFacts, mr *analysis.MemRegions, cfg Config) *Analysis {
	if cfg.Geometry.Ways <= 0 {
		cfg.Geometry.Ways = DefaultGeometry().Ways
	}
	if cfg.Geometry.LineBytes <= 0 {
		cfg.Geometry.LineBytes = DefaultGeometry().LineBytes
	}
	if cfg.Cost.Op.MemL1 == 0 {
		cfg.Cost = DefaultCostParams()
	}
	a := &Analysis{
		mod:   mf.Mod,
		geo:   cfg.Geometry,
		model: cfg.Model,
		cost:  cfg.Cost,
		class: map[*ir.Instr]Class{},
		refs:  map[*ir.Instr]string{},
		fns:   map[*ir.Func]*funcCost{},
	}
	if a.model != nil && a.model.LineBytes != a.geo.LineBytes {
		// Mismatched line granularity: the model's contention sets are not
		// comparable with our lines, so drop the refinement.
		a.model = nil
	}
	ops := a.lowerAccesses(mr)

	// Bottom-up over the acyclic call graph: a function is analyzed after
	// its callees so call sites can apply callee summaries and bounds.
	done := map[*ir.Func]bool{}
	var process func(f *ir.Func)
	process = func(f *ir.Func) {
		if done[f] {
			return
		}
		done[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					process(in.Callee)
				}
			}
		}
		fc := a.analyzeFunc(f, mf.Funcs[f], ops)
		a.fns[f] = fc
		a.buildBounds(f, fc)
	}
	for _, name := range mf.FuncNames {
		process(mf.Mod.Funcs[name])
	}
	cfg.Obs.Counter("cachecost.fixpoint_iterations").Add(a.Iterations)
	return a
}

// lowerAccesses maps every load/store to its candidate cache lines.
func (a *Analysis) lowerAccesses(mr *analysis.MemRegions) map[*ir.Instr]memOp {
	lb := uint64(a.geo.LineBytes)
	ops := make(map[*ir.Instr]memOp, len(mr.Accesses))
	for i := range mr.Accesses {
		acc := &mr.Accesses[i]
		in := acc.Block.Instrs[acc.InstrIdx]
		if in.Op != ir.OpLoad && in.Op != ir.OpStore {
			continue // havoc key reads are handled conservatively
		}
		a.refs[in] = fmt.Sprintf("%s/%s/%d", acc.Fn.Name, acc.Block.Name, acc.InstrIdx)
		op := memOp{}
		if base, ok := regionBase(acc.Region); ok && acc.Class == analysis.AccessInExtent {
			size := uint64(acc.Size)
			if size == 0 {
				size = 1
			}
			lo := (base + acc.Lo) &^ (lb - 1)
			hi := (base + acc.Hi + size - 1) &^ (lb - 1)
			if hi >= lo && (hi-lo)/lb < maxCandLines {
				for l := lo; l <= hi; l += lb {
					op.lines = append(op.lines, l)
				}
				op.definite = acc.Lo == acc.Hi
			}
		}
		ops[in] = op
	}
	return ops
}

// regionBase returns the absolute base address of a region with a
// statically known placement. Heap regions have none: an allocation site
// executing twice yields two different bases.
func regionBase(r *analysis.RegionInfo) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	switch r.Kind {
	case analysis.RegionPacket:
		return ir.PacketBase, true
	case analysis.RegionGlobal:
		if r.Global != nil && r.Global.Addr != 0 {
			return r.Global.Addr, true
		}
	}
	return 0, false
}

// ProvablyDisjoint reports whether a discovered model proves that lines
// x and y map to different L3 contention sets, so neither can ever evict
// the other. It is conservative: false when either line is outside the
// model's coverage (or the model is nil). Beyond refining this package's
// conflict relation, it is the disjointness oracle callers bind into
// cachemodel.DiscoverConfig.Disjoint to prune re-discovery probing with
// a prior model (cachemodel cannot import this package, so the function
// travels as a closure).
func ProvablyDisjoint(m *cachemodel.Model, x, y uint64) bool {
	if m == nil {
		return false
	}
	sx, sy := m.SetOf(x), m.SetOf(y)
	return sx >= 0 && sy >= 0 && sx != sy
}

// mayConflict reports whether distinct lines x and y can contend for the
// same cache set. With the set mapping hidden this is true unless the
// discovered model separates them.
func (a *Analysis) mayConflict(x, y uint64) bool {
	if x == y {
		return false
	}
	if ProvablyDisjoint(a.model, x, y) {
		return false
	}
	if a.geo.Sets > 1 {
		lb := uint64(a.geo.LineBytes)
		if (x/lb)%uint64(a.geo.Sets) != (y/lb)%uint64(a.geo.Sets) {
			return false
		}
	}
	return true
}

// certainConflict reports whether distinct lines x and y are guaranteed
// to map to the same set — provable only under modulo indexing.
func (a *Analysis) certainConflict(x, y uint64) bool {
	if x == y || a.geo.Sets <= 1 {
		return false
	}
	lb := uint64(a.geo.LineBytes)
	return (x/lb)%uint64(a.geo.Sets) == (y/lb)%uint64(a.geo.Sets)
}

// absState is one point of the combined must/may domain.
type absState struct {
	must   map[uint64]int // line → age upper bound; present ⇒ guaranteed resident
	may    map[uint64]int // line → age lower bound; possibly resident
	mayTop bool           // an unknown line may be resident (may = ⊤)
}

func newAbsState() *absState {
	return &absState{must: map[uint64]int{}, may: map[uint64]int{}}
}

func (st *absState) clone() *absState {
	n := &absState{
		must:   make(map[uint64]int, len(st.must)),
		may:    make(map[uint64]int, len(st.may)),
		mayTop: st.mayTop,
	}
	for k, v := range st.must {
		n.must[k] = v
	}
	for k, v := range st.may {
		n.may[k] = v
	}
	return n
}

// join folds other into st: must intersects (max age), may unions (min
// age). Returns whether st changed.
func (st *absState) join(other *absState) bool {
	changed := false
	for l, age := range st.must {
		oage, ok := other.must[l]
		if !ok {
			delete(st.must, l)
			changed = true
			continue
		}
		if oage > age {
			st.must[l] = oage
			changed = true
		}
	}
	for l, oage := range other.may {
		age, ok := st.may[l]
		if !ok || oage < age {
			st.may[l] = oage
			changed = true
		}
	}
	if other.mayTop && !st.mayTop {
		st.mayTop = true
		changed = true
	}
	return changed
}

func (st *absState) equal(other *absState) bool {
	if st.mayTop != other.mayTop || len(st.must) != len(other.must) || len(st.may) != len(other.may) {
		return false
	}
	for l, age := range st.must {
		if o, ok := other.must[l]; !ok || o != age {
			return false
		}
	}
	for l, age := range st.may {
		if o, ok := other.may[l]; !ok || o != age {
			return false
		}
	}
	return true
}

// clobber forgets everything the must side knows and makes every line
// possibly resident — the transfer of an access whose address (or
// footprint) is statically unknown.
func (st *absState) clobber() {
	st.must = map[uint64]int{}
	st.mayTop = true
}

// applyAccess classifies one memory access against st and applies its
// transfer.
func (a *Analysis) applyAccess(st *absState, op memOp) Class {
	if op.lines == nil {
		st.clobber()
		return Unclassified
	}
	hit := true
	for _, l := range op.lines {
		if _, ok := st.must[l]; !ok {
			hit = false
			break
		}
	}
	miss := !st.mayTop
	if miss {
		for _, l := range op.lines {
			if _, ok := st.may[l]; ok {
				miss = false
				break
			}
		}
	}
	if !hit {
		// The access may fill one of the candidate lines into every level;
		// the fill's L3 victim is back-invalidated everywhere, so every
		// must line that may share a set with a candidate ages by one fill
		// (and is evicted once its age reaches Ways).
		for o, age := range st.must {
			for _, l := range op.lines {
				if a.mayConflict(o, l) {
					age++
					if age >= a.geo.Ways {
						delete(st.must, o)
					} else {
						st.must[o] = age
					}
					break
				}
			}
		}
		// A certain miss of a single known line is a certain fill: may
		// lines certainly sharing its set age toward guaranteed eviction.
		if miss && op.definite && len(op.lines) == 1 {
			l := op.lines[0]
			for o, age := range st.may {
				if a.certainConflict(o, l) {
					age++
					if age >= a.geo.Ways {
						delete(st.may, o)
					} else {
						st.may[o] = age
					}
				}
			}
		}
		if op.definite {
			// Every line of a definite access is resident afterwards — at
			// *some* level, hence (inclusion) in the L3, but with a stamp
			// that may be as stale as the set allows: the hierarchy never
			// refreshes L3 stamps on L1/L2 hits, so insertion age is
			// Ways-1, one conflicting fill short of eviction.
			entry := a.geo.Ways - 1
			for _, l := range op.lines {
				if cur, ok := st.must[l]; !ok || cur > entry {
					st.must[l] = entry
				}
			}
		}
	}
	for _, l := range op.lines {
		if cur, ok := st.may[l]; !ok || cur > 0 {
			st.may[l] = 0
		}
	}
	switch {
	case hit:
		return AlwaysHit
	case miss:
		return AlwaysMiss
	}
	return Unclassified
}

// transferInstr applies one instruction's cache effect to st and returns
// the classification of memory instructions (Unclassified otherwise).
func (a *Analysis) transferInstr(st *absState, in *ir.Instr, ops map[*ir.Instr]memOp) Class {
	switch in.Op {
	case ir.OpLoad, ir.OpStore:
		return a.applyAccess(st, ops[in])
	case ir.OpHavoc:
		// The key read spans a runtime-resolved scratch buffer the
		// memory-region pass does not record; treat it as unknown traffic.
		st.clobber()
	case ir.OpCall:
		a.applyCall(st, in.Callee)
	}
	return Unclassified
}

// applyCall folds a callee summary into the caller state: must lines
// conflicting with anything the callee may touch are evicted, lines the
// callee guarantees resident at return are added, and the callee's
// footprint becomes possibly resident.
func (a *Analysis) applyCall(st *absState, callee *ir.Func) {
	cs := a.fns[callee]
	if cs == nil || cs.footUnknown {
		st.clobber()
		return
	}
	for o := range st.must {
		for l := range cs.footprint {
			if a.mayConflict(o, l) {
				delete(st.must, o)
				break
			}
		}
	}
	// exitMust is computed from an empty entry cache, so it holds in any
	// calling context; a line known both ways keeps the tighter age.
	for l, age := range cs.exitMust {
		if cur, ok := st.must[l]; !ok || cur > age {
			st.must[l] = age
		}
	}
	for l := range cs.footprint {
		if cur, ok := st.may[l]; !ok || cur > 0 {
			st.may[l] = 0
		}
	}
}

// funcCost carries one function's classification summary and cost bounds.
type funcCost struct {
	facts *analysis.Facts
	stats Stats

	// Interprocedural summary.
	footprint   map[uint64]bool // lines the function (incl. callees) may access
	footUnknown bool            // some access has no line-level lowering
	exitMust    map[uint64]int  // lines guaranteed resident at return (empty-entry)

	// Cost bounds (see bounds.go).
	suffix     map[*ir.Block][]bound
	blockBound map[*ir.Block]bound
	residual   map[*ir.Block]bound
	outerLoop  map[*ir.Block]*analysis.Loop
	funcBound  bound
	acyclic    uint64
}

// analyzeFunc runs the fixpoint over one function (entry state: empty
// must, cold may) and derives classifications plus the interprocedural
// summary.
func (a *Analysis) analyzeFunc(f *ir.Func, fa *analysis.Facts, ops map[*ir.Instr]memOp) *funcCost {
	fc := &funcCost{
		facts:      fa,
		footprint:  map[uint64]bool{},
		exitMust:   map[uint64]int{},
		suffix:     map[*ir.Block][]bound{},
		blockBound: map[*ir.Block]bound{},
		residual:   map[*ir.Block]bound{},
		outerLoop:  map[*ir.Block]*analysis.Loop{},
	}
	// The footprint (and its unknown flag) is flow-insensitive.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				op := ops[in]
				if op.lines == nil {
					fc.footUnknown = true
				}
				for _, l := range op.lines {
					fc.footprint[l] = true
				}
			case ir.OpHavoc:
				fc.footUnknown = true
			case ir.OpCall:
				cs := a.fns[in.Callee]
				if cs == nil || cs.footUnknown {
					fc.footUnknown = true
				} else {
					for l := range cs.footprint {
						fc.footprint[l] = true
					}
				}
			}
		}
	}

	// Fixpoint: repeated RPO sweeps until the block in-states stabilize.
	// Both domains are finite and the transfer is monotone, so this
	// terminates; the sweep cap is a safety net that degrades to "no
	// knowledge" rather than looping.
	in := make([]*absState, len(f.Blocks))
	entry := f.Entry()
	in[entry.Index] = newAbsState()
	maxSweeps := 4*len(f.Blocks) + 8
	converged := false
	for sweep := 0; sweep < maxSweeps && !converged; sweep++ {
		a.Iterations++
		converged = true
		for _, b := range fa.RPO {
			if in[b.Index] == nil {
				continue
			}
			out := in[b.Index].clone()
			for _, instr := range b.Instrs {
				a.transferInstr(out, instr, ops)
			}
			for _, s := range b.Succs() {
				if in[s.Index] == nil {
					in[s.Index] = out.clone()
					converged = false
				} else if joinInto(in[s.Index], out) {
					converged = false
				}
			}
		}
	}
	if !converged {
		for i := range in {
			if in[i] != nil {
				in[i] = newAbsState()
				in[i].mayTop = true
			}
		}
	}

	// Final pass: classify every memory instruction against its converged
	// pre-state and join the must cache at every return.
	sawRet := false
	for _, b := range fa.RPO {
		st := in[b.Index].clone()
		for _, instr := range b.Instrs {
			cl := a.transferInstr(st, instr, ops)
			if instr.Op == ir.OpLoad || instr.Op == ir.OpStore {
				a.class[instr] = cl
				fc.stats.Mem++
				switch cl {
				case AlwaysHit:
					fc.stats.AlwaysHit++
				case AlwaysMiss:
					fc.stats.AlwaysMiss++
				default:
					fc.stats.Unclassified++
				}
			}
			if instr.Op == ir.OpRet {
				if !sawRet {
					sawRet = true
					for l, age := range st.must {
						fc.exitMust[l] = age
					}
				} else {
					for l, age := range fc.exitMust {
						oage, ok := st.must[l]
						if !ok {
							delete(fc.exitMust, l)
						} else if oage > age {
							fc.exitMust[l] = oage
						}
					}
				}
			}
		}
	}
	if !sawRet {
		fc.exitMust = map[uint64]int{}
	}
	return fc
}

// joinInto is absState.join with the receiver spelled out (kept separate
// so the fixpoint loop reads as "join predecessor out into successor in").
func joinInto(dst, src *absState) bool { return dst.join(src) }

// ClassOf returns the classification of a memory instruction
// (Unclassified for anything the analysis did not see).
func (a *Analysis) ClassOf(in *ir.Instr) Class { return a.class[in] }

// Ref returns the "fn/block/idx" reference of a classified memory
// instruction, for diagnostics.
func (a *Analysis) Ref(in *ir.Instr) string { return a.refs[in] }

// FuncStats returns the classification summary of f.
func (a *Analysis) FuncStats(f *ir.Func) Stats {
	fc := a.fns[f]
	if fc == nil {
		return Stats{}
	}
	return fc.stats
}

// FuncNames returns the analyzed function names, sorted.
func (a *Analysis) FuncNames() []string {
	names := make([]string, 0, len(a.fns))
	for f := range a.fns {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}

// Module returns the module the analysis ran over.
func (a *Analysis) Module() *ir.Module { return a.mod }

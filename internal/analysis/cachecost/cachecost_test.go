package cachecost

import (
	"testing"

	"castan/internal/analysis"
	"castan/internal/cachemodel"
	"castan/internal/ir"
	"castan/internal/obs"
)

// runOn lays out, validates, and analyzes a module.
func runOn(t *testing.T, mod *ir.Module, cfg Config) *Analysis {
	t.Helper()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	mf := analysis.ForModule(mod)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	return Run(mf, mr, cfg)
}

// loadsOf returns the load instructions of a function in program order.
func loadsOf(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestRepeatedLoadAlwaysHit(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 64, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	addr := fb.GlobalAddr(g)
	fb.Load(addr, 0, 8)
	fb.Load(addr, 0, 8)
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{})
	loads := loadsOf(m.Funcs["nf_process"])
	if got := a.ClassOf(loads[0]); got != AlwaysMiss {
		t.Errorf("first load = %v, want always-miss", got)
	}
	if got := a.ClassOf(loads[1]); got != AlwaysHit {
		t.Errorf("second load = %v, want always-hit", got)
	}
	st := a.FuncStats(m.Funcs["nf_process"])
	if st.Mem != 2 || st.AlwaysHit != 1 || st.AlwaysMiss != 1 || st.Unclassified != 0 {
		t.Errorf("stats = %+v", st)
	}
	if r := st.UnclassifiedRatio(); r != 0 {
		t.Errorf("unclassified ratio = %v, want 0", r)
	}
}

// A possibly-conflicting fill must evict a must line: the hierarchy's L3
// never refreshes stamps on upper-level hits, so one fill can push any
// resident line out.
func TestConflictingFillEvictsMust(t *testing.T) {
	m := ir.NewModule("t")
	ga := m.AddGlobal("a", 64, 64)
	gb := m.AddGlobal("b", 64, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pa := fb.GlobalAddr(ga)
	pb := fb.GlobalAddr(gb)
	fb.Load(pa, 0, 8)
	fb.Load(pb, 0, 8)
	fb.Load(pa, 0, 8)
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{Geometry: Geometry{Ways: 8, LineBytes: 64}})
	loads := loadsOf(m.Funcs["nf_process"])
	if got := a.ClassOf(loads[2]); got != Unclassified {
		t.Errorf("re-load after conflicting fill = %v, want unclassified", got)
	}
}

// A discovered cache model that separates two lines into different
// contention sets proves they cannot evict each other.
func TestModelSeparationPreservesHit(t *testing.T) {
	m := ir.NewModule("t")
	ga := m.AddGlobal("a", 64, 64)
	gb := m.AddGlobal("b", 64, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pa := fb.GlobalAddr(ga)
	pb := fb.GlobalAddr(gb)
	fb.Load(pa, 0, 8)
	fb.Load(pb, 0, 8)
	fb.Load(pa, 0, 8)
	fb.RetImm(0)
	fb.Seal()
	m.Layout()

	model := &cachemodel.Model{
		Assoc:     8,
		LineBytes: 64,
		Sets: []cachemodel.ContentionSet{
			{Addrs: []uint64{ga.Addr}},
			{Addrs: []uint64{gb.Addr}},
		},
	}
	model.Reindex()
	a := runOn(t, m, Config{Model: model})
	loads := loadsOf(m.Funcs["nf_process"])
	if got := a.ClassOf(loads[2]); got != AlwaysHit {
		t.Errorf("re-load with model separation = %v, want always-hit", got)
	}
}

// OpHavoc reads a runtime-resolved key region the memory-region pass does
// not record; it must clobber all must knowledge.
func TestHavocClobbersMust(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 64, 64)
	hid := m.AddHash("h", 16, func(b []byte) uint64 { return uint64(len(b)) })
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	addr := fb.GlobalAddr(g)
	fb.Load(addr, 0, 8)
	fb.Havoc(hid, addr, 8)
	fb.Load(addr, 0, 8)
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{})
	loads := loadsOf(m.Funcs["nf_process"])
	if got := a.ClassOf(loads[1]); got != Unclassified {
		t.Errorf("load after havoc = %v, want unclassified", got)
	}
}

// A callee's exit-must facts (computed from an empty entry cache) hold in
// any calling context and flow back to the caller.
func TestCallSummaryPropagatesExitMust(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 64, 64)
	m.Layout()
	cb := m.NewFunc("lookup", 0)
	fb := m.NewFunc("nf_process", 2)
	caddr := cb.GlobalAddr(g)
	cb.Load(caddr, 0, 8)
	cb.RetImm(0)
	callee := cb.Seal()
	fb.Call(callee)
	addr := fb.GlobalAddr(g)
	fb.Load(addr, 0, 8)
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{})
	loads := loadsOf(m.Funcs["nf_process"])
	if got := a.ClassOf(loads[0]); got != AlwaysHit {
		t.Errorf("caller load after callee touch = %v, want always-hit", got)
	}
}

func TestBoundsCountedLoop(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 1024, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	addr := fb.GlobalAddr(g)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(8)) }, func() {
		fb.Load(fb.Add(addr, fb.ShlImm(i.R(), 6)), 0, 8)
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{})
	f := m.Funcs["nf_process"]
	fbound, ok := a.FuncBound(f)
	if !ok || fbound == 0 {
		t.Fatalf("FuncBound = %d,%v, want finite nonzero", fbound, ok)
	}
	acy := a.AcyclicPathBound(f)
	if acy == 0 || acy > fbound {
		t.Errorf("AcyclicPathBound = %d, want in (0, %d]", acy, fbound)
	}
	// The 8 loop iterations each pay at least one memory access; the
	// bound must cover 8 misses.
	if fbound < 8*(4+206) {
		t.Errorf("FuncBound = %d, want >= %d (8 misses)", fbound, 8*(4+206))
	}
	// Residual at the function entry covers the whole execution.
	r, ok := a.Residual(f.Entry(), 0)
	if !ok || r != fbound {
		t.Errorf("Residual(entry,0) = %d,%v, want %d,true", r, ok, fbound)
	}
	wb, ok := a.WorkloadBound("nf_process", 3)
	if !ok || wb != 3*fbound {
		t.Errorf("WorkloadBound(3) = %d,%v, want %d,true", wb, ok, 3*fbound)
	}
}

func TestBoundsUnboundedLoop(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 64, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	addr := fb.GlobalAddr(g)
	n := fb.Param(1)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), n) }, func() {
		fb.Load(addr, 0, 8)
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, m, Config{})
	f := m.Funcs["nf_process"]
	if _, ok := a.FuncBound(f); ok {
		t.Error("FuncBound bounded for data-dependent loop")
	}
	if acy := a.AcyclicPathBound(f); acy == 0 {
		t.Error("AcyclicPathBound = 0, want finite nonzero")
	}
	if _, ok := a.WorkloadBound("nf_process", 2); ok {
		t.Error("WorkloadBound bounded for data-dependent loop")
	}
	// Inside the loop the residual has no static bound either.
	for _, b := range f.Blocks {
		if l := a.fns[f].outerLoop[b]; l != nil {
			if _, ok := a.Residual(b, 0); ok {
				t.Errorf("Residual(%s) bounded inside unbounded loop", b.Name)
			}
		}
	}
}

func TestFixpointIterationsCounter(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("tbl", 64, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	addr := fb.GlobalAddr(g)
	fb.Load(addr, 0, 8)
	fb.RetImm(0)
	fb.Seal()
	m.Layout()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mf := analysis.ForModule(m)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	rec := obs.New(obs.NewFakeClock(0))
	a := Run(mf, mr, Config{Obs: rec})
	if a.Iterations == 0 {
		t.Error("Iterations = 0 after a fixpoint run")
	}
	snap := rec.Snapshot()
	if snap.Counters["cachecost.fixpoint_iterations"] != a.Iterations {
		t.Errorf("counter = %d, want %d",
			snap.Counters["cachecost.fixpoint_iterations"], a.Iterations)
	}
}

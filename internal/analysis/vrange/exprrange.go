package vrange

// Abstract evaluation and demand-driven inversion of solver
// expressions under the interval × congruence domain. The symbex
// engine's constraints are expr trees over byte variables; reusing the
// IR transfer functions on them lets the solver layer "range-tighten" a
// query before searching: collect per-variable ranges from the atomic
// constraints (pins and bound checks), abstractly evaluate compound
// expressions under those ranges (EvalExpr), and — the constructive
// direction — push a demanded output value backward through an
// expression tree to concrete leaf assignments (SolveByRange). The NF
// address computations are exactly the invertible shape: constant base
// plus hash times constant stride, masked to a cache line, with the
// hash a disjoint-mask concatenation of havoc bytes.

import (
	"castan/internal/expr"
	"castan/internal/ir"
)

// ByteRange is the full domain of one solver variable (packet byte or
// havoc output byte).
func ByteRange() VRange { return Range(0, 255) }

// binOpOf maps solver expression arithmetic onto the IR binop the
// shared transfer functions are written against.
func binOpOf(op expr.Op) (ir.BinOp, bool) {
	switch op {
	case expr.OpAdd:
		return ir.Add, true
	case expr.OpSub:
		return ir.Sub, true
	case expr.OpMul:
		return ir.Mul, true
	case expr.OpUDiv:
		return ir.UDiv, true
	case expr.OpURem:
		return ir.URem, true
	case expr.OpAnd:
		return ir.And, true
	case expr.OpOr:
		return ir.Or, true
	case expr.OpXor:
		return ir.Xor, true
	case expr.OpShl:
		return ir.Shl, true
	case expr.OpLshr:
		return ir.Lshr, true
	}
	return 0, false
}

// predOf maps solver comparison nodes onto IR predicates.
func predOf(op expr.Op) (ir.Pred, bool) {
	switch op {
	case expr.OpEq:
		return ir.Eq, true
	case expr.OpNe:
		return ir.Ne, true
	case expr.OpUlt:
		return ir.Ult, true
	case expr.OpUle:
		return ir.Ule, true
	}
	return 0, false
}

// EvalExpr abstractly evaluates e under per-variable ranges supplied by
// env (nil entries default to the byte domain). The result is an
// over-approximation: every concrete valuation of the variables inside
// their ranges evaluates e to a value inside the returned range.
func EvalExpr(e *expr.Expr, env func(expr.VarID) VRange) VRange {
	switch e.Op {
	case expr.OpConst:
		return Single(e.Val)
	case expr.OpVar:
		return env(e.Var)
	case expr.OpIte:
		c := EvalExpr(e.A, env)
		if c.IsBot() {
			return bot()
		}
		if c.NeverZero() {
			return EvalExpr(e.B, env)
		}
		if c.AlwaysZero() {
			return EvalExpr(e.C, env)
		}
		return join(EvalExpr(e.B, env), EvalExpr(e.C, env))
	}
	if p, ok := predOf(e.Op); ok {
		return transferCmp(p, EvalExpr(e.A, env), EvalExpr(e.B, env))
	}
	if b, ok := binOpOf(e.Op); ok {
		return transferBin(b, EvalExpr(e.A, env), EvalExpr(e.B, env))
	}
	return Full()
}

// atomRange pattern-matches one constraint (asserted true) against the
// forms that directly bound a single variable: v == c, v < c, v <= c,
// c < v, c <= v, v != c. ok=false means the constraint is not atomic.
func atomRange(t *expr.Expr) (expr.VarID, VRange, bool) {
	a, b := t.A, t.B
	if a == nil || b == nil {
		return 0, VRange{}, false
	}
	// Normalize const-on-the-left comparisons to var-on-the-left.
	varLeft := a.Op == expr.OpVar && b.Op == expr.OpConst
	varRight := b.Op == expr.OpVar && a.Op == expr.OpConst
	if !varLeft && !varRight {
		return 0, VRange{}, false
	}
	switch t.Op {
	case expr.OpEq:
		if varLeft {
			return a.Var, Single(b.Val), true
		}
		return b.Var, Single(a.Val), true
	case expr.OpNe:
		if varLeft {
			return a.Var, excludePoint(ByteRange(), b.Val), true
		}
		return b.Var, excludePoint(ByteRange(), a.Val), true
	case expr.OpUlt:
		if varLeft {
			if b.Val == 0 {
				return a.Var, bot(), true // v < 0 is unsatisfiable
			}
			return a.Var, Range(0, b.Val-1), true
		}
		if a.Val == ^uint64(0) {
			return b.Var, bot(), true
		}
		return b.Var, VRange{Lo: a.Val + 1, Hi: ^uint64(0), Stride: 1}, true
	case expr.OpUle:
		if varLeft {
			return a.Var, Range(0, b.Val), true
		}
		return b.Var, VRange{Lo: a.Val, Hi: ^uint64(0), Stride: 1}, true
	}
	return 0, VRange{}, false
}

// tightenRounds bounds constraint-to-range propagation; pins are direct
// equalities, so one round collects them and a second lets derived
// bounds interact. More rounds buy nothing on the observed workloads.
const tightenRounds = 2

// tightenEnv runs bounded atom-to-range propagation over the
// constraint set and returns the per-variable environment. ok=false
// means some variable's range emptied (the set is unsatisfiable).
func tightenEnv(constraints []*expr.Expr) (map[expr.VarID]VRange, bool) {
	env := map[expr.VarID]VRange{}
	get := func(v expr.VarID) VRange {
		if r, ok := env[v]; ok {
			return r
		}
		return ByteRange()
	}
	for round := 0; round < tightenRounds; round++ {
		changed := false
		for _, c := range constraints {
			t := expr.Truth(c)
			v, r, ok := atomRange(t)
			if !ok {
				continue
			}
			nr := intersect(get(v), r)
			if nr.IsBot() {
				return nil, false
			}
			if nr != get(v) {
				env[v] = nr
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return env, true
}

// rsolver carries the state of one demand-driven inversion attempt: a
// partial assignment being built plus the atom-tightened ranges of the
// still-free variables.
type rsolver struct {
	asg map[expr.VarID]uint64
	env map[expr.VarID]VRange
}

func (s *rsolver) rng(v expr.VarID) VRange {
	if val, ok := s.asg[v]; ok {
		return Single(val)
	}
	if r, ok := s.env[v]; ok {
		return r
	}
	return ByteRange()
}

func (s *rsolver) fwd(e *expr.Expr) VRange { return EvalExpr(e, s.rng) }

// invert demands that e evaluate to exactly t and pushes that demand
// down the tree, assigning leaf variables. It only handles the shapes
// the NF address computations produce (constant-offset arithmetic,
// masking, disjoint-mask concatenation, constant shifts); anything
// else fails conservatively. All arithmetic inversions are exact mod
// 2^64 or rejected; the caller re-verifies the final assignment by
// concrete evaluation regardless.
func (s *rsolver) invert(e *expr.Expr, t uint64) bool {
	if e == nil {
		return false
	}
	switch e.Op {
	case expr.OpConst:
		return e.Val == t
	case expr.OpVar:
		if val, ok := s.asg[e.Var]; ok {
			return val == t
		}
		if !s.rng(e.Var).Contains(t) || t&^e.Mask() != 0 {
			return false
		}
		s.asg[e.Var] = t
		return true
	}
	a, b := e.A, e.B
	if a == nil || b == nil {
		return false
	}
	aConst := a.Op == expr.OpConst
	bConst := b.Op == expr.OpConst
	switch e.Op {
	case expr.OpAdd: // a + c == t  <=>  a == t - c (mod 2^64)
		if bConst {
			return s.invert(a, t-b.Val)
		}
		if aConst {
			return s.invert(b, t-a.Val)
		}
	case expr.OpSub:
		if bConst { // a - c == t  <=>  a == t + c
			return s.invert(a, t+b.Val)
		}
		if aConst { // c - b == t  <=>  b == c - t
			return s.invert(b, a.Val-t)
		}
	case expr.OpMul:
		c, x := a, b
		if bConst {
			c, x = b, a
		} else if !aConst {
			return false
		}
		if c.Val == 0 {
			return t == 0
		}
		if t%c.Val != 0 {
			return false // ignores wrap-around solutions: conservative
		}
		return s.invert(x, t/c.Val)
	case expr.OpAnd:
		c, x := a, b
		if bConst {
			c, x = b, a
		} else if !aConst {
			return false
		}
		if t&^c.Val != 0 {
			return false
		}
		// x & mask == t: pick x = t (zeros the free bits).
		return s.invert(x, t)
	case expr.OpOr:
		if aConst || bConst {
			c, x := a, b
			if bConst {
				c, x = b, a
			}
			if c.Val&^t != 0 {
				return false
			}
			// x | c == t: pick x = t &^ c (minimal).
			return s.invert(x, t&^c.Val)
		}
		// Disjoint-mask concatenation (how hash words are assembled
		// from shifted bytes): split the demand by operand mask.
		ma, mb := a.Mask(), b.Mask()
		if ma&mb != 0 || t&^(ma|mb) != 0 {
			return false
		}
		return s.invert(a, t&ma) && s.invert(b, t&mb)
	case expr.OpXor:
		if bConst {
			return s.invert(a, t^b.Val)
		}
		if aConst {
			return s.invert(b, t^a.Val)
		}
	case expr.OpShl:
		if bConst {
			k := b.Val
			if k >= 64 {
				return t == 0
			}
			if t<<(64-k)>>(64-k) != 0 && k > 0 {
				return false // demand has bits below the shift
			}
			return s.invert(a, t>>k)
		}
	case expr.OpLshr:
		if bConst {
			k := b.Val
			if k >= 64 {
				return t == 0
			}
			if k > 0 && t>>(64-k) != 0 {
				return false // demand has bits a>>k cannot reach
			}
			return s.invert(a, t<<k) // low k bits chosen zero
		}
	}
	return false
}

// constraint demands that the truth-folded constraint t hold and
// dispatches on the top-level comparison: equalities invert directly;
// inequalities concretize a target from the forward range intersected
// with the demanded interval, then invert the equality.
func (s *rsolver) constraint(t *expr.Expr) bool {
	a, b := t.A, t.B
	if a == nil || b == nil {
		return false
	}
	aConst := a.Op == expr.OpConst
	bConst := b.Op == expr.OpConst
	pickInto := func(e *expr.Expr, want VRange) bool {
		tgt := intersect(s.fwd(e), want)
		if tgt.IsBot() {
			return false
		}
		return s.invert(e, tgt.Lo)
	}
	switch t.Op {
	case expr.OpEq:
		if bConst {
			return s.invert(a, b.Val)
		}
		if aConst {
			return s.invert(b, a.Val)
		}
	case expr.OpNe:
		c, x := a, b
		if bConst {
			c, x = b, a
		} else if !aConst {
			return false
		}
		f := s.fwd(x)
		if f.IsBot() {
			return false
		}
		for _, cand := range [2]uint64{f.Lo, f.Hi} {
			if cand != c.Val {
				return s.invert(x, cand)
			}
		}
		return false
	case expr.OpUlt:
		if bConst {
			if b.Val == 0 {
				return false
			}
			return pickInto(a, Range(0, b.Val-1))
		}
		if aConst {
			if a.Val == ^uint64(0) {
				return false
			}
			return pickInto(b, VRange{Lo: a.Val + 1, Hi: ^uint64(0), Stride: 1})
		}
	case expr.OpUle:
		if bConst {
			return pickInto(a, Range(0, b.Val))
		}
		if aConst {
			return pickInto(b, VRange{Lo: a.Val, Hi: ^uint64(0), Stride: 1})
		}
	}
	return false
}

// SolveByRange attempts to construct a model for the constraint set by
// demand-driven inversion over the range domain: atomic pins tighten
// per-variable ranges, each remaining constraint's demanded value is
// pushed backward through the expression tree to the leaf variables,
// and unconstrained variables take their range minimum. The returned
// model is verified by concrete evaluation before being reported, so a
// true return is a proof of satisfiability; false means nothing was
// decided (the construction is deliberately partial). The construction
// is deterministic: every choice point picks the canonical minimum.
func SolveByRange(constraints []*expr.Expr) (map[expr.VarID]uint64, bool) {
	env, ok := tightenEnv(constraints)
	if !ok {
		return nil, false
	}
	s := &rsolver{asg: map[expr.VarID]uint64{}, env: env}
	var rest []*expr.Expr
	for _, c := range constraints {
		t := expr.Truth(c)
		if bv, ok := t.IsBool(); ok {
			if !bv {
				return nil, false
			}
			continue // constant-true: nothing to solve
		}
		if v, r, ok := atomRange(t); ok {
			nr := intersect(s.rng(v), r)
			if nr.IsBot() {
				return nil, false
			}
			if val, one := nr.IsSingleton(); one {
				s.asg[v] = val
			} else {
				s.env[v] = nr
			}
			continue
		}
		rest = append(rest, t)
	}
	for _, t := range rest {
		if !s.constraint(t) {
			return nil, false
		}
	}
	m := map[expr.VarID]uint64{}
	for _, c := range constraints {
		for _, v := range c.VarList() {
			if _, ok := m[v]; ok {
				continue
			}
			if val, ok := s.asg[v]; ok {
				m[v] = val
			} else {
				m[v] = s.rng(v).Lo
			}
		}
	}
	for _, c := range constraints {
		if c.Eval(m) == 0 {
			return nil, false
		}
	}
	return m, true
}

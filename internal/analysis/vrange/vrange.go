// Package vrange is an interprocedural value-range abstract
// interpretation over the IR: every defined value gets an interval ×
// congruence fact (v ∈ [Lo, Hi] and v ≡ Rem mod Stride) that holds on
// every concrete execution under the harness calling convention. The
// pass mirrors the taint analysis's architecture — entry hints seed the
// reachable roots, functions run caller-first with call summaries, each
// function reaches an RPO worklist fixpoint with loop widening, and a
// module-level round loop iterates until the summaries stabilize (or
// degrades to top at a hard cap).
//
// Consumers act only on the lattice's definite points: a branch whose
// condition range excludes zero (or is exactly zero) is statically
// decided, so symbex takes it concretely instead of forking and
// querying; irlint reports the never-taken edge and any block no
// feasible edge reaches. Everything else is a plain range fact.
package vrange

import (
	"math/bits"

	"castan/internal/analysis"
	"castan/internal/ir"
)

// VRange is one value fact: an unsigned interval [Lo, Hi] (Lo <= Hi;
// wrapping results widen to the full interval rather than wrap) plus a
// congruence — Stride == 0 means the value is exactly Rem, Stride == 1
// carries no congruence information, Stride s > 1 means v ≡ Rem (mod s).
// The bottom element ("no execution reaches this value yet") is
// represented by Lo > Hi and only ever appears inside the fixpoint.
type VRange struct {
	Lo, Hi uint64
	Stride uint64
	Rem    uint64
}

// Full is the top element: any 64-bit value.
func Full() VRange { return VRange{Lo: 0, Hi: ^uint64(0), Stride: 1} }

// Single is the constant v.
func Single(v uint64) VRange { return VRange{Lo: v, Hi: v, Stride: 0, Rem: v} }

// Range is the interval [lo, hi] with no congruence information.
func Range(lo, hi uint64) VRange {
	if lo == hi {
		return Single(lo)
	}
	return VRange{Lo: lo, Hi: hi, Stride: 1}
}

func bot() VRange { return VRange{Lo: 1, Hi: 0, Stride: 1} }

// IsBot reports the bottom element (no value flows here).
func (r VRange) IsBot() bool { return r.Lo > r.Hi }

// IsFull reports the top element with no congruence information.
func (r VRange) IsFull() bool {
	return r.Lo == 0 && r.Hi == ^uint64(0) && r.Stride == 1
}

// IsSingleton reports whether the fact pins the value to one constant.
func (r VRange) IsSingleton() (uint64, bool) {
	if !r.IsBot() && r.Lo == r.Hi {
		return r.Lo, true
	}
	return 0, false
}

// Contains reports whether v satisfies both the interval and the
// congruence component. The bottom element contains nothing.
func (r VRange) Contains(v uint64) bool {
	if r.IsBot() || v < r.Lo || v > r.Hi {
		return false
	}
	switch r.Stride {
	case 0:
		return v == r.Rem
	case 1:
		return true
	default:
		return v%r.Stride == r.Rem
	}
}

// NeverZero reports whether the fact proves the value is nonzero on
// every execution.
func (r VRange) NeverZero() bool {
	if r.IsBot() {
		return false
	}
	if r.Lo > 0 {
		return true
	}
	// 0 ≡ Rem (mod s) iff Rem == 0, so a nonzero remainder excludes 0.
	return r.Stride != 1 && r.Rem != 0
}

// AlwaysZero reports whether the fact proves the value is zero on every
// execution.
func (r VRange) AlwaysZero() bool { return !r.IsBot() && r.Lo == 0 && r.Hi == 0 }

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalize reconciles the two components: singletons become exact, and
// the interval endpoints snap inward to the nearest congruent values.
// A contradiction between sound components cannot happen; if the snap
// empties the interval anyway, congruence is dropped rather than
// fabricating bottom.
func normalize(r VRange) VRange {
	if r.IsBot() {
		return bot()
	}
	if r.Stride == 0 {
		return VRange{Lo: r.Rem, Hi: r.Rem, Stride: 0, Rem: r.Rem}
	}
	if r.Lo == r.Hi {
		return Single(r.Lo)
	}
	if r.Stride > 1 {
		r.Rem %= r.Stride
		lo, hi := r.Lo, r.Hi
		if d := (r.Stride + r.Rem - lo%r.Stride) % r.Stride; d > 0 {
			if lo > ^uint64(0)-d {
				return Range(r.Lo, r.Hi)
			}
			lo += d
		}
		hi -= (r.Stride + hi%r.Stride - r.Rem) % r.Stride
		if lo > hi || hi > r.Hi {
			return Range(r.Lo, r.Hi)
		}
		if lo == hi {
			return Single(lo)
		}
		r.Lo, r.Hi = lo, hi
	}
	return r
}

// join is the lattice least upper bound.
func join(a, b VRange) VRange {
	if a.IsBot() {
		return b
	}
	if b.IsBot() {
		return a
	}
	out := VRange{Lo: min64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi)}
	out.Stride, out.Rem = joinCong(a, b)
	return normalize(out)
}

// joinCong joins the congruence components: the coarsest congruence both
// sides satisfy, which is gcd(sa, sb, |ra-rb|) with stride 0 acting as
// "exact" (gcd identity).
func joinCong(a, b VRange) (uint64, uint64) {
	d := a.Rem - b.Rem
	if b.Rem > a.Rem {
		d = b.Rem - a.Rem
	}
	g := gcd(gcd(a.Stride, b.Stride), d)
	if g == 0 {
		return 0, a.Rem // both exact and equal
	}
	if g == 1 {
		return 1, 0
	}
	return g, a.Rem % g
}

// widen jumps changed interval bounds to the extremes so loop fixpoints
// terminate; the congruence component descends a divisor chain on its
// own and needs no widening.
func widen(old, next VRange) VRange {
	if old.IsBot() {
		return next
	}
	if next.IsBot() {
		return old
	}
	out := join(old, next)
	if out.Lo < old.Lo {
		out.Lo = 0
	}
	if out.Hi > old.Hi {
		out.Hi = ^uint64(0)
	}
	return normalize(out)
}

// intersect meets the interval components, keeping a's congruence (any
// value in the meet satisfies both constraint sets, and keeping one
// congruence is sound). Used only for branch refinement.
func intersect(a, b VRange) VRange {
	if a.IsBot() || b.IsBot() {
		return bot()
	}
	lo, hi := max64(a.Lo, b.Lo), min64(a.Hi, b.Hi)
	if lo > hi {
		return bot()
	}
	return normalize(VRange{Lo: lo, Hi: hi, Stride: a.Stride, Rem: a.Rem})
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ceilMask returns the all-ones value covering every bit position of v
// (the tightest 2^k - 1 with v <= 2^k - 1).
func ceilMask(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return ^uint64(0) >> uint(bits.LeadingZeros64(v))
}

// transferBin is the per-BinOp transfer function. Exact × exact defers
// to the IR's total concrete semantics so the abstraction can never
// disagree with the interpreter or the symbolic engine.
func transferBin(op ir.BinOp, a, b VRange) VRange {
	if a.IsBot() || b.IsBot() {
		return bot()
	}
	if va, ok := a.IsSingleton(); ok {
		if vb, ok := b.IsSingleton(); ok {
			return Single(op.Eval(va, vb))
		}
	}
	switch op {
	case ir.Add:
		lo, carryLo := bits.Add64(a.Lo, b.Lo, 0)
		hi, carryHi := bits.Add64(a.Hi, b.Hi, 0)
		s, r := addCong(a, b)
		if carryLo != 0 || carryHi != 0 {
			// Wrapped: the interval is gone, but a power-of-two stride
			// divides 2^64 and survives the wrap.
			return wrapCong(s, r)
		}
		return normalize(VRange{Lo: lo, Hi: hi, Stride: s, Rem: r})
	case ir.Sub:
		if b.Hi > a.Lo {
			s, r := subCong(a, b)
			return wrapCong(s, r)
		}
		s, r := subCong(a, b)
		return normalize(VRange{Lo: a.Lo - b.Hi, Hi: a.Hi - b.Lo, Stride: s, Rem: r})
	case ir.Mul:
		if c, ok := b.IsSingleton(); ok {
			return mulConst(a, c)
		}
		if c, ok := a.IsSingleton(); ok {
			return mulConst(b, c)
		}
		hiHi, hiLo := bits.Mul64(a.Hi, b.Hi)
		if hiHi != 0 {
			return Full()
		}
		loHi, loLo := bits.Mul64(a.Lo, b.Lo)
		_ = loHi // cannot overflow when the Hi product did not
		return Range(loLo, hiLo)
	case ir.UDiv:
		if c, ok := b.IsSingleton(); ok {
			if c == 0 {
				return Single(0) // x/0 = 0 by IR semantics
			}
			return Range(a.Lo/c, a.Hi/c)
		}
		// Divisor >= 1 shrinks, divisor 0 yields 0.
		return Range(0, a.Hi)
	case ir.URem:
		if c, ok := b.IsSingleton(); ok {
			if c == 0 {
				return a // x%0 = x by IR semantics
			}
			if a.Hi < c {
				return a // already reduced
			}
			return Range(0, c-1)
		}
		return Range(0, max64(a.Hi, b.Hi))
	case ir.And:
		out := Range(0, min64(a.Hi, b.Hi))
		// A constant mask forces the result to a multiple of its lowest
		// set bit — the alignment fact index-masking relies on.
		if c, ok := b.IsSingleton(); ok && c != 0 {
			out.Stride, out.Rem = c&^(c-1), 0
		} else if c, ok := a.IsSingleton(); ok && c != 0 {
			out.Stride, out.Rem = c&^(c-1), 0
		}
		return normalize(out)
	case ir.Or:
		return Range(max64(a.Lo, b.Lo), ceilMask(a.Hi|b.Hi))
	case ir.Xor:
		return Range(0, ceilMask(a.Hi|b.Hi))
	case ir.Shl:
		if k, ok := b.IsSingleton(); ok {
			if k >= 64 {
				return Single(0)
			}
			if a.Hi>>(64-k) != 0 {
				// Wraps; the result is still a multiple of 2^k.
				return wrapCong(uint64(1)<<k, 0)
			}
			return normalize(VRange{Lo: a.Lo << k, Hi: a.Hi << k, Stride: uint64(1) << k, Rem: 0})
		}
		return Full()
	case ir.Lshr:
		if k, ok := b.IsSingleton(); ok {
			if k >= 64 {
				return Single(0)
			}
			return Range(a.Lo>>k, a.Hi>>k)
		}
		return Range(0, a.Hi)
	}
	return Full()
}

// addCong / subCong combine congruences treating stride 0 as exact.
func addCong(a, b VRange) (uint64, uint64) {
	g := gcd(a.Stride, b.Stride)
	if g == 0 {
		return 0, a.Rem + b.Rem
	}
	if g == 1 {
		return 1, 0
	}
	return g, (a.Rem%g + b.Rem%g) % g
}

func subCong(a, b VRange) (uint64, uint64) {
	g := gcd(a.Stride, b.Stride)
	if g == 0 {
		return 0, a.Rem - b.Rem
	}
	if g == 1 {
		return 1, 0
	}
	return g, (g + a.Rem%g - b.Rem%g) % g
}

// wrapCong is the fact surviving a mod-2^64 wrap: only strides dividing
// 2^64 (powers of two) remain valid.
func wrapCong(s, r uint64) VRange {
	if s != 0 && s&(s-1) == 0 && s > 1 {
		return normalize(VRange{Lo: 0, Hi: ^uint64(0), Stride: s, Rem: r % s})
	}
	return Full()
}

// mulConst multiplies a range by a constant.
func mulConst(a VRange, c uint64) VRange {
	if c == 0 {
		return Single(0)
	}
	if c == 1 {
		return a
	}
	hiHi, hiLo := bits.Mul64(a.Hi, c)
	// x ≡ r (mod s) ⟹ x·c ≡ r·c (mod s·c); stride 1 scales to stride c.
	s, r := uint64(1), uint64(0)
	if sh, sl := bits.Mul64(max64(a.Stride, 1), c); sh == 0 {
		s, r = sl, (a.Rem*c)%sl
	}
	if hiHi != 0 {
		// Wrapped: keep a power-of-two stride if c supplies one.
		if p := c &^ (c - 1); p > 1 {
			g := p
			if s > 1 {
				g = gcd(s, p)
				if g <= 1 {
					g = p
				}
			}
			return wrapCong(g, 0)
		}
		return Full()
	}
	return normalize(VRange{Lo: a.Lo * c, Hi: hiLo, Stride: s, Rem: r})
}

// transferCmp evaluates a predicate over two ranges: a definite 0 or 1
// when the ranges decide it, [0,1] otherwise. Congruence disjointness
// (different residues modulo a common divisor) also refutes equality.
func transferCmp(p ir.Pred, a, b VRange) VRange {
	if a.IsBot() || b.IsBot() {
		return bot()
	}
	if va, ok := a.IsSingleton(); ok {
		if vb, ok := b.IsSingleton(); ok {
			return Single(p.Eval(va, vb))
		}
	}
	disjoint := a.Hi < b.Lo || b.Hi < a.Lo
	if !disjoint && a.Stride > 1 && b.Stride > 1 {
		if g := gcd(a.Stride, b.Stride); g > 1 && a.Rem%g != b.Rem%g {
			disjoint = true
		}
	}
	switch p {
	case ir.Eq:
		if disjoint {
			return Single(0)
		}
	case ir.Ne:
		if disjoint {
			return Single(1)
		}
	case ir.Ult:
		if a.Hi < b.Lo {
			return Single(1)
		}
		if a.Lo >= b.Hi {
			return Single(0)
		}
	case ir.Ule:
		if a.Hi <= b.Lo {
			return Single(1)
		}
		if a.Lo > b.Hi {
			return Single(0)
		}
	case ir.Ugt:
		if a.Lo > b.Hi {
			return Single(1)
		}
		if a.Hi <= b.Lo {
			return Single(0)
		}
	case ir.Uge:
		if a.Lo >= b.Hi {
			return Single(1)
		}
		if a.Hi < b.Lo {
			return Single(0)
		}
	}
	return Range(0, 1)
}

// loadResult is the width fact for a load: size bytes assemble to at
// most 2^(8*size) - 1.
func loadResult(size uint8) VRange {
	if size >= 8 {
		return Full()
	}
	return Range(0, uint64(1)<<(8*uint(size))-1)
}

const (
	widenAfter  = 4   // in-state joins per block before widening kicks in
	maxRounds   = 48  // module-level fixpoint cap before degrading to top
	maxFnPasses = 512 // worklist pops per block; exceeding degrades to top
)

// Config tunes the analysis.
type Config struct {
	// EntryHints seeds parameter ranges for root functions (function
	// name -> per-parameter fact). Functions absent from the map are
	// only analyzed if reachable from a hinted root.
	EntryHints map[string][]VRange
}

// NFEntryRanges is the harness calling convention for NF modules (see
// DESIGN.md decision 7): nf_process(pktAddr = ir.PacketBase exactly,
// pktLen ∈ [0, ir.PacketSlot]). Every consumer in the repo — the
// concrete interpreter, the testbed, and the symbolic engine — calls
// the entry with the packet at the fixed base.
func NFEntryRanges() map[string][]VRange {
	return map[string][]VRange{
		"nf_process": {Single(ir.PacketBase), Range(0, ir.PacketSlot)},
	}
}

// Analysis is the result of Run.
type Analysis struct {
	// Rounds is how many module-level fixpoint rounds ran; Capped is set
	// when a fixpoint cap was hit and every fact degraded to top.
	Rounds int
	Capped bool

	overflow bool // per-function worklist cap tripped

	mf    *analysis.ModuleFacts
	cfg   Config
	order []*ir.Func

	params  map[*ir.Func][]VRange
	rets    map[*ir.Func]VRange
	instr   map[*ir.Instr]VRange // joined fact per defining instruction
	condRng map[*ir.Instr]VRange // OpCondBr -> condition range at the branch
	blockIn map[*ir.Func][][]VRange
	reached map[*ir.Func]map[int]bool // block indexes with a feasible in-edge
	pdoms   map[*ir.Func][]int
}

// Run computes value ranges for every function reachable from the
// hinted roots.
func Run(mf *analysis.ModuleFacts, cfg Config) *Analysis {
	a := &Analysis{
		mf:      mf,
		cfg:     cfg,
		params:  map[*ir.Func][]VRange{},
		rets:    map[*ir.Func]VRange{},
		instr:   map[*ir.Instr]VRange{},
		condRng: map[*ir.Instr]VRange{},
		blockIn: map[*ir.Func][][]VRange{},
		reached: map[*ir.Func]map[int]bool{},
		pdoms:   map[*ir.Func][]int{},
	}

	roots := map[*ir.Func]bool{}
	for name, hints := range cfg.EntryHints {
		f := mf.Mod.Funcs[name]
		if f == nil {
			continue
		}
		roots[f] = true
		ps := make([]VRange, f.NumParams)
		for i := range ps {
			if i < len(hints) {
				ps[i] = hints[i]
			} else {
				ps[i] = Full()
			}
		}
		a.params[f] = ps
	}
	if len(roots) == 0 {
		return a
	}

	reachable := map[*ir.Func]bool{}
	var mark func(f *ir.Func)
	mark = func(f *ir.Func) {
		if reachable[f] {
			return
		}
		reachable[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					mark(in.Callee)
				}
			}
		}
	}
	for f := range roots {
		mark(f)
	}
	for _, f := range analysis.CallerFirstOrder(mf) {
		if reachable[f] {
			a.order = append(a.order, f)
		}
	}

	for a.Rounds = 1; ; a.Rounds++ {
		changed := false
		for _, f := range a.order {
			if a.analyzeFunc(f) {
				changed = true
			}
		}
		if !changed && !a.overflow {
			break
		}
		if a.overflow || a.Rounds >= maxRounds {
			a.degradeToTop()
			break
		}
	}
	a.finalPass()
	return a
}

// degradeToTop abandons precision when the module fixpoint refuses to
// settle: every fact becomes top, so consumers decide nothing.
func (a *Analysis) degradeToTop() {
	a.Capped = true
	for in := range a.instr {
		a.instr[in] = Full()
	}
	for in := range a.condRng {
		a.condRng[in] = Full()
	}
	for _, f := range a.order {
		r := map[int]bool{}
		for _, b := range f.Blocks {
			r[b.Index] = true
		}
		a.reached[f] = r
	}
}

// analyzeFunc runs the intraprocedural worklist fixpoint and reports
// whether any module-level fact (call params, return summaries, per
// instruction records) changed.
func (a *Analysis) analyzeFunc(f *ir.Func) bool {
	fa := a.mf.Funcs[f]
	ps, ok := a.params[f]
	if !ok {
		return false // no call site reached it yet this round
	}
	n := len(f.Blocks)
	in := a.blockIn[f]
	if in == nil {
		in = make([][]VRange, n)
		a.blockIn[f] = in
	}
	entryState := make([]VRange, f.NumRegs)
	zero := Single(0) // non-param registers start at zero (interp semantics)
	for i := range entryState {
		if i < len(ps) {
			entryState[i] = ps[i]
		} else {
			entryState[i] = zero
		}
	}
	visits := make([]int, n)
	entry := f.Entry()
	changedIn := func(bi int, st []VRange) bool {
		if in[bi] == nil {
			in[bi] = cloneState(st)
			return true
		}
		ch := false
		wide := visits[bi] >= widenAfter
		for i, r := range st {
			var nr VRange
			if wide {
				nr = widen(in[bi][i], r)
			} else {
				nr = join(in[bi][i], r)
			}
			if nr != in[bi][i] {
				in[bi][i] = nr
				ch = true
			}
		}
		return ch
	}
	// Seed with the entry plus every block reached in a prior round:
	// call summaries may have changed since, altering a block's
	// transfer without touching its in-state.
	worklist := []int{entry.Index}
	queued := make([]bool, n)
	pops := make([]int, n)
	queued[entry.Index] = true
	changedIn(entry.Index, entryState)
	for bi := range in {
		if in[bi] != nil && !queued[bi] {
			queued[bi] = true
			worklist = append(worklist, bi)
		}
	}
	moduleChanged := false
	for len(worklist) > 0 {
		// Pop the block earliest in RPO for fast convergence.
		best := 0
		for i := 1; i < len(worklist); i++ {
			if fa.RPONum[worklist[i]] < fa.RPONum[worklist[best]] {
				best = i
			}
		}
		bi := worklist[best]
		worklist = append(worklist[:best], worklist[best+1:]...)
		queued[bi] = false
		pops[bi]++
		if pops[bi] > maxFnPasses {
			// Widening guarantees this cannot fire on monotone updates;
			// if it does, the run is suspect — drop all precision rather
			// than risk an unsound partial fixpoint.
			a.overflow = true
			return moduleChanged
		}
		visits[bi]++
		b := f.Blocks[bi]
		st := cloneState(in[bi])
		if a.execBlock(f, b, st, false) {
			moduleChanged = true
		}
		term := b.Terminator()
		if term == nil {
			continue
		}
		push := func(succ *ir.Block, out []VRange) {
			if changedIn(succ.Index, out) && !queued[succ.Index] {
				queued[succ.Index] = true
				worklist = append(worklist, succ.Index)
			}
		}
		switch term.Op {
		case ir.OpBr:
			push(term.Blk0, st)
		case ir.OpCondBr:
			cond := st[term.A]
			if !cond.IsBot() {
				if cond.NeverZero() {
					push(term.Blk0, refineState(st, b, term, true))
					break
				}
				if cond.AlwaysZero() {
					push(term.Blk1, refineState(st, b, term, false))
					break
				}
			}
			if t := refineState(st, b, term, true); t != nil {
				push(term.Blk0, t)
			}
			if fstate := refineState(st, b, term, false); fstate != nil {
				push(term.Blk1, fstate)
			}
		}
	}
	// Record pass with the settled in-states: joins per-instruction
	// facts and module summaries, and reports whether any changed.
	for _, bi := range rpoOrder(fa) {
		if in[bi] == nil {
			continue
		}
		st := cloneState(in[bi])
		if a.execBlock(f, f.Blocks[bi], st, true) {
			moduleChanged = true
		}
	}
	return moduleChanged
}

func rpoOrder(fa *analysis.Facts) []int {
	out := make([]int, 0, len(fa.RPO))
	for _, b := range fa.RPO {
		out = append(out, b.Index)
	}
	return out
}

func cloneState(s []VRange) []VRange {
	return append([]VRange(nil), s...)
}

// refineState narrows the branch block's out-state along one edge using
// the comparison that produced the condition, when it is the last def of
// the condition register in the block and its operands are not redefined
// afterwards. Returns nil when the refinement proves the edge dead.
func refineState(st []VRange, b *ir.Block, term *ir.Instr, takeTrue bool) []VRange {
	var cmp *ir.Instr
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in == term {
			continue
		}
		if in.Def() == term.A {
			if in.Op == ir.OpCmp {
				cmp = in
				// Operands must still hold the compared values.
				for j := i + 1; j < len(b.Instrs); j++ {
					d := b.Instrs[j].Def()
					if d != ir.NoReg && (d == in.A || d == in.B) {
						cmp = nil
						break
					}
				}
			}
			break
		}
	}
	if cmp == nil {
		return st
	}
	p := cmp.Pred
	if !takeTrue {
		p = negatePred(p)
	}
	a, bb := st[cmp.A], st[cmp.B]
	na, nb := refinePred(p, a, bb)
	if na.IsBot() || nb.IsBot() {
		return nil
	}
	if na == a && nb == bb {
		return st
	}
	out := cloneState(st)
	out[cmp.A], out[cmp.B] = na, nb
	return out
}

func negatePred(p ir.Pred) ir.Pred {
	switch p {
	case ir.Eq:
		return ir.Ne
	case ir.Ne:
		return ir.Eq
	case ir.Ult:
		return ir.Uge
	case ir.Ule:
		return ir.Ugt
	case ir.Ugt:
		return ir.Ule
	case ir.Uge:
		return ir.Ult
	}
	return p
}

// refinePred tightens both operand ranges under "a <p> b holds".
func refinePred(p ir.Pred, a, b VRange) (VRange, VRange) {
	switch p {
	case ir.Eq:
		return intersect(a, b), intersect(b, a)
	case ir.Ne:
		if v, ok := b.IsSingleton(); ok {
			a = excludePoint(a, v)
		}
		if v, ok := a.IsSingleton(); ok {
			b = excludePoint(b, v)
		}
		return a, b
	case ir.Ult:
		if b.Hi == 0 {
			return bot(), bot()
		}
		return intersect(a, Range(0, b.Hi-1)), intersect(b, Range(minInc(a.Lo), ^uint64(0)))
	case ir.Ule:
		return intersect(a, Range(0, b.Hi)), intersect(b, Range(a.Lo, ^uint64(0)))
	case ir.Ugt:
		if a.Hi == 0 {
			return bot(), bot()
		}
		return intersect(a, Range(minInc(b.Lo), ^uint64(0))), intersect(b, Range(0, a.Hi-1))
	case ir.Uge:
		return intersect(a, Range(b.Lo, ^uint64(0))), intersect(b, Range(0, a.Hi))
	}
	return a, b
}

func minInc(v uint64) uint64 {
	if v == ^uint64(0) {
		return v
	}
	return v + 1
}

// excludePoint trims v off an interval endpoint (interior exclusions are
// not representable).
func excludePoint(r VRange, v uint64) VRange {
	if val, ok := r.IsSingleton(); ok && val == v {
		return bot()
	}
	if r.Lo == v {
		return normalize(VRange{Lo: v + 1, Hi: r.Hi, Stride: r.Stride, Rem: r.Rem})
	}
	if r.Hi == v {
		return normalize(VRange{Lo: r.Lo, Hi: v - 1, Stride: r.Stride, Rem: r.Rem})
	}
	return r
}

// execBlock interprets one block over st. In record mode it joins the
// per-instruction facts and module summaries, reporting changes;
// otherwise it only transforms st.
func (a *Analysis) execBlock(f *ir.Func, b *ir.Block, st []VRange, record bool) bool {
	changed := false
	recordFact := func(in *ir.Instr, r VRange) {
		if !record {
			return
		}
		old, ok := a.instr[in]
		if !ok {
			a.instr[in] = r
			changed = true
			return
		}
		if nr := join(old, r); nr != old {
			a.instr[in] = nr
			changed = true
		}
	}
	get := func(r ir.Reg) VRange { return st[r] }
	set := func(in *ir.Instr, r VRange) {
		if in.Dst != ir.NoReg {
			st[in.Dst] = r
		}
		recordFact(in, r)
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.OpConst:
			set(in, Single(in.Imm))
		case ir.OpMov:
			set(in, get(in.A))
		case ir.OpBin:
			set(in, transferBin(in.Bin, get(in.A), get(in.B)))
		case ir.OpCmp:
			set(in, transferCmp(in.Pred, get(in.A), get(in.B)))
		case ir.OpSelect:
			c := get(in.A)
			switch {
			case c.IsBot():
				set(in, bot())
			case c.NeverZero():
				set(in, get(in.B))
			case c.AlwaysZero():
				set(in, get(in.C))
			default:
				set(in, join(get(in.B), get(in.C)))
			}
		case ir.OpLoad:
			set(in, loadResult(in.Size))
		case ir.OpStore:
			// Memory is untracked; loads already return full width.
		case ir.OpAlloc:
			// Both the interpreter and symbex bump-allocate from the heap
			// base with 64-byte alignment.
			set(in, normalize(VRange{Lo: ir.HeapBase, Hi: ^uint64(0), Stride: 64, Rem: 0}))
		case ir.OpHavoc:
			h := a.mf.Mod.Hashes[in.HashID]
			if h.Bits >= 64 {
				set(in, Full())
			} else {
				set(in, Range(0, uint64(1)<<uint(h.Bits)-1))
			}
		case ir.OpCall:
			callee := in.Callee
			args := make([]VRange, callee.NumParams)
			for i := range args {
				if i < len(in.Args) {
					args[i] = get(in.Args[i])
				} else {
					args[i] = Full()
				}
			}
			if record {
				if a.joinParams(callee, args) {
					changed = true
				}
			}
			ret, ok := a.rets[callee]
			if !ok {
				ret = bot() // callee not summarized yet: nothing returned
			}
			if in.Dst != ir.NoReg {
				st[in.Dst] = ret
			}
			recordFact(in, ret)
		case ir.OpCondBr:
			if record {
				c := get(in.A)
				old, ok := a.condRng[in]
				if !ok {
					a.condRng[in] = c
					changed = true
				} else if nr := join(old, c); nr != old {
					a.condRng[in] = nr
					changed = true
				}
			}
		case ir.OpRet:
			if record {
				r := Single(0)
				if in.A != ir.NoReg {
					r = get(in.A)
				}
				old, ok := a.rets[f]
				if !ok {
					a.rets[f] = r
					changed = true
				} else if nr := join(old, r); nr != old {
					a.rets[f] = nr
					changed = true
				}
			}
		}
	}
	return changed
}

// joinParams folds call-site argument ranges into the callee's summary.
func (a *Analysis) joinParams(callee *ir.Func, args []VRange) bool {
	ps, ok := a.params[callee]
	if !ok {
		a.params[callee] = cloneState(args)
		return true
	}
	changed := false
	for i := range ps {
		if nr := join(ps[i], args[i]); nr != ps[i] {
			ps[i] = nr
			changed = true
		}
	}
	return changed
}

// finalPass recomputes, from the settled facts, which blocks have a
// feasible in-edge — the reachability irlint's unreachable-block
// findings report.
func (a *Analysis) finalPass() {
	if a.Capped {
		return
	}
	for _, f := range a.order {
		in := a.blockIn[f]
		r := map[int]bool{}
		if in != nil {
			for bi, st := range in {
				if st != nil {
					r[bi] = true
				}
			}
		}
		a.reached[f] = r
	}
}

package vrange

import (
	"fmt"

	"castan/internal/analysis"
	"castan/internal/ir"
)

// Of returns the joined fact for a value-defining instruction, or false
// when the instruction was never reached (or defines nothing).
func (a *Analysis) Of(in *ir.Instr) (VRange, bool) {
	r, ok := a.instr[in]
	if !ok || r.IsBot() {
		return VRange{}, false
	}
	return r, true
}

// BranchDecided reports whether the analysis statically decides an
// OpCondBr: takeTrue is the side every execution takes. Branches the
// fixpoint never reached (bottom condition) are not decided — symbex
// must not act on vacuous facts.
func (a *Analysis) BranchDecided(in *ir.Instr) (takeTrue bool, ok bool) {
	c, found := a.condRng[in]
	if !found || c.IsBot() {
		return false, false
	}
	if c.NeverZero() {
		return true, true
	}
	if c.AlwaysZero() {
		return false, true
	}
	return false, false
}

// Summary aggregates the analysis outcome for reports and telemetry.
type Summary struct {
	Funcs             int  `json:"funcs"`
	Rounds            int  `json:"rounds"`
	Capped            bool `json:"capped"`
	Facts             int  `json:"facts"`
	Singletons        int  `json:"singletons"`
	DecidedBranches   int  `json:"decided_branches"`
	DeadEdges         int  `json:"dead_edges"`
	UnreachableBlocks int  `json:"unreachable_blocks"`
}

// Stats summarizes the run.
func (a *Analysis) Stats() Summary {
	s := Summary{Funcs: len(a.order), Rounds: a.Rounds, Capped: a.Capped}
	for _, r := range a.instr {
		if r.IsBot() {
			continue
		}
		s.Facts++
		if _, ok := r.IsSingleton(); ok {
			s.Singletons++
		}
	}
	for in := range a.condRng {
		if _, ok := a.BranchDecided(in); ok {
			s.DecidedBranches++
			s.DeadEdges++
		}
	}
	for _, f := range a.order {
		reached := a.reached[f]
		for _, b := range f.Blocks {
			if !reached[b.Index] {
				s.UnreachableBlocks++
			}
		}
	}
	return s
}

// Findings reports statically-dead branch edges and unreachable blocks
// with source coordinates, in deterministic (caller-first, block-index)
// order. Severity is informational: a dead edge is a precision win for
// the engine, not a module defect.
func (a *Analysis) Findings() []analysis.Finding {
	var out []analysis.Finding
	for _, f := range a.order {
		reached := a.reached[f]
		for _, b := range f.Blocks {
			if !reached[b.Index] {
				out = append(out, analysis.Finding{
					Pass:     "vrange",
					Sev:      analysis.SevInfo,
					Fn:       f,
					Block:    b,
					InstrIdx: -1,
					Msg:      "block unreachable: no feasible in-edge under value-range analysis",
				})
				continue
			}
			for idx, in := range b.Instrs {
				if in.Op != ir.OpCondBr {
					continue
				}
				take, ok := a.BranchDecided(in)
				if !ok {
					continue
				}
				dead, live := in.Blk1, in.Blk0
				if !take {
					dead, live = in.Blk0, in.Blk1
				}
				out = append(out, analysis.Finding{
					Pass:     "vrange",
					Sev:      analysis.SevInfo,
					Fn:       f,
					Block:    b,
					InstrIdx: idx,
					Msg: fmt.Sprintf("branch statically decided: edge to %s is dead, always falls to %s (cond %s)",
						dead.Name, live.Name, a.condRng[in]),
				})
			}
		}
	}
	return out
}

// String renders a fact compactly: "=k" for constants, "[lo,hi]" plain
// intervals, "[lo,hi]≡r(mod s)" with congruence.
func (r VRange) String() string {
	if r.IsBot() {
		return "⊥"
	}
	if v, ok := r.IsSingleton(); ok {
		return fmt.Sprintf("=%#x", v)
	}
	if r.Stride > 1 {
		return fmt.Sprintf("[%#x,%#x]≡%d(mod %d)", r.Lo, r.Hi, r.Rem, r.Stride)
	}
	return fmt.Sprintf("[%#x,%#x]", r.Lo, r.Hi)
}

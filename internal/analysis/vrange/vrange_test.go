package vrange

import (
	"testing"

	"castan/internal/analysis"
	"castan/internal/ir"
)

func TestDomainOps(t *testing.T) {
	if !Single(5).Contains(5) || Single(5).Contains(6) {
		t.Error("singleton containment")
	}
	r := VRange{Lo: 0, Hi: 100, Stride: 8, Rem: 4}
	if !r.Contains(12) || r.Contains(13) || r.Contains(104) {
		t.Error("congruence containment")
	}
	j := join(Single(8), Single(20))
	if !j.Contains(8) || !j.Contains(20) || j.Stride != 12 || j.Rem != 8 {
		t.Errorf("join congruence: got %v", j)
	}
	if j.Contains(9) {
		t.Error("join must keep the mod-12 congruence")
	}
	if g := join(bot(), Single(7)); g != Single(7) {
		t.Errorf("join with bottom: got %v", g)
	}
	w := widen(Range(0, 10), Range(0, 11))
	if w.Hi != ^uint64(0) {
		t.Errorf("widen must blow the growing bound: got %v", w)
	}
	n := normalize(VRange{Lo: 3, Hi: 30, Stride: 8, Rem: 4})
	if n.Lo != 4 || n.Hi != 28 {
		t.Errorf("normalize must snap endpoints to the congruence: got %v", n)
	}
}

func TestTransferBin(t *testing.T) {
	cases := []struct {
		op       ir.BinOp
		a, b     VRange
		in       []uint64 // values that must be contained
		out      []uint64 // values that must not be
		wantFull bool
	}{
		{op: ir.Add, a: Range(0, 10), b: Single(5), in: []uint64{5, 15}, out: []uint64{4, 16}},
		{op: ir.Add, a: Full(), b: Full(), wantFull: true},
		{op: ir.Sub, a: Range(20, 30), b: Single(5), in: []uint64{15, 25}, out: []uint64{14, 26}},
		{op: ir.Sub, a: Single(0), b: Range(0, 1), in: []uint64{0, ^uint64(0)}},
		{op: ir.Mul, a: Range(0, 10), b: Single(8), in: []uint64{0, 80, 8}, out: []uint64{81, 4}},
		{op: ir.UDiv, a: Range(10, 100), b: Single(10), in: []uint64{1, 10}, out: []uint64{0, 11}},
		{op: ir.UDiv, a: Range(10, 100), b: Single(0), in: []uint64{0}, out: []uint64{1}},
		{op: ir.URem, a: Full(), b: Single(16), in: []uint64{0, 15}, out: []uint64{16}},
		{op: ir.And, a: Full(), b: Single(0xf8), in: []uint64{0, 8, 0xf8}, out: []uint64{1, 7}},
		{op: ir.Or, a: Range(0, 0xf), b: Range(0, 0xf0), in: []uint64{0xff, 0}, out: []uint64{0x100}},
		{op: ir.Xor, a: Range(0, 0xf), b: Range(0, 0xf0), in: []uint64{0xff, 0}, out: []uint64{0x100}},
		{op: ir.Shl, a: Range(0, 7), b: Single(3), in: []uint64{0, 56, 8}, out: []uint64{57, 4}},
		{op: ir.Shl, a: Range(0, 7), b: Single(64), in: []uint64{0}, out: []uint64{1}},
		{op: ir.Lshr, a: Range(0, 0xff), b: Single(4), in: []uint64{0, 0xf}, out: []uint64{0x10}},
	}
	for _, c := range cases {
		got := transferBin(c.op, c.a, c.b)
		if c.wantFull && !got.IsFull() {
			t.Errorf("%v(%v,%v) = %v, want full", c.op, c.a, c.b, got)
		}
		for _, v := range c.in {
			if !got.Contains(v) {
				t.Errorf("%v(%v,%v) = %v must contain %#x", c.op, c.a, c.b, got, v)
			}
		}
		for _, v := range c.out {
			if got.Contains(v) {
				t.Errorf("%v(%v,%v) = %v must exclude %#x", c.op, c.a, c.b, got, v)
			}
		}
	}
	// Exhaustive cross-check of every binop against concrete semantics
	// over small operand ranges.
	ops := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.UDiv, ir.URem, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Lshr}
	ra, rb := Range(3, 9), VRange{Lo: 0, Hi: 64, Stride: 4, Rem: 0}
	for _, op := range ops {
		got := transferBin(op, ra, rb)
		for va := ra.Lo; va <= ra.Hi; va++ {
			for vb := rb.Lo; vb <= rb.Hi; vb += 4 {
				if cv := op.Eval(va, vb); !got.Contains(cv) {
					t.Fatalf("%v: %v op %v → %#x outside %v", op, va, vb, cv, got)
				}
			}
		}
	}
}

func TestTransferCmp(t *testing.T) {
	if got := transferCmp(ir.Eq, Range(0, 5), Range(10, 20)); got != Single(0) {
		t.Errorf("disjoint Eq: got %v", got)
	}
	// Same interval, disjoint congruences: 4k vs 4k+1 can never be equal.
	a := VRange{Lo: 0, Hi: 100, Stride: 4, Rem: 0}
	b := VRange{Lo: 0, Hi: 100, Stride: 4, Rem: 1}
	if got := transferCmp(ir.Eq, a, b); got != Single(0) {
		t.Errorf("congruence-disjoint Eq: got %v", got)
	}
	if got := transferCmp(ir.Ne, a, b); got != Single(1) {
		t.Errorf("congruence-disjoint Ne: got %v", got)
	}
	if got := transferCmp(ir.Ult, Range(0, 5), Range(10, 20)); got != Single(1) {
		t.Errorf("ordered Ult: got %v", got)
	}
	if got := transferCmp(ir.Ult, Range(10, 20), Range(0, 5)); got != Single(0) {
		t.Errorf("inverted Ult: got %v", got)
	}
	if got := transferCmp(ir.Ult, Range(0, 15), Range(10, 20)); got != Range(0, 1) {
		t.Errorf("overlapping Ult: got %v", got)
	}
}

// buildDeadBranch constructs a module where `len & 0xff < 0x900` is a
// tautology (len ≤ 0x800 by the entry hint... the mask already bounds it
// to 0xff) and an `if x > 0xfff` with x ∈ [0,0xff] is impossible.
func buildDeadBranch(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("deadbranch")
	g := m.AddGlobal("tbl", 256, 64)
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	acc := fb.Var(fb.Load(pkt, 0, 1)) // one byte: [0, 0xff]
	// Always-true guard: a byte is always < 0x100.
	fb.If(fb.CmpUlt(acc.R(), fb.Const(0x100)), func() {
		acc.Set(fb.AddImm(acc.R(), 1))
	}, func() {
		// dead
		acc.Set(fb.Load(fb.GlobalAddr(g), 0, 8))
	})
	fb.Ret(acc.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return m
}

func TestDeadEdgeDetection(t *testing.T) {
	m := buildDeadBranch(t)
	mf := analysis.ForModule(m)
	a := Run(mf, Config{EntryHints: NFEntryRanges()})
	s := a.Stats()
	if s.DecidedBranches != 1 {
		t.Fatalf("want 1 decided branch, got %+v", s)
	}
	if s.UnreachableBlocks != 1 {
		t.Fatalf("want 1 unreachable block (the dead else), got %+v", s)
	}
	fs := a.Findings()
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (dead edge + unreachable block), got %d: %v", len(fs), fs)
	}
	for _, f := range fs {
		if f.Pass != "vrange" || f.Sev != analysis.SevInfo {
			t.Errorf("finding pass/sev: %v", f)
		}
	}
	// The decided branch must be decided "true" (byte < 0x100 always).
	decided := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCondBr {
					continue
				}
				if take, ok := a.BranchDecided(in); ok {
					decided++
					if !take {
						t.Errorf("branch decided false, want true")
					}
				}
			}
		}
	}
	if decided != 1 {
		t.Errorf("BranchDecided count = %d", decided)
	}
}

func TestEntryConvention(t *testing.T) {
	m := ir.NewModule("entry")
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	ln := fb.Param(1)
	sum := fb.Add(pkt, ln)
	fb.Ret(sum)
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	mf := analysis.ForModule(m)
	a := Run(mf, Config{EntryHints: NFEntryRanges()})
	var addInstr *ir.Instr
	for _, b := range m.Funcs["nf_process"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.Bin == ir.Add {
				addInstr = in
			}
		}
	}
	r, ok := a.Of(addInstr)
	if !ok {
		t.Fatal("no fact for pkt+len")
	}
	if r.Lo != ir.PacketBase || r.Hi != ir.PacketBase+ir.PacketSlot {
		t.Errorf("pkt+len range: got %v", r)
	}
}

func TestNoHintsNoOp(t *testing.T) {
	m := ir.NewModule("nohints")
	m.Layout()
	fb := m.NewFunc("nf_process", 2)
	fb.Ret(fb.Const(0))
	fb.Seal()
	mf := analysis.ForModule(m)
	a := Run(mf, Config{})
	if s := a.Stats(); s.Funcs != 0 || s.Facts != 0 {
		t.Errorf("hint-less run must analyze nothing: %+v", s)
	}
	if _, ok := a.BranchDecided(&ir.Instr{}); ok {
		t.Error("unknown instruction must not be decided")
	}
}

package vrange

import (
	"math/rand"
	"testing"

	"castan/internal/analysis"
	"castan/internal/interp"
	"castan/internal/ir"
)

// genModule builds a random small NF-shaped module exercising every
// transfer function the range analysis implements: constant and
// packet-dependent arithmetic across all binops, masked indexing,
// counted loops (widening), packet-data branches (refinement), helper
// calls (summaries), heap allocs, hash havocs, and selects. Every loop
// is counted, so concrete execution always terminates.
func genModule(r *rand.Rand) *ir.Module {
	m := ir.NewModule("vrangeprop")
	nglob := 1 + r.Intn(3)
	globals := make([]*ir.Global, nglob)
	for i := range globals {
		size := uint64(64 * (1 + r.Intn(8))) // 64..512 bytes
		globals[i] = m.AddGlobal(string(rune('a'+i)), size, 64)
	}
	hid := m.AddHash("h", 16, func(b []byte) uint64 {
		var s uint64 = 14695981039346656037
		for _, c := range b {
			s = (s ^ uint64(c)) * 1099511628211
		}
		return s
	})
	m.Layout()

	// Helper reached with several argument ranges; the analysis must
	// join its summary over every call site.
	hb := m.NewFunc("mix", 1)
	hp := hb.Param(0)
	hacc := hb.Var(hb.AddImm(hb.MulImm(hp, 2654435761), 17))
	hb.If(hb.CmpUlt(hb.AndImm(hacc.R(), 0xff), hb.Const(128)), func() {
		hacc.Set(hb.Xor(hacc.R(), hb.Const(0x5bd1e995)))
	}, nil)
	hb.Ret(hacc.R())
	helper := hb.Seal()

	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	acc := fb.Var(fb.Load(pkt, uint64(r.Intn(40)), 2))
	kc := fb.VarImm(uint64(r.Intn(1 << 20)))

	var stmt func(depth int)
	stmt = func(depth int) {
		g := globals[r.Intn(nglob)]
		base := fb.GlobalAddr(g)
		switch r.Intn(13) {
		case 0: // constant-address global load
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			acc.Set(fb.Add(acc.R(), fb.Load(base, off, 8)))
		case 1: // global store (memory untracked; loads stay width-ranged)
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			fb.Store(base, off, acc.R(), 8)
		case 2: // packet byte load
			acc.Set(fb.Add(acc.R(), fb.Load(pkt, uint64(r.Intn(40)), 1)))
		case 3: // interval-address load: masked index (And-stride fact)
			mask := (g.Size - 1) &^ 7
			idx := fb.AndImm(acc.R(), mask)
			acc.Set(fb.Add(acc.R(), fb.Load(fb.Add(base, idx), 0, 8)))
		case 4: // counted loop: widening must still contain every iterate
			if depth >= 2 {
				return
			}
			trip := uint64(2 + r.Intn(3))
			i := fb.VarImm(0)
			fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(trip)) }, func() {
				stmt(depth + 1)
				i.Set(fb.AddImm(i.R(), 1))
			})
		case 5: // branch on packet-derived data: refinement on both edges
			if depth >= 3 {
				return
			}
			cond := fb.CmpUlt(fb.AndImm(acc.R(), 0xff), fb.Const(uint64(r.Intn(256))))
			fb.If(cond, func() { stmt(depth + 1) }, func() { stmt(depth + 1) })
		case 6: // branch on a constant-evolving value: may be decided
			if depth >= 3 {
				return
			}
			cond := fb.CmpUlt(fb.AndImm(kc.R(), 0xff), fb.Const(uint64(r.Intn(256))))
			fb.If(cond, func() { stmt(depth + 1) }, nil)
		case 7: // havoc: result bounded by the hash width
			acc.Set(fb.Add(acc.R(), fb.Havoc(hid, base, 8)))
		case 8: // helper call joins ranges across sites
			if r.Intn(2) == 0 {
				acc.Set(fb.Call(helper, acc.R()))
			} else {
				kc.Set(fb.Call(helper, kc.R()))
			}
		case 9: // heap alloc, store, load back
			buf := fb.AllocImm(uint64(64 * (1 + r.Intn(2))))
			fb.Store(buf, 0, acc.R(), 8)
			acc.Set(fb.Add(acc.R(), fb.Load(buf, 0, 8)))
		case 10: // select between constants
			c := fb.CmpEqImm(fb.AndImm(acc.R(), 1), 0)
			acc.Set(fb.Add(acc.R(), fb.Select(c, fb.Const(3), fb.Const(9))))
		case 11: // constant arithmetic chain (mul/add congruences)
			kc.Set(fb.AddImm(fb.MulImm(kc.R(), 1099511628211), uint64(r.Intn(1024))))
		case 12: // shifts and xor mixing
			acc.Set(fb.Xor(fb.MulImm(acc.R(), uint64(1+r.Intn(65536))), kc.R()))
		}
	}
	n := 4 + r.Intn(8)
	for s := 0; s < n; s++ {
		stmt(0)
	}
	fb.Ret(fb.Xor(acc.R(), kc.R()))
	fb.Seal()
	return m
}

// runStreams executes nf_process over the frames and records, per
// instruction, every value it defined.
func runStreams(t *testing.T, m *ir.Module, frames [][]byte) map[*ir.Instr][]uint64 {
	t.Helper()
	mach := interp.NewMachine(m)
	streams := make(map[*ir.Instr][]uint64)
	mach.Hooks.OnDef = func(_ *ir.Func, in *ir.Instr, val uint64) {
		streams[in] = append(streams[in], val)
	}
	for i, f := range frames {
		mach.Mem.WriteBytes(ir.PacketBase, f)
		if _, err := mach.Call("nf_process", ir.PacketBase, uint64(len(f))); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	return streams
}

// TestSoundnessRandomModules is the soundness gate for the range
// analysis: across random modules, the claimed range of every
// instruction must contain every value concrete execution actually
// produced for it — interval and congruence both. An instruction that
// executed but carries a bottom fact is equally a soundness violation
// (the fixpoint claimed it unreachable).
func TestSoundnessRandomModules(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	factsChecked, singletons := 0, 0
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		m := genModule(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		mf := analysis.ForModule(m)
		a := Run(mf, Config{EntryHints: NFEntryRanges()})
		if a.Capped {
			t.Fatalf("seed %d: analysis degraded to top (rounds=%d)", seed, a.Rounds)
		}

		nframes := 3 + r.Intn(4)
		frames := make([][]byte, nframes)
		rr := rand.New(rand.NewSource(int64(seed)*7919 + 1))
		for i := range frames {
			f := make([]byte, 42)
			rr.Read(f)
			frames[i] = f
		}
		streams := runStreams(t, m, frames)

		for in, vals := range streams {
			rng, ok := a.Of(in)
			if !ok {
				t.Fatalf("seed %d: %s executed %d times but has no range fact",
					seed, in.Disassemble(), len(vals))
			}
			factsChecked++
			if _, s := rng.IsSingleton(); s {
				singletons++
			}
			for i, v := range vals {
				if !rng.Contains(v) {
					t.Fatalf("seed %d: %s value %#x (step %d) outside claimed range %s",
						seed, in.Disassemble(), v, i, rng)
				}
			}
		}

		// Decided branches must agree with the concrete edge taken.
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.OpCondBr {
						continue
					}
					take, ok := a.BranchDecided(in)
					if !ok {
						continue
					}
					for i, c := range streams[condDef(b, in)] {
						if (c != 0) != take {
							t.Fatalf("seed %d: decided branch %s said take=%v but cond was %#x at step %d",
								seed, in.Disassemble(), take, c, i)
						}
					}
				}
			}
		}
	}
	if factsChecked == 0 {
		t.Error("no executed instructions carried range facts; property test is vacuous")
	}
	if singletons == 0 {
		t.Error("no singleton facts across all random modules; precision test is vacuous")
	}
}

// condDef finds the in-block def of a terminator's condition register,
// so the branch-decision check can read the concrete condition stream.
func condDef(b *ir.Block, term *ir.Instr) *ir.Instr {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if in := b.Instrs[i]; in != term && in.Def() == term.A {
			return in
		}
	}
	return nil
}

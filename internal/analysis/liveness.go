package analysis

import (
	"fmt"

	"castan/internal/ir"
)

// regSet is a bitset over a function's registers.
type regSet []uint64

func newRegSet(nregs int) regSet { return make(regSet, (nregs+63)/64) }

func (s regSet) has(r ir.Reg) bool { return s[int(r)/64]&(1<<(uint(r)%64)) != 0 }
func (s regSet) add(r ir.Reg)      { s[int(r)/64] |= 1 << (uint(r) % 64) }
func (s regSet) clone() regSet     { c := make(regSet, len(s)); copy(c, s); return c }

// or sets s |= t, reporting whether s changed.
func (s regSet) or(t regSet) bool {
	changed := false
	for i := range s {
		if nv := s[i] | t[i]; nv != s[i] {
			s[i] = nv
			changed = true
		}
	}
	return changed
}

// and sets s &= t.
func (s regSet) and(t regSet) {
	for i := range s {
		s[i] &= t[i]
	}
}

// Liveness is the per-block register liveness solution of a function:
// which registers may be read after each block boundary before being
// redefined.
type Liveness struct {
	fn *ir.Func
	// liveIn/liveOut are indexed by block index.
	liveIn, liveOut []regSet
}

// LiveIn reports whether r is live at the entry of b.
func (lv *Liveness) LiveIn(b *ir.Block, r ir.Reg) bool { return lv.liveIn[b.Index].has(r) }

// LiveOut reports whether r is live at the exit of b.
func (lv *Liveness) LiveOut(b *ir.Block, r ir.Reg) bool { return lv.liveOut[b.Index].has(r) }

// LiveInCount returns how many registers are live at the entry of b.
func (lv *Liveness) LiveInCount(b *ir.Block) int {
	n := 0
	for r := ir.Reg(0); int(r) < lv.fn.NumRegs; r++ {
		if lv.liveIn[b.Index].has(r) {
			n++
		}
	}
	return n
}

// liveness runs the classic iterative backward may-analysis:
//
//	liveOut[b] = ∪ liveIn[succ]
//	liveIn[b]  = use[b] ∪ (liveOut[b] − def[b])
//
// iterating blocks in reverse index order until a fixed point.
func liveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{
		fn:      f,
		liveIn:  make([]regSet, n),
		liveOut: make([]regSet, n),
	}
	// Per-block gen (used before defined) and kill (defined) sets.
	gen := make([]regSet, n)
	kill := make([]regSet, n)
	for _, b := range f.Blocks {
		g, k := newRegSet(f.NumRegs), newRegSet(f.NumRegs)
		for _, in := range b.Instrs {
			in.Uses(func(r ir.Reg) {
				if !k.has(r) {
					g.add(r)
				}
			})
			if d := in.Def(); d != ir.NoReg {
				k.add(d)
			}
		}
		gen[b.Index], kill[b.Index] = g, k
		lv.liveIn[b.Index] = newRegSet(f.NumRegs)
		lv.liveOut[b.Index] = newRegSet(f.NumRegs)
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.liveOut[i]
			for _, s := range b.Succs() {
				if out.or(lv.liveIn[s.Index]) {
					changed = true
				}
			}
			// in = gen ∪ (out − kill)
			in := out.clone()
			for w := range in {
				in[w] &^= kill[i][w]
				in[w] |= gen[i][w]
			}
			if lv.liveIn[i].or(in) {
				changed = true
			}
		}
	}
	return lv
}

// checkDefBeforeUse runs the forward "definitely assigned" must-analysis
// and reports every use of a register that some path reaches without a
// prior definition. Parameters are assigned at entry; all other registers
// start unassigned (the interpreter zero-fills frames, but an NF relying
// on that is a latent bug the gate must catch before symbex mis-explores
// it).
func checkDefBeforeUse(f *ir.Func, fa *Facts, rep *Report) {
	n := len(f.Blocks)
	full := newRegSet(f.NumRegs)
	for i := range full {
		full[i] = ^uint64(0)
	}
	in := make([]regSet, n)
	out := make([]regSet, n)
	for i := 0; i < n; i++ {
		// Start from ⊤ (all assigned) so the meet converges downward;
		// the entry starts from just the parameters.
		in[i] = full.clone()
		out[i] = full.clone()
	}
	entry := f.Entry()
	in[entry.Index] = newRegSet(f.NumRegs)
	for p := 0; p < f.NumParams; p++ {
		in[entry.Index].add(ir.Reg(p))
	}
	transfer := func(b *ir.Block, s regSet) regSet {
		s = s.clone()
		for _, instr := range b.Instrs {
			if d := instr.Def(); d != ir.NoReg {
				s.add(d)
			}
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fa.RPO {
			s := in[b.Index]
			if b != entry {
				s = full.clone()
				for _, p := range fa.Preds[b.Index] {
					if fa.Reachable(p) {
						s.and(out[p.Index])
					}
				}
				in[b.Index] = s
			}
			ns := transfer(b, s)
			for w := range ns {
				if ns[w] != out[b.Index][w] {
					out[b.Index] = ns
					changed = true
					break
				}
			}
		}
	}
	// Report uses not covered by the definitely-assigned set.
	for _, b := range fa.RPO {
		s := in[b.Index].clone()
		for idx, instr := range b.Instrs {
			instr.Uses(func(r ir.Reg) {
				if !s.has(r) {
					rep.add(Finding{
						Pass: "defuse", Sev: SevError,
						Fn: f, Block: b, InstrIdx: idx,
						Msg: fmt.Sprintf("use of possibly-undefined register r%d", r),
					})
				}
			})
			if d := instr.Def(); d != ir.NoReg {
				s.add(d)
			}
		}
	}
}

// checkDeadDefs reports pure computations whose result no path reads:
// Info-level, since dead code is waste, not breakage. Loads, calls,
// allocs, and havocs are excluded — they have architectural side effects
// (cache traffic, heap growth, havoc recording) that NFs use on purpose
// (the NOP's header touch, for one).
func checkDeadDefs(f *ir.Func, fa *Facts, rep *Report) {
	for _, b := range fa.RPO {
		for idx, in := range b.Instrs {
			switch in.Op {
			case ir.OpConst, ir.OpMov, ir.OpBin, ir.OpCmp, ir.OpSelect:
			default:
				continue
			}
			d := in.Def()
			if d == ir.NoReg {
				continue
			}
			// Dead iff no later instruction in the block reads d before a
			// redefinition, and — absent an in-block redefinition — d is
			// not live out of the block.
			dead, redefined := true, false
			for _, later := range b.Instrs[idx+1:] {
				read := false
				later.Uses(func(r ir.Reg) {
					if r == d {
						read = true
					}
				})
				if read {
					dead = false
					break
				}
				if later.Def() == d {
					redefined = true
					break
				}
			}
			if dead && !redefined && fa.Live.LiveOut(b, d) {
				dead = false
			}
			if dead {
				rep.add(Finding{
					Pass: "liveness", Sev: SevInfo,
					Fn: f, Block: b, InstrIdx: idx,
					Msg: fmt.Sprintf("result r%d is never read (dead definition)", d),
				})
			}
		}
	}
}

package analysis

import (
	"testing"

	"castan/internal/ir"
)

func lintMod(t *testing.T, mod *ir.Module) *Report {
	t.Helper()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	return Lint(mod, Options{NoDeadDefs: true})
}

func TestMemRegionInExtent(t *testing.T) {
	mod := ir.NewModule("inext")
	g := mod.AddGlobal("tbl", 64, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 0)
	base := fb.GlobalAddr(g)
	fb.Store(base, 56, fb.Const(7), 8) // last full word: still inside
	fb.Ret(fb.Load(base, 0, 8))
	fb.Seal()

	rep := lintMod(t, mod)
	if len(rep.Findings) != 0 {
		t.Fatalf("expected clean report, got %v", rep.Findings)
	}
}

func TestMemRegionOutOfExtent(t *testing.T) {
	mod := ir.NewModule("outext")
	g := mod.AddGlobal("tbl", 64, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 0)
	base := fb.GlobalAddr(g)
	fb.Store(base, 64, fb.Const(7), 1) // first byte past the extent
	fb.RetImm(0)
	fb.Seal()

	rep := lintMod(t, mod)
	if !rep.HasErrors() {
		t.Fatalf("expected out-of-extent error, got %v", rep.Findings)
	}
	fd := rep.Findings[0]
	if fd.Pass != "memregion" || fd.Sev != SevError {
		t.Fatalf("finding = %v, want memregion error", fd)
	}
}

func TestMemRegionMayEscape(t *testing.T) {
	mod := ir.NewModule("mayesc")
	g := mod.AddGlobal("tbl", 256, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 1)
	// A 2-byte load yields [0, 0xffff]; indexing a 256-byte table with it
	// can escape but does not have to.
	idx := fb.Load(fb.Param(0), 0, 2)
	fb.Ret(fb.Load(fb.Add(fb.GlobalAddr(g), idx), 0, 1))
	fb.Seal()

	mod.Layout()
	rep := Lint(mod, Options{
		EntryHints: map[string][]Value{"f": {PacketPtr(0)}},
		NoDeadDefs: true,
	})
	if rep.HasErrors() {
		t.Fatalf("may-escape must be a warning, not an error: %v", rep.Findings)
	}
	if rep.Count(SevWarn) != 1 {
		t.Fatalf("expected exactly one warning, got %v", rep.Findings)
	}
}

func TestMemRegionMaskedIndexStaysIn(t *testing.T) {
	mod := ir.NewModule("masked")
	g := mod.AddGlobal("ring", 1024, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 1)
	// idx & 127, scaled by 8 → offsets [0, 1016]: provably in a 1024-byte
	// region. This is the hash-ring indexing idiom.
	idx := fb.AndImm(fb.Param(0), 127)
	fb.Ret(fb.Load(fb.Add(fb.GlobalAddr(g), fb.MulImm(idx, 8)), 0, 8))
	fb.Seal()

	rep := lintMod(t, mod)
	if len(rep.Findings) != 0 {
		t.Fatalf("masked index should be provably in-extent, got %v", rep.Findings)
	}
}

func TestMemRegionURemBound(t *testing.T) {
	mod := ir.NewModule("urem")
	g := mod.AddGlobal("slots", 128, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 1)
	idx := fb.URem(fb.Param(0), fb.Const(16))
	fb.Ret(fb.Load(fb.Add(fb.GlobalAddr(g), fb.MulImm(idx, 8)), 0, 8))
	fb.Seal()

	rep := lintMod(t, mod)
	if len(rep.Findings) != 0 {
		t.Fatalf("urem-bounded index should be in-extent, got %v", rep.Findings)
	}
}

func TestMemRegionInterprocedural(t *testing.T) {
	mod := ir.NewModule("interproc")
	g := mod.AddGlobal("tbl", 64, 0)
	mod.Layout()

	cb := mod.NewFunc("callee", 1)
	cb.Store(cb.Param(0), 60, cb.Const(1), 8) // 60+8 > 64 once the pointer lands in tbl
	cb.RetImm(0)
	callee := cb.Seal()

	fb := mod.NewFunc("caller", 0)
	fb.Call(callee, fb.GlobalAddr(g))
	fb.RetImm(0)
	fb.Seal()

	rep := lintMod(t, mod)
	if !rep.HasErrors() {
		t.Fatalf("interprocedural out-of-extent store not caught: %v", rep.Findings)
	}
	var fd *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Sev == SevError {
			fd = &rep.Findings[i]
		}
	}
	if fd == nil || fd.Fn.Name != "callee" {
		t.Fatalf("error should be anchored in the callee, got %v", rep.Findings)
	}
}

func TestMemRegionHeapAllocExtent(t *testing.T) {
	mod := ir.NewModule("heap")
	fb := mod.NewFunc("f", 0)
	node := fb.AllocImm(32)
	fb.Store(node, 32, fb.Const(1), 8) // out of the 32-byte allocation
	fb.Ret(fb.Load(node, 0, 8))
	fb.Seal()

	rep := lintMod(t, mod)
	if !rep.HasErrors() {
		t.Fatalf("heap-extent escape not caught: %v", rep.Findings)
	}
}

func TestMemRegionLoopWidening(t *testing.T) {
	// A pointer walked forward in an unbounded loop must converge (via
	// widening) and classify as may-escape, not hang the fixpoint.
	mod := ir.NewModule("widen")
	g := mod.AddGlobal("buf", 4096, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 1)
	p := fb.Var(fb.GlobalAddr(g))
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Param(0)) }, func() {
		fb.Store(p.R(), 0, i.R(), 8)
		p.Set(fb.AddImm(p.R(), 8))
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.RetImm(0)
	fb.Seal()

	rep := lintMod(t, mod)
	if rep.HasErrors() {
		t.Fatalf("widened pointer should warn, not error: %v", rep.Findings)
	}
	if rep.Count(SevWarn) == 0 {
		t.Fatalf("expected a may-escape warning from the widened store")
	}
}

func TestPacketEntryHint(t *testing.T) {
	mod := ir.NewModule("pkt")
	fb := mod.NewFunc("nf_process", 2)
	// Load the IPv4 destination (offset 30 in an Ethernet frame): within
	// the packet slot under the harness hints.
	fb.Ret(fb.Load(fb.Param(0), 30, 4))
	fb.Seal()
	mod.Layout()

	rep := Lint(mod, Options{EntryHints: NFEntryHints(), NoDeadDefs: true})
	if len(rep.Findings) != 0 {
		t.Fatalf("packet header load should be clean, got %v", rep.Findings)
	}

	// Without hints, the parameter is ⊤ and the access is unclassified —
	// no findings either, but also no region attribution.
	mf := ForModule(mod)
	mr := RunMemRegions(mf, nil)
	if len(mr.Accesses) != 1 {
		t.Fatalf("expected 1 access, got %d", len(mr.Accesses))
	}
	if mr.Accesses[0].Class != AccessUnclassified {
		t.Fatalf("hint-free access should be unclassified, got %v", mr.Accesses[0].Class)
	}
}

func TestGlobalFootprints(t *testing.T) {
	mod := ir.NewModule("fp")
	g := mod.AddGlobal("tbl", 2048, 0)
	h := mod.AddGlobal("counter", 8, 0)
	mod.Layout()
	fb := mod.NewFunc("f", 0)
	base := fb.GlobalAddr(g)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(256)) }, func() {
		fb.Store(fb.Add(base, fb.MulImm(i.R(), 8)), 0, i.R(), 8)
		i.Set(fb.AddImm(i.R(), 1))
	})
	cbase := fb.GlobalAddr(h)
	fb.Store(cbase, 0, fb.Load(cbase, 0, 8), 8)
	fb.RetImm(0)
	fb.Seal()
	mod.Layout()

	mf := ForModule(mod)
	mr := RunMemRegions(mf, nil)
	fps := mr.GlobalFootprints()
	if len(fps) != 2 {
		t.Fatalf("expected 2 footprints, got %d", len(fps))
	}
	// Sorted by name: counter first.
	if fps[0].Global != h || fps[1].Global != g {
		t.Fatalf("footprints not sorted by global name")
	}
	if fps[0].InLoop {
		t.Errorf("counter access is not inside a loop")
	}
	if !fps[1].InLoop {
		t.Errorf("table accesses are inside a loop")
	}
	if fps[1].Span() != 2048 {
		t.Errorf("table span = %d, want 2048 (256 slots × 8, hull clamped to extent)", fps[1].Span())
	}
	if fps[0].Loads != 1 || fps[0].Stores != 1 {
		t.Errorf("counter loads/stores = %d/%d, want 1/1", fps[0].Loads, fps[0].Stores)
	}
}

func TestValueStringAndConstructors(t *testing.T) {
	if got := NumConst(5).String(); got != "0x5" {
		t.Errorf("NumConst(5) = %q", got)
	}
	if got := NumRange(0, 15).String(); got != "[0x0,0xf]" {
		t.Errorf("NumRange = %q", got)
	}
	v := PacketPtr(14)
	reg, lo, hi, ok := v.IsPtr()
	if !ok || reg.Kind != RegionPacket || lo != 14 || hi != 14 {
		t.Errorf("PacketPtr(14) = %v", v)
	}
	if _, _, _, ok := Top().IsPtr(); ok {
		t.Errorf("Top should not be a pointer")
	}
}

package analysis

import (
	"fmt"
	"math"
	"sort"

	"castan/internal/ir"
)

// The memory-region pass classifies every load and store to the memory
// region its address can reach — a named global, the packet slot, or a
// heap allocation site — using a base-region + offset-interval
// abstraction of the register machine, and flags accesses whose offset
// interval may (or must) escape the region's extent.
//
// The abstraction is a small value lattice per register:
//
//	⊥  <  Num[lo,hi]            (plain numbers)
//	   <  Ptr(region)[lo,hi]    (region base + byte offset)
//	   <  ⊤                     (anything: unknown pointer or number)
//
// with interval arithmetic on the usual operations (adds shift pointer
// offsets, masks bound indices, multiplies scale them), a saturating
// widening on loop back edges, and an interprocedural top-down pass that
// joins call-site argument values into callee parameters (the call graph
// is acyclic by IR validation, so one pass in caller-first topological
// order suffices).

// RegionKind distinguishes the address spaces of the IR machine model.
type RegionKind uint8

// Region kinds.
const (
	RegionGlobal RegionKind = iota
	RegionPacket
	RegionHeap
)

// String returns the kind label.
func (k RegionKind) String() string {
	switch k {
	case RegionGlobal:
		return "global"
	case RegionPacket:
		return "packet"
	case RegionHeap:
		return "heap"
	}
	return fmt.Sprintf("region(%d)", uint8(k))
}

// RegionInfo identifies one abstract memory region.
type RegionInfo struct {
	Kind   RegionKind
	Global *ir.Global // when Kind == RegionGlobal
	// Extent is the region size in bytes; 0 means statically unknown
	// (heap allocations of dynamic size, or merged heap sites).
	Extent uint64
	// Site names heap allocation sites for diagnostics.
	Site string
}

// Name renders the region for diagnostics.
func (r *RegionInfo) Name() string {
	switch r.Kind {
	case RegionGlobal:
		return "global " + r.Global.Name
	case RegionPacket:
		return "packet slot"
	case RegionHeap:
		if r.Site != "" {
			return "heap alloc @" + r.Site
		}
		return "heap"
	}
	return "?"
}

type valKind uint8

const (
	kBot valKind = iota
	kNum
	kPtr
	kTop
)

// Value is one point of the abstract value lattice. The zero Value is ⊥.
type Value struct {
	kind   valKind
	region *RegionInfo // kPtr only
	lo, hi uint64      // numeric range (kNum) or byte offset range (kPtr)
}

// Top returns the ⊤ value.
func Top() Value { return Value{kind: kTop} }

// NumConst abstracts a known constant.
func NumConst(v uint64) Value { return Value{kind: kNum, lo: v, hi: v} }

// NumRange abstracts a number within [lo, hi].
func NumRange(lo, hi uint64) Value { return Value{kind: kNum, lo: lo, hi: hi} }

// PacketPtr abstracts a pointer into the packet slot at the given offset.
func PacketPtr(off uint64) Value {
	return Value{kind: kPtr, region: packetRegion, lo: off, hi: off}
}

// GlobalPtr abstracts a pointer into g at the given offset.
func GlobalPtr(g *ir.Global, off uint64) Value {
	return Value{
		kind:   kPtr,
		region: &RegionInfo{Kind: RegionGlobal, Global: g, Extent: g.Size},
		lo:     off, hi: off,
	}
}

var packetRegion = &RegionInfo{Kind: RegionPacket, Extent: ir.PacketSlot}

// IsPtr reports whether the value is a classified pointer, returning its
// region and offset interval.
func (v Value) IsPtr() (*RegionInfo, uint64, uint64, bool) {
	if v.kind == kPtr {
		return v.region, v.lo, v.hi, true
	}
	return nil, 0, 0, false
}

func (v Value) String() string {
	switch v.kind {
	case kBot:
		return "⊥"
	case kNum:
		if v.lo == v.hi {
			return fmt.Sprintf("%#x", v.lo)
		}
		return fmt.Sprintf("[%#x,%#x]", v.lo, v.hi)
	case kPtr:
		return fmt.Sprintf("%s+[%#x,%#x]", v.region.Name(), v.lo, v.hi)
	}
	return "⊤"
}

func satAdd(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// join is the lattice join. Pointers into different heap sites merge into
// a generic (extent-unknown) heap region; a pointer joined with a number
// or with a pointer into a different named region is ⊤.
func join(a, b Value) Value {
	switch {
	case a.kind == kBot:
		return b
	case b.kind == kBot:
		return a
	case a.kind == kTop || b.kind == kTop:
		return Top()
	case a.kind == kNum && b.kind == kNum:
		return NumRange(min64(a.lo, b.lo), max64(a.hi, b.hi))
	case a.kind == kPtr && b.kind == kPtr:
		if a.region == b.region {
			return Value{kind: kPtr, region: a.region, lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
		}
		if a.region.Kind == RegionHeap && b.region.Kind == RegionHeap {
			return Value{kind: kPtr, region: genericHeap, lo: 0, hi: math.MaxUint64}
		}
		return Top()
	default:
		return Top()
	}
}

var genericHeap = &RegionInfo{Kind: RegionHeap}

// widen jumps growing intervals to their extreme so loop fixpoints
// terminate: any bound that moved since prev goes to 0 / MaxUint64.
func widen(prev, next Value) Value {
	if prev.kind != next.kind || prev.kind == kBot || prev.kind == kTop {
		return next
	}
	if next.kind == kPtr && prev.region != next.region {
		return next
	}
	w := next
	if next.lo < prev.lo {
		w.lo = 0
	}
	if next.hi > prev.hi {
		w.hi = math.MaxUint64
	}
	return w
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// EscapeClass classifies an access against its region's extent.
type EscapeClass uint8

// Escape classes.
const (
	// AccessUnclassified: the address abstraction could not attribute the
	// access to any region (unknown pointer).
	AccessUnclassified EscapeClass = iota
	// AccessInExtent: the whole offset interval fits inside the region.
	AccessInExtent
	// AccessMayEscape: the interval's upper end runs past the region's
	// extent — a data-dependent out-of-bounds risk.
	AccessMayEscape
	// AccessOutOfExtent: even the lowest possible offset is already past
	// the extent — a definite out-of-bounds access.
	AccessOutOfExtent
)

// String returns the class label.
func (e EscapeClass) String() string {
	switch e {
	case AccessInExtent:
		return "in-extent"
	case AccessMayEscape:
		return "may-escape"
	case AccessOutOfExtent:
		return "out-of-extent"
	}
	return "unclassified"
}

// Access is the classification of one load/store (or havoc key read).
type Access struct {
	Fn       *ir.Func
	Block    *ir.Block
	InstrIdx int
	IsStore  bool
	// Region is nil when unclassified.
	Region *RegionInfo
	// Lo, Hi bound the access's starting byte offset within the region
	// (immediate included).
	Lo, Hi uint64
	Size   uint8
	Class  EscapeClass
}

// MemRegions is the module-level result of the memory-region pass.
type MemRegions struct {
	mf *ModuleFacts
	// Accesses lists every load/store in deterministic order (function
	// name, block index, instruction index).
	Accesses []Access
	// KeyReads lists every OpHavoc key-buffer read, classified like a
	// load of the whole key. Kept separate from Accesses so footprint and
	// cache-cost consumers (which model havoc as a pure register effect)
	// are unaffected; the taint pass uses these to decide whether a hash
	// key is adversary-controlled.
	KeyReads []Access
	// Params records the joined abstract parameter values each function
	// was analyzed under.
	Params map[*ir.Func][]Value
}

// RunMemRegions runs the pass over a module. entryHints provides the
// calling convention of root functions (see Options.EntryHints); nil
// means all root parameters are unknown.
func RunMemRegions(mf *ModuleFacts, entryHints map[string][]Value) *MemRegions {
	mr := &MemRegions{mf: mf, Params: map[*ir.Func][]Value{}}

	// Caller-first topological order over the acyclic call graph, ties
	// broken by sorted name so the order is deterministic.
	order := callerFirstOrder(mf)

	for _, f := range order {
		params := mr.Params[f]
		if params == nil {
			params = make([]Value, f.NumParams)
			if hints, ok := entryHints[f.Name]; ok {
				copy(params, hints)
			}
			for i := range params {
				if params[i].kind == kBot {
					params[i] = Top()
				}
			}
			mr.Params[f] = params
		}
		mr.analyzeFunc(f, params)
	}
	return mr
}

// CallerFirstOrder exposes the caller-first topological function order to
// sibling analysis packages (cachecost, taint) that run interprocedural
// fixpoints in the same direction.
func CallerFirstOrder(mf *ModuleFacts) []*ir.Func { return callerFirstOrder(mf) }

// callerFirstOrder topologically sorts functions so every caller precedes
// its callees (roots first). The call graph is acyclic by validation.
func callerFirstOrder(mf *ModuleFacts) []*ir.Func {
	indeg := map[*ir.Func]int{}
	callees := map[*ir.Func][]*ir.Func{}
	for _, name := range mf.FuncNames {
		f := mf.Mod.Funcs[name]
		if _, ok := indeg[f]; !ok {
			indeg[f] = 0
		}
		seen := map[*ir.Func]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && !seen[in.Callee] {
					seen[in.Callee] = true
					callees[f] = append(callees[f], in.Callee)
					indeg[in.Callee]++
				}
			}
		}
	}
	var ready []*ir.Func
	for _, name := range mf.FuncNames {
		f := mf.Mod.Funcs[name]
		if indeg[f] == 0 {
			ready = append(ready, f)
		}
	}
	var order []*ir.Func
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i].Name < ready[j].Name })
		f := ready[0]
		ready = ready[1:]
		order = append(order, f)
		for _, c := range callees[f] {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	return order
}

// widenAfter bounds how many times a block is re-joined before growing
// intervals are widened to their extremes.
const widenAfter = 4

func (mr *MemRegions) analyzeFunc(f *ir.Func, params []Value) {
	fa := mr.mf.Funcs[f]
	n := len(f.Blocks)
	entryState := make([]Value, f.NumRegs)
	copy(entryState, params)

	in := make([][]Value, n)
	visits := make([]int, n)
	in[f.Entry().Index] = entryState

	// Distinct heap regions per allocation site, stable across the
	// fixpoint so joins of the same site stay precise.
	allocRegions := map[*ir.Instr]*RegionInfo{}

	work := []int{f.Entry().Index}
	inWork := make([]bool, n)
	inWork[f.Entry().Index] = true
	for len(work) > 0 {
		// Pop the block earliest in RPO for fast convergence.
		best := 0
		for i := 1; i < len(work); i++ {
			if fa.RPONum[work[i]] < fa.RPONum[work[best]] {
				best = i
			}
		}
		bi := work[best]
		work = append(work[:best], work[best+1:]...)
		inWork[bi] = false
		b := f.Blocks[bi]

		state := cloneState(in[bi])
		mr.execBlock(f, b, state, allocRegions, nil)
		for _, s := range b.Succs() {
			si := s.Index
			var next []Value
			if in[si] == nil {
				next = cloneState(state)
			} else {
				next = make([]Value, f.NumRegs)
				changed := false
				for r := 0; r < f.NumRegs; r++ {
					j := join(in[si][r], state[r])
					if visits[si] >= widenAfter {
						j = widen(in[si][r], j)
					}
					next[r] = j
					if j != in[si][r] {
						changed = true
					}
				}
				if !changed {
					continue
				}
			}
			in[si] = next
			visits[si]++
			if !inWork[si] {
				inWork[si] = true
				work = append(work, si)
			}
		}
	}

	// Final classification pass with the converged entry states, and
	// call-site argument propagation into callee parameter joins.
	for _, b := range f.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		state := cloneState(in[b.Index])
		mr.execBlock(f, b, state, allocRegions, fa)
	}
}

func cloneState(s []Value) []Value {
	c := make([]Value, len(s))
	copy(c, s)
	return c
}

// execBlock abstractly executes one block, mutating state. When record is
// non-nil this is the post-fixpoint classification pass: accesses are
// recorded and call arguments joined into callee parameters.
func (mr *MemRegions) execBlock(f *ir.Func, b *ir.Block, state []Value, allocRegions map[*ir.Instr]*RegionInfo, record *Facts) {
	get := func(r ir.Reg) Value {
		if r == ir.NoReg {
			return Top()
		}
		return state[r]
	}
	set := func(r ir.Reg, v Value) {
		if r != ir.NoReg {
			state[r] = v
		}
	}
	for idx, instr := range b.Instrs {
		switch instr.Op {
		case ir.OpConst:
			set(instr.Dst, mr.constValue(instr.Imm))
		case ir.OpMov:
			set(instr.Dst, get(instr.A))
		case ir.OpBin:
			set(instr.Dst, evalBin(instr.Bin, get(instr.A), get(instr.B)))
		case ir.OpCmp:
			set(instr.Dst, NumRange(0, 1))
		case ir.OpSelect:
			set(instr.Dst, join(get(instr.B), get(instr.C)))
		case ir.OpLoad:
			if record != nil {
				mr.recordAccess(f, b, idx, false, get(instr.A), instr.Imm, instr.Size)
			}
			set(instr.Dst, loadResult(instr.Size))
		case ir.OpStore:
			if record != nil {
				mr.recordAccess(f, b, idx, true, get(instr.A), instr.Imm, instr.Size)
			}
		case ir.OpAlloc:
			reg := allocRegions[instr]
			if reg == nil {
				reg = &RegionInfo{Kind: RegionHeap, Site: instrRef(f, b, idx)}
				if sz := get(instr.A); sz.kind == kNum && sz.lo == sz.hi {
					reg.Extent = sz.lo
				}
				allocRegions[instr] = reg
			}
			set(instr.Dst, Value{kind: kPtr, region: reg})
		case ir.OpHavoc:
			if record != nil {
				mr.recordKeyRead(f, b, idx, get(instr.A), instr.Imm)
			}
			bits := 64
			if instr.HashID >= 0 && instr.HashID < len(mr.mf.Mod.Hashes) {
				bits = mr.mf.Mod.Hashes[instr.HashID].Bits
			}
			if bits >= 64 {
				set(instr.Dst, NumRange(0, math.MaxUint64))
			} else {
				set(instr.Dst, NumRange(0, 1<<uint(bits)-1))
			}
		case ir.OpCall:
			if record != nil {
				callee := instr.Callee
				ps := mr.Params[callee]
				if ps == nil {
					ps = make([]Value, callee.NumParams)
					mr.Params[callee] = ps
				}
				for i, a := range instr.Args {
					if i < len(ps) {
						ps[i] = join(ps[i], get(a))
					}
				}
			}
			set(instr.Dst, Top())
		case ir.OpBr, ir.OpCondBr, ir.OpRet:
			// no value effect
		}
	}
}

// constValue maps an immediate to the region it addresses, if any: the
// packet slot or a laid-out global. Other values — including heap-range
// numbers, which are indistinguishable from large scalars — stay plain
// numbers.
func (mr *MemRegions) constValue(imm uint64) Value {
	if imm >= ir.PacketBase && imm < ir.PacketBase+ir.PacketSlot {
		return PacketPtr(imm - ir.PacketBase)
	}
	if g := mr.globalAt(imm); g != nil {
		return GlobalPtr(g, imm-g.Addr)
	}
	return NumConst(imm)
}

func (mr *MemRegions) globalAt(addr uint64) *ir.Global {
	for _, name := range mr.globalNames() {
		g := mr.mf.Mod.Globals[name]
		if g.Addr != 0 && addr >= g.Addr && addr < g.Addr+g.Size {
			return g
		}
	}
	return nil
}

func (mr *MemRegions) globalNames() []string {
	names := make([]string, 0, len(mr.mf.Mod.Globals))
	for n := range mr.mf.Mod.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func loadResult(size uint8) Value {
	if size >= 8 {
		return NumRange(0, math.MaxUint64)
	}
	return NumRange(0, 1<<(8*uint(size))-1)
}

func evalBin(op ir.BinOp, a, b Value) Value {
	if a.kind == kBot || b.kind == kBot {
		return Value{}
	}
	aNum := a.kind == kNum
	bNum := b.kind == kNum
	switch op {
	case ir.Add:
		switch {
		case a.kind == kPtr && bNum:
			return Value{kind: kPtr, region: a.region, lo: satAdd(a.lo, b.lo), hi: satAdd(a.hi, b.hi)}
		case aNum && b.kind == kPtr:
			return Value{kind: kPtr, region: b.region, lo: satAdd(a.lo, b.lo), hi: satAdd(a.hi, b.hi)}
		case aNum && bNum:
			if satAdd(a.hi, b.hi) == math.MaxUint64 && a.hi != math.MaxUint64 && b.hi != math.MaxUint64 {
				// potential wrap: give up on bounds
				return NumRange(0, math.MaxUint64)
			}
			return NumRange(satAdd(a.lo, b.lo), satAdd(a.hi, b.hi))
		}
	case ir.Sub:
		switch {
		case a.kind == kPtr && bNum && a.lo >= b.hi:
			return Value{kind: kPtr, region: a.region, lo: a.lo - b.hi, hi: a.hi - b.lo}
		case aNum && bNum && a.lo >= b.hi:
			return NumRange(a.lo-b.hi, a.hi-b.lo)
		case aNum && bNum:
			return NumRange(0, math.MaxUint64) // may wrap
		}
	case ir.Mul:
		if aNum && bNum {
			return NumRange(satMul(a.lo, b.lo), satMul(a.hi, b.hi))
		}
	case ir.UDiv:
		if aNum && bNum {
			return NumRange(0, a.hi) // quotient never exceeds the dividend
		}
	case ir.URem:
		if aNum && bNum {
			if b.lo > 0 {
				return NumRange(0, b.hi-1)
			}
			// zero divisor yields the dividend
			return NumRange(0, max64(a.hi, satAdd(b.hi, 0)))
		}
	case ir.And:
		if aNum && bNum {
			return NumRange(0, min64(a.hi, b.hi))
		}
	case ir.Or, ir.Xor:
		if aNum && bNum {
			return NumRange(0, satAdd(a.hi, b.hi)) // x|y, x^y ≤ x+y
		}
	case ir.Shl:
		if aNum && bNum && b.lo == b.hi {
			if b.lo >= 64 {
				return NumConst(0)
			}
			sh := uint(b.lo)
			if a.hi > math.MaxUint64>>sh {
				return NumRange(0, math.MaxUint64)
			}
			return NumRange(a.lo<<sh, a.hi<<sh)
		}
		if aNum && bNum {
			return NumRange(0, math.MaxUint64)
		}
	case ir.Lshr:
		if aNum && bNum {
			if b.lo == b.hi {
				if b.lo >= 64 {
					return NumConst(0)
				}
				return NumRange(a.lo>>uint(b.lo), a.hi>>uint(b.lo))
			}
			return NumRange(0, a.hi)
		}
	}
	return Top()
}

func (mr *MemRegions) recordAccess(f *ir.Func, b *ir.Block, idx int, isStore bool, addr Value, imm uint64, size uint8) {
	acc := Access{Fn: f, Block: b, InstrIdx: idx, IsStore: isStore, Size: size}
	if reg, lo, hi, ok := addr.IsPtr(); ok {
		acc.Region = reg
		acc.Lo, acc.Hi = satAdd(lo, imm), satAdd(hi, imm)
		switch {
		case reg.Extent == 0:
			acc.Class = AccessInExtent // unknown extent: nothing to check
		case satAdd(acc.Lo, uint64(size)) > reg.Extent:
			acc.Class = AccessOutOfExtent
		case satAdd(acc.Hi, uint64(size)) > reg.Extent:
			acc.Class = AccessMayEscape
		default:
			acc.Class = AccessInExtent
		}
	} else {
		acc.Class = AccessUnclassified
	}
	mr.Accesses = append(mr.Accesses, acc)
}

// recordKeyRead classifies the keyLen-byte read an OpHavoc performs at
// its key pointer, appending to KeyReads. Size saturates at 255 bytes
// (Access.Size is a byte); real flow keys are far smaller.
func (mr *MemRegions) recordKeyRead(f *ir.Func, b *ir.Block, idx int, addr Value, keyLen uint64) {
	size := uint8(255)
	if keyLen < 255 {
		size = uint8(keyLen)
	}
	acc := Access{Fn: f, Block: b, InstrIdx: idx, Size: size}
	if reg, lo, hi, ok := addr.IsPtr(); ok {
		acc.Region = reg
		acc.Lo, acc.Hi = lo, hi
		switch {
		case reg.Extent == 0:
			acc.Class = AccessInExtent
		case satAdd(acc.Lo, keyLen) > reg.Extent:
			acc.Class = AccessOutOfExtent
		case satAdd(acc.Hi, keyLen) > reg.Extent:
			acc.Class = AccessMayEscape
		default:
			acc.Class = AccessInExtent
		}
	} else {
		acc.Class = AccessUnclassified
	}
	mr.KeyReads = append(mr.KeyReads, acc)
}

// report converts extent violations into findings.
func (mr *MemRegions) report(rep *Report) {
	for _, a := range mr.Accesses {
		kind := "load"
		if a.IsStore {
			kind = "store"
		}
		switch a.Class {
		case AccessOutOfExtent:
			rep.add(Finding{
				Pass: "memregion", Sev: SevError,
				Fn: a.Fn, Block: a.Block, InstrIdx: a.InstrIdx,
				Msg: fmt.Sprintf("%s of %d byte(s) at %s+[%#x,%#x] is out of extent (%d bytes)",
					kind, a.Size, a.Region.Name(), a.Lo, a.Hi, a.Region.Extent),
			})
		case AccessMayEscape:
			rep.add(Finding{
				Pass: "memregion", Sev: SevWarn,
				Fn: a.Fn, Block: a.Block, InstrIdx: a.InstrIdx,
				Msg: fmt.Sprintf("%s of %d byte(s) at %s+[%#x,%#x] may escape extent (%d bytes)",
					kind, a.Size, a.Region.Name(), a.Lo, a.Hi, a.Region.Extent),
			})
		}
	}
}

// Footprint summarizes the statically inferred access footprint of one
// global: the hull of accessed offsets and whether any access sits inside
// a loop (where adversarial sweeps multiply).
type Footprint struct {
	Global *ir.Global
	Lo, Hi uint64 // accessed byte offsets, end-exclusive hull
	Loads  int
	Stores int
	InLoop bool
}

// Span returns the width of the accessed hull in bytes.
func (fp Footprint) Span() uint64 {
	if fp.Hi <= fp.Lo {
		return 0
	}
	return fp.Hi - fp.Lo
}

// GlobalFootprints aggregates classified accesses per global, sorted by
// global name. Unclassified accesses contribute nothing.
func (mr *MemRegions) GlobalFootprints() []Footprint {
	byGlobal := map[*ir.Global]*Footprint{}
	for _, a := range mr.Accesses {
		if a.Region == nil || a.Region.Kind != RegionGlobal {
			continue
		}
		g := a.Region.Global
		fp := byGlobal[g]
		if fp == nil {
			fp = &Footprint{Global: g, Lo: math.MaxUint64}
			byGlobal[g] = fp
		}
		fp.Lo = min64(fp.Lo, a.Lo)
		end := satAdd(a.Hi, uint64(a.Size))
		if end > g.Size {
			end = g.Size
		}
		fp.Hi = max64(fp.Hi, end)
		if a.IsStore {
			fp.Stores++
		} else {
			fp.Loads++
		}
		if mr.mf.Funcs[a.Fn].Loops.Depth(a.Block) > 0 {
			fp.InLoop = true
		}
	}
	out := make([]Footprint, 0, len(byGlobal))
	for _, fp := range byGlobal {
		out = append(out, *fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Global.Name < out[j].Global.Name })
	return out
}

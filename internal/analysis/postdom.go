package analysis

import (
	"castan/internal/ir"
)

// Postdoms computes immediate postdominators per block index by running
// the Cooper-Harvey-Kennedy dominator algorithm over the reversed CFG
// augmented with a virtual exit that every OpRet block flows to. The
// result maps each block to its immediate postdominator's block index,
// len(blocks) for the virtual exit itself, or -1 for blocks that cannot
// reach function exit (those dominate nothing backwards; callers treat
// their control-dependence region as unbounded). It is the one shared
// implementation behind taint's implicit-flow closure, vrange's
// dead-edge reasoning, and symbex's merge-point selection.
func Postdoms(f *ir.Func) []int {
	n := len(f.Blocks)
	exit := n
	// Reversed graph over nodes 0..n (n = virtual exit): an original
	// edge u→w becomes w→u, and exit→e for every returning block e.
	succ := make([][]int, n+1)
	pred := make([][]int, n+1)
	addEdge := func(u, w int) {
		succ[u] = append(succ[u], w)
		pred[w] = append(pred[w], u)
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			addEdge(s.Index, b.Index)
		}
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
			addEdge(exit, b.Index)
		}
	}

	// Iterative RPO DFS from the virtual exit over the reversed graph.
	rpoNum := make([]int, n+1)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	type frame struct {
		v    int
		next int
	}
	seen := make([]bool, n+1)
	var post []int
	stack := []frame{{v: exit}}
	seen[exit] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(succ[fr.v]) {
			s := succ[fr.v][fr.next]
			fr.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{v: s})
			}
			continue
		}
		post = append(post, fr.v)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	for i, v := range rpo {
		rpoNum[v] = i
	}

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	idom[exit] = exit
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, v := range rpo {
			if v == exit {
				continue
			}
			newIdom := -1
			for _, p := range pred[v] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom[:n]
}

// CtlRegion returns the block indices control-dependent on b's branch:
// everything reachable from b's successors on the forward CFG without
// passing through b's immediate postdominator ipd (-1 means unbounded —
// b cannot reach exit — so the walk only stops at visited blocks). The
// result is in ascending index order for determinism.
func CtlRegion(f *ir.Func, b *ir.Block, ipd int) []int {
	n := len(f.Blocks)
	seen := make([]bool, n)
	var stack []int
	for _, s := range b.Succs() {
		if s.Index != ipd && !seen[s.Index] {
			seen[s.Index] = true
			stack = append(stack, s.Index)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[v].Succs() {
			if s.Index != ipd && !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s.Index)
			}
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// MergeBlocks returns the set of blocks that are the immediate
// postdominator of some two-successor block — the KLEE-style merge
// points where diverged paths rejoin. The virtual exit (a function-level
// merge point) is not representable as a block and is handled by
// callers (symbex merges at packet boundaries for it).
func MergeBlocks(f *ir.Func) map[*ir.Block]bool {
	pd := Postdoms(f)
	out := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		if len(b.Succs()) < 2 {
			continue
		}
		if ipd := pd[b.Index]; ipd >= 0 && ipd < len(f.Blocks) {
			out[f.Blocks[ipd]] = true
		}
	}
	return out
}

// Package taint is a forward interprocedural input-taint dataflow
// analysis over internal/ir: it classifies every value, branch
// condition, and load/store address by how the adversary's packet bytes
// can influence it.
//
// The lattice is three-pointed and totally ordered:
//
//	Untainted              input-independent: byte-identical across any
//	                       two packets injected at the entry function
//	   <  TaintedLinear    depends on a trackable set of packet byte
//	                       offsets, with no hash/havoc site in between
//	   <  TaintedOpaque    input-dependent through a hash/havoc site, an
//	                       unclassifiable memory access, or a byte set
//	                       too wide to track
//
// TaintedLinear carries the byte set as provenance — "this index is
// controlled by packet bytes 26..38" is exactly the fact the
// controllability lint and the rainbow-table filter need. The analysis
// is flow-sensitive over registers (RPO worklist fixpoints with loop
// widening, in the memregion style), flow-INsensitive over memory
// (one taint per memory region, a sound module-lifetime invariant that
// also covers cross-packet state), and interprocedural via call
// summaries iterated caller-first to a module-level fixpoint.
//
// Implicit flows are handled: a conditional branch whose condition is
// tainted taints every definition (and store, and call) in the blocks
// control-dependent on it — computed from immediate postdominators on
// the reversed CFG — and callees invoked under tainted control inherit
// that taint as their entry control. This is what makes the soundness
// contract testable: run the same module under internal/interp with two
// different packets and every Untainted-classified value must be
// byte-identical (see property_test.go).
package taint

import (
	"fmt"
	"strings"

	"castan/internal/analysis"
	"castan/internal/ir"
)

// Class is the taint lattice point, ordered Untainted < TaintedLinear <
// TaintedOpaque.
type Class uint8

// Lattice points.
const (
	Untainted Class = iota
	TaintedLinear
	TaintedOpaque
)

// String returns the class label.
func (c Class) String() string {
	switch c {
	case Untainted:
		return "untainted"
	case TaintedLinear:
		return "tainted-linear"
	case TaintedOpaque:
		return "tainted-opaque"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MaxTrackedBytes is how many packet byte offsets a TaintedLinear byte
// set can track individually; anything reaching past this widens to
// TaintedOpaque. All catalog NFs parse within the first 42 bytes.
const MaxTrackedBytes = 256

// ByteSet is a bitset of packet byte offsets (0-based from the packet
// slot base). The zero ByteSet is empty.
type ByteSet [MaxTrackedBytes / 64]uint64

func (s *ByteSet) add(i uint64) {
	if i < MaxTrackedBytes {
		s[i/64] |= 1 << (i % 64)
	}
}

// Has reports whether offset i is in the set.
func (s ByteSet) Has(i uint64) bool {
	return i < MaxTrackedBytes && s[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of offsets in the set.
func (s ByteSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (s ByteSet) union(o ByteSet) ByteSet {
	for i := range s {
		s[i] |= o[i]
	}
	return s
}

// String renders the set as compact inclusive ranges, e.g. "26-29,34".
func (s ByteSet) String() string {
	var b strings.Builder
	run := -1
	flush := func(end int) {
		if run < 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if run == end {
			fmt.Fprintf(&b, "%d", run)
		} else {
			fmt.Fprintf(&b, "%d-%d", run, end)
		}
		run = -1
	}
	for i := 0; i < MaxTrackedBytes; i++ {
		if s.Has(uint64(i)) {
			if run < 0 {
				run = i
			}
		} else {
			flush(i - 1)
		}
	}
	flush(MaxTrackedBytes - 1)
	return b.String()
}

// Taint is one lattice value: a class plus, for TaintedLinear, the
// packet byte set it depends on. The zero Taint is Untainted, and
// values are canonical (non-Linear classes carry an empty set), so ==
// is lattice equality.
type Taint struct {
	Class Class
	Bytes ByteSet
}

// Opaque returns the ⊤ value.
func Opaque() Taint { return Taint{Class: TaintedOpaque} }

// PacketBytes returns the TaintedLinear value for the inclusive packet
// byte offset range [lo, hi], or TaintedOpaque when the range runs past
// MaxTrackedBytes.
func PacketBytes(lo, hi uint64) Taint {
	if hi >= MaxTrackedBytes || lo > hi {
		return Opaque()
	}
	t := Taint{Class: TaintedLinear}
	for i := lo; i <= hi; i++ {
		t.Bytes.add(i)
	}
	return t
}

// Tainted reports whether the value is above Untainted.
func (t Taint) Tainted() bool { return t.Class != Untainted }

// String renders the value for diagnostics.
func (t Taint) String() string {
	if t.Class == TaintedLinear {
		return "tainted-linear{" + t.Bytes.String() + "}"
	}
	return t.Class.String()
}

// join is the lattice join: class max, byte sets unioned at Linear.
func join(a, b Taint) Taint {
	c := a.Class
	if b.Class > c {
		c = b.Class
	}
	switch c {
	case Untainted:
		return Taint{}
	case TaintedOpaque:
		return Opaque()
	}
	return Taint{Class: TaintedLinear, Bytes: a.Bytes.union(b.Bytes)}
}

func join3(a, b, c Taint) Taint { return join(join(a, b), c) }

// widen accelerates loop fixpoints: a byte set still growing after
// widenAfter re-joins jumps straight to TaintedOpaque (class changes
// need no widening — the class chain has height two).
func widen(prev, next Taint) Taint {
	if prev.Class == TaintedLinear && next.Class == TaintedLinear && next != prev {
		return Opaque()
	}
	return next
}

// widenAfter matches the memregion pass: how many re-joins of a block
// before growing values are widened.
const widenAfter = 4

// InstrTaint is the per-instruction classification.
type InstrTaint struct {
	// Val is the taint of the value the instruction defines; for
	// OpCondBr the branch condition, for OpStore the stored value, for
	// OpRet the returned value.
	Val Taint
	// Addr is the taint of the address operand of a load, store, or
	// havoc key read (Untainted for other opcodes).
	Addr Taint
	// Ctl is the control taint of the enclosing block: the join of the
	// branch conditions this instruction's execution depends on.
	Ctl Taint
}

// Config tunes a Run.
type Config struct {
	// EntryHints names the root functions the input enters through and
	// the taint of their parameters. Only functions reachable from a
	// hinted root are analyzed; everything else reports TaintedOpaque.
	EntryHints map[string][]Taint
}

// NFEntryTaints returns the hints for the repository's NF calling
// convention: nf_process(pktAddr, pktLen) receives the (fixed) packet
// slot base and a frame length the harness holds constant per run. The
// adversary controls the packet *bytes*; taint is relative to that.
func NFEntryTaints() map[string][]Taint {
	return map[string][]Taint{
		"nf_process": {{}, {}},
	}
}

// regionKey identifies one flow-insensitive memory taint bucket.
type regionKey struct {
	kind   analysis.RegionKind
	global *ir.Global
	site   string
}

var packetKey = regionKey{kind: analysis.RegionPacket}

// Analysis is the module-level taint solution.
type Analysis struct {
	mf *analysis.ModuleFacts
	mr *analysis.MemRegions

	// Entries lists the analyzed root functions, sorted.
	Entries []string
	// Rounds is how many module-level fixpoint rounds ran.
	Rounds int
	// Capped reports whether any fixpoint hit its iteration cap and
	// degraded to TaintedOpaque (never on well-formed NF modules).
	Capped bool

	instr     map[*ir.Instr]InstrTaint
	accessOf  map[*ir.Instr]*analysis.Access
	keyReadOf map[*ir.Instr]*analysis.Access
	params    map[*ir.Func][]Taint
	rets      map[*ir.Func]Taint
	entryCtl  map[*ir.Func]Taint
	mem       map[regionKey]Taint
	// unknown is the bucket for stores the memregion pass could not
	// prove in-extent of a known region: they may land anywhere, so
	// every load joins this.
	unknown Taint
	// heapCursor is the taint of the bump allocator position: an alloc
	// under tainted control (or of tainted size) makes every later
	// allocation address input-dependent.
	heapCursor Taint

	order     []*ir.Func
	reachable map[*ir.Func]bool
	pdoms     map[*ir.Func][]int
}

// maxRounds caps the module-level fixpoint; the lattice is finite so
// this only triggers on pathological inputs, degrading soundly to ⊤.
const maxRounds = 48

// maxCtlIters caps the per-function control-taint iteration.
const maxCtlIters = 16

// Run computes the taint solution for a module. The ModuleFacts and
// MemRegions must come from the same module.
func Run(mf *analysis.ModuleFacts, mr *analysis.MemRegions, cfg Config) *Analysis {
	a := &Analysis{
		mf:        mf,
		mr:        mr,
		instr:     map[*ir.Instr]InstrTaint{},
		accessOf:  map[*ir.Instr]*analysis.Access{},
		keyReadOf: map[*ir.Instr]*analysis.Access{},
		params:    map[*ir.Func][]Taint{},
		rets:      map[*ir.Func]Taint{},
		entryCtl:  map[*ir.Func]Taint{},
		mem:       map[regionKey]Taint{},
		reachable: map[*ir.Func]bool{},
		pdoms:     map[*ir.Func][]int{},
	}
	for i := range mr.Accesses {
		acc := &mr.Accesses[i]
		a.accessOf[acc.Block.Instrs[acc.InstrIdx]] = acc
	}
	for i := range mr.KeyReads {
		acc := &mr.KeyReads[i]
		a.keyReadOf[acc.Block.Instrs[acc.InstrIdx]] = acc
	}

	// Roots: hinted functions present in the module, sorted for
	// determinism; reachability closes over the (acyclic) call graph.
	var roots []*ir.Func
	for _, name := range mf.FuncNames {
		hints, ok := cfg.EntryHints[name]
		f := mf.Mod.Funcs[name]
		if !ok || f == nil {
			continue
		}
		roots = append(roots, f)
		a.Entries = append(a.Entries, name)
		params := make([]Taint, f.NumParams)
		for i := range params {
			if i < len(hints) {
				params[i] = hints[i]
			} else {
				params[i] = Opaque()
			}
		}
		a.params[f] = params
	}
	var mark func(f *ir.Func)
	mark = func(f *ir.Func) {
		if a.reachable[f] {
			return
		}
		a.reachable[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					mark(in.Callee)
				}
			}
		}
	}
	for _, f := range roots {
		mark(f)
	}
	for _, f := range analysis.CallerFirstOrder(mf) {
		if a.reachable[f] {
			a.order = append(a.order, f)
		}
	}

	for a.Rounds = 1; ; a.Rounds++ {
		changed := false
		for _, f := range a.order {
			if a.analyzeFunc(f) {
				changed = true
			}
		}
		if !changed {
			break
		}
		if a.Rounds >= maxRounds {
			a.degradeToTop()
			for _, f := range a.order {
				a.analyzeFunc(f)
			}
			break
		}
	}
	return a
}

// degradeToTop forces every interprocedural fact to ⊤ so one final
// recording round yields a sound (if useless) solution.
func (a *Analysis) degradeToTop() {
	a.Capped = true
	a.unknown = Opaque()
	a.heapCursor = Opaque()
	for k := range a.mem {
		a.mem[k] = Opaque()
	}
	for _, f := range a.order {
		ps := a.params[f]
		if ps == nil {
			ps = make([]Taint, f.NumParams)
			a.params[f] = ps
		}
		for i := range ps {
			ps[i] = Opaque()
		}
		a.rets[f] = Opaque()
		a.entryCtl[f] = Opaque()
	}
}

// analyzeFunc runs the per-function fixpoint — register dataflow
// alternated with control-taint recomputation — then a recording pass
// that classifies instructions and joins facts into the module state.
// It reports whether any module-level fact grew.
func (a *Analysis) analyzeFunc(f *ir.Func) bool {
	fa := a.mf.Funcs[f]
	n := len(f.Blocks)
	base := a.entryCtl[f]
	ctl := make([]Taint, n)
	for i := range ctl {
		ctl[i] = base
	}
	pd, ok := a.pdoms[f]
	if !ok {
		pd = analysis.Postdoms(f)
		a.pdoms[f] = pd
	}

	var in [][]Taint
	for iter := 0; ; iter++ {
		in = a.regFixpoint(f, fa, ctl)
		next := a.ctlFrom(f, pd, in, base)
		if taintsEqual(next, ctl) {
			break
		}
		ctl = next
		if iter >= maxCtlIters {
			a.Capped = true
			for i := range ctl {
				ctl[i] = Opaque()
			}
			in = a.regFixpoint(f, fa, ctl)
			break
		}
	}

	changed := false
	for _, b := range f.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		state := cloneTaints(in[b.Index])
		if a.execBlock(f, b, state, ctl[b.Index], true) {
			changed = true
		}
	}
	return changed
}

// regFixpoint solves the flow-sensitive register taint with the given
// per-block control taints, returning per-block entry states (nil for
// unreachable blocks).
func (a *Analysis) regFixpoint(f *ir.Func, fa *analysis.Facts, ctl []Taint) [][]Taint {
	n := len(f.Blocks)
	entryState := make([]Taint, f.NumRegs)
	copy(entryState, a.params[f])

	in := make([][]Taint, n)
	visits := make([]int, n)
	in[f.Entry().Index] = entryState

	work := []int{f.Entry().Index}
	inWork := make([]bool, n)
	inWork[f.Entry().Index] = true
	for len(work) > 0 {
		best := 0
		for i := 1; i < len(work); i++ {
			if fa.RPONum[work[i]] < fa.RPONum[work[best]] {
				best = i
			}
		}
		bi := work[best]
		work = append(work[:best], work[best+1:]...)
		inWork[bi] = false
		b := f.Blocks[bi]

		state := cloneTaints(in[bi])
		a.execBlock(f, b, state, ctl[bi], false)
		for _, s := range b.Succs() {
			si := s.Index
			var next []Taint
			if in[si] == nil {
				next = cloneTaints(state)
			} else {
				next = make([]Taint, f.NumRegs)
				changed := false
				for r := 0; r < f.NumRegs; r++ {
					j := join(in[si][r], state[r])
					if visits[si] >= widenAfter {
						j = widen(in[si][r], j)
					}
					next[r] = j
					if j != in[si][r] {
						changed = true
					}
				}
				if !changed {
					continue
				}
			}
			in[si] = next
			visits[si]++
			if !inWork[si] {
				inWork[si] = true
				work = append(work, si)
			}
		}
	}
	return in
}

// execBlock abstractly executes one block, mutating state. When record
// is set this is the post-fixpoint pass: instruction classifications
// are written and call/store/ret facts joined into the module state;
// the return value reports whether any module-level fact grew.
func (a *Analysis) execBlock(f *ir.Func, b *ir.Block, state []Taint, ctl Taint, record bool) bool {
	changed := false
	get := func(r ir.Reg) Taint {
		if r == ir.NoReg {
			return Taint{}
		}
		return state[r]
	}
	// Every definition joins the block's control taint: if the input
	// decides whether this instruction runs, it decides the register's
	// value at the join point.
	set := func(r ir.Reg, t Taint) {
		if r != ir.NoReg {
			state[r] = join(t, ctl)
		}
	}
	for _, in := range b.Instrs {
		var it InstrTaint
		it.Ctl = ctl
		switch in.Op {
		case ir.OpConst:
			set(in.Dst, Taint{})
		case ir.OpMov:
			set(in.Dst, get(in.A))
		case ir.OpBin:
			set(in.Dst, join(get(in.A), get(in.B)))
		case ir.OpCmp:
			set(in.Dst, join(get(in.A), get(in.B)))
		case ir.OpSelect:
			set(in.Dst, join3(get(in.A), get(in.B), get(in.C)))
		case ir.OpLoad:
			it.Addr = get(in.A)
			set(in.Dst, join(a.loadContent(a.accessOf[in]), it.Addr))
		case ir.OpStore:
			it.Addr = get(in.A)
			it.Val = get(in.B)
			if record {
				if a.storeTo(a.accessOf[in], join3(it.Val, it.Addr, ctl)) {
					changed = true
				}
			}
		case ir.OpAlloc:
			set(in.Dst, join(a.heapCursor, get(in.A)))
			if record {
				if a.raise(&a.heapCursor, join(get(in.A), ctl)) {
					changed = true
				}
			}
		case ir.OpHavoc:
			it.Addr = join3(a.loadContent(a.keyReadOf[in]), get(in.A), ctl)
			// The hash of a fixed key is a constant; the hash of
			// anything input-influenced is TaintedOpaque — never
			// Linear, because the havoc output scrambles whatever
			// byte-set structure the key had.
			if it.Addr.Tainted() {
				state[in.Dst] = Opaque()
			} else {
				state[in.Dst] = Taint{}
			}
		case ir.OpCall:
			if record {
				ps := a.params[in.Callee]
				if ps == nil {
					ps = make([]Taint, in.Callee.NumParams)
					a.params[in.Callee] = ps
				}
				for i, arg := range in.Args {
					if i < len(ps) {
						if a.raise(&ps[i], get(arg)) {
							changed = true
						}
					}
				}
				if raiseMap(a.entryCtl, in.Callee, ctl) {
					changed = true
				}
			}
			set(in.Dst, a.rets[in.Callee])
		case ir.OpRet:
			it.Val = get(in.A)
			if record {
				if raiseMap(a.rets, f, join(it.Val, ctl)) {
					changed = true
				}
			}
		case ir.OpCondBr:
			it.Val = get(in.A)
		case ir.OpBr:
			// no effect
		}
		if d := in.Def(); d != ir.NoReg {
			it.Val = state[d]
		}
		if record {
			a.instr[in] = it
		}
	}
	return changed
}

// raise joins t into *dst, reporting growth.
func (a *Analysis) raise(dst *Taint, t Taint) bool {
	j := join(*dst, t)
	if j != *dst {
		*dst = j
		return true
	}
	return false
}

// raiseMap joins t into m[f] (map entries are not addressable),
// reporting growth.
func raiseMap(m map[*ir.Func]Taint, f *ir.Func, t Taint) bool {
	j := join(m[f], t)
	if j != m[f] {
		m[f] = j
		return true
	}
	return false
}

// loadContent returns the taint of the bytes a classified access reads:
// the region's store bucket, plus — for the packet slot — the input
// bytes themselves, plus whatever unprovable stores may have landed
// there. Accesses that may escape (or address no provable region, or a
// region of unknown extent) could read anything, including the packet:
// TaintedOpaque.
func (a *Analysis) loadContent(acc *analysis.Access) Taint {
	if acc == nil || acc.Region == nil ||
		acc.Class != analysis.AccessInExtent || acc.Region.Extent == 0 {
		return Opaque()
	}
	t := a.unknown
	switch acc.Region.Kind {
	case analysis.RegionPacket:
		end := acc.Hi + uint64(acc.Size)
		if end < acc.Hi { // wrapped
			return Opaque()
		}
		t = join(t, PacketBytes(acc.Lo, end-1))
		t = join(t, a.mem[packetKey])
	case analysis.RegionGlobal:
		t = join(t, a.mem[regionKey{kind: analysis.RegionGlobal, global: acc.Region.Global}])
	case analysis.RegionHeap:
		t = join(t, a.mem[regionKey{kind: analysis.RegionHeap, site: acc.Region.Site}])
	}
	return t
}

// storeTo joins t into the store's region bucket; stores that may
// escape a region (or address none, or one of unknown extent) can land
// anywhere and poison the unknown bucket every load joins.
func (a *Analysis) storeTo(acc *analysis.Access, t Taint) bool {
	if acc == nil || acc.Region == nil ||
		acc.Class != analysis.AccessInExtent || acc.Region.Extent == 0 {
		return a.raise(&a.unknown, t)
	}
	var k regionKey
	switch acc.Region.Kind {
	case analysis.RegionPacket:
		k = packetKey
	case analysis.RegionGlobal:
		k = regionKey{kind: analysis.RegionGlobal, global: acc.Region.Global}
	case analysis.RegionHeap:
		k = regionKey{kind: analysis.RegionHeap, site: acc.Region.Site}
	}
	j := join(a.mem[k], t)
	if j != a.mem[k] {
		a.mem[k] = j
		return true
	}
	return false
}

// ctlFrom recomputes per-block control taints from the current register
// solution: each conditional branch with a tainted condition taints the
// blocks control-dependent on it (reachable from its successors without
// passing its immediate postdominator).
func (a *Analysis) ctlFrom(f *ir.Func, pd []int, in [][]Taint, base Taint) []Taint {
	n := len(f.Blocks)
	ctl := make([]Taint, n)
	for i := range ctl {
		ctl[i] = base
	}
	for _, b := range f.Blocks {
		if in[b.Index] == nil {
			continue
		}
		term := b.Terminator()
		if term == nil || term.Op != ir.OpCondBr {
			continue
		}
		state := cloneTaints(in[b.Index])
		// Control taint of b itself is already folded into the defs the
		// condition was computed from; execute with the current solution
		// to read the condition's taint at the terminator.
		a.execBlock(f, b, state, ctl[b.Index], false)
		condT := Taint{}
		if term.A != ir.NoReg {
			condT = state[term.A]
		}
		if !condT.Tainted() {
			continue
		}
		for _, bi := range analysis.CtlRegion(f, b, pd[b.Index]) {
			ctl[bi] = join(ctl[bi], condT)
		}
	}
	return ctl
}

func cloneTaints(s []Taint) []Taint {
	c := make([]Taint, len(s))
	copy(c, s)
	return c
}

func taintsEqual(a, b []Taint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

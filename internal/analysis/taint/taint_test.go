package taint

import (
	"testing"

	"castan/internal/analysis"
	"castan/internal/ir"
)

// runOn builds facts + memregions with the NF entry convention and runs
// the taint analysis.
func runOn(t *testing.T, mod *ir.Module) *Analysis {
	t.Helper()
	if err := mod.Validate(); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	mf := analysis.ForModule(mod)
	mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
	a := Run(mf, mr, Config{EntryHints: NFEntryTaints()})
	if a.Capped {
		t.Fatalf("fixpoint capped on a trivial module")
	}
	return a
}

// nth returns the n-th instruction with the given opcode in the
// function, fatal if absent.
func nth(t *testing.T, f *ir.Func, op ir.Opcode, n int) *ir.Instr {
	t.Helper()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				if n == 0 {
					return in
				}
				n--
			}
		}
	}
	t.Fatalf("opcode %d instance not found", op)
	return nil
}

func TestPacketLoadIsLinear(t *testing.T) {
	mod := ir.NewModule("t")
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	v := fb.Load(pkt, 26, 4) // packet bytes 26..29
	fb.Ret(v)
	fb.Seal()

	a := runOn(t, mod)
	ld := nth(t, mod.Funcs["nf_process"], ir.OpLoad, 0)
	it, ok := a.Of(ld)
	if !ok {
		t.Fatal("load unreached")
	}
	if it.Val.Class != TaintedLinear {
		t.Fatalf("packet load class = %v, want linear", it.Val)
	}
	want := PacketBytes(26, 29)
	if it.Val != want {
		t.Fatalf("packet load taint = %v, want %v", it.Val, want)
	}
	if it.Addr.Tainted() {
		t.Fatalf("constant address classified tainted: %v", it.Addr)
	}
	// The untainted constant feeding the address stays untainted.
	if got := a.ClassOf(nth(t, mod.Funcs["nf_process"], ir.OpConst, 0)); got != Untainted {
		t.Fatalf("const class = %v", got)
	}
}

func TestTaintFlowsThroughArithmeticAndAddress(t *testing.T) {
	mod := ir.NewModule("t")
	g := mod.AddGlobal("tbl", 1<<16, 64)
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	idx := fb.Load(pkt, 30, 2)            // bytes 30..31
	idx = fb.AndImm(idx, 0xfff)           // still linear, same bytes
	addr := fb.Add(fb.GlobalAddr(g), idx) // tainted pointer offset
	v := fb.Load(addr, 0, 1)              // tainted address load
	fb.Ret(v)
	fb.Seal()

	a := runOn(t, mod)
	ld := nth(t, mod.Funcs["nf_process"], ir.OpLoad, 1)
	it, _ := a.Of(ld)
	if it.Addr != PacketBytes(30, 31) {
		t.Fatalf("table load address taint = %v, want bytes 30-31", it.Addr)
	}
	// Content of an untouched global is untainted, but the tainted
	// index selects it: the result is tainted.
	if !it.Val.Tainted() {
		t.Fatalf("tainted-address load result untainted")
	}
}

func TestHashKeyFoldableVsControlled(t *testing.T) {
	mod := ir.NewModule("t")
	keyA := mod.AddGlobal("key_fixed", 16, 8)
	keyB := mod.AddGlobal("key_pkt", 16, 8)
	hid := mod.AddHash("h", 16, func(b []byte) uint64 { return uint64(len(b)) })
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	// Fixed key: only constants ever stored.
	fb.Store(fb.GlobalAddr(keyA), 0, fb.Const(0xabcd), 8)
	hFixed := fb.Havoc(hid, fb.GlobalAddr(keyA), 8)
	// Controlled key: packet-derived word stored first.
	w := fb.Load(pkt, 26, 8)
	fb.Store(fb.GlobalAddr(keyB), 0, w, 8)
	hCtl := fb.Havoc(hid, fb.GlobalAddr(keyB), 8)
	fb.Ret(fb.Xor(hFixed, hCtl))
	fb.Seal()

	a := runOn(t, mod)
	sites := a.HashSites()
	if len(sites) != 2 {
		t.Fatalf("got %d hash sites", len(sites))
	}
	// Deterministic order: block/instr order within nf_process.
	if !sites[0].Foldable {
		t.Errorf("fixed-key site not foldable: key %v", sites[0].Key)
	}
	if sites[1].Foldable {
		t.Errorf("packet-key site foldable")
	}
	if sites[1].Key.Class != TaintedLinear || !sites[1].Key.Bytes.Has(26) {
		t.Errorf("packet-key taint = %v, want linear including byte 26", sites[1].Key)
	}
	hv := nth(t, mod.Funcs["nf_process"], ir.OpHavoc, 0)
	if a.ClassOf(hv) != Untainted {
		t.Errorf("fixed-key havoc output = %v, want untainted", a.ClassOf(hv))
	}
	hv2 := nth(t, mod.Funcs["nf_process"], ir.OpHavoc, 1)
	if a.ClassOf(hv2) != TaintedOpaque {
		t.Errorf("controlled-key havoc output = %v, want opaque (never linear)", a.ClassOf(hv2))
	}
}

// TestImplicitFlowBranch: constants assigned under a tainted branch are
// input-dependent — the classic implicit-flow case the control-taint
// pass must catch.
func TestImplicitFlowBranch(t *testing.T) {
	mod := ir.NewModule("t")
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	b0 := fb.Load(pkt, 0, 1)
	x := fb.VarImm(0)
	cond := fb.CmpUlt(b0, fb.Const(10))
	fb.If(cond, func() {
		x.Set(fb.Const(1))
	}, func() {
		x.Set(fb.Const(2))
	})
	// After the join, y depends on the branch even though both arms
	// assigned constants.
	y := fb.AddImm(x.R(), 5)
	// But a fresh constant after the postdominator is untainted again.
	z := fb.Const(7)
	fb.Ret(fb.Xor(y, z))
	fb.Seal()

	a := runOn(t, mod)
	f := mod.Funcs["nf_process"]
	var adds []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.Bin == ir.Add {
				adds = append(adds, in)
			}
		}
	}
	if len(adds) != 1 {
		t.Fatalf("got %d adds", len(adds))
	}
	if !a.instr[adds[0]].Val.Tainted() {
		t.Fatalf("implicit flow missed: x+5 classified untainted")
	}
	// The const 7 sits after the branch's postdominator: untainted.
	var c7 *ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && in.Imm == 7 {
				c7 = in
			}
		}
	}
	if c7 == nil {
		t.Fatal("const 7 not found")
	}
	if got := a.ClassOf(c7); got != Untainted {
		t.Fatalf("const after reconvergence = %v, want untainted (postdominator precision)", got)
	}
}

// TestImplicitFlowMemory: a store executed only under a tainted branch
// taints the region even when the stored value is constant.
func TestImplicitFlowMemory(t *testing.T) {
	mod := ir.NewModule("t")
	g := mod.AddGlobal("flag", 8, 8)
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	b0 := fb.Load(pkt, 1, 1)
	fb.If(fb.CmpEqImm(b0, 0x42), func() {
		fb.Store(fb.GlobalAddr(g), 0, fb.Const(1), 8)
	}, nil)
	v := fb.Load(fb.GlobalAddr(g), 0, 8)
	fb.Ret(v)
	fb.Seal()

	a := runOn(t, mod)
	ld := nth(t, mod.Funcs["nf_process"], ir.OpLoad, 1)
	if !a.instr[ld].Val.Tainted() {
		t.Fatal("conditionally-stored global load classified untainted")
	}
}

// TestInterprocedural: taint crosses call boundaries in both directions
// (args down, returns up), and a callee invoked under tainted control
// taints its definitions via the inherited entry control.
func TestInterprocedural(t *testing.T) {
	mod := ir.NewModule("t")
	mod.Layout()
	hb := mod.NewFunc("helper", 1)
	doubled := hb.Add(hb.Param(0), hb.Param(0))
	hb.Ret(doubled)
	helper := hb.Seal()

	cb := mod.NewFunc("cheer", 0)
	cb.RetImm(3)
	cheer := cb.Seal()

	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	b0 := fb.Load(pkt, 2, 1)
	tainted := fb.Call(helper, b0)
	clean := fb.Call(helper, fb.Const(9))
	gated := fb.VarImm(0)
	fb.If(fb.CmpUlt(b0, fb.Const(5)), func() {
		gated.Set(fb.Call(cheer))
	}, nil)
	fb.Ret(fb.Xor(fb.Xor(tainted, clean), gated.R()))
	fb.Seal()

	a := runOn(t, mod)
	f := mod.Funcs["nf_process"]
	call0 := nth(t, f, ir.OpCall, 0)
	if !a.instr[call0].Val.Tainted() {
		t.Error("helper(packet byte) return untainted")
	}
	// helper's params joined tainted and untainted args: the summary is
	// tainted, so even the constant call's result is conservatively
	// tainted (summaries are per-callee, not per-site).
	add := nth(t, mod.Funcs["helper"], ir.OpBin, 0)
	if !a.instr[add].Val.Tainted() {
		t.Error("helper body untainted despite tainted call site")
	}
	// cheer runs only under a tainted branch: its constant return must
	// carry the inherited control taint.
	retc := nth(t, mod.Funcs["cheer"], ir.OpConst, 0)
	if !a.instr[retc].Val.Tainted() {
		t.Error("callee under tainted control classified untainted")
	}
}

// TestUnreachedFunctionIsOpaque: functions not reachable from a hinted
// entry get no facts and degrade to TaintedOpaque.
func TestUnreachedFunctionIsOpaque(t *testing.T) {
	mod := ir.NewModule("t")
	mod.Layout()
	ob := mod.NewFunc("orphan", 0)
	ob.RetImm(1)
	ob.Seal()
	fb := mod.NewFunc("nf_process", 2)
	fb.RetImm(0)
	fb.Seal()

	a := runOn(t, mod)
	in := nth(t, mod.Funcs["orphan"], ir.OpConst, 0)
	if _, ok := a.Of(in); ok {
		t.Fatal("orphan instruction has facts")
	}
	if got := a.ClassOf(in); got != TaintedOpaque {
		t.Fatalf("orphan class = %v, want opaque", got)
	}
}

// TestAllocUnderTaintedControl: the bump allocator makes later
// allocation addresses input-dependent when an earlier alloc executes
// conditionally.
func TestAllocUnderTaintedControl(t *testing.T) {
	mod := ir.NewModule("t")
	mod.Layout()
	fb := mod.NewFunc("nf_process", 2)
	pkt := fb.Const(ir.PacketBase)
	b0 := fb.Load(pkt, 3, 1)
	fb.If(fb.CmpEqImm(b0, 1), func() {
		fb.AllocImm(64)
	}, nil)
	later := fb.AllocImm(32) // address depends on whether the first ran
	fb.Ret(later)
	fb.Seal()

	a := runOn(t, mod)
	second := nth(t, mod.Funcs["nf_process"], ir.OpAlloc, 1)
	if !a.instr[second].Val.Tainted() {
		t.Fatal("post-conditional alloc address classified untainted")
	}
}

func TestByteSetString(t *testing.T) {
	var s ByteSet
	for _, i := range []uint64{26, 27, 28, 29, 34} {
		s.add(i)
	}
	if got := s.String(); got != "26-29,34" {
		t.Fatalf("ByteSet.String() = %q", got)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if join(PacketBytes(0, 1), Opaque()).Class != TaintedOpaque {
		t.Fatal("join with opaque not opaque")
	}
	if widen(PacketBytes(0, 1), PacketBytes(0, 2)) != Opaque() {
		t.Fatal("growing linear set must widen to opaque")
	}
}

package taint

import (
	"fmt"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/ir"
)

// Of returns the classification of one instruction. ok is false when
// the instruction was never reached by the analysis (its function is
// unreachable from every hinted entry, or the block is dead).
func (a *Analysis) Of(in *ir.Instr) (InstrTaint, bool) {
	it, ok := a.instr[in]
	return it, ok
}

// ClassOf returns the class of the value an instruction defines (or its
// condition/stored value/return value — see InstrTaint.Val), degrading
// to TaintedOpaque for unreached instructions: the analysis only proves
// facts about executions starting at its entry hints.
func (a *Analysis) ClassOf(in *ir.Instr) Class {
	if it, ok := a.instr[in]; ok {
		return it.Val.Class
	}
	return TaintedOpaque
}

// AddrClassOf returns the class of a load/store address or havoc key
// pointer, TaintedOpaque when unreached.
func (a *Analysis) AddrClassOf(in *ir.Instr) Class {
	if it, ok := a.instr[in]; ok {
		return it.Addr.Class
	}
	return TaintedOpaque
}

// Summary counts the per-instruction classification outcomes.
type Summary struct {
	// Instructions is how many instructions the analysis reached.
	Instructions int
	Untainted    int
	Linear       int
	Opaque       int
	// HashSites counts the module's havoc sites; FoldableHashSites how
	// many have a provably input-independent key (symbex folds these
	// concretely, and no rainbow table is ever needed for them).
	HashSites         int
	FoldableHashSites int
}

// Stats tallies the solution. Counts are join-order independent, so
// iterating the instruction map is deterministic.
func (a *Analysis) Stats() Summary {
	s := Summary{Instructions: len(a.instr)}
	for _, it := range a.instr {
		switch it.Val.Class {
		case Untainted:
			s.Untainted++
		case TaintedLinear:
			s.Linear++
		default:
			s.Opaque++
		}
	}
	for _, site := range a.HashSites() {
		s.HashSites++
		if site.Foldable {
			s.FoldableHashSites++
		}
	}
	return s
}

// HashSiteTaint is one havoc site with its key controllability: Key
// joins the key buffer's content taint, the key pointer's taint, and
// the site's control taint. Foldable sites have a provably fixed key —
// their hash output is a run-to-run constant the symbolic engine can
// compute outright.
type HashSiteTaint struct {
	analysis.HavocSite
	Key      Taint
	Reached  bool
	Foldable bool
}

// HashSites classifies every havoc site in deterministic order
// (function name, block index, instruction index). Unreached sites are
// conservatively not foldable.
func (a *Analysis) HashSites() []HashSiteTaint {
	var out []HashSiteTaint
	for _, site := range a.mf.HavocSites() {
		st := HashSiteTaint{HavocSite: site, Key: Opaque()}
		in := site.Block.Instrs[site.InstrIdx]
		if it, ok := a.instr[in]; ok {
			st.Reached = true
			st.Key = it.Addr
			st.Foldable = !it.Addr.Tainted()
		}
		out = append(out, st)
	}
	return out
}

// Controllability renders the adversary-controllability findings: every
// access whose address the input controls, ranked by what that control
// buys the adversary — a tainted address reaching a DRAM-cost (non
// always-hit) region is the paper's core vulnerability signal and
// leads at SevWarn; cache-resident tainted accesses and hash-site key
// controllability are advisory. cc may be nil (no cost ranking: every
// tainted address warns).
func (a *Analysis) Controllability(cc *cachecost.Analysis) []analysis.Finding {
	var out []analysis.Finding
	for i := range a.mr.Accesses {
		acc := &a.mr.Accesses[i]
		in := acc.Block.Instrs[acc.InstrIdx]
		it, ok := a.instr[in]
		if !ok || !it.Addr.Tainted() {
			continue
		}
		kind := "load"
		if acc.IsStore {
			kind = "store"
		}
		region := "region"
		if acc.Region != nil {
			region = acc.Region.Name()
		}
		costClass := cachecost.Unclassified
		if cc != nil {
			costClass = cc.ClassOf(in)
		}
		if costClass == cachecost.AlwaysHit {
			out = append(out, analysis.Finding{
				Pass: "taint", Sev: analysis.SevInfo,
				Fn: acc.Fn, Block: acc.Block, InstrIdx: acc.InstrIdx,
				Msg: fmt.Sprintf("adversary-controlled %s address (%s) stays cache-resident in %s",
					kind, it.Addr, region),
			})
		} else {
			out = append(out, analysis.Finding{
				Pass: "taint", Sev: analysis.SevWarn,
				Fn: acc.Fn, Block: acc.Block, InstrIdx: acc.InstrIdx,
				Msg: fmt.Sprintf("adversary-controlled %s address (%s) reaches %s %s — DRAM-cost amplification point",
					kind, it.Addr, costClass, region),
			})
		}
	}
	for _, site := range a.HashSites() {
		if !site.Reached {
			continue
		}
		in := site.Block.Instrs[site.InstrIdx]
		if site.Foldable {
			out = append(out, analysis.Finding{
				Pass: "taint", Sev: analysis.SevInfo,
				Fn: site.Fn, Block: site.Block, InstrIdx: site.InstrIdx,
				Msg: fmt.Sprintf("hash site %d key is input-independent — output folds to a constant, no inversion applies", in.HashID),
			})
		} else {
			out = append(out, analysis.Finding{
				Pass: "taint", Sev: analysis.SevInfo,
				Fn: site.Fn, Block: site.Block, InstrIdx: site.InstrIdx,
				Msg: fmt.Sprintf("hash site %d key is adversary-controlled (%s) — collision inversion applies", in.HashID, site.Key),
			})
		}
	}
	return out
}

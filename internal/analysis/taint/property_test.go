package taint

import (
	"math/rand"
	"testing"

	"castan/internal/analysis"
	"castan/internal/interp"
	"castan/internal/ir"
)

// genModule builds a random small NF-shaped module exercising every
// channel the taint analysis must cover: explicit dataflow through
// arithmetic and memory, implicit flow through branches on packet
// data, interprocedural flow through a helper, heap-cursor flow
// through conditionally executed allocs, and hash sites with both
// fixed and packet-contaminated keys. Every loop is counted, so
// execution always terminates.
func genModule(r *rand.Rand) *ir.Module {
	m := ir.NewModule("taintprop")
	nglob := 1 + r.Intn(3)
	globals := make([]*ir.Global, nglob)
	for i := range globals {
		size := uint64(64 * (1 + r.Intn(8))) // 64..512 bytes
		globals[i] = m.AddGlobal(string(rune('a'+i)), size, 64)
	}
	hid := m.AddHash("h", 16, func(b []byte) uint64 {
		var s uint64 = 14695981039346656037
		for _, c := range b {
			s = (s ^ uint64(c)) * 1099511628211
		}
		return s
	})
	m.Layout()

	// Helper called from nf_process with both tainted and untainted
	// arguments; the analysis must join over every call site.
	hb := m.NewFunc("mix", 1)
	hp := hb.Param(0)
	hacc := hb.Var(hb.AddImm(hb.MulImm(hp, 2654435761), 17))
	hb.If(hb.CmpUlt(hb.AndImm(hacc.R(), 0xff), hb.Const(128)), func() {
		hacc.Set(hb.Xor(hacc.R(), hb.Const(0x5bd1e995)))
	}, nil)
	hb.Ret(hacc.R())
	helper := hb.Seal()

	fb := m.NewFunc("nf_process", 2)
	pkt := fb.Param(0)
	// Two accumulators: tacc mixes packet-derived data, uacc only
	// constants. Statements emitted at top level through uacc are the
	// values the soundness check actually bites on.
	tacc := fb.Var(fb.Load(pkt, uint64(r.Intn(40)), 2))
	uacc := fb.VarImm(uint64(r.Intn(1 << 20)))

	var stmt func(depth int)
	stmt = func(depth int) {
		g := globals[r.Intn(nglob)]
		base := fb.GlobalAddr(g)
		switch r.Intn(12) {
		case 0: // constant-address global load
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			tacc.Set(fb.Add(tacc.R(), fb.Load(base, off, 8)))
		case 1: // constant-address global store of tainted data
			off := uint64(r.Intn(int(g.Size-8))) &^ 7
			fb.Store(base, off, tacc.R(), 8)
		case 2: // packet byte load
			tacc.Set(fb.Add(tacc.R(), fb.Load(pkt, uint64(r.Intn(40)), 1)))
		case 3: // interval-address load: masked tainted index
			mask := (g.Size - 1) &^ 7
			idx := fb.AndImm(tacc.R(), mask)
			tacc.Set(fb.Add(tacc.R(), fb.Load(fb.Add(base, idx), 0, 8)))
		case 4: // counted loop
			if depth >= 2 {
				return
			}
			trip := uint64(2 + r.Intn(3))
			i := fb.VarImm(0)
			fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(trip)) }, func() {
				stmt(depth + 1)
				i.Set(fb.AddImm(i.R(), 1))
			})
		case 5: // branch on packet-derived data: implicit-flow source
			if depth >= 3 {
				return
			}
			cond := fb.CmpUlt(fb.AndImm(tacc.R(), 0xff), fb.Const(uint64(r.Intn(256))))
			fb.If(cond, func() { stmt(depth + 1) }, func() { stmt(depth + 1) })
		case 6: // branch on untainted data
			if depth >= 3 {
				return
			}
			cond := fb.CmpUlt(fb.AndImm(uacc.R(), 0xff), fb.Const(uint64(r.Intn(256))))
			fb.If(cond, func() { stmt(depth + 1) }, nil)
		case 7: // havoc over a global prefix (key may be contaminated by case 1)
			tacc.Set(fb.Add(tacc.R(), fb.Havoc(hid, base, 8)))
		case 8: // helper call: tainted or untainted argument
			if r.Intn(2) == 0 {
				tacc.Set(fb.Call(helper, tacc.R()))
			} else {
				uacc.Set(fb.Call(helper, uacc.R()))
			}
		case 9: // heap alloc, store, load back
			buf := fb.AllocImm(uint64(64 * (1 + r.Intn(2))))
			fb.Store(buf, 0, tacc.R(), 8)
			tacc.Set(fb.Add(tacc.R(), fb.Load(buf, 0, 8)))
		case 10: // select on tainted condition between constants
			c := fb.CmpEqImm(fb.AndImm(tacc.R(), 1), 0)
			tacc.Set(fb.Add(tacc.R(), fb.Select(c, fb.Const(3), fb.Const(9))))
		case 11: // untainted arithmetic
			uacc.Set(fb.AddImm(fb.MulImm(uacc.R(), 1099511628211), uint64(r.Intn(1024))))
		}
	}
	n := 4 + r.Intn(8)
	for s := 0; s < n; s++ {
		stmt(0)
	}
	fb.Ret(fb.Xor(tacc.R(), uacc.R()))
	fb.Seal()
	return m
}

// run executes the module's nf_process over the given frames on a
// fresh machine and records, per instruction, the stream of values it
// defined across the whole run.
func runStreams(t *testing.T, m *ir.Module, frames [][]byte) map[*ir.Instr][]uint64 {
	t.Helper()
	mach := interp.NewMachine(m)
	streams := make(map[*ir.Instr][]uint64)
	mach.Hooks.OnDef = func(_ *ir.Func, in *ir.Instr, val uint64) {
		streams[in] = append(streams[in], val)
	}
	for i, f := range frames {
		mach.Mem.WriteBytes(ir.PacketBase, f)
		if _, err := mach.Call("nf_process", ir.PacketBase, uint64(len(f))); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	return streams
}

// TestSoundnessRandomModules is the soundness gate for the taint
// analysis: across random modules, every instruction classified
// Untainted must produce a byte-identical value stream when the same
// module processes two packet sequences of equal length but different
// content. Any divergence means adversary-controlled data leaked into
// a value the analysis promised was input-independent — through
// arithmetic, memory, control, the heap cursor, or a hash. Taint is
// defined relative to fixed-length inputs, so both runs use the same
// frame count and frame sizes.
func TestSoundnessRandomModules(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	untaintedSeen := 0
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		m := genModule(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
		mf := analysis.ForModule(m)
		mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
		a := Run(mf, mr, Config{EntryHints: NFEntryTaints()})

		nframes := 3 + r.Intn(4)
		mk := func(rr *rand.Rand) [][]byte {
			frames := make([][]byte, nframes)
			for i := range frames {
				f := make([]byte, 42)
				rr.Read(f)
				frames[i] = f
			}
			return frames
		}
		s1 := runStreams(t, m, mk(rand.New(rand.NewSource(int64(seed)*7919+1))))
		s2 := runStreams(t, m, mk(rand.New(rand.NewSource(int64(seed)*7919+2))))

		check := func(in *ir.Instr) {
			if a.ClassOf(in) != Untainted {
				return
			}
			v1, v2 := s1[in], s2[in]
			if len(v1) > 0 {
				untaintedSeen++
			}
			if len(v1) != len(v2) {
				t.Fatalf("seed %d: untainted %s executed %d vs %d times across runs",
					seed, in.Disassemble(), len(v1), len(v2))
			}
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("seed %d: untainted %s diverged at step %d: %#x vs %#x",
						seed, in.Disassemble(), i, v1[i], v2[i])
				}
			}
		}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					check(in)
				}
			}
		}
	}
	if untaintedSeen == 0 {
		t.Error("no executed untainted instructions across all random modules; property test is vacuous")
	}
}

package analysis

import (
	"fmt"
	"io"
	"sort"

	"castan/internal/ir"
)

// Severity ranks findings. Errors mean the module is wrong and must not
// reach symbolic execution; warnings mean a property could not be proven
// safe (typically data-dependent extents); infos are advisory.
type Severity int

// Severities, most severe first.
const (
	SevError Severity = iota
	SevWarn
	SevInfo
)

// String returns the severity label.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	case SevInfo:
		return "info"
	}
	return fmt.Sprintf("sev(%d)", int(s))
}

// Finding is one structured diagnostic anchored at an instruction (or a
// whole block/function when InstrIdx is -1).
type Finding struct {
	Pass     string // producing pass: "validate", "defuse", "memregion", "liveness", "loops"
	Sev      Severity
	Fn       *ir.Func
	Block    *ir.Block
	InstrIdx int
	Msg      string
}

// Ref renders the finding's program point as func/block/idx.
func (f Finding) Ref() string {
	switch {
	case f.Fn == nil:
		return "module"
	case f.Block == nil:
		return f.Fn.Name
	case f.InstrIdx < 0:
		return f.Fn.Name + "/" + f.Block.Name
	default:
		return instrRef(f.Fn, f.Block, f.InstrIdx)
	}
}

// String renders "sev pass ref: msg [instr]".
func (f Finding) String() string {
	s := fmt.Sprintf("%s %s %s: %s", f.Sev, f.Pass, f.Ref(), f.Msg)
	if f.Block != nil && f.InstrIdx >= 0 && f.InstrIdx < len(f.Block.Instrs) {
		s += fmt.Sprintf("  [%s]", f.Block.Instrs[f.InstrIdx].Disassemble())
	}
	return s
}

// Report collects the findings of a pass pipeline run.
type Report struct {
	Module   string
	Findings []Finding
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// Count returns how many findings have the given severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Sev == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is an error.
func (r *Report) HasErrors() bool { return r.Count(SevError) > 0 }

// Sort orders findings by severity, then function name, block index, and
// instruction index, so output is deterministic and the worst news leads.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Sev != b.Sev {
			return a.Sev < b.Sev
		}
		an, bn := "", ""
		if a.Fn != nil {
			an = a.Fn.Name
		}
		if b.Fn != nil {
			bn = b.Fn.Name
		}
		if an != bn {
			return an < bn
		}
		ai, bi := -1, -1
		if a.Block != nil {
			ai = a.Block.Index
		}
		if b.Block != nil {
			bi = b.Block.Index
		}
		if ai != bi {
			return ai < bi
		}
		return a.InstrIdx < b.InstrIdx
	})
}

// Dedup removes exact duplicate findings (same pass, severity, program
// point, and message), keeping the first occurrence of each and
// preserving order otherwise. Passes that walk overlapping structures
// (e.g. a lint pass and a consumer pass flagging the same access) can
// merge their findings into one report without double-reporting.
func (r *Report) Dedup() {
	type key struct {
		pass     string
		sev      Severity
		fn       *ir.Func
		block    *ir.Block
		instrIdx int
		msg      string
	}
	seen := make(map[key]bool, len(r.Findings))
	out := r.Findings[:0]
	for _, f := range r.Findings {
		k := key{f.Pass, f.Sev, f.Fn, f.Block, f.InstrIdx, f.Msg}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, f)
	}
	r.Findings = out
}

// Write renders the report, findings at or above minSev, one per line.
func (r *Report) Write(w io.Writer, minSev Severity) error {
	for _, f := range r.Findings {
		if f.Sev > minSev {
			continue
		}
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s: %d error(s), %d warning(s), %d info\n",
		r.Module, r.Count(SevError), r.Count(SevWarn), r.Count(SevInfo))
	return err
}

// Options tunes a Lint run.
type Options struct {
	// EntryHints seeds the memory-region pass with the calling convention
	// of root functions: for each named function, the abstract values of
	// its parameters. Functions absent from the map (and root functions
	// without hints) start with unknown parameters.
	EntryHints map[string][]Value
	// NoDeadDefs suppresses the Info-level dead-definition findings.
	NoDeadDefs bool
}

// NFEntryHints returns the hints for the repository's NF calling
// convention: nf_process(pktAddr, pktLen) is always invoked by the
// harness with the packet slot's base address and a frame length within
// the slot.
func NFEntryHints() map[string][]Value {
	return map[string][]Value{
		"nf_process": {
			PacketPtr(0),
			NumRange(0, ir.PacketSlot),
		},
	}
}

// Lint runs the full pass pipeline over a module and returns the merged,
// sorted report: structural validation, def-before-use, the memory-region
// extent checks, and liveness advisories. The module must already be laid
// out (globals addressed); Lint does not mutate it.
func Lint(mod *ir.Module, opts Options) *Report {
	rep := &Report{Module: mod.Name}
	if err := mod.Validate(); err != nil {
		// Structural breakage makes deeper passes unreliable; report and
		// stop. The error text already carries the program point.
		rep.add(Finding{Pass: "validate", Sev: SevError, Msg: err.Error()})
		return rep
	}
	mf := ForModule(mod)
	for _, name := range mf.FuncNames {
		f := mod.Funcs[name]
		fa := mf.Funcs[f]
		checkDefBeforeUse(f, fa, rep)
		if !opts.NoDeadDefs {
			checkDeadDefs(f, fa, rep)
		}
	}
	mr := RunMemRegions(mf, opts.EntryHints)
	mr.report(rep)
	rep.Sort()
	return rep
}

package analysis_test

// Catalog golden for the value-range pass: one line per NF with the
// fixpoint stats (rounds, facts, singletons, decided branches, dead
// edges, unreachable blocks) plus every dead-edge/unreachable finding.
// Like the taint golden, it lives in the external test package so it can
// import internal/nf without a cycle; `make lint-catalog` gates drift.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"castan/internal/analysis"
	"castan/internal/analysis/vrange"
	"castan/internal/nf"
)

func TestVRangeCatalogGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mf := analysis.ForModule(inst.Mod)
		a := vrange.Run(mf, vrange.Config{EntryHints: vrange.NFEntryRanges()})
		if a.Capped {
			t.Errorf("%s: vrange analysis hit a fixpoint cap and degraded to top", name)
		}
		s := a.Stats()
		fmt.Fprintf(&buf, "%s: funcs=%d rounds=%d facts=%d singletons=%d decided=%d dead_edges=%d unreachable=%d\n",
			name, s.Funcs, s.Rounds, s.Facts, s.Singletons, s.DecidedBranches, s.DeadEdges, s.UnreachableBlocks)
		for _, f := range a.Findings() {
			fmt.Fprintf(&buf, "  %s %s: %s\n", f.Sev, f.Ref(), f.Msg)
		}
	}

	golden := filepath.Join("testdata", "vrange_catalog.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("vrange catalog drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

package analysis

import (
	"strings"
	"testing"

	"castan/internal/ir"
	"castan/internal/nf"
)

// buildDiamond returns a function shaped
//
//	entry → (then | else) → join → ret
func buildDiamond(t *testing.T) *ir.Func {
	t.Helper()
	mod := ir.NewModule("diamond")
	fb := mod.NewFunc("f", 1)
	p := fb.Param(0)
	out := fb.VarImm(0)
	fb.If(fb.CmpEqImm(p, 0), func() {
		out.Set(fb.Const(1))
	}, func() {
		out.Set(fb.Const(2))
	})
	fb.Ret(out.R())
	fb.Seal()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("diamond module invalid: %v", err)
	}
	return mod.Funcs["f"]
}

func TestCFGFactsDiamond(t *testing.T) {
	f := buildDiamond(t)
	fa := ForFunc(f)

	entry := f.Entry()
	if len(fa.RPO) != len(f.Blocks) {
		t.Fatalf("RPO covers %d of %d blocks", len(fa.RPO), len(f.Blocks))
	}
	if fa.RPO[0] != entry {
		t.Fatalf("RPO[0] = %s, want entry", fa.RPO[0].Name)
	}
	// Entry has no predecessors; every other block has at least one.
	if len(fa.Preds[entry.Index]) != 0 {
		t.Fatalf("entry has %d preds", len(fa.Preds[entry.Index]))
	}
	for _, b := range f.Blocks[1:] {
		if len(fa.Preds[b.Index]) == 0 {
			t.Errorf("block %s has no preds", b.Name)
		}
	}
	// The entry dominates everything; the two arms dominate nothing else.
	for _, b := range f.Blocks {
		if !fa.Dominates(entry, b) {
			t.Errorf("entry should dominate %s", b.Name)
		}
	}
	arms := entry.Terminator()
	join := arms.Blk0.Succs()[0]
	if fa.Dominates(arms.Blk0, join) || fa.Dominates(arms.Blk1, join) {
		t.Errorf("neither arm may dominate the join block")
	}
	if fa.Idom[join.Index] != entry {
		t.Errorf("idom(join) = %s, want entry", fa.Idom[join.Index].Name)
	}
}

func TestLoopForestNestingAndTripBounds(t *testing.T) {
	mod := ir.NewModule("loops")
	fb := mod.NewFunc("f", 0)
	sum := fb.VarImm(0)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), fb.Const(10)) }, func() {
		j := fb.VarImm(0)
		fb.While(func() ir.Reg { return fb.CmpUlt(j.R(), fb.Const(3)) }, func() {
			sum.Set(fb.Add(sum.R(), j.R()))
			j.Set(fb.AddImm(j.R(), 1))
		})
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(sum.R())
	fb.Seal()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}

	fa := ForFunc(mod.Funcs["f"])
	lf := fa.Loops
	if len(lf.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(lf.Loops))
	}
	outer, inner := lf.Loops[0], lf.Loops[1]
	if outer.Header.Index > inner.Header.Index {
		outer, inner = inner, outer
	}
	if inner.Parent != outer {
		t.Fatalf("inner.Parent = %v, want outer", inner.Parent)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d/%d, want 1/2", outer.Depth, inner.Depth)
	}
	if got := lf.Depth(inner.Header); got != 2 {
		t.Errorf("Depth(inner header) = %d, want 2", got)
	}
	if outer.TripBound != 10 {
		t.Errorf("outer trip bound = %d, want 10", outer.TripBound)
	}
	if inner.TripBound != 3 {
		t.Errorf("inner trip bound = %d, want 3", inner.TripBound)
	}
	if !outer.Contains(inner.Header) || inner.Contains(outer.Header) {
		t.Errorf("containment wrong: outer⊇inner expected")
	}
	for _, h := range lf.Headers() {
		if !lf.IsHeader(h) {
			t.Errorf("header %s not recognized", h.Name)
		}
	}
}

func TestTripBoundUnknownForDataDependentLimit(t *testing.T) {
	mod := ir.NewModule("datadep")
	fb := mod.NewFunc("f", 1)
	limit := fb.Param(0)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), limit) }, func() {
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(i.R())
	fb.Seal()
	mod.Layout()

	fa := ForFunc(mod.Funcs["f"])
	if len(fa.Loops.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(fa.Loops.Loops))
	}
	if b := fa.Loops.Loops[0].TripBound; b != 0 {
		t.Errorf("trip bound = %d, want 0 (unknown: limit is a parameter)", b)
	}
}

func TestLiveness(t *testing.T) {
	f := buildDiamond(t)
	fa := ForFunc(f)

	// The out variable's register is live out of both arms into the join.
	join := f.Entry().Terminator().Blk0.Succs()[0]
	ret := join.Terminator()
	if ret.Op != ir.OpRet {
		t.Fatalf("join does not end in ret")
	}
	retReg := ret.A
	for _, arm := range f.Entry().Succs() {
		if !fa.Live.LiveOut(arm, retReg) {
			t.Errorf("r%d should be live out of %s", retReg, arm.Name)
		}
	}
	if !fa.Live.LiveIn(join, retReg) {
		t.Errorf("r%d should be live into %s", retReg, join.Name)
	}
	if n := fa.Live.LiveInCount(join); n < 1 {
		t.Errorf("LiveInCount(join) = %d, want >= 1", n)
	}
	// The condition register dies after the entry block.
	cond := f.Entry().Terminator().A
	if fa.Live.LiveIn(join, cond) {
		t.Errorf("condition r%d should be dead at the join", cond)
	}
}

func TestDefBeforeUseFlagsUndefinedRegister(t *testing.T) {
	mod := ir.NewModule("broken-defuse")
	fb := mod.NewFunc("f", 0)
	bogus := fb.NewReg() // never defined
	fb.Ret(fb.AddImm(bogus, 1))
	fb.Seal()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("module should pass structural validation: %v", err)
	}

	rep := Lint(mod, Options{})
	if !rep.HasErrors() {
		t.Fatalf("expected def-before-use error, got none:\n%v", rep.Findings)
	}
	found := false
	for _, fd := range rep.Findings {
		if fd.Pass == "defuse" && fd.Sev == SevError &&
			strings.Contains(fd.Msg, "possibly-undefined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no defuse error in findings: %v", rep.Findings)
	}
}

func TestDefBeforeUsePathSensitive(t *testing.T) {
	// r defined on only one arm of a branch, then used after the join:
	// must be flagged (the must-analysis meet loses it).
	mod := ir.NewModule("one-arm")
	fb := mod.NewFunc("f", 1)
	p := fb.Param(0)
	r := fb.NewReg()
	fb.If(fb.CmpEqImm(p, 0), func() {
		fb.MovImm(r, 7)
	}, nil)
	fb.Ret(r)
	fb.Seal()
	mod.Layout()

	rep := Lint(mod, Options{})
	if got := rep.Count(SevError); got == 0 {
		t.Fatalf("expected a defuse error for one-arm definition")
	}
}

func TestDeadDefInfo(t *testing.T) {
	mod := ir.NewModule("deadconst")
	fb := mod.NewFunc("f", 0)
	fb.Const(42) // never read
	fb.RetImm(0)
	fb.Seal()
	mod.Layout()

	rep := Lint(mod, Options{})
	if rep.HasErrors() {
		t.Fatalf("unexpected errors: %v", rep.Findings)
	}
	if rep.Count(SevInfo) == 0 {
		t.Fatalf("expected a dead-definition info finding")
	}
	rep = Lint(mod, Options{NoDeadDefs: true})
	if rep.Count(SevInfo) != 0 {
		t.Fatalf("NoDeadDefs should suppress info findings: %v", rep.Findings)
	}
}

func TestHavocSitesDeterministic(t *testing.T) {
	inst, err := nf.New("nat-chain")
	if err != nil {
		t.Fatal(err)
	}
	mf := ForModule(inst.Mod)
	sites := mf.HavocSites()
	if len(sites) == 0 {
		t.Fatalf("nat-chain should contain havoc sites")
	}
	for _, s := range sites {
		if s.HashID < 0 || s.HashID >= len(inst.Mod.Hashes) {
			t.Errorf("site %s/%s/%d has bad hash id %d", s.Fn.Name, s.Block.Name, s.InstrIdx, s.HashID)
		}
	}
	// Same module, same enumeration.
	again := ForModule(inst.Mod).HavocSites()
	if len(again) != len(sites) {
		t.Fatalf("non-deterministic site count: %d vs %d", len(sites), len(again))
	}
	for i := range sites {
		if sites[i] != again[i] {
			t.Errorf("site %d differs between runs", i)
		}
	}
}

// TestLintSeedCorpusClean is the pass pipeline's contract with the NF
// library: no seed NF may produce an error-level finding, and the only
// expected warnings are lpm-dl2's data-dependent stage-2 index (whose
// escape the abstraction genuinely cannot refute).
func TestLintSeedCorpusClean(t *testing.T) {
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep := Lint(inst.Mod, Options{EntryHints: NFEntryHints(), NoDeadDefs: true})
		if rep.HasErrors() {
			for _, fd := range rep.Findings {
				if fd.Sev == SevError {
					t.Errorf("%s: %s", name, fd)
				}
			}
			continue
		}
		for _, fd := range rep.Findings {
			if fd.Sev == SevWarn && name != "lpm-dl2" {
				t.Errorf("%s: unexpected warning: %s", name, fd)
			}
		}
	}
}

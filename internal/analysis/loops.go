package analysis

import (
	"math"
	"sort"

	"castan/internal/ir"
)

// Loop is one natural loop: a back edge tail→header where the header
// dominates the tail, plus every block that can reach the tail without
// passing through the header. Loops sharing a header are merged, as
// usual.
type Loop struct {
	Header *ir.Block
	// Blocks is the loop body including the header, by ascending index.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are the directly nested loops, by header index.
	Children []*Loop
	// Depth is the nesting depth: 1 for top-level loops.
	Depth int
	// TripBound is the statically derived maximum trip count, when the
	// loop matches the canonical counted pattern (const-initialized
	// counter, const step, const limit in the header comparison);
	// 0 means unknown/unbounded.
	TripBound uint64

	inLoop []bool // indexed by block index
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool {
	return b.Index < len(l.inLoop) && l.inLoop[b.Index]
}

// LoopForest is every natural loop of a function, innermost-first
// queryable via Innermost/Depth.
type LoopForest struct {
	// Loops lists all loops by ascending header index (so outer loops
	// with earlier headers come first; nesting is explicit via Parent).
	Loops []*Loop

	nblocks   int
	innermost []*Loop // per block index
}

// IsHeader reports whether b heads a natural loop.
func (lf *LoopForest) IsHeader(b *ir.Block) bool {
	for _, l := range lf.Loops {
		if l.Header == b {
			return true
		}
	}
	return false
}

// Innermost returns the innermost loop containing b, or nil.
func (lf *LoopForest) Innermost(b *ir.Block) *Loop {
	if b.Index >= len(lf.innermost) {
		return nil
	}
	return lf.innermost[b.Index]
}

// Depth returns the loop nesting depth of b (0 = not in any loop).
func (lf *LoopForest) Depth(b *ir.Block) int {
	if l := lf.Innermost(b); l != nil {
		return l.Depth
	}
	return 0
}

// Headers returns the loop headers by ascending block index.
func (lf *LoopForest) Headers() []*ir.Block {
	heads := make([]*ir.Block, 0, len(lf.Loops))
	for _, l := range lf.Loops {
		heads = append(heads, l.Header)
	}
	return heads
}

// buildLoops detects natural loops from back edges (tail→header with
// header dominating tail) and assembles the nesting forest. Retreating
// edges of irreducible regions (whose target does not dominate the
// source) do not form natural loops and are ignored here; the icfg
// consumer treats them identically to the old DFS marking because the
// builder only ever emits reducible control flow.
func (fa *Facts) buildLoops() {
	f := fa.Fn
	n := len(f.Blocks)
	lf := &LoopForest{nblocks: n, innermost: make([]*Loop, n)}
	fa.Loops = lf

	// Collect back-edge tails per header, in deterministic order.
	tails := make([][]*ir.Block, n)
	var headers []*ir.Block
	for _, b := range f.Blocks {
		if !fa.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if fa.Dominates(s, b) {
				if tails[s.Index] == nil {
					headers = append(headers, s)
				}
				tails[s.Index] = append(tails[s.Index], b)
			}
		}
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i].Index < headers[j].Index })

	for _, h := range headers {
		l := &Loop{Header: h, inLoop: make([]bool, n)}
		l.inLoop[h.Index] = true
		// Body = header + all blocks reaching a tail without crossing the
		// header (classic worklist over predecessors).
		var work []*ir.Block
		for _, t := range tails[h.Index] {
			if !l.inLoop[t.Index] {
				l.inLoop[t.Index] = true
				work = append(work, t)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, p := range fa.Preds[b.Index] {
				if fa.Reachable(p) && !l.inLoop[p.Index] {
					l.inLoop[p.Index] = true
					work = append(work, p)
				}
			}
		}
		for _, b := range f.Blocks {
			if l.inLoop[b.Index] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		lf.Loops = append(lf.Loops, l)
	}

	// Nesting: loop A is inside loop B iff B contains A's header (headers
	// are distinct after merging). Parent = smallest containing loop.
	for _, l := range lf.Loops {
		for _, outer := range lf.Loops {
			if outer == l || !outer.Contains(l.Header) {
				continue
			}
			if l.Parent == nil || len(outer.Blocks) < len(l.Parent.Blocks) {
				l.Parent = outer
			}
		}
	}
	for _, l := range lf.Loops {
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range lf.Loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	// Innermost membership: deeper loops overwrite shallower ones.
	byDepth := append([]*Loop(nil), lf.Loops...)
	sort.Slice(byDepth, func(i, j int) bool {
		if byDepth[i].Depth != byDepth[j].Depth {
			return byDepth[i].Depth < byDepth[j].Depth
		}
		return byDepth[i].Header.Index < byDepth[j].Header.Index
	})
	for _, l := range byDepth {
		for _, b := range l.Blocks {
			lf.innermost[b.Index] = l
		}
	}
	for _, l := range lf.Loops {
		l.TripBound = fa.tripBound(l)
	}
}

// tripBound derives a static trip-count bound for the canonical counted
// loop the builder's While emits:
//
//	header:  ... ; c = cmp <ult|ule|ne> i, limit ; condbr c, body, exit
//
// where limit's only definition in the function is a constant, and i is a
// counter register with exactly one definition outside the loop (a
// constant init) and one inside (i = i + step, step constant, via the
// builder's mov-from-add idiom or a direct add). Returns 0 when the
// pattern does not apply.
func (fa *Facts) tripBound(l *Loop) uint64 {
	h := l.Header
	t := h.Terminator()
	if t == nil || t.Op != ir.OpCondBr {
		return 0
	}
	// The comparison must be defined in the header, on the condition reg.
	var cmp *ir.Instr
	for _, in := range h.Instrs {
		if in.Def() == t.A {
			cmp = in
		}
	}
	if cmp == nil || cmp.Op != ir.OpCmp {
		return 0
	}
	// The taken-on-true edge must stay in the loop and the false edge
	// leave it (the While shape); predicates are normalized accordingly.
	if !l.Contains(t.Blk0) || l.Contains(t.Blk1) {
		return 0
	}
	counter, limitReg := cmp.A, cmp.B
	limit, ok := fa.uniqueConst(limitReg)
	if !ok {
		return 0
	}
	init, step, ok := fa.counterShape(l, counter)
	if !ok || step == 0 {
		return 0
	}
	switch cmp.Pred {
	case ir.Ult:
		if init >= limit {
			return 0
		}
		return ceilDiv(limit-init, step)
	case ir.Ule:
		if init > limit {
			return 0
		}
		return ceilDiv(limit-init+1, step)
	case ir.Ne:
		if init >= limit || (limit-init)%step != 0 {
			return 0 // may wrap around; no static bound
		}
		return (limit - init) / step
	}
	return 0
}

func ceilDiv(a, b uint64) uint64 {
	if a > math.MaxUint64-(b-1) {
		return a / b
	}
	return (a + b - 1) / b
}

// uniqueConst reports the value of r when its only definition in the
// function is an OpConst (and r is not a parameter, which is an implicit
// definition).
func (fa *Facts) uniqueConst(r ir.Reg) (uint64, bool) {
	if int(r) < fa.Fn.NumParams {
		return 0, false
	}
	var def *ir.Instr
	for _, b := range fa.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Def() == r {
				if def != nil {
					return 0, false
				}
				def = in
			}
		}
	}
	if def == nil || def.Op != ir.OpConst {
		return 0, false
	}
	return def.Imm, true
}

// counterShape matches the counter register of a counted loop: exactly
// one const definition outside the loop (the init) and one definition
// inside, which must add a unique-const step to the counter — either
// directly (i = add i, s) or through the builder's Var idiom
// (tmp = add i, s; mov i, tmp).
func (fa *Facts) counterShape(l *Loop, r ir.Reg) (init, step uint64, ok bool) {
	if int(r) < fa.Fn.NumParams {
		return 0, 0, false
	}
	var outside, inside *ir.Instr
	for _, b := range fa.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Def() != r {
				continue
			}
			if l.Contains(b) {
				if inside != nil {
					return 0, 0, false
				}
				inside = in
			} else {
				if outside != nil {
					return 0, 0, false
				}
				outside = in
			}
		}
	}
	if outside == nil || inside == nil || outside.Op != ir.OpConst {
		return 0, 0, false
	}
	init = outside.Imm
	add := inside
	if add.Op == ir.OpMov {
		// Follow the Var idiom: the moved-from register must have a unique
		// definition, an add.
		src := add.A
		var def *ir.Instr
		for _, b := range fa.Fn.Blocks {
			for _, in := range b.Instrs {
				if in.Def() == src {
					if def != nil {
						return 0, 0, false
					}
					def = in
				}
			}
		}
		add = def
	}
	if add == nil || add.Op != ir.OpBin || add.Bin != ir.Add {
		return 0, 0, false
	}
	var stepReg ir.Reg
	switch {
	case add.A == r:
		stepReg = add.B
	case add.B == r:
		stepReg = add.A
	default:
		return 0, 0, false
	}
	step, ok = fa.uniqueConst(stepReg)
	return init, step, ok
}

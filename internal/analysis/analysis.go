// Package analysis is the static-analysis layer over internal/ir: one
// shared source of truth for control-flow and dataflow facts that every
// downstream consumer — icfg's potential-cost heuristic, castan's
// contention-set seeding and havoc-site selection, and the irlint CI gate
// — derives from the same pass pipeline instead of re-implementing ad-hoc
// walks.
//
// The pipeline mirrors what CASTAN gets for free from LLVM in the paper
// (and what CANAL inserts as transformation passes before symbolic
// execution runs):
//
//   - CFG facts: predecessor/successor maps and a reverse postorder;
//   - a dominator tree (Cooper-Harvey-Kennedy iterative algorithm);
//   - the natural-loop forest, with nesting depth and, where the bound is
//     statically derivable, loop trip counts;
//   - def-before-use verification and per-block register liveness
//     (iterative backward dataflow);
//   - a memory-region pass classifying every load/store to the global (or
//     packet/heap pseudo-region) it can address, via a base-region +
//     offset-interval abstraction of the register machine, flagging
//     accesses that may escape their region's extent;
//   - a diagnostics engine producing structured per-instruction findings
//     with severities.
//
// All passes are deterministic: iteration orders follow block indices and
// sorted function names, never map order.
package analysis

import (
	"fmt"
	"sort"

	"castan/internal/ir"
)

// Facts holds every per-function CFG fact. Slices are indexed by
// ir.Block.Index.
type Facts struct {
	Fn *ir.Func

	// Preds lists each block's predecessors (by ascending block index).
	Preds [][]*ir.Block
	// RPO is the reverse postorder over reachable blocks, entry first.
	RPO []*ir.Block
	// RPONum maps a block index to its position in RPO, or -1 if the
	// block is unreachable from the entry.
	RPONum []int
	// Idom maps a block index to its immediate dominator; the entry maps
	// to itself and unreachable blocks map to nil.
	Idom []*ir.Block
	// Loops is the natural-loop forest.
	Loops *LoopForest
	// Live is the per-block register liveness solution.
	Live *Liveness
}

// ForFunc computes the CFG facts for one function: predecessors, reverse
// postorder, dominator tree, loop forest, and liveness.
func ForFunc(f *ir.Func) *Facts {
	fa := &Facts{Fn: f}
	fa.buildCFG()
	fa.buildDominators()
	fa.buildLoops()
	fa.Live = liveness(f)
	return fa
}

func (fa *Facts) buildCFG() {
	f := fa.Fn
	n := len(f.Blocks)
	fa.Preds = make([][]*ir.Block, n)
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			fa.Preds[s.Index] = append(fa.Preds[s.Index], b)
		}
	}
	for _, ps := range fa.Preds {
		sort.Slice(ps, func(i, j int) bool { return ps[i].Index < ps[j].Index })
	}
	// Iterative postorder DFS from the entry, successors in Succs order.
	fa.RPONum = make([]int, n)
	for i := range fa.RPONum {
		fa.RPONum[i] = -1
	}
	type frame struct {
		b    *ir.Block
		next int
	}
	seen := make([]bool, n)
	var post []*ir.Block
	stack := []frame{{b: f.Entry()}}
	seen[f.Entry().Index] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := fr.b.Succs()
		if fr.next < len(succs) {
			s := succs[fr.next]
			fr.next++
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	fa.RPO = make([]*ir.Block, len(post))
	for i := range post {
		fa.RPO[len(post)-1-i] = post[i]
	}
	for i, b := range fa.RPO {
		fa.RPONum[b.Index] = i
	}
}

// Reachable reports whether b is reachable from the function entry.
func (fa *Facts) Reachable(b *ir.Block) bool { return fa.RPONum[b.Index] >= 0 }

// buildDominators runs the Cooper-Harvey-Kennedy iterative dominator
// algorithm ("A Simple, Fast Dominance Algorithm"): intersect dominator
// paths in reverse postorder until a fixed point.
func (fa *Facts) buildDominators() {
	f := fa.Fn
	n := len(f.Blocks)
	fa.Idom = make([]*ir.Block, n)
	entry := f.Entry()
	fa.Idom[entry.Index] = entry
	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for fa.RPONum[a.Index] > fa.RPONum[b.Index] {
				a = fa.Idom[a.Index]
			}
			for fa.RPONum[b.Index] > fa.RPONum[a.Index] {
				b = fa.Idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fa.RPO {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range fa.Preds[b.Index] {
				if fa.Idom[p.Index] == nil {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && fa.Idom[b.Index] != newIdom {
				fa.Idom[b.Index] = newIdom
				changed = true
			}
		}
	}
}

// Dominates reports whether a dominates b (reflexively). Unreachable
// blocks are dominated by nothing and dominate nothing (except
// themselves, vacuously excluded here).
func (fa *Facts) Dominates(a, b *ir.Block) bool {
	if !fa.Reachable(a) || !fa.Reachable(b) {
		return false
	}
	entry := fa.Fn.Entry()
	for {
		if b == a {
			return true
		}
		if b == entry {
			return false
		}
		b = fa.Idom[b.Index]
	}
}

// ModuleFacts computes facts for every function of a module, keyed by
// function. FuncNames is sorted for deterministic iteration.
type ModuleFacts struct {
	Mod       *ir.Module
	FuncNames []string
	Funcs     map[*ir.Func]*Facts
}

// ForModule computes per-function facts for the whole module.
func ForModule(mod *ir.Module) *ModuleFacts {
	mf := &ModuleFacts{
		Mod:   mod,
		Funcs: map[*ir.Func]*Facts{},
	}
	for name := range mod.Funcs {
		mf.FuncNames = append(mf.FuncNames, name)
	}
	sort.Strings(mf.FuncNames)
	for _, name := range mf.FuncNames {
		f := mod.Funcs[name]
		mf.Funcs[f] = ForFunc(f)
	}
	return mf
}

// HavocSite is a statically located OpHavoc instruction: the IR-level
// havoc candidates the paper finds by castan_havoc annotation, here
// recovered from the instruction stream together with the loop context
// that makes a site attractive (hash calls inside lookup loops are the
// collision amplifiers).
type HavocSite struct {
	Fn        *ir.Func
	Block     *ir.Block
	InstrIdx  int
	HashID    int
	LoopDepth int
}

// HavocSites enumerates every OpHavoc instruction in the module in
// deterministic order (function name, block index, instruction index).
func (mf *ModuleFacts) HavocSites() []HavocSite {
	var sites []HavocSite
	for _, name := range mf.FuncNames {
		f := mf.Mod.Funcs[name]
		fa := mf.Funcs[f]
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op == ir.OpHavoc {
					sites = append(sites, HavocSite{
						Fn: f, Block: b, InstrIdx: i,
						HashID:    in.HashID,
						LoopDepth: fa.Loops.Depth(b),
					})
				}
			}
		}
	}
	return sites
}

func instrRef(f *ir.Func, b *ir.Block, idx int) string {
	return fmt.Sprintf("%s/%s/%d", f.Name, b.Name, idx)
}

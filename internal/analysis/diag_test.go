package analysis

import (
	"bytes"
	"strings"
	"testing"

	"castan/internal/ir"
)

// diagFixture builds a two-block function so findings can anchor at real
// program points (Ref/String need Fn, Block, and a disassemblable instr).
func diagFixture(t *testing.T) *ir.Func {
	t.Helper()
	mod := ir.NewModule("diag")
	fb := mod.NewFunc("f", 1)
	p := fb.Param(0)
	out := fb.VarImm(0)
	fb.If(fb.CmpEqImm(p, 0), func() {
		out.Set(fb.Const(1))
	}, nil)
	fb.Ret(out.R())
	fb.Seal()
	mod.Layout()
	if err := mod.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return mod.Funcs["f"]
}

func TestSortOrdersBySeverityThenLocation(t *testing.T) {
	f := diagFixture(t)
	b0, b1 := f.Blocks[0], f.Blocks[1]
	rep := &Report{Module: "diag", Findings: []Finding{
		{Pass: "p", Sev: SevInfo, Fn: f, Block: b0, InstrIdx: 0, Msg: "info late"},
		{Pass: "p", Sev: SevWarn, Fn: f, Block: b1, InstrIdx: 2, Msg: "warn b1"},
		{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 1, Msg: "warn b0i1"},
		{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "warn b0i0"},
		{Pass: "p", Sev: SevError, Msg: "module-level error"},
	}}
	rep.Sort()
	var got []string
	for _, fd := range rep.Findings {
		got = append(got, fd.Msg)
	}
	want := []string{"module-level error", "warn b0i0", "warn b0i1", "warn b1", "info late"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", got, want)
		}
	}
	// Errors sort before warnings before infos regardless of location:
	// the module-level error has no Fn at all yet still leads.
	if rep.Findings[0].Sev != SevError || rep.Findings[len(rep.Findings)-1].Sev != SevInfo {
		t.Fatalf("severity not leading after sort: %v", got)
	}
}

func TestSortIsStableWithinTies(t *testing.T) {
	f := diagFixture(t)
	b0 := f.Blocks[0]
	rep := &Report{Findings: []Finding{
		{Pass: "a", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "first"},
		{Pass: "b", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "second"},
	}}
	rep.Sort()
	if rep.Findings[0].Msg != "first" || rep.Findings[1].Msg != "second" {
		t.Fatalf("tie broke insertion order: %q then %q", rep.Findings[0].Msg, rep.Findings[1].Msg)
	}
}

func TestDedupRemovesExactDuplicatesOnly(t *testing.T) {
	f := diagFixture(t)
	b0 := f.Blocks[0]
	dup := Finding{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "same"}
	rep := &Report{Findings: []Finding{
		dup,
		{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 1, Msg: "same"}, // other instr
		dup, // exact duplicate
		{Pass: "q", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "same"},  // other pass
		{Pass: "p", Sev: SevInfo, Fn: f, Block: b0, InstrIdx: 0, Msg: "same"},  // other severity
		{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "other"}, // other message
		dup, // exact duplicate again
	}}
	rep.Dedup()
	if len(rep.Findings) != 5 {
		t.Fatalf("Dedup kept %d findings, want 5: %v", len(rep.Findings), rep.Findings)
	}
	// First occurrence survives in place; order of the rest is preserved.
	if rep.Findings[0] != dup {
		t.Fatalf("first occurrence not kept first: %v", rep.Findings[0])
	}
	wantMsgs := []string{"same", "same", "same", "same", "other"}
	wantPass := []string{"p", "p", "q", "p", "p"}
	for i, fd := range rep.Findings {
		if fd.Msg != wantMsgs[i] || fd.Pass != wantPass[i] {
			t.Fatalf("order not preserved at %d: got %s/%q", i, fd.Pass, fd.Msg)
		}
	}
}

func TestDedupIdempotentAndEmptySafe(t *testing.T) {
	rep := &Report{}
	rep.Dedup() // must not panic on nil Findings
	if len(rep.Findings) != 0 {
		t.Fatalf("empty report grew findings: %d", len(rep.Findings))
	}
	f := diagFixture(t)
	rep.Findings = []Finding{
		{Pass: "p", Sev: SevWarn, Fn: f, Msg: "a"},
		{Pass: "p", Sev: SevWarn, Fn: f, Msg: "a"},
	}
	rep.Dedup()
	rep.Dedup()
	if len(rep.Findings) != 1 {
		t.Fatalf("double Dedup left %d findings, want 1", len(rep.Findings))
	}
}

func TestFindingRefAndString(t *testing.T) {
	f := diagFixture(t)
	b0 := f.Blocks[0]
	cases := []struct {
		name string
		f    Finding
		ref  string
	}{
		{"module-level", Finding{Pass: "validate", Sev: SevError, Msg: "m"}, "module"},
		{"function-level", Finding{Pass: "p", Sev: SevWarn, Fn: f, InstrIdx: -1, Msg: "m"}, "f"},
		{"block-level", Finding{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: -1, Msg: "m"}, "f/" + b0.Name},
		{"instr-level", Finding{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: 0, Msg: "m"}, "f/" + b0.Name + "/0"},
	}
	for _, tc := range cases {
		if got := tc.f.Ref(); got != tc.ref {
			t.Errorf("%s: Ref() = %q, want %q", tc.name, got, tc.ref)
		}
		s := tc.f.String()
		wantPrefix := tc.f.Sev.String() + " " + tc.f.Pass + " " + tc.ref + ": m"
		if !strings.HasPrefix(s, wantPrefix) {
			t.Errorf("%s: String() = %q, want prefix %q", tc.name, s, wantPrefix)
		}
	}
	// Instruction-anchored findings append the disassembly in brackets;
	// coarser anchors must not.
	withInstr := cases[3].f.String()
	if !strings.Contains(withInstr, "  [") || !strings.HasSuffix(withInstr, "]") {
		t.Errorf("instr-level String() missing disassembly suffix: %q", withInstr)
	}
	if s := cases[2].f.String(); strings.Contains(s, "[") {
		t.Errorf("block-level String() leaked a disassembly suffix: %q", s)
	}
	// Out-of-range indices degrade gracefully instead of panicking.
	oob := Finding{Pass: "p", Sev: SevWarn, Fn: f, Block: b0, InstrIdx: len(b0.Instrs) + 3, Msg: "m"}
	if s := oob.String(); strings.Contains(s, "[") {
		t.Errorf("out-of-range String() leaked a disassembly suffix: %q", s)
	}
}

func TestSeverityStrings(t *testing.T) {
	if SevError.String() != "error" || SevWarn.String() != "warn" || SevInfo.String() != "info" {
		t.Fatalf("severity labels drifted: %s %s %s", SevError, SevWarn, SevInfo)
	}
	if got := Severity(42).String(); got != "sev(42)" {
		t.Fatalf("unknown severity rendered %q", got)
	}
	if !(SevError < SevWarn && SevWarn < SevInfo) {
		t.Fatal("severity ordering inverted: most severe must compare lowest")
	}
}

func TestReportWriteFiltersAndSummarizes(t *testing.T) {
	f := diagFixture(t)
	rep := &Report{Module: "diag", Findings: []Finding{
		{Pass: "p", Sev: SevError, Fn: f, Msg: "boom"},
		{Pass: "p", Sev: SevWarn, Fn: f, Msg: "hmm"},
		{Pass: "p", Sev: SevInfo, Fn: f, Msg: "fyi"},
	}}
	var buf bytes.Buffer
	if err := rep.Write(&buf, SevWarn); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "boom") || !strings.Contains(out, "hmm") {
		t.Fatalf("Write dropped findings at or above minSev:\n%s", out)
	}
	if strings.Contains(out, "fyi") {
		t.Fatalf("Write leaked a below-threshold finding:\n%s", out)
	}
	// The trailer counts ALL findings, including filtered ones, so the
	// summary line is stable across verbosity levels.
	if !strings.HasSuffix(out, "diag: 1 error(s), 1 warning(s), 1 info\n") {
		t.Fatalf("summary trailer drifted:\n%s", out)
	}
	if rep.Count(SevError) != 1 || rep.Count(SevWarn) != 1 || rep.Count(SevInfo) != 1 || !rep.HasErrors() {
		t.Fatalf("counts drifted: %d/%d/%d", rep.Count(SevError), rep.Count(SevWarn), rep.Count(SevInfo))
	}
}

package analysis

import (
	"fmt"
	"testing"

	"castan/internal/ir"
	"castan/internal/stats"
)

// randomCFG builds a function with n blocks and arbitrary (possibly
// irreducible, possibly partially unreachable) control flow: each block
// ends in ret, br, or condbr to random targets. The instruction stream is
// otherwise trivial — the property under test is purely graph-shaped.
func randomCFG(rng *stats.RNG, n int) *ir.Func {
	f := &ir.Func{Name: "rand", NumParams: 0, NumRegs: 1}
	for i := 0; i < n; i++ {
		f.Blocks = append(f.Blocks, &ir.Block{
			Name:  fmt.Sprintf("b%d", i),
			Index: i,
			Fn:    f,
		})
	}
	for _, b := range f.Blocks {
		switch rng.Intn(4) {
		case 0:
			b.Instrs = append(b.Instrs,
				&ir.Instr{Op: ir.OpConst, Dst: 0},
				&ir.Instr{Op: ir.OpRet, A: 0})
		case 1:
			b.Instrs = append(b.Instrs,
				&ir.Instr{Op: ir.OpBr, Blk0: f.Blocks[rng.Intn(n)]})
		default:
			b.Instrs = append(b.Instrs,
				&ir.Instr{Op: ir.OpConst, Dst: 0},
				&ir.Instr{Op: ir.OpCondBr, A: 0,
					Blk0: f.Blocks[rng.Intn(n)],
					Blk1: f.Blocks[rng.Intn(n)]})
		}
	}
	return f
}

// reachableWithout floods the CFG from the entry, treating `removed` as
// absent, and returns the visited set. This is the textbook definition of
// dominance: a dominates b iff removing a makes b unreachable.
func reachableWithout(f *ir.Func, removed *ir.Block) []bool {
	seen := make([]bool, len(f.Blocks))
	if f.Entry() == removed {
		return seen
	}
	stack := []*ir.Block{f.Entry()}
	seen[f.Entry().Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs() {
			if s == removed || seen[s.Index] {
				continue
			}
			seen[s.Index] = true
			stack = append(stack, s)
		}
	}
	return seen
}

// TestDominatorsAgainstRemovalOracle cross-checks the CHK dominator tree
// against the brute-force oracle on randomly generated CFGs: for every
// pair (a, b) of reachable blocks, a dominates b exactly when removing a
// cuts b off from the entry.
func TestDominatorsAgainstRemovalOracle(t *testing.T) {
	rng := stats.NewRNG(0xD0517A70)
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(14)
		f := randomCFG(rng, n)
		fa := ForFunc(f)

		baseline := reachableWithout(f, nil)
		for ai, a := range f.Blocks {
			if !baseline[ai] {
				// Unreachable blocks dominate nothing reachable.
				for _, b := range f.Blocks {
					if fa.Dominates(a, b) {
						t.Fatalf("trial %d: unreachable %s reported to dominate %s", trial, a.Name, b.Name)
					}
				}
				continue
			}
			seen := reachableWithout(f, a)
			for bi, b := range f.Blocks {
				if !baseline[bi] {
					if fa.Dominates(a, b) {
						t.Fatalf("trial %d: %s reported to dominate unreachable %s", trial, a.Name, b.Name)
					}
					continue
				}
				want := a == b || !seen[bi]
				got := fa.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d (n=%d): Dominates(%s, %s) = %v, oracle says %v\n%s",
						trial, n, a.Name, b.Name, got, want, f.Disassemble())
				}
			}
		}

		// The loop forest must agree with the dominator tree: every header
		// dominates every block of its loop.
		for _, l := range fa.Loops.Loops {
			for _, b := range l.Blocks {
				if !fa.Dominates(l.Header, b) {
					t.Fatalf("trial %d: loop header %s does not dominate member %s", trial, l.Header.Name, b.Name)
				}
			}
		}
	}
}

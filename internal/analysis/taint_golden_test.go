package analysis_test

// Catalog golden for the input-taint dataflow pass: one line per NF with
// the instruction-classification counts and hash-site foldability, plus
// every controllability finding. Lives in the external test package so
// the golden covers analysis + taint + cachecost + nf together without
// an import cycle (internal/nf depends on internal/ir only, but the
// taint package depends on internal/analysis).

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"castan/internal/analysis"
	"castan/internal/analysis/cachecost"
	"castan/internal/analysis/taint"
	"castan/internal/nf"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTaintCatalogGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range nf.Names {
		inst, err := nf.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mf := analysis.ForModule(inst.Mod)
		mr := analysis.RunMemRegions(mf, analysis.NFEntryHints())
		cc := cachecost.Run(mf, mr, cachecost.Config{Geometry: cachecost.DefaultGeometry()})
		a := taint.Run(mf, mr, taint.Config{EntryHints: taint.NFEntryTaints()})
		if a.Capped {
			t.Errorf("%s: taint analysis hit its round cap and degraded to top", name)
		}
		s := a.Stats()
		fmt.Fprintf(&buf, "%s: instrs=%d untainted=%d linear=%d opaque=%d hash_sites=%d foldable=%d\n",
			name, s.Instructions, s.Untainted, s.Linear, s.Opaque, s.HashSites, s.FoldableHashSites)
		for _, f := range a.Controllability(cc) {
			fmt.Fprintf(&buf, "  %s %s: %s\n", f.Sev, f.Ref(), f.Msg)
		}
	}

	golden := filepath.Join("testdata", "taint_catalog.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("taint catalog drifted from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}
}

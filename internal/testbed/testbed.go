// Package testbed reproduces the paper's measurement campaign (§5.1) on
// the simulated DUT: it replays workloads through an NF running on the IR
// interpreter, accounts CPU cycles with the shared cost model, drives
// every load/store through the simulated cache hierarchy (with DDIO
// placement of packet headers), and reports the paper's three metric
// families — end-to-end latency CDFs, maximum throughput at <1% loss, and
// per-packet micro-architectural counters (instructions retired, L3
// misses).
package testbed

import (
	"fmt"

	"castan/internal/icfg"
	"castan/internal/interp"
	"castan/internal/ir"
	"castan/internal/memsim"
	"castan/internal/nf"
	"castan/internal/stats"
	"castan/internal/workload"
)

// Options configures a measurement.
type Options struct {
	// Geometry of the DUT; zero value means memsim.DefaultGeometry.
	Geometry memsim.Geometry
	// Seed fixes the DUT's hidden hash and page mapping.
	Seed uint64
	// WireNS is the constant TG↔DUT wire/NIC/timestamping latency added
	// to every packet (the NOP floor of the figures). Default 4060 ns.
	WireNS float64
	// OverheadCycles models the DPDK driver/mbuf path per packet.
	// Default 900.
	OverheadCycles uint64
	// MeasureCap bounds the measured packets per experiment (the paper
	// replays for 20 s; we replay the workload in a loop until this many
	// packets are measured). Default 8192.
	MeasureCap int
	// QueueDepth is the DUT RX descriptor ring for throughput search.
	// Default 256.
	QueueDepth int
}

func (o *Options) fill() {
	if o.Geometry.LineBytes == 0 {
		o.Geometry = memsim.DefaultGeometry()
	}
	if o.WireNS == 0 {
		o.WireNS = 4060
	}
	if o.OverheadCycles == 0 {
		o.OverheadCycles = 900
	}
	if o.MeasureCap <= 0 {
		o.MeasureCap = 8192
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
}

// Measurement is the result of one (NF, workload) experiment.
type Measurement struct {
	NF       string
	Workload string
	// Latency is the end-to-end per-packet latency CDF in nanoseconds.
	Latency *stats.CDF
	// Cycles is the per-packet reference-cycles CDF.
	Cycles *stats.CDF
	// Instrs is the per-packet instructions-retired CDF.
	Instrs *stats.CDF
	// L3Misses is the per-packet DRAM-access CDF.
	L3Misses *stats.CDF
	// ThroughputMpps is the maximum offered load with <1% loss.
	ThroughputMpps float64
}

// MedianDeviation returns this measurement's median latency minus the
// baseline's (the paper's Table 5 metric).
func (m *Measurement) MedianDeviation(nop *Measurement) float64 {
	return m.Latency.Median() - nop.Latency.Median()
}

// Measure replays the workload against a fresh instance of the named NF.
func Measure(nfName string, wl *workload.Workload, opt Options) (*Measurement, error) {
	opt.fill()
	if len(wl.Frames) == 0 {
		return nil, fmt.Errorf("testbed: workload %s empty", wl.Name)
	}
	inst, err := nf.New(nfName)
	if err != nil {
		return nil, err
	}
	hier := memsim.New(opt.Geometry, opt.Seed)
	cost := icfg.DefaultCostModel()

	var cycles, instrs, misses uint64
	inst.Machine.Hooks = interp.Hooks{
		OnInstr: func(fn *ir.Func, in *ir.Instr) {
			instrs++
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				cycles += cost.InstrCost(in)
			}
		},
		OnMem: func(a interp.MemAccess) {
			lvl, cyc := hier.Access(a.Addr, a.Size, a.IsWrite)
			cycles += cyc
			if lvl == memsim.DRAM {
				misses++
			}
		},
	}

	runPacket := func(frame []byte) error {
		hier.InjectPacket(ir.PacketBase, len(frame))
		inst.Machine.Mem.WriteBytes(ir.PacketBase, frame)
		_, err := inst.Machine.Call("nf_process", ir.PacketBase, uint64(len(frame)))
		return err
	}

	// Warm-up pass: install all flow state and warm the caches, like the
	// start of the paper's 20-second looped replay.
	for _, fr := range wl.Frames {
		if err := runPacket(fr); err != nil {
			return nil, fmt.Errorf("testbed: warmup: %w", err)
		}
	}

	// Measurement pass: loop the workload until MeasureCap packets.
	n := opt.MeasureCap
	latency := make([]float64, 0, n)
	cyc := make([]float64, 0, n)
	ins := make([]float64, 0, n)
	mis := make([]float64, 0, n)
	serviceNS := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		fr := wl.Frames[i%len(wl.Frames)]
		cycles, instrs, misses = 0, 0, 0
		if err := runPacket(fr); err != nil {
			return nil, fmt.Errorf("testbed: measure: %w", err)
		}
		total := cycles + opt.OverheadCycles
		latency = append(latency, opt.WireNS+hier.CyclesToNanos(total))
		cyc = append(cyc, float64(total))
		ins = append(ins, float64(instrs))
		mis = append(mis, float64(misses))
		serviceNS = append(serviceNS, hier.CyclesToNanos(total))
	}
	inst.Machine.Hooks = interp.Hooks{}

	return &Measurement{
		NF:             nfName,
		Workload:       wl.Name,
		Latency:        stats.NewCDF(latency),
		Cycles:         stats.NewCDF(cyc),
		Instrs:         stats.NewCDF(ins),
		L3Misses:       stats.NewCDF(mis),
		ThroughputMpps: maxThroughput(serviceNS, opt.QueueDepth),
	}, nil
}

// maxThroughput finds the highest arrival rate (Mpps) at which a
// single-server queue with the observed service times drops less than 1%
// of packets, via binary search over deterministic arrivals.
func maxThroughput(serviceNS []float64, queueDepth int) float64 {
	// Simulate enough arrivals that a queue buildup cannot hide overload
	// within the window (the paper offers load for 20 seconds).
	arrivals := len(serviceNS)
	if arrivals < 20000 {
		arrivals = 20000
	}
	lossAt := func(mpps float64) float64 {
		interval := 1000.0 / mpps                    // ns between arrivals
		inSystem := make([]float64, 0, queueDepth+1) // finish times, FIFO
		var lastFinish float64
		drops := 0
		for i := 0; i < arrivals; i++ {
			s := serviceNS[i%len(serviceNS)]
			t := float64(i) * interval
			// Depart everything that finished by now.
			k := 0
			for k < len(inSystem) && inSystem[k] <= t {
				k++
			}
			inSystem = inSystem[k:]
			if len(inSystem) > queueDepth {
				drops++
				continue
			}
			start := t
			if len(inSystem) > 0 {
				start = lastFinish
			}
			lastFinish = start + s
			inSystem = append(inSystem, lastFinish)
		}
		return float64(drops) / float64(arrivals)
	}
	lo, hi := 0.05, 40.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if lossAt(mid) < 0.01 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MeasureNOP measures the baseline forwarder under the 1 Packet workload
// (its behaviour is workload-independent).
func MeasureNOP(opt Options) (*Measurement, error) {
	return Measure("nop", workload.OnePacket(workload.ProfileLPM), opt)
}

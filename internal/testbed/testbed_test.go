package testbed

import (
	"testing"

	"castan/internal/nf"
	"castan/internal/workload"
)

func small() Options {
	return Options{Seed: 5, MeasureCap: 512}
}

func measure(t *testing.T, nfName string, wl *workload.Workload) *Measurement {
	t.Helper()
	m, err := Measure(nfName, wl, small())
	if err != nil {
		t.Fatalf("Measure(%s, %s): %v", nfName, wl.Name, err)
	}
	return m
}

func TestNOPBaseline(t *testing.T) {
	m, err := MeasureNOP(small())
	if err != nil {
		t.Fatal(err)
	}
	med := m.Latency.Median()
	if med < 4000 || med > 4800 {
		t.Errorf("NOP median latency = %.0f ns, want ~4300", med)
	}
	if m.ThroughputMpps < 2 || m.ThroughputMpps > 6 {
		t.Errorf("NOP throughput = %.2f Mpps", m.ThroughputMpps)
	}
	if m.Instrs.Median() > 20 {
		t.Errorf("NOP instrs = %.0f", m.Instrs.Median())
	}
}

func TestLPMDL1WorkloadOrdering(t *testing.T) {
	one := measure(t, "lpm-dl1", workload.OnePacket(workload.ProfileLPM))
	zipf, err := workload.Zipfian(workload.ProfileLPM, 8192, 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := measure(t, "lpm-dl1", zipf)
	u := measure(t, "lpm-dl1", workload.UniRand(workload.ProfileLPM, 8192, 4))

	// The Fig. 4 ordering: 1 Packet ≈ Zipfian < UniRand.
	if z.Latency.Median() > one.Latency.Median()*1.05 {
		t.Errorf("Zipfian median %.0f should be near 1 Packet %.0f",
			z.Latency.Median(), one.Latency.Median())
	}
	if u.Latency.Median() < z.Latency.Median()+20 {
		t.Errorf("UniRand median %.0f not above Zipfian %.0f",
			u.Latency.Median(), z.Latency.Median())
	}
	// UniRand pays with cache misses, not instructions.
	if u.Instrs.Median() != z.Instrs.Median() {
		t.Errorf("instr medians differ: %v vs %v", u.Instrs.Median(), z.Instrs.Median())
	}
	if u.L3Misses.Median() < z.L3Misses.Median() {
		t.Errorf("UniRand misses %.0f < Zipfian %.0f", u.L3Misses.Median(), z.L3Misses.Median())
	}
	// And throughput drops under UniRand.
	if u.ThroughputMpps >= z.ThroughputMpps {
		t.Errorf("UniRand throughput %.2f not below Zipfian %.2f",
			u.ThroughputMpps, z.ThroughputMpps)
	}
}

func TestUBTreeSkewWorkloadHurts(t *testing.T) {
	// The Manual skew workload must beat a UniRandN workload of the same
	// flow count on the unbalanced tree.
	manual := workload.FromFrames("Manual", manualFrames(t, "nat-ubtree", 50))
	m := measure(t, "nat-ubtree", manual)
	urn := measure(t, "nat-ubtree", workload.UniRandN(workload.ProfileNAT, 50, 9))
	if m.Instrs.Median() <= urn.Instrs.Median() {
		t.Errorf("skew instrs %.0f not above unirand-50 %.0f",
			m.Instrs.Median(), urn.Instrs.Median())
	}
	if m.Latency.Median() <= urn.Latency.Median() {
		t.Errorf("skew latency %.0f not above unirand-50 %.0f",
			m.Latency.Median(), urn.Latency.Median())
	}
	// The red-black tree shrugs the same sequence off.
	rbSkew := workload.FromFrames("Manual", manualFrames(t, "nat-ubtree", 50))
	rb := measure(t, "nat-rbtree", rbSkew)
	if rb.Instrs.Median() >= m.Instrs.Median() {
		t.Errorf("rbtree instrs %.0f not below ubtree %.0f",
			rb.Instrs.Median(), m.Instrs.Median())
	}
}

func manualFrames(t *testing.T, nfName string, n int) [][]byte {
	t.Helper()
	inst, err := nf.New(nfName)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Manual(n)
}

func TestMedianDeviation(t *testing.T) {
	nop, err := MeasureNOP(small())
	if err != nil {
		t.Fatal(err)
	}
	one := measure(t, "lpm-trie", workload.OnePacket(workload.ProfileLPM))
	dev := one.MedianDeviation(nop)
	if dev <= 0 || dev > 1500 {
		t.Errorf("trie deviation from NOP = %.0f ns", dev)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	if _, err := Measure("nop", &workload.Workload{Name: "x"}, small()); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestThroughputMonotoneInService(t *testing.T) {
	fast := make([]float64, 2000)
	slow := make([]float64, 2000)
	for i := range fast {
		fast[i] = 200
		slow[i] = 400
	}
	tf := maxThroughput(fast, 256)
	ts := maxThroughput(slow, 256)
	if tf <= ts {
		t.Errorf("throughput not monotone: fast %.2f <= slow %.2f", tf, ts)
	}
	// Deterministic service at 200ns supports ~5 Mpps.
	if tf < 4 || tf > 6 {
		t.Errorf("200ns service -> %.2f Mpps, want ~5", tf)
	}
}

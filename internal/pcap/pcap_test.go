package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		bytes.Repeat([]byte{0xaa}, 60),
		bytes.Repeat([]byte{0xbb}, 1500),
		{0x01},
	}
	base := time.Date(2018, 8, 20, 12, 0, 0, 0, time.UTC)
	for i, fr := range frames {
		if err := w.Write(Record{Time: base.Add(time.Duration(i) * time.Millisecond), Data: fr}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d", r.LinkType())
	}
	for i, want := range frames {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, want) {
			t.Errorf("frame %d mismatch: %d bytes vs %d", i, len(rec.Data), len(want))
		}
		wantT := base.Add(time.Duration(i) * time.Millisecond)
		if !rec.Time.Equal(wantT) {
			t.Errorf("frame %d time = %v, want %v", i, rec.Time, wantT)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Data: nil}); err == nil {
		t.Error("empty record accepted")
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-craft a big-endian capture with one 4-byte frame.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:], 2)
	binary.BigEndian.PutUint16(hdr[6:], 4)
	binary.BigEndian.PutUint32(hdr[16:], 65535)
	binary.BigEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:], 100)
	binary.BigEndian.PutUint32(rec[4:], 5)
	binary.BigEndian.PutUint32(rec[8:], 4)
	binary.BigEndian.PutUint32(rec[12:], 4)
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("data = %v", got.Data)
	}
	if got.Time.Unix() != 100 {
		t.Errorf("sec = %d", got.Time.Unix())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{Time: time.Unix(0, 0), Data: []byte{1, 2, 3, 4}})
	_ = w.Flush()
	b := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pcap")
	frames := [][]byte{{1, 2, 3}, {4, 5}}
	if err := WriteFile(path, frames); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], frames[0]) || !bytes.Equal(got[1], frames[1]) {
		t.Errorf("ReadFile = %v", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var frames [][]byte
		for _, p := range payloads {
			if len(p) > 0 && len(p) < 2000 {
				frames = append(frames, p)
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, fr := range frames {
			if err := w.Write(Record{Time: time.Unix(1, 0), Data: fr}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != len(frames) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

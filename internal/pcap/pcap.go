// Package pcap reads and writes classic libpcap capture files
// (magic 0xa1b2c3d4, microsecond timestamps, little-endian as written;
// both endiannesses accepted on read). This is the interchange format
// between the CASTAN analyzer, the workload generators and the testbed,
// mirroring the paper's use of PCAP files replayed by MoonGen.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// LinkTypeEthernet is the only link type the toolchain produces.
const LinkTypeEthernet = 1

const (
	magicLE = 0xa1b2c3d4 // written; timestamps in microseconds
	magicBE = 0xd4c3b2a1
)

// Record is one captured frame.
type Record struct {
	Time time.Time
	Data []byte
}

// Writer writes a pcap stream. Create with NewWriter, which emits the
// global header immediately.
type Writer struct {
	w     *bufio.Writer
	snap  uint32
	count int
}

// NewWriter writes the global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:], 65535)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: bw, snap: 65535}, nil
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if len(rec.Data) == 0 {
		return errors.New("pcap: empty record")
	}
	var hdr [16]byte
	us := rec.Time.UnixMicro()
	binary.LittleEndian.PutUint32(hdr[0:], uint32(us/1e6))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(us%1e6))
	n := uint32(len(rec.Data))
	if n > w.snap {
		n = w.snap
	}
	binary.LittleEndian.PutUint32(hdr[8:], n)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(rec.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec.Data[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count reports how many records have been written.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads a pcap stream.
type Reader struct {
	r    *bufio.Reader
	bo   binary.ByteOrder
	link uint32
}

// NewReader parses the global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	rd := &Reader{r: br}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicLE:
		rd.bo = binary.LittleEndian
	case magicBE:
		rd.bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("pcap: bad magic %#08x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	rd.link = rd.bo.Uint32(hdr[20:])
	return rd, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.link }

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := r.bo.Uint32(hdr[0:])
	usec := r.bo.Uint32(hdr[4:])
	caplen := r.bo.Uint32(hdr[8:])
	if caplen > 1<<20 {
		return Record{}, fmt.Errorf("pcap: unreasonable caplen %d", caplen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: read record body: %w", err)
	}
	return Record{Time: time.Unix(int64(sec), int64(usec)*1000).UTC(), Data: data}, nil
}

// ReadAll drains the stream into a slice of raw frames.
func (r *Reader) ReadAll() ([][]byte, error) {
	var out [][]byte
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec.Data)
	}
}

// WriteFile writes frames (with synthetic 1µs-spaced timestamps) to path.
func WriteFile(path string, frames [][]byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := NewWriter(f)
	if err != nil {
		return err
	}
	base := time.Unix(0, 0).UTC()
	for i, fr := range frames {
		if err := w.Write(Record{Time: base.Add(time.Duration(i) * time.Microsecond), Data: fr}); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads all frames from a pcap file.
func ReadFile(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}

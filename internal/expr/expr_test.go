package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	cases := []struct {
		got  *Expr
		want uint64
	}{
		{Add(Const(2), Const(3)), 5},
		{Sub(Const(2), Const(3)), ^uint64(0)}, // wraps
		{Mul(Const(7), Const(6)), 42},
		{And(Const(0xff0), Const(0x0ff)), 0x0f0},
		{Or(Const(0xf00), Const(0x00f)), 0xf0f},
		{Xor(Const(0xff), Const(0x0f)), 0xf0},
		{Shl(Const(1), Const(8)), 256},
		{Shl(Const(1), Const(64)), 0},
		{Lshr(Const(256), Const(8)), 1},
		{Lshr(Const(1), Const(200)), 0},
		{New(OpUDiv, Const(10), Const(3)), 3},
		{New(OpUDiv, Const(10), Const(0)), 0},
		{New(OpURem, Const(10), Const(3)), 1},
		{New(OpURem, Const(10), Const(0)), 10},
		{Eq(Const(5), Const(5)), 1},
		{Ne(Const(5), Const(5)), 0},
		{Ult(Const(3), Const(5)), 1},
		{Ule(Const(5), Const(5)), 1},
	}
	for i, c := range cases {
		v, ok := c.got.IsConst()
		if !ok {
			t.Errorf("case %d: not folded to const: %v", i, c.got)
			continue
		}
		if v != c.want {
			t.Errorf("case %d: got %#x, want %#x", i, v, c.want)
		}
	}
}

func TestIdentities(t *testing.T) {
	v := Var(1)
	if Add(v, Const(0)) != v {
		t.Error("x+0 != x")
	}
	if Mul(v, Const(1)) != v {
		t.Error("x*1 != x")
	}
	if e, _ := Mul(v, Const(0)).IsConst(); e != 0 {
		t.Error("x*0 != 0")
	}
	if e, _ := And(v, Const(0)).IsConst(); e != 0 {
		t.Error("x&0 != 0")
	}
	if And(v, Const(0xff)) != v {
		t.Error("byte var & 0xff not elided")
	}
	if Or(v, Const(0)) != v {
		t.Error("x|0 != x")
	}
	if e, _ := Xor(v, v).IsConst(); e != 0 {
		t.Error("x^x != 0")
	}
	if e, _ := Sub(v, v).IsConst(); e != 0 {
		t.Error("x-x != 0")
	}
	if e, _ := Eq(v, v).IsConst(); e != 1 {
		t.Error("x==x != 1")
	}
	if e, _ := Ult(v, v).IsConst(); e != 0 {
		t.Error("x<x != 0")
	}
	if e, _ := Ult(v, Const(0)).IsConst(); e != 0 {
		t.Error("x<0 != false")
	}
	if e, _ := Ule(Const(0), v).IsConst(); e != 1 {
		t.Error("0<=x != true")
	}
}

func TestEvalMatchesGoSemantics(t *testing.T) {
	f := func(a, b uint64, x, y uint8) bool {
		vals := map[VarID]uint64{1: uint64(x), 2: uint64(y)}
		va, vb := Var(1), Var(2)
		ea := Add(Mul(va, Const(a)), Const(b))
		if ea.Eval(vals) != uint64(x)*a+b {
			return false
		}
		cmp := Ult(va, vb)
		want := uint64(0)
		if uint64(x) < uint64(y) {
			want = 1
		}
		if cmp.Eval(vals) != want {
			return false
		}
		ite := Ite(cmp, va, vb)
		wantIte := uint64(y)
		if uint64(x) < uint64(y) {
			wantIte = uint64(x)
		}
		return ite.Eval(vals) == wantIte
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotInvolution(t *testing.T) {
	v, w := Var(1), Var(2)
	for _, e := range []*Expr{Eq(v, w), Ne(v, w), Ult(v, w), Ule(v, w)} {
		n := Not(e)
		vals := map[VarID]uint64{1: 7, 2: 9}
		if e.Eval(vals) == n.Eval(vals) {
			t.Errorf("Not(%v) evaluates same as original", e)
		}
		nn := Not(n)
		if nn.Eval(vals) != e.Eval(vals) {
			t.Errorf("double negation broke %v", e)
		}
	}
	if b, _ := Not(Const(0)).IsConst(); b != 1 {
		t.Error("Not(0) != 1")
	}
	if b, _ := Not(Const(5)).IsConst(); b != 0 {
		t.Error("Not(5) != 0")
	}
}

func TestTruth(t *testing.T) {
	v := Var(1)
	tr := Truth(Add(v, Const(1)))
	if tr.Op != OpNe {
		t.Errorf("Truth of arith = %v", tr)
	}
	if Truth(Eq(v, Const(2))).Op != OpEq {
		t.Error("Truth of cmp should be unchanged")
	}
	if b, _ := Truth(Const(7)).IsConst(); b != 1 {
		t.Error("Truth(7) != 1")
	}
}

func TestVarsAndSubstitute(t *testing.T) {
	e := Add(Mul(Var(1), Var(2)), Ite(Eq(Var(3), Const(0)), Var(1), Var(4)))
	vars := e.Vars(map[VarID]bool{}, nil)
	if len(vars) != 4 {
		t.Errorf("Vars = %v", vars)
	}
	if e.NumVars() != 4 {
		t.Errorf("NumVars = %d", e.NumVars())
	}
	if !e.HasVars() {
		t.Error("HasVars = false")
	}
	sub := e.Substitute(map[VarID]uint64{1: 2, 2: 3, 3: 0, 4: 9})
	if v, ok := sub.IsConst(); !ok || v != 2*3+2 {
		t.Errorf("Substitute = %v", sub)
	}
	partial := e.Substitute(map[VarID]uint64{1: 2})
	if !partial.HasVars() {
		t.Error("partial substitution should stay symbolic")
	}
}

func TestConcatBytes(t *testing.T) {
	e := ConcatBytes(Const(0x12), Const(0x34), Const(0x56), Const(0x78))
	if v, ok := e.IsConst(); !ok || v != 0x12345678 {
		t.Errorf("ConcatBytes = %v", e)
	}
	// Symbolic concat evaluates to big-endian assembly.
	s := ConcatBytes(Var(1), Var(2))
	got := s.Eval(map[VarID]uint64{1: 0xab, 2: 0xcd})
	if got != 0xabcd {
		t.Errorf("symbolic concat = %#x", got)
	}
}

func TestByteSelect(t *testing.T) {
	e := Const(0x1122334455667788)
	for i := 0; i < 8; i++ {
		want := (0x1122334455667788 >> (8 * i)) & 0xff
		if v, _ := Byte(e, i).IsConst(); v != uint64(want) {
			t.Errorf("Byte(%d) = %#x, want %#x", i, v, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := Add(Var(3), Const(0x10))
	s := e.String()
	if !strings.Contains(s, "add") || !strings.Contains(s, "v3") || !strings.Contains(s, "0x10") {
		t.Errorf("String = %q", s)
	}
	// Deep expressions truncate rather than blow up.
	deep := Var(1)
	for i := 0; i < 100; i++ {
		deep = Add(deep, Var(2))
	}
	if len(deep.String()) > 10000 {
		t.Errorf("deep String too long: %d", len(deep.String()))
	}
}

func TestRangeSoundness(t *testing.T) {
	// Property: Eval result always falls inside Range for random exprs.
	f := func(x, y uint8, k uint16, opSel uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpLshr, OpURem, OpUDiv}
		op := ops[int(opSel)%len(ops)]
		e := New(op, ConcatBytes(Var(1), Var(2)), Const(uint64(k)))
		vals := map[VarID]uint64{1: uint64(x), 2: uint64(y)}
		iv := Range(e, nil) // fully symbolic
		v := e.Eval(vals)
		if !iv.Contains(v) && iv != Full {
			return false
		}
		ivp := Range(e, map[VarID]uint64{1: uint64(x)}) // partial
		return ivp.Contains(v) || ivp == Full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeComparisons(t *testing.T) {
	// v1 concat v2 is in [0, 65535]; comparing against disjoint constants
	// must fold the comparison range to a point.
	w := ConcatBytes(Var(1), Var(2))
	if iv := Range(Ult(w, Const(1<<20)), nil); iv.Lo != 1 || iv.Hi != 1 {
		t.Errorf("w < 2^20 range = %+v, want [1,1]", iv)
	}
	if iv := Range(Eq(w, Const(1<<20)), nil); iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("w == 2^20 range = %+v, want [0,0]", iv)
	}
	if iv := Range(Ne(w, Const(1<<20)), nil); iv.Lo != 1 || iv.Hi != 1 {
		t.Errorf("w != 2^20 range = %+v, want [1,1]", iv)
	}
	if iv := Range(Eq(w, Const(100)), nil); iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("w == 100 range = %+v, want [0,1]", iv)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{10, 20}
	if !a.Contains(10) || !a.Contains(20) || a.Contains(9) || a.Contains(21) {
		t.Error("Contains broken")
	}
	if _, ok := a.Singleton(); ok {
		t.Error("non-singleton reported singleton")
	}
	if v, ok := (Interval{7, 7}).Singleton(); !ok || v != 7 {
		t.Error("singleton not detected")
	}
	x := a.Intersect(Interval{15, 30})
	if x.Lo != 15 || x.Hi != 20 {
		t.Errorf("Intersect = %+v", x)
	}
	if !a.Intersect(Interval{30, 40}).Empty() {
		t.Error("disjoint intersect not empty")
	}
}

func TestIteSimplify(t *testing.T) {
	v := Var(1)
	if Ite(Const(1), v, Const(9)) != v {
		t.Error("ite(true) not folded")
	}
	if e, _ := Ite(Const(0), v, Const(9)).IsConst(); e != 9 {
		t.Error("ite(false) not folded")
	}
	if Ite(Eq(v, Const(1)), v, v) != v {
		t.Error("ite same-arms not folded")
	}
}

func TestEqWithBoolConstRewrites(t *testing.T) {
	c := Ult(Var(1), Var(2))
	if Eq(c, Const(1)) != c {
		t.Error("eq(cmp,1) should be cmp")
	}
	n := Eq(c, Const(0))
	vals := map[VarID]uint64{1: 3, 2: 5}
	if n.Eval(vals) != 0 {
		t.Error("eq(cmp,0) wrong")
	}
	if v, _ := Eq(c, Const(7)).IsConst(); v != 0 {
		t.Error("eq(cmp,7) should be 0")
	}
}

func TestBitwiseBoundsTight(t *testing.T) {
	// Brute-force check of the Hacker's Delight OR/AND interval bounds on
	// small ranges.
	ranges := []Interval{{0, 0}, {3, 7}, {5, 5}, {0, 15}, {8, 12}, {1, 2}}
	for _, ra := range ranges {
		for _, rb := range ranges {
			var wantOrLo, wantOrHi, wantAndLo, wantAndHi uint64
			wantOrLo, wantAndLo = ^uint64(0), ^uint64(0)
			for x := ra.Lo; x <= ra.Hi; x++ {
				for y := rb.Lo; y <= rb.Hi; y++ {
					if o := x | y; o < wantOrLo {
						wantOrLo = o
					}
					if o := x | y; o > wantOrHi {
						wantOrHi = o
					}
					if a := x & y; a < wantAndLo {
						wantAndLo = a
					}
					if a := x & y; a > wantAndHi {
						wantAndHi = a
					}
				}
			}
			if got := minOR(ra.Lo, ra.Hi, rb.Lo, rb.Hi); got != wantOrLo {
				t.Errorf("minOR(%v,%v) = %d, want %d", ra, rb, got, wantOrLo)
			}
			if got := maxOR(ra.Lo, ra.Hi, rb.Lo, rb.Hi); got != wantOrHi {
				t.Errorf("maxOR(%v,%v) = %d, want %d", ra, rb, got, wantOrHi)
			}
			if got := minAND(ra.Lo, ra.Hi, rb.Lo, rb.Hi); got != wantAndLo {
				t.Errorf("minAND(%v,%v) = %d, want %d", ra, rb, got, wantAndLo)
			}
			if got := maxAND(ra.Lo, ra.Hi, rb.Lo, rb.Hi); got != wantAndHi {
				t.Errorf("maxAND(%v,%v) = %d, want %d", ra, rb, got, wantAndHi)
			}
		}
	}
}

func TestByteConcatCollapse(t *testing.T) {
	// Byte extraction from a byte concatenation must collapse back to the
	// original variable node — the rewrite that keeps memory round-trips
	// (store word, load byte) from snowballing expression sizes.
	vs := []*Expr{Var(1), Var(2), Var(3), Var(4)}
	w := ConcatBytes(vs...)
	for i := 0; i < 4; i++ {
		got := Byte(w, 3-i)
		if got != vs[i] {
			t.Errorf("Byte(concat, %d) = %v, want v%d", 3-i, got, i+1)
		}
	}
}

func TestMaskSoundness(t *testing.T) {
	// Property: Eval result never has bits outside the node's mask.
	f := func(x, y uint8, k uint16, opSel uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpLshr, OpURem, OpUDiv, OpUlt}
		op := ops[int(opSel)%len(ops)]
		e := New(op, ConcatBytes(Var(1), Var(2)), Const(uint64(k%64)))
		vals := map[VarID]uint64{1: uint64(x), 2: uint64(y)}
		return e.Eval(vals)&^e.Mask() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteEvalEquivalence(t *testing.T) {
	// Property: the simplifying constructors preserve semantics on nested
	// shift/mask/or pyramids (the shapes memory round-trips produce).
	f := func(x, y, z uint8, sh1, sh2 uint8, m uint32) bool {
		vals := map[VarID]uint64{1: uint64(x), 2: uint64(y), 3: uint64(z)}
		w := ConcatBytes(Var(1), Var(2), Var(3))
		s1, s2 := uint64(sh1%40), uint64(sh2%40)
		e := And(Lshr(Shl(w, Const(s1)), Const(s2)), Const(uint64(m)))
		want := (((uint64(x)<<16 | uint64(y)<<8 | uint64(z)) << s1) >> s2) & uint64(m)
		return e.Eval(vals) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

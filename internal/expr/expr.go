// Package expr implements the bitvector expression language shared by the
// symbolic-execution engine (internal/symbex) and the constraint solver
// (internal/solver).
//
// All expressions denote 64-bit unsigned values. Symbolic variables denote
// single bytes (values 0..255) — in CASTAN the symbolic inputs are packet
// bytes — and wider symbolic values are built from bytes with shifts and
// ors, mirroring how the IR network functions load multi-byte header
// fields. Comparison expressions evaluate to 0 or 1.
//
// Expressions are immutable. Constructors apply local simplifications
// (constant folding, identity/annihilator elimination), so the DAGs that
// reach the solver stay small even after long symbolic executions.
package expr

import (
	"fmt"
	"math/bits"
	"strings"
)

// Op enumerates expression node kinds.
type Op uint8

// Expression node kinds.
const (
	OpConst Op = iota // literal 64-bit value
	OpVar             // symbolic byte variable
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl  // logical shift left  (shift amounts >= 64 yield 0)
	OpLshr // logical shift right (shift amounts >= 64 yield 0)
	OpUDiv // unsigned division   (x / 0 == 0, matching the IR's semantics)
	OpURem // unsigned remainder  (x % 0 == x)
	OpEq   // 1 if a == b else 0
	OpNe
	OpUlt // unsigned <
	OpUle
	OpIte // cond (nonzero => then) : else
)

var opNames = [...]string{
	OpConst: "const", OpVar: "var",
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLshr: "lshr", OpUDiv: "udiv", OpURem: "urem",
	OpEq: "eq", OpNe: "ne", OpUlt: "ult", OpUle: "ule",
	OpIte: "ite",
}

// String returns the mnemonic for the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// VarID identifies a symbolic byte variable. The symbex engine allocates
// IDs densely: packet p's byte b gets a deterministic ID so solver models
// map directly back onto packet buffers.
type VarID uint32

// Expr is an immutable expression node. Leaf nodes (OpConst, OpVar) use
// Val/Var; interior nodes use A, B, C (C only for OpIte: A=cond, B=then,
// C=else).
type Expr struct {
	Op  Op
	Val uint64 // OpConst
	Var VarID  // OpVar
	A   *Expr
	B   *Expr
	C   *Expr

	// concrete caches IsConst results for interior nodes: 0 unknown,
	// 1 concrete, 2 symbolic.
	concrete uint8
	vcount   int32 // cached number of distinct vars, -1 if unknown
	// msk is an upper bound on the bits the value can have set, computed
	// eagerly by the constructors. It powers the algebraic rewrites that
	// collapse byte-extract/concat round-trips.
	msk uint64
	// fp is a structural fingerprint: equal-structure expressions share
	// it (with overwhelming probability), even across distinct nodes.
	fp uint64
	// vlist caches the sorted, deduplicated variables of the subtree
	// (computed lazily; nil until first use, Expr is immutable after).
	vlist []VarID
}

// Fingerprint returns the node's structural fingerprint.
func (e *Expr) Fingerprint() uint64 { return e.fp }

func fpMix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 31
	}
	return h
}

// Mask returns the node's known possible-bits mask.
func (e *Expr) Mask() uint64 { return e.msk }

// coverMask returns the all-ones mask covering every bit up to m's MSB.
func coverMask(m uint64) uint64 {
	if m == 0 {
		return 0
	}
	n := bits.Len64(m)
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// addMask bounds the possible bits of a sum.
func addMask(a, b uint64) uint64 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	n := bits.Len64(a)
	if bits.Len64(b) > n {
		n = bits.Len64(b)
	}
	if n >= 63 {
		return ^uint64(0)
	}
	return (uint64(1) << (n + 1)) - 1
}

// computeMask derives a node's mask from its children.
func computeMask(op Op, a, b *Expr) uint64 {
	switch op {
	case OpAdd:
		return addMask(a.msk, b.msk)
	case OpSub:
		if bm, ok := b.IsConst(); ok && bm == 0 {
			return a.msk
		}
		return ^uint64(0)
	case OpMul:
		if a.msk == 0 || b.msk == 0 {
			return 0
		}
		n := bits.Len64(a.msk) + bits.Len64(b.msk)
		if n >= 64 {
			return ^uint64(0)
		}
		return (uint64(1) << n) - 1
	case OpAnd:
		return a.msk & b.msk
	case OpOr, OpXor:
		return a.msk | b.msk
	case OpShl:
		if sh, ok := b.IsConst(); ok {
			if sh >= 64 {
				return 0
			}
			return a.msk << sh
		}
		return ^uint64(0)
	case OpLshr:
		if sh, ok := b.IsConst(); ok {
			if sh >= 64 {
				return 0
			}
			return coverMask(a.msk) >> sh
		}
		return coverMask(a.msk)
	case OpUDiv, OpURem:
		return coverMask(a.msk)
	case OpEq, OpNe, OpUlt, OpUle:
		return 1
	}
	return ^uint64(0)
}

// Const returns a literal expression.
func Const(v uint64) *Expr {
	return &Expr{Op: OpConst, Val: v, concrete: 1, msk: v, fp: fpMix(uint64(OpConst), v)}
}

// Bool returns Const(1) or Const(0).
func Bool(b bool) *Expr {
	if b {
		return one
	}
	return zero
}

var (
	zero = Const(0)
	one  = Const(1)
)

// Var returns a symbolic byte variable expression.
func Var(id VarID) *Expr {
	return &Expr{Op: OpVar, Var: id, concrete: 2, vcount: 1, msk: 0xff, fp: fpMix(uint64(OpVar), uint64(id))}
}

// IsConst reports whether e contains no variables, returning its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Op == OpConst {
		return e.Val, true
	}
	return 0, false
}

// IsBool reports whether e is the constant 0 or 1, common for folded
// comparisons.
func (e *Expr) IsBool() (bool, bool) {
	if v, ok := e.IsConst(); ok && v <= 1 {
		return v == 1, true
	}
	return false, false
}

func binConst(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		if b >= 64 {
			return 0
		}
		return a << b
	case OpLshr:
		if b >= 64 {
			return 0
		}
		return a >> b
	case OpUDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpURem:
		if b == 0 {
			return a
		}
		return a % b
	case OpEq:
		return b2u(a == b)
	case OpNe:
		return b2u(a != b)
	case OpUlt:
		return b2u(a < b)
	case OpUle:
		return b2u(a <= b)
	}
	panic("expr: binConst on non-binary op " + op.String())
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// New builds a binary expression with local simplification.
func New(op Op, a, b *Expr) *Expr {
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok {
		return Const(binConst(op, av, bv))
	}
	switch op {
	case OpAdd:
		if aok && av == 0 {
			return b
		}
		if bok && bv == 0 {
			return a
		}
	case OpSub:
		if bok && bv == 0 {
			return a
		}
		if a == b {
			return zero
		}
	case OpMul:
		if aok {
			if av == 0 {
				return zero
			}
			if av == 1 {
				return b
			}
		}
		if bok {
			if bv == 0 {
				return zero
			}
			if bv == 1 {
				return a
			}
		}
	case OpAnd:
		if aok {
			a, b = b, a
			av, aok, bv, bok = bv, bok, av, aok
		}
		if bok {
			if a.msk&bv == 0 {
				return zero // no possible bit survives the mask
			}
			if a.msk&^bv == 0 {
				return a // the mask covers everything a can set
			}
			// Distribute into an Or whose halves have disjoint coverage:
			// this is what collapses byte/field extraction from
			// concatenations.
			if a.Op == OpOr {
				if a.A.msk&bv == 0 {
					return New(OpAnd, a.B, b)
				}
				if a.B.msk&bv == 0 {
					return New(OpAnd, a.A, b)
				}
				if a.A.msk&a.B.msk == 0 {
					return New(OpOr, New(OpAnd, a.A, b), New(OpAnd, a.B, b))
				}
			}
			// (x<<k) & m  ==  (x & (m>>k)) << k — bits of x<<k below k are
			// zero, so masking commutes with the shift.
			if a.Op == OpShl {
				if sh, ok := a.B.IsConst(); ok && sh < 64 {
					return New(OpShl, New(OpAnd, a.A, Const(bv>>sh)), a.B)
				}
			}
		}
		if a == b {
			return a
		}
	case OpOr:
		if aok && av == 0 {
			return b
		}
		if bok && bv == 0 {
			return a
		}
		if a == b {
			return a
		}
	case OpXor:
		if aok && av == 0 {
			return b
		}
		if bok && bv == 0 {
			return a
		}
		if a == b {
			return zero
		}
	case OpShl:
		if bok && bv == 0 {
			return a
		}
		if bok && bv >= 64 {
			return zero
		}
		if aok && av == 0 {
			return zero
		}
	case OpLshr:
		if bok && bv == 0 {
			return a
		}
		if bok && (bv >= 64 || a.msk>>bv == 0) {
			return zero
		}
		if aok && av == 0 {
			return zero
		}
		if bok {
			// Drop Or-halves entirely below the shift.
			if a.Op == OpOr {
				if a.B.msk>>bv == 0 {
					return New(OpLshr, a.A, b)
				}
				if a.A.msk>>bv == 0 {
					return New(OpLshr, a.B, b)
				}
			}
			// Cancel against an inner left shift when no bits were lost.
			if a.Op == OpShl {
				if sh, ok := a.B.IsConst(); ok && sh < 64 {
					if a.A.msk<<sh>>sh == a.A.msk { // lossless shl
						switch {
						case sh == bv:
							return a.A
						case sh > bv:
							return New(OpShl, a.A, Const(sh-bv))
						default:
							return New(OpLshr, a.A, Const(bv-sh))
						}
					}
				}
			}
		}
	case OpEq:
		if a == b {
			return one
		}
		// eq(eq(x,y),1) => eq(x,y); eq(cmp,0) => not
		if bok && isCmp(a.Op) {
			if bv == 1 {
				return a
			}
			if bv == 0 {
				return Not(a)
			}
			return zero
		}
	case OpNe:
		if a == b {
			return zero
		}
		if bok && isCmp(a.Op) {
			if bv == 0 {
				return a
			}
			if bv == 1 {
				return Not(a)
			}
			return one
		}
	case OpUlt:
		if a == b {
			return zero
		}
		if bok && bv == 0 {
			return zero // nothing is < 0 unsigned
		}
		if aok && av == ^uint64(0) {
			return zero
		}
	case OpUle:
		if a == b {
			return one
		}
		if aok && av == 0 {
			return one
		}
		if bok && bv == ^uint64(0) {
			return one
		}
	}
	return &Expr{Op: op, A: a, B: b, msk: computeMask(op, a, b), fp: fpMix(uint64(op), a.fp, b.fp)}
}

func isCmp(op Op) bool {
	switch op {
	case OpEq, OpNe, OpUlt, OpUle:
		return true
	}
	return false
}

// Convenience constructors.

// Add returns a+b.
func Add(a, b *Expr) *Expr { return New(OpAdd, a, b) }

// Sub returns a-b.
func Sub(a, b *Expr) *Expr { return New(OpSub, a, b) }

// Mul returns a*b.
func Mul(a, b *Expr) *Expr { return New(OpMul, a, b) }

// And returns a&b.
func And(a, b *Expr) *Expr { return New(OpAnd, a, b) }

// Or returns a|b.
func Or(a, b *Expr) *Expr { return New(OpOr, a, b) }

// Xor returns a^b.
func Xor(a, b *Expr) *Expr { return New(OpXor, a, b) }

// Shl returns a<<b.
func Shl(a, b *Expr) *Expr { return New(OpShl, a, b) }

// Lshr returns a>>b.
func Lshr(a, b *Expr) *Expr { return New(OpLshr, a, b) }

// Eq returns a==b as 0/1.
func Eq(a, b *Expr) *Expr { return New(OpEq, a, b) }

// Ne returns a!=b as 0/1.
func Ne(a, b *Expr) *Expr { return New(OpNe, a, b) }

// Ult returns a<b (unsigned) as 0/1.
func Ult(a, b *Expr) *Expr { return New(OpUlt, a, b) }

// Ule returns a<=b (unsigned) as 0/1.
func Ule(a, b *Expr) *Expr { return New(OpUle, a, b) }

// Ite returns cond!=0 ? then : els.
func Ite(cond, then, els *Expr) *Expr {
	if v, ok := cond.IsConst(); ok {
		if v != 0 {
			return then
		}
		return els
	}
	if then == els {
		return then
	}
	return &Expr{
		Op: OpIte, A: cond, B: then, C: els,
		msk: then.msk | els.msk,
		fp:  fpMix(uint64(OpIte), cond.fp, then.fp, els.fp),
	}
}

// Not returns the boolean negation of a comparison (or tests e == 0 for a
// general expression).
func Not(e *Expr) *Expr {
	switch e.Op {
	case OpEq:
		return &Expr{Op: OpNe, A: e.A, B: e.B, msk: 1, fp: fpMix(uint64(OpNe), e.A.fp, e.B.fp)}
	case OpNe:
		return &Expr{Op: OpEq, A: e.A, B: e.B, msk: 1, fp: fpMix(uint64(OpEq), e.A.fp, e.B.fp)}
	case OpUlt:
		return New(OpUle, e.B, e.A)
	case OpUle:
		return New(OpUlt, e.B, e.A)
	case OpConst:
		return Bool(e.Val == 0)
	}
	return Eq(e, zero)
}

// Truth coerces an arbitrary expression to a boolean constraint
// (e interpreted as "e != 0").
func Truth(e *Expr) *Expr {
	if isCmp(e.Op) {
		return e
	}
	if v, ok := e.IsConst(); ok {
		return Bool(v != 0)
	}
	return Ne(e, zero)
}

// Eval computes e under the assignment vals (mapping every variable in e).
// Missing variables evaluate as 0.
func (e *Expr) Eval(vals map[VarID]uint64) uint64 {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		return vals[e.Var] & 0xff
	case OpIte:
		if e.A.Eval(vals) != 0 {
			return e.B.Eval(vals)
		}
		return e.C.Eval(vals)
	default:
		return binConst(e.Op, e.A.Eval(vals), e.B.Eval(vals))
	}
}

// VarList returns the sorted distinct variables of e. The result is
// cached on the node and must not be mutated.
func (e *Expr) VarList() []VarID {
	if e.vlist != nil || !e.HasVars() {
		return e.vlist
	}
	switch e.Op {
	case OpVar:
		e.vlist = []VarID{e.Var}
	case OpIte:
		e.vlist = mergeVars(mergeVars(e.A.VarList(), e.B.VarList()), e.C.VarList())
	default:
		e.vlist = mergeVars(e.A.VarList(), e.B.VarList())
	}
	return e.vlist
}

// mergeVars merges two sorted deduplicated lists.
func mergeVars(a, b []VarID) []VarID {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]VarID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Vars appends the distinct variables of e to dst (deduplicated via seen).
func (e *Expr) Vars(seen map[VarID]bool, dst []VarID) []VarID {
	for _, v := range e.VarList() {
		if !seen[v] {
			seen[v] = true
			dst = append(dst, v)
		}
	}
	return dst
}

// NumVars returns the number of distinct variables in e.
func (e *Expr) NumVars() int { return len(e.VarList()) }

// HasVars reports whether e contains any symbolic variable.
func (e *Expr) HasVars() bool {
	switch e.concrete {
	case 1:
		return false
	case 2:
		return true
	}
	var has bool
	switch e.Op {
	case OpConst:
		has = false
	case OpVar:
		has = true
	case OpIte:
		has = e.A.HasVars() || e.B.HasVars() || e.C.HasVars()
	default:
		has = e.A.HasVars() || e.B.HasVars()
	}
	if has {
		e.concrete = 2
	} else {
		e.concrete = 1
	}
	return has
}

// Substitute returns e with every variable replaced per vals; variables not
// present in vals are kept symbolic. The walk is DAG-aware: shared
// subtrees are rewritten once.
func (e *Expr) Substitute(vals map[VarID]uint64) *Expr {
	return e.substitute(vals, map[*Expr]*Expr{})
}

func (e *Expr) substitute(vals map[VarID]uint64, cache map[*Expr]*Expr) *Expr {
	if !e.HasVars() {
		return e
	}
	if r, ok := cache[e]; ok {
		return r
	}
	var r *Expr
	switch e.Op {
	case OpVar:
		if v, ok := vals[e.Var]; ok {
			r = Const(v & 0xff)
		} else {
			r = e
		}
	case OpIte:
		r = Ite(e.A.substitute(vals, cache), e.B.substitute(vals, cache), e.C.substitute(vals, cache))
	default:
		r = New(e.Op, e.A.substitute(vals, cache), e.B.substitute(vals, cache))
	}
	cache[e] = r
	return r
}

// String renders e in prefix form, e.g. "(add v3 (mul v4 0x2))".
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

const maxRenderDepth = 12

func (e *Expr) write(b *strings.Builder, depth int) {
	if depth > maxRenderDepth {
		b.WriteString("…")
		return
	}
	switch e.Op {
	case OpConst:
		fmt.Fprintf(b, "%#x", e.Val)
	case OpVar:
		fmt.Fprintf(b, "v%d", e.Var)
	case OpIte:
		b.WriteString("(ite ")
		e.A.write(b, depth+1)
		b.WriteByte(' ')
		e.B.write(b, depth+1)
		b.WriteByte(' ')
		e.C.write(b, depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		e.A.write(b, depth+1)
		b.WriteByte(' ')
		e.B.write(b, depth+1)
		b.WriteByte(')')
	}
}

// Byte returns the expression selecting byte i (0 = least significant) of e.
func Byte(e *Expr, i int) *Expr {
	return And(Lshr(e, Const(uint64(i)*8)), Const(0xff))
}

// ConcatBytes assembles a big-endian word from byte expressions: the first
// element becomes the most significant byte. This is how the IR NFs load
// multi-byte header fields.
func ConcatBytes(bs ...*Expr) *Expr {
	acc := zero
	for _, b := range bs {
		acc = Or(Shl(acc, Const(8)), And(b, Const(0xff)))
	}
	return acc
}

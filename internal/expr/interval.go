package expr

import "math/bits"

// hdStart returns the starting mask for the Hacker's Delight interval
// loops: bits above the highest set bit of any operand bound can never
// trigger, so starting at the MSB (instead of bit 63) makes the loops
// proportional to the operands' width — most values here are bytes.
func hdStart(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return uint64(1) << (63 - bits.LeadingZeros64(v))
}

// Interval is an unsigned 64-bit range [Lo, Hi]. Intervals are used by the
// solver to prune infeasible partial assignments cheaply and by the
// symbolic pointer concretizer to bound candidate addresses.
type Interval struct {
	Lo, Hi uint64
}

// Full is the unconstrained interval.
var Full = Interval{0, ^uint64(0)}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint64) bool { return v >= iv.Lo && v <= iv.Hi }

// Singleton reports whether the interval pins exactly one value.
func (iv Interval) Singleton() (uint64, bool) {
	if iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// Empty reports whether the interval contains no values (Lo > Hi).
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Intersect returns the intersection (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Range computes a sound over-approximation of e's value range under a
// partial assignment: variables present in vals are pinned; others range
// over [0,255]. Soundness means the true value always lies within the
// returned interval; precision is best-effort (wrap-around falls back to
// Full).
func Range(e *Expr, vals map[VarID]uint64) Interval {
	switch e.Op {
	case OpConst:
		return Interval{e.Val, e.Val}
	case OpVar:
		if v, ok := vals[e.Var]; ok {
			v &= 0xff
			return Interval{v, v}
		}
		return Interval{0, 255}
	case OpIte:
		c := Range(e.A, vals)
		if v, ok := c.Singleton(); ok {
			if v != 0 {
				return Range(e.B, vals)
			}
			return Range(e.C, vals)
		}
		t, f := Range(e.B, vals), Range(e.C, vals)
		lo, hi := t.Lo, t.Hi
		if f.Lo < lo {
			lo = f.Lo
		}
		if f.Hi > hi {
			hi = f.Hi
		}
		return Interval{lo, hi}
	}
	a := Range(e.A, vals)
	b := Range(e.B, vals)
	switch e.Op {
	case OpAdd:
		lo, hi := a.Lo+b.Lo, a.Hi+b.Hi
		if hi < a.Hi || lo > hi { // wrapped
			return Full
		}
		return Interval{lo, hi}
	case OpSub:
		if a.Lo >= b.Hi {
			return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
		}
		return Full
	case OpMul:
		if a.Hi == 0 || b.Hi == 0 {
			return Interval{0, 0}
		}
		hi := a.Hi * b.Hi
		if a.Hi != 0 && hi/a.Hi != b.Hi { // overflow
			return Full
		}
		return Interval{a.Lo * b.Lo, hi}
	case OpAnd:
		return Interval{minAND(a.Lo, a.Hi, b.Lo, b.Hi), maxAND(a.Lo, a.Hi, b.Lo, b.Hi)}
	case OpOr:
		return Interval{minOR(a.Lo, a.Hi, b.Lo, b.Hi), maxOR(a.Lo, a.Hi, b.Lo, b.Hi)}
	case OpXor:
		// x^y <= x|y, and the OR bound is cheap and sound.
		return Interval{0, maxOR(a.Lo, a.Hi, b.Lo, b.Hi)}
	case OpShl:
		if s, ok := b.Singleton(); ok {
			if s >= 64 {
				return Interval{0, 0}
			}
			hi := a.Hi << s
			if hi>>s != a.Hi {
				return Full
			}
			return Interval{a.Lo << s, hi}
		}
		return Full
	case OpLshr:
		if s, ok := b.Singleton(); ok {
			if s >= 64 {
				return Interval{0, 0}
			}
			return Interval{a.Lo >> s, a.Hi >> s}
		}
		return Interval{0, a.Hi}
	case OpUDiv:
		if bs, ok := b.Singleton(); ok && bs != 0 {
			return Interval{a.Lo / bs, a.Hi / bs}
		}
		return Interval{0, a.Hi}
	case OpURem:
		if bs, ok := b.Singleton(); ok && bs != 0 {
			if a.Hi < bs {
				return a
			}
			return Interval{0, bs - 1}
		}
		return Interval{0, a.Hi}
	case OpEq:
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return Interval{0, 0} // disjoint: cannot be equal
		}
		if as, ok := a.Singleton(); ok {
			if bs, ok2 := b.Singleton(); ok2 {
				return Interval{b2u(as == bs), b2u(as == bs)}
			}
		}
		return Interval{0, 1}
	case OpNe:
		if a.Hi < b.Lo || b.Hi < a.Lo {
			return Interval{1, 1}
		}
		if as, ok := a.Singleton(); ok {
			if bs, ok2 := b.Singleton(); ok2 {
				return Interval{b2u(as != bs), b2u(as != bs)}
			}
		}
		return Interval{0, 1}
	case OpUlt:
		if a.Hi < b.Lo {
			return Interval{1, 1}
		}
		if a.Lo >= b.Hi {
			return Interval{0, 0}
		}
		return Interval{0, 1}
	case OpUle:
		if a.Hi <= b.Lo {
			return Interval{1, 1}
		}
		if a.Lo > b.Hi {
			return Interval{0, 0}
		}
		return Interval{0, 1}
	}
	return Full
}

// The four functions below compute tight bounds for bitwise OR/AND of two
// independent intervals [a,b] and [c,d] (Hacker's Delight, section 4-3).

func minOR(a, b, c, d uint64) uint64 {
	m := hdStart(b | d)
	for m != 0 {
		if ^a&c&m != 0 {
			t := (a | m) &^ (m - 1)
			if t <= b {
				a = t
				break
			}
		} else if a&^c&m != 0 {
			t := (c | m) &^ (m - 1)
			if t <= d {
				c = t
				break
			}
		}
		m >>= 1
	}
	return a | c
}

func maxOR(a, b, c, d uint64) uint64 {
	m := hdStart(b & d)
	for m != 0 {
		if b&d&m != 0 {
			t := (b - m) | (m - 1)
			if t >= a {
				b = t
				break
			}
			t = (d - m) | (m - 1)
			if t >= c {
				d = t
				break
			}
		}
		m >>= 1
	}
	return b | d
}

func minAND(a, b, c, d uint64) uint64 {
	// Above msb(b|d), (a|m) exceeds b and (c|m) exceeds d, so nothing
	// can change: start at the operands' width.
	m := hdStart(b | d)
	for m != 0 {
		if ^a&^c&m != 0 {
			t := (a | m) &^ (m - 1)
			if t <= b {
				a = t
				break
			}
			t = (c | m) &^ (m - 1)
			if t <= d {
				c = t
				break
			}
		}
		m >>= 1
	}
	return a & c
}

func maxAND(a, b, c, d uint64) uint64 {
	m := hdStart(b | d)
	for m != 0 {
		if b&^d&m != 0 {
			t := (b &^ m) | (m - 1)
			if t >= a {
				b = t
				break
			}
		} else if ^b&d&m != 0 {
			t := (d &^ m) | (m - 1)
			if t >= c {
				d = t
				break
			}
		}
		m >>= 1
	}
	return b & d
}

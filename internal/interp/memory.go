// Package interp executes IR modules concretely. The testbed simulator
// (internal/testbed) drives it with instrumentation hooks to account CPU
// cycles and feed every memory access through the simulated cache
// hierarchy, the way the paper measures NFs on the DUT.
package interp

import "encoding/binary"

// pageBits selects a 4 KiB sparse-memory granule.
const pageBits = 12

const pageSize = 1 << pageBits

// Memory is a sparse byte-addressable memory with big-endian multi-byte
// accesses. Pages materialize (zeroed) on first touch, so multi-MiB lookup
// tables cost only what they actually store.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[idx] = p
	}
	return p
}

// LoadByte returns the byte at addr (0 for untouched memory).
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte stores one byte.
func (m *Memory) StoreByte(addr uint64, v byte) {
	m.page(addr, true)[addr&(pageSize-1)] = v
}

// Read returns size bytes at addr as a big-endian value. size must be
// 1, 2, 4 or 8.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	var buf [8]byte
	m.ReadBytes(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(buf[:2]))
	case 4:
		return uint64(binary.BigEndian.Uint32(buf[:4]))
	case 8:
		return binary.BigEndian.Uint64(buf[:8])
	}
	panic("interp: bad read size")
}

// Write stores size bytes at addr from a big-endian value.
func (m *Memory) Write(addr uint64, v uint64, size uint8) {
	var buf [8]byte
	switch size {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(buf[:2], uint16(v))
	case 4:
		binary.BigEndian.PutUint32(buf[:4], uint32(v))
	case 8:
		binary.BigEndian.PutUint64(buf[:8], v)
	default:
		panic("interp: bad write size")
	}
	m.WriteBytes(addr, buf[:size])
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & (pageSize - 1)
		n := pageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := range dst[:n] {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & (pageSize - 1)
		n := pageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// PagesTouched reports the number of materialized 4 KiB pages, useful for
// asserting footprint in tests.
func (m *Memory) PagesTouched() int { return len(m.pages) }

package interp

import (
	"errors"
	"fmt"

	"castan/internal/ir"
)

// MemAccess describes one load or store, delivered to the OnMem hook.
type MemAccess struct {
	Addr    uint64
	Size    uint8
	IsWrite bool
}

// Hooks receive execution events. Nil hooks are skipped. The testbed uses
// OnInstr for cycle accounting and OnMem to drive the cache simulator.
type Hooks struct {
	OnInstr func(fn *ir.Func, in *ir.Instr)
	OnMem   func(a MemAccess)
	// OnDef fires after a value-defining instruction executes, with the
	// value just written to its destination register. The taint
	// soundness property test uses this to compare per-instruction
	// value streams across runs.
	OnDef func(fn *ir.Func, in *ir.Instr, val uint64)
}

// ErrStepBudget is returned when execution exceeds the configured budget,
// which in a validated NF indicates a runaway loop.
var ErrStepBudget = errors.New("interp: step budget exhausted")

// Machine executes functions of one module against one memory.
type Machine struct {
	Mod   *ir.Module
	Mem   *Memory
	Hooks Hooks

	// MaxSteps bounds instructions per Call; 0 means DefaultMaxSteps.
	MaxSteps int

	heapTop uint64
	steps   int
}

// DefaultMaxSteps bounds a single Call.
const DefaultMaxSteps = 50_000_000

// NewMachine creates a machine for the module with fresh memory and
// initializes the heap pointer. Module must be laid out and validated.
func NewMachine(mod *ir.Module) *Machine {
	return &Machine{Mod: mod, Mem: NewMemory(), heapTop: ir.HeapBase}
}

// HeapUsed reports bytes handed out by OpAlloc.
func (m *Machine) HeapUsed() uint64 { return m.heapTop - ir.HeapBase }

// Alloc reserves size bytes on the machine heap (64-byte aligned), for
// Go-side setup code that needs memory the IR will later traverse.
func (m *Machine) Alloc(size uint64) uint64 {
	addr := (m.heapTop + 63) &^ 63
	m.heapTop = addr + size
	return addr
}

// Call runs the named function with the given arguments and returns its
// return value. The per-call step budget guards against runaway loops.
func (m *Machine) Call(name string, args ...uint64) (uint64, error) {
	fn := m.Mod.Funcs[name]
	if fn == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	m.steps = 0
	return m.run(fn, args)
}

func (m *Machine) budget() int {
	if m.MaxSteps > 0 {
		return m.MaxSteps
	}
	return DefaultMaxSteps
}

func (m *Machine) run(fn *ir.Func, args []uint64) (uint64, error) {
	if len(args) != fn.NumParams {
		return 0, fmt.Errorf("interp: %s expects %d args, got %d", fn.Name, fn.NumParams, len(args))
	}
	regs := make([]uint64, fn.NumRegs)
	copy(regs, args)
	blk := fn.Entry()
	pc := 0
	for {
		if pc >= len(blk.Instrs) {
			return 0, fmt.Errorf("interp: fell off block %s/%s", fn.Name, blk.Name)
		}
		in := blk.Instrs[pc]
		m.steps++
		if m.steps > m.budget() {
			return 0, ErrStepBudget
		}
		if m.Hooks.OnInstr != nil {
			m.Hooks.OnInstr(fn, in)
		}
		switch in.Op {
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
		case ir.OpBin:
			regs[in.Dst] = in.Bin.Eval(regs[in.A], regs[in.B])
		case ir.OpCmp:
			regs[in.Dst] = in.Pred.Eval(regs[in.A], regs[in.B])
		case ir.OpSelect:
			if regs[in.A] != 0 {
				regs[in.Dst] = regs[in.B]
			} else {
				regs[in.Dst] = regs[in.C]
			}
		case ir.OpLoad:
			addr := regs[in.A] + in.Imm
			if m.Hooks.OnMem != nil {
				m.Hooks.OnMem(MemAccess{Addr: addr, Size: in.Size})
			}
			regs[in.Dst] = m.Mem.Read(addr, in.Size)
		case ir.OpStore:
			addr := regs[in.A] + in.Imm
			if m.Hooks.OnMem != nil {
				m.Hooks.OnMem(MemAccess{Addr: addr, Size: in.Size, IsWrite: true})
			}
			m.Mem.Write(addr, regs[in.B], in.Size)
		case ir.OpBr:
			blk, pc = in.Blk0, 0
			continue
		case ir.OpCondBr:
			if regs[in.A] != 0 {
				blk = in.Blk0
			} else {
				blk = in.Blk1
			}
			pc = 0
			continue
		case ir.OpCall:
			callArgs := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			ret, err := m.run(in.Callee, callArgs)
			if err != nil {
				return 0, err
			}
			if in.Dst != ir.NoReg {
				regs[in.Dst] = ret
			}
		case ir.OpRet:
			if in.A == ir.NoReg {
				return 0, nil
			}
			return regs[in.A], nil
		case ir.OpAlloc:
			regs[in.Dst] = m.Alloc(regs[in.A])
		case ir.OpHavoc:
			h := m.Mod.Hashes[in.HashID]
			key := make([]byte, in.Imm)
			m.Mem.ReadBytes(regs[in.A], key)
			// The key bytes flow through the hash; account the reads so
			// the cache simulator sees them like any other access.
			if m.Hooks.OnMem != nil {
				for off := uint64(0); off < in.Imm; off += 8 {
					sz := in.Imm - off
					if sz > 8 {
						sz = 8
					}
					m.Hooks.OnMem(MemAccess{Addr: regs[in.A] + off, Size: uint8(sz)})
				}
			}
			mask := uint64(1)<<uint(h.Bits) - 1
			if h.Bits >= 64 {
				mask = ^uint64(0)
			}
			regs[in.Dst] = h.Fn(key) & mask
		default:
			return 0, fmt.Errorf("interp: bad opcode %d in %s", in.Op, fn.Name)
		}
		if m.Hooks.OnDef != nil {
			if d := in.Def(); d != ir.NoReg {
				m.Hooks.OnDef(fn, in, regs[d])
			}
		}
		pc++
	}
}

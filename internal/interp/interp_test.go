package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"castan/internal/ir"
)

func TestMemoryByteAndBulk(t *testing.T) {
	m := NewMemory()
	if m.LoadByte(0x1234) != 0 {
		t.Error("untouched memory not zero")
	}
	m.StoreByte(0x1234, 0xab)
	if m.LoadByte(0x1234) != 0xab {
		t.Error("byte write lost")
	}
	// Cross-page bulk copy.
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m.WriteBytes(0xfff0, data)
	got := make([]byte, len(data))
	m.ReadBytes(0xfff0, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("bulk mismatch at %d", i)
		}
	}
	if m.PagesTouched() < 3 {
		t.Errorf("PagesTouched = %d", m.PagesTouched())
	}
}

func TestMemoryBigEndian(t *testing.T) {
	m := NewMemory()
	m.Write(0x100, 0x1122334455667788, 8)
	if m.LoadByte(0x100) != 0x11 || m.LoadByte(0x107) != 0x88 {
		t.Error("not big-endian")
	}
	if m.Read(0x100, 4) != 0x11223344 {
		t.Errorf("read4 = %#x", m.Read(0x100, 4))
	}
	if m.Read(0x104, 2) != 0x5566 {
		t.Errorf("read2 = %#x", m.Read(0x104, 2))
	}
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr)
		m.Write(a, v, 8)
		return m.Read(a, 8) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// buildFib builds an iterative fibonacci in IR.
func buildFib(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("fib")
	m.Layout()
	fb := m.NewFunc("fib", 1)
	n := fb.Param(0)
	a := fb.VarImm(0)
	b := fb.VarImm(1)
	i := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), n) }, func() {
		next := fb.Add(a.R(), b.R())
		a.Set(b.R())
		b.Set(next)
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(a.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInterpFib(t *testing.T) {
	m := NewMachine(buildFib(t))
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		got, err := m.Call("fib", uint64(n))
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if got != w {
			t.Errorf("fib(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestInterpMemOpsAndHooks(t *testing.T) {
	m := ir.NewModule("memops")
	g := m.AddGlobal("buf", 64, 0)
	m.Layout()
	fb := m.NewFunc("sum", 1)
	count := fb.Param(0)
	base := fb.GlobalAddr(g)
	i := fb.VarImm(0)
	acc := fb.VarImm(0)
	fb.While(func() ir.Reg { return fb.CmpUlt(i.R(), count) }, func() {
		addr := fb.Add(base, fb.MulImm(i.R(), 4))
		acc.Set(fb.Add(acc.R(), fb.Load(addr, 0, 4)))
		i.Set(fb.AddImm(i.R(), 1))
	})
	fb.Ret(acc.R())
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	mach := NewMachine(m)
	for k := 0; k < 8; k++ {
		mach.Mem.Write(g.Addr+uint64(k)*4, uint64(k+1), 4)
	}
	var loads int
	var instrs int
	mach.Hooks = Hooks{
		OnInstr: func(fn *ir.Func, in *ir.Instr) { instrs++ },
		OnMem: func(a MemAccess) {
			if !a.IsWrite {
				loads++
			}
		},
	}
	got, err := mach.Call("sum", 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
	if loads != 8 {
		t.Errorf("loads = %d, want 8", loads)
	}
	if instrs == 0 {
		t.Error("no instruction events")
	}
}

func TestInterpCallsAndAlloc(t *testing.T) {
	m := ir.NewModule("calls")
	m.Layout()
	// newNode(v): alloc 16 bytes, store v at +8, return addr.
	nn := m.NewFunc("newNode", 1)
	v := nn.Param(0)
	node := nn.AllocImm(16)
	nn.Store(node, 8, v, 8)
	nn.Ret(node)
	nn.Seal()
	// main: n1 = newNode(7); n2 = newNode(9); return load(n1+8) + load(n2+8).
	mn := m.NewFunc("main", 0)
	n1 := mn.Call(nn.Func(), mn.Const(7))
	n2 := mn.Call(nn.Func(), mn.Const(9))
	mn.Ret(mn.Add(mn.Load(n1, 8, 8), mn.Load(n2, 8, 8)))
	mn.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m)
	got, err := mach.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("main = %d", got)
	}
	if mach.HeapUsed() < 32 {
		t.Errorf("HeapUsed = %d", mach.HeapUsed())
	}
}

func TestInterpHavocConcrete(t *testing.T) {
	m := ir.NewModule("h")
	m.Layout()
	hid := m.AddHash("sum8", 8, func(key []byte) uint64 {
		var s uint64
		for _, b := range key {
			s += uint64(b)
		}
		return s
	})
	fb := m.NewFunc("f", 1)
	key := fb.Param(0)
	fb.Ret(fb.Havoc(hid, key, 4))
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m)
	mach.Mem.WriteBytes(0x3000, []byte{100, 200, 50, 6})
	got, err := mach.Call("f", 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if got != (100+200+50+6)&0xff {
		t.Errorf("havoc = %d", got)
	}
}

func TestInterpStepBudget(t *testing.T) {
	m := ir.NewModule("inf")
	m.Layout()
	fb := m.NewFunc("spin", 0)
	fb.Loop(func() {})
	fb.RetImm(0)
	fb.Seal()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	mach := NewMachine(m)
	mach.MaxSteps = 10000
	if _, err := mach.Call("spin"); !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want budget", err)
	}
}

func TestInterpUnknownFunction(t *testing.T) {
	mach := NewMachine(buildFib(t))
	if _, err := mach.Call("nope"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := mach.Call("fib"); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestInterpSelect(t *testing.T) {
	m := ir.NewModule("sel")
	m.Layout()
	fb := m.NewFunc("clamp", 1)
	x := fb.Param(0)
	hundred := fb.Const(100)
	fb.Ret(fb.Select(fb.CmpUlt(x, hundred), x, hundred))
	fb.Seal()
	mach := NewMachine(m)
	for _, c := range []struct{ in, want uint64 }{{5, 5}, {100, 100}, {1000, 100}} {
		got, err := mach.Call("clamp", c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("clamp(%d) = %d", c.in, got)
		}
	}
}

// Package faultinject is the seeded fault-injection harness that proves
// the pipeline's degradation paths work. A Plan describes which faults to
// arm; the pipeline wires the resulting hooks into per-run config structs
// (solver.ForceUnknown, memsim probe perturbation, rainbow chain
// corruption, parallel worker panics). There is no global state: every
// hook is a closure over the plan, so two concurrent runs with different
// plans cannot interfere, and a run with a nil plan pays nothing.
//
// Faults are deterministic functions of the plan's seed and the call
// sequence (or, for value-perturbing hooks, of the inputs themselves), so
// a faulty run is as reproducible as a healthy one — the matrix test
// relies on this to assert byte-stable degraded reports.
package faultinject

import (
	"fmt"

	"castan/internal/stats"
)

// Stage names a PanicStage can target; they match the pipeline fan-out
// sites that use internal/parallel.
const (
	PanicFrames    = "frames"    // final per-packet frame synthesis
	PanicReconcile = "reconcile" // rainbow candidate checks
)

// Plan selects which faults to arm for one run. The zero value arms
// nothing. Plans are immutable once handed to the pipeline.
type Plan struct {
	// Name labels the plan in test output and reports.
	Name string
	// Seed drives any randomized perturbation deterministically.
	Seed uint64
	// SolverUnknownAfter > 0 forces every solver Check after the first
	// n calls to return Unknown (simulating a solver that stops making
	// progress mid-run). 1 means "fail from the start".
	SolverUnknownAfter int
	// ProbePerturb injects deterministic jitter into memsim probe
	// timings, corrupting the signal cache-model discovery measures.
	ProbePerturb bool
	// CorruptChainEvery > 0 corrupts every n-th rainbow chain end,
	// simulating a torn or bit-flipped table.
	CorruptChainEvery int
	// PanicStage names a parallel fan-out whose first worker item
	// panics (contained by internal/parallel, surfaced to the stage
	// guard in castan.Analyze).
	PanicStage string
}

// Enabled reports whether the plan arms any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.SolverUnknownAfter > 0 || p.ProbePerturb || p.CorruptChainEvery > 0 || p.PanicStage != ""
}

// SolverHook returns the solver.ForceUnknown hook for this plan, or nil
// if the fault is not armed. The returned closure counts calls, so it
// must only be invoked from a single goroutine (the pipeline thread's
// solvers) — the same constraint solver telemetry already obeys.
func (p *Plan) SolverHook() func() bool {
	if p == nil || p.SolverUnknownAfter <= 0 {
		return nil
	}
	calls := 0
	after := p.SolverUnknownAfter
	return func() bool {
		calls++
		return calls >= after
	}
}

// ProbeHook returns the memsim probe-perturbation hook, or nil. The
// jitter is a pure function of the probed addresses and the plan seed, so
// repeated probes of the same working set see the same (wrong) timing —
// exactly the failure mode of a machine with an undetected noisy
// neighbor.
func (p *Plan) ProbeHook() func(addrs []uint64, t uint64) uint64 {
	if p == nil || !p.ProbePerturb {
		return nil
	}
	seed := p.Seed
	return func(addrs []uint64, t uint64) uint64 {
		h := seed ^ 0x9e3779b97f4a7c15
		for _, a := range addrs {
			h ^= a
			h *= 0x100000001b3
		}
		// Jitter of up to ±127 ticks, large enough to cross the
		// L3-vs-DRAM classification threshold discovery relies on.
		jitter := h % 255
		return t + jitter - 127
	}
}

// ChainHook returns the rainbow chain-corruption hook, or nil. Every
// CorruptChainEvery-th chain gets its stored end XOR-perturbed with a
// seed-derived value, so lookups walk into chains that do not replay.
func (p *Plan) ChainHook() func(chain int, end uint64) uint64 {
	if p == nil || p.CorruptChainEvery <= 0 {
		return nil
	}
	every := p.CorruptChainEvery
	seed := p.Seed
	return func(chain int, end uint64) uint64 {
		if chain%every != 0 {
			return end
		}
		return end ^ stats.NewRNG(seed^uint64(chain)).Uint64()
	}
}

// PanicHook returns a per-item hook for the named fan-out stage, or nil
// if the plan targets a different stage. The hook panics on item 0 — the
// lowest index, so containment surfaces it identically at every worker
// count.
func (p *Plan) PanicHook(stage string) func(item int) {
	if p == nil || p.PanicStage != stage {
		return nil
	}
	name := p.Name
	if name == "" {
		name = stage
	}
	return func(item int) {
		if item == 0 {
			panic(fmt.Sprintf("faultinject: injected worker panic (plan %s, stage %s)", name, stage))
		}
	}
}

// MatrixPlans returns the named fault plans the robustness matrix test
// runs every NF under: one per fault class, seeded deterministically.
func MatrixPlans() []*Plan {
	return []*Plan{
		{Name: "solver-unknown", Seed: 1, SolverUnknownAfter: 1},
		{Name: "probe-perturb", Seed: 2, ProbePerturb: true},
		{Name: "chain-corrupt", Seed: 3, CorruptChainEvery: 1},
		{Name: "worker-panic-frames", Seed: 4, PanicStage: PanicFrames},
	}
}

package faultinject

import "testing"

func TestNilAndZeroPlansArmNothing(t *testing.T) {
	var nilPlan *Plan
	var zero Plan
	for _, p := range []*Plan{nilPlan, &zero} {
		if p.Enabled() {
			t.Fatal("plan arms faults")
		}
		if p.SolverHook() != nil {
			t.Fatal("solver hook armed")
		}
		if p.ProbeHook() != nil {
			t.Fatal("probe hook armed")
		}
		if p.ChainHook() != nil {
			t.Fatal("chain hook armed")
		}
		if p.PanicHook(PanicFrames) != nil {
			t.Fatal("panic hook armed")
		}
	}
}

func TestSolverHookCountsCalls(t *testing.T) {
	p := &Plan{SolverUnknownAfter: 3}
	hook := p.SolverHook()
	if hook() || hook() {
		t.Fatal("hook fired before threshold")
	}
	for i := 0; i < 5; i++ {
		if !hook() {
			t.Fatal("hook stopped firing after threshold")
		}
	}
	// Independent closures count independently (no global state).
	if p.SolverHook()() {
		t.Fatal("fresh hook shares call count")
	}
}

func TestProbeHookDeterministicAndPerturbing(t *testing.T) {
	p := &Plan{Seed: 42, ProbePerturb: true}
	hook := p.ProbeHook()
	addrs := []uint64{0x1000, 0x2000, 0x3000}
	a := hook(addrs, 10000)
	b := hook(addrs, 10000)
	if a != b {
		t.Fatalf("same inputs, different outputs: %d vs %d", a, b)
	}
	// Different working sets should (for this seed) see different jitter.
	c := hook([]uint64{0x4000, 0x5000}, 10000)
	if a == c {
		t.Fatalf("jitter did not depend on addresses")
	}
	// A different seed changes the jitter for the same working set.
	other := (&Plan{Seed: 43, ProbePerturb: true}).ProbeHook()
	if other(addrs, 10000) == a {
		t.Fatal("jitter did not depend on seed")
	}
}

func TestChainHookCorruptsSelectedChains(t *testing.T) {
	p := &Plan{Seed: 7, CorruptChainEvery: 2}
	hook := p.ChainHook()
	if got := hook(1, 555); got != 555 {
		t.Fatalf("odd chain corrupted: %d", got)
	}
	c0 := hook(0, 555)
	if c0 == 555 {
		t.Fatal("even chain not corrupted")
	}
	if again := hook(0, 555); again != c0 {
		t.Fatal("corruption not deterministic")
	}
}

func TestPanicHookTargetsStageAndItemZero(t *testing.T) {
	p := &Plan{Name: "test", PanicStage: PanicFrames}
	if p.PanicHook(PanicReconcile) != nil {
		t.Fatal("hook armed for wrong stage")
	}
	hook := p.PanicHook(PanicFrames)
	hook(1) // non-zero items pass through
	defer func() {
		if recover() == nil {
			t.Fatal("item 0 did not panic")
		}
	}()
	hook(0)
}

func TestMatrixPlansCoverEveryFaultClass(t *testing.T) {
	plans := MatrixPlans()
	if len(plans) != 4 {
		t.Fatalf("want 4 matrix plans, got %d", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if !p.Enabled() {
			t.Fatalf("plan %s arms nothing", p.Name)
		}
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("plan names must be unique and non-empty: %q", p.Name)
		}
		seen[p.Name] = true
	}
}

package obs

// GateCounters is the canonical list of deterministic effort counters
// the CI perf gate diffs (cmd/benchmetrics -compare) and the telemetry
// catalog (docs/TELEMETRY.md) marks as gate-relevant. Every name here
// counts work items, never time, so the values are bit-identical for a
// fixed (nf, packets, states, seed) across machines, load and worker
// counts — the property that lets the gate run with zero flake budget.
//
// Adding a counter here makes it gate regressions only after the next
// `make bench-metrics` baseline refresh: the gate compares over the
// intersection of baseline and fresh columns.
var GateCounters = []string{
	"solver.queries",
	"solver.backtracks",
	"symbex.states_explored",
	"symbex.forks",
	"symbex.instructions",
	"memsim.accesses",
	"memsim.dram_misses",
	"memsim.probe_line_reads",
	"rainbow.chains",
	"castan.havocs_reconciled",
	"castan.store.hits",
	"symbex.folded_instructions",
	"solver.queries_avoided",
	"symbex.pruned_edges",
	"solver.memo_hits",
	"solver.memo_misses",
}

// GateCounter reports whether name is one of the perf gate's columns.
func GateCounter(name string) bool {
	for _, g := range GateCounters {
		if g == name {
			return true
		}
	}
	return false
}

package obs

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func drain(c *ChanSub) []ProgressEvent {
	var out []ProgressEvent
	for {
		select {
		case ev := <-c.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestPublishSequenceAndKinds(t *testing.T) {
	rec := New(NewFakeClock(1000))
	sub := NewChanSub(64)
	rec.Subscribe(sub)

	if !rec.Publishing() {
		t.Fatal("Publishing() = false after Subscribe")
	}
	rec.StageBegin("castan.discover")
	rec.Progress("castan.discover", "contention_sets", 1, 6)
	rec.Counter("memsim.probe_line_reads").Add(17)
	rec.StageEnd("castan.discover")
	rec.Note("symbex", "degraded: budget")

	evs := drain(sub)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(evs), evs)
	}
	wantKinds := []string{KindStageBegin, KindProgress, KindStageEnd, KindNote}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d: kind %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.TNanos == 0 {
			t.Errorf("event %d: zero timestamp", i)
		}
	}
	if got := evs[2].Counters["memsim.probe_line_reads"]; got != 17 {
		t.Errorf("stage_end delta = %d, want 17", got)
	}
	if evs[1].Done != 1 || evs[1].Total != 6 {
		t.Errorf("progress done/total = %d/%d, want 1/6", evs[1].Done, evs[1].Total)
	}
}

func TestStageEndDeltasAreIncremental(t *testing.T) {
	rec := New(NewFakeClock(1000))
	sub := NewChanSub(64)
	rec.Subscribe(sub)

	c := rec.Counter("solver.queries")
	c.Add(5)
	rec.StageEnd("a")
	c.Add(3)
	rec.Counter("symbex.state_pops").Add(2)
	rec.StageEnd("b")
	rec.StageEnd("c")

	evs := drain(sub)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if d := evs[0].Counters; d["solver.queries"] != 5 || len(d) != 1 {
		t.Errorf("first stage_end deltas = %v, want solver.queries=5 only", d)
	}
	if d := evs[1].Counters; d["solver.queries"] != 3 || d["symbex.state_pops"] != 2 || len(d) != 2 {
		t.Errorf("second stage_end deltas = %v", d)
	}
	if evs[2].Counters != nil {
		t.Errorf("idle stage_end carries deltas: %v", evs[2].Counters)
	}
}

func TestUnsubscribedPublishIsFree(t *testing.T) {
	clk := NewFakeClock(1000)
	rec := New(clk)
	before := clk.Now()
	rec.StageBegin("x")
	rec.StageEnd("x")
	rec.Progress("x", "y", 1, 2)
	rec.Note("x", "z")
	after := clk.Now()
	// Exactly the two Now() calls this test made: the publish no-ops must
	// not read the clock, or golden trace bytes would shift.
	if after != before+1000 {
		t.Errorf("publish methods read the clock while unsubscribed: before=%d after=%d", before, after)
	}
	if rec.Publishing() {
		t.Error("Publishing() = true with no subscribers")
	}
}

func TestNilRecorderProgressSafe(t *testing.T) {
	var rec *Recorder
	rec.Subscribe(NewChanSub(1))
	rec.StageBegin("x")
	rec.StageEnd("x")
	rec.Progress("x", "y", 1, 2)
	rec.Note("x", "z")
	if rec.Publishing() {
		t.Error("nil recorder reports Publishing")
	}
}

func TestChanSubDropsWhenFull(t *testing.T) {
	rec := New(NewFakeClock(1000))
	sub := NewChanSub(2)
	rec.Subscribe(sub)
	for i := 0; i < 5; i++ {
		rec.Note("x", "n")
	}
	if got := sub.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
	evs := drain(sub)
	if len(evs) != 2 {
		t.Fatalf("buffered %d events, want 2", len(evs))
	}
	// Drops leave visible seq gaps, never reorderings.
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("buffered seqs = %d,%d; want 1,2", evs[0].Seq, evs[1].Seq)
	}
}

func TestChanSubCountDrops(t *testing.T) {
	rec := New(NewFakeClock(1000))
	sub := NewChanSub(2)
	sub.CountDrops(rec.Counter(SubDroppedCounter))
	rec.Subscribe(sub)
	for i := 0; i < 7; i++ {
		rec.Note("x", "n")
	}
	if got := sub.Dropped(); got != 5 {
		t.Errorf("Dropped() = %d, want 5", got)
	}
	// The mirror counter carries the same tally, so the drop count shows
	// up in metrics snapshots (and /metricsz) instead of only as seq gaps.
	if got := rec.Counter(SubDroppedCounter).Value(); got != 5 {
		t.Errorf("%s = %d, want 5", SubDroppedCounter, got)
	}
	// Without CountDrops the counter never moves and a nil counter is safe.
	rec2 := New(NewFakeClock(1000))
	sub2 := NewChanSub(1)
	rec2.Subscribe(sub2)
	rec2.Note("x", "a")
	rec2.Note("x", "b")
	if sub2.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", sub2.Dropped())
	}
	if got := rec2.Counter(SubDroppedCounter).Value(); got != 0 {
		t.Errorf("unmirrored drop moved %s to %d", SubDroppedCounter, got)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := New(NewFakeClock(1000))
	sink := NewJSONLSink(&buf)
	rec.Subscribe(sink)

	rec.StageBegin("castan.symbex")
	rec.Progress("castan.symbex", "state_pops", 256, 4000)
	rec.StageEnd("castan.symbex")
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadProgressEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("round-tripped %d events, want 3", len(evs))
	}
	if evs[1].Name != "state_pops" || evs[1].Done != 256 {
		t.Errorf("round-trip mismatch: %+v", evs[1])
	}
}

func TestJSONLSinkCloseFlushesBufferedWrites(t *testing.T) {
	var buf bytes.Buffer
	rec := New(NewFakeClock(1000))
	sink := NewJSONLSink(&buf)
	rec.Subscribe(sink)
	rec.Note("x", "one line")
	// The write is buffered; only Close guarantees it reaches the writer.
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !strings.Contains(buf.String(), "one line") {
		t.Errorf("buffered event not flushed by Close: %q", buf.String())
	}
}

// failingWriter errors every write after the first n bytes, and errors on
// Close too — the torn-disk case the sink must surface, not swallow.
type failingWriter struct {
	n        int
	writeErr error
	closeErr error
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.writeErr
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.writeErr
	}
	f.n -= len(p)
	return len(p), nil
}

func (f *failingWriter) Close() error { return f.closeErr }

func TestJSONLSinkPropagatesWriteErrorOnClose(t *testing.T) {
	wantErr := errors.New("disk full")
	fw := &failingWriter{n: 10, writeErr: wantErr, closeErr: nil}
	rec := New(NewFakeClock(1000))
	sink := NewJSONLSink(fw)
	rec.Subscribe(sink)

	// Enough events to overflow the bufio buffer and force the failing
	// write before Close; the pipeline itself must never notice.
	for i := 0; i < 5000; i++ {
		rec.Note("castan.symbex", "progress note with some padding to fill the buffer")
	}
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
	if err := sink.Err(); !errors.Is(err, wantErr) {
		t.Fatalf("Err() = %v, want %v", err, wantErr)
	}
	// Idempotent: a second Close reports the same sticky error.
	if err := sink.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("second Close() = %v, want %v", err, wantErr)
	}
}

func TestJSONLSinkPropagatesFlushAndCloseErrors(t *testing.T) {
	// Small payload: the event stays in the bufio buffer until Close, so
	// the failure surfaces at flush time — the silently-dropped-write
	// case this PR's lifecycle audit is about.
	flushErr := errors.New("flush failed")
	fw := &failingWriter{n: 0, writeErr: flushErr}
	sink := NewJSONLSink(fw)
	sink.OnProgress(ProgressEvent{Seq: 1, Kind: KindNote})
	if err := sink.Close(); !errors.Is(err, flushErr) {
		t.Fatalf("Close() = %v, want flush error %v", err, flushErr)
	}

	closeErr := errors.New("close failed")
	fw2 := &failingWriter{n: 1 << 20, closeErr: closeErr}
	sink2 := NewJSONLSink(fw2)
	sink2.OnProgress(ProgressEvent{Seq: 1, Kind: KindNote})
	if err := sink2.Close(); !errors.Is(err, closeErr) {
		t.Fatalf("Close() = %v, want close error %v", err, closeErr)
	}
}

func TestTTYRendererShapes(t *testing.T) {
	var buf bytes.Buffer
	r := NewTTYRenderer(&buf)
	r.OnProgress(ProgressEvent{Kind: KindStageBegin, Stage: "castan.discover"})
	r.OnProgress(ProgressEvent{Kind: KindProgress, Stage: "castan.discover", Name: "contention_sets", Done: 2, Total: 6})
	r.OnProgress(ProgressEvent{Kind: KindStageEnd, Stage: "castan.discover", Counters: map[string]uint64{"a": 1}})
	r.OnProgress(ProgressEvent{Kind: KindNote, Stage: "symbex", Name: "degraded: budget"})
	out := buf.String()
	for _, want := range []string{"==> castan.discover", "contention_sets 2/6", "<== castan.discover (1 counters moved)", "degraded: budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("renderer output missing %q:\n%s", want, out)
		}
	}
	// The open progress line is terminated before the next durable line.
	if strings.Contains(out, "2/6<==") {
		t.Errorf("progress line not closed before stage end:\n%s", out)
	}
}

func TestServeDebugMetricsz(t *testing.T) {
	rec := New(NewFakeClock(1000))
	rec.Counter("solver.queries").Add(42)
	ln, err := ServeDebug("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metricsz", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := ReadMetrics(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["solver.queries"] != 42 {
		t.Errorf("metricsz counters = %v, want solver.queries=42", m.Counters)
	}

	resp2, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp2.StatusCode)
	}
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// GaugeValue is a gauge's serialized state.
type GaugeValue struct {
	Value uint64 `json:"value"`
	Max   uint64 `json:"max"`
}

// HistogramValue is a histogram's serialized state: Counts[i] holds
// observations <= Bounds[i], Counts[len(Bounds)] is the overflow bucket.
type HistogramValue struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Phase aggregates the completed spans sharing one name, in first-start
// order — the per-phase duration summary of the pipeline.
type Phase struct {
	Name       string `json:"name"`
	Count      uint64 `json:"count"`
	TotalNanos uint64 `json:"total_ns"`
}

// Metrics is a recorder snapshot. JSON encoding is deterministic: map
// keys serialize sorted, and Phases is ordered by first span start.
type Metrics struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
	Phases     []Phase                   `json:"phases,omitempty"`
}

// Snapshot captures every instrument's current state (nil on a nil
// recorder). In-flight spans are not included — end them first.
func (r *Recorder) Snapshot() *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{}
	r.mu.Lock()
	if len(r.counters) > 0 {
		m.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			m.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		m.Gauges = make(map[string]GaugeValue, len(r.gauges))
		for name, g := range r.gauges {
			m.Gauges[name] = GaugeValue{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		m.Histograms = make(map[string]HistogramValue, len(r.hists))
		for name, h := range r.hists {
			hv := HistogramValue{
				Bounds: append([]uint64(nil), h.bounds...),
				Counts: make([]uint64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hv.Counts[i] = h.counts[i].Load()
			}
			m.Histograms[name] = hv
		}
	}
	evs := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sortEvents(evs)
	idx := map[string]int{}
	for _, ev := range evs {
		i, ok := idx[ev.Name]
		if !ok {
			i = len(m.Phases)
			idx[ev.Name] = i
			m.Phases = append(m.Phases, Phase{Name: ev.Name})
		}
		m.Phases[i].Count++
		m.Phases[i].TotalNanos += ev.Dur
	}
	return m
}

// WriteJSON serializes the snapshot as indented JSON (byte-deterministic
// for equal metric values).
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// WriteJSONFile writes the snapshot to a file.
func (m *Metrics) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadMetrics loads a snapshot written by WriteJSON.
func ReadMetrics(r io.Reader) (*Metrics, error) {
	var m Metrics
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decode metrics: %w", err)
	}
	return &m, nil
}

// WriteJSONL emits the event sink in the native schema, one Event object
// per line, in sorted emission order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// usec renders a nanosecond quantity as Chrome's microsecond timestamps
// with fixed nanosecond precision, keeping the bytes deterministic.
type usec uint64

func (u usec) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%d.%03d", uint64(u)/1000, uint64(u)%1000)), nil
}

// chromeEvent is one line of the exported trace. Field order is the
// serialization order.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    usec           `json:"ts"`
	Dur   *usec          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorder as a Chrome trace_event file:
// a strict JSON array with one event object per line (so the body is
// also line-parseable, which is what cmd/tracecheck validates). Spans
// become "X" complete events; final counter values become one "C"
// counter sample each at the trace's end timestamp. Load the file in
// chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: no recorder")
	}
	events := []chromeEvent{{
		Name:  "process_name",
		Phase: "M",
		Pid:   1,
		Tid:   1,
		Args:  map[string]any{"name": "castan"},
	}}
	var end uint64
	for _, ev := range r.Events() {
		d := usec(ev.Dur)
		events = append(events, chromeEvent{
			Name:  ev.Name,
			Phase: "X",
			Ts:    usec(ev.Start),
			Dur:   &d,
			Pid:   1,
			Tid:   1,
		})
		if ev.Start+ev.Dur > end {
			end = ev.Start + ev.Dur
		}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		events = append(events, chromeEvent{
			Name:  name,
			Phase: "C",
			Ts:    usec(end),
			Pid:   1,
			Tid:   1,
			Args:  map[string]any{"value": r.counters[name].Value()},
		})
	}
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := bw.WriteString(sep); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace to a file.
func (r *Recorder) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteChromeTrace(f); err != nil {
		return err
	}
	return f.Close()
}

// ValidateChromeTrace checks that data matches the exporter's schema:
// a strict JSON array, one event object per line bracketed by "[" and
// "]" lines, every event carrying name/ph/pid/tid/ts, and every "X"
// event a duration. It returns the number of events, or an error naming
// the first offending line.
func ValidateChromeTrace(data []byte) (int, error) {
	var all []map[string]any
	if err := json.Unmarshal(data, &all); err != nil {
		return 0, fmt.Errorf("trace is not a JSON array: %w", err)
	}
	if len(all) == 0 {
		return 0, fmt.Errorf("trace holds no events")
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 || strings.TrimSpace(lines[0]) != "[" || strings.TrimSpace(lines[len(lines)-1]) != "]" {
		return 0, fmt.Errorf("trace body is not one event per line inside [ ... ] lines")
	}
	body := lines[1 : len(lines)-1]
	if len(body) != len(all) {
		return 0, fmt.Errorf("%d events but %d body lines; expected one event per line", len(all), len(body))
	}
	for i, line := range body {
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimSuffix(strings.TrimSpace(line), ",")), &ev); err != nil {
			return 0, fmt.Errorf("line %d: not a JSON event object: %w", i+2, err)
		}
		for _, key := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[key]; !ok {
				return 0, fmt.Errorf("line %d: event missing %q", i+2, key)
			}
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			d, ok := ev["dur"].(float64)
			if !ok || d < 0 {
				return 0, fmt.Errorf("line %d: complete event missing nonnegative dur", i+2)
			}
		case "M", "C":
		default:
			return 0, fmt.Errorf("line %d: unexpected phase %q", i+2, ph)
		}
		if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
			return 0, fmt.Errorf("line %d: ts is not a nonnegative number", i+2)
		}
	}
	return len(all), nil
}

// ValidateChromeTraceFile validates the file at path.
func ValidateChromeTraceFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return ValidateChromeTrace(bytes.TrimSpace(data))
}

package tracediff

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"castan/internal/obs"
)

func TestStageOf(t *testing.T) {
	cases := map[string]string{
		"memsim.probe_line_reads":    "castan.discover",
		"castan.store.hits":          "castan.discover",
		"castan.contention_sets":     "castan.discover",
		"cachecost.classified":       "castan.cachecost",
		"symbex.state_pops":          "castan.symbex",
		"solver.queries":             "castan.symbex",
		"rainbow.chains":             "castan.reconcile",
		"castan.havocs_reconciled":   "castan.reconcile",
		"castan.degraded.discover":   "castan.discover",
		"castan.degraded.crosscheck": "castan.crosscheck",
		"budget_ticks_used":          "castan.analyze",
		"something.else":             "castan.analyze",
	}
	for name, want := range cases {
		if got := StageOf(name); got != want {
			t.Errorf("StageOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestDiffAttributesRegression(t *testing.T) {
	base := &Run{
		Label: "base",
		Counters: map[string]uint64{
			"solver.queries":          1000,
			"memsim.probe_line_reads": 5000,
			"rainbow.chains":          200,
			"unchanged":               7,
		},
		Phases: []obs.Phase{{Name: "castan.discover", Count: 1, TotalNanos: 100}},
	}
	cur := &Run{
		Label: "new",
		Counters: map[string]uint64{
			"solver.queries":          1010, // +1%: inside tolerance
			"memsim.probe_line_reads": 9000, // +80%: the regression
			"rainbow.chains":          150,  // improvement
			"unchanged":               7,
		},
		Phases: []obs.Phase{{Name: "castan.discover", Count: 1, TotalNanos: 180}},
	}
	rep := Diff(base, cur, 0.05)
	if !rep.HasRegressions() {
		t.Fatal("no regressions found")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Name != "memsim.probe_line_reads" {
		t.Fatalf("regressions = %+v, want exactly memsim.probe_line_reads", rep.Regressions)
	}
	if rep.TopStage != "castan.discover" {
		t.Errorf("TopStage = %q, want castan.discover", rep.TopStage)
	}
	// The improvement and the within-tolerance change still appear in the
	// full table; the unchanged counter does not.
	if len(rep.Counters) != 3 {
		t.Errorf("counter table has %d entries, want 3: %+v", len(rep.Counters), rep.Counters)
	}
	if rep.Counters[0].Name != "memsim.probe_line_reads" {
		t.Errorf("table not sorted worst-first: %+v", rep.Counters)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Stage != "castan.discover" {
		t.Errorf("phase diff = %+v", rep.Phases)
	}

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"memsim.probe_line_reads", "top regression: castan.discover", "1 counter(s) regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffPhasesNeverGate(t *testing.T) {
	base := &Run{Label: "a", Counters: map[string]uint64{"solver.queries": 10},
		Phases: []obs.Phase{{Name: "castan.symbex", TotalNanos: 100}}}
	cur := &Run{Label: "b", Counters: map[string]uint64{"solver.queries": 10},
		Phases: []obs.Phase{{Name: "castan.symbex", TotalNanos: 100000}}}
	rep := Diff(base, cur, 0.05)
	if rep.HasRegressions() {
		t.Fatalf("phase-only delta gated: %+v", rep.Regressions)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("phase delta not reported: %+v", rep.Phases)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := &Run{Label: "a", Counters: map[string]uint64{"symbex.forks": 0}}
	cur := &Run{Label: "b", Counters: map[string]uint64{"symbex.forks": 50}}
	rep := Diff(base, cur, 0.05)
	if len(rep.Regressions) != 1 {
		t.Fatalf("zero-baseline growth not flagged: %+v", rep.Regressions)
	}
	if rel := rep.Regressions[0].Rel; rel != 50 {
		t.Errorf("smoothed Rel = %v, want 50 ((50+1)/(0+1)-1)", rel)
	}
}

func TestLoadRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	rec := obs.New(obs.NewFakeClock(1000))
	rec.Counter("solver.queries").Add(42)
	root := rec.Span("castan.analyze")
	child := root.Child("castan.symbex")
	child.End()
	root.End()

	metricsPath := filepath.Join(dir, "metrics.json")
	if err := rec.Snapshot().WriteJSONFile(metricsPath); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	if err := rec.WriteChromeTraceFile(tracePath); err != nil {
		t.Fatal(err)
	}

	run, err := LoadRun(metricsPath, tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if run.Counters["solver.queries"] != 42 {
		t.Errorf("counters = %v", run.Counters)
	}
	if run.Tree == nil || len(run.Tree.Roots) != 1 {
		t.Fatalf("tree not loaded: %+v", run.Tree)
	}

	// Trace-only run: counters come from the trace's "C" samples.
	tRun, err := LoadRun("", tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if tRun.Counters["solver.queries"] != 42 {
		t.Errorf("trace-only counters = %v", tRun.Counters)
	}
	if len(tRun.Phases) == 0 {
		t.Error("trace-only run derived no phases")
	}

	rep := Diff(run, tRun, 0.05)
	if rep.HasRegressions() {
		t.Errorf("identical runs regressed: %+v", rep.Regressions)
	}
	if rep.BaseCriticalPath == "" || !strings.Contains(rep.BaseCriticalPath, "castan.analyze") {
		t.Errorf("critical path not rendered: %q", rep.BaseCriticalPath)
	}
}

// Package tracediff compares two runs' telemetry — metrics snapshots and
// optional trace exports — and attributes every regressed counter and
// phase to the pipeline stage that owns it. It is the analysis engine
// behind cmd/tracediff and the perf gate's failure report: instead of a
// bare "effort counter regressed, exit 1", the gate names the stage and
// counter that moved.
//
// Only deterministic effort counters gate (the same rule as the perf
// gate); phase tick deltas are reported for attribution but never decide
// regression, because under a wall clock they are load-dependent.
package tracediff

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"castan/internal/obs"
	"castan/internal/obs/traceanalysis"
)

// Run is one side of a comparison.
type Run struct {
	// Label names the run in reports (file path, "baseline", ...).
	Label string
	// Counters and Phases come from an obs.Metrics snapshot or a bench row.
	Counters map[string]uint64
	Phases   []obs.Phase
	// Tree, when non-nil, is the run's reconstructed span tree; the report
	// then includes both runs' critical paths.
	Tree *traceanalysis.Tree
}

// LoadRun reads a run from a metrics snapshot file and an optional trace
// file ("" to skip). A trace-only run (metricsPath "") takes its counters
// from the trace's final counter samples.
func LoadRun(metricsPath, tracePath string) (*Run, error) {
	r := &Run{Label: metricsPath}
	if metricsPath != "" {
		f, err := os.Open(metricsPath)
		if err != nil {
			return nil, err
		}
		m, err := obs.ReadMetrics(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", metricsPath, err)
		}
		r.Counters = m.Counters
		r.Phases = m.Phases
	}
	if tracePath != "" {
		t, err := traceanalysis.LoadFile(tracePath)
		if err != nil {
			return nil, err
		}
		r.Tree = t
		if r.Label == "" {
			r.Label = tracePath
		}
		if r.Counters == nil {
			r.Counters = t.Counters
		}
		if r.Phases == nil {
			for _, st := range t.ByName() {
				r.Phases = append(r.Phases, obs.Phase{Name: st.Name, Count: uint64(st.Count), TotalNanos: st.Total})
			}
			sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i].Name < r.Phases[j].Name })
		}
	}
	if r.Counters == nil && r.Phases == nil {
		return nil, fmt.Errorf("tracediff: run %q carries no counters or phases", r.Label)
	}
	return r, nil
}

// stagePrefixes attributes counter names to the pipeline stage whose work
// moves them. First matching prefix wins; the table is ordered most
// specific first. Counters outside the table (and the run-wide
// budget_ticks_used) attribute to the root, which is excluded from
// TopStage — a root-only regression means "somewhere unattributed".
var stagePrefixes = []struct{ prefix, stage string }{
	{"castan.degraded.discover", "castan.discover"},
	{"castan.degraded.symbex", "castan.symbex"},
	{"castan.degraded.solve", "castan.reconcile"},
	{"castan.degraded.rainbow", "castan.reconcile"},
	{"castan.degraded.reconcile", "castan.reconcile"},
	{"castan.degraded.frames", "castan.reconcile"},
	{"castan.degraded.crosscheck", "castan.crosscheck"},
	{"castan.store.", "castan.discover"},
	{"castan.contention_sets", "castan.discover"},
	{"castan.havocs", "castan.reconcile"},
	{"castan.reconcile_checks", "castan.reconcile"},
	{"memsim.", "castan.discover"},
	{"cachemodel.", "castan.discover"},
	{"cachecost.", "castan.cachecost"},
	{"symbex.", "castan.symbex"},
	{"solver.", "castan.symbex"},
	{"rainbow.", "castan.reconcile"},
}

// StageOf maps a counter name to the castan stage that owns it
// ("castan.analyze" for unattributed names).
func StageOf(counter string) string {
	for _, e := range stagePrefixes {
		if strings.HasPrefix(counter, e.prefix) {
			return e.stage
		}
	}
	return "castan.analyze"
}

// Entry is one diffed quantity.
type Entry struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" or "phase"
	Stage string `json:"stage"`
	Base  uint64 `json:"base"`
	New   uint64 `json:"new"`
	Delta int64  `json:"delta"`
	// Rel is the smoothed relative change (new+1)/(base+1)-1: monotone in
	// the raw ratio and finite for zero baselines, so it sorts and
	// serializes cleanly.
	Rel float64 `json:"rel"`
}

// Regressed applies the perf gate's rule: the value grew, and by more
// than the tolerance. Phases never regress (wall-clock dependent).
func (e *Entry) Regressed(tolerance float64) bool {
	return e.Kind == "counter" && e.New > e.Base &&
		float64(e.New) > float64(e.Base)*(1+tolerance)
}

// Report is the comparison result. Schema "castan-tracediff/v1".
type Report struct {
	Schema    string  `json:"schema"`
	BaseLabel string  `json:"base"`
	NewLabel  string  `json:"new"`
	Tolerance float64 `json:"tolerance"`
	// Counters and Phases list every quantity that moved, stage-attributed,
	// sorted by Rel descending (worst first).
	Counters []Entry `json:"counters,omitempty"`
	Phases   []Entry `json:"phases,omitempty"`
	// Regressions are the counter entries beyond tolerance, worst first.
	Regressions []Entry `json:"regressions,omitempty"`
	// TopStage is the stage owning the worst regressed counter (excluding
	// the unattributed root); empty when nothing regressed.
	TopStage string `json:"top_stage,omitempty"`
	// CriticalPaths renders both runs' critical paths when traces were
	// given ("name dur_ns > name dur_ns > ...").
	BaseCriticalPath string `json:"base_critical_path,omitempty"`
	NewCriticalPath  string `json:"new_critical_path,omitempty"`
}

func diffEntry(name, kind string, base, cur uint64) Entry {
	return Entry{
		Name:  name,
		Kind:  kind,
		Stage: StageOf(name),
		Base:  base,
		New:   cur,
		Delta: int64(cur) - int64(base),
		Rel:   (float64(cur)+1)/(float64(base)+1) - 1,
	}
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Rel != es[j].Rel {
			return es[i].Rel > es[j].Rel
		}
		return es[i].Name < es[j].Name
	})
}

// Diff compares two runs over the intersection of their counters (so a
// baseline recorded before a counter existed still diffs the ones it
// has) and the union of their phases.
func Diff(base, cur *Run, tolerance float64) *Report {
	rep := &Report{
		Schema:    "castan-tracediff/v1",
		BaseLabel: base.Label,
		NewLabel:  cur.Label,
		Tolerance: tolerance,
	}
	for name, bv := range base.Counters {
		nv, ok := cur.Counters[name]
		if !ok || nv == bv {
			continue
		}
		rep.Counters = append(rep.Counters, diffEntry(name, "counter", bv, nv))
	}
	sortEntries(rep.Counters)
	for _, e := range rep.Counters {
		if e.Regressed(tolerance) {
			rep.Regressions = append(rep.Regressions, e)
		}
	}
	for _, e := range rep.Regressions {
		if e.Stage != "castan.analyze" {
			rep.TopStage = e.Stage
			break
		}
	}

	basePhases := map[string]uint64{}
	for _, p := range base.Phases {
		basePhases[p.Name] += p.TotalNanos
	}
	curPhases := map[string]uint64{}
	for _, p := range cur.Phases {
		curPhases[p.Name] += p.TotalNanos
	}
	names := map[string]bool{}
	for n := range basePhases {
		names[n] = true
	}
	for n := range curPhases {
		names[n] = true
	}
	for n := range names {
		bv, nv := basePhases[n], curPhases[n]
		if bv == nv {
			continue
		}
		e := diffEntry(n, "phase", bv, nv)
		// A phase attributes to itself when it is a known stage span.
		if strings.HasPrefix(n, "castan.") {
			e.Stage = n
		}
		rep.Phases = append(rep.Phases, e)
	}
	sortEntries(rep.Phases)

	if base.Tree != nil {
		rep.BaseCriticalPath = renderPath(base.Tree)
	}
	if cur.Tree != nil {
		rep.NewCriticalPath = renderPath(cur.Tree)
	}
	return rep
}

func renderPath(t *traceanalysis.Tree) string {
	var parts []string
	for _, step := range t.CriticalPath() {
		parts = append(parts, fmt.Sprintf("%s %dns (%.0f%%)", step.Span.Name, step.Span.Dur, step.Share*100))
	}
	return strings.Join(parts, " > ")
}

// HasRegressions reports whether any counter regressed beyond tolerance.
func (r *Report) HasRegressions() bool { return len(r.Regressions) > 0 }

// Render writes the human-readable attribution table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "tracediff: %s -> %s (tolerance %.0f%%)\n", r.BaseLabel, r.NewLabel, r.Tolerance*100)
	if len(r.Counters) == 0 && len(r.Phases) == 0 {
		fmt.Fprintln(w, "  no counter or phase moved")
		return
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(w, "  %-20s %-32s %12s %12s %10s %8s\n", "STAGE", "COUNTER", "BASE", "NEW", "DELTA", "REL")
		for _, e := range r.Counters {
			mark := " "
			if e.Regressed(r.Tolerance) {
				mark = "!"
			}
			fmt.Fprintf(w, "%s %-20s %-32s %12d %12d %+10d %+7.1f%%\n",
				mark, e.Stage, e.Name, e.Base, e.New, e.Delta, e.Rel*100)
		}
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "  %-20s %-32s %12s %12s %10s %8s\n", "STAGE", "PHASE (ticks)", "BASE", "NEW", "DELTA", "REL")
		for _, e := range r.Phases {
			fmt.Fprintf(w, "  %-20s %-32s %12d %12d %+10d %+7.1f%%\n",
				e.Stage, e.Name, e.Base, e.New, e.Delta, e.Rel*100)
		}
	}
	if r.BaseCriticalPath != "" {
		fmt.Fprintf(w, "  critical path (base): %s\n", r.BaseCriticalPath)
	}
	if r.NewCriticalPath != "" {
		fmt.Fprintf(w, "  critical path (new):  %s\n", r.NewCriticalPath)
	}
	if r.HasRegressions() {
		top := r.Regressions[0]
		fmt.Fprintf(w, "top regression: %s — %s %d -> %d (%+.1f%%)",
			top.Stage, top.Name, top.Base, top.New, top.Rel*100)
		if r.TopStage != "" && r.TopStage != top.Stage {
			fmt.Fprintf(w, "; top attributed stage: %s", r.TopStage)
		}
		fmt.Fprintf(w, "\n%d counter(s) regressed beyond %.0f%% tolerance\n", len(r.Regressions), r.Tolerance*100)
	} else {
		fmt.Fprintln(w, "no counter regressed beyond tolerance")
	}
}

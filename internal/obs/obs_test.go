package obs

import (
	"bytes"
	"strings"
	"testing"

	"castan/internal/parallel"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h", 1, 2, 4).Observe(3)
	sp := r.Span("root")
	sp.Child("child").End()
	sp.End()
	if r.NowNanos() != 0 {
		t.Error("nil recorder clock should read 0")
	}
	if r.Snapshot() != nil || r.Events() != nil {
		t.Error("nil recorder should snapshot to nil")
	}
	if r.Counter("c").Value() != 0 || r.Gauge("g").Max() != 0 || r.Histogram("h").Count() != 0 {
		t.Error("nil instruments should read zero")
	}
}

func TestInstrumentBasics(t *testing.T) {
	r := New(NewFakeClock(1000))
	r.Counter("solver.queries").Add(5)
	r.Counter("solver.queries").Inc()
	if got := r.Counter("solver.queries").Value(); got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
	g := r.Gauge("queue")
	g.Set(4)
	g.Set(9)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 9 {
		t.Errorf("gauge = %d/%d, want 2/9", g.Value(), g.Max())
	}
	h := r.Histogram("sizes", 1, 4, 16)
	for _, v := range []uint64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hv := snap.Histograms["sizes"]
	want := []uint64{2, 1, 1, 1} // <=1, <=4, <=16, overflow
	for i, c := range want {
		if hv.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hv.Counts[i], c, hv)
		}
	}
	if hv.Count != 5 || hv.Sum != 108 {
		t.Errorf("count/sum = %d/%d, want 5/108", hv.Count, hv.Sum)
	}
}

func TestFakeClockSpansAreDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New(NewFakeClock(1000))
		root := r.Span("analyze")
		for _, phase := range []string{"static", "discover", "symbex"} {
			sp := root.Child(phase)
			r.Counter("work." + phase).Inc()
			sp.End()
		}
		root.End()
		return r
	}
	a, b := build(), build()
	var ja, jb, ta, tb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteChromeTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Errorf("metrics JSON differs across identical runs:\n%s\n%s", ja.String(), jb.String())
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Errorf("trace bytes differ across identical runs:\n%s\n%s", ta.String(), tb.String())
	}
	evs := a.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
	if evs[0].Name != "analyze" || evs[0].Parent != 0 {
		t.Errorf("first event should be the root span: %+v", evs[0])
	}
	for _, ev := range evs[1:] {
		if ev.Parent != evs[0].ID {
			t.Errorf("child %s has parent %d, want %d", ev.Name, ev.Parent, evs[0].ID)
		}
	}
}

// TestWorkerCountInvariant mirrors the per-package determinism tests:
// counters and histograms fed from a parallel fan-out must snapshot to
// identical bytes at W=1, W=4 and W=8, because atomic adds commute.
func TestWorkerCountInvariant(t *testing.T) {
	run := func(workers int) []byte {
		r := New(NewFakeClock(1000))
		c := r.Counter("items")
		h := r.Histogram("values", ExpBuckets(1, 10)...)
		parallel.ForEach(workers, 1000, func(i int) {
			c.Inc()
			h.Observe(uint64(i % 700))
			r.Gauge("hi").Set(uint64(i)) // max is order-independent
		})
		snap := r.Snapshot()
		snap.Gauges["hi"] = GaugeValue{Max: snap.Gauges["hi"].Max} // last value is scheduling-dependent
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		if got := run(w); !bytes.Equal(got, ref) {
			t.Errorf("W=%d snapshot differs from W=1:\n%s\n%s", w, got, ref)
		}
	}
}

func TestChromeTraceValidates(t *testing.T) {
	r := New(NewFakeClock(1000))
	sp := r.Span("phase")
	r.Counter("solver.queries").Add(42)
	sp.End()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatalf("exporter output fails its own schema: %v\n%s", err, buf.String())
	}
	if n != 3 { // metadata + span + counter
		t.Errorf("validated %d events, want 3", n)
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) || !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Errorf("trace missing span or counter events:\n%s", buf.String())
	}

	for _, bad := range []string{
		"",
		"{}",
		"[]",
		"[\n{\"name\":\"x\"}\n]",
		"[\n{\"name\":\"x\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0}\n]", // X without dur
		"[\n{\"name\":\"x\",\"ph\":\"Q\",\"pid\":1,\"tid\":1,\"ts\":0}\n]", // unknown phase
	} {
		if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
			t.Errorf("ValidateChromeTrace accepted %q", bad)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	r := New(NewFakeClock(500))
	r.Span("a").End()
	r.Span("b").End()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"name":"a"`) || !strings.Contains(lines[1], `"name":"b"`) {
		t.Errorf("JSONL emission order wrong:\n%s", buf.String())
	}
}

func TestMetricsRoundTrip(t *testing.T) {
	r := New(NewFakeClock(1000))
	r.Counter("c").Add(11)
	r.Gauge("g").Set(3)
	r.Histogram("h", 2, 8).Observe(5)
	sp := r.Span("phase")
	sp.End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["c"] != 11 || m.Gauges["g"].Value != 3 || m.Histograms["h"].Count != 1 {
		t.Errorf("round trip lost values: %+v", m)
	}
	if len(m.Phases) != 1 || m.Phases[0].Name != "phase" || m.Phases[0].TotalNanos == 0 {
		t.Errorf("round trip lost phases: %+v", m.Phases)
	}
}

package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP debug server on addr serving net/http/pprof
// under /debug/pprof/ plus a live snapshot of the recorder at /metricsz.
// It returns the bound listener (so callers can print the resolved
// address and tests can pick port 0) and serves until the process exits.
//
// This is a local profiling aid only — it performs no authentication and
// must never be exposed beyond localhost. The CLIs keep it off by
// default behind -httpdebug.
func ServeDebug(addr string, rec *Recorder) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m := rec.Snapshot()
		if m == nil {
			m = &Metrics{}
		}
		_ = m.WriteJSON(w) // the client hanging up is not our error
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

package obs

import (
	"sync"
	"testing"
)

// TestConcurrentInstrumentsAndSubscribers is the -race workout for the
// whole package: many goroutines hammer counters, gauges, histograms and
// publishes while a ChanSub drains concurrently. Beyond being race-free,
// the bus must deliver sequence numbers strictly increasing to each
// subscriber (publish order == seq order) and account for every event as
// either received or dropped.
func TestConcurrentInstrumentsAndSubscribers(t *testing.T) {
	const (
		workers     = 8
		perWorker   = 500
		publishers  = 4
		perPubEvent = 300
	)
	rec := New(NewFakeClock(1))
	sub := NewChanSub(publishers * perPubEvent) // big enough: no drops expected
	small := NewChanSub(8)                      // tiny: drops expected, still race-free
	rec.Subscribe(sub)
	rec.Subscribe(small)

	var wg sync.WaitGroup

	// Instrument writers.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := rec.Counter("race.counter")
			h := rec.Histogram("race.hist", 1, 8, 64)
			g := rec.Gauge("race.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i % 100))
				g.Set(uint64(i))
				// Also exercise create-on-first-use under contention.
				rec.Counter("race.counter2").Add(2)
			}
		}(w)
	}

	// Spans on a single goroutine (per the determinism rule) interleaved
	// with the concurrent instrument traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sp := rec.Span("race.span")
			sp.Child("race.child").End()
			sp.End()
		}
	}()

	// Concurrent publishers — a campaign fanning analyses over one
	// recorder. Interleaving is nondeterministic here; ordering per
	// subscriber must still hold.
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPubEvent; i++ {
				switch i % 4 {
				case 0:
					rec.StageBegin("race.stage")
				case 1:
					rec.Progress("race.stage", "batch", uint64(i), perPubEvent)
				case 2:
					rec.StageEnd("race.stage")
				default:
					rec.Note("race.stage", "tick")
				}
			}
		}(p)
	}

	// Drain concurrently with publishing.
	var drained []ProgressEvent
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.Events() {
			drained = append(drained, ev)
		}
	}()

	wg.Wait()
	// Publishing is over; hand the channel's remaining buffer to the
	// drainer and stop it.
	close(sub.ch)
	<-done

	const published = publishers * perPubEvent
	if got := len(drained) + int(sub.Dropped()); got != published {
		t.Fatalf("received %d + dropped %d != published %d", len(drained), sub.Dropped(), published)
	}
	last := uint64(0)
	for i, ev := range drained {
		if ev.Seq <= last {
			t.Fatalf("event %d: seq %d not strictly after %d (lost ordering)", i, ev.Seq, last)
		}
		last = ev.Seq
	}
	if sub.Dropped() != 0 {
		t.Errorf("big subscriber dropped %d events, want 0", sub.Dropped())
	}
	if got := int(small.Dropped()) + len(drainSmall(small)); got != published {
		t.Errorf("small subscriber accounts for %d events, want %d", got, published)
	}

	if got := rec.Counter("race.counter").Value(); got != workers*perWorker {
		t.Errorf("race.counter = %d, want %d", got, workers*perWorker)
	}
	if got := rec.Counter("race.counter2").Value(); got != 2*workers*perWorker {
		t.Errorf("race.counter2 = %d, want %d", got, 2*workers*perWorker)
	}
	if got := rec.Histogram("race.hist").Count(); got != workers*perWorker {
		t.Errorf("race.hist count = %d, want %d", got, workers*perWorker)
	}
}

func drainSmall(c *ChanSub) []ProgressEvent {
	var out []ProgressEvent
	for {
		select {
		case ev := <-c.ch:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestConcurrentSnapshotDuringPublish ensures snapshotting (the /metricsz
// path) is safe while publishes and instrument writes are in flight.
func TestConcurrentSnapshotDuringPublish(t *testing.T) {
	rec := New(NewFakeClock(1))
	rec.Subscribe(NewChanSub(16))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Counter("snap.counter").Inc()
				rec.StageEnd("snap")
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if m := rec.Snapshot(); m == nil {
					t.Error("nil snapshot from live recorder")
					return
				}
			}
		}()
	}
	wg.Wait()
}

package traceanalysis

import (
	"bytes"
	"strings"
	"testing"

	"castan/internal/obs"
)

// record builds a small pipeline-shaped recorder: a root with three
// stages, one of which has a child shard.
func record() *obs.Recorder {
	rec := obs.New(obs.NewFakeClock(1000))
	rec.Counter("solver.queries").Add(7)
	root := rec.Span("castan.analyze")
	s1 := root.Child("castan.discover")
	s1.End()
	s2 := root.Child("castan.symbex")
	shard := s2.Child("castan.symbex.shard")
	shard.End()
	s2.End()
	s3 := root.Child("castan.reconcile")
	s3.End()
	root.End()
	return rec
}

func TestFromEventsWithIDs(t *testing.T) {
	rec := record()
	tree := FromEvents(rec.Events())
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tree.Roots))
	}
	root := tree.Roots[0]
	if root.Name != "castan.analyze" || len(root.Children) != 3 {
		t.Fatalf("root %q with %d children, want castan.analyze with 3", root.Name, len(root.Children))
	}
	names := []string{root.Children[0].Name, root.Children[1].Name, root.Children[2].Name}
	want := []string{"castan.discover", "castan.symbex", "castan.reconcile"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("child %d = %q, want %q (start-ordered)", i, names[i], want[i])
		}
	}
	symbex := root.Children[1]
	if len(symbex.Children) != 1 || symbex.Children[0].Name != "castan.symbex.shard" {
		t.Fatalf("symbex children = %+v, want the shard", symbex.Children)
	}
	// Self + children == total on every span.
	var check func(s *Span)
	check = func(s *Span) {
		var childDur uint64
		for _, c := range s.Children {
			childDur += c.Dur
			check(c)
		}
		if s.Self+childDur != s.Dur {
			t.Errorf("%s: self %d + children %d != dur %d", s.Name, s.Self, childDur, s.Dur)
		}
	}
	check(root)
}

func TestChromeRoundTripExactTicks(t *testing.T) {
	rec := record()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tree, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Counters["solver.queries"] != 7 {
		t.Errorf("counters = %v, want solver.queries=7", tree.Counters)
	}
	// The Chrome export has no span IDs; containment must recover the
	// identical shape, and the µs "<d>.<03d>" rendering must round-trip
	// the fake clock's exact nanosecond ticks.
	native := FromEvents(rec.Events())
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "castan.analyze" {
		t.Fatalf("chrome roots = %+v", tree.Roots)
	}
	type flat struct {
		Name             string
		Start, Dur, Self uint64
	}
	var flatten func(s *Span, out *[]flat)
	flatten = func(s *Span, out *[]flat) {
		*out = append(*out, flat{Name: s.Name, Start: s.Start, Dur: s.Dur, Self: s.Self})
		for _, c := range s.Children {
			flatten(c, out)
		}
	}
	var a, b []flat
	flatten(native.Roots[0], &a)
	flatten(tree.Roots[0], &b)
	if len(a) != len(b) {
		t.Fatalf("native %d spans, chrome %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("span %d: native %+v != chrome %+v", i, a[i], b[i])
		}
	}
}

func TestCriticalPathFollowsHeaviestChild(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1000))
	root := rec.Span("root")
	light := root.Child("light")
	light.End() // 2 readings = 2000 ticks
	heavy := root.Child("heavy")
	inner := heavy.Child("inner")
	for i := 0; i < 10; i++ {
		rec.NowNanos() // widen the heavy branch
	}
	inner.End()
	heavy.End()
	root.End()

	tree := FromEvents(rec.Events())
	path := tree.CriticalPath()
	var names []string
	for _, st := range path {
		names = append(names, st.Span.Name)
	}
	if got, want := strings.Join(names, ">"), "root>heavy>inner"; got != want {
		t.Fatalf("critical path = %s, want %s", got, want)
	}
	if path[0].Share != 1.0 {
		t.Errorf("root share = %v, want 1.0", path[0].Share)
	}
	if path[1].Share <= 0 || path[1].Share > 1 {
		t.Errorf("heavy share = %v, want in (0, 1]", path[1].Share)
	}
	if path[2].Depth != 2 {
		t.Errorf("inner depth = %d, want 2", path[2].Depth)
	}
}

func TestByNameAndTopK(t *testing.T) {
	rec := obs.New(obs.NewFakeClock(1000))
	root := rec.Span("root")
	for i := 0; i < 3; i++ {
		sh := root.Child("shard")
		rec.NowNanos()
		sh.End()
	}
	root.End()
	tree := FromEvents(rec.Events())
	stats := tree.ByName()
	if len(stats) != 2 {
		t.Fatalf("ByName = %+v, want 2 names", stats)
	}
	byName := map[string]NameStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if byName["shard"].Count != 3 {
		t.Errorf("shard count = %d, want 3", byName["shard"].Count)
	}
	if top := tree.TopK(1); len(top) != 1 || top[0].Name != stats[0].Name {
		t.Errorf("TopK(1) = %+v, want [%+v]", top, stats[0])
	}
}

func TestLoadJSONL(t *testing.T) {
	rec := record()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tree, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "castan.analyze" {
		t.Fatalf("JSONL roots = %+v", tree.Roots)
	}
}

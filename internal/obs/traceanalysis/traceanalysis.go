// Package traceanalysis reconstructs span trees from the observability
// layer's trace exports and answers the profiling questions the raw files
// cannot: where did the ticks go (per-span self vs total time), what was
// the critical path through the pipeline's stages, and which span names
// dominate (top-K attribution). It understands both export formats —
// the native JSONL event sink (obs.Event per line, with real span IDs and
// parents) and the Chrome trace_event array (where the tree is recovered
// by interval containment).
package traceanalysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"castan/internal/obs"
)

// Span is one node of the reconstructed tree.
type Span struct {
	Name   string
	Start  uint64 // ns since the run's clock epoch
	Dur    uint64 // total ns, children included
	ID     int64
	Parent int64

	Children []*Span
	// Self is Dur minus the children's Dur: ticks spent in this span's own
	// code rather than delegated to a sub-stage.
	Self uint64
}

// End is the span's end timestamp.
func (s *Span) End() uint64 { return s.Start + s.Dur }

// Tree is a reconstructed trace: the span forest plus any final counter
// samples the export carried (Chrome "C" events).
type Tree struct {
	Roots    []*Span
	Counters map[string]uint64
}

// FromEvents builds the tree from native sink events. When the events
// carry span IDs the recorded parent links are used; otherwise (or for
// events whose parent is missing from the export) containment of the
// [Start, End) intervals decides nesting, widest-first.
func FromEvents(evs []obs.Event) *Tree {
	nodes := make([]*Span, len(evs))
	byID := map[int64]*Span{}
	for i, ev := range evs {
		nodes[i] = &Span{Name: ev.Name, Start: ev.Start, Dur: ev.Dur, ID: ev.ID, Parent: ev.Parent}
		if ev.ID != 0 {
			byID[ev.ID] = nodes[i]
		}
	}
	// Sort parents-before-children: earlier start first, then wider first,
	// then recorded ID for full determinism.
	order := append([]*Span(nil), nodes...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Start != order[j].Start {
			return order[i].Start < order[j].Start
		}
		if order[i].Dur != order[j].Dur {
			return order[i].Dur > order[j].Dur
		}
		return order[i].ID < order[j].ID
	})

	t := &Tree{}
	var stack []*Span
	for _, n := range order {
		if p, ok := byID[n.Parent]; ok && n.Parent != 0 {
			p.Children = append(p.Children, n)
			continue
		}
		// Containment fallback: pop stack frames that cannot contain n.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if n.Start >= top.Start && n.End() <= top.End() {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			top.Children = append(top.Children, n)
			n.Parent = top.ID
		} else {
			t.Roots = append(t.Roots, n)
		}
		stack = append(stack, n)
	}
	// ID-linked children were attached in input order; normalize every
	// child list to start order and fill Self.
	var finalize func(s *Span)
	finalize = func(s *Span) {
		sort.SliceStable(s.Children, func(i, j int) bool {
			if s.Children[i].Start != s.Children[j].Start {
				return s.Children[i].Start < s.Children[j].Start
			}
			return s.Children[i].ID < s.Children[j].ID
		})
		var childDur uint64
		for _, c := range s.Children {
			finalize(c)
			childDur += c.Dur
		}
		if childDur > s.Dur {
			childDur = s.Dur // overlapping children can over-count
		}
		s.Self = s.Dur - childDur
	}
	for _, r := range t.Roots {
		finalize(r)
	}
	return t
}

// ParseChromeTrace decodes a Chrome trace_event array as written by
// obs.WriteChromeTrace back into native events plus the final counter
// samples. The exporter renders timestamps as "<us>.<ns%1000>" with exact
// nanosecond precision, so multiplying the parsed float by 1000 and
// rounding recovers the original ticks exactly.
func ParseChromeTrace(data []byte) ([]obs.Event, map[string]uint64, error) {
	var raw []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Dur   float64        `json:"dur"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, nil, fmt.Errorf("traceanalysis: not a Chrome trace array: %w", err)
	}
	var evs []obs.Event
	counters := map[string]uint64{}
	usToNs := func(v float64) uint64 { return uint64(v*1000 + 0.5) }
	for _, ev := range raw {
		switch ev.Phase {
		case "X":
			evs = append(evs, obs.Event{Name: ev.Name, Start: usToNs(ev.Ts), Dur: usToNs(ev.Dur)})
		case "C":
			if v, ok := ev.Args["value"].(float64); ok {
				counters[ev.Name] = uint64(v + 0.5)
			}
		}
	}
	if len(counters) == 0 {
		counters = nil
	}
	return evs, counters, nil
}

// Load reads a trace in either export format, sniffing by the first
// non-space byte: '[' is the Chrome array, anything else the native
// JSONL sink.
func Load(r io.Reader) (*Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, fmt.Errorf("traceanalysis: empty trace")
	}
	if trimmed[0] == '[' {
		evs, counters, err := ParseChromeTrace([]byte(trimmed))
		if err != nil {
			return nil, err
		}
		t := FromEvents(evs)
		t.Counters = counters
		return t, nil
	}
	var evs []obs.Event
	dec := json.NewDecoder(strings.NewReader(trimmed))
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("traceanalysis: decode event %d: %w", len(evs)+1, err)
		}
		evs = append(evs, ev)
	}
	return FromEvents(evs), nil
}

// LoadFile reads the trace file at path in either export format.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// PathStep is one hop of the critical path.
type PathStep struct {
	Span *Span
	// Depth is the step's tree depth (root = 0).
	Depth int
	// Share is the span's Dur as a fraction of the path root's Dur.
	Share float64
}

// CriticalPath walks from the heaviest root down through the heaviest
// child at every level — the chain of stages that bounds the run's length.
// Ties break toward the earlier-starting child so the path is
// deterministic.
func (t *Tree) CriticalPath() []PathStep {
	if len(t.Roots) == 0 {
		return nil
	}
	root := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.Dur > root.Dur {
			root = r
		}
	}
	var path []PathStep
	cur := root
	depth := 0
	for cur != nil {
		share := 1.0
		if root.Dur > 0 {
			share = float64(cur.Dur) / float64(root.Dur)
		}
		path = append(path, PathStep{Span: cur, Depth: depth, Share: share})
		var next *Span
		for _, c := range cur.Children {
			if next == nil || c.Dur > next.Dur {
				next = c
			}
		}
		cur = next
		depth++
	}
	return path
}

// NameStat aggregates every span sharing one name.
type NameStat struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Total sums Dur across the name's spans; Self sums their self time.
	// Parallel shards of one stage all contribute, so Total can exceed
	// wall-clock — it is attribution weight, not elapsed time.
	Total uint64 `json:"total_ns"`
	Self  uint64 `json:"self_ns"`
}

// ByName aggregates the tree per span name, ordered by self time
// descending (name ascending on ties) — the attribution profile.
func (t *Tree) ByName() []NameStat {
	acc := map[string]*NameStat{}
	var walk func(s *Span)
	walk = func(s *Span) {
		st := acc[s.Name]
		if st == nil {
			st = &NameStat{Name: s.Name}
			acc[s.Name] = st
		}
		st.Count++
		st.Total += s.Dur
		st.Self += s.Self
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	out := make([]NameStat, 0, len(acc))
	for _, st := range acc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopK returns the K heaviest names by self time.
func (t *Tree) TopK(k int) []NameStat {
	stats := t.ByName()
	if k > 0 && len(stats) > k {
		stats = stats[:k]
	}
	return stats
}

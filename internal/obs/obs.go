// Package obs is the repo's zero-dependency observability layer: named
// counters and gauges, fixed-bucket histograms, hierarchical spans, and
// exporters (a metrics JSON snapshot and a Chrome trace_event file).
// Every analysis layer — symbex, solver, memsim, rainbow, and the castan
// pipeline — records into a *Recorder, and later PRs prove their speedups
// against the emitted numbers.
//
// The layer obeys the repo-wide determinism rule (DESIGN.md decisions 6
// and 8): with the injectable clock in fake mode, the recorded output is
// byte-identical at every worker count. Three mechanisms make that hold
// under internal/parallel fan-out:
//
//   - counters and histograms are commutative: the cells are atomics and
//     every write is an add, so the merged totals cannot depend on how
//     worker goroutines interleaved — the atomic cells are the per-worker
//     shards and addition is the deterministic merge;
//   - time comes from a Clock. The wall clock is for CLIs and profiling;
//     tests and goldens inject a FakeClock that advances a fixed step per
//     reading, so timestamps count clock readings instead of nanoseconds
//     and stay byte-stable ("no wall-clock in test mode");
//   - spans are created and ended on the pipeline goroutine only, and
//     events are emitted in sorted order, so the trace is a deterministic
//     function of the pipeline's (deterministic) control flow.
//
// Speculative parallel work — e.g. the few candidate checks a
// parallel.First batch evaluates past the accepting index — must not be
// recorded from inside worker functions; the orchestrator records the
// sequential-equivalent effort instead. See DESIGN.md decision 8.
//
// All methods are nil-receiver safe: a nil *Recorder hands out nil
// instruments whose methods no-op, so instrumented code never branches on
// "is observability on".
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps in nanoseconds since the clock's
// own epoch. Implementations must be safe for concurrent use.
type Clock interface {
	Now() uint64
}

// NewWallClock returns a real monotonic clock anchored at creation time.
func NewWallClock() Clock {
	return &wallClock{base: time.Now()}
}

type wallClock struct{ base time.Time }

func (c *wallClock) Now() uint64 { return uint64(time.Since(c.base)) }

// FakeClock is the deterministic test clock: every reading advances the
// clock by a fixed step, so "time" counts clock readings. As long as the
// readings happen in a deterministic order (the pipeline goroutine), the
// resulting timestamps are byte-stable across runs and worker counts.
type FakeClock struct {
	step uint64
	now  atomic.Uint64
}

// NewFakeClock returns a FakeClock advancing stepNanos per reading
// (default 1000, i.e. one microsecond per reading in Chrome traces).
func NewFakeClock(stepNanos uint64) *FakeClock {
	if stepNanos == 0 {
		stepNanos = 1000
	}
	return &FakeClock{step: stepNanos}
}

// Now advances the clock by one step and returns the new time.
func (c *FakeClock) Now() uint64 { return c.now.Add(c.step) }

// Recorder is the per-run sink for all instruments. Instruments are
// created on first use and live for the recorder's lifetime; hot paths
// should look an instrument up once and hold the pointer.
//
// Beyond the post-hoc snapshot, a recorder is also a live event bus:
// Subscribe attaches ProgressEvent subscribers and the pipeline publishes
// stage boundaries, batch progress and degradation notes through the
// StageBegin/StageEnd/Progress/Note methods (see progress.go). With no
// subscribers every publish method is a no-op that reads no clock and
// touches no instrument, so an unsubscribed run's telemetry bytes are
// unchanged.
type Recorder struct {
	clock Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   []Event
	nextID   int64

	// Event-bus state (progress.go). subs/seq/watermark are guarded by
	// mu; hasSubs is the lock-free fast path every publish checks first.
	subs      []Subscriber
	hasSubs   atomic.Bool
	seq       uint64
	watermark map[string]uint64
}

// New creates a recorder. A nil clock selects the wall clock; tests pass
// NewFakeClock for byte-stable output.
func New(clock Clock) *Recorder {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Recorder{
		clock:    clock,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// NowNanos reads the recorder's clock (0 on a nil recorder).
func (r *Recorder) NowNanos() uint64 {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// Counter returns the named counter, creating it on first use.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it with
// the given ascending upper bounds on first use (later calls reuse the
// existing buckets and ignore bounds). An empty bounds list falls back to
// ExpBuckets(1, 16).
func (r *Recorder) Histogram(name string, bounds ...uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = ExpBuckets(1, 16)
		}
		b := append([]uint64(nil), bounds...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// ExpBuckets builds n exponentially growing upper bounds starting at
// start and doubling (1, 2, 4, ... for start=1).
func ExpBuckets(start uint64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	b := make([]uint64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Counter is a monotonically increasing named count. Adds are atomic and
// commutative, so totals are worker-count invariant.
type Counter struct{ v atomic.Uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks a last-set value plus its high-water mark. The maximum is
// order-independent; the last value is deterministic only when Set is
// called from one goroutine (which is how the pipeline uses it).
type Gauge struct {
	v   atomic.Uint64
	max atomic.Uint64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value reads the last-set value.
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reads the high-water mark.
func (g *Gauge) Max() uint64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v <= bounds[i] (first matching bucket), counts[len(bounds)]
// is the overflow bucket. All cells are atomic adds, so histograms merged
// from concurrent workers are deterministic.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}
